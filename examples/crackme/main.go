// Software-cracking scenario. The classic crack — invert the license
// branch — works instantly against a naive binary, so this crackme is
// built the Parallax way:
//
//   - there is no license branch: the key's digest directly decrypts
//     the secret (wrong key → garbage, nothing to invert);
//   - the digest function is the verification code, running as a ROP
//     chain over gadgets crafted into the rest of the binary;
//   - the expected-digest constant is split (§IV-B2), so it never
//     appears in the binary for a cracker to search for.
//
// The demo mounts three attacks: branch inversion (no branch exists),
// constant search (constant is split), and patching the digest logic
// (destroys chain gadgets → malfunction).
//
//	go run ./examples/crackme
package main

import (
	"bytes"
	"fmt"
	"log"

	"parallax"
)

const secret = "FLAG{rop-protects-rop}\n"

// goodDigest is the 33-mix digest of the product key "AAAABBBB".
const goodDigest = uint32(0xA050A051)

// encryptedSecret is the secret xored with the good key's digest
// bytes; only the correct key decrypts it.
func encryptedSecret() []byte {
	out := []byte(secret)
	for i := range out {
		out[i] ^= byte(goodDigest >> (8 * (uint(i) & 3)))
	}
	return out
}

func buildCrackme() *parallax.Module {
	mb := parallax.NewModule("crackme")
	mb.GlobalZero("keybuf", 16)
	mb.Global("enc", encryptedSecret())
	mb.GlobalZero("out", uint32(len(secret)))

	// validate: digest of the typed key — the verification code.
	fb := mb.Func("validate", 0)
	buf := fb.Addr("keybuf", 0)
	h := fb.Const(0x1505)
	i := fb.Const(0)
	fb.Jmp("head")
	fb.Block("head")
	c := fb.Cmp(parallax.ULt, i, fb.Const(8))
	fb.Br(c, "body", "done")
	fb.Block("body")
	ch := fb.Load8(fb.Add(buf, i))
	k := fb.Const(33)
	fb.Assign(h, fb.Add(fb.Mul(h, k), ch))
	one := fb.Const(1)
	fb.Assign(i, fb.Add(i, one))
	fb.Jmp("head")
	fb.Block("done")
	fb.Ret(h)

	fb = mb.Func("main", 0)
	fd := fb.Const(0)
	kb := fb.Addr("keybuf", 0)
	n8 := fb.Const(8)
	fb.Syscall(3, fd, kb, n8) // read the key
	digest := fb.Call("validate")
	// Decrypt: out[i] = enc[i] ^ digest_byte(i&3). No branch decides
	// anything — a wrong digest simply yields garbage.
	enc := fb.Addr("enc", 0)
	out := fb.Addr("out", 0)
	j := fb.Const(0)
	fb.Jmp("dec.head")
	fb.Block("dec.head")
	lim := fb.Const(int32(len(secret)))
	c2 := fb.Cmp(parallax.ULt, j, lim)
	fb.Br(c2, "dec.body", "dec.done")
	fb.Block("dec.body")
	three := fb.Const(3)
	shift := fb.Shl(fb.And(j, three), three)
	keyByte := fb.And(fb.Shr(digest, shift), fb.Const(0xFF))
	e := fb.Load8(fb.Add(enc, j))
	fb.Store8(fb.Add(out, j), fb.Xor(e, keyByte))
	one2 := fb.Const(1)
	fb.Assign(j, fb.Add(j, one2))
	fb.Jmp("dec.head")
	fb.Block("dec.done")
	fdOut := fb.Const(1)
	fb.Syscall(4, fdOut, out, lim)
	fb.Ret(fb.Const(0))
	mb.SetEntry("main")
	return mb.MustBuild()
}

func main() {
	p, err := parallax.Protect(buildCrackme(), parallax.Options{
		VerifyFuncs: []string{"validate"},
	})
	if err != nil {
		log.Fatal(err)
	}

	goodKey := []byte("AAAABBBB")
	badKey := []byte("XXXXXXXX")

	fmt.Println("-- legitimate use --")
	fmt.Printf("good key: %q\n", parallax.Run(p.Image, goodKey).Stdout)
	fmt.Printf("bad key:  %q\n", parallax.Run(p.Image, badKey).Stdout)

	fmt.Println("\n-- attack 1: invert the license branch --")
	fmt.Println("there is no license branch: the digest decrypts the secret directly.")

	fmt.Println("\n-- attack 2: search the binary for the expected digest --")
	found := false
	for _, s := range p.Image.Sections {
		d := goodDigest
		le := []byte{byte(d), byte(d >> 8), byte(d >> 16), byte(d >> 24)}
		if bytes.Contains(s.Data, le) {
			found = true
		}
	}
	fmt.Printf("digest constant present in the binary: %v (immediates are split)\n", found)

	fmt.Println("\n-- attack 3: patch the digest logic to a constant --")
	// The cracker patches validate's multiply constant hoping to force
	// a known digest — but those bytes carry gadgets the chain uses.
	g := p.Chains["validate"].Gadgets()[0]
	cracked := p.Image.Clone()
	if err := cracked.WriteAt(g.Addr, []byte{0x90, 0x90}); err != nil {
		log.Fatal(err)
	}
	res := parallax.Run(cracked, badKey)
	fmt.Printf("patched run: stdout=%q status=%d err=%v\n", res.Stdout, res.Status, res.Err)
	if res.Err != nil || res.Stdout != secret {
		fmt.Println("=> the patch destroyed a gadget the validate chain executes; the")
		fmt.Println("   cracked binary cannot produce the secret.")
	}
}
