// The Wurster et al. split instruction-/data-cache attack, head to
// head against the two protection schemes (§VI/§IX):
//
//   - classic self-checksumming detects a static crack but is defeated
//     completely when the patch is applied through the split-cache
//     view (checksums read pristine bytes, the CPU executes the
//     patch);
//   - Parallax never reads code as data — its verification chain
//     *executes* the protected bytes through the very fetch path the
//     attack controls, so the tampering derails the chain.
//
// This example reaches below the public API into the internal attack
// and baseline packages, since it compares protection engines.
//
//	go run ./examples/wurster
package main

import (
	"context"
	"fmt"
	"log"

	"parallax/internal/attack"
	"parallax/internal/baseline/checksum"
	"parallax/internal/core"
	"parallax/internal/emu"
	"parallax/internal/ir"
)

// buildTarget returns the victim: a license validator guarding the
// exit status (7 = licensed, 13 = refused).
func buildTarget() *ir.Module {
	mb := ir.NewModule("victim")
	mb.Global("key", []byte{0x21, 0x43, 0x65, 0x87})

	fb := mb.Func("validate", 0)
	k := fb.Load(fb.Addr("key", 0))
	acc := fb.Copy(k)
	i := fb.Const(0)
	fb.Jmp("head")
	fb.Block("head")
	lim := fb.Const(16)
	c := fb.Cmp(ir.ULt, i, lim)
	fb.Br(c, "body", "done")
	fb.Block("body")
	seven := fb.Const(7)
	fb.Assign(acc, fb.Xor(fb.Mul(acc, seven), i))
	one := fb.Const(1)
	fb.Assign(i, fb.Add(i, one))
	fb.Jmp("head")
	fb.Block("done")
	zero := fb.Const(0)
	fb.Ret(fb.Cmp(ir.Ne, acc, zero))

	fb = mb.Func("main", 0)
	r := fb.Call("validate")
	zero2 := fb.Const(0)
	ok := fb.Cmp(ir.Ne, r, zero2)
	fb.Br(ok, "licensed", "refused")
	fb.Block("licensed")
	fb.Ret(fb.Const(7))
	fb.Block("refused")
	fb.Ret(fb.Const(13))
	mb.SetEntry("main")
	return mb.MustBuild()
}

func main() {
	crack := []byte{0xB8, 0x01, 0x00, 0x00, 0x00, 0xC3} // mov eax,1; ret

	fmt.Println("== victim protected by a cross-verifying checksum network ==")
	cs, err := checksum.Protect(buildTarget(), checksum.Options{})
	if err != nil {
		log.Fatal(err)
	}
	sym := cs.Image.MustSymbol("validate")

	static := cs.Image.Clone()
	if err := attack.PatchBytes(static, sym.Addr, crack); err != nil {
		log.Fatal(err)
	}
	res := attack.Run(context.Background(), static, nil)
	fmt.Printf("static crack:        status=%d (tamper response is %d)\n",
		res.Status, checksum.TamperStatus)

	cpu, err := emu.LoadImage(cs.Image)
	if err != nil {
		log.Fatal(err)
	}
	cpu.OS = emu.NewOS(nil)
	attack.Wurster(cpu, sym.Addr, crack) // fetches see the crack; reads do not
	if err := cpu.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("split-cache crack:   status=%d", cpu.Status)
	if cpu.Status == 7 {
		fmt.Println("  <- DEFEATED: runs as licensed, checksums all pass")
	} else {
		fmt.Println()
	}

	fmt.Println("\n== same victim protected by Parallax ==")
	prot, err := core.Protect(buildTarget(), core.Options{VerifyFuncs: []string{"validate"}})
	if err != nil {
		log.Fatal(err)
	}
	clean := attack.Run(context.Background(), prot.Image, nil)
	fmt.Printf("clean run:           status=%d\n", clean.Status)

	g := prot.Chains["validate"].Gadgets()[0]
	cpu2, err := emu.LoadImage(prot.Image)
	if err != nil {
		log.Fatal(err)
	}
	cpu2.OS = emu.NewOS(nil)
	attack.Wurster(cpu2, g.Addr, []byte{0xCC})
	runErr := cpu2.Run()
	fmt.Printf("split-cache tamper:  status=%d err=%v\n", cpu2.Status, runErr)
	if runErr != nil || cpu2.Status != clean.Status {
		fmt.Println("  <- detected: the chain fetched (and executed) the tampered gadget")
	}
}
