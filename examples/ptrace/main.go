// The paper's §IV-A running example: a ptrace-based anti-debugging
// check, tamperproofed with Parallax. The classic attack (Listing 2:
// nop out the detector's branch so the check always passes) destroys
// the gadgets overlapped with it, and the verification chain
// malfunctions.
//
//	go run ./examples/ptrace
package main

import (
	"fmt"
	"log"

	"parallax"
)

// buildDetector writes the scenario program:
//
//	check_ptrace(): r = ptrace(TRACEME); return r != 0
//	scramble(x):    pure mixing loop — the verification code
//	main():         if check_ptrace() { cleanup_and_exit(101) }
//	                ... licensed work ... exit(7)
func buildDetector() *parallax.Module {
	mb := parallax.NewModule("antidebug")

	// scramble: the verification candidate (pure, loopy, diverse).
	fb := mb.Func("scramble", 1)
	v := fb.Param(0)
	acc := fb.Copy(v)
	i := fb.Const(0)
	fb.Jmp("head")
	fb.Block("head")
	c := fb.Cmp(parallax.ULt, i, fb.Const(24))
	fb.Br(c, "body", "done")
	fb.Block("body")
	five := fb.Const(5)
	seven := fb.Const(7)
	fb.Assign(acc, fb.Add(fb.Xor(acc, fb.Shl(acc, five)), fb.Mul(i, seven)))
	one := fb.Const(1)
	fb.Assign(i, fb.Add(i, one))
	fb.Jmp("head")
	fb.Block("done")
	fb.Ret(acc)

	// check_ptrace: non-deterministic — exactly what oblivious hashing
	// cannot protect (§VIII-C) and Parallax can.
	fb = mb.Func("check_ptrace", 0)
	req := fb.Const(0) // PTRACE_TRACEME
	r := fb.Syscall(26, req)
	zero := fb.Const(0)
	fb.Ret(fb.Cmp(parallax.Ne, r, zero))

	fb = mb.Func("main", 0)
	detected := fb.Call("check_ptrace")
	fb.Br(detected, "bail", "work")
	fb.Block("bail")
	st := fb.Const(101)
	fb.Syscall(1, st) // cleanup_and_exit
	fb.RetVoid()
	fb.Block("work")
	// Licensed work: scramble a counter a few times.
	w := fb.Const(3)
	fb.Assign(w, fb.Call("scramble", w))
	fb.Assign(w, fb.Call("scramble", w))
	fb.Ret(fb.Const(7))
	mb.SetEntry("main")
	return mb.MustBuild()
}

func main() {
	p, err := parallax.Protect(buildDetector(), parallax.Options{
		VerifyFuncs: []string{"scramble"},
	})
	if err != nil {
		log.Fatal(err)
	}

	clean := parallax.Run(p.Image, nil)
	debugged := parallax.RunWith(p.Image, parallax.RunConfig{DebuggerAttached: true})
	fmt.Printf("no debugger:   status=%d (licensed work ran)\n", clean.Status)
	fmt.Printf("with debugger: status=%d (detector bailed out)\n", debugged.Status)

	// The attack: find check_ptrace's conditional result path and nop
	// out enough of the detector that it always reports "clean". We nop
	// the whole detector body after the prologue — brutal, like
	// Listing 2's overwrite, and guaranteed to hit protected bytes.
	sym := p.Image.MustSymbol("check_ptrace")
	cracked := p.Image.Clone()
	nops := make([]byte, sym.Size-4)
	for i := range nops {
		nops[i] = 0x90
	}
	if err := cracked.WriteAt(sym.Addr, nops); err != nil {
		log.Fatal(err)
	}
	res := parallax.RunWith(cracked, parallax.RunConfig{DebuggerAttached: true})
	fmt.Printf("cracked + debugger: status=%d err=%v\n", res.Status, res.Err)

	if res.Err == nil && res.Status == clean.Status {
		fmt.Println("=> attack succeeded (unexpected!)")
		return
	}
	fmt.Println("=> the nop patch destroyed gadgets crafted into the detector's")
	fmt.Println("   instructions; the scramble verification chain malfunctioned and the")
	fmt.Println("   cracked binary is unusable — without a single checksum.")
}
