// Quickstart: build a small program, protect one function with a ROP
// verification chain, run it, then tamper with a protected gadget and
// watch the program malfunction — the whole Parallax mechanism in one
// file.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"parallax"
)

func main() {
	// 1. Write a program in the IR. "checksum" mixes its arguments in a
	//    loop — a good verification candidate; "main" calls it
	//    repeatedly over a table.
	mb := parallax.NewModule("quickstart")

	fb := mb.Func("checksum", 2)
	a := fb.Param(0)
	b := fb.Param(1)
	h := fb.Xor(a, fb.Const(0x1234))
	i := fb.Const(0)
	fb.Jmp("head")
	fb.Block("head")
	c := fb.Cmp(parallax.ULt, i, fb.Const(16))
	fb.Br(c, "body", "done")
	fb.Block("body")
	k := fb.Const(31)
	fb.Assign(h, fb.Add(fb.Mul(h, k), b))
	three := fb.Const(3)
	fb.Assign(h, fb.Xor(h, fb.Shr(h, three)))
	one := fb.Const(1)
	fb.Assign(i, fb.Add(i, one))
	fb.Jmp("head")
	fb.Block("done")
	fb.Ret(h)

	fb = mb.Func("main", 0)
	acc := fb.Const(0)
	j := fb.Const(0)
	fb.Jmp("head")
	fb.Block("head")
	c2 := fb.Cmp(parallax.ULt, j, fb.Const(8))
	fb.Br(c2, "body", "done")
	fb.Block("body")
	fb.Assign(acc, fb.Call("checksum", acc, j))
	one2 := fb.Const(1)
	fb.Assign(j, fb.Add(j, one2))
	fb.Jmp("head")
	fb.Block("done")
	mask := fb.Const(0xFF)
	fb.Ret(fb.And(acc, mask))
	mb.SetEntry("main")
	module := mb.MustBuild()

	// 2. Protect: "checksum" becomes a ROP chain over gadgets crafted
	//    into (and found inside) the binary's code.
	p, err := parallax.Protect(module, parallax.Options{
		VerifyFuncs: []string{"checksum"},
	})
	if err != nil {
		log.Fatal(err)
	}
	chain := p.Chains["checksum"]
	fmt.Printf("protected: chain of %d words over %d distinct gadgets, %d rewrite sites\n",
		len(chain.Words), len(chain.Gadgets()), p.RewriteSites)

	// 3. Both binaries behave identically.
	base := parallax.Run(p.Baseline, nil)
	prot := parallax.Run(p.Image, nil)
	fmt.Printf("baseline:  status=%d\n", base.Status)
	fmt.Printf("protected: status=%d\n", prot.Status)
	if base.Status != prot.Status {
		log.Fatal("protection changed behaviour!")
	}

	// 4. The attack: overwrite one byte of a gadget the chain uses —
	//    the shape of a debugger breakpoint or an inline hook.
	g := chain.Gadgets()[0]
	tampered := p.Image.Clone()
	if err := tampered.WriteAt(g.Addr, []byte{0xCC}); err != nil {
		log.Fatal(err)
	}
	res := parallax.Run(tampered, nil)
	fmt.Printf("tampered gadget at %#x: status=%d err=%v\n", g.Addr, res.Status, res.Err)
	if res.Err == nil && res.Status == prot.Status {
		log.Fatal("tampering went unnoticed!")
	}
	fmt.Println("=> the verification chain malfunctioned: tampering detected implicitly,")
	fmt.Println("   with no checksum ever computed.")
}
