package parallax_test

import (
	"os"
	"path/filepath"
	"testing"

	"parallax"
)

// buildDemo returns a module with a chainable helper and a main that
// calls it repeatedly.
func buildDemo(t *testing.T) *parallax.Module {
	t.Helper()
	mb := parallax.NewModule("demo")
	fb := mb.Func("helper", 1)
	x := fb.Param(0)
	acc := fb.Copy(x)
	i := fb.Const(0)
	fb.Jmp("head")
	fb.Block("head")
	c := fb.Cmp(parallax.ULt, i, fb.Const(10))
	fb.Br(c, "body", "done")
	fb.Block("body")
	k := fb.Const(13)
	fb.Assign(acc, fb.Add(fb.Mul(acc, k), i))
	one := fb.Const(1)
	fb.Assign(i, fb.Add(i, one))
	fb.Jmp("head")
	fb.Block("done")
	fb.Ret(acc)

	fb = mb.Func("main", 0)
	v := fb.Call("helper", fb.Const(2))
	v2 := fb.Call("helper", v)
	mask := fb.Const(0x7F)
	fb.Ret(fb.And(v2, mask))
	mb.SetEntry("main")
	return mb.MustBuild()
}

func TestPublicAPIRoundTrip(t *testing.T) {
	m := buildDemo(t)
	p, err := parallax.Protect(m, parallax.Options{VerifyFuncs: []string{"helper"}})
	if err != nil {
		t.Fatal(err)
	}

	base := parallax.Run(p.Baseline, nil)
	prot := parallax.Run(p.Image, nil)
	if base.Err != nil || prot.Err != nil || base.Status != prot.Status {
		t.Fatalf("behaviour mismatch: base=%+v prot=%+v", base, prot)
	}

	// Tamper detection through the public surface.
	g := p.Chains["helper"].Gadgets()[0]
	tampered := p.Image.Clone()
	if err := tampered.WriteAt(g.Addr, []byte{0xCC}); err != nil {
		t.Fatal(err)
	}
	res := parallax.Run(tampered, nil)
	if res.Err == nil && res.Status == prot.Status {
		t.Error("tampering unnoticed via public API")
	}

	// RunWith environment control.
	dbg := parallax.RunWith(p.Image, parallax.RunConfig{DebuggerAttached: true})
	if dbg.Err != nil {
		t.Errorf("debugged run failed: %v", dbg.Err)
	}
}

func TestPublicAPIModes(t *testing.T) {
	m := buildDemo(t)
	want := parallax.Run(mustProtect(t, m, parallax.Options{
		VerifyFuncs: []string{"helper"},
	}).Image, nil)
	for _, mode := range []parallax.ChainMode{parallax.ModeXor, parallax.ModeRC4, parallax.ModeProb} {
		p := mustProtect(t, m, parallax.Options{
			VerifyFuncs: []string{"helper"},
			ChainMode:   mode,
		})
		got := parallax.Run(p.Image, nil)
		if got.Err != nil || got.Status != want.Status {
			t.Errorf("mode %v: %+v, want status %d", mode, got, want.Status)
		}
	}
}

func mustProtect(t *testing.T, m *parallax.Module, o parallax.Options) *parallax.Protected {
	t.Helper()
	p, err := parallax.Protect(m, o)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPublicAPISaveLoad(t *testing.T) {
	m := buildDemo(t)
	p := mustProtect(t, m, parallax.Options{VerifyFuncs: []string{"helper"}})
	path := filepath.Join(t.TempDir(), "demo.plx")
	if err := p.Image.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := parallax.LoadImage(path)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := parallax.Run(back, nil), parallax.Run(p.Image, nil); !got.Same(want) {
		t.Errorf("loaded image differs: %+v vs %+v", got, want)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIAutoSelect(t *testing.T) {
	m := buildDemo(t)
	// The demo's helper is above the 2% execution-share threshold, so
	// selection must fail loudly rather than pick a bad candidate.
	if _, err := parallax.SelectVerificationFunc(m, nil); err == nil {
		t.Log("auto-select picked a function (workload-dependent); fine")
	}
}
