#!/usr/bin/env bash
# ci.sh — the repository's verification entry point.
#
# Runs the full gate: build, vet, tests with a ratcheted coverage
# minimum, the race detector over the concurrent subsystems
# (internal/farm is genuinely parallel; the race pass also replays the
# internal/obs golden-trace tests with the tracer under the detector),
# and short fuzz smoke runs of the decoder-facing fuzz targets.
#
# Usage:
#   ./ci.sh            # everything (~a few minutes)
#   FUZZTIME=0 ./ci.sh # skip the fuzz smoke runs
set -euo pipefail
cd "$(dirname "$0")"

FUZZTIME="${FUZZTIME:-10s}"

# Statement-coverage ratchet: the recorded baseline is the repo-wide
# `go test -cover ./...` total at the time it was last raised. The
# gate fails when coverage drops more than 2 points below it; raise
# the baseline when new tests push the total up.
COVERAGE_BASELINE=70.6

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test -cover ./..."
coverprofile=$(mktemp -t parallax-cover.XXXXXX)
trap 'rm -f "$coverprofile"' EXIT
go test -coverprofile="$coverprofile" ./...
total=$(go tool cover -func="$coverprofile" | awk '/^total:/ {gsub(/%/,"",$3); print $3}')
echo "    total statement coverage: ${total}% (baseline ${COVERAGE_BASELINE}%)"
if awk -v t="$total" -v b="$COVERAGE_BASELINE" 'BEGIN { exit !(t + 2 < b) }'; then
    echo "FAIL: coverage ${total}% is more than 2 points below baseline ${COVERAGE_BASELINE}%" >&2
    exit 1
fi

echo "==> go test -race ./..."
go test -race ./...

# Chaos smoke gate: a seeded fault plan over the wget campaign must
# degrade gracefully — every faulted cell classifies as an infra
# error, every untouched cell is byte-identical to the fault-free
# matrix — and a checkpointed campaign killed mid-flight (torn journal
# tail included) must resume to a byte-identical report. The -race
# variant replays the injection paths and the journal's concurrent
# appends under the detector on the compact synthetic target (the
# corpus sweep is too slow under the detector; see raceEnabled).
echo "==> chaos smoke: seeded fault injection + checkpoint resume"
go test -run 'TestChaosCampaignGraceful|TestCheckpoint' ./internal/campaign
echo "==> chaos smoke (-race)"
go test -race ./internal/chaos
go test -race -run 'TestChaos|TestCheckpoint|TestRetryDeadline|TestTightDeadline' \
    ./internal/campaign ./internal/farm ./internal/emu/tb

# Campaign-engine hard gate: run the same enumerated wget campaign
# through all three execution configurations — interpreter
# clone+reload, interpreter snapshot/restore, and the default tb engine
# with the campaign-wide shared translation catalog. The detection
# matrices must be byte-identical across all three (the experiment
# itself exits non-zero and the IDENTICAL grep double-checks), and the
# default configuration must be at least as fast as reloading per
# mutant. Per-mutant time is dominated by emulation, so the speed check
# allows 10% of wall-clock noise rather than failing on scheduler
# jitter; column 6 is reload-over-tb.
echo "==> campaign-engine gate (tb + shared catalog vs interp, byte-identical matrices)"
engine_out=$(go run ./cmd/parallax-bench -experiment campaign-engine -progs wget -mutants 96)
echo "$engine_out"
if ! grep -q "IDENTICAL" <<<"$engine_out"; then
    echo "FAIL: campaign engines produced divergent detection matrices" >&2
    exit 1
fi
speedup=$(awk '/^wget / {gsub(/x$/,"",$6); print $6}' <<<"$engine_out")
if [[ -z "$speedup" ]] || awk -v s="$speedup" 'BEGIN { exit !(s < 0.90) }'; then
    echo "FAIL: tb engine slower than interp clone+reload (speedup ${speedup:-unparsed}x)" >&2
    exit 1
fi

# Shared-catalog race smoke: the catalog's concurrent adopt/install
# paths across 4 campaign workers (plus the SMC and reload variants)
# under the detector.
echo "==> shared-catalog smoke (-race)"
go test -race -run 'TestDifferentialEngines|TestCatalog' \
    ./internal/campaign ./internal/emu/tb

# Corpus-at-scale smoke: a trimmed generated-family sweep (8 programs,
# all stages — generate, invariant-check, baseline, protect, campaign —
# with the cross-engine matrix-fingerprint hard gate inside CorpusSweep)
# plus the engine table on the 160 KiB family. IDENTICAL is the hard
# gate here too; at smoke scale BENCH_corpus.json is left untouched
# (only full-scale `-experiment corpus` runs record it).
echo "==> corpus smoke: generated-family sweep (-n 8)"
corpus_out=$(go run ./cmd/parallax-bench -experiment corpus -n 8)
echo "$corpus_out"
if ! grep -q "IDENTICAL" <<<"$corpus_out"; then
    echo "FAIL: corpus engine table produced divergent detection matrices" >&2
    exit 1
fi

# Cold-coverage smoke gate: a trimmed idle/heavy × plain/composed
# sweep. The experiment itself exits non-zero when the workload fails
# to change the detection matrix (idle and heavy fingerprints equal on
# either image) or when the heavy/composed cold detection rate fails
# to rise above the idle/plain blind spot — those are the §VI-C
# acceptance claims, gated at smoke scale on every CI run. At this
# scale BENCH_coldcover.json is left untouched (only full-scale
# `-experiment coldcover` runs record it).
echo "==> coldcover smoke: workload + composition close the cold blind spot"
go run ./cmd/parallax-bench -experiment coldcover -families tiny -seeds 2 -mutants 48

# Farm fan-out smoke gate: 64 duplicate-heavy protect jobs across two
# worker counts. The experiment exits non-zero on any failed job, on a
# scan-miss count above the unique×workers concurrency ceiling (the
# content-addressed cache must convert every duplicate into a hit),
# or on any cross-worker-count output divergence.
echo "==> farm fan-out smoke: cache hit-rate and determinism at 64 jobs"
go run ./cmd/parallax-bench -experiment fanout -jobs 64 -unique 8 -workers 2,4

# The -race variant replays the cold-coverage campaign machinery (the
# four-cell sweep is too slow under the detector; the fan-out smoke
# exercises the farm's concurrency instead) over the composed
# differential test, which pins engine-identical classification on a
# composed image under the heavy workload with 4 workers.
echo "==> composed-engine smoke (-race)"
go test -race -run 'TestDifferentialEnginesComposed|TestFarmFanoutSmoke' \
    ./internal/campaign ./internal/experiment

# Differential-oracle hard gate: the gadget-biased generated batch,
# the corpus replay (baseline + protected binaries, hand-written six
# plus the 20-program generated-family slice in TestLockstepGenCorpus)
# and the reverted-bug demonstration must all hold in lockstep across
# all three engines — the production interpreter, the SDM-pseudocode
# reference, and the translation-block engine (internal/emu/tb; the
# TestLockstep* tests set Options.TB, so this gate holds tb to
# per-step interpreter equivalence too). Any reported divergence is a
# flag/semantics bug, not noise.
echo "==> differential oracle: three-way lockstep gate (generated batch + corpus replay)"
go test -run 'TestLockstep' ./internal/difftest

# Engine-throughput record: solo interp/ref/tb insts/s over the full
# corpus plus a three-way lockstep replay, written to BENCH_tb.json.
# The divergence column is the hard gate (the experiment exits
# non-zero on any divergence); the rates are informational because
# wall-clock varies by host.
echo "==> engine benchmark: difftest experiment (BENCH_tb.json)"
go run ./cmd/parallax-bench -experiment difftest -progs wget,nginx,bzip2,gzip,gcc,lame

if [[ "$FUZZTIME" != "0" ]]; then
    # FuzzLockstep replays every seed and mutation through the same
    # three-way oracle, so the tb engine is fuzzed alongside the
    # interpreters.
    echo "==> fuzz smoke: FuzzLockstep ($FUZZTIME)"
    go test -run='^$' -fuzz=FuzzLockstep -fuzztime="$FUZZTIME" ./internal/difftest
    echo "==> fuzz smoke: FuzzDecode ($FUZZTIME)"
    go test -run='^$' -fuzz=FuzzDecode -fuzztime="$FUZZTIME" ./internal/x86
    echo "==> fuzz smoke: FuzzScan ($FUZZTIME)"
    go test -run='^$' -fuzz=FuzzScan -fuzztime="$FUZZTIME" ./internal/gadget
    echo "==> fuzz smoke: FuzzImageReadFrom ($FUZZTIME)"
    go test -run='^$' -fuzz=FuzzImageReadFrom -fuzztime="$FUZZTIME" ./internal/image
    echo "==> fuzz smoke: FuzzCheckpointJournal ($FUZZTIME)"
    go test -run='^$' -fuzz=FuzzCheckpointJournal -fuzztime="$FUZZTIME" ./internal/campaign
fi

echo "==> ci.sh: all green"
