#!/usr/bin/env bash
# ci.sh — the repository's verification entry point.
#
# Runs the full gate: build, vet, tests, the race detector over the
# concurrent subsystems (internal/farm is genuinely parallel), and
# short fuzz smoke runs of the two decoder-facing fuzz targets.
#
# Usage:
#   ./ci.sh            # everything (~a few minutes)
#   FUZZTIME=0 ./ci.sh # skip the fuzz smoke runs
set -euo pipefail
cd "$(dirname "$0")"

FUZZTIME="${FUZZTIME:-10s}"

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race ./..."
go test -race ./...

if [[ "$FUZZTIME" != "0" ]]; then
    echo "==> fuzz smoke: FuzzDecode ($FUZZTIME)"
    go test -run='^$' -fuzz=FuzzDecode -fuzztime="$FUZZTIME" ./internal/x86
    echo "==> fuzz smoke: FuzzScan ($FUZZTIME)"
    go test -run='^$' -fuzz=FuzzScan -fuzztime="$FUZZTIME" ./internal/gadget
    echo "==> fuzz smoke: FuzzImageReadFrom ($FUZZTIME)"
    go test -run='^$' -fuzz=FuzzImageReadFrom -fuzztime="$FUZZTIME" ./internal/image
fi

echo "==> ci.sh: all green"
