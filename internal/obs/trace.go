package obs

import "fmt"

// EventKind discriminates trace events.
type EventKind uint8

// Trace event kinds.
const (
	// EventInst is one executed instruction (emitted subject to the
	// tracer's sampling stride).
	EventInst EventKind = iota
	// EventRet is an executed near or far return — the gadget boundary
	// of a running ROP chain. Ret events bypass sampling: every one is
	// emitted while a sink is attached.
	EventRet
)

func (k EventKind) String() string {
	switch k {
	case EventInst:
		return "inst"
	case EventRet:
		return "ret"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one execution trace record. Events are plain values so a
// hot emitter allocates nothing.
type Event struct {
	Kind EventKind `json:"kind"`
	// Icount is the emitting CPU's executed-instruction count at the
	// event (1-based: the traced instruction is included).
	Icount uint64 `json:"icount"`
	// PC is the address of the traced instruction.
	PC uint32 `json:"pc"`
	// To is the control-transfer target (EventRet only).
	To uint32 `json:"to,omitempty"`
}

// String renders the event as one stable line; golden-trace files are
// built from these.
func (e Event) String() string {
	if e.Kind == EventRet {
		return fmt.Sprintf("%-4s icount=%d pc=%08x to=%08x", e.Kind, e.Icount, e.PC, e.To)
	}
	return fmt.Sprintf("%-4s icount=%d pc=%08x", e.Kind, e.Icount, e.PC)
}

// TraceSink receives execution events. Implementations must be cheap:
// the emulator calls Emit from its interpreter loop. A sink used from
// multiple CPUs concurrently must synchronize itself; the stock sinks
// below are single-consumer by design (one CPU each).
type TraceSink interface {
	Emit(Event)
}

// RingSink keeps the most recent Cap events — attach it to a long run
// and read the tail after the fact (the flight-recorder shape).
type RingSink struct {
	cap   int
	buf   []Event
	next  int
	total uint64
}

// NewRingSink returns a ring buffer holding the last cap events
// (minimum 1).
func NewRingSink(cap int) *RingSink {
	if cap < 1 {
		cap = 1
	}
	return &RingSink{cap: cap}
}

// Emit records one event, evicting the oldest when full.
func (s *RingSink) Emit(e Event) {
	if len(s.buf) < s.cap {
		s.buf = append(s.buf, e)
	} else {
		s.buf[s.next] = e
	}
	s.next = (s.next + 1) % s.cap
	s.total++
}

// Total returns the number of events ever emitted.
func (s *RingSink) Total() uint64 { return s.total }

// Events returns the retained events oldest-first. The slice is freshly
// allocated.
func (s *RingSink) Events() []Event {
	if len(s.buf) < s.cap {
		return append([]Event(nil), s.buf...)
	}
	out := make([]Event, 0, s.cap)
	out = append(out, s.buf[s.next:]...)
	out = append(out, s.buf[:s.next]...)
	return out
}

// CaptureSink keeps the first Max events and counts the rest — the
// golden-trace shape, where the head of the run is the regression
// surface and the tail only matters as a count.
type CaptureSink struct {
	// Max bounds the retained prefix; 0 means unbounded.
	Max int
	// Events is the retained prefix, in emission order.
	Events []Event
	// Total counts every emitted event, retained or not.
	Total uint64
}

// Emit records one event.
func (s *CaptureSink) Emit(e Event) {
	s.Total++
	if s.Max == 0 || len(s.Events) < s.Max {
		s.Events = append(s.Events, e)
	}
}

// FilterSink forwards only events accepted by Keep — e.g. rets inside
// a chain's gadget spans.
type FilterSink struct {
	Keep func(Event) bool
	Next TraceSink
}

// Emit forwards e when Keep accepts it.
func (s *FilterSink) Emit(e Event) {
	if s.Keep == nil || s.Keep(e) {
		s.Next.Emit(e)
	}
}
