package obs

import (
	"context"
	"runtime/pprof"
	"sync/atomic"
	"time"
)

// stageStat accumulates span timings for one pipeline stage.
type stageStat struct {
	count atomic.Uint64
	nanos atomic.Int64
}

// Span is an open timing interval over a named pipeline stage. Spans
// are values; the zero Span (from a nil registry) ends without
// recording.
type Span struct {
	stat  *stageStat
	start time.Time
}

// StartSpan opens a timing span for the named stage. End records its
// duration; overlapping and concurrent spans of the same stage simply
// accumulate.
func (r *Registry) StartSpan(name string) Span {
	if r == nil {
		return Span{}
	}
	return Span{stat: r.stage(name), start: time.Now()}
}

// End closes the span and records its duration.
func (s Span) End() {
	if s.stat == nil {
		return
	}
	s.stat.count.Add(1)
	s.stat.nanos.Add(time.Since(s.start).Nanoseconds())
}

// Stage times f as one span of the named stage and runs it under a
// pprof label (stage=name), so CPU profiles taken during go test -bench
// attribute interpreter and pipeline time to stages. A nil registry
// runs f directly with no timing and no labels.
func (r *Registry) Stage(name string, f func()) {
	if r == nil {
		f()
		return
	}
	sp := r.StartSpan(name)
	pprof.Do(context.Background(), pprof.Labels("stage", name), func(context.Context) {
		f()
	})
	sp.End()
}

// stage returns the named stage accumulator, creating it on first use.
func (r *Registry) stage(name string) *stageStat {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.stages[name]
	if !ok {
		st = &stageStat{}
		r.stages[name] = st
	}
	return st
}

// StageSnapshot is one stage's accumulated timing.
type StageSnapshot struct {
	// Count is the number of completed spans.
	Count uint64 `json:"count"`
	// TotalNanos is the summed span duration in nanoseconds.
	TotalNanos int64 `json:"total_ns"`
}

// Total returns the accumulated duration.
func (s StageSnapshot) Total() time.Duration { return time.Duration(s.TotalNanos) }

// Mean returns the average span duration.
func (s StageSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.TotalNanos / int64(s.Count))
}
