package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilRegistryIsDisabled exercises every recording path through a
// nil registry: nothing may panic, Stage must still run its body, and
// the snapshot must be empty.
func TestNilRegistryIsDisabled(t *testing.T) {
	var r *Registry
	r.Counter("c").Add(3)
	r.Counter("c").Inc()
	r.Gauge("g").Add(-2)
	r.Gauge("g").Set(7)
	r.Histogram("h").Record(42)
	r.StartSpan("s").End()
	ran := false
	r.Stage("s", func() { ran = true })
	if !ran {
		t.Fatal("Stage on nil registry did not run its body")
	}
	if r.Counter("c").Value() != 0 || r.Gauge("g").Value() != 0 {
		t.Error("nil handles reported non-zero values")
	}
	rep := r.Snapshot()
	if len(rep.Counters)+len(rep.Gauges)+len(rep.Histograms)+len(rep.Stages) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", rep)
	}
}

// TestCountersAndGaugesConcurrent hammers one counter and one gauge
// from many goroutines and checks the totals.
func TestCountersAndGaugesConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs")
	g := r.Gauge("depth")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Add(2)
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 2*workers*per {
		t.Errorf("counter = %d, want %d", got, 2*workers*per)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if r.Counter("jobs") != c {
		t.Error("Counter not idempotent per name")
	}
}

// TestHistogram checks bucket placement, min/max tracking and the
// snapshot arithmetic.
func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for _, v := range []uint64{0, 1, 2, 3, 4, 1000} {
		h.Record(v)
	}
	s := h.Snapshot()
	if s.Count != 6 || s.Sum != 1010 {
		t.Errorf("count/sum = %d/%d, want 6/1010", s.Count, s.Sum)
	}
	if s.Min != 0 || s.Max != 1000 {
		t.Errorf("min/max = %d/%d, want 0/1000", s.Min, s.Max)
	}
	if got := s.Mean(); got < 168 || got > 169 {
		t.Errorf("mean = %v", got)
	}
	// Buckets: v=0 -> le 0; v=1 -> le 1; v=2,3 -> le 3; v=4 -> le 7;
	// v=1000 -> le 1023.
	want := map[uint64]uint64{0: 1, 1: 1, 3: 2, 7: 1, 1023: 1}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want bounds %v", s.Buckets, want)
	}
	for _, b := range s.Buckets {
		if want[b.Le] != b.Count {
			t.Errorf("bucket le=%d count=%d, want %d", b.Le, b.Count, want[b.Le])
		}
	}
}

func TestHistogramMinUnset(t *testing.T) {
	var h Histogram
	h.Record(5)
	if s := h.Snapshot(); s.Min != 5 || s.Max != 5 {
		t.Errorf("single-sample min/max = %d/%d, want 5/5", s.Min, s.Max)
	}
}

// TestRingSinkWraparound fills a ring past capacity and checks order
// and retention.
func TestRingSinkWraparound(t *testing.T) {
	s := NewRingSink(3)
	for i := 1; i <= 5; i++ {
		s.Emit(Event{Kind: EventInst, Icount: uint64(i)})
	}
	if s.Total() != 5 {
		t.Errorf("total = %d, want 5", s.Total())
	}
	ev := s.Events()
	if len(ev) != 3 || ev[0].Icount != 3 || ev[2].Icount != 5 {
		t.Errorf("ring retained %+v, want icounts 3,4,5", ev)
	}
}

func TestCaptureSinkPrefix(t *testing.T) {
	s := &CaptureSink{Max: 2}
	for i := 1; i <= 4; i++ {
		s.Emit(Event{Icount: uint64(i)})
	}
	if s.Total != 4 || len(s.Events) != 2 || s.Events[1].Icount != 2 {
		t.Errorf("capture = total %d events %+v", s.Total, s.Events)
	}
}

func TestFilterSink(t *testing.T) {
	cap := &CaptureSink{}
	f := &FilterSink{Keep: func(e Event) bool { return e.Kind == EventRet }, Next: cap}
	f.Emit(Event{Kind: EventInst})
	f.Emit(Event{Kind: EventRet, To: 0x10})
	if len(cap.Events) != 1 || cap.Events[0].To != 0x10 {
		t.Errorf("filter passed %+v", cap.Events)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Kind: EventRet, Icount: 7, PC: 0x8048000, To: 0x8048010}
	if got := e.String(); got != "ret  icount=7 pc=08048000 to=08048010" {
		t.Errorf("Event.String() = %q", got)
	}
}

// TestSpansAndStages records spans both ways and checks the exported
// stage accounting.
func TestSpansAndStages(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("scan")
	time.Sleep(time.Millisecond)
	sp.End()
	r.Stage("scan", func() { time.Sleep(time.Millisecond) })
	rep := r.Snapshot()
	st, ok := rep.Stages["scan"]
	if !ok || st.Count != 2 {
		t.Fatalf("stage scan = %+v, want count 2", st)
	}
	if st.Total() < 2*time.Millisecond {
		t.Errorf("stage total %v too small", st.Total())
	}
	if st.Mean() < time.Millisecond {
		t.Errorf("stage mean %v too small", st.Mean())
	}
}

// TestReportExport snapshots a populated registry and checks both the
// JSON and table forms.
func TestReportExport(t *testing.T) {
	r := NewRegistry()
	r.Counter("emu.insts").Add(123)
	r.Gauge("farm.queue_depth").Set(4)
	r.Histogram("farm.job_latency_ns").Record(1 << 20)
	r.Stage("layout", func() {})
	rep := r.Snapshot()
	rep.Derive("farm.scan_cache.hit_rate", 0.75)

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if back.Counters["emu.insts"] != 123 || back.Gauges["farm.queue_depth"] != 4 {
		t.Errorf("JSON round-trip lost values: %+v", back)
	}
	if back.Derived["farm.scan_cache.hit_rate"] != 0.75 {
		t.Errorf("derived lost: %+v", back.Derived)
	}
	if back.Histograms["farm.job_latency_ns"].Count != 1 {
		t.Errorf("histogram lost: %+v", back.Histograms)
	}

	table := rep.String()
	for _, want := range []string{"emu.insts", "farm.queue_depth", "farm.job_latency_ns",
		"layout", "farm.scan_cache.hit_rate"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

// BenchmarkDisabledCounter measures the disabled (nil-handle) hot
// path: the tentpole's acceptance bar is that it is a nil check.
func BenchmarkDisabledCounter(b *testing.B) {
	var c *Counter
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkEnabledCounter measures the enabled hot path for contrast.
func BenchmarkEnabledCounter(b *testing.B) {
	c := NewRegistry().Counter("c")
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}
