// Package obs is the zero-dependency observability layer shared by the
// whole Parallax stack: counter/gauge/histogram metrics with atomic
// hot-path recording, a ring-buffered execution tracer for the
// emulator, and span-style timing (with pprof labels) around the
// protection pipeline stages.
//
// The design contract is that instrumentation must be free when it is
// off. Every metric handle and every sink is nil-safe: a nil *Counter,
// *Gauge, *Histogram or *Registry turns each recording call into a
// single nil check, so subsystems keep their handles unconditionally
// and never branch on "is observability configured". A component is
// instrumented by asking a shared *Registry (possibly nil) for its
// handles once, up front:
//
//	m := struct {
//	    jobs *obs.Counter
//	    lat  *obs.Histogram
//	}{reg.Counter("farm.jobs"), reg.Histogram("farm.job_latency_ns")}
//	...
//	m.jobs.Add(1)            // no-op when reg was nil
//	m.lat.Record(uint64(d))  // ditto
//
// Registries are safe for concurrent use; handle creation takes a
// mutex, recording is lock-free atomics.
package obs

import (
	"sort"
	"sync"
)

// Registry is the central hub metric handles are created from and
// snapshots are exported of. The zero value is not useful; use
// NewRegistry. A nil *Registry is fully functional as "observability
// disabled": every handle it returns is nil and records nothing.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	stages   map[string]*stageStat
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		stages:   make(map[string]*stageStat),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (recording-disabled) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil
// registry returns a nil (recording-disabled) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use. A
// nil registry returns a nil (recording-disabled) histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// sortedKeys returns the keys of m in lexical order; exports use it so
// reports are deterministic.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
