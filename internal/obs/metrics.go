package obs

import (
	"math/bits"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. Recording is a single
// atomic add; a nil *Counter records nothing, so the disabled path
// costs one nil check.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous signed level: queue depths, breaker state.
// A nil *Gauge records nothing.
type Gauge struct {
	v atomic.Int64
}

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value returns the current level (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the bucket count of a Histogram: bucket i counts
// observations v with bitlen(v) == i, i.e. exponential base-2 buckets
// [2^(i-1), 2^i). 65 buckets cover the full uint64 range (bucket 0 is
// exactly v == 0).
const histBuckets = 65

// Histogram accumulates a distribution in exponential base-2 buckets.
// Recording is three atomic adds and is safe for concurrent use; a nil
// *Histogram records nothing. Min/max tracking uses CAS loops that
// almost never retry once the extremes settle.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	min     atomic.Uint64 // stored as ^v so zero-value means "unset"
	max     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Record adds one observation.
func (h *Histogram) Record(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
	for {
		cur := h.min.Load()
		if ^v <= cur {
			break
		}
		if h.min.CompareAndSwap(cur, ^v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur {
			break
		}
		if h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram, suitable
// for JSON export.
type HistogramSnapshot struct {
	Count uint64 `json:"count"`
	Sum   uint64 `json:"sum"`
	Min   uint64 `json:"min"`
	Max   uint64 `json:"max"`
	// Buckets lists the non-empty exponential buckets: each covers
	// observations v with Le/2 < v <= hi where Le is the bucket's
	// inclusive upper bound 2^i - 1 (Le 0 is exactly v == 0).
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Bucket is one non-empty histogram bucket.
type Bucket struct {
	// Le is the inclusive upper bound of the bucket.
	Le uint64 `json:"le"`
	// Count is the number of observations in the bucket.
	Count uint64 `json:"count"`
}

// Mean returns the arithmetic mean of the recorded observations.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Snapshot copies the histogram's current state. Concurrent recording
// may tear count against buckets by a few in-flight observations; every
// individual field is still a consistent atomic read.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	if m := h.min.Load(); m != 0 {
		s.Min = ^m
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			le := uint64(0)
			if i > 0 {
				le = 1<<uint(i) - 1
			}
			s.Buckets = append(s.Buckets, Bucket{Le: le, Count: n})
		}
	}
	return s
}
