package obs_test

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"parallax/internal/attack"
	"parallax/internal/core"
	"parallax/internal/corpus"
	"parallax/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden trace files")

// goldenPrograms are the seed-protected functions whose chain traces
// are pinned. Static chains keep the bytes — and therefore the gadget
// addresses in the trace — fully deterministic.
var goldenPrograms = []string{"wget", "nginx"}

// chainTrace protects prog with static chains, runs it with a trace
// sink filtered to returns entering chain gadgets, and renders the
// first maxEvents as canonical text lines. Everything upstream of the
// returned bytes is deterministic: the protection layout, the
// emulator, and the Event.String format.
func chainTrace(t *testing.T, progName string, maxEvents int) []byte {
	t.Helper()
	p, err := corpus.ByName(progName)
	if err != nil {
		t.Fatal(err)
	}
	prot, err := core.Protect(p.Build(), core.Options{
		VerifyFuncs: []string{p.VerifyFunc},
	})
	if err != nil {
		t.Fatalf("protecting %s: %v", progName, err)
	}
	type span struct{ lo, hi uint32 }
	var spans []span
	for _, fn := range prot.VerifyFuncs {
		for _, g := range prot.Chains[fn].Gadgets() {
			spans = append(spans, span{g.Addr, g.Addr + uint32(g.Len)})
		}
	}
	if len(spans) == 0 {
		t.Fatalf("%s: protection produced no chain gadgets", progName)
	}
	cap := &obs.CaptureSink{Max: maxEvents}
	sink := &obs.FilterSink{
		Keep: func(e obs.Event) bool {
			if e.Kind != obs.EventRet {
				return false
			}
			for _, s := range spans {
				if e.To >= s.lo && e.To < s.hi {
					return true
				}
			}
			return false
		},
		Next: cap,
	}
	res := attack.RunWith(context.Background(), prot.Image, attack.RunConfig{
		Stdin: p.Stdin,
		Trace: sink,
	})
	if res.Err != nil {
		t.Fatalf("running protected %s: %v", progName, res.Err)
	}
	if len(cap.Events) == 0 {
		t.Fatalf("%s: chain filter captured no events (total %d emitted)", progName, cap.Total)
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "# %s/%s static chain, first %d gadget-entry returns of %d\n",
		progName, p.VerifyFunc, len(cap.Events), cap.Total)
	for _, e := range cap.Events {
		buf.WriteString(e.String())
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// TestGoldenChainTraces replays the committed gadget-chain traces:
// protect, run, capture, and compare byte-for-byte against testdata/.
// Two back-to-back captures must also agree, which pins the whole
// pipeline's determinism — a layout, scanner, emulator or trace-format
// change that moves a single gadget shows up as a diff here.
// Regenerate intentionally with: go test ./internal/obs/ -run Golden -update
func TestGoldenChainTraces(t *testing.T) {
	for _, prog := range goldenPrograms {
		t.Run(prog, func(t *testing.T) {
			got := chainTrace(t, prog, 256)
			again := chainTrace(t, prog, 256)
			if !bytes.Equal(got, again) {
				t.Fatal("trace is not byte-stable across two runs in one process")
			}
			path := filepath.Join("testdata", prog+"_chain_trace.golden")
			if *update {
				if err := os.WriteFile(path, got, 0o666); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("trace diverged from %s\n got %d bytes, want %d; first lines:\n%s",
					path, len(got), len(want), firstDiff(got, want))
			}
		})
	}
}

// firstDiff renders the first differing line pair for a readable
// failure message.
func firstDiff(got, want []byte) string {
	g := bytes.Split(got, []byte{'\n'})
	w := bytes.Split(want, []byte{'\n'})
	for i := 0; i < len(g) && i < len(w); i++ {
		if !bytes.Equal(g[i], w[i]) {
			return fmt.Sprintf("line %d:\n got: %s\nwant: %s", i+1, g[i], w[i])
		}
	}
	return fmt.Sprintf("length differs: %d vs %d lines", len(g), len(w))
}
