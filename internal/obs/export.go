package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// Report is a point-in-time export of a registry: every counter, gauge,
// histogram and stage timing, plus caller-derived values (rates,
// ratios) that are not first-class metrics. Reports marshal to stable
// JSON (map keys sort) and render as an aligned human table.
type Report struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Stages     map[string]StageSnapshot     `json:"stages,omitempty"`
	Derived    map[string]float64           `json:"derived,omitempty"`
}

// Snapshot exports the registry's current state. A nil registry yields
// an empty (but usable) report.
func (r *Registry) Snapshot() *Report {
	rep := &Report{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
		Stages:     map[string]StageSnapshot{},
		Derived:    map[string]float64{},
	}
	if r == nil {
		return rep
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	stages := make(map[string]*stageStat, len(r.stages))
	for k, v := range r.stages {
		stages[k] = v
	}
	r.mu.Unlock()

	for k, c := range counters {
		rep.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		rep.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		rep.Histograms[k] = h.Snapshot()
	}
	for k, st := range stages {
		rep.Stages[k] = StageSnapshot{Count: st.count.Load(), TotalNanos: st.nanos.Load()}
	}
	return rep
}

// Derive records a caller-computed value (a hit rate, a ratio) into the
// report.
func (rep *Report) Derive(name string, v float64) {
	if rep.Derived == nil {
		rep.Derived = map[string]float64{}
	}
	rep.Derived[name] = v
}

// WriteJSON writes the report as indented JSON.
func (rep *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteTable renders the report as an aligned human-readable table,
// sections in a fixed order and rows sorted by metric name.
func (rep *Report) WriteTable(w io.Writer) {
	if len(rep.Counters) > 0 {
		fmt.Fprintln(w, "counters:")
		for _, k := range sortedKeys(rep.Counters) {
			fmt.Fprintf(w, "  %-40s %12d\n", k, rep.Counters[k])
		}
	}
	if len(rep.Gauges) > 0 {
		fmt.Fprintln(w, "gauges:")
		for _, k := range sortedKeys(rep.Gauges) {
			fmt.Fprintf(w, "  %-40s %12d\n", k, rep.Gauges[k])
		}
	}
	if len(rep.Histograms) > 0 {
		fmt.Fprintln(w, "histograms:")
		for _, k := range sortedKeys(rep.Histograms) {
			h := rep.Histograms[k]
			fmt.Fprintf(w, "  %-40s count %d  mean %.1f  min %d  max %d\n",
				k, h.Count, h.Mean(), h.Min, h.Max)
		}
	}
	if len(rep.Stages) > 0 {
		fmt.Fprintln(w, "stages:")
		for _, k := range sortedKeys(rep.Stages) {
			st := rep.Stages[k]
			fmt.Fprintf(w, "  %-40s count %-6d total %-12v mean %v\n",
				k, st.Count, st.Total().Round(time.Microsecond),
				st.Mean().Round(time.Microsecond))
		}
	}
	if len(rep.Derived) > 0 {
		fmt.Fprintln(w, "derived:")
		for _, k := range sortedKeys(rep.Derived) {
			fmt.Fprintf(w, "  %-40s %12.4f\n", k, rep.Derived[k])
		}
	}
}

// String renders the table form.
func (rep *Report) String() string {
	var b strings.Builder
	rep.WriteTable(&b)
	return b.String()
}
