package difftest

import (
	"bytes"
	"errors"
	"fmt"
	"strings"

	"parallax/internal/emu"
	"parallax/internal/emu/tb"
	"parallax/internal/image"
	"parallax/internal/obs"
	"parallax/internal/x86"
)

// Options configures one lockstep run.
type Options struct {
	// MaxInst bounds the retired-instruction count per engine; 0 means
	// DefaultMaxInst. Hitting the bound is a clean (non-divergent)
	// termination: an infinite loop both engines agree on is not a
	// semantics bug.
	MaxInst uint64

	// Stdin is fed to both engines' kernel models.
	Stdin []byte

	// StackSize is passed to both loaders; 0 means the default stack.
	StackSize uint32

	// Registry receives difftest.programs / difftest.insts /
	// difftest.divergences counters; nil disables metrics.
	Registry *obs.Registry

	// LegacyRefRCROF makes the reference interpreter reproduce the
	// seed RCR overflow-flag bug. Test-only: it demonstrates the
	// oracle catches the bug when the fix is (effectively) reverted.
	LegacyRefRCROF bool

	// TB adds the translation-block engine (internal/emu/tb) as a
	// third lockstep participant: a separate CPU stepped through tb
	// and compared against the interpreter after every instruction —
	// EIP, GPRs, full EFLAGS, Icount/Cycles accounting, exit state,
	// and (on clean exit) kernel output and all mapped memory.
	TB bool
}

// DefaultMaxInst bounds one lockstep run.
const DefaultMaxInst = 1 << 20

// Divergence reports the first disagreement between the two engines.
type Divergence struct {
	Step   uint64 // retired instructions before the diverging one
	PC     uint32 // EIP of the diverging instruction
	Inst   string // best-effort disassembly at PC
	Kind   string // "error", "eip", "reg", "flags", "exit", "store", "status", "stdout", "stderr", "memory"
	Detail string
	Fast   string // production-engine state after the step
	Ref    string // reference-interpreter state after the step

	// Program is the generated program that diverged, when the run
	// came from RunProgram; nil for corpus images.
	Program *Program
}

func (d *Divergence) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "divergence at step %d pc=%#x (%s): %s\n", d.Step, d.PC, d.Inst, d.Detail)
	fmt.Fprintf(&b, "  fast: %s\n", d.Fast)
	fmt.Fprintf(&b, "  ref:  %s", d.Ref)
	return b.String()
}

// Result summarises one lockstep run.
type Result struct {
	Div    *Divergence // nil when the engines stayed in agreement
	Insts  uint64      // instructions retired in lockstep
	Exited bool        // program ran to a clean exit
	Status int32
}

// Run executes img on both engines in lockstep, comparing registers,
// EFLAGS, EIP and every memory store after each retired instruction.
// The returned error reports harness failures (unloadable image), not
// divergences — those are in Result.Div.
func Run(img *image.Image, opts Options) (*Result, error) {
	cfg := emu.LoadConfig{StackSize: opts.StackSize}
	fast, err := emu.LoadImageWith(img, cfg)
	if err != nil {
		return nil, err
	}
	ref, err := NewRef(img, cfg)
	if err != nil {
		return nil, err
	}
	fastOS := emu.NewOS(opts.Stdin)
	refOS := emu.NewOS(opts.Stdin)
	fast.OS = fastOS
	ref.OS = refOS
	ref.legacyRCROF = opts.LegacyRefRCROF

	// Third engine: a separate CPU stepped through the translation-block
	// backend, held to interpreter-identical observable state.
	var tbc *emu.CPU
	var tbe *tb.Engine
	var tbOS *emu.OS
	if opts.TB {
		tbc, err = emu.LoadImageWith(img, cfg)
		if err != nil {
			return nil, err
		}
		tbOS = emu.NewOS(opts.Stdin)
		tbc.OS = tbOS
		tbe = tb.New(tbc, opts.Registry)
		defer tbe.Close()
	}

	limit := opts.MaxInst
	if limit == 0 {
		limit = DefaultMaxInst
	}
	opts.Registry.Counter("difftest.programs").Inc()

	res := &Result{}
	for res.Div == nil && !fast.Exited && !ref.Exited && fast.Icount < limit {
		pc := fast.EIP
		instStr := disasmAt(fast.Mem, pc)
		errF := fast.Step()
		errR := ref.Step()
		res.Insts = fast.Icount

		cf, cr := classify(errF), classify(errR)
		if tbe != nil {
			ct := classify(tbe.Step())
			if ct != cf {
				res.Div = divergeTB(fast, tbc, res.Insts, pc, instStr, "tb-error",
					fmt.Sprintf("fast stopped with %q, tb with %q", cf, ct))
				break
			}
			if d := compareTB(fast, tbc, res.Insts, pc, instStr); d != nil {
				res.Div = d
				break
			}
		}
		if cf != cr {
			res.Div = diverge(fast, ref, res.Insts, pc, instStr, "error",
				fmt.Sprintf("fast stopped with %q, ref with %q", cf, cr))
			break
		}
		if cf != "" {
			// Both engines stopped with the same fault class: compare
			// the state they faulted in, then finish.
			res.Div = compareState(fast, ref, res.Insts, pc, instStr)
			break
		}
		res.Div = compareState(fast, ref, res.Insts, pc, instStr)
	}

	if res.Div == nil && fast.Exited != ref.Exited {
		res.Div = diverge(fast, ref, res.Insts, fast.EIP, "",
			"exit", fmt.Sprintf("fast exited=%t, ref exited=%t", fast.Exited, ref.Exited))
	}
	if res.Div == nil && fast.Exited {
		res.Exited = true
		res.Status = fast.Status
		res.Div = compareFinal(fast, ref, fastOS, refOS, img, opts, res.Insts)
	}
	if res.Div == nil && tbc != nil && fast.Exited {
		res.Div = compareTBFinal(fast, tbc, fastOS, tbOS, img, opts, res.Insts)
	}

	opts.Registry.Counter("difftest.insts").Add(res.Insts)
	if res.Div != nil {
		opts.Registry.Counter("difftest.divergences").Inc()
	}
	return res, nil
}

// RunProgram builds a generated program and runs it in lockstep; a
// divergence carries the program for minimization.
func RunProgram(p *Program, opts Options) (*Result, error) {
	img, err := p.Build()
	if err != nil {
		return nil, fmt.Errorf("difftest: building %s: %w", p.Name, err)
	}
	if opts.Stdin == nil {
		opts.Stdin = p.Stdin
	}
	res, err := Run(img, opts)
	if err != nil {
		return nil, err
	}
	if res.Div != nil {
		res.Div.Program = p
	}
	return res, err
}

// classify normalizes a run-ending error into a comparable class.
// Stack-overflow wrappers unwrap to the underlying fault, and the
// engine prefixes ("emu: ", "ref: ") are stripped so identical
// conditions compare equal.
func classify(err error) string {
	if err == nil {
		return ""
	}
	var fe *emu.FaultError
	if errors.As(err, &fe) {
		return fmt.Sprintf("fault:%s:%#x:eip=%#x", fe.Access, fe.Addr, fe.EIP)
	}
	var df *emu.DecodeFault
	if errors.As(err, &df) {
		return fmt.Sprintf("decode:eip=%#x", df.EIP)
	}
	var de *emu.DivideError
	if errors.As(err, &de) {
		return fmt.Sprintf("divide:eip=%#x", de.EIP)
	}
	if errors.Is(err, emu.ErrHalted) {
		return "halt"
	}
	if errors.Is(err, emu.ErrBreakpoint) {
		return "int3"
	}
	msg := err.Error()
	msg = strings.TrimPrefix(msg, "emu: ")
	msg = strings.TrimPrefix(msg, "ref: ")
	return "err:" + msg
}

// compareState checks the full architectural state after one lockstep
// step: EIP, the eight GPRs, the seven modeled flags, the exit latch,
// and the bytes of every store the reference interpreter logged.
func compareState(fast *emu.CPU, ref *RefCPU, step uint64, pc uint32, instStr string) *Divergence {
	if fast.EIP != ref.EIP {
		return diverge(fast, ref, step, pc, instStr, "eip",
			fmt.Sprintf("eip %#x vs %#x", fast.EIP, ref.EIP))
	}
	for r := x86.Reg(0); r < x86.NumRegs; r++ {
		if fast.Reg[r] != ref.Reg[r] {
			return diverge(fast, ref, step, pc, instStr, "reg",
				fmt.Sprintf("%s %#x vs %#x", r, fast.Reg[r], ref.Reg[r]))
		}
	}
	if fast.Flags() != ref.Flags() {
		return diverge(fast, ref, step, pc, instStr, "flags",
			fmt.Sprintf("eflags %#x vs %#x (%s vs %s)",
				fast.Flags(), ref.Flags(), flagString(fast.Flags()), flagString(ref.Flags())))
	}
	if fast.Exited != ref.Exited || (fast.Exited && fast.Status != ref.Status) {
		return diverge(fast, ref, step, pc, instStr, "exit",
			fmt.Sprintf("exited=%t/%d vs %t/%d", fast.Exited, fast.Status, ref.Exited, ref.Status))
	}
	for _, st := range ref.Stores() {
		fb, errF := fast.Mem.Peek(st.Addr, st.Size)
		rb, errR := ref.Mem.Peek(st.Addr, st.Size)
		if errF != nil || errR != nil {
			continue // the store itself faulted; error class already compared
		}
		if !bytes.Equal(fb, rb) {
			return diverge(fast, ref, step, pc, instStr, "store",
				fmt.Sprintf("store at %#x: % x vs % x", st.Addr, fb, rb))
		}
	}
	return nil
}

// compareFinal checks exit status, kernel output and all mapped
// memory once a program has exited cleanly. The full-memory sweep
// catches stores the production engine performed that the reference
// interpreter did not (the per-step store log only covers the
// reference side).
func compareFinal(fast *emu.CPU, ref *RefCPU, fastOS, refOS *emu.OS,
	img *image.Image, opts Options, step uint64) *Divergence {
	if fast.Status != ref.Status {
		return diverge(fast, ref, step, fast.EIP, "", "status",
			fmt.Sprintf("exit status %d vs %d", fast.Status, ref.Status))
	}
	if !bytes.Equal(fastOS.Stdout.Bytes(), refOS.Stdout.Bytes()) {
		return diverge(fast, ref, step, fast.EIP, "", "stdout",
			fmt.Sprintf("stdout %q vs %q", fastOS.Stdout.Bytes(), refOS.Stdout.Bytes()))
	}
	if !bytes.Equal(fastOS.Stderr.Bytes(), refOS.Stderr.Bytes()) {
		return diverge(fast, ref, step, fast.EIP, "", "stderr",
			fmt.Sprintf("stderr %q vs %q", fastOS.Stderr.Bytes(), refOS.Stderr.Bytes()))
	}
	ranges := make([][2]uint32, 0, len(img.Sections)+1)
	for _, s := range img.Sections {
		ranges = append(ranges, [2]uint32{s.Addr, s.Size})
	}
	stackSize := opts.StackSize
	if stackSize == 0 {
		stackSize = emu.DefaultStackSize
	}
	ranges = append(ranges, [2]uint32{emu.DefaultStackTop - stackSize, stackSize})
	for _, rg := range ranges {
		const chunk = 1 << 16
		for off := uint32(0); off < rg[1]; off += chunk {
			n := rg[1] - off
			if n > chunk {
				n = chunk
			}
			fb, errF := fast.Mem.Peek(rg[0]+off, n)
			rb, errR := ref.Mem.Peek(rg[0]+off, n)
			if errF != nil || errR != nil {
				continue
			}
			if !bytes.Equal(fb, rb) {
				i := 0
				for fb[i] == rb[i] {
					i++
				}
				addr := rg[0] + off + uint32(i)
				return diverge(fast, ref, step, fast.EIP, "", "memory",
					fmt.Sprintf("byte at %#x: %#x vs %#x", addr, fb[i], rb[i]))
			}
		}
	}
	return nil
}

// compareTB checks the translation-block engine's CPU against the
// interpreter's after one lockstep step. Both are emu.CPUs, so the
// comparison is stricter than the reference one: deterministic
// instruction and cycle accounting must match too.
func compareTB(fast, tbc *emu.CPU, step uint64, pc uint32, instStr string) *Divergence {
	if fast.EIP != tbc.EIP {
		return divergeTB(fast, tbc, step, pc, instStr, "tb-eip",
			fmt.Sprintf("eip %#x vs %#x", fast.EIP, tbc.EIP))
	}
	for r := x86.Reg(0); r < x86.NumRegs; r++ {
		if fast.Reg[r] != tbc.Reg[r] {
			return divergeTB(fast, tbc, step, pc, instStr, "tb-reg",
				fmt.Sprintf("%s %#x vs %#x", r, fast.Reg[r], tbc.Reg[r]))
		}
	}
	if fast.Flags() != tbc.Flags() {
		return divergeTB(fast, tbc, step, pc, instStr, "tb-flags",
			fmt.Sprintf("eflags %#x vs %#x (%s vs %s)",
				fast.Flags(), tbc.Flags(), flagString(fast.Flags()), flagString(tbc.Flags())))
	}
	if fast.Icount != tbc.Icount || fast.Cycles != tbc.Cycles {
		return divergeTB(fast, tbc, step, pc, instStr, "tb-count",
			fmt.Sprintf("icount %d/%d vs cycles %d/%d",
				fast.Icount, tbc.Icount, fast.Cycles, tbc.Cycles))
	}
	if fast.Exited != tbc.Exited || (fast.Exited && fast.Status != tbc.Status) {
		return divergeTB(fast, tbc, step, pc, instStr, "tb-exit",
			fmt.Sprintf("exited=%t/%d vs %t/%d", fast.Exited, fast.Status, tbc.Exited, tbc.Status))
	}
	return nil
}

// compareTBFinal checks kernel output and all mapped memory between the
// interpreter and the tb engine after a clean exit.
func compareTBFinal(fast, tbc *emu.CPU, fastOS, tbOS *emu.OS,
	img *image.Image, opts Options, step uint64) *Divergence {
	if !bytes.Equal(fastOS.Stdout.Bytes(), tbOS.Stdout.Bytes()) {
		return divergeTB(fast, tbc, step, fast.EIP, "", "tb-stdout",
			fmt.Sprintf("stdout %q vs %q", fastOS.Stdout.Bytes(), tbOS.Stdout.Bytes()))
	}
	if !bytes.Equal(fastOS.Stderr.Bytes(), tbOS.Stderr.Bytes()) {
		return divergeTB(fast, tbc, step, fast.EIP, "", "tb-stderr",
			fmt.Sprintf("stderr %q vs %q", fastOS.Stderr.Bytes(), tbOS.Stderr.Bytes()))
	}
	ranges := make([][2]uint32, 0, len(img.Sections)+1)
	for _, s := range img.Sections {
		ranges = append(ranges, [2]uint32{s.Addr, s.Size})
	}
	stackSize := opts.StackSize
	if stackSize == 0 {
		stackSize = emu.DefaultStackSize
	}
	ranges = append(ranges, [2]uint32{emu.DefaultStackTop - stackSize, stackSize})
	for _, rg := range ranges {
		const chunk = 1 << 16
		for off := uint32(0); off < rg[1]; off += chunk {
			n := rg[1] - off
			if n > chunk {
				n = chunk
			}
			fb, errF := fast.Mem.Peek(rg[0]+off, n)
			tbb, errT := tbc.Mem.Peek(rg[0]+off, n)
			if errF != nil || errT != nil {
				continue
			}
			if !bytes.Equal(fb, tbb) {
				i := 0
				for fb[i] == tbb[i] {
					i++
				}
				addr := rg[0] + off + uint32(i)
				return divergeTB(fast, tbc, step, fast.EIP, "", "tb-memory",
					fmt.Sprintf("byte at %#x: %#x vs %#x", addr, fb[i], tbb[i]))
			}
		}
	}
	return nil
}

func divergeTB(fast, tbc *emu.CPU, step uint64, pc uint32,
	instStr, kind, detail string) *Divergence {
	return &Divergence{
		Step: step, PC: pc, Inst: instStr, Kind: kind, Detail: detail,
		Fast: fast.String(),
		Ref:  tbc.String(),
	}
}

func diverge(fast *emu.CPU, ref *RefCPU, step uint64, pc uint32,
	instStr, kind, detail string) *Divergence {
	return &Divergence{
		Step: step, PC: pc, Inst: instStr, Kind: kind, Detail: detail,
		Fast: fast.String(),
		Ref:  ref.String(),
	}
}

// String renders the reference state for divergence reports, in the
// same shape as emu.CPU.String.
func (c *RefCPU) String() string {
	return fmt.Sprintf(
		"eax=%08x ebx=%08x ecx=%08x edx=%08x esi=%08x edi=%08x ebp=%08x esp=%08x eip=%08x "+
			"[cf=%t zf=%t sf=%t of=%t]",
		c.Reg[x86.EAX], c.Reg[x86.EBX], c.Reg[x86.ECX], c.Reg[x86.EDX],
		c.Reg[x86.ESI], c.Reg[x86.EDI], c.Reg[x86.EBP], c.Reg[x86.ESP], c.EIP,
		c.CF, c.ZF, c.SF, c.OF)
}

func flagString(f uint32) string {
	var b strings.Builder
	for _, fl := range []struct {
		bit  uint32
		name string
	}{{1 << 0, "CF"}, {1 << 2, "PF"}, {1 << 4, "AF"}, {1 << 6, "ZF"},
		{1 << 7, "SF"}, {1 << 10, "DF"}, {1 << 11, "OF"}} {
		if f&fl.bit != 0 {
			if b.Len() > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(fl.name)
		}
	}
	if b.Len() == 0 {
		return "-"
	}
	return b.String()
}

// disasmAt renders the instruction at pc for divergence reports.
// Best-effort: undecodable bytes render as hex.
func disasmAt(mem *emu.Memory, pc uint32) string {
	b, err := mem.Peek(pc, 15)
	if err != nil {
		if b, err = mem.Peek(pc, 1); err != nil {
			return "??"
		}
	}
	inst, derr := x86.Decode(b, pc)
	if derr != nil {
		return fmt.Sprintf("bytes % x", b[:min(4, len(b))])
	}
	return inst.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
