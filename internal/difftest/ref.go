package difftest

import (
	"errors"
	"fmt"

	"parallax/internal/emu"
	"parallax/internal/image"
	"parallax/internal/x86"
)

// RefCPU is the reference interpreter: one x86-32 thread whose
// semantics are transcribed from the SDM pseudocode with no decode
// cache and no derived flag formulas. It reuses the emu error types
// and memory bus (the bus is harness, not ISA) but re-decodes every
// instruction and recomputes every flag bit-by-bit.
type RefCPU struct {
	Reg [x86.NumRegs]uint32
	EIP uint32

	CF, PF, AF, ZF, SF, OF, DF bool

	Mem *emu.Memory
	OS  *emu.OS

	Icount uint64
	Exited bool
	Status int32

	// stores logs every memory store of the current Step (address and
	// size only); the lockstep runner reads the bytes back from both
	// engines' memories and compares them.
	stores []Store

	// legacyRCROF reproduces the seed emulator's RCR overflow-flag bug
	// (OF = MSB-1 of the result alone). Used by tests to demonstrate
	// the oracle catches the bug when reverted; never set otherwise.
	legacyRCROF bool
}

// Store records one logged memory store.
type Store struct {
	Addr uint32
	Size uint32
}

// NewRef builds a reference CPU for an image using the same loader as
// the production engine, so both start from bit-identical state.
func NewRef(img *image.Image, cfg emu.LoadConfig) (*RefCPU, error) {
	seed, err := emu.LoadImageWith(img, cfg)
	if err != nil {
		return nil, err
	}
	return &RefCPU{Reg: seed.Reg, EIP: seed.EIP, Mem: seed.Mem}, nil
}

// Stores returns the store log of the most recent Step.
func (c *RefCPU) Stores() []Store { return c.stores }

const refMaxInstLen = 15

// fetchWindow mirrors the engine's fetch-unit view: up to 15 bytes
// stitched across contiguous executable segments, with the first byte
// classifying unmapped/non-executable faults.
func (c *RefCPU) fetchWindow(addr uint32) ([]byte, uint32, error) {
	if err := c.checkFetchByte(addr); err != nil {
		return nil, addr, err
	}
	window := make([]byte, 0, refMaxInstLen)
	a := addr
	for len(window) < refMaxInstLen {
		s := c.Mem.Segment(a)
		if s == nil || s.Perm&image.PermX == 0 {
			break
		}
		off := a - s.Addr
		n := uint32(refMaxInstLen - len(window))
		if off+n > uint32(len(s.Data)) {
			n = uint32(len(s.Data)) - off
		}
		window = append(window, s.Data[off:off+n]...)
		a += n
	}
	return window, a, nil
}

func (c *RefCPU) checkFetchByte(addr uint32) error {
	s := c.Mem.Segment(addr)
	if s == nil {
		return &emu.FaultError{Addr: addr, EIP: c.EIP, Access: emu.AccessFetch,
			Reason: "unmapped"}
	}
	if s.Perm&image.PermX == 0 {
		return &emu.FaultError{Addr: addr, EIP: c.EIP, Access: emu.AccessFetch,
			Reason: fmt.Sprintf("segment %s is %s", s.Name, s.Perm)}
	}
	return nil
}

// decode fetches and decodes the instruction at EIP, fresh every time.
func (c *RefCPU) decode() (x86.Inst, error) {
	window, missing, err := c.fetchWindow(c.EIP)
	if err != nil {
		return x86.Inst{}, err
	}
	inst, err := x86.Decode(window, c.EIP)
	if err != nil {
		if errors.Is(err, x86.ErrTruncated) && len(window) < refMaxInstLen {
			if ferr := c.checkFetchByte(missing); ferr != nil {
				return x86.Inst{}, ferr
			}
		}
		return x86.Inst{}, &emu.DecodeFault{EIP: c.EIP, Err: err}
	}
	return inst, nil
}

// Step executes one instruction (a REP string operation counts as
// one).
func (c *RefCPU) Step() error {
	if c.Exited {
		return nil
	}
	c.stores = c.stores[:0]
	inst, err := c.decode()
	if err != nil {
		return err
	}
	c.Icount++
	return c.exec(inst)
}

// ---- register and memory access -------------------------------------

func maskOf(w uint8) uint32 {
	switch w {
	case 8:
		return 0xFF
	case 16:
		return 0xFFFF
	default:
		return 0xFFFFFFFF
	}
}

func msbOf(w uint8) uint32 { return 1 << (w - 1) }

func (c *RefCPU) regRead(r x86.Reg, w uint8) uint32 {
	switch w {
	case 8:
		if r < 4 {
			return c.Reg[r] & 0xFF
		}
		return c.Reg[r-4] >> 8 & 0xFF
	case 16:
		return c.Reg[r] & 0xFFFF
	default:
		return c.Reg[r]
	}
}

func (c *RefCPU) regWrite(r x86.Reg, w uint8, v uint32) {
	switch w {
	case 8:
		if r < 4 {
			c.Reg[r] = c.Reg[r]&^uint32(0xFF) | v&0xFF
		} else {
			c.Reg[r-4] = c.Reg[r-4]&^uint32(0xFF00) | v&0xFF<<8
		}
	case 16:
		c.Reg[r] = c.Reg[r]&^uint32(0xFFFF) | v&0xFFFF
	default:
		c.Reg[r] = v
	}
}

func (c *RefCPU) ea(o x86.Operand) uint32 {
	a := uint32(o.Disp)
	if o.HasBase {
		a += c.Reg[o.Base]
	}
	if o.HasIndex {
		a += c.Reg[o.Index] * uint32(o.Scale)
	}
	return a
}

func (c *RefCPU) readOp(o x86.Operand, w uint8) (uint32, error) {
	switch o.Kind {
	case x86.KReg:
		return c.regRead(o.Reg, w), nil
	case x86.KImm:
		return uint32(o.Imm) & maskOf(w), nil
	case x86.KMem:
		addr := c.ea(o)
		switch w {
		case 8:
			v, err := c.Mem.Load8(addr, c.EIP)
			return uint32(v), err
		case 16:
			v, err := c.Mem.Load16(addr, c.EIP)
			return uint32(v), err
		default:
			return c.Mem.Load32(addr, c.EIP)
		}
	default:
		return 0, fmt.Errorf("ref: read of empty operand at eip=%#x", c.EIP)
	}
}

func (c *RefCPU) store(addr uint32, w uint8, v uint32) error {
	c.stores = append(c.stores, Store{Addr: addr, Size: uint32(w / 8)})
	switch w {
	case 8:
		return c.Mem.Store8(addr, uint8(v), c.EIP)
	case 16:
		return c.Mem.Store16(addr, uint16(v), c.EIP)
	default:
		return c.Mem.Store32(addr, v, c.EIP)
	}
}

func (c *RefCPU) writeOp(o x86.Operand, w uint8, v uint32) error {
	switch o.Kind {
	case x86.KReg:
		c.regWrite(o.Reg, w, v)
		return nil
	case x86.KMem:
		return c.store(c.ea(o), w, v)
	default:
		return fmt.Errorf("ref: write to non-writable operand at eip=%#x", c.EIP)
	}
}

func (c *RefCPU) push32(v uint32) error {
	c.Reg[x86.ESP] -= 4
	return c.store(c.Reg[x86.ESP], 32, v)
}

func (c *RefCPU) pop32() (uint32, error) {
	v, err := c.Mem.Load32(c.Reg[x86.ESP], c.EIP)
	if err != nil {
		return 0, err
	}
	c.Reg[x86.ESP] += 4
	return v, nil
}

// ---- flags -----------------------------------------------------------

// parityEven counts the set bits of the low byte one at a time.
func parityEven(v uint32) bool {
	n := 0
	for i := uint(0); i < 8; i++ {
		if v>>i&1 != 0 {
			n++
		}
	}
	return n%2 == 0
}

func (c *RefCPU) setSZP(v uint32, w uint8) {
	v &= maskOf(w)
	c.ZF = v == 0
	c.SF = v&msbOf(w) != 0
	c.PF = parityEven(v)
}

// addWithCarry follows the SDM: CF from the widened sum, OF from sign
// agreement, AF from the nibble sum.
func (c *RefCPU) addWithCarry(a, b, cin uint32, w uint8) uint32 {
	mask := maskOf(w)
	a &= mask
	b &= mask
	wide := uint64(a) + uint64(b) + uint64(cin)
	r := uint32(wide) & mask
	c.CF = wide > uint64(mask)
	sa, sb, sr := a&msbOf(w) != 0, b&msbOf(w) != 0, r&msbOf(w) != 0
	c.OF = sa == sb && sr != sa
	c.AF = a&0xF+b&0xF+cin > 0xF
	c.setSZP(r, w)
	return r
}

// subWithBorrow: CF is the borrow-out, OF from sign disagreement, AF
// from the nibble borrow.
func (c *RefCPU) subWithBorrow(a, b, bin uint32, w uint8) uint32 {
	mask := maskOf(w)
	a &= mask
	b &= mask
	r := (a - b - bin) & mask
	c.CF = uint64(a) < uint64(b)+uint64(bin)
	sa, sb, sr := a&msbOf(w) != 0, b&msbOf(w) != 0, r&msbOf(w) != 0
	c.OF = sa != sb && sr != sa
	c.AF = a&0xF < b&0xF+bin
	c.setSZP(r, w)
	return r
}

func (c *RefCPU) logicFlags(r uint32, w uint8) {
	c.CF = false
	c.OF = false
	c.AF = false
	c.setSZP(r, w)
}

// Flags packs the EFLAGS bits in the architectural layout.
func (c *RefCPU) Flags() uint32 {
	f := uint32(1 << 1)
	for _, b := range []struct {
		on  bool
		bit uint32
	}{
		{c.CF, 1 << 0}, {c.PF, 1 << 2}, {c.AF, 1 << 4}, {c.ZF, 1 << 6},
		{c.SF, 1 << 7}, {c.DF, 1 << 10}, {c.OF, 1 << 11},
	} {
		if b.on {
			f |= b.bit
		}
	}
	return f
}

// SetFlags unpacks an architectural EFLAGS dword.
func (c *RefCPU) SetFlags(f uint32) {
	c.CF = f&(1<<0) != 0
	c.PF = f&(1<<2) != 0
	c.AF = f&(1<<4) != 0
	c.ZF = f&(1<<6) != 0
	c.SF = f&(1<<7) != 0
	c.DF = f&(1<<10) != 0
	c.OF = f&(1<<11) != 0
}

// cond evaluates a condition code, written out per the SDM table.
func (c *RefCPU) cond(cc x86.Cond) bool {
	var v bool
	switch cc &^ 1 {
	case x86.CondO:
		v = c.OF
	case x86.CondB:
		v = c.CF
	case x86.CondE:
		v = c.ZF
	case x86.CondBE:
		v = c.CF || c.ZF
	case x86.CondS:
		v = c.SF
	case x86.CondP:
		v = c.PF
	case x86.CondL:
		v = c.SF != c.OF
	case x86.CondLE:
		v = c.ZF || c.SF != c.OF
	}
	if cc&1 != 0 {
		v = !v
	}
	return v
}

// ---- syscall surface -------------------------------------------------

// refSys adapts the reference CPU to the shared kernel model.
type refSys struct{ c *RefCPU }

func (s refSys) GetReg(r x86.Reg) uint32    { return s.c.Reg[r] }
func (s refSys) SetReg(r x86.Reg, v uint32) { s.c.Reg[r] = v }
func (s refSys) MemRead(addr, n uint32) ([]byte, error) {
	return s.c.Mem.Read(addr, n, s.c.EIP)
}
func (s refSys) MemStore8(addr uint32, v uint8) error {
	return s.c.store(addr, 8, uint32(v))
}
func (s refSys) MemStore32(addr, v uint32) error {
	return s.c.store(addr, 32, v)
}
func (s refSys) Exit(status int32) {
	s.c.Exited = true
	s.c.Status = status
}

var _ emu.SysCPU = refSys{}
