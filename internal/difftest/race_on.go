//go:build race

package difftest

// raceEnabled reports whether the race detector is compiled in. The
// lockstep tests are single-threaded, so the heavyweight batches trim
// themselves under -race (the detector adds ~10x to pure emulation
// and finds nothing in sequential code).
const raceEnabled = true
