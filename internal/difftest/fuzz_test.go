package difftest

import (
	"testing"
)

// FuzzLockstep feeds raw byte streams to all three engines in
// lockstep (interpreter, reference, translation-block). Any
// divergence — register, flag, store, fault classification — is a
// crash. The seed corpus in testdata/fuzz/FuzzLockstep pins the byte
// patterns behind historical emulator bugs (RCR overflow flag,
// 0x66-prefixed one-operand MUL/DIV forms, CBW/CWD, REP SCAS with
// DF=1) so every fuzz run re-checks them even at -fuzztime 0.
func FuzzLockstep(f *testing.F) {
	// stc; rcr eax,1; ret — the RCR overflow-flag bug.
	f.Add([]byte{0xF9, 0xD1, 0xD8, 0xC3}, uint8(0))
	// mov ax,3; mov cx,0x100; 66 mul cx; 66 div cx; ret — the 16-bit
	// one-operand widths that fell into the 32-bit path.
	f.Add([]byte{0x66, 0xB8, 0x03, 0x00, 0x66, 0xB9, 0x00, 0x01,
		0x66, 0xF7, 0xE1, 0x66, 0xF7, 0xF1, 0xC3}, uint8(0))
	// 66 98 (cbw); 66 99 (cwd); ret — decoded as 32-bit CWDE/CDQ
	// before the fix.
	f.Add([]byte{0xB8, 0x80, 0x00, 0x00, 0x00, 0x66, 0x98, 0x66, 0x99, 0xC3}, uint8(0))
	// std; mov ecx,4; repne scasb; cld; ret — backwards string scan.
	f.Add([]byte{0xFD, 0xB9, 0x04, 0x00, 0x00, 0x00, 0xF2, 0xAE, 0xFC, 0xC3}, uint8(0))
	// 66 IMUL r,r/m,imm16 sign-extension path.
	f.Add([]byte{0x66, 0xB8, 0x00, 0x40, 0x66, 0x6B, 0xC0, 0x02, 0xC3}, uint8(0))
	// Unaligned gadget entry: bytes that re-decode differently when
	// entered mid-instruction.
	f.Add([]byte{0xB8, 0xF9, 0xD1, 0xD8, 0xC3, 0x90, 0xC3}, uint8(1))

	f.Fuzz(func(t *testing.T, raw []byte, entry uint8) {
		if len(raw) == 0 || len(raw) > genPatchPad {
			t.Skip()
		}
		p := &Program{
			Name:     "fuzz",
			Raw:      raw,
			EntryOff: uint32(entry) % uint32(len(raw)),
		}
		res, err := RunProgram(p, Options{MaxInst: 1 << 14, TB: true})
		if err != nil {
			t.Fatalf("harness error: %v", err)
		}
		if res.Div != nil {
			t.Fatalf("divergence on % x entry+%d:\n%s", raw, p.EntryOff, res.Div)
		}
	})
}
