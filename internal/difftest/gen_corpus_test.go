package difftest

import (
	"testing"

	"parallax/internal/core"
	"parallax/internal/corpus"
	"parallax/internal/corpus/gen"
)

// genGateSlice is the seeded generated-corpus slice the lockstep gate
// replays: the bulk from the smallest-size family (tiny, 16 KiB — the
// budget constraint), plus one seed of each mix/structure variant so
// every operation-class profile the generator emits passes through the
// three-engine oracle.
func genGateSlice(t *testing.T) []corpus.Program {
	t.Helper()
	var progs []corpus.Program
	addFam := func(name string, seeds ...uint64) {
		fam, err := gen.FamilyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range seeds {
			p, err := gen.FamilyProgram(fam, s)
			if err != nil {
				t.Fatal(err)
			}
			progs = append(progs, p)
		}
	}
	addFam("tiny", 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15)
	addFam("small", 1)
	addFam("branchy", 1)
	addFam("stringy", 1)
	addFam("muldiv", 1)
	addFam("callheavy", 1)
	return progs
}

// TestLockstepGenCorpus runs the generated-corpus slice through the
// three-engine lockstep oracle (production interpreter, SDM-pseudocode
// reference, translation-block engine), baseline and protected, and
// requires zero divergences — the same hard gate the hand-written six
// pass, now over a seeded population. Under -short or the race
// detector only the first four tiny seeds run.
func TestLockstepGenCorpus(t *testing.T) {
	progs := genGateSlice(t)
	if testing.Short() || raceEnabled {
		progs = progs[:4]
	}
	for _, p := range progs {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			prot, err := core.Protect(p.Build(), core.Options{
				VerifyFuncs: []string{p.VerifyFunc},
			})
			if err != nil {
				t.Fatalf("protect: %v", err)
			}
			for _, variant := range []string{"baseline", "protected"} {
				img := prot.Baseline
				if variant == "protected" {
					img = prot.Image
				}
				res, err := Run(img, Options{MaxInst: 2_000_000, Stdin: p.Stdin, TB: true})
				if err != nil {
					t.Fatalf("%s: harness error: %v", variant, err)
				}
				if res.Div != nil {
					t.Fatalf("%s diverged after %d insts:\n%s", variant, res.Insts, res.Div)
				}
				if !res.Exited {
					t.Fatalf("%s: generated workload did not exit within budget (%d insts)",
						variant, res.Insts)
				}
				t.Logf("%s: %d insts in lockstep, exit %d", variant, res.Insts, res.Status)
			}
		})
	}
}
