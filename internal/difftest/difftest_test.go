package difftest

import (
	"fmt"
	"strings"
	"testing"

	"parallax/internal/core"
	"parallax/internal/corpus"
	"parallax/internal/obs"
	"parallax/internal/x86"
)

// TestLockstepGenerated runs the gadget-biased generator batch in
// lockstep — interpreter, reference interpreter, and the
// translation-block engine stepping three-way — and requires zero
// divergences. The full batch is the ISSUE's 10k-program gate; -short
// runs a 500-program slice on the same seed so the fast path still
// exercises every program class.
func TestLockstepGenerated(t *testing.T) {
	n := 10000
	if testing.Short() || raceEnabled {
		n = 500
	}
	reg := obs.NewRegistry()
	g := NewGenerator(1)
	for i := 0; i < n; i++ {
		p := g.Next()
		res, err := RunProgram(p, Options{MaxInst: 1 << 16, Registry: reg, TB: true})
		if err != nil {
			t.Fatalf("program %s: harness error: %v", p.Name, err)
		}
		if res.Div != nil {
			min := Minimize(p, func(q *Program) bool {
				r, err := RunProgram(q, Options{MaxInst: 1 << 16})
				return err == nil && r.Div != nil
			})
			mres, _ := RunProgram(min, Options{MaxInst: 1 << 16})
			t.Fatalf("program %s diverged:\n%s\nminimized (%d insts, %d raw bytes):\n%s\n%v",
				p.Name, res.Div, len(min.Insts), len(min.Raw), describe(min), mres.Div)
		}
	}
	t.Logf("lockstep: %d programs, %d instructions, 0 divergences",
		n, reg.Counter("difftest.insts").Value())
}

// describe renders a program for divergence reports.
func describe(p *Program) string {
	if p.Insts == nil {
		return fmt.Sprintf("raw % x entry+%d", p.Raw, p.EntryOff)
	}
	s := ""
	for i, pi := range p.Insts {
		if pi.JccSkip > 0 {
			s += fmt.Sprintf("  %2d: j%v +%d\n", i, pi.Inst.Cond, pi.JccSkip)
		} else {
			s += fmt.Sprintf("  %2d: %s\n", i, pi.Inst.String())
		}
	}
	return s
}

// TestLockstepCorpus replays the benchmark corpus — both the clean
// baseline and the Parallax-protected binary, whose verification runs
// execute the actual ROP gadget chains — through the oracle. Under
// -short only wget runs; the full suite covers all six programs.
func TestLockstepCorpus(t *testing.T) {
	for _, p := range corpus.All() {
		if (testing.Short() || raceEnabled) && p.Name != "wget" {
			continue
		}
		p := p
		t.Run(p.Name, func(t *testing.T) {
			prot, err := core.Protect(p.Build(), core.Options{
				VerifyFuncs: []string{p.VerifyFunc},
			})
			if err != nil {
				t.Fatalf("protect: %v", err)
			}
			for _, variant := range []string{"baseline", "protected"} {
				img := prot.Baseline
				if variant == "protected" {
					img = prot.Image
				}
				res, err := Run(img, Options{MaxInst: 5_000_000, Stdin: p.Stdin, TB: true})
				if err != nil {
					t.Fatalf("%s: harness error: %v", variant, err)
				}
				if res.Div != nil {
					t.Fatalf("%s diverged after %d insts:\n%s", variant, res.Insts, res.Div)
				}
				if res.Exited {
					t.Logf("%s: %d insts in lockstep, exit %d", variant, res.Insts, res.Status)
				} else {
					// The longer corpus programs run past the lockstep
					// budget; the gate is zero divergences over the
					// compared prefix, which already covers every
					// verification chain many times.
					t.Logf("%s: %d insts in lockstep, budget reached", variant, res.Insts)
				}
			}
		})
	}
}

// TestLockstepTBUnalignedEntry pins the translation-block engine on
// the generator's unaligned-entry class: structured programs re-entered
// mid-instruction, where block boundaries never line up with the
// assembler's and every translation starts at a skewed decode.
func TestLockstepTBUnalignedEntry(t *testing.T) {
	g := NewGenerator(7)
	ran := 0
	for i := 0; ran < 60 && i < 5000; i++ {
		p := g.Next()
		if !strings.HasSuffix(p.Name, "-unaligned") {
			continue
		}
		ran++
		res, err := RunProgram(p, Options{MaxInst: 1 << 16, TB: true})
		if err != nil {
			t.Fatalf("program %s: harness error: %v", p.Name, err)
		}
		if res.Div != nil {
			t.Fatalf("program %s (entry+%d) diverged:\n%s", p.Name, p.EntryOff, res.Div)
		}
	}
	if ran == 0 {
		t.Fatal("generator produced no unaligned-entry programs")
	}
}

// TestLockstepCatchesLegacyRCROF reverts the RCR overflow-flag fix on
// the reference side and checks the oracle reports the flags
// divergence — the demonstration required by the ISSUE that the
// historical emulator bug could not have survived this oracle.
func TestLockstepCatchesLegacyRCROF(t *testing.T) {
	// STC; RCR EAX,1 with EAX=0 rotates the carry into the MSB:
	// result 0x80000000, so fixed OF = MSB^MSB-1 = 1 but the legacy
	// formula (MSB-1 alone) says 0.
	p := &Program{
		Name: "rcr-of",
		Insts: []ProgInst{
			{Inst: x86.Inst{Op: x86.MOV, W: 32, Dst: x86.RegOp(x86.EAX), Src: x86.ImmOp(0)}},
			{Inst: x86.Inst{Op: x86.STC, W: 32}},
			{Inst: x86.Inst{Op: x86.RCR, W: 32, Dst: x86.RegOp(x86.EAX), Src: x86.ImmOp(1)}},
			{Inst: x86.Inst{Op: x86.RET, W: 32}},
		},
	}
	res, err := RunProgram(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Div != nil {
		t.Fatalf("fixed engines should agree: %s", res.Div)
	}

	res, err = RunProgram(p, Options{LegacyRefRCROF: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Div == nil {
		t.Fatal("oracle missed the reverted RCR OF bug")
	}
	if res.Div.Kind != "flags" {
		t.Fatalf("divergence kind = %q, want flags:\n%s", res.Div.Kind, res.Div)
	}
	t.Logf("oracle caught reverted bug:\n%s", res.Div)
}

// TestMinimize shrinks an RCR-divergent program buried in noise down
// to the minimal reproducer.
func TestMinimize(t *testing.T) {
	var insts []ProgInst
	emit := func(in x86.Inst) { insts = append(insts, ProgInst{Inst: in}) }
	// Noise prologue and epilogue around the two essential
	// instructions (STC; RCR).
	for i := 0; i < 8; i++ {
		emit(x86.Inst{Op: x86.ADD, W: 32, Dst: x86.RegOp(x86.EBX), Src: x86.ImmOp(int32(i))})
	}
	emit(x86.Inst{Op: x86.STC, W: 32})
	emit(x86.Inst{Op: x86.RCR, W: 32, Dst: x86.RegOp(x86.EAX), Src: x86.ImmOp(1)})
	for i := 0; i < 8; i++ {
		emit(x86.Inst{Op: x86.INC, W: 32, Dst: x86.RegOp(x86.ECX)})
	}
	emit(x86.Inst{Op: x86.RET, W: 32})
	p := &Program{Name: "min-demo", Insts: insts}

	failing := func(q *Program) bool {
		res, err := RunProgram(q, Options{MaxInst: 1 << 12, LegacyRefRCROF: true})
		return err == nil && res.Div != nil && res.Div.Kind == "flags"
	}
	if !failing(p) {
		t.Fatal("seed program does not reproduce")
	}
	min := Minimize(p, failing)
	if !failing(min) {
		t.Fatal("minimized program no longer reproduces")
	}
	// STC + RCR are both essential (RCR alone sees CF=0 and both
	// formulas agree); everything else should be gone.
	if len(min.Insts) > 2 {
		t.Fatalf("minimized to %d insts, want <= 2:\n%s", len(min.Insts), describe(min))
	}
	t.Logf("minimized %d -> %d insts:\n%s", len(insts), len(min.Insts), describe(min))
}

// TestMinimizeRaw shrinks a raw byte program with a byte-level
// predicate.
func TestMinimizeRaw(t *testing.T) {
	raw := []byte{0x90, 0x90, 0xF9, 0x90, 0xD1, 0xD8, 0x90, 0xC3} // nops around stc; rcr eax,1; ret
	p := &Program{Name: "min-raw", Raw: raw}
	failing := func(q *Program) bool {
		res, err := RunProgram(q, Options{MaxInst: 1 << 12, LegacyRefRCROF: true})
		return err == nil && res.Div != nil && res.Div.Kind == "flags"
	}
	if !failing(p) {
		t.Fatal("seed raw program does not reproduce")
	}
	min := Minimize(p, failing)
	if len(min.Raw) > 3 {
		t.Fatalf("minimized to %d bytes (% x), want <= 3", len(min.Raw), min.Raw)
	}
}

// TestGeneratorDeterminism pins that a seed reproduces the same
// program stream — minimized divergences stay replayable.
func TestGeneratorDeterminism(t *testing.T) {
	a, b := NewGenerator(42), NewGenerator(42)
	for i := 0; i < 50; i++ {
		pa, pb := a.Next(), b.Next()
		ia, _ := pa.Build()
		ib, _ := pb.Build()
		if pa.Name != pb.Name {
			t.Fatalf("name drift at %d: %s vs %s", i, pa.Name, pb.Name)
		}
		if (ia == nil) != (ib == nil) {
			t.Fatalf("build drift at %d", i)
		}
		if ia != nil && !equalBytes(ia.Sections[0].Data, ib.Sections[0].Data) {
			t.Fatalf("text drift at %d (%s)", i, pa.Name)
		}
	}
}

func equalBytes(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
