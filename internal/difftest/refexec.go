package difftest

import (
	"fmt"

	"parallax/internal/emu"
	"parallax/internal/x86"
)

// exec executes one decoded instruction per the SDM pseudocode. On
// return EIP points at the next instruction (or the transfer target).
func (c *RefCPU) exec(inst x86.Inst) error {
	next := c.EIP + uint32(inst.Len)
	w := inst.W

	switch inst.Op {
	case x86.ADD, x86.ADC, x86.SUB, x86.SBB, x86.CMP:
		a, err := c.readOp(inst.Dst, w)
		if err != nil {
			return err
		}
		b, err := c.readOp(inst.Src, w)
		if err != nil {
			return err
		}
		carry := uint32(0)
		if (inst.Op == x86.ADC || inst.Op == x86.SBB) && c.CF {
			carry = 1
		}
		var r uint32
		if inst.Op == x86.ADD || inst.Op == x86.ADC {
			r = c.addWithCarry(a, b, carry, w)
		} else {
			r = c.subWithBorrow(a, b, carry, w)
		}
		if inst.Op != x86.CMP {
			if err := c.writeOp(inst.Dst, w, r); err != nil {
				return err
			}
		}

	case x86.AND, x86.OR, x86.XOR, x86.TEST:
		a, err := c.readOp(inst.Dst, w)
		if err != nil {
			return err
		}
		b, err := c.readOp(inst.Src, w)
		if err != nil {
			return err
		}
		var r uint32
		switch inst.Op {
		case x86.AND, x86.TEST:
			r = a & b
		case x86.OR:
			r = a | b
		case x86.XOR:
			r = a ^ b
		}
		r &= maskOf(w)
		c.logicFlags(r, w)
		if inst.Op != x86.TEST {
			if err := c.writeOp(inst.Dst, w, r); err != nil {
				return err
			}
		}

	case x86.MOV:
		v, err := c.readOp(inst.Src, w)
		if err != nil {
			return err
		}
		if err := c.writeOp(inst.Dst, w, v); err != nil {
			return err
		}

	case x86.XCHG:
		a, err := c.readOp(inst.Dst, w)
		if err != nil {
			return err
		}
		b, err := c.readOp(inst.Src, w)
		if err != nil {
			return err
		}
		if err := c.writeOp(inst.Dst, w, b); err != nil {
			return err
		}
		if err := c.writeOp(inst.Src, w, a); err != nil {
			return err
		}

	case x86.LEA:
		c.regWrite(inst.Dst.Reg, 32, c.ea(inst.Src))

	case x86.PUSH:
		v, err := c.readOp(inst.Dst, 32)
		if err != nil {
			return err
		}
		if err := c.push32(v); err != nil {
			return err
		}

	case x86.POP:
		v, err := c.pop32()
		if err != nil {
			return err
		}
		if err := c.writeOp(inst.Dst, 32, v); err != nil {
			return err
		}

	case x86.INC, x86.DEC:
		a, err := c.readOp(inst.Dst, w)
		if err != nil {
			return err
		}
		savedCF := c.CF
		var r uint32
		if inst.Op == x86.INC {
			r = c.addWithCarry(a, 1, 0, w)
		} else {
			r = c.subWithBorrow(a, 1, 0, w)
		}
		c.CF = savedCF
		if err := c.writeOp(inst.Dst, w, r); err != nil {
			return err
		}

	case x86.NOT:
		a, err := c.readOp(inst.Dst, w)
		if err != nil {
			return err
		}
		if err := c.writeOp(inst.Dst, w, ^a&maskOf(w)); err != nil {
			return err
		}

	case x86.NEG:
		a, err := c.readOp(inst.Dst, w)
		if err != nil {
			return err
		}
		r := c.subWithBorrow(0, a, 0, w)
		c.CF = a&maskOf(w) != 0
		if err := c.writeOp(inst.Dst, w, r); err != nil {
			return err
		}

	case x86.MUL, x86.IMUL:
		if err := c.execMul(inst); err != nil {
			return err
		}

	case x86.DIV, x86.IDIV:
		if err := c.execDiv(inst); err != nil {
			return err
		}

	case x86.ROL, x86.ROR, x86.RCL, x86.RCR, x86.SHL, x86.SAL, x86.SHR, x86.SAR:
		if err := c.execShift(inst); err != nil {
			return err
		}

	case x86.MOVZX, x86.MOVSX:
		v, err := c.readOp(inst.Src, w)
		if err != nil {
			return err
		}
		if inst.Op == x86.MOVSX && v&msbOf(w) != 0 {
			v |= ^maskOf(w)
		}
		c.regWrite(inst.Dst.Reg, 32, v)

	case x86.CALL:
		target, err := c.branchTarget(inst)
		if err != nil {
			return err
		}
		if err := c.push32(next); err != nil {
			return err
		}
		c.EIP = target
		c.checkSentinel()
		return nil

	case x86.JMP:
		target, err := c.branchTarget(inst)
		if err != nil {
			return err
		}
		c.EIP = target
		c.checkSentinel()
		return nil

	case x86.JCC:
		if c.cond(inst.Cond) {
			c.EIP = inst.Target
			return nil
		}

	case x86.SETCC:
		v := uint32(0)
		if c.cond(inst.Cond) {
			v = 1
		}
		if err := c.writeOp(inst.Dst, 8, v); err != nil {
			return err
		}

	case x86.RET:
		ret, err := c.pop32()
		if err != nil {
			return err
		}
		c.Reg[x86.ESP] += uint32(uint16(inst.Imm))
		c.EIP = ret
		c.checkSentinel()
		return nil

	case x86.RETF:
		ret, err := c.pop32()
		if err != nil {
			return err
		}
		if _, err := c.pop32(); err != nil { // discard CS
			return err
		}
		c.Reg[x86.ESP] += uint32(uint16(inst.Imm))
		c.EIP = ret
		c.checkSentinel()
		return nil

	case x86.LEAVE:
		c.Reg[x86.ESP] = c.Reg[x86.EBP]
		v, err := c.pop32()
		if err != nil {
			return err
		}
		c.Reg[x86.EBP] = v

	case x86.NOP:

	case x86.HLT:
		return emu.ErrHalted

	case x86.INT3:
		return emu.ErrBreakpoint

	case x86.INT:
		if uint8(inst.Imm) != 0x80 || c.OS == nil {
			return fmt.Errorf("ref: unhandled int %#x at eip=%#x", uint8(inst.Imm), c.EIP)
		}
		c.EIP = next // syscalls observe the post-instruction EIP
		return c.OS.SyscallOn(refSys{c})

	case x86.PUSHAD:
		sp := c.Reg[x86.ESP]
		for _, r := range []x86.Reg{x86.EAX, x86.ECX, x86.EDX, x86.EBX,
			x86.ESP, x86.EBP, x86.ESI, x86.EDI} {
			v := c.Reg[r]
			if r == x86.ESP {
				v = sp
			}
			if err := c.push32(v); err != nil {
				return err
			}
		}

	case x86.POPAD:
		for _, r := range []x86.Reg{x86.EDI, x86.ESI, x86.EBP, x86.ESP,
			x86.EBX, x86.EDX, x86.ECX, x86.EAX} {
			v, err := c.pop32()
			if err != nil {
				return err
			}
			if r != x86.ESP { // ESP value is discarded
				c.Reg[r] = v
			}
		}

	case x86.PUSHFD:
		if err := c.push32(c.Flags()); err != nil {
			return err
		}

	case x86.POPFD:
		v, err := c.pop32()
		if err != nil {
			return err
		}
		c.SetFlags(v)

	case x86.LAHF:
		ah := uint32(1 << 1)
		for _, b := range []struct {
			on  bool
			bit uint32
		}{{c.CF, 1 << 0}, {c.PF, 1 << 2}, {c.AF, 1 << 4},
			{c.ZF, 1 << 6}, {c.SF, 1 << 7}} {
			if b.on {
				ah |= b.bit
			}
		}
		c.regWrite(x86.AH, 8, ah)

	case x86.SAHF:
		ah := c.regRead(x86.AH, 8)
		c.CF = ah&(1<<0) != 0
		c.PF = ah&(1<<2) != 0
		c.AF = ah&(1<<4) != 0
		c.ZF = ah&(1<<6) != 0
		c.SF = ah&(1<<7) != 0

	case x86.CDQ:
		if w == 16 { // CWD: DX <- sign of AX
			if c.Reg[x86.EAX]&(1<<15) != 0 {
				c.regWrite(x86.EDX, 16, 0xFFFF)
			} else {
				c.regWrite(x86.EDX, 16, 0)
			}
		} else if c.Reg[x86.EAX]&(1<<31) != 0 {
			c.Reg[x86.EDX] = 0xFFFFFFFF
		} else {
			c.Reg[x86.EDX] = 0
		}

	case x86.CWDE:
		if w == 16 { // CBW: AX <- sext AL
			c.regWrite(x86.EAX, 16, uint32(int32(int8(c.Reg[x86.EAX]))))
		} else {
			c.Reg[x86.EAX] = uint32(int32(int16(c.Reg[x86.EAX])))
		}

	case x86.CLC:
		c.CF = false
	case x86.STC:
		c.CF = true
	case x86.CMC:
		c.CF = !c.CF
	case x86.CLD:
		c.DF = false
	case x86.STD:
		c.DF = true

	case x86.MOVS, x86.STOS, x86.LODS, x86.SCAS, x86.CMPS:
		if err := c.execString(inst); err != nil {
			return err
		}

	default:
		return fmt.Errorf("ref: unimplemented op %v at eip=%#x", inst.Op, c.EIP)
	}

	c.EIP = next
	return nil
}

func (c *RefCPU) branchTarget(inst x86.Inst) (uint32, error) {
	if inst.Rel {
		return inst.Target, nil
	}
	return c.readOp(inst.Dst, 32)
}

// checkSentinel ends the run when control returns to the exit
// sentinel; only RET/RETF/CALL/JMP call it.
func (c *RefCPU) checkSentinel() {
	if c.EIP == emu.ExitSentinel {
		c.Exited = true
		c.Status = int32(c.Reg[x86.EAX])
	}
}

func (c *RefCPU) execMul(inst x86.Inst) error {
	// One-operand forms multiply into the double-width accumulator.
	if inst.Src.Kind == x86.KNone && !inst.HasImm {
		v, err := c.readOp(inst.Dst, inst.W)
		if err != nil {
			return err
		}
		switch inst.W {
		case 8:
			// AX <- AL * r/m8.
			al := c.Reg[x86.EAX] & 0xFF
			var p uint32
			if inst.Op == x86.MUL {
				p = al * v
				c.CF = p>>8 != 0
			} else {
				s := int32(int8(al)) * int32(int8(v))
				p = uint32(s) & 0xFFFF
				c.CF = s != int32(int8(s))
			}
			c.regWrite(x86.EAX, 16, p)
		case 16:
			// DX:AX <- AX * r/m16.
			ax := c.Reg[x86.EAX] & 0xFFFF
			var p uint32
			if inst.Op == x86.MUL {
				p = ax * v
				c.CF = p>>16 != 0
			} else {
				s := int32(int16(ax)) * int32(int16(v))
				p = uint32(s)
				c.CF = s != int32(int16(s))
			}
			c.regWrite(x86.EAX, 16, p&0xFFFF)
			c.regWrite(x86.EDX, 16, p>>16)
		default:
			// EDX:EAX <- EAX * r/m32.
			if inst.Op == x86.MUL {
				p := uint64(c.Reg[x86.EAX]) * uint64(v)
				c.Reg[x86.EAX] = uint32(p)
				c.Reg[x86.EDX] = uint32(p >> 32)
				c.CF = p>>32 != 0
			} else {
				s := int64(int32(c.Reg[x86.EAX])) * int64(int32(v))
				c.Reg[x86.EAX] = uint32(s)
				c.Reg[x86.EDX] = uint32(uint64(s) >> 32)
				c.CF = s != int64(int32(s))
			}
		}
		c.OF = c.CF
		// Defined convention: SF/ZF/PF from the full EAX after
		// write-back (the SDM leaves them undefined).
		c.setSZP(c.Reg[x86.EAX], 32)
		return nil
	}

	// Two/three-operand IMUL: truncated signed multiply.
	a, err := c.readOp(inst.Src, inst.W)
	if err != nil {
		return err
	}
	var b uint32
	if inst.HasImm {
		b = uint32(inst.Imm)
	} else {
		b = c.regRead(inst.Dst.Reg, inst.W)
	}
	p := refSext(a, inst.W) * refSext(b, inst.W)
	c.regWrite(inst.Dst.Reg, inst.W, uint32(p))
	c.CF = p != refSext(uint32(p), inst.W)
	c.OF = c.CF
	c.setSZP(uint32(p), inst.W)
	return nil
}

func refSext(v uint32, w uint8) int64 {
	shift := 64 - uint(w)
	return int64(uint64(v)<<shift) >> shift
}

func (c *RefCPU) execDiv(inst x86.Inst) error {
	v, err := c.readOp(inst.Dst, inst.W)
	if err != nil {
		return err
	}
	v &= maskOf(inst.W)
	if v == 0 {
		return &emu.DivideError{EIP: c.EIP}
	}
	// DIV/IDIV leave every flag unchanged (defined convention; the SDM
	// says undefined).
	switch inst.W {
	case 8:
		dividend := c.Reg[x86.EAX] & 0xFFFF
		if inst.Op == x86.DIV {
			q, rem := dividend/v, dividend%v
			if q > 0xFF {
				return &emu.DivideError{EIP: c.EIP}
			}
			c.regWrite(x86.EAX, 16, rem<<8|q)
		} else {
			d := int32(int16(dividend))
			s := int32(int8(v))
			q, rem := d/s, d%s
			if q > 127 || q < -128 {
				return &emu.DivideError{EIP: c.EIP}
			}
			c.regWrite(x86.EAX, 16, uint32(uint8(rem))<<8|uint32(uint8(q)))
		}
	case 16:
		dividend := (c.Reg[x86.EDX]&0xFFFF)<<16 | c.Reg[x86.EAX]&0xFFFF
		if inst.Op == x86.DIV {
			q, rem := dividend/v, dividend%v
			if q > 0xFFFF {
				return &emu.DivideError{EIP: c.EIP}
			}
			c.regWrite(x86.EAX, 16, q)
			c.regWrite(x86.EDX, 16, rem)
		} else {
			d := int32(dividend)
			s := int32(int16(v))
			q, rem := d/s, d%s
			if q > 0x7FFF || q < -0x8000 {
				return &emu.DivideError{EIP: c.EIP}
			}
			c.regWrite(x86.EAX, 16, uint32(uint16(q)))
			c.regWrite(x86.EDX, 16, uint32(uint16(rem)))
		}
	default:
		dividend := uint64(c.Reg[x86.EDX])<<32 | uint64(c.Reg[x86.EAX])
		if inst.Op == x86.DIV {
			q, rem := dividend/uint64(v), dividend%uint64(v)
			if q > 0xFFFFFFFF {
				return &emu.DivideError{EIP: c.EIP}
			}
			c.Reg[x86.EAX] = uint32(q)
			c.Reg[x86.EDX] = uint32(rem)
		} else {
			d := int64(dividend)
			s := int64(int32(v))
			q, rem := d/s, d%s
			if q > 0x7FFFFFFF || q < -0x80000000 {
				return &emu.DivideError{EIP: c.EIP}
			}
			c.Reg[x86.EAX] = uint32(q)
			c.Reg[x86.EDX] = uint32(rem)
		}
	}
	return nil
}

// execShift implements every shift and rotate one bit per iteration,
// exactly as the SDM's temp-count loops do.
func (c *RefCPU) execShift(inst x86.Inst) error {
	a, err := c.readOp(inst.Dst, inst.W)
	if err != nil {
		return err
	}
	countV, err := c.readOp(inst.Src, 8)
	if err != nil {
		return err
	}
	count := countV & 31
	if count == 0 {
		return nil // neither destination nor flags change
	}
	w := inst.W
	bits := uint32(w)
	mask := maskOf(w)
	msb := msbOf(w)
	r := a & mask
	switch inst.Op {
	case x86.SHL, x86.SAL:
		for i := uint32(0); i < count; i++ {
			c.CF = r&msb != 0
			r = r << 1 & mask
		}
		c.OF = (r&msb != 0) != c.CF
		c.setSZP(r, w)
	case x86.SHR:
		for i := uint32(0); i < count; i++ {
			c.CF = r&1 != 0
			r >>= 1
		}
		c.OF = a&msb != 0
		c.setSZP(r, w)
	case x86.SAR:
		sign := a & msb
		for i := uint32(0); i < count; i++ {
			c.CF = r&1 != 0
			r = r>>1 | sign
		}
		c.OF = false
		c.setSZP(r, w)
	case x86.ROL:
		for i := uint32(0); i < count%bits; i++ {
			hi := r&msb != 0
			r = r << 1 & mask
			if hi {
				r |= 1
			}
		}
		c.CF = r&1 != 0
		c.OF = (r&msb != 0) != c.CF
	case x86.ROR:
		for i := uint32(0); i < count%bits; i++ {
			lo := r&1 != 0
			r >>= 1
			if lo {
				r |= msb
			}
		}
		c.CF = r&msb != 0
		c.OF = (r&msb != 0) != (r&(msb>>1) != 0)
	case x86.RCL:
		for i := uint32(0); i < count%(bits+1); i++ {
			hi := r&msb != 0
			r = r << 1 & mask
			if c.CF {
				r |= 1
			}
			c.CF = hi
		}
		c.OF = (r&msb != 0) != c.CF
	case x86.RCR:
		for i := uint32(0); i < count%(bits+1); i++ {
			lo := r&1 != 0
			r >>= 1
			if c.CF {
				r |= msb
			}
			c.CF = lo
		}
		if c.legacyRCROF {
			// The seed emulator's expression reduced to the MSB-1 bit
			// alone; kept behind this knob so tests can demonstrate
			// the oracle catching the bug.
			c.OF = r&(msb>>1) != 0
		} else {
			c.OF = (r&msb != 0) != (r&(msb>>1) != 0)
		}
	}
	return c.writeOp(inst.Dst, w, r)
}

// refMaxRepIterations mirrors the engine's bound on one REP.
const refMaxRepIterations = 1 << 24

func (c *RefCPU) stringStep(w uint8) uint32 {
	n := uint32(w / 8)
	if c.DF {
		return -n & 0xFFFFFFFF
	}
	return n
}

func (c *RefCPU) execString(inst x86.Inst) error {
	w := inst.W
	step := c.stringStep(w)
	one := func() (bool, error) { // reports compare-style ops
		var err error
		switch inst.Op {
		case x86.MOVS:
			var v uint32
			v, err = c.readOp(x86.MemOp(x86.ESI, 0), w)
			if err != nil {
				return false, err
			}
			err = c.writeOp(x86.MemOp(x86.EDI, 0), w, v)
			c.Reg[x86.ESI] += step
			c.Reg[x86.EDI] += step
		case x86.STOS:
			err = c.writeOp(x86.MemOp(x86.EDI, 0), w, c.regRead(x86.EAX, w))
			c.Reg[x86.EDI] += step
		case x86.LODS:
			var v uint32
			v, err = c.readOp(x86.MemOp(x86.ESI, 0), w)
			if err != nil {
				return false, err
			}
			c.regWrite(x86.EAX, w, v)
			c.Reg[x86.ESI] += step
		case x86.SCAS:
			var v uint32
			v, err = c.readOp(x86.MemOp(x86.EDI, 0), w)
			if err != nil {
				return false, err
			}
			c.subWithBorrow(c.regRead(x86.EAX, w), v, 0, w)
			c.Reg[x86.EDI] += step
			return true, nil
		case x86.CMPS:
			var a, b uint32
			a, err = c.readOp(x86.MemOp(x86.ESI, 0), w)
			if err != nil {
				return false, err
			}
			b, err = c.readOp(x86.MemOp(x86.EDI, 0), w)
			if err != nil {
				return false, err
			}
			c.subWithBorrow(a, b, 0, w)
			c.Reg[x86.ESI] += step
			c.Reg[x86.EDI] += step
			return true, nil
		}
		return false, err
	}

	if !inst.Rep && !inst.RepNE {
		_, err := one()
		return err
	}
	iters := 0
	for c.Reg[x86.ECX] != 0 {
		if iters++; iters > refMaxRepIterations {
			return fmt.Errorf("ref: rep iteration bound exceeded at eip=%#x", c.EIP)
		}
		compares, err := one()
		if err != nil {
			return err
		}
		c.Reg[x86.ECX]--
		if compares {
			if inst.Rep && !c.ZF { // repe stops on mismatch
				break
			}
			if inst.RepNE && c.ZF { // repne stops on match
				break
			}
		}
	}
	return nil
}
