package difftest

// Minimize shrinks a failing program to a smaller one for which the
// predicate still holds, using delta-debugging-style chunk removal:
// try dropping chunks of halving size (len/2 down to 1) until a full
// pass at chunk size 1 removes nothing. Structured programs shrink by
// instruction (Build re-resolves branch targets, clamping skips past
// the end to the final RET label); raw programs shrink by byte.
//
// failing must be pure: it returns true iff the candidate still
// reproduces the divergence (typically "lockstep reports a divergence
// with the same kind"). Minimize never mutates p; it returns the
// smallest reproducer found.
func Minimize(p *Program, failing func(*Program) bool) *Program {
	if p.Insts != nil {
		insts := minimizeSlice(p.Insts, func(s []ProgInst) bool {
			return failing(p.withInsts(s))
		})
		return p.withInsts(insts)
	}
	raw := minimizeSlice(p.Raw, func(s []byte) bool {
		return failing(p.withRaw(s))
	})
	return p.withRaw(raw)
}

func (p *Program) withInsts(insts []ProgInst) *Program {
	q := *p
	q.Insts = insts
	return &q
}

func (p *Program) withRaw(raw []byte) *Program {
	q := *p
	q.Raw = raw
	return &q
}

// minimizeSlice removes chunks of halving size while the predicate
// keeps holding for the reduced slice.
func minimizeSlice[T any](items []T, failing func([]T) bool) []T {
	cur := append([]T(nil), items...)
	for chunk := len(cur) / 2; chunk >= 1; {
		removed := false
		for start := 0; start < len(cur); {
			cand := make([]T, 0, len(cur)-chunk)
			cand = append(cand, cur[:start]...)
			end := start + chunk
			if end > len(cur) {
				end = len(cur)
			}
			cand = append(cand, cur[end:]...)
			if len(cand) < len(cur) && failing(cand) {
				cur = cand
				removed = true
				// Re-test the same start: the next chunk slid into place.
			} else {
				start += chunk
			}
		}
		if chunk == 1 && !removed {
			break
		}
		if chunk > 1 {
			chunk /= 2
		}
	}
	return cur
}
