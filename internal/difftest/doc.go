// Package difftest is the differential-execution oracle: a reference
// x86-32 interpreter written straight from the SDM pseudocode, a
// lockstep runner that executes one program on both that interpreter
// and the production internal/emu engine, a gadget-biased program
// generator, and a divergence minimizer.
//
// The production emulator earns its speed with a decode cache,
// snapshot/restore machinery, and branch-free flag formulas — exactly
// the kinds of cleverness where an EFLAGS transcription error hides
// for years. The reference interpreter deliberately has none of that:
// shifts and rotates move one bit per loop iteration, carry and
// overflow come from widened arithmetic and sign comparisons, and
// every instruction is re-decoded from memory bytes on every step.
// The two implementations share only what is not under test: the
// instruction decoder (internal/x86), the error vocabulary, the image
// loader, and the kernel model (emu.OS via the SysCPU interface), so
// any divergence the lockstep runner reports is a disagreement about
// instruction *semantics*, which is precisely the property Parallax's
// gadget verification depends on (PAPER.md §IV: a single wrong flag
// bit silently reclassifies tamper-campaign outcomes).
//
// # Defined conventions for architecturally-undefined behaviour
//
// The Intel SDM leaves several flag results undefined. Lockstep
// comparison needs every bit deterministic, so both engines implement
// the following shared conventions (the reference interpreter mirrors
// them on purpose; they are conventions, not SDM facts):
//
//   - Shift/rotate counts are masked to 5 bits first; a masked count
//     of zero changes neither the destination nor any flag.
//   - OF is computed for every nonzero shift/rotate count using the
//     SDM's count-1 rule (SDM: undefined for counts greater than 1).
//   - Shifts (SHL/SHR/SAR) leave AF unchanged; rotates touch only
//     CF/OF (SDM: AF undefined after shifts).
//   - SHL/SHR with count > operand width clear CF; SAR fills CF with
//     the sign bit (SDM: undefined).
//   - One-operand MUL/IMUL set SF/ZF/PF from the full 32-bit EAX
//     after the write-back; two/three-operand IMUL set them from the
//     truncated product (SDM: all undefined). AF is left unchanged.
//   - DIV/IDIV leave all flags unchanged (SDM: undefined).
//   - Logic ops clear AF.
//
// # Harness conventions both engines follow
//
//   - The exit sentinel (emu.ExitSentinel) is checked only after RET,
//     RETF, CALL and indirect/direct JMP — a conditional jump landing
//     on it faults instead of exiting.
//   - A whole REP-prefixed string operation retires as one
//     instruction, bounded by the same iteration cap.
//   - PUSH decrements ESP before the store, so ESP stays decremented
//     when the store faults.
//   - Syscalls observe the post-instruction EIP.
//   - An instruction running off the end of mapped executable memory
//     classifies as a fetch fault at the first missing byte, not a
//     decode fault; the 15-byte fetch window is stitched across
//     contiguous executable segments.
//
// Known shared-decoder narrowings the oracle cannot see (both engines
// inherit them from internal/x86, so they never diverge): 0x66-prefixed
// PUSH/POP still transfer 32 bits, MOVZX/MOVSX destinations are always
// 32-bit registers, and 0x66 on branches is ignored.
package difftest
