//go:build !race

package difftest

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
