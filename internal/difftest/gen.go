package difftest

import (
	"fmt"
	"math/rand"

	"parallax/internal/image"
	"parallax/internal/x86"
)

// Generated-program layout. The text section is padded so a reserved
// patch pad exists past the generated code for self-modifying-store
// sequences.
const (
	genTextBase = 0x08048000
	genDataBase = 0x08100000
	genDataSize = 0x2000
	genPatchPad = 0x500 // offset of the self-modification target in .text
	genTextSize = 0x600
)

// ProgInst is one generated instruction. JccSkip > 0 marks a
// conditional branch over the following JccSkip instructions (targets
// are re-resolved after minimization removes instructions, clamping
// to the program end).
type ProgInst struct {
	Inst    x86.Inst
	JccSkip int
}

// Program is one generated lockstep input: either a structured
// instruction list (minimizable instruction-by-instruction) or raw
// bytes (gadget-style streams, possibly entered mid-instruction).
type Program struct {
	Name     string
	Insts    []ProgInst
	Raw      []byte
	EntryOff uint32 // entry offset into .text
	Data     []byte // initial .data contents
	Stdin    []byte
}

// Build assembles the program into a loadable image.
func (p *Program) Build() (*image.Image, error) {
	text := p.Raw
	if p.Insts != nil {
		b := x86.NewBuilder(genTextBase)
		for i, pi := range p.Insts {
			b.Label(label(i))
			if pi.JccSkip > 0 {
				tgt := i + 1 + pi.JccSkip
				if tgt > len(p.Insts) {
					tgt = len(p.Insts)
				}
				b.JccL(pi.Inst.Cond, label(tgt))
			} else {
				b.I(pi.Inst)
			}
		}
		b.Label(label(len(p.Insts)))
		var err error
		text, err = b.Finish()
		if err != nil {
			return nil, err
		}
	}
	if len(text) > genPatchPad {
		return nil, fmt.Errorf("difftest: program %s text %d bytes overruns the patch pad",
			p.Name, len(text))
	}
	padded := make([]byte, genTextSize)
	for i := range padded {
		padded[i] = 0x90 // nop
	}
	copy(padded, text)
	return &image.Image{
		Entry: genTextBase + p.EntryOff,
		Sections: []*image.Section{
			{Name: ".text", Addr: genTextBase, Data: padded,
				Size: genTextSize, Perm: image.PermR | image.PermX},
			{Name: ".data", Addr: genDataBase, Data: p.Data,
				Size: genDataSize, Perm: image.PermR | image.PermW},
		},
	}, nil
}

func label(i int) string { return fmt.Sprintf("i%d", i) }

// Generator produces a deterministic stream of gadget-biased programs
// from a seed: ret-terminated, flag-sensitive, with unaligned-decode
// and raw-byte variants — the byte streams Parallax's gadget chains
// actually execute.
type Generator struct {
	rng *rand.Rand
	n   int
}

// NewGenerator returns a generator seeded for reproducibility.
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

// Next produces the next program.
func (g *Generator) Next() *Program {
	g.n++
	name := fmt.Sprintf("gen-%d", g.n)
	data := make([]byte, genDataSize)
	g.rng.Read(data)
	roll := g.rng.Intn(10)
	switch {
	case roll == 0: // raw byte soup: mostly immediate decode faults
		raw := make([]byte, 16+g.rng.Intn(48))
		g.rng.Read(raw)
		return &Program{Name: name + "-raw", Raw: raw, Data: data}
	case roll <= 2: // structured code entered mid-instruction
		p := &Program{Name: name + "-unaligned", Insts: g.body(), Data: data}
		img, err := p.Build()
		if err != nil {
			// Fall back to the aligned form; the generator menu only
			// emits encodable instructions so this is unreachable.
			return p
		}
		text := img.Sections[0].Data[:genPatchPad]
		off := uint32(1 + g.rng.Intn(3))
		if int(off) >= len(text) {
			off = 1
		}
		return &Program{Name: p.Name, Raw: text, EntryOff: off, Data: data}
	default:
		return &Program{Name: name, Insts: g.body(), Data: data}
	}
}

var genWidths = []uint8{8, 16, 32}

// reg8 maps a register index to a valid 8-bit register operand.
var gen8Regs = []x86.Reg{x86.AL, x86.CL, x86.DL, x86.BL, x86.AH, x86.CH, x86.DH, x86.BH}

// dataRegs excludes ESP/EBP so the stack and data anchor stay intact.
var genDataRegs = []x86.Reg{x86.EAX, x86.ECX, x86.EDX, x86.EBX, x86.ESI, x86.EDI}

func (g *Generator) reg() x86.Reg { return genDataRegs[g.rng.Intn(len(genDataRegs))] }

func (g *Generator) regW(w uint8) x86.Operand {
	if w == 8 {
		return x86.RegOp(gen8Regs[g.rng.Intn(len(gen8Regs))])
	}
	return x86.RegOp(g.reg())
}

func (g *Generator) width() uint8 { return genWidths[g.rng.Intn(len(genWidths))] }

// mem returns a memory operand anchored at EBP (kept pointing into
// .data by the prologue), with a displacement that keeps any width
// in-bounds.
func (g *Generator) mem() x86.Operand {
	return x86.MemOp(x86.EBP, int32(g.rng.Intn(0x100))-0x80)
}

func (g *Generator) imm() int32 {
	switch g.rng.Intn(4) {
	case 0:
		return int32(g.rng.Intn(256)) - 128 // small
	case 1: // boundary patterns
		return []int32{0, 1, -1, 0x7F, -0x80, 0x7FFF, -0x8000,
			0x7FFFFFFF, -0x80000000}[g.rng.Intn(9)]
	default:
		return int32(g.rng.Uint32())
	}
}

// body emits a prologue anchoring pointers and seeding registers,
// then a flag-heavy random body, then a balanced-stack RET epilogue.
func (g *Generator) body() []ProgInst {
	var out []ProgInst
	emit := func(in x86.Inst) { out = append(out, ProgInst{Inst: in}) }
	mov := func(r x86.Reg, v int32) {
		emit(x86.Inst{Op: x86.MOV, W: 32, Dst: x86.RegOp(r), Src: x86.ImmOp(v)})
	}

	mov(x86.EBP, genDataBase+0x1000)
	mov(x86.ESI, genDataBase+0x800)
	mov(x86.EDI, genDataBase+0x900)
	for _, r := range []x86.Reg{x86.EAX, x86.EBX, x86.ECX, x86.EDX} {
		mov(r, g.imm())
	}

	depth := 0 // pushes minus pops, kept balanced for the final RET
	n := 5 + g.rng.Intn(36)
	alu := []x86.Op{x86.ADD, x86.ADC, x86.SUB, x86.SBB, x86.CMP,
		x86.AND, x86.OR, x86.XOR, x86.TEST}
	shifts := []x86.Op{x86.SHL, x86.SHR, x86.SAR, x86.ROL, x86.ROR,
		x86.RCL, x86.RCR}
	for i := 0; i < n; i++ {
		w := g.width()
		switch g.rng.Intn(20) {
		case 0, 1, 2, 3: // ALU reg,reg / reg,imm
			op := alu[g.rng.Intn(len(alu))]
			dst := g.regW(w)
			if g.rng.Intn(2) == 0 {
				emit(x86.Inst{Op: op, W: w, Dst: dst, Src: g.regW(w)})
			} else {
				emit(x86.Inst{Op: op, W: w, Dst: dst, Src: x86.ImmOp(g.imm())})
			}
		case 4, 5, 6: // shifts and rotates, imm or CL count
			op := shifts[g.rng.Intn(len(shifts))]
			src := x86.ImmOp(int32(g.rng.Intn(40)))
			if g.rng.Intn(3) == 0 {
				src = x86.RegOp(x86.CL)
			}
			emit(x86.Inst{Op: op, W: w, Dst: g.regW(w), Src: src})
		case 7: // one-operand mul/div family
			op := []x86.Op{x86.MUL, x86.IMUL, x86.DIV, x86.IDIV}[g.rng.Intn(4)]
			emit(x86.Inst{Op: op, W: w, Dst: g.regW(w)})
		case 8: // two/three-operand imul (32-bit dest per decoder)
			if g.rng.Intn(2) == 0 {
				emit(x86.Inst{Op: x86.IMUL, W: 32, Dst: x86.RegOp(g.reg()),
					Src: x86.RegOp(g.reg())})
			} else {
				emit(x86.Inst{Op: x86.IMUL, W: 32, Dst: x86.RegOp(g.reg()),
					Src: x86.RegOp(g.reg()), HasImm: true, Imm: g.imm()})
			}
		case 9: // inc/dec/neg/not
			op := []x86.Op{x86.INC, x86.DEC, x86.NEG, x86.NOT}[g.rng.Intn(4)]
			emit(x86.Inst{Op: op, W: w, Dst: g.regW(w)})
		case 10: // memory traffic through the EBP anchor
			if g.rng.Intn(2) == 0 {
				emit(x86.Inst{Op: x86.MOV, W: w, Dst: g.mem(), Src: g.regW(w)})
			} else {
				emit(x86.Inst{Op: x86.MOV, W: w, Dst: g.regW(w), Src: g.mem()})
			}
		case 11: // widening moves
			op := []x86.Op{x86.MOVZX, x86.MOVSX}[g.rng.Intn(2)]
			sw := []uint8{8, 16}[g.rng.Intn(2)]
			emit(x86.Inst{Op: op, W: sw, Dst: x86.RegOp(g.reg()), Src: g.regW(sw)})
		case 12: // accumulator conversions
			emit(x86.Inst{Op: []x86.Op{x86.CWDE, x86.CDQ}[g.rng.Intn(2)],
				W: []uint8{16, 32}[g.rng.Intn(2)]})
		case 13: // flag plumbing
			op := []x86.Op{x86.CLC, x86.STC, x86.CMC, x86.LAHF, x86.SAHF}[g.rng.Intn(5)]
			emit(x86.Inst{Op: op, W: 32})
		case 14: // setcc
			emit(x86.Inst{Op: x86.SETCC, Cond: x86.Cond(g.rng.Intn(16)),
				W: 8, Dst: x86.RegOp(gen8Regs[g.rng.Intn(4)])})
		case 15: // forward conditional branch
			out = append(out, ProgInst{
				Inst:    x86.Inst{Op: x86.JCC, Cond: x86.Cond(g.rng.Intn(16))},
				JccSkip: 1 + g.rng.Intn(3),
			})
		case 16: // balanced push/pop
			if depth > 0 && g.rng.Intn(2) == 0 {
				emit(x86.Inst{Op: x86.POP, W: 32, Dst: x86.RegOp(g.reg())})
				depth--
			} else {
				emit(x86.Inst{Op: x86.PUSH, W: 32, Dst: x86.RegOp(g.reg())})
				depth++
			}
		case 17: // string op with small REP and random direction
			mov(x86.ESI, genDataBase+0x800+int32(g.rng.Intn(0x40)))
			mov(x86.EDI, genDataBase+0x900+int32(g.rng.Intn(0x40)))
			mov(x86.ECX, int32(g.rng.Intn(6)))
			emit(x86.Inst{Op: []x86.Op{x86.CLD, x86.STD}[g.rng.Intn(2)], W: 32})
			sop := []x86.Op{x86.MOVS, x86.STOS, x86.LODS, x86.SCAS, x86.CMPS}[g.rng.Intn(5)]
			sw := []uint8{8, 16, 32}[g.rng.Intn(3)]
			var rep, repne bool
			if g.rng.Intn(3) != 0 {
				if (sop == x86.SCAS || sop == x86.CMPS) && g.rng.Intn(2) == 0 {
					repne = true
				} else {
					rep = true
				}
			}
			emit(x86.Inst{Op: sop, W: sw, Rep: rep, RepNE: repne})
			emit(x86.Inst{Op: x86.CLD, W: 32})
		case 18: // lea / xchg
			if g.rng.Intn(2) == 0 {
				emit(x86.Inst{Op: x86.LEA, W: 32, Dst: x86.RegOp(g.reg()), Src: g.mem()})
			} else {
				emit(x86.Inst{Op: x86.XCHG, W: w, Dst: g.regW(w), Src: g.regW(w)})
			}
		default: // adc/sbb chains that consume the carry
			op := []x86.Op{x86.ADC, x86.SBB}[g.rng.Intn(2)]
			emit(x86.Inst{Op: op, W: w, Dst: g.regW(w), Src: g.regW(w)})
		}
	}

	for ; depth > 0; depth-- {
		emit(x86.Inst{Op: x86.POP, W: 32, Dst: x86.RegOp(g.reg())})
	}

	// One program in ten exits through freshly self-modified code:
	// store "inc eax; ret" into the patch pad, then jump to it. This
	// pins decode-cache coherence against the cache-free reference.
	if g.rng.Intn(10) == 0 {
		mov(x86.EBX, genTextBase+genPatchPad)
		emit(x86.Inst{Op: x86.MOV, W: 32, Dst: x86.MemOp(x86.EBX, 0),
			Src: x86.ImmOp(int32(int64(0x90C3C0FF) - (1 << 32)))}) // ff c0 c3 90
		emit(x86.Inst{Op: x86.JMP, W: 32, Dst: x86.RegOp(x86.EBX)})
	} else {
		emit(x86.Inst{Op: x86.RET, W: 32})
	}
	return out
}
