// Package rewrite implements the paper's §IV-B binary rewriting rules:
// measuring which code bytes can be protected by overlapping gadgets
// (Figure 6), and applying the modifications that craft those gadgets
// (immediate splitting, function alignment, spurious instructions).
package rewrite

import (
	"fmt"

	"parallax/internal/gadget"
	"parallax/internal/image"
	"parallax/internal/x86"
)

// Rule identifies one §IV-B rewriting rule.
type Rule uint8

// The measured rules of Figure 6.
const (
	// RuleExisting counts bytes overlapped by gadgets already present
	// (near returns), §IV-B1.
	RuleExisting Rule = iota
	// RuleFarRet counts bytes overlapped by existing far-return
	// gadgets, §IV-B5.
	RuleFarRet
	// RuleImmMod counts bytes protectable by modifying immediate
	// operands of add/adc/sub/sbb/mov instructions, §IV-B2 (and B6).
	RuleImmMod
	// RuleJumpMod counts bytes protectable by re-aligning code and
	// data so jump/call offsets encode gadget bytes, §IV-B3.
	RuleJumpMod
	numRules
)

var ruleNames = [numRules]string{"existing", "far-ret", "imm-mod", "jump-mod"}

func (r Rule) String() string {
	if int(r) < len(ruleNames) {
		return ruleNames[r]
	}
	return fmt.Sprintf("rule(%d)", uint8(r))
}

// Coverage is one rule's protectable-byte count.
type Coverage struct {
	Rule Rule
	// Bytes counts strictly-verified coverage: bytes inside a decode
	// chain that provably ends at a (crafted or existing) return.
	Bytes int
	// ReachBytes counts compositional coverage: bytes within gadget
	// reach (one maximal instruction) of a craftable return, on the
	// assumption that rule composition (splitting or spurious bytes in
	// the intervening instructions) can complete the decode chain.
	// This matches the paper's more liberal protectable-byte
	// accounting.
	ReachBytes int
	Sites      int
}

// Report is the Figure 6 measurement for one binary.
type Report struct {
	TextBytes int
	Rules     [numRules]Coverage
	// AnyBytes / AnyReachBytes are the union coverages over all rules
	// ("any" in Fig. 6), in strict and compositional accounting.
	AnyBytes      int
	AnyReachBytes int
}

// Percent returns a rule's strict coverage as a percentage of text
// bytes.
func (r *Report) Percent(rule Rule) float64 {
	if r.TextBytes == 0 {
		return 0
	}
	return 100 * float64(r.Rules[rule].Bytes) / float64(r.TextBytes)
}

// PercentReach returns a rule's compositional coverage percentage.
func (r *Report) PercentReach(rule Rule) float64 {
	if r.TextBytes == 0 {
		return 0
	}
	return 100 * float64(r.Rules[rule].ReachBytes) / float64(r.TextBytes)
}

// AnyPercent returns the strict union coverage percentage.
func (r *Report) AnyPercent() float64 {
	if r.TextBytes == 0 {
		return 0
	}
	return 100 * float64(r.AnyBytes) / float64(r.TextBytes)
}

// AnyReachPercent returns the compositional union coverage percentage.
func (r *Report) AnyReachPercent() float64 {
	if r.TextBytes == 0 {
		return 0
	}
	return 100 * float64(r.AnyReachBytes) / float64(r.TextBytes)
}

// immPatterns are the gadget byte sequences the immediate-modification
// rule tries to embed. Each ends with 0xC3 (ret) — possibly with
// trailing filler.
var immPatterns = [][]byte{
	{0x58, 0xC3},       // pop eax; ret
	{0x5B, 0xC3},       // pop ebx; ret
	{0x59, 0xC3},       // pop ecx; ret
	{0x01, 0xD8, 0xC3}, // add eax, ebx; ret
	{0x29, 0xD8, 0xC3}, // sub eax, ebx; ret
	{0x31, 0xD8, 0xC3}, // xor eax, ebx; ret
	{0x21, 0xD8, 0xC3}, // and eax, ebx; ret
	{0x89, 0xC1, 0xC3}, // mov ecx, eax; ret
	{0x8B, 0x03, 0xC3}, // mov eax, [ebx]; ret
	{0x89, 0x03, 0xC3}, // mov [ebx], eax; ret
	{0xF7, 0xD8, 0xC3}, // neg eax; ret
	{0xD3, 0xE8, 0xC3}, // shr eax, cl; ret
	{0x01, 0xC4, 0xC3}, // add esp, eax; ret
	{0x5C, 0xC3},       // pop esp; ret
	{0x90, 0xC3},       // nop; ret
	{0xC3},             // ret
}

// measureConfig bounds the hypothetical-scan windows.
const (
	backWindow = 24 // how far before a crafted ret gadget starts may lie
	maxGadLen  = 24
)

// Measure computes the Figure 6 protectability report for an image.
func Measure(img *image.Image) (*Report, error) {
	text := img.Text()
	if text == nil {
		return nil, fmt.Errorf("rewrite: image has no text section")
	}
	code := text.Data
	rep := &Report{TextBytes: len(code)}

	covers := [numRules][]bool{}
	reaches := [numRules][]bool{}
	for i := range covers {
		covers[i] = make([]bool, len(code))
		reaches[i] = make([]bool, len(code))
	}
	markReach := func(rule Rule, retOff int) {
		lo := retOff - (maxInstLenReach - 1)
		if lo < 0 {
			lo = 0
		}
		for a := lo; a <= retOff && a < len(code); a++ {
			reaches[rule][a] = true
		}
	}

	// Existing near/far gadgets: strict and reach coincide with the
	// scanner's spans plus the one-instruction reach before each ret.
	for _, g := range gadget.ScanBytes(code, text.Addr, gadget.ScanConfig{}) {
		lo, hi := g.Range()
		rule := RuleExisting
		if g.FarRet {
			rule = RuleFarRet
		}
		for a := lo; a < hi; a++ {
			covers[rule][a-text.Addr] = true
			reaches[rule][a-text.Addr] = true
		}
		rep.Rules[rule].Sites++
	}

	// Immediate-modification and jump-modification rules need the
	// instruction stream.
	insts := x86.Disassemble(code, text.Addr)
	off := uint32(0)
	for i := range insts {
		in := &insts[i]
		start := int(off)
		off += uint32(in.Len)
		switch {
		case isImmModCandidate(in):
			pos, size := immField(in, start)
			if size > 0 && measureEmbed(code, pos, size, covers[RuleImmMod][:]) {
				rep.Rules[RuleImmMod].Sites++
				// The crafted ret can sit at any immediate byte.
				markReach(RuleImmMod, pos+size-1)
			}
		case isJumpModCandidate(in):
			// The rel32 low byte can be steered to 0xC3 by padding the
			// branch target (§IV-B3): it is at instruction end - 4.
			pos := start + in.Len - 4
			if measureForcedRet(code, pos, covers[RuleJumpMod][:]) {
				rep.Rules[RuleJumpMod].Sites++
				markReach(RuleJumpMod, pos)
			}
		}
	}

	any := make([]bool, len(code))
	anyReach := make([]bool, len(code))
	for r := Rule(0); r < numRules; r++ {
		n, nr := 0, 0
		for i, v := range covers[r] {
			if v {
				n++
				any[i] = true
			}
			if reaches[r][i] {
				nr++
				anyReach[i] = true
			}
		}
		rep.Rules[r].Rule = r
		rep.Rules[r].Bytes = n
		rep.Rules[r].ReachBytes = nr
	}
	for i := range any {
		if any[i] {
			rep.AnyBytes++
		}
		if anyReach[i] {
			rep.AnyReachBytes++
		}
	}
	return rep, nil
}

// maxInstLenReach is the architectural instruction length limit: a
// gadget's final pre-ret instruction can begin at most this many bytes
// before the return.
const maxInstLenReach = 15

// isImmModCandidate reports whether the §IV-B2 rule applies: an
// add/adc/sub/sbb/mov instruction with an immediate operand that
// instruction splitting can compensate.
func isImmModCandidate(in *x86.Inst) bool {
	switch in.Op {
	case x86.ADD, x86.ADC, x86.SUB, x86.SBB, x86.MOV:
	default:
		return false
	}
	return in.Src.Kind == x86.KImm && (in.W == 32 || in.W == 8)
}

// isJumpModCandidate reports whether §IV-B3 applies: a relative
// jmp/jcc/call whose displacement can be steered by re-aligning the
// target.
func isJumpModCandidate(in *x86.Inst) bool {
	switch in.Op {
	case x86.JMP, x86.JCC, x86.CALL:
		return in.Rel && in.Len >= 5
	}
	return false
}

// immField locates the trailing immediate field of an eligible
// instruction. Returns its offset in the code and byte size.
func immField(in *x86.Inst, start int) (pos, size int) {
	size = int(in.W) / 8
	if in.W == 32 {
		// 0x83-form sign-extended immediates are one byte.
		if in.Op != x86.MOV && in.Src.Imm >= -128 && in.Src.Imm <= 127 {
			size = 1
		}
	}
	return start + in.Len - size, size
}

// hypoWindow copies the slice of code a hypothetical gadget at
// [pos, pos+size) can possibly involve: chains start at most backWindow
// bytes before the crafted ret (which sits inside the field), and a
// decode from any candidate start can read at most one architectural
// instruction length past it. Copying only this window is what keeps
// Measure linear in text size — the previous whole-code copy per
// (site, pattern, shift) attempt made Figure 6 measurement quadratic,
// which the multi-MiB generated corpus turned from invisible into
// hours.
func hypoWindow(code []byte, pos, size int) (work []byte, base int) {
	lo := pos - backWindow
	if lo < 0 {
		lo = 0
	}
	hi := pos + size + maxInstLenReach
	if hi > len(code) {
		hi = len(code)
	}
	return append([]byte(nil), code[lo:hi]...), lo
}

// measureEmbed tries the pattern library inside an immediate field at
// [pos, pos+size) and accumulates the best hypothetical gadget
// coverage. Returns true if any pattern yields a gadget.
func measureEmbed(code []byte, pos, size int, cover []bool) bool {
	work, base := hypoWindow(code, pos, size)
	rel := pos - base
	found := false
	for _, pat := range immPatterns {
		if len(pat) > size {
			continue
		}
		// Place the pattern at every offset inside the field.
		for shift := 0; shift+len(pat) <= size; shift++ {
			for i := 0; i < size; i++ {
				work[rel+i] = 0x90 // filler decodes as nop
			}
			copy(work[rel+shift:], pat)
			retPos := rel + shift + len(pat) - 1
			if markGadgetsEndingAt(work, base, retPos, cover) {
				found = true
			}
		}
	}
	return found
}

// measureForcedRet forces code[pos] to 0xC3 and accumulates coverage of
// gadgets ending exactly there.
func measureForcedRet(code []byte, pos int, cover []bool) bool {
	if pos < 0 || pos >= len(code) {
		return false
	}
	work, base := hypoWindow(code, pos, 1)
	work[pos-base] = 0xC3
	return markGadgetsEndingAt(work, base, pos-base, cover)
}

// markGadgetsEndingAt finds every decode chain of at most six
// instructions that terminates in the ret at retPos (an offset into
// work; base maps it back into the full code for coverage marking).
func markGadgetsEndingAt(work []byte, base, retPos int, cover []bool) bool {
	if retPos >= len(work) || work[retPos] != 0xC3 {
		return false
	}
	found := false
	lo := retPos - backWindow
	if lo < 0 {
		lo = 0
	}
	for start := lo; start <= retPos; start++ {
		if decodesToRetAt(work, start, retPos) {
			for i := start; i <= retPos; i++ {
				cover[base+i] = true
			}
			found = true
		}
	}
	return found
}

// decodesToRetAt checks whether decoding from start walks cleanly to a
// return whose final byte is at retPos, within the six-instruction
// gadget limit.
func decodesToRetAt(work []byte, start, retPos int) bool {
	pos := start
	for n := 0; n < 6; n++ {
		if pos > retPos {
			return false
		}
		in, err := x86.Decode(work[pos:], uint32(pos))
		if err != nil {
			return false
		}
		switch in.Op {
		case x86.CALL, x86.JMP, x86.JCC, x86.INT, x86.INT3, x86.HLT:
			return false
		}
		end := pos + in.Len - 1
		if in.IsRet() {
			return end == retPos
		}
		if end >= retPos {
			return false
		}
		pos += in.Len
	}
	return false
}
