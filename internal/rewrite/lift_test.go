package rewrite

import (
	"testing"

	"parallax/internal/codegen"
	"parallax/internal/corpus"
	"parallax/internal/gadget"
	"parallax/internal/image"
)

// TestLiftRelinkPreservesBehaviour lifts every corpus binary back to a
// relocatable object, relinks it, and requires identical behaviour —
// the binary-level round trip of the paper's claim 5.
func TestLiftRelinkPreservesBehaviour(t *testing.T) {
	for _, p := range corpus.All() {
		t.Run(p.Name, func(t *testing.T) {
			img, err := codegen.Build(p.Build(), image.Layout{})
			if err != nil {
				t.Fatal(err)
			}
			obj, err := Lift(img)
			if err != nil {
				t.Fatal(err)
			}
			relinked, err := image.Link(obj, image.Layout{})
			if err != nil {
				t.Fatal(err)
			}
			if got, want := runStatus(t, relinked), runStatus(t, img); got != want {
				t.Fatalf("relinked status %d != original %d", got, want)
			}
		})
	}
}

// TestLiftThenRewrite is the legacy-binary protection path: no source,
// no IR — lift the binary, apply the §IV-B2 splitting rule, relink,
// and the behaviour is preserved while the gadget inventory grows.
func TestLiftThenRewrite(t *testing.T) {
	p, err := corpus.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	img, err := codegen.Build(p.Build(), image.Layout{})
	if err != nil {
		t.Fatal(err)
	}
	want := runStatus(t, img)
	before := len(gadget.Scan(img, gadget.ScanConfig{}).Gadgets)

	obj, err := Lift(img)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SplitImmediates(obj, nil)
	if err != nil {
		t.Fatal(err)
	}
	protected, err := image.Link(obj, image.Layout{})
	if err != nil {
		t.Fatal(err)
	}
	if got := runStatus(t, protected); got != want {
		t.Fatalf("legacy-rewritten status %d != original %d", got, want)
	}
	after := len(gadget.Scan(protected, gadget.ScanConfig{}).Gadgets)
	if after <= before {
		t.Errorf("gadgets %d -> %d; rewriting the lifted binary crafted nothing", before, after)
	}
	t.Logf("lifted gzip: %d split sites, gadgets %d -> %d", res.Sites, before, after)
}

// TestLiftRelinkTextIdentical checks the stronger property on a
// representative binary: with the same layout, relinked text bytes are
// identical (encodings are canonical both ways).
func TestLiftRelinkTextIdentical(t *testing.T) {
	p, err := corpus.ByName("lame")
	if err != nil {
		t.Fatal(err)
	}
	img, err := codegen.Build(p.Build(), image.Layout{})
	if err != nil {
		t.Fatal(err)
	}
	obj, err := Lift(img)
	if err != nil {
		t.Fatal(err)
	}
	relinked, err := image.Link(obj, image.Layout{})
	if err != nil {
		t.Fatal(err)
	}
	a := img.Text().Data
	b := relinked.Text().Data
	if len(a) != len(b) {
		t.Fatalf("text sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("text differs at offset %#x: %02x vs %02x", i, a[i], b[i])
		}
	}
}
