package rewrite

import (
	"fmt"

	"parallax/internal/image"
	"parallax/internal/x86"
)

// Lift reconstructs a relocatable object from a linked image — the
// binary-level workflow of the paper's claim 5 ("our approach lends
// itself to binary-level implementation, and does not inherently
// require source. This enables the protection of legacy binaries").
//
// Functions are recovered from the symbol table by linear-sweep
// disassembly; intra-function branches become local labels;
// cross-function and data references are recovered from the image's
// relocation table. The lifted object can be re-linked (bit-identical
// text modulo layout) and fed to the same rewriting rules as a
// source-built object.
//
// Requirements, as for any binary rewriter of this design: function
// symbols cover the code, text contains no interleaved data, and all
// symbolic references are in the relocation table — properties this
// repository's linker guarantees and real toolchains approximate with
// debug information (the paper's prototype also "uses source to
// simplify binary rewriting").
func Lift(img *image.Image) (*image.Object, error) {
	text := img.Text()
	if text == nil {
		return nil, fmt.Errorf("rewrite: image has no text section")
	}

	relocAt := make(map[uint32]image.Reloc, len(img.Relocs))
	for _, r := range img.Relocs {
		relocAt[r.Addr] = r
	}

	funcs := img.Funcs()
	obj := &image.Object{}

	for _, sym := range funcs {
		fn, err := liftFunc(img, text, sym, relocAt)
		if err != nil {
			return nil, fmt.Errorf("rewrite: lifting %s: %w", sym.Name, err)
		}
		if err := obj.AddFunc(fn); err != nil {
			return nil, err
		}
	}

	// Data objects come across as raw bytes plus their pointer slots
	// (recovered from relocations falling inside them).
	for _, sym := range img.Symbols {
		if sym.Kind != image.SymObject {
			continue
		}
		sec := img.SectionAt(sym.Addr)
		if sec == nil {
			return nil, fmt.Errorf("rewrite: data symbol %s outside sections", sym.Name)
		}
		d := &image.DataSym{
			Name:     sym.Name,
			Size:     sym.Size,
			ReadOnly: sec.Perm&image.PermW == 0,
		}
		if off := sym.Addr - sec.Addr; off < uint32(len(sec.Data)) {
			end := off + sym.Size
			if end > uint32(len(sec.Data)) {
				end = uint32(len(sec.Data))
			}
			d.Bytes = append([]byte(nil), sec.Data[off:end]...)
		}
		for _, r := range img.Relocs {
			if r.Kind == image.RelocAbs32 && r.Addr >= sym.Addr &&
				r.Addr+4 <= sym.Addr+sym.Size && sec.Contains(r.Addr) {
				d.Words = append(d.Words, image.WordRef{
					Off: r.Addr - sym.Addr, Sym: r.Sym, Add: r.Add,
				})
			}
		}
		// BSS objects keep nil bytes (zero-initialized).
		if sec.Name == ".bss" {
			d.Bytes = nil
		}
		if err := obj.AddData(d); err != nil {
			return nil, err
		}
	}

	// Entry function.
	for _, sym := range funcs {
		if sym.Addr == img.Entry {
			obj.Entry = sym.Name
		}
	}
	if obj.Entry == "" && len(funcs) > 0 {
		return nil, fmt.Errorf("rewrite: entry %#x is not a function start", img.Entry)
	}
	return obj, nil
}

func liftFunc(img *image.Image, text *image.Section, sym image.Symbol,
	relocAt map[uint32]image.Reloc) (*image.Func, error) {

	code := text.Data[sym.Addr-text.Addr : sym.Addr+sym.Size-text.Addr]

	// First pass: decode and collect intra-function branch targets.
	type node struct {
		addr uint32
		inst x86.Inst
		raw  []byte
	}
	var nodes []node
	targets := map[uint32]bool{}
	addr := sym.Addr
	for int(addr-sym.Addr) < len(code) {
		off := addr - sym.Addr
		inst, err := x86.Decode(code[off:], addr)
		if err != nil {
			// Unknown bytes (e.g. inserted raw gadgets) are carried as
			// opaque single bytes; they cannot contain relocations.
			nodes = append(nodes, node{addr: addr, raw: code[off : off+1]})
			addr++
			continue
		}
		nodes = append(nodes, node{addr: addr, inst: inst,
			raw: code[off : off+uint32(inst.Len)]})
		if inst.Rel && inst.Target >= sym.Addr && inst.Target < sym.Addr+sym.Size {
			if _, isGlobal := relocAt[addr+uint32(inst.Len)-4]; !isGlobal {
				targets[inst.Target] = true
			}
		}
		addr += uint32(inst.Len)
	}

	labelOf := func(a uint32) string { return fmt.Sprintf(".L%x", a-sym.Addr) }

	fn := &image.Func{Name: sym.Name}
	for _, n := range nodes {
		var it image.Item
		switch {
		case n.raw != nil && n.inst.Len == 0:
			it = image.RawItem(n.raw...)
		default:
			it = image.InstItem(n.inst)
			// Re-symbolize references.
			if r, ok := findReloc(relocAt, n.addr, n.inst.Len); ok {
				slot := image.RefImm
				if r.Kind == image.RelocRel32 {
					slot = image.RefTarget
				} else if m, isMem := n.inst.MemOperand(); isMem && uint32(m.Disp) == targetOf(img, r) {
					slot = image.RefDisp
				}
				it.Ref = image.Ref{Slot: slot, Sym: r.Sym, Add: r.Add}
				// Neutralize the baked-in value so linking re-derives it.
				it.Inst = neutralizeRef(it.Inst, slot)
			} else if n.inst.Rel && targets[n.inst.Target] {
				it.Ref = image.Ref{Slot: image.RefTarget, Sym: labelOf(n.inst.Target)}
			} else if n.inst.Rel {
				return nil, fmt.Errorf("branch at %#x to %#x has no relocation or local target",
					n.addr, n.inst.Target)
			}
		}
		if targets[n.addr] {
			it.Label = labelOf(n.addr)
		}
		fn.Items = append(fn.Items, it)
	}
	return fn, nil
}

// findReloc locates a relocation patch site within an instruction.
func findReloc(relocAt map[uint32]image.Reloc, addr uint32, length int) (image.Reloc, bool) {
	for off := 0; off <= length-4; off++ {
		if r, ok := relocAt[addr+uint32(off)]; ok {
			return r, true
		}
	}
	return image.Reloc{}, false
}

func targetOf(img *image.Image, r image.Reloc) uint32 {
	s, ok := img.Symbol(r.Sym)
	if !ok {
		return 0
	}
	return s.Addr + uint32(r.Add)
}

// neutralizeRef zeroes the symbolic slot so the linker treats it as a
// pure placeholder.
func neutralizeRef(inst x86.Inst, slot image.RefSlot) x86.Inst {
	switch slot {
	case image.RefTarget:
		inst.Rel = true
		inst.Target = 0
	case image.RefImm:
		if inst.Op == x86.PUSH {
			inst.Dst = x86.ImmOp(0)
		} else {
			inst.Src = x86.ImmOp(0)
		}
	case image.RefDisp:
		if inst.Dst.Kind == x86.KMem {
			inst.Dst.Disp = 0
		} else if inst.Src.Kind == x86.KMem {
			inst.Src.Disp = 0
		}
	}
	return inst
}
