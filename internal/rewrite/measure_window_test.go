package rewrite

import (
	"testing"

	"parallax/internal/image"
)

// The hypothetical-gadget helpers copy only the window a crafted chain
// can occupy (hypoWindow) instead of the whole text per attempt — the
// difference between Measure being linear and quadratic in text size.
// These tests pin the windowed helpers to a whole-code reference
// implementation byte for byte, so the optimization can never drift
// from the semantics it replaced.

// refMeasureEmbed is the original whole-code-copy implementation of
// measureEmbed, kept as the oracle.
func refMeasureEmbed(code []byte, pos, size int, cover []bool) bool {
	found := false
	for _, pat := range immPatterns {
		if len(pat) > size {
			continue
		}
		for shift := 0; shift+len(pat) <= size; shift++ {
			work := append([]byte(nil), code...)
			for i := range work[pos : pos+size] {
				work[pos+i] = 0x90
			}
			copy(work[pos+shift:], pat)
			retPos := pos + shift + len(pat) - 1
			if markGadgetsEndingAt(work, 0, retPos, cover) {
				found = true
			}
		}
	}
	return found
}

// refMeasureForcedRet is the original whole-code-copy implementation of
// measureForcedRet.
func refMeasureForcedRet(code []byte, pos int, cover []bool) bool {
	if pos < 0 || pos >= len(code) {
		return false
	}
	work := append([]byte(nil), code...)
	work[pos] = 0xC3
	return markGadgetsEndingAt(work, 0, pos, cover)
}

// synthCode generates deterministic pseudo-x86 byte soup: mostly
// plausible opcode bytes with planted rets, so decode chains of every
// outcome (clean, truncated, branch-poisoned) appear near the probed
// sites.
func synthCode(n int, seed uint64) []byte {
	code := make([]byte, n)
	s := seed
	for i := range code {
		// splitmix64 step, stable across Go releases.
		s += 0x9E3779B97F4A7C15
		z := s
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		code[i] = byte(z)
		switch z % 11 {
		case 0:
			code[i] = 0xC3 // ret
		case 1:
			code[i] = 0x90 // nop
		case 2:
			code[i] = 0x58 // pop eax
		}
	}
	return code
}

func TestMeasureEmbedMatchesWholeCodeReference(t *testing.T) {
	for _, n := range []int{64, 1024, 8192} {
		code := synthCode(n, uint64(n))
		for pos := 0; pos+4 <= n; pos += 3 {
			for _, size := range []int{1, 2, 4} {
				if pos+size > n {
					continue
				}
				gotCover := make([]bool, n)
				wantCover := make([]bool, n)
				got := measureEmbed(code, pos, size, gotCover)
				want := refMeasureEmbed(code, pos, size, wantCover)
				if got != want {
					t.Fatalf("n=%d pos=%d size=%d: found=%v, reference=%v", n, pos, size, got, want)
				}
				for i := range gotCover {
					if gotCover[i] != wantCover[i] {
						t.Fatalf("n=%d pos=%d size=%d: cover[%d]=%v, reference=%v",
							n, pos, size, i, gotCover[i], wantCover[i])
					}
				}
			}
		}
	}
}

func TestMeasureForcedRetMatchesWholeCodeReference(t *testing.T) {
	n := 4096
	code := synthCode(n, 7)
	for pos := 0; pos < n; pos += 2 {
		gotCover := make([]bool, n)
		wantCover := make([]bool, n)
		got := measureForcedRet(code, pos, gotCover)
		want := refMeasureForcedRet(code, pos, wantCover)
		if got != want {
			t.Fatalf("pos=%d: found=%v, reference=%v", pos, got, want)
		}
		for i := range gotCover {
			if gotCover[i] != wantCover[i] {
				t.Fatalf("pos=%d: cover[%d]=%v, reference=%v", pos, i, gotCover[i], wantCover[i])
			}
		}
	}
}

// BenchmarkMeasureSynthetic documents Measure's cost growth: doubling
// the text size must roughly double, not quadruple, the per-op time
// (run with -bench Measure to compare sizes).
func BenchmarkMeasureSynthetic(b *testing.B) {
	for _, kib := range []int{64, 128, 256} {
		code := synthCode(kib*1024, uint64(kib))
		img := imageFromText(code)
		b.Run(benchName(kib), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Measure(img); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// imageFromText wraps raw code bytes into a minimal executable image.
func imageFromText(code []byte) *image.Image {
	return &image.Image{
		Entry: 0x1000,
		Sections: []*image.Section{{
			Name: ".text", Addr: 0x1000, Data: code,
			Size: uint32(len(code)), Perm: image.PermR | image.PermX,
		}},
	}
}

func benchName(kib int) string {
	switch kib {
	case 64:
		return "64KiB"
	case 128:
		return "128KiB"
	default:
		return "256KiB"
	}
}
