package rewrite

import (
	"fmt"

	"parallax/internal/image"
	"parallax/internal/x86"
)

// InsertSpurious applies the §IV-B4 spurious-instruction rule: gadget
// byte sequences are inserted into a function's instruction stream,
// guarded by a jump so normal execution skips them (ensuring, per the
// paper, "that their side-effects do not influence the semantics of
// the original code"). Unlike the other rules this one always applies,
// at the cost of one executed jmp per insertion point — the slowdown
// the paper attributes to the rule.
//
// every selects the insertion stride in items (e.g. 4 = one insertion
// per four instructions); values below 1 mean 8.
func InsertSpurious(obj *image.Object, fnName string, gadgets [][]byte, every int) (int, error) {
	fn := obj.Func(fnName)
	if fn == nil {
		return 0, fmt.Errorf("rewrite: function %q not in object", fnName)
	}
	if len(gadgets) == 0 {
		return 0, fmt.Errorf("rewrite: no gadget bytes to insert")
	}
	if every < 1 {
		every = 8
	}

	var out []image.Item
	inserted := 0
	gi := 0
	sinceLast := 0
	for i, it := range fn.Items {
		out = append(out, it)
		sinceLast++
		if sinceLast < every || i == len(fn.Items)-1 {
			continue
		}
		// Do not split a flag-producing instruction from its consumer.
		if producesLiveFlags(&it) {
			continue
		}
		g := gadgets[gi%len(gadgets)]
		gi++
		if len(g) > 127 {
			return inserted, fmt.Errorf("rewrite: gadget of %d bytes exceeds jmp rel8 range", len(g))
		}
		// jmp over the raw gadget bytes.
		out = append(out,
			image.RawItem(append([]byte{0xEB, byte(len(g))}, g...)...),
		)
		inserted++
		sinceLast = 0
	}
	fn.Items = out
	if inserted == 0 {
		return 0, fmt.Errorf("rewrite: no insertion points in %q", fnName)
	}
	return inserted, nil
}

// producesLiveFlags reports whether the item's flags output may be
// consumed by the next instruction (cmp/test feeding jcc/setcc in the
// code generator's output).
func producesLiveFlags(it *image.Item) bool {
	if it.Raw != nil {
		return false
	}
	switch it.Inst.Op {
	case x86.CMP, x86.TEST:
		return true
	}
	return false
}

// DefaultSpuriousGadgets is a small chain-usable set for insertion.
func DefaultSpuriousGadgets() [][]byte {
	return [][]byte{
		{0x58, 0xC3},       // pop eax; ret
		{0x5B, 0xC3},       // pop ebx; ret
		{0x01, 0xD8, 0xC3}, // add eax, ebx; ret
		{0x89, 0x03, 0xC3}, // mov [ebx], eax; ret
		{0x8B, 0x03, 0xC3}, // mov eax, [ebx]; ret
	}
}
