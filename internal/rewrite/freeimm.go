package rewrite

import (
	"encoding/binary"

	"parallax/internal/image"
	"parallax/internal/x86"
)

// FreeStatusImmediates applies the second half of §IV-B2: "it is
// generally possible to freely modify immediates which set eax before
// a return ... because return value and exit status semantics commonly
// distinguish only between zero and non-zero."
//
// Eligible sites are `mov eax, imm` instructions with a non-zero
// immediate whose next instructions are (optionally `leave` then)
// `ret`. The immediate is replaced wholesale by a gadget byte pattern
// (always non-zero), preserving the zero/non-zero contract with *no
// compensation instruction* — unlike splitting, this rule costs
// nothing at run time.
//
// The paper notes "this rule can be disabled for conflicting
// semantics"; callers that compare exact return values must not apply
// it, which is why it is a separate opt-in pass rather than part of
// SplitImmediates.
func FreeStatusImmediates(obj *image.Object, funcs []string) (*SplitResult, error) {
	want := map[string]bool{}
	for _, f := range funcs {
		want[f] = true
	}
	res := &SplitResult{PerFunc: make(map[string]int)}
	patIdx := 0
	for _, fn := range obj.Funcs {
		if len(fn.Name) >= 2 && fn.Name[:2] == ".." {
			continue
		}
		if len(want) > 0 && !want[fn.Name] {
			continue
		}
		for i := range fn.Items {
			if !isFreeStatusSite(fn.Items, i) {
				continue
			}
			pat := splitPatterns[patIdx%len(splitPatterns)]
			patIdx++
			fn.Items[i].Inst.Src = x86.ImmOp(int32(binary.LittleEndian.Uint32(pat[:])))
			res.Sites++
			res.PerFunc[fn.Name]++
		}
	}
	return res, nil
}

// isFreeStatusSite matches `mov eax, imm(!=0)` directly followed by
// (leave)? ret.
func isFreeStatusSite(items []image.Item, i int) bool {
	it := items[i]
	if it.Raw != nil || it.Ref.Slot != image.RefNone {
		return false
	}
	in := it.Inst
	if in.Op != x86.MOV || in.W != 32 || !in.Dst.IsReg(x86.EAX) ||
		in.Src.Kind != x86.KImm || in.Src.Imm == 0 {
		return false
	}
	j := i + 1
	if j < len(items) && items[j].Raw == nil && items[j].Inst.Op == x86.LEAVE {
		j++
	}
	return j < len(items) && items[j].Raw == nil && items[j].Inst.Op == x86.RET
}
