package rewrite

import (
	"encoding/binary"
	"fmt"

	"parallax/internal/image"
	"parallax/internal/x86"
)

// splitPatterns is the rotation of gadget byte sequences embedded into
// split immediates. Together they cover the ROP compiler's whole
// canonical basis, so a binary with enough splittable immediates needs
// no fallback pool gadgets at all — every chain slot can use a gadget
// overlapping protected code.
// The rotation is ordered so the most load-bearing chain primitives
// (constant loaders, memory access, ALU, chain control) are crafted
// first even in binaries with few splittable sites.
var splitPatterns = [][4]byte{
	{0x58, 0xC3, 0x90, 0x90}, // pop eax; ret
	{0x5B, 0xC3, 0x90, 0x90}, // pop ebx; ret
	{0x8B, 0x03, 0xC3, 0x90}, // mov eax, [ebx]; ret (load)
	{0x89, 0x03, 0xC3, 0x90}, // mov [ebx], eax; ret (store)
	{0x01, 0xD8, 0xC3, 0x90}, // add eax, ebx; ret
	{0x89, 0xC1, 0xC3, 0x90}, // mov ecx, eax; ret
	{0x89, 0xCB, 0xC3, 0x90}, // mov ebx, ecx; ret
	{0x01, 0xC4, 0xC3, 0x90}, // add esp, eax; ret (chain branch)
	{0x5C, 0xC3, 0x90, 0x90}, // pop esp; ret (chain epilogue)
	{0x31, 0xD8, 0xC3, 0x90}, // xor eax, ebx; ret
	{0x29, 0xD8, 0xC3, 0x90}, // sub eax, ebx; ret
	{0xF7, 0xD8, 0xC3, 0x90}, // neg eax; ret
	{0x59, 0xC3, 0x90, 0x90}, // pop ecx; ret
	{0x89, 0xC3, 0xC3, 0x90}, // mov ebx, eax; ret
	{0x89, 0xC8, 0xC3, 0x90}, // mov eax, ecx; ret
	{0x89, 0xD0, 0xC3, 0x90}, // mov eax, edx; ret
	{0x21, 0xD8, 0xC3, 0x90}, // and eax, ebx; ret
	{0x09, 0xD8, 0xC3, 0x90}, // or  eax, ebx; ret
	{0xF7, 0xD0, 0xC3, 0x90}, // not eax; ret
	{0xD3, 0xE0, 0xC3, 0x90}, // shl eax, cl; ret
	{0xD3, 0xE8, 0xC3, 0x90}, // shr eax, cl; ret
	{0xD3, 0xF8, 0xC3, 0x90}, // sar eax, cl; ret
	{0x0F, 0xAF, 0xC3, 0xC3}, // imul eax, ebx; ret
}

// SplitResult reports what SplitImmediates did.
type SplitResult struct {
	// Sites is the number of instructions split.
	Sites int
	// PerFunc maps function names to their split counts.
	PerFunc map[string]int
}

// SplitImmediates applies the §IV-B2 instruction-splitting rule to an
// object in place: eligible immediate-carrying instructions are
// rewritten into a pair whose first immediate embeds a gadget byte
// pattern and whose second compensates, preserving semantics.
//
//	mov dword [m], imm   →  mov dword [m], pat ; xor dword [m], imm^pat
//	add x, imm           →  add x, pat ; add x, imm-pat
//	sub x, imm           →  sub x, pat ; sub x, imm-pat
//
// The rewritten pairs set CPU flags where the originals may not have;
// this is safe for this repository's generated code, which never keeps
// flags live across instruction statements (the §IV-B2 caveat about
// saving the status register applies to arbitrary binaries).
//
// funcs selects the functions to rewrite; nil means all. Functions
// whose names start with ".." (Parallax-internal stubs) are skipped.
func SplitImmediates(obj *image.Object, funcs []string) (*SplitResult, error) {
	want := map[string]bool{}
	for _, f := range funcs {
		want[f] = true
	}
	res := &SplitResult{PerFunc: make(map[string]int)}
	patIdx := 0
	for _, fn := range obj.Funcs {
		if len(fn.Name) >= 2 && fn.Name[:2] == ".." {
			continue
		}
		if len(want) > 0 && !want[fn.Name] {
			continue
		}
		var out []image.Item
		for _, it := range fn.Items {
			pair, ok := trySplit(it, splitPatterns[patIdx%len(splitPatterns)])
			if !ok {
				out = append(out, it)
				continue
			}
			patIdx++
			res.Sites++
			res.PerFunc[fn.Name]++
			out = append(out, pair...)
		}
		fn.Items = out
	}
	if res.Sites == 0 {
		return res, fmt.Errorf("rewrite: no splittable immediates found")
	}
	return res, nil
}

// trySplit rewrites one item if eligible, returning the replacement
// pair.
func trySplit(it image.Item, pat [4]byte) ([]image.Item, bool) {
	if it.Raw != nil || it.Ref.Slot != image.RefNone {
		return nil, false
	}
	in := it.Inst
	if in.W != 32 || in.Src.Kind != x86.KImm {
		return nil, false
	}
	imm := uint32(in.Src.Imm)
	patImm := binary.LittleEndian.Uint32(pat[:])

	switch in.Op {
	case x86.MOV:
		if in.Dst.Kind != x86.KMem {
			// Register moves would need a scratch-free compensation;
			// memory destinations (the common case for constants in
			// this compiler) xor in place.
			return nil, false
		}
		first := in
		first.Src = x86.ImmOp(int32(patImm))
		second := in
		second.Op = x86.XOR
		second.Src = x86.ImmOp(int32(imm ^ patImm))
		return []image.Item{
			{Label: it.Label, Inst: first},
			{Inst: second},
		}, true

	case x86.ADD, x86.SUB:
		// Never touch stack-pointer arithmetic: the intermediate value
		// must stay a valid pointer-free quantity, and prologue frame
		// setup is too hot to double anyway.
		if in.Dst.IsReg(x86.ESP) {
			return nil, false
		}
		first := in
		first.Src = x86.ImmOp(int32(patImm))
		second := in
		second.Src = x86.ImmOp(int32(imm - patImm))
		return []image.Item{
			{Label: it.Label, Inst: first},
			{Inst: second},
		}, true
	}
	return nil, false
}
