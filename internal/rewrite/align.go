package rewrite

import (
	"fmt"

	"parallax/internal/gadget"
	"parallax/internal/image"
	"parallax/internal/x86"
)

// AlignResult describes a successful §IV-B3 application.
type AlignResult struct {
	// Target is the branch destination whose displacement now encodes
	// a ret; Padded is the function whose leading pad was adjusted.
	Target string
	Padded string
	// Pad is the chosen leading padding in bytes.
	Pad uint32
	// SiteAddr is the protected branch instruction's address in the
	// final image, and RetAddr the crafted 0xC3 inside its
	// displacement.
	SiteAddr uint32
	RetAddr  uint32
	// Image is the relinked image containing the crafted gadget.
	Image *image.Image
}

// AlignForGadget applies the rearranged-code rule: it searches for a
// leading pad (0..255 bytes) of the named target function that makes
// the displacement low byte of some call/jmp/jcc referencing it equal
// 0xC3, creating a return — and thus a gadget — inside the branch
// instruction. This mirrors the paper's Listing 1, where
// cleanup_and_exit is relocated so a jump offset encodes ret.
//
// The object is not modified; each candidate pad is linked into a fresh
// image. The first pad that both produces the 0xC3 and yields at least
// one scanner-visible gadget ending at it wins.
func AlignForGadget(obj *image.Object, target string, layout image.Layout) (*AlignResult, error) {
	tf := obj.Func(target)
	if tf == nil {
		return nil, fmt.Errorf("rewrite: function %q not in object", target)
	}
	// Padding only changes a site→target distance when it shifts one of
	// them relative to the other. Try the target first (the paper's
	// Listing 1 relocates the callee); when the callee precedes its
	// callers, pad the callers (or any function between) instead.
	var candidates []*image.Func
	candidates = append(candidates, tf)
	for _, f := range obj.Funcs {
		if f != tf {
			candidates = append(candidates, f)
		}
	}
	for _, pf := range candidates {
		if res, err := alignWith(obj, pf, target, layout); err == nil {
			return res, nil
		}
	}
	return nil, fmt.Errorf("rewrite: no alignment creates a displacement gadget for %q", target)
}

// alignWith searches pads of one function for a displacement gadget on
// branches to target.
func alignWith(obj *image.Object, padFunc *image.Func, target string,
	layout image.Layout) (*AlignResult, error) {
	origPad := padFunc.Pad
	origAlign := padFunc.Align
	// Byte-granular placement: the default 16-byte function alignment
	// would quantize the displacement to 16 of its 256 values.
	padFunc.Align = 1
	defer func() { padFunc.Pad, padFunc.Align = origPad, origAlign }()

	for pad := uint32(0); pad < 256; pad++ {
		padFunc.Pad = origPad + pad
		img, err := image.Link(obj, layout)
		if err != nil {
			return nil, err
		}
		site, retAddr, ok := findC3Displacement(img, target)
		if !ok {
			continue
		}
		// The 0xC3 is in place; require a real decode chain ending at
		// it so the byte is actually a gadget, not just a ret-valued
		// displacement.
		text := img.Text()
		cover := make([]bool, len(text.Data))
		if !markGadgetsEndingAt(text.Data, 0, int(retAddr-text.Addr), cover) {
			continue
		}
		res := &AlignResult{
			Target:   target,
			Padded:   padFunc.Name,
			Pad:      padFunc.Pad,
			SiteAddr: site,
			RetAddr:  retAddr,
			Image:    img,
		}
		return res, nil
	}
	return nil, fmt.Errorf("rewrite: no pad of %q creates a displacement gadget for %q",
		padFunc.Name, target)
}

// findC3Displacement looks for a relative branch to target whose rel32
// low byte equals 0xC3 in the linked image.
func findC3Displacement(img *image.Image, target string) (site, retAddr uint32, ok bool) {
	sym, found := img.Symbol(target)
	if !found {
		return 0, 0, false
	}
	text := img.Text()
	insts := x86.Disassemble(text.Data, text.Addr)
	addr := text.Addr
	for i := range insts {
		in := &insts[i]
		a := addr
		addr += uint32(in.Len)
		if !in.Rel || in.Len < 5 {
			continue
		}
		if in.Target != sym.Addr {
			continue
		}
		dispLo := a + uint32(in.Len) - 4
		off := dispLo - text.Addr
		if int(off) < len(text.Data) && text.Data[off] == 0xC3 {
			return a, dispLo, true
		}
	}
	return 0, 0, false
}

// GadgetAt re-runs the scanner over an image and returns the gadget
// starting at addr, if any — used to confirm crafted gadgets landed.
func GadgetAt(img *image.Image, addr uint32) *gadget.Gadget {
	return gadget.Scan(img, gadget.ScanConfig{}).At(addr)
}
