package rewrite

import (
	"testing"

	"parallax/internal/codegen"
	"parallax/internal/emu"
	"parallax/internal/gadget"
	"parallax/internal/image"
	"parallax/internal/ir"
	"parallax/internal/x86"
)

// testModule builds a module with plenty of immediates, branches and
// calls — raw material for every rewriting rule.
func testModule(t *testing.T) *ir.Module {
	t.Helper()
	mb := ir.NewModule("rw")
	mb.GlobalZero("buf", 128)

	fb := mb.Func("helper", 1)
	x := fb.Param(0)
	k := fb.Const(0x1234567)
	fb.Ret(fb.Xor(x, k))

	fb = mb.Func("work", 1)
	n := fb.Param(0)
	acc := fb.Const(0x1111)
	i := fb.Const(0)
	fb.Jmp("head")
	fb.Block("head")
	c := fb.Cmp(ir.ULt, i, n)
	fb.Br(c, "body", "done")
	fb.Block("body")
	t3 := fb.Const(0x333)
	fb.Assign(acc, fb.Add(fb.Mul(acc, t3), fb.Call("helper", i)))
	one := fb.Const(1)
	fb.Assign(i, fb.Add(i, one))
	fb.Jmp("head")
	fb.Block("done")
	fb.Ret(acc)

	fb = mb.Func("main", 0)
	arg := fb.Const(9)
	v := fb.Call("work", arg)
	mask := fb.Const(0xFFFF)
	fb.Ret(fb.And(v, mask))
	mb.SetEntry("main")
	return mb.MustBuild()
}

func runStatus(t *testing.T, img *image.Image) int32 {
	t.Helper()
	cpu, err := emu.RunImage(img, emu.NewOS(nil))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return cpu.Status
}

func TestMeasureReportsAllRules(t *testing.T) {
	m := testModule(t)
	img, err := codegen.Build(m, image.Layout{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Measure(img)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TextBytes == 0 {
		t.Fatal("no text bytes")
	}
	if rep.Rules[RuleImmMod].Bytes == 0 {
		t.Error("imm-mod rule found nothing despite immediate-rich code")
	}
	if rep.Rules[RuleJumpMod].Bytes == 0 {
		t.Error("jump-mod rule found nothing despite branches and calls")
	}
	if rep.AnyBytes < rep.Rules[RuleImmMod].Bytes {
		t.Error("union coverage below a single rule's coverage")
	}
	if rep.AnyBytes > rep.TextBytes {
		t.Error("union coverage exceeds text size")
	}
	t.Logf("coverage: existing=%.1f%% far=%.1f%% imm=%.1f%% jump=%.1f%% any=%.1f%%",
		rep.Percent(RuleExisting), rep.Percent(RuleFarRet),
		rep.Percent(RuleImmMod), rep.Percent(RuleJumpMod), rep.AnyPercent())
}

// TestSplitPreservesSemantics applies the splitting rule and checks
// the program's observable behaviour is unchanged, while the gadget
// inventory grows.
func TestSplitPreservesSemantics(t *testing.T) {
	m := testModule(t)
	obj, err := codegen.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	before, err := image.Link(obj.Clone(), image.Layout{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := SplitImmediates(obj, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sites < 5 {
		t.Errorf("only %d split sites", res.Sites)
	}
	after, err := image.Link(obj, image.Layout{})
	if err != nil {
		t.Fatal(err)
	}

	if got, want := runStatus(t, after), runStatus(t, before); got != want {
		t.Fatalf("split changed behaviour: %d != %d", got, want)
	}

	gBefore := len(gadget.Scan(before, gadget.ScanConfig{}).Gadgets)
	gAfter := len(gadget.Scan(after, gadget.ScanConfig{}).Gadgets)
	if gAfter <= gBefore {
		t.Errorf("gadget count did not grow: %d -> %d", gBefore, gAfter)
	}
	t.Logf("split %d sites, gadgets %d -> %d", res.Sites, gBefore, gAfter)
}

// TestSplitCraftsUsableKinds verifies the crafted gadgets include the
// canonical chain basis.
func TestSplitCraftsUsableKinds(t *testing.T) {
	m := testModule(t)
	obj, err := codegen.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SplitImmediates(obj, nil); err != nil {
		t.Fatal(err)
	}
	img, err := image.Link(obj, image.Layout{})
	if err != nil {
		t.Fatal(err)
	}
	cat := gadget.Scan(img, gadget.ScanConfig{})
	for _, k := range []gadget.Kind{gadget.KindPopReg, gadget.KindAddReg, gadget.KindStore} {
		found := false
		for _, g := range cat.ByKind(k) {
			if g.Usable() {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no usable %v gadget crafted", k)
		}
	}
}

func TestSplitSelectsFunctions(t *testing.T) {
	m := testModule(t)
	obj, err := codegen.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SplitImmediates(obj, []string{"helper"})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerFunc["work"] != 0 || res.PerFunc["helper"] == 0 {
		t.Errorf("per-func sites: %v", res.PerFunc)
	}
}

// TestAlignCreatesDisplacementGadget reproduces the paper's Listing 1
// trick: pad a callee until a call displacement byte becomes a ret.
func TestAlignCreatesDisplacementGadget(t *testing.T) {
	m := testModule(t)
	obj, err := codegen.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := AlignForGadget(obj, "helper", image.Layout{})
	if err != nil {
		t.Fatal(err)
	}
	text := res.Image.Text()
	if text.Data[res.RetAddr-text.Addr] != 0xC3 {
		t.Fatalf("no 0xC3 at crafted address %#x", res.RetAddr)
	}
	// Behaviour must be unchanged by pure re-alignment.
	plain, err := image.Link(obj, image.Layout{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := runStatus(t, res.Image), runStatus(t, plain); got != want {
		t.Fatalf("alignment changed behaviour: %d != %d", got, want)
	}
	t.Logf("aligned %s with pad %d; ret byte inside call at %#x",
		res.Target, res.Pad, res.SiteAddr)
}

// TestSpuriousInsertion checks guarded gadget insertion preserves
// behaviour and lands scanner-visible gadgets.
func TestSpuriousInsertion(t *testing.T) {
	m := testModule(t)
	obj, err := codegen.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	before, err := image.Link(obj.Clone(), image.Layout{})
	if err != nil {
		t.Fatal(err)
	}
	n, err := InsertSpurious(obj, "work", DefaultSpuriousGadgets(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing inserted")
	}
	after, err := image.Link(obj, image.Layout{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := runStatus(t, after), runStatus(t, before); got != want {
		t.Fatalf("spurious insertion changed behaviour: %d != %d", got, want)
	}
	gBefore := len(gadget.Scan(before, gadget.ScanConfig{}).Gadgets)
	gAfter := len(gadget.Scan(after, gadget.ScanConfig{}).Gadgets)
	if gAfter <= gBefore {
		t.Errorf("gadget count did not grow: %d -> %d", gBefore, gAfter)
	}
}

func TestSpuriousErrors(t *testing.T) {
	m := testModule(t)
	obj, err := codegen.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := InsertSpurious(obj, "ghost", DefaultSpuriousGadgets(), 4); err == nil {
		t.Error("InsertSpurious accepted unknown function")
	}
	if _, err := InsertSpurious(obj, "work", nil, 4); err == nil {
		t.Error("InsertSpurious accepted empty gadget list")
	}
}

// TestFreeStatusImmediates exercises the no-compensation §IV-B2
// variant on a hand-built "exit status" function.
func TestFreeStatusImmediates(t *testing.T) {
	obj := &image.Object{Entry: "main"}
	status := &image.Func{Name: "status", Items: []image.Item{
		image.InstItem(x86.Inst{Op: x86.PUSH, W: 32, Dst: x86.RegOp(x86.EBP)}),
		image.InstItem(x86.Inst{Op: x86.MOV, W: 32, Dst: x86.RegOp(x86.EBP),
			Src: x86.RegOp(x86.ESP)}),
		image.InstItem(x86.Inst{Op: x86.MOV, W: 32, Dst: x86.RegOp(x86.EAX),
			Src: x86.ImmOp(1)}), // success status: only zero/non-zero matters
		image.InstItem(x86.Inst{Op: x86.LEAVE, W: 32}),
		image.InstItem(x86.Inst{Op: x86.RET, W: 32}),
	}}
	main := &image.Func{Name: "main", Items: []image.Item{
		{Inst: x86.Inst{Op: x86.CALL, W: 32},
			Ref: image.Ref{Slot: image.RefTarget, Sym: "status"}},
		image.InstItem(x86.Inst{Op: x86.RET, W: 32}),
	}}
	if err := obj.AddFunc(main); err != nil {
		t.Fatal(err)
	}
	if err := obj.AddFunc(status); err != nil {
		t.Fatal(err)
	}

	res, err := FreeStatusImmediates(obj, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sites != 1 {
		t.Fatalf("sites = %d, want 1", res.Sites)
	}

	img, err := image.Link(obj, image.Layout{})
	if err != nil {
		t.Fatal(err)
	}
	// Zero/non-zero contract preserved: program exits non-zero.
	if got := runStatus(t, img); got == 0 {
		t.Error("status became zero; contract broken")
	}
	// A gadget materialized inside the immediate.
	sym := img.MustSymbol("status")
	cat := gadget.Scan(img, gadget.ScanConfig{})
	found := false
	for _, g := range cat.Gadgets {
		if g.Addr > sym.Addr && g.Addr < sym.Addr+sym.Size && g.Usable() {
			found = true
		}
	}
	if !found {
		t.Error("no usable gadget crafted inside the status immediate")
	}
}
