package experiment

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"parallax/internal/core"
	"parallax/internal/corpus/gen"
	"parallax/internal/farm"
)

// This file is the farm fan-out stress: hundreds of protect jobs — a
// bounded set of unique generated modules, each submitted many times —
// pushed through farms of increasing worker counts. It measures what
// the protection farm is for: throughput scaling with workers and the
// content-addressed scan cache converting duplicate submissions into
// hits. Each round uses a fresh farm (and fresh cache), so the hit
// counts are a property of the job mix, not of test ordering; the
// outputs of every job are fingerprinted and must be identical for
// identical inputs across all rounds and worker counts.

// FanoutOptions tunes the stress.
type FanoutOptions struct {
	// Jobs is the number of protect jobs per round (0 = 256).
	Jobs int
	// Unique is the number of distinct generated modules; jobs cycle
	// through them, so Jobs-Unique submissions are cache fodder
	// (0 = 32).
	Unique int
	// Workers are the per-round worker counts (nil = 1, 2, 4, 8).
	Workers []int
	// Family is the generator family to draw modules from (default
	// "tiny" — protect cost small enough that the farm machinery, not
	// the pipeline, dominates).
	Family string
	// Progress, when non-nil, is called after each round.
	Progress func(round, rounds, workers int)
}

func (o FanoutOptions) withDefaults() FanoutOptions {
	if o.Jobs == 0 {
		o.Jobs = 256
	}
	if o.Unique == 0 {
		o.Unique = 32
	}
	if o.Unique > o.Jobs {
		o.Unique = o.Jobs
	}
	if len(o.Workers) == 0 {
		o.Workers = []int{1, 2, 4, 8}
	}
	if o.Family == "" {
		o.Family = "tiny"
	}
	return o
}

// FanoutRound is one worker-count round's record.
type FanoutRound struct {
	Workers   int `json:"workers"`
	Jobs      int `json:"jobs"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`

	ScanHits    uint64  `json:"scan_hits"`
	ScanMisses  uint64  `json:"scan_misses"`
	ScanHitRate float64 `json:"scan_hit_rate"`
	HintHits    uint64  `json:"hint_hits"`
	HintMisses  uint64  `json:"hint_misses"`

	// Seconds is host wall clock (context, not a determinism claim);
	// JobsPerSecond is derived from it.
	Seconds       float64 `json:"seconds"`
	JobsPerSecond float64 `json:"jobs_per_second"`

	// OutputFP fingerprints the round's protected images (sorted
	// per-unique-module digests); every round must agree.
	OutputFP string `json:"output_fp"`
}

// FanoutReport is the full stress result.
type FanoutReport struct {
	Family string `json:"family"`
	Jobs   int    `json:"jobs"`
	Unique int    `json:"unique"`

	Rounds []FanoutRound `json:"rounds"`

	// Deterministic reports that every round produced byte-identical
	// protected images for identical inputs.
	Deterministic bool `json:"deterministic"`
	// MinScanHitRate is the worst round's scan-cache hit rate.
	MinScanHitRate float64 `json:"min_scan_hit_rate"`
}

// imageDigest hashes a protected image's loadable contents.
func imageDigest(p *core.Protected) (string, error) {
	h := fnv.New64a()
	if _, err := p.Image.WriteTo(h); err != nil {
		return "", err
	}
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// FarmFanout runs the fan-out stress.
func FarmFanout(ctx context.Context, opts FanoutOptions) (*FanoutReport, error) {
	opts = opts.withDefaults()
	fam, err := gen.FamilyByName(opts.Family)
	if err != nil {
		return nil, fmt.Errorf("fanout: %w", err)
	}
	// One program description per unique slot; modules are rebuilt per
	// job (Protect mutates its module, and builders are cheap and
	// pure), so cache hits come from content addressing, not pointer
	// identity.
	progs := make([]struct {
		name   string
		verify string
		seed   uint64
	}, opts.Unique)
	for i := range progs {
		prog, err := gen.FamilyProgram(fam, uint64(i+1))
		if err != nil {
			return nil, fmt.Errorf("fanout: seed %d: %w", i+1, err)
		}
		progs[i] = struct {
			name   string
			verify string
			seed   uint64
		}{prog.Name, prog.VerifyFunc, uint64(i + 1)}
	}

	out := &FanoutReport{
		Family: opts.Family, Jobs: opts.Jobs, Unique: opts.Unique,
		Deterministic:  true,
		MinScanHitRate: 1,
	}
	var wantDigests []string

	for ri, workers := range opts.Workers {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		f := farm.New(farm.Config{Workers: workers})
		jobs := make([]*farm.Job, opts.Jobs)
		start := time.Now()
		for j := 0; j < opts.Jobs; j++ {
			p := progs[j%opts.Unique]
			prog, err := gen.FamilyProgram(fam, p.seed)
			if err != nil {
				f.Close()
				return nil, fmt.Errorf("fanout: rebuild seed %d: %w", p.seed, err)
			}
			job, err := f.Submit(ctx, fmt.Sprintf("%s#%d", p.name, j), prog.Build(),
				core.Options{VerifyFuncs: []string{p.verify}})
			if err != nil {
				f.Close()
				return nil, fmt.Errorf("fanout: submit %s job %d: %w", p.name, j, err)
			}
			jobs[j] = job
		}

		round := FanoutRound{Workers: workers, Jobs: opts.Jobs}
		digests := make(map[uint64]string, opts.Unique) // unique slot → digest
		for j, job := range jobs {
			res, err := job.Wait(ctx)
			if err != nil {
				f.Close()
				return nil, fmt.Errorf("fanout: wait job %d: %w", j, err)
			}
			if res.Err != nil {
				round.Failed++
				continue
			}
			round.Completed++
			d, err := imageDigest(res.Protected)
			if err != nil {
				f.Close()
				return nil, fmt.Errorf("fanout: digest job %d: %w", j, err)
			}
			slot := uint64(j % opts.Unique)
			if prev, ok := digests[slot]; ok && prev != d {
				out.Deterministic = false
			}
			digests[slot] = d
		}
		round.Seconds = time.Since(start).Seconds()
		if round.Seconds > 0 {
			round.JobsPerSecond = float64(round.Completed) / round.Seconds
		}

		stats := f.Stats()
		f.Close()
		round.ScanHits = stats.ScanHits
		round.ScanMisses = stats.ScanMisses
		round.ScanHitRate = stats.ScanHitRate()
		round.HintHits = stats.HintHits
		round.HintMisses = stats.HintMisses
		if round.ScanHitRate < out.MinScanHitRate {
			out.MinScanHitRate = round.ScanHitRate
		}

		// Round fingerprint: the sorted per-slot digests, hashed.
		keys := make([]string, 0, len(digests))
		for slot, d := range digests {
			keys = append(keys, fmt.Sprintf("%d:%s", slot, d))
		}
		sort.Strings(keys)
		h := fnv.New64a()
		for _, k := range keys {
			h.Write([]byte(k))
		}
		round.OutputFP = fmt.Sprintf("%016x", h.Sum64())
		if len(wantDigests) == 0 {
			wantDigests = keys
		} else if fmt.Sprint(keys) != fmt.Sprint(wantDigests) {
			out.Deterministic = false
		}

		out.Rounds = append(out.Rounds, round)
		if opts.Progress != nil {
			opts.Progress(ri+1, len(opts.Workers), workers)
		}
	}
	return out, nil
}
