package experiment

import (
	"context"
	"testing"

	"parallax/internal/campaign"
)

func TestNewDist(t *testing.T) {
	if d := NewDist(nil); d.N != 0 {
		t.Fatalf("empty dist: %+v", d)
	}
	if d := NewDist([]float64{7}); d.P10 != 7 || d.P50 != 7 || d.P90 != 7 || d.Mean != 7 {
		t.Fatalf("singleton dist: %+v", d)
	}
	// 0..10: nearest-rank percentiles land on the values themselves.
	vals := []float64{10, 0, 5, 2, 8, 1, 9, 3, 7, 4, 6}
	d := NewDist(vals)
	if d.N != 11 || d.P10 != 1 || d.P50 != 5 || d.P90 != 9 || d.Mean != 5 {
		t.Fatalf("0..10 dist: %+v", d)
	}
}

func TestCorpusPlan(t *testing.T) {
	plan := corpusPlan(105)
	sum := 0
	for _, e := range plan {
		if e.count < 1 {
			t.Errorf("family %s planned %d programs", e.fam.Name, e.count)
		}
		if e.fam.Params.CodeKiB > 1024 && e.count < 2 {
			t.Errorf("big family %s planned %d (< 2): size decades unpopulated", e.fam.Name, e.count)
		}
		sum += e.count
	}
	if sum != 105 {
		t.Errorf("plan totals %d programs, want 105", sum)
	}
	// A small budget still yields a runnable plan (per-family minimums
	// may overdraw the nominal budget; the plan must stay positive).
	for _, e := range corpusPlan(4) {
		if e.fam.Params.CodeKiB <= 1024 && e.count < 1 {
			t.Errorf("small-budget plan dropped %s", e.fam.Name)
		}
	}
}

func TestCorpusCampaignConfig(t *testing.T) {
	cfg := corpusCampaignConfig(CorpusOptions{Mutants: 32}, 16*1024, 16)
	if cfg.Stride < 7 || cfg.Stride%2 == 0 {
		t.Errorf("small-image stride %d: want odd >= 7", cfg.Stride)
	}
	if len(cfg.Kinds) != len(campaign.AllKinds()) {
		t.Errorf("small image dropped mutation kinds: %v", cfg.Kinds)
	}
	big := corpusCampaignConfig(CorpusOptions{Mutants: 32}, 4<<20, 4096)
	if big.Stride <= cfg.Stride || big.Stride%2 == 0 {
		t.Errorf("big-image stride %d: want odd, scaled past %d", big.Stride, cfg.Stride)
	}
	for _, k := range big.Kinds {
		if k == campaign.KindSerial {
			t.Error("big image kept the serial kind (dominates wall clock)")
		}
	}
}

// TestCorpusSweepSmall drives the full sweep loop — generate, check,
// baseline, measure, protect, campaign, cross-engine check, aggregate —
// over the minimum plan (one seed per small family) with a trimmed
// mutant budget. The full-scale run lives in
// `parallax-bench -experiment corpus`; this pins the machinery.
func TestCorpusSweepSmall(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("sweep is minutes-scale under -short aggregation or the race detector")
	}
	rep, err := CorpusSweep(context.Background(), CorpusOptions{
		N:          4, // per-family minimums dominate: one seed each, small families only
		Mutants:    8,
		CrossEvery: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Programs) == 0 {
		t.Fatal("sweep produced no programs")
	}
	if rep.CrossChecks == 0 {
		t.Error("no cross-engine checks ran")
	}
	if rep.Overall.N != len(rep.Programs) {
		t.Errorf("overall aggregates %d of %d programs", rep.Overall.N, len(rep.Programs))
	}
	seen := map[string]bool{}
	for _, p := range rep.Programs {
		seen[p.Family] = true
		if p.MatrixFP == "" || len(p.ParamsHash) != 16 {
			t.Errorf("%s: unpinned record: fp=%q hash=%q", p.Name, p.MatrixFP, p.ParamsHash)
		}
		// At this trimmed mutant budget the sampled sites may miss every
		// guarded byte, so only the campaign's existence is asserted;
		// guarded coverage is a full-budget (-experiment corpus) claim.
		if p.Mutants == 0 {
			t.Errorf("%s: empty campaign: %+v", p.Name, p)
		}
		if p.BaselineCycles == 0 || p.ProtectedCycles <= p.BaselineCycles {
			t.Errorf("%s: cycle model not engaged: base=%d prot=%d",
				p.Name, p.BaselineCycles, p.ProtectedCycles)
		}
	}
	if len(rep.Families) != len(seen) {
		t.Errorf("aggregated %d families, programs span %d", len(rep.Families), len(seen))
	}
	for _, f := range rep.Families {
		if f.DetectedRate.N != f.N {
			t.Errorf("family %s: dist over %d of %d programs", f.Family, f.DetectedRate.N, f.N)
		}
	}
}

// TestCorpusEnginesTiny runs the three-engine comparison on the
// smallest family: wall-clock numbers are host noise at this size, but
// matrix equality across reload/snapshot/tb is a semantic invariant.
func TestCorpusEnginesTiny(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("three engine campaigns; skipped under -short or the race detector")
	}
	rows, err := CorpusEngines(context.Background(), []string{"tiny"}, 1, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
	r := rows[0]
	if !r.MatrixEqual {
		t.Error("detection matrices diverge across reload/snapshot/tb engines")
	}
	if r.Mutants == 0 || r.TextBytes == 0 {
		t.Errorf("row not populated: %+v", r)
	}
	if r.SnapSpeedup <= 0 || r.TBSpeedup <= 0 {
		t.Errorf("speedups not computed: %+v", r)
	}
}
