package experiment

import (
	"context"
	"fmt"
	"time"

	"parallax/internal/campaign"
	"parallax/internal/core"
	"parallax/internal/corpus/gen"
	"parallax/internal/emu"
	"parallax/internal/image"
)

// This file is the cold-coverage experiment: the honest measurement of
// the detection blind spot on never-executed text, and of the two
// mitigations this repository implements — workload-driven execution
// (the generated corpus reads a cold-call budget from stdin, so a
// "heavy" workload actually runs cold bodies under the ROP chains'
// indirect coverage) and §VI-C checksum-network composition (checkers
// that hash the cold regions a chain never touches). Each generated
// program is measured as a 2×2 matrix of campaigns — {idle, heavy}
// workload × {plain, composed} protection — and the per-region cold
// detection rates are aggregated into percentile distributions.
//
// Two invariants ride along. First, detection matrices are semantic
// statements about the protected program, so every k-th program's
// heavy/composed campaign is re-run under the other execution engine
// and must fingerprint identically. Second, composition must not
// change clean behavior: the composed image's campaign classifies
// against its own clean reference run, which the campaign hard-fails
// on if it no longer exits cleanly.

// ColdCoverOptions tunes the sweep.
type ColdCoverOptions struct {
	// Families are the generator families to sweep (default: tiny,
	// small, branchy, stringy, muldiv, callheavy — the sizes where four
	// campaigns per program stay affordable).
	Families []string
	// Seeds is the number of seeds per family (0 = 5).
	Seeds int
	// Checkers sizes the composed checksum network (0 = 4).
	Checkers int
	// Mutants caps each of the four campaigns (0 = 96).
	Mutants int
	// Workers is the per-campaign worker count (0 = GOMAXPROCS).
	Workers int
	// Engine is the campaign execution backend (default "tb"; the
	// cross-check below re-runs under the other one).
	Engine string
	// CrossEvery re-runs every k-th program's heavy/composed campaign
	// under the other engine and hard-fails on matrix divergence
	// (0 = 4; negative disables).
	CrossEvery int
	// Progress, when non-nil, is called after each program completes.
	Progress func(done, total int, name string)
}

func (o ColdCoverOptions) withDefaults() ColdCoverOptions {
	if len(o.Families) == 0 {
		o.Families = []string{"tiny", "small", "branchy", "stringy", "muldiv", "callheavy"}
	}
	if o.Seeds == 0 {
		o.Seeds = 5
	}
	if o.Checkers == 0 {
		o.Checkers = 4
	}
	if o.Mutants == 0 {
		o.Mutants = 96
	}
	if o.Engine == "" {
		o.Engine = "tb"
	}
	if o.CrossEvery == 0 {
		o.CrossEvery = 4
	}
	return o
}

// ColdCell is one campaign cell of a program's 2×2 measurement.
type ColdCell struct {
	Workload string `json:"workload"` // "idle" or "heavy"
	Composed bool   `json:"composed"`
	Mutants  int    `json:"mutants"`

	DetectedRate     float64 `json:"detected_rate"`
	HotDetectedRate  float64 `json:"hot_detected_rate"`
	ColdDetectedRate float64 `json:"cold_detected_rate"`
	DataDetectedRate float64 `json:"data_detected_rate"`
	InfraErrors      int     `json:"infra_errors"`
	MatrixFP         string  `json:"matrix_fp"`
}

// ColdCoverProgram is one generated program's 2×2 record.
type ColdCoverProgram struct {
	Family     string `json:"family"`
	Name       string `json:"name"`
	Seed       uint64 `json:"seed"`
	ParamsHash string `json:"params_hash"`
	TextBytes  int    `json:"text_bytes"`

	// Composed-network shape (§VI-C): how much of the cold candidate
	// space (chain-unguarded regions, text and data alike) the
	// installed checkers actually cover. CoveredPct is covered bytes
	// over covered+dropped — the fraction of what the network set out
	// to protect that it did protect.
	Checkers       int     `json:"checkers"`
	Regions        int     `json:"regions"`
	CoveredBytes   int     `json:"covered_bytes"`
	DroppedRegions int     `json:"dropped_regions"`
	CoveredPct     float64 `json:"covered_pct"`

	// Runtime price of composition under the heavy workload
	// (deterministic cycle model, composed vs plain).
	ComposedOverheadPct float64 `json:"composed_overhead_pct"`

	// Cells in fixed order: idle/plain, heavy/plain, idle/composed,
	// heavy/composed.
	Cells []ColdCell `json:"cells"`

	CrossChecked bool `json:"cross_checked"`
}

// Cell returns the named cell of the 2×2 measurement.
func (p ColdCoverProgram) Cell(workload string, composed bool) ColdCell {
	for _, c := range p.Cells {
		if c.Workload == workload && c.Composed == composed {
			return c
		}
	}
	return ColdCell{}
}

// ColdCoverFamily aggregates one family's programs: the four cold-rate
// distributions are the experiment's headline.
type ColdCoverFamily struct {
	Family string `json:"family"`
	N      int    `json:"n"`

	ColdIdlePlain     Dist `json:"cold_idle_plain"`
	ColdHeavyPlain    Dist `json:"cold_heavy_plain"`
	ColdIdleComposed  Dist `json:"cold_idle_composed"`
	ColdHeavyComposed Dist `json:"cold_heavy_composed"`

	HotHeavyComposed    Dist `json:"hot_heavy_composed"`
	CoveredPct          Dist `json:"covered_pct"`
	ComposedOverheadPct Dist `json:"composed_overhead_pct"`
}

// ColdCoverReport is the full sweep result.
type ColdCoverReport struct {
	Engine      string             `json:"engine"`
	Checkers    int                `json:"checkers"`
	Mutants     int                `json:"mutants"`
	Programs    []ColdCoverProgram `json:"programs"`
	Families    []ColdCoverFamily  `json:"families"`
	Overall     ColdCoverFamily    `json:"overall"`
	CrossChecks int                `json:"cross_checks"`
}

// coldCampaignConfig scales the campaign to the image and workload.
// The instruction budget leaves room for both the heavy workload's
// cold bodies and the composed network's hashing pass (~6 emulated
// instructions per covered text byte), so budget trips never masquerade
// as timeouts in the matrix.
func coldCampaignConfig(opts ColdCoverOptions, textBytes, codeKiB int) campaign.Config {
	cfg := corpusCampaignConfig(CorpusOptions{
		Workers: opts.Workers, Mutants: opts.Mutants, Engine: opts.Engine,
	}, textBytes, codeKiB)
	cfg.MaxInst = 4_000_000 + 8*uint64(textBytes)
	cfg.Timeout = 30 * time.Second
	return cfg
}

// infraCount sums the infra column of a report.
func infraCount(rep *campaign.Report) int {
	n := 0
	for _, r := range rep.Rows {
		n += r.Infra
	}
	return n
}

// coldCell folds one campaign report into a cell record.
func coldCell(rep *campaign.Report, info gen.Info, workload string, composed bool) ColdCell {
	c := ColdCell{
		Workload: workload,
		Composed: composed,
		Mutants:  rep.Mutants,

		DetectedRate: rep.Totals().DetectedRate(),
		InfraErrors:  infraCount(rep),
		MatrixFP:     matrixFP(rep),
	}
	c.HotDetectedRate, c.ColdDetectedRate, c.DataDetectedRate = regionRates(rep, info)
	return c
}

// runCyclesWith runs an image to exit under a workload and returns the
// deterministic cycle count.
func runCyclesWith(img *image.Image, stdin []byte) (uint64, error) {
	cpu, err := emu.RunImage(img, emu.NewOS(stdin))
	if err != nil {
		return 0, err
	}
	return cpu.Cycles, nil
}

// ColdCoverSweep runs the cold-coverage experiment.
func ColdCoverSweep(ctx context.Context, opts ColdCoverOptions) (*ColdCoverReport, error) {
	opts = opts.withDefaults()
	out := &ColdCoverReport{Engine: opts.Engine, Checkers: opts.Checkers, Mutants: opts.Mutants}
	other := "tb"
	if opts.Engine == "tb" {
		other = "interp"
	}
	total := len(opts.Families) * opts.Seeds
	done := 0

	for _, name := range opts.Families {
		fam, err := gen.FamilyByName(name)
		if err != nil {
			return nil, fmt.Errorf("coldcover: %w", err)
		}
		info, err := gen.Describe(fam.Params)
		if err != nil {
			return nil, fmt.Errorf("coldcover: %s: %w", name, err)
		}
		for seed := uint64(1); seed <= uint64(opts.Seeds); seed++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			prog, err := gen.FamilyProgram(fam, seed)
			if err != nil {
				return nil, fmt.Errorf("coldcover: %s seed %d: %w", name, seed, err)
			}
			heavy, ok := prog.Workload("heavy")
			if !ok {
				return nil, fmt.Errorf("coldcover: %s has no heavy workload", prog.Name)
			}
			workloads := []campaign.Workload{
				{Name: "idle", Stdin: nil},
				{Name: "heavy", Stdin: heavy},
			}

			plain, err := core.Protect(prog.Build(), core.Options{VerifyFuncs: []string{prog.VerifyFunc}})
			if err != nil {
				return nil, fmt.Errorf("coldcover: %s: protect: %w", prog.Name, err)
			}
			composed, err := core.Protect(prog.Build(), core.Options{
				VerifyFuncs: []string{prog.VerifyFunc}, ComposeChecksum: opts.Checkers,
			})
			if err != nil {
				return nil, fmt.Errorf("coldcover: %s: composed protect: %w", prog.Name, err)
			}
			if composed.Checksum == nil {
				return nil, fmt.Errorf("coldcover: %s: composed image carries no network stats", prog.Name)
			}

			text := plain.Image.Text()
			cfg := coldCampaignConfig(opts, len(text.Data), fam.Params.CodeKiB)

			plainReps, err := campaign.RunWorkloads(ctx, plain, cfg, workloads)
			if err != nil {
				return nil, fmt.Errorf("coldcover: %s: plain: %w", prog.Name, err)
			}
			compReps, err := campaign.RunWorkloads(ctx, composed, cfg, workloads)
			if err != nil {
				return nil, fmt.Errorf("coldcover: %s: composed: %w", prog.Name, err)
			}

			plainCycles, err := runCyclesWith(plain.Image, heavy)
			if err != nil {
				return nil, fmt.Errorf("coldcover: %s: plain heavy run: %w", prog.Name, err)
			}
			compCycles, err := runCyclesWith(composed.Image, heavy)
			if err != nil {
				return nil, fmt.Errorf("coldcover: %s: composed heavy run: %w", prog.Name, err)
			}

			cs := composed.Checksum
			coveredPct := 0.0
			if candidate := cs.CoveredBytes + cs.DroppedBytes; candidate > 0 {
				coveredPct = 100 * float64(cs.CoveredBytes) / float64(candidate)
			}
			rec := ColdCoverProgram{
				Family:     name,
				Name:       prog.Name,
				Seed:       seed,
				ParamsHash: fam.Params.Hash(),
				TextBytes:  len(text.Data),

				Checkers:       cs.Checkers,
				Regions:        cs.Regions,
				CoveredBytes:   int(cs.CoveredBytes),
				DroppedRegions: cs.DroppedRegions,
				CoveredPct:     coveredPct,

				ComposedOverheadPct: 100 * float64(int64(compCycles)-int64(plainCycles)) / float64(plainCycles),

				Cells: []ColdCell{
					coldCell(plainReps["idle"], info, "idle", false),
					coldCell(plainReps["heavy"], info, "heavy", false),
					coldCell(compReps["idle"], info, "idle", true),
					coldCell(compReps["heavy"], info, "heavy", true),
				},
			}

			// Engine cross-check on the cell where everything is live at
			// once: heavy workload, composed network.
			if opts.CrossEvery > 0 && done%opts.CrossEvery == 0 {
				xcfg := cfg
				xcfg.Engine = other
				xcfg.Stdin = heavy
				xrep, err := campaign.Run(ctx, composed, xcfg)
				if err != nil {
					return nil, fmt.Errorf("coldcover: %s: cross-engine: %w", prog.Name, err)
				}
				want := rec.Cell("heavy", true).MatrixFP
				if fp := matrixFP(xrep); fp != want {
					return nil, fmt.Errorf("coldcover: %s: heavy/composed matrix diverges across engines: %s (%s) vs %s (%s)",
						prog.Name, want, opts.Engine, fp, other)
				}
				rec.CrossChecked = true
				out.CrossChecks++
			}

			out.Programs = append(out.Programs, rec)
			done++
			if opts.Progress != nil {
				opts.Progress(done, total, prog.Name)
			}
		}
	}

	// Aggregate: per family, then overall.
	byFam := map[string][]ColdCoverProgram{}
	for _, rec := range out.Programs {
		byFam[rec.Family] = append(byFam[rec.Family], rec)
	}
	aggregate := func(name string, recs []ColdCoverProgram) ColdCoverFamily {
		pull := func(f func(ColdCoverProgram) float64) Dist {
			vals := make([]float64, len(recs))
			for i, r := range recs {
				vals[i] = f(r)
			}
			return NewDist(vals)
		}
		return ColdCoverFamily{
			Family: name, N: len(recs),
			ColdIdlePlain:     pull(func(r ColdCoverProgram) float64 { return r.Cell("idle", false).ColdDetectedRate }),
			ColdHeavyPlain:    pull(func(r ColdCoverProgram) float64 { return r.Cell("heavy", false).ColdDetectedRate }),
			ColdIdleComposed:  pull(func(r ColdCoverProgram) float64 { return r.Cell("idle", true).ColdDetectedRate }),
			ColdHeavyComposed: pull(func(r ColdCoverProgram) float64 { return r.Cell("heavy", true).ColdDetectedRate }),

			HotHeavyComposed:    pull(func(r ColdCoverProgram) float64 { return r.Cell("heavy", true).HotDetectedRate }),
			CoveredPct:          pull(func(r ColdCoverProgram) float64 { return r.CoveredPct }),
			ComposedOverheadPct: pull(func(r ColdCoverProgram) float64 { return r.ComposedOverheadPct }),
		}
	}
	for _, name := range opts.Families {
		recs := byFam[name]
		if len(recs) == 0 {
			continue
		}
		out.Families = append(out.Families, aggregate(name, recs))
	}
	out.Overall = aggregate("overall", out.Programs)
	return out, nil
}
