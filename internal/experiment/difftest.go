package experiment

import (
	"errors"
	"fmt"
	"time"

	"parallax/internal/codegen"
	"parallax/internal/corpus"
	"parallax/internal/difftest"
	"parallax/internal/emu"
	"parallax/internal/emu/tb"
	"parallax/internal/image"
)

// DifftestRow reports the differential oracle's cost on one corpus
// program: how fast each engine retires instructions solo, the
// combined lockstep rate, and the divergence count (always zero on a
// healthy tree — ci.sh gates on it).
type DifftestRow struct {
	Program     string
	Insts       uint64  // instructions compared in lockstep
	FastIPS     float64 // production interpreter, solo run
	RefIPS      float64 // reference interpreter, solo run
	TBIPS       float64 // translation-block engine, solo run
	LockstepIPS float64 // all three engines plus state comparison
	Divergences int
}

// TBSpeedup is the row's headline ratio: translation-block engine
// over production interpreter.
func (r DifftestRow) TBSpeedup() float64 {
	if r.FastIPS == 0 {
		return 0
	}
	return r.TBIPS / r.FastIPS
}

// Difftest measures all three execution engines over the named corpus
// programs (empty means all six) and runs the three-way lockstep
// oracle over the same instruction window. maxInst bounds each run;
// 0 means 2M. Wall-clock rates vary by host, so like the farm
// experiment this is excluded from -experiment all and the reference
// output; the divergence count is the deterministic part.
func Difftest(progs []string, maxInst uint64) ([]DifftestRow, error) {
	if maxInst == 0 {
		maxInst = 2_000_000
	}
	ps := corpus.All()
	if len(progs) > 0 {
		ps = ps[:0]
		for _, name := range progs {
			p, err := corpus.ByName(name)
			if err != nil {
				return nil, err
			}
			ps = append(ps, p)
		}
	}
	var rows []DifftestRow
	for _, p := range ps {
		img, err := codegen.Build(p.Build(), image.Layout{})
		if err != nil {
			return nil, fmt.Errorf("difftest experiment: building %s: %w", p.Name, err)
		}

		fastInsts, fastSec, err := runFast(img, p.Stdin, maxInst)
		if err != nil {
			return nil, fmt.Errorf("difftest experiment: %s (fast): %w", p.Name, err)
		}
		refInsts, refSec, err := runRef(img, p.Stdin, maxInst)
		if err != nil {
			return nil, fmt.Errorf("difftest experiment: %s (ref): %w", p.Name, err)
		}
		tbInsts, tbSec, err := runTB(img, p.Stdin, maxInst)
		if err != nil {
			return nil, fmt.Errorf("difftest experiment: %s (tb): %w", p.Name, err)
		}
		if fastInsts != refInsts || fastInsts != tbInsts {
			return nil, fmt.Errorf("difftest experiment: %s: engines retired %d vs %d vs %d insts",
				p.Name, fastInsts, refInsts, tbInsts)
		}

		start := time.Now()
		res, err := difftest.Run(img, difftest.Options{MaxInst: maxInst, Stdin: p.Stdin, TB: true})
		if err != nil {
			return nil, fmt.Errorf("difftest experiment: %s (lockstep): %w", p.Name, err)
		}
		lockSec := time.Since(start).Seconds()

		row := DifftestRow{
			Program:     p.Name,
			Insts:       res.Insts,
			FastIPS:     float64(fastInsts) / fastSec,
			RefIPS:      float64(refInsts) / refSec,
			TBIPS:       float64(tbInsts) / tbSec,
			LockstepIPS: float64(res.Insts) / lockSec,
		}
		if res.Div != nil {
			row.Divergences = 1
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// runFast executes img on the production engine alone and times it.
func runFast(img *image.Image, stdin []byte, maxInst uint64) (uint64, float64, error) {
	cpu, err := emu.LoadImage(img)
	if err != nil {
		return 0, 0, err
	}
	cpu.OS = emu.NewOS(stdin)
	cpu.MaxInst = maxInst
	start := time.Now()
	err = cpu.Run()
	sec := time.Since(start).Seconds()
	if err != nil && !errors.Is(err, emu.ErrInstLimit) {
		return 0, 0, err
	}
	return cpu.Icount, sec, nil
}

// runTB executes img on the translation-block engine alone and times
// it (including translation, which is part of the engine's real cost).
func runTB(img *image.Image, stdin []byte, maxInst uint64) (uint64, float64, error) {
	cpu, err := emu.LoadImage(img)
	if err != nil {
		return 0, 0, err
	}
	cpu.OS = emu.NewOS(stdin)
	cpu.MaxInst = maxInst
	eng := tb.New(cpu, nil)
	defer eng.Close()
	start := time.Now()
	err = eng.Run()
	sec := time.Since(start).Seconds()
	if err != nil && !errors.Is(err, emu.ErrInstLimit) {
		return 0, 0, err
	}
	return cpu.Icount, sec, nil
}

// runRef executes img on the reference interpreter alone and times it.
func runRef(img *image.Image, stdin []byte, maxInst uint64) (uint64, float64, error) {
	ref, err := difftest.NewRef(img, emu.LoadConfig{})
	if err != nil {
		return 0, 0, err
	}
	ref.OS = emu.NewOS(stdin)
	start := time.Now()
	for !ref.Exited && ref.Icount < maxInst {
		if err := ref.Step(); err != nil {
			return 0, 0, err
		}
	}
	return ref.Icount, time.Since(start).Seconds(), nil
}
