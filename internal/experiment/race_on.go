//go:build race

package experiment

// raceEnabled reports whether the race detector is active; the corpus
// sweep test trims its program budget under the detector.
const raceEnabled = true
