package experiment

import (
	"fmt"
	"sort"
	"time"

	"parallax/internal/core"
	"parallax/internal/corpus"
	"parallax/internal/dyngen"
	"parallax/internal/obs"
)

// PipelineTimingRow is one pipeline stage's share of a protect run:
// how often the stage ran (fixpoint passes repeat scan/chain-compile),
// its total and mean wall time, and its fraction of the summed stage
// time.
type PipelineTimingRow struct {
	Stage string
	Count uint64
	Total time.Duration
	Mean  time.Duration
	Share float64
}

// PipelineTiming protects one corpus program with an obs.Registry
// attached and returns the per-stage wall-time breakdown of the
// pipeline (codegen, rewrite, layout, scan, chain-compile, install),
// sorted by total time descending, plus the full registry report for
// callers that want the raw counters. Wall-clock numbers vary by host;
// the stable facts are the stage counts (fixpoint pass structure) and
// the relative shares.
func PipelineTiming(progName string, mode dyngen.Mode) ([]PipelineTimingRow, *obs.Report, error) {
	p, err := corpus.ByName(progName)
	if err != nil {
		return nil, nil, fmt.Errorf("experiment: %w", err)
	}
	reg := obs.NewRegistry()
	_, err = core.Protect(p.Build(), core.Options{
		VerifyFuncs: []string{p.VerifyFunc},
		ChainMode:   mode,
		Obs:         reg,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("experiment: protecting %s: %w", p.Name, err)
	}
	rep := reg.Snapshot()

	var sum time.Duration
	for _, st := range rep.Stages {
		sum += st.Total()
	}
	rows := make([]PipelineTimingRow, 0, len(rep.Stages))
	for name, st := range rep.Stages {
		row := PipelineTimingRow{
			Stage: name,
			Count: st.Count,
			Total: st.Total(),
			Mean:  st.Mean(),
		}
		if sum > 0 {
			row.Share = float64(st.Total()) / float64(sum)
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Total != rows[j].Total {
			return rows[i].Total > rows[j].Total
		}
		return rows[i].Stage < rows[j].Stage
	})
	return rows, rep, nil
}
