package experiment

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"time"

	"parallax/internal/campaign"
	"parallax/internal/codegen"
	"parallax/internal/core"
	"parallax/internal/corpus/gen"
	"parallax/internal/emu"
	"parallax/internal/image"
	"parallax/internal/rewrite"
)

// This file is the corpus-at-scale sweep: N generated programs
// (families × seeds) pushed through protect → tamper → detect, with
// per-region detection rates and protect/verify overheads aggregated
// into percentile distributions — the Figure 5/6 analogues measured
// over a population instead of six hand-picked points. Everything fed
// into the distributions is deterministic (seeded generation, the
// emulator's cycle model, deterministic campaign enumeration); only the
// *Seconds fields are host wall clock, kept as labelled context.

// CorpusOptions tunes the sweep.
type CorpusOptions struct {
	// N is the total program budget distributed across families
	// (0 = 105). Budgets >= 20 always include the 1.6 MiB and 4 MiB
	// families so the sweep spans three size decades.
	N int
	// Engine is the campaign execution backend, "interp" (default) or
	// "tb".
	Engine string
	// Mutants caps each program's campaign (0 = 96).
	Mutants int
	// Workers is the per-campaign worker count (0 = GOMAXPROCS).
	Workers int
	// CrossEvery re-runs every k-th program's campaign under the other
	// engine and hard-fails on any matrix divergence (0 = 10; negative
	// disables).
	CrossEvery int
	// Progress, when non-nil, is called after each program completes.
	Progress func(done, total int, name string)
}

func (o CorpusOptions) withDefaults() CorpusOptions {
	if o.N == 0 {
		o.N = 105
	}
	if o.Engine == "" {
		o.Engine = "interp"
	}
	if o.Mutants == 0 {
		o.Mutants = 96
	}
	if o.CrossEvery == 0 {
		o.CrossEvery = 10
	}
	return o
}

// CorpusProgram is one generated program's sweep record; Seed and
// ParamsHash pin exactly which program produced each number.
type CorpusProgram struct {
	Family     string `json:"family"`
	Name       string `json:"name"`
	Seed       uint64 `json:"seed"`
	ParamsHash string `json:"params_hash"`
	CodeKiB    int    `json:"code_kib"`
	Modules    int    `json:"modules"`
	TextBytes  int    `json:"text_bytes"`
	Funcs      int    `json:"funcs"`

	// Figure 6 analogue: protectable text percentage (strict and
	// compositional accounting).
	AnyPct      float64 `json:"any_pct"`
	AnyReachPct float64 `json:"any_reach_pct"`

	// Figure 5b analogue: whole-program overhead from the deterministic
	// cycle model; ProtectSeconds is host wall clock (context only).
	BaselineCycles  uint64  `json:"baseline_cycles"`
	ProtectedCycles uint64  `json:"protected_cycles"`
	OverheadPct     float64 `json:"overhead_pct"`
	ProtectSeconds  float64 `json:"protect_seconds"`

	// Campaign detection outcomes.
	Mutants          int     `json:"mutants"`
	GuardedTotal     int     `json:"guarded_total"`
	GuardedChain     int     `json:"guarded_chain"`
	GuardedChainRate float64 `json:"guarded_chain_rate"`
	DetectedRate     float64 `json:"detected_rate"`
	// Per-region-class detection rates: hot text (executes every run),
	// cold text (linked, never executes), chain data (..parallax.*).
	HotDetectedRate  float64 `json:"hot_detected_rate"`
	ColdDetectedRate float64 `json:"cold_detected_rate"`
	DataDetectedRate float64 `json:"data_detected_rate"`

	// MatrixFP fingerprints the rendered detection matrix; reruns of the
	// same (seed, params, campaign config) must reproduce it exactly.
	MatrixFP     string `json:"matrix_fp"`
	CrossChecked bool   `json:"cross_checked"`
}

// Dist is a percentile summary of one metric over a program set.
type Dist struct {
	N    int     `json:"n"`
	P10  float64 `json:"p10"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	Mean float64 `json:"mean"`
}

// NewDist summarizes values (nearest-rank percentiles; deterministic).
func NewDist(values []float64) Dist {
	if len(values) == 0 {
		return Dist{}
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	rank := func(q float64) float64 {
		i := int(q*float64(len(s)-1) + 0.5)
		return s[i]
	}
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	return Dist{
		N: len(s), P10: rank(0.10), P50: rank(0.50), P90: rank(0.90),
		Mean: sum / float64(len(s)),
	}
}

// CorpusFamily aggregates one family's programs into distributions.
type CorpusFamily struct {
	Family           string `json:"family"`
	CodeKiB          int    `json:"code_kib"`
	N                int    `json:"n"`
	GuardedChainRate Dist   `json:"guarded_chain_rate"`
	DetectedRate     Dist   `json:"detected_rate"`
	HotDetectedRate  Dist   `json:"hot_detected_rate"`
	ColdDetectedRate Dist   `json:"cold_detected_rate"`
	DataDetectedRate Dist   `json:"data_detected_rate"`
	OverheadPct      Dist   `json:"overhead_pct"`
	AnyReachPct      Dist   `json:"any_reach_pct"`
	ProtectSeconds   Dist   `json:"protect_seconds"`
}

// CorpusReport is the full sweep result.
type CorpusReport struct {
	Engine      string          `json:"engine"`
	Programs    []CorpusProgram `json:"programs"`
	Families    []CorpusFamily  `json:"families"`
	Overall     CorpusFamily    `json:"overall"`
	CrossChecks int             `json:"cross_checks"`
}

// corpusPlanEntry is one (family, program count) slot in the sweep plan.
type corpusPlanEntry struct {
	fam   gen.Family
	count int
}

// corpusPlan distributes the program budget across families: the bulk
// on the cheap small families, a guaranteed slice on the 1.6 MiB and
// 4 MiB families once the budget affords them (three size decades).
func corpusPlan(n int) []corpusPlanEntry {
	weights := map[string]int{
		"tiny": 34, "small": 22,
		"branchy": 8, "stringy": 8, "muldiv": 8, "callheavy": 8,
		"medium": 7, "huge": 5,
	}
	var plan []corpusPlanEntry
	total := 0
	for _, w := range weights {
		total += w
	}
	assigned := 0
	for _, fam := range gen.Families() {
		c := n * weights[fam.Name] / total
		big := fam.Params.CodeKiB > 1024
		if big && n >= 20 && c < 2 {
			c = 2 // keep the top size decades populated
		}
		if !big && c < 1 {
			c = 1
		}
		plan = append(plan, corpusPlanEntry{fam: fam, count: c})
		assigned += c
	}
	// Remainder (or overdraft) lands on the cheapest family.
	plan[0].count += n - assigned
	if plan[0].count < 1 {
		plan[0].count = 1
	}
	return plan
}

// corpusCampaignConfig scales the campaign to the image: the stride
// spreads sites across the whole text regardless of size, and the
// serial kind (whole-image serialization per mutant) is dropped above
// 256 KiB where it would dominate wall clock without adding coverage
// along the size axis.
func corpusCampaignConfig(opts CorpusOptions, textBytes, codeKiB int) campaign.Config {
	stride := textBytes / 8192
	if stride < 7 {
		stride = 7
	}
	stride |= 1 // odd, so consecutive sites vary mod instruction lengths
	kinds := campaign.AllKinds()
	if codeKiB > 256 {
		kinds = []campaign.Kind{campaign.KindBitFlip, campaign.KindByteSet, campaign.KindNopSweep}
	}
	return campaign.Config{
		Workers:    opts.Workers,
		MaxInst:    2_000_000,
		Stride:     stride,
		MaxMutants: opts.Mutants,
		Kinds:      kinds,
		Engine:     opts.Engine,
	}
}

// matrixFP fingerprints a rendered detection matrix.
func matrixFP(rep *campaign.Report) string {
	h := fnv.New64a()
	h.Write([]byte(rep.String()))
	return fmt.Sprintf("%016x", h.Sum64())
}

// regionRates folds the per-region matrix into the three region
// classes using the generator's seed-independent skeleton.
func regionRates(rep *campaign.Report, info gen.Info) (hot, cold, data float64) {
	var h, c, d campaign.Row
	acc := func(dst *campaign.Row, r campaign.Row) {
		dst.Total += r.Total
		dst.Infra += r.Infra
		dst.Silent += r.Silent
	}
	for _, r := range rep.Rows {
		switch {
		case r.Region == "(serialized)":
			// Serial corruption hits the container, not a region class.
		case strings.HasPrefix(r.Region, "..parallax."):
			acc(&d, r)
		case strings.HasPrefix(r.Region, "..cs."):
			// Composed checksum-network checkers execute on every run
			// (entry wrapper), so they are hot code, not cold.
			acc(&h, r)
		case r.Region == "vfy" || r.Region == "main" || info.Hot[r.Region]:
			acc(&h, r)
		default:
			acc(&c, r)
		}
	}
	return h.DetectedRate(), c.DetectedRate(), d.DetectedRate()
}

// runCycles runs an image to exit and returns the deterministic cycle
// count.
func runCycles(img *image.Image) (uint64, error) {
	cpu, err := emu.RunImage(img, emu.NewOS(nil))
	if err != nil {
		return 0, err
	}
	return cpu.Cycles, nil
}

// CorpusSweep runs the corpus-at-scale experiment.
func CorpusSweep(ctx context.Context, opts CorpusOptions) (*CorpusReport, error) {
	opts = opts.withDefaults()
	plan := corpusPlan(opts.N)
	total := 0
	for _, e := range plan {
		total += e.count
	}

	out := &CorpusReport{Engine: opts.Engine}
	other := "tb"
	if opts.Engine == "tb" {
		other = "interp"
	}
	done := 0
	for _, entry := range plan {
		info, err := gen.Describe(entry.fam.Params)
		if err != nil {
			return nil, fmt.Errorf("corpus sweep: %s: %w", entry.fam.Name, err)
		}
		for seed := uint64(1); seed <= uint64(entry.count); seed++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			prog, err := gen.FamilyProgram(entry.fam, seed)
			if err != nil {
				return nil, fmt.Errorf("corpus sweep: %s seed %d: %w", entry.fam.Name, seed, err)
			}
			m := prog.Build()
			baseImg, err := codegen.Build(m, image.Layout{})
			if err != nil {
				return nil, fmt.Errorf("corpus sweep: %s: codegen: %w", prog.Name, err)
			}
			if err := gen.CheckImage(baseImg); err != nil {
				return nil, fmt.Errorf("corpus sweep: %s: %w", prog.Name, err)
			}
			baseCycles, err := runCycles(baseImg)
			if err != nil {
				return nil, fmt.Errorf("corpus sweep: %s: baseline run: %w", prog.Name, err)
			}
			measure, err := rewrite.Measure(baseImg)
			if err != nil {
				return nil, fmt.Errorf("corpus sweep: %s: measure: %w", prog.Name, err)
			}

			start := time.Now()
			prot, err := core.Protect(m, core.Options{VerifyFuncs: []string{prog.VerifyFunc}})
			if err != nil {
				return nil, fmt.Errorf("corpus sweep: %s: protect: %w", prog.Name, err)
			}
			protectSec := time.Since(start).Seconds()
			if err := gen.CheckProtected(prot); err != nil {
				return nil, fmt.Errorf("corpus sweep: %s: %w", prog.Name, err)
			}
			protCycles, err := runCycles(prot.Image)
			if err != nil {
				return nil, fmt.Errorf("corpus sweep: %s: protected run: %w", prog.Name, err)
			}

			text := baseImg.Text()
			cfg := corpusCampaignConfig(opts, len(text.Data), entry.fam.Params.CodeKiB)
			rep, err := campaign.Run(ctx, prot, cfg)
			if err != nil {
				return nil, fmt.Errorf("corpus sweep: %s: campaign: %w", prog.Name, err)
			}

			rec := CorpusProgram{
				Family:     entry.fam.Name,
				Name:       prog.Name,
				Seed:       seed,
				ParamsHash: entry.fam.Params.Hash(),
				CodeKiB:    entry.fam.Params.CodeKiB,
				Modules:    entry.fam.Params.Modules,
				TextBytes:  len(text.Data),
				Funcs:      len(info.Funcs),

				AnyPct:      measure.AnyPercent(),
				AnyReachPct: measure.AnyReachPercent(),

				BaselineCycles:  baseCycles,
				ProtectedCycles: protCycles,
				OverheadPct:     100 * float64(int64(protCycles)-int64(baseCycles)) / float64(baseCycles),
				ProtectSeconds:  protectSec,

				Mutants:          rep.Mutants,
				GuardedTotal:     rep.GuardedTotal,
				GuardedChain:     rep.GuardedChain,
				GuardedChainRate: rep.GuardedChainRate(),
				DetectedRate:     rep.Totals().DetectedRate(),
				MatrixFP:         matrixFP(rep),
			}
			rec.HotDetectedRate, rec.ColdDetectedRate, rec.DataDetectedRate = regionRates(rep, info)

			// Engine cross-check: the detection matrix is a semantic
			// statement about the protected program, so it must not
			// depend on the execution backend.
			if opts.CrossEvery > 0 && done%opts.CrossEvery == 0 {
				xcfg := cfg
				xcfg.Engine = other
				xrep, err := campaign.Run(ctx, prot, xcfg)
				if err != nil {
					return nil, fmt.Errorf("corpus sweep: %s: cross-engine campaign: %w", prog.Name, err)
				}
				if fp := matrixFP(xrep); fp != rec.MatrixFP {
					return nil, fmt.Errorf("corpus sweep: %s: matrix diverges across engines: %s (%s) vs %s (%s)",
						prog.Name, rec.MatrixFP, opts.Engine, fp, other)
				}
				rec.CrossChecked = true
				out.CrossChecks++
			}

			out.Programs = append(out.Programs, rec)
			done++
			if opts.Progress != nil {
				opts.Progress(done, total, prog.Name)
			}
		}
	}

	// Aggregate: per family, then overall.
	byFam := map[string][]CorpusProgram{}
	for _, rec := range out.Programs {
		byFam[rec.Family] = append(byFam[rec.Family], rec)
	}
	aggregate := func(name string, kib int, recs []CorpusProgram) CorpusFamily {
		pull := func(f func(CorpusProgram) float64) Dist {
			vals := make([]float64, len(recs))
			for i, r := range recs {
				vals[i] = f(r)
			}
			return NewDist(vals)
		}
		return CorpusFamily{
			Family: name, CodeKiB: kib, N: len(recs),
			GuardedChainRate: pull(func(r CorpusProgram) float64 { return r.GuardedChainRate }),
			DetectedRate:     pull(func(r CorpusProgram) float64 { return r.DetectedRate }),
			HotDetectedRate:  pull(func(r CorpusProgram) float64 { return r.HotDetectedRate }),
			ColdDetectedRate: pull(func(r CorpusProgram) float64 { return r.ColdDetectedRate }),
			DataDetectedRate: pull(func(r CorpusProgram) float64 { return r.DataDetectedRate }),
			OverheadPct:      pull(func(r CorpusProgram) float64 { return r.OverheadPct }),
			AnyReachPct:      pull(func(r CorpusProgram) float64 { return r.AnyReachPct }),
			ProtectSeconds:   pull(func(r CorpusProgram) float64 { return r.ProtectSeconds }),
		}
	}
	for _, entry := range plan {
		recs := byFam[entry.fam.Name]
		if len(recs) == 0 {
			continue
		}
		out.Families = append(out.Families, aggregate(entry.fam.Name, entry.fam.Params.CodeKiB, recs))
	}
	out.Overall = aggregate("overall", 0, out.Programs)
	return out, nil
}

// CorpusEngineRow is the interp-vs-tb comparison on one big generated
// image: the same enumerated campaign through the interpreter's reload
// path, the interpreter's snapshot path, and the tb engine's snapshot
// path. Wall-clock varies by host; matrix equality must not.
type CorpusEngineRow struct {
	Family              string  `json:"family"`
	Seed                uint64  `json:"seed"`
	TextBytes           int     `json:"text_bytes"`
	Mutants             int     `json:"mutants"`
	InterpReloadSeconds float64 `json:"interp_reload_seconds"`
	InterpSnapSeconds   float64 `json:"interp_snap_seconds"`
	TBSnapSeconds       float64 `json:"tb_snap_seconds"`
	SnapSpeedup         float64 `json:"snap_speedup"` // interp reload / interp snap
	TBSpeedup           float64 `json:"tb_speedup"`   // interp snap / tb snap
	MatrixEqual         bool    `json:"matrix_equal"`
}

// CorpusEngines re-runs the engine table on generated images at the
// sizes where snapshot/restore and translation caching actually have
// something to amortize. Empty families means small/medium/huge —
// 160 KiB, 1.6 MiB, 4 MiB.
func CorpusEngines(ctx context.Context, families []string, seed uint64, mutants, workers int) ([]CorpusEngineRow, error) {
	if len(families) == 0 {
		families = []string{"small", "medium", "huge"}
	}
	if mutants == 0 {
		mutants = 48
	}
	var out []CorpusEngineRow
	for _, name := range families {
		fam, err := gen.FamilyByName(name)
		if err != nil {
			return nil, err
		}
		prog, err := gen.FamilyProgram(fam, seed)
		if err != nil {
			return nil, err
		}
		prot, err := core.Protect(prog.Build(), core.Options{VerifyFuncs: []string{prog.VerifyFunc}})
		if err != nil {
			return nil, fmt.Errorf("corpus engines: protecting %s: %w", prog.Name, err)
		}
		text := prot.Image.Text()
		cfg := corpusCampaignConfig(CorpusOptions{Mutants: mutants, Workers: workers},
			len(text.Data), fam.Params.CodeKiB)

		run := func(engine string, reload bool) (*campaign.Report, float64, error) {
			c := cfg
			c.Engine = engine
			c.Reload = reload
			start := time.Now()
			rep, err := campaign.Run(ctx, prot, c)
			return rep, time.Since(start).Seconds(), err
		}
		repReload, tReload, err := run("interp", true)
		if err != nil {
			return nil, fmt.Errorf("corpus engines: %s interp/reload: %w", prog.Name, err)
		}
		repSnap, tSnap, err := run("interp", false)
		if err != nil {
			return nil, fmt.Errorf("corpus engines: %s interp/snap: %w", prog.Name, err)
		}
		repTB, tTB, err := run("tb", false)
		if err != nil {
			return nil, fmt.Errorf("corpus engines: %s tb/snap: %w", prog.Name, err)
		}

		row := CorpusEngineRow{
			Family:              name,
			Seed:                seed,
			TextBytes:           len(text.Data),
			Mutants:             repSnap.Mutants,
			InterpReloadSeconds: tReload,
			InterpSnapSeconds:   tSnap,
			TBSnapSeconds:       tTB,
			MatrixEqual: matrixFP(repReload) == matrixFP(repSnap) &&
				matrixFP(repSnap) == matrixFP(repTB),
		}
		if tSnap > 0 {
			row.SnapSpeedup = tReload / tSnap
		}
		if tTB > 0 {
			row.TBSpeedup = tSnap / tTB
		}
		out = append(out, row)
	}
	return out, nil
}
