package experiment

import (
	"testing"
)

// TestFig6Shape verifies the protectability measurement reproduces the
// paper's qualitative structure: existing gadgets cover a small
// fraction, the rewriting rules dominate, and the union lands in the
// paper's 63-90% band's neighbourhood.
func TestFig6Shape(t *testing.T) {
	rows, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6", len(rows))
	}
	for _, r := range rows {
		t.Logf("%-6s text=%6d existing=%5.1f%% far=%4.1f%% imm=%5.1f/%5.1f%% jump=%5.1f/%5.1f%% any=%5.1f/%5.1f%%",
			r.Program, r.TextBytes, r.Existing, r.FarRet,
			r.ImmMod, r.ImmModReach, r.JumpMod, r.JumpModReach, r.Any, r.AnyReach)
		if r.Existing > 20 {
			t.Errorf("%s: existing-gadget coverage %.1f%% implausibly high", r.Program, r.Existing)
		}
		if r.Any < r.ImmMod || r.Any < r.JumpMod {
			t.Errorf("%s: union below a component", r.Program)
		}
		if r.Any > 100 {
			t.Errorf("%s: union over 100%%", r.Program)
		}
		if r.Any < 25 {
			t.Errorf("%s: union coverage %.1f%% far below the paper's band", r.Program, r.Any)
		}
		if r.AnyReach < r.Any {
			t.Errorf("%s: reach union below strict union", r.Program)
		}
		if r.AnyReach < 45 {
			t.Errorf("%s: compositional coverage %.1f%% below the paper's 63-90%% neighbourhood",
				r.Program, r.AnyReach)
		}
	}
}

// TestFig5Shape verifies chain slowdowns are large factors while
// whole-program overhead stays small, and the strategy ordering holds.
func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus protection sweep")
	}
	rows, err := Fig5(Fig5Modes())
	if err != nil {
		t.Fatal(err)
	}
	perProgram := map[string]map[string]Fig5Row{}
	for _, r := range rows {
		t.Logf("%-6s %-9s native=%8.0f chain=%9.0f slowdown=%6.1fx overhead=%5.2f%%",
			r.Program, r.Mode, r.NativePerCall, r.ChainPerCall, r.Slowdown, r.OverheadPct)
		if perProgram[r.Program] == nil {
			perProgram[r.Program] = map[string]Fig5Row{}
		}
		perProgram[r.Program][r.Mode] = r
	}
	for prog, modes := range perProgram {
		ct := modes["cleartext"]
		// The paper's cleartext band is 3.7x-46.7x; ours lands inside a
		// slightly wider window.
		if ct.Slowdown < 4 || ct.Slowdown > 60 {
			t.Errorf("%s: cleartext chain slowdown %.1fx outside the expected band",
				prog, ct.Slowdown)
		}
		// Whole-program overhead stays bounded. (Absolute percentages
		// exceed the paper's <4% because our workloads run ~10^4x fewer
		// cycles than the authors' testbed against the same per-call
		// chain cost; see EXPERIMENTS.md.)
		if ct.OverheadPct > 40 {
			t.Errorf("%s: cleartext overhead %.1f%% too high", prog, ct.OverheadPct)
		}
		// Hardened chains cost at least as much as cleartext, and the
		// decode step orders cleartext < xor < {rc4, prob}.
		for _, m := range []string{"xor", "rc4", "prob"} {
			if modes[m].ChainPerCall < ct.ChainPerCall {
				t.Errorf("%s: %s per-call %.0f below cleartext %.0f",
					prog, m, modes[m].ChainPerCall, ct.ChainPerCall)
			}
		}
		if modes["rc4"].ChainPerCall < modes["xor"].ChainPerCall {
			t.Errorf("%s: rc4 cheaper than xor", prog)
		}
		if modes["prob"].ChainPerCall < modes["xor"].ChainPerCall {
			t.Errorf("%s: prob cheaper than xor", prog)
		}
	}
}

// TestMuAblationShape verifies §V-C: µ-chains cost roughly twice as
// much as function chains.
func TestMuAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus protection sweep")
	}
	rows, err := MuAblation()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("%-6s func=%8.0f mu=%9.0f ratio=%.2fx words %d -> %d",
			r.Program, r.FuncPerCall, r.MuPerCall, r.Ratio, r.FuncChainLen, r.MuChainLen)
		if r.Ratio < 1.3 {
			t.Errorf("%s: µ-chain ratio %.2fx; expected a substantial premium", r.Program, r.Ratio)
		}
		if r.MuChainLen <= r.FuncChainLen {
			t.Errorf("%s: µ-chain not longer than function chain", r.Program)
		}
	}
}
