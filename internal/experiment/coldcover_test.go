package experiment

import (
	"context"
	"testing"
)

// TestColdCoverSmoke runs the 2×2 sweep at the smallest affordable
// scale and asserts the experiment's headline direction: cold
// detection is (near-)zero in the idle/plain cell and strictly higher
// once the heavy workload and the composed network are both live. At
// this mutant budget the magnitudes are noisy, so only the ordering —
// the blind spot exists, the mitigations bite — is pinned; magnitudes
// are a full-budget (-experiment coldcover) claim.
func TestColdCoverSmoke(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("four campaigns per program are minutes-scale under -short aggregation or the race detector")
	}
	rep, err := ColdCoverSweep(context.Background(), ColdCoverOptions{
		Families:   []string{"tiny"},
		Seeds:      2,
		Mutants:    48,
		CrossEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Programs) != 2 {
		t.Fatalf("got %d programs, want 2", len(rep.Programs))
	}
	if rep.CrossChecks == 0 {
		t.Error("no cross-engine checks ran")
	}
	for _, p := range rep.Programs {
		if len(p.Cells) != 4 {
			t.Fatalf("%s: %d cells, want 4", p.Name, len(p.Cells))
		}
		for _, c := range p.Cells {
			if c.MatrixFP == "" || c.Mutants == 0 {
				t.Errorf("%s %s/composed=%v: empty cell %+v", p.Name, c.Workload, c.Composed, c)
			}
			if c.InfraErrors != 0 {
				t.Errorf("%s %s/composed=%v: %d infra errors in a chaos-free campaign",
					p.Name, c.Workload, c.Composed, c.InfraErrors)
			}
		}
		if p.CoveredBytes == 0 || p.Regions == 0 {
			t.Errorf("%s: composed network covers nothing: %+v", p.Name, p)
		}
		if p.CoveredPct < 50 {
			t.Errorf("%s: composed network covers %.1f%% of text, want most of it", p.Name, p.CoveredPct)
		}
		if p.ComposedOverheadPct <= 0 {
			t.Errorf("%s: composition reports no runtime cost (%.2f%%)", p.Name, p.ComposedOverheadPct)
		}

		idlePlain := p.Cell("idle", false).ColdDetectedRate
		heavyComposed := p.Cell("heavy", true).ColdDetectedRate
		if heavyComposed <= idlePlain {
			t.Errorf("%s: cold detection did not rise: idle/plain %.1f%% vs heavy/composed %.1f%%",
				p.Name, idlePlain, heavyComposed)
		}
		// Composition alone must already lift the idle cell: the
		// checkers hash cold bytes without ever executing them.
		if p.Cell("idle", true).ColdDetectedRate <= idlePlain {
			t.Errorf("%s: composed idle cold rate %.1f%% not above plain idle %.1f%%",
				p.Name, p.Cell("idle", true).ColdDetectedRate, idlePlain)
		}
	}
	if rep.Overall.N != len(rep.Programs) {
		t.Errorf("overall aggregates %d of %d", rep.Overall.N, len(rep.Programs))
	}
}

// TestFarmFanoutSmoke pushes a small fan-out through two worker counts
// and asserts the cache and determinism invariants that the full
// stress (-experiment fanout) measures at hundreds of jobs.
func TestFarmFanoutSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("protect fan-out is tens of seconds under -short aggregation")
	}
	rep, err := FarmFanout(context.Background(), FanoutOptions{
		Jobs:    24,
		Unique:  6,
		Workers: []int{2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rounds) != 2 {
		t.Fatalf("got %d rounds, want 2", len(rep.Rounds))
	}
	if !rep.Deterministic {
		t.Error("identical inputs produced differing protected images")
	}
	for _, r := range rep.Rounds {
		if r.Failed != 0 || r.Completed != rep.Jobs {
			t.Errorf("workers=%d: %d completed, %d failed of %d", r.Workers, r.Completed, r.Failed, r.Jobs)
		}
		// Each unique module is scanned at most once per concurrent
		// first-submission wave; everything else must hit.
		if maxMisses := uint64(rep.Unique * r.Workers); r.ScanMisses > maxMisses {
			t.Errorf("workers=%d: %d scan misses for %d unique modules", r.Workers, r.ScanMisses, rep.Unique)
		}
		if r.ScanHitRate <= 0 {
			t.Errorf("workers=%d: scan cache never hit (%d hits / %d misses)",
				r.Workers, r.ScanHits, r.ScanMisses)
		}
		if r.OutputFP == "" {
			t.Errorf("workers=%d: no output fingerprint", r.Workers)
		}
	}
	if rep.Rounds[0].OutputFP != rep.Rounds[1].OutputFP {
		t.Errorf("output fingerprints differ across rounds: %s vs %s",
			rep.Rounds[0].OutputFP, rep.Rounds[1].OutputFP)
	}
}
