package experiment

import (
	"context"
	"fmt"
	"reflect"
	"time"

	"parallax/internal/campaign"
	"parallax/internal/core"
	"parallax/internal/corpus"
	"parallax/internal/obs"
)

// CampaignResult is one corpus program's tamper-campaign outcome.
type CampaignResult struct {
	Program string
	Report  *campaign.Report
}

// Campaign protects each named corpus program and sweeps the tamper
// campaign over it, returning the per-program detection matrices. An
// empty program list means wget (the paper's running example). The
// supplied config is used as-is except Stdin, which is taken from each
// program's workload.
func Campaign(ctx context.Context, progs []string, cfg campaign.Config) ([]CampaignResult, error) {
	if len(progs) == 0 {
		progs = []string{"wget"}
	}
	var out []CampaignResult
	for _, name := range progs {
		p, err := corpus.ByName(name)
		if err != nil {
			return nil, err
		}
		prot, err := core.Protect(p.Build(), core.Options{
			VerifyFuncs: []string{p.VerifyFunc},
		})
		if err != nil {
			return nil, fmt.Errorf("campaign experiment: protecting %s: %w", name, err)
		}
		pcfg := cfg
		pcfg.Stdin = p.Stdin
		rep, err := campaign.Run(ctx, prot, pcfg)
		if err != nil {
			return nil, fmt.Errorf("campaign experiment: %s: %w", name, err)
		}
		out = append(out, CampaignResult{Program: name, Report: rep})
	}
	return out, nil
}

// CampaignEngineRow compares the campaign's execution configurations
// on one corpus program: the interpreter on the legacy clone+reload
// path, the interpreter on the snapshot/restore path, and the
// translation-block engine (the default) on the snapshot path with the
// campaign-wide shared catalog. Detection matrices must agree across
// all three — MatrixEqual is the differential check, TBSpeedup and the
// catalog hit rate the payoff.
type CampaignEngineRow struct {
	Program       string
	Mutants       int
	ReloadSeconds float64 // interp, clone+reload per mutant
	SnapSeconds   float64 // interp, snapshot/restore
	TBSeconds     float64 // tb + shared catalog, snapshot/restore
	Speedup       float64 // ReloadSeconds / TBSeconds (full stack win)
	TBSpeedup     float64 // SnapSeconds / TBSeconds (engine-only win)
	// CatalogHitRate is catalog hits over catalog consults on the tb
	// run: the fraction of block lookups that skipped decode+compile by
	// adopting another mutant's translation.
	CatalogHitRate float64
	MatrixEqual    bool
	Report         *campaign.Report // tb-path report
}

// CampaignEngines runs the same enumerated campaign through all three
// execution configurations and measures wall-clock time per path. An
// empty program list means wget. Wall-clock numbers vary by host; the
// matrix equality must not.
func CampaignEngines(ctx context.Context, progs []string, cfg campaign.Config) ([]CampaignEngineRow, error) {
	if len(progs) == 0 {
		progs = []string{"wget"}
	}
	var out []CampaignEngineRow
	for _, name := range progs {
		p, err := corpus.ByName(name)
		if err != nil {
			return nil, err
		}
		prot, err := core.Protect(p.Build(), core.Options{
			VerifyFuncs: []string{p.VerifyFunc},
		})
		if err != nil {
			return nil, fmt.Errorf("campaign-engine experiment: protecting %s: %w", name, err)
		}
		pcfg := cfg
		pcfg.Stdin = p.Stdin

		reloadCfg := pcfg
		reloadCfg.Reload = true
		reloadCfg.Engine = "interp"
		start := time.Now()
		repReload, err := campaign.Run(ctx, prot, reloadCfg)
		if err != nil {
			return nil, fmt.Errorf("campaign-engine experiment: %s (interp reload): %w", name, err)
		}
		reloadSec := time.Since(start).Seconds()

		snapCfg := pcfg
		snapCfg.Reload = false
		snapCfg.Engine = "interp"
		start = time.Now()
		repSnap, err := campaign.Run(ctx, prot, snapCfg)
		if err != nil {
			return nil, fmt.Errorf("campaign-engine experiment: %s (interp snapshot): %w", name, err)
		}
		snapSec := time.Since(start).Seconds()

		tbCfg := pcfg
		tbCfg.Reload = false
		tbCfg.Engine = "tb"
		reg := obs.NewRegistry()
		tbCfg.Obs = reg
		start = time.Now()
		repTB, err := campaign.Run(ctx, prot, tbCfg)
		if err != nil {
			return nil, fmt.Errorf("campaign-engine experiment: %s (tb snapshot): %w", name, err)
		}
		tbSec := time.Since(start).Seconds()
		hits := reg.Counter("emu.tb.catalog_hits").Value()
		misses := reg.Counter("emu.tb.catalog_misses").Value()

		row := CampaignEngineRow{
			Program:       name,
			Mutants:       repTB.Mutants,
			ReloadSeconds: reloadSec,
			SnapSeconds:   snapSec,
			TBSeconds:     tbSec,
			MatrixEqual: reflect.DeepEqual(repReload, repSnap) &&
				reflect.DeepEqual(repSnap, repTB),
			Report: repTB,
		}
		if tbSec > 0 {
			row.Speedup = reloadSec / tbSec
			row.TBSpeedup = snapSec / tbSec
		}
		if hits+misses > 0 {
			row.CatalogHitRate = float64(hits) / float64(hits+misses)
		}
		out = append(out, row)
	}
	return out, nil
}
