package experiment

import (
	"context"
	"fmt"
	"reflect"
	"time"

	"parallax/internal/campaign"
	"parallax/internal/core"
	"parallax/internal/corpus"
)

// CampaignResult is one corpus program's tamper-campaign outcome.
type CampaignResult struct {
	Program string
	Report  *campaign.Report
}

// Campaign protects each named corpus program and sweeps the tamper
// campaign over it, returning the per-program detection matrices. An
// empty program list means wget (the paper's running example). The
// supplied config is used as-is except Stdin, which is taken from each
// program's workload.
func Campaign(ctx context.Context, progs []string, cfg campaign.Config) ([]CampaignResult, error) {
	if len(progs) == 0 {
		progs = []string{"wget"}
	}
	var out []CampaignResult
	for _, name := range progs {
		p, err := corpus.ByName(name)
		if err != nil {
			return nil, err
		}
		prot, err := core.Protect(p.Build(), core.Options{
			VerifyFuncs: []string{p.VerifyFunc},
		})
		if err != nil {
			return nil, fmt.Errorf("campaign experiment: protecting %s: %w", name, err)
		}
		pcfg := cfg
		pcfg.Stdin = p.Stdin
		rep, err := campaign.Run(ctx, prot, pcfg)
		if err != nil {
			return nil, fmt.Errorf("campaign experiment: %s: %w", name, err)
		}
		out = append(out, CampaignResult{Program: name, Report: rep})
	}
	return out, nil
}

// CampaignEngineRow compares the campaign's two execution engines on
// one corpus program: clone+reload per mutant versus one emulator per
// worker restored from a snapshot. Detection matrices must agree —
// MatrixEqual is the differential check, Speedup the payoff.
type CampaignEngineRow struct {
	Program       string
	Mutants       int
	ReloadSeconds float64
	SnapSeconds   float64
	Speedup       float64 // ReloadSeconds / SnapSeconds
	MatrixEqual   bool
	Report        *campaign.Report // snapshot-path report
}

// CampaignEngines runs the same enumerated campaign through both
// execution paths and measures wall-clock time per path. An empty
// program list means wget. Wall-clock numbers vary by host; the
// matrix equality must not.
func CampaignEngines(ctx context.Context, progs []string, cfg campaign.Config) ([]CampaignEngineRow, error) {
	if len(progs) == 0 {
		progs = []string{"wget"}
	}
	var out []CampaignEngineRow
	for _, name := range progs {
		p, err := corpus.ByName(name)
		if err != nil {
			return nil, err
		}
		prot, err := core.Protect(p.Build(), core.Options{
			VerifyFuncs: []string{p.VerifyFunc},
		})
		if err != nil {
			return nil, fmt.Errorf("campaign-engine experiment: protecting %s: %w", name, err)
		}
		pcfg := cfg
		pcfg.Stdin = p.Stdin

		reloadCfg := pcfg
		reloadCfg.Reload = true
		start := time.Now()
		repReload, err := campaign.Run(ctx, prot, reloadCfg)
		if err != nil {
			return nil, fmt.Errorf("campaign-engine experiment: %s (reload): %w", name, err)
		}
		reloadSec := time.Since(start).Seconds()

		snapCfg := pcfg
		snapCfg.Reload = false
		start = time.Now()
		repSnap, err := campaign.Run(ctx, prot, snapCfg)
		if err != nil {
			return nil, fmt.Errorf("campaign-engine experiment: %s (snapshot): %w", name, err)
		}
		snapSec := time.Since(start).Seconds()

		row := CampaignEngineRow{
			Program:       name,
			Mutants:       repSnap.Mutants,
			ReloadSeconds: reloadSec,
			SnapSeconds:   snapSec,
			MatrixEqual:   reflect.DeepEqual(repReload, repSnap),
			Report:        repSnap,
		}
		if snapSec > 0 {
			row.Speedup = reloadSec / snapSec
		}
		out = append(out, row)
	}
	return out, nil
}
