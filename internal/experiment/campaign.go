package experiment

import (
	"context"
	"fmt"

	"parallax/internal/campaign"
	"parallax/internal/core"
	"parallax/internal/corpus"
)

// CampaignResult is one corpus program's tamper-campaign outcome.
type CampaignResult struct {
	Program string
	Report  *campaign.Report
}

// Campaign protects each named corpus program and sweeps the tamper
// campaign over it, returning the per-program detection matrices. An
// empty program list means wget (the paper's running example). The
// supplied config is used as-is except Stdin, which is taken from each
// program's workload.
func Campaign(ctx context.Context, progs []string, cfg campaign.Config) ([]CampaignResult, error) {
	if len(progs) == 0 {
		progs = []string{"wget"}
	}
	var out []CampaignResult
	for _, name := range progs {
		p, err := corpus.ByName(name)
		if err != nil {
			return nil, err
		}
		prot, err := core.Protect(p.Build(), core.Options{
			VerifyFuncs: []string{p.VerifyFunc},
		})
		if err != nil {
			return nil, fmt.Errorf("campaign experiment: protecting %s: %w", name, err)
		}
		pcfg := cfg
		pcfg.Stdin = p.Stdin
		rep, err := campaign.Run(ctx, prot, pcfg)
		if err != nil {
			return nil, fmt.Errorf("campaign experiment: %s: %w", name, err)
		}
		out = append(out, CampaignResult{Program: name, Report: rep})
	}
	return out, nil
}
