package experiment

import (
	"context"
	"fmt"
	"time"

	"parallax/internal/core"
	"parallax/internal/corpus"
	"parallax/internal/dyngen"
	"parallax/internal/farm"
	"parallax/internal/ir"
)

// FarmJob is one cell of the batch-protection matrix: a corpus program
// protected under one chain mode. Build is a thunk so every submission
// constructs a fresh IR module (builders are cheap and pure).
type FarmJob struct {
	Name  string
	Build func() *ir.Module
	Opts  core.Options
}

// FarmMatrix returns the corpus × chain-mode job matrix used by the
// batch front-ends: 6 programs × the given hardening strategies (all
// four when modes is empty).
func FarmMatrix(modes []dyngen.Mode) []FarmJob {
	if len(modes) == 0 {
		modes = Fig5Modes()
	}
	var jobs []FarmJob
	for _, p := range corpus.All() {
		for _, m := range modes {
			jobs = append(jobs, FarmJob{
				Name:  fmt.Sprintf("%s/%s", p.Name, m),
				Build: p.Build,
				Opts: core.Options{
					VerifyFuncs: []string{p.VerifyFunc},
					ChainMode:   m,
				},
			})
		}
	}
	return jobs
}

// FarmThroughputRow is one worker-count measurement of the farm
// experiment: the full matrix protected twice on one farm — a cold
// round (empty cache) and a warm round (hints + memoized scans).
type FarmThroughputRow struct {
	Workers int
	Jobs    int

	ColdSeconds float64
	WarmSeconds float64
	// Jobs per wall-clock second in each round.
	ColdJobsPerSec float64
	WarmJobsPerSec float64
	// WarmSpeedup is the warm-over-cold wall-clock ratio — the cache's
	// contribution at a fixed worker count.
	WarmSpeedup float64

	// Warm-round cache behaviour.
	WarmHitRate  float64 // scan-cache hit fraction in [0,1]
	WarmScansRun uint64  // scans actually executed in the warm round
	WarmHintHits uint64
	ColdScansRun uint64
	ColdScanTime time.Duration
	WarmScanTime time.Duration
}

// FarmThroughput runs the batch matrix through farms with the given
// worker counts, measuring cold and warm throughput and cache
// behaviour. Unlike the figure experiments this measures wall-clock
// time of the protection pipeline itself, so the numbers vary by host;
// the invariants (warm round runs zero scans, output determinism) are
// enforced by tests, not here.
func FarmThroughput(workerCounts []int, modes []dyngen.Mode) ([]FarmThroughputRow, error) {
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4, 8}
	}
	jobs := FarmMatrix(modes)
	var rows []FarmThroughputRow
	for _, w := range workerCounts {
		f := farm.New(farm.Config{Workers: w})
		cold, coldDur, err := farmRound(f, jobs)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("farm experiment (workers=%d, cold): %w", w, err)
		}
		warmEnd, warmDur, err := farmRound(f, jobs)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("farm experiment (workers=%d, warm): %w", w, err)
		}
		f.Close()
		warm := warmEnd.Delta(cold)

		row := FarmThroughputRow{
			Workers:        w,
			Jobs:           len(jobs),
			ColdSeconds:    coldDur.Seconds(),
			WarmSeconds:    warmDur.Seconds(),
			ColdJobsPerSec: float64(len(jobs)) / coldDur.Seconds(),
			WarmJobsPerSec: float64(len(jobs)) / warmDur.Seconds(),
			WarmHitRate:    warm.ScanHitRate(),
			WarmScansRun:   warm.ScanMisses,
			WarmHintHits:   warm.HintHits,
			ColdScansRun:   cold.ScanMisses,
			ColdScanTime:   cold.ScanTime,
			WarmScanTime:   warm.ScanTime,
		}
		if warmDur > 0 {
			row.WarmSpeedup = coldDur.Seconds() / warmDur.Seconds()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// farmRound submits every job of the matrix and waits for all of them,
// returning the farm's cumulative stats and the round's wall time.
func farmRound(f *farm.Farm, jobs []FarmJob) (farm.Stats, time.Duration, error) {
	ctx := context.Background()
	start := time.Now()
	futures := make([]*farm.Job, len(jobs))
	for i, jb := range jobs {
		j, err := f.Submit(ctx, jb.Name, jb.Build(), jb.Opts)
		if err != nil {
			return farm.Stats{}, 0, err
		}
		futures[i] = j
	}
	for i, j := range futures {
		res, err := j.Wait(ctx)
		if err != nil {
			return farm.Stats{}, 0, err
		}
		if res.Err != nil {
			return farm.Stats{}, 0, fmt.Errorf("job %s: %w", jobs[i].Name, res.Err)
		}
	}
	return f.Stats(), time.Since(start), nil
}
