// Package experiment regenerates the paper's evaluation: Figure 6
// (protectable code bytes per rewriting rule), Figures 5a/5b (function
// chain slowdown and whole-program overhead per hardening strategy),
// the §V-C µ-chain ablation, and the §VI security matrix. The
// cmd/parallax-bench tool and the repository benchmarks print these as
// tables; EXPERIMENTS.md records paper-versus-measured values.
//
// Cost numbers come from the emulator's deterministic cycle model, so
// the figures are reproducible bit for bit across hosts.
package experiment

import (
	"fmt"

	"parallax/internal/codegen"
	"parallax/internal/core"
	"parallax/internal/corpus"
	"parallax/internal/dyngen"
	"parallax/internal/emu"
	"parallax/internal/image"
	"parallax/internal/rewrite"
	"parallax/internal/x86"
)

// Fig6Row is one program's protectability measurement (Figure 6).
type Fig6Row struct {
	Program   string
	TextBytes int
	// Percent of text bytes protectable per rule, and by any rule.
	// The plain columns use strict (decode-verified) accounting; the
	// Reach columns use the paper-comparable compositional accounting.
	Existing     float64
	FarRet       float64
	ImmMod       float64
	JumpMod      float64
	Any          float64
	ImmModReach  float64
	JumpModReach float64
	AnyReach     float64
}

// Fig6 measures protectable code bytes for every corpus program.
func Fig6() ([]Fig6Row, error) {
	var rows []Fig6Row
	for _, p := range corpus.All() {
		img, err := codegen.Build(p.Build(), image.Layout{})
		if err != nil {
			return nil, fmt.Errorf("experiment: building %s: %w", p.Name, err)
		}
		rep, err := rewrite.Measure(img)
		if err != nil {
			return nil, fmt.Errorf("experiment: measuring %s: %w", p.Name, err)
		}
		rows = append(rows, Fig6Row{
			Program:      p.Name,
			TextBytes:    rep.TextBytes,
			Existing:     rep.Percent(rewrite.RuleExisting),
			FarRet:       rep.Percent(rewrite.RuleFarRet),
			ImmMod:       rep.Percent(rewrite.RuleImmMod),
			JumpMod:      rep.Percent(rewrite.RuleJumpMod),
			Any:          rep.AnyPercent(),
			ImmModReach:  rep.PercentReach(rewrite.RuleImmMod),
			JumpModReach: rep.PercentReach(rewrite.RuleJumpMod),
			AnyReach:     rep.AnyReachPercent(),
		})
	}
	return rows, nil
}

// Fig5Row is one (program, hardening strategy) measurement: the chain
// slowdown (Figure 5a) and whole-program overhead (Figure 5b).
type Fig5Row struct {
	Program string
	Mode    string
	// NativePerCall / ChainPerCall are modeled cycles per invocation
	// of the verification function before and after translation.
	NativePerCall float64
	ChainPerCall  float64
	Slowdown      float64
	// OverheadPct is the whole-program cycle overhead.
	OverheadPct float64
	Calls       uint64
}

// Fig5Modes are the paper's four hardening strategies in Figure 5.
func Fig5Modes() []dyngen.Mode {
	return []dyngen.Mode{dyngen.ModeStatic, dyngen.ModeXor, dyngen.ModeRC4, dyngen.ModeProb}
}

// ModeLabel renders a mode as the paper names it.
func ModeLabel(m dyngen.Mode) string {
	if m == dyngen.ModeStatic {
		return "cleartext"
	}
	return m.String()
}

// Fig5 measures chain slowdown and program overhead for every corpus
// program under each hardening strategy.
func Fig5(modes []dyngen.Mode) ([]Fig5Row, error) {
	var rows []Fig5Row
	for _, p := range corpus.All() {
		base, err := measureBaseline(p)
		if err != nil {
			return nil, err
		}
		for _, mode := range modes {
			row, err := measureMode(p, base, mode, false)
			if err != nil {
				return nil, fmt.Errorf("experiment: %s/%v: %w", p.Name, mode, err)
			}
			rows = append(rows, row.Fig5Row)
		}
	}
	return rows, nil
}

// MuRow is the §V-C ablation: µ-chains versus function chains.
type MuRow struct {
	Program      string
	FuncPerCall  float64
	MuPerCall    float64
	Ratio        float64
	FuncChainLen int
	MuChainLen   int
}

// MuAblation compares instruction-level and function-level
// verification on every corpus program.
func MuAblation() ([]MuRow, error) {
	var rows []MuRow
	for _, p := range corpus.All() {
		base, err := measureBaseline(p)
		if err != nil {
			return nil, err
		}
		fn, err := measureMode(p, base, dyngen.ModeStatic, false)
		if err != nil {
			return nil, err
		}
		mu, err := measureMode(p, base, dyngen.ModeStatic, true)
		if err != nil {
			return nil, err
		}
		rows = append(rows, MuRow{
			Program:      p.Name,
			FuncPerCall:  fn.ChainPerCall,
			MuPerCall:    mu.ChainPerCall,
			Ratio:        mu.ChainPerCall / fn.ChainPerCall,
			FuncChainLen: fn.chainWords,
			MuChainLen:   mu.chainWords,
		})
	}
	return rows, nil
}

// baselineRun holds the unprotected measurements of one program.
type baselineRun struct {
	totalCycles   uint64
	nativePerCall float64
	calls         uint64
}

// measureBaseline builds and profiles the unprotected program,
// attributing cycles to the verification candidate.
func measureBaseline(p corpus.Program) (*baselineRun, error) {
	m := p.Build()
	img, err := codegen.Build(m, image.Layout{})
	if err != nil {
		return nil, err
	}
	cpu, err := emu.LoadImage(img)
	if err != nil {
		return nil, err
	}
	cpu.EnableProfile()
	cpu.OS = emu.NewOS(p.Stdin)
	if err := cpu.Run(); err != nil {
		return nil, fmt.Errorf("baseline run of %s: %w", p.Name, err)
	}

	sym, err := img.Lookup(p.VerifyFunc)
	if err != nil {
		return nil, fmt.Errorf("baseline of %s: %w", p.Name, err)
	}
	inside := AttribCycles(img, cpu.Profile(), sym.Addr, sym.Addr+sym.Size)
	calls := cpu.Profile()[sym.Addr]
	if calls == 0 {
		return nil, fmt.Errorf("verification function %s never ran", p.VerifyFunc)
	}
	return &baselineRun{
		totalCycles:   cpu.Cycles,
		nativePerCall: float64(inside) / float64(calls),
		calls:         calls,
	}, nil
}

// measureMode protects the program under one strategy and derives the
// per-call chain cost from the whole-program cycle delta:
//
//	chainPerCall = nativePerCall + (protCycles - baseCycles) / calls
//
// (the loader, decoder and chain execution are all attributed to the
// call, and the small §IV-B2 rewrite overhead on other code is
// conservatively included).
func measureMode(p corpus.Program, base *baselineRun, mode dyngen.Mode, mu bool) (*fig5Row2, error) {
	prot, err := core.Protect(p.Build(), core.Options{
		VerifyFuncs: []string{p.VerifyFunc},
		ChainMode:   mode,
		MuChains:    mu,
		Seed:        0x1234ABCD,
	})
	if err != nil {
		return nil, err
	}
	cpu, err := emu.LoadImage(prot.Image)
	if err != nil {
		return nil, err
	}
	cpu.OS = emu.NewOS(p.Stdin)
	if err := cpu.Run(); err != nil {
		return nil, fmt.Errorf("protected run: %w", err)
	}

	delta := float64(int64(cpu.Cycles) - int64(base.totalCycles))
	chainPerCall := base.nativePerCall + delta/float64(base.calls)
	row := &fig5Row2{
		Fig5Row: Fig5Row{
			Program:       p.Name,
			Mode:          ModeLabel(mode),
			NativePerCall: base.nativePerCall,
			ChainPerCall:  chainPerCall,
			Slowdown:      chainPerCall / base.nativePerCall,
			OverheadPct:   100 * delta / float64(base.totalCycles),
			Calls:         base.calls,
		},
		chainWords: len(prot.Chains[p.VerifyFunc].Words),
	}
	return row, nil
}

type fig5Row2 struct {
	Fig5Row
	chainWords int
}

// AttribCycles sums the modeled cost of profiled instructions within
// [lo, hi): per-address execution counts times the static cost of the
// instruction found there.
func AttribCycles(img *image.Image, prof map[uint32]uint64, lo, hi uint32) uint64 {
	text := img.Text()
	var total uint64
	for addr, hits := range prof {
		if addr < lo || addr >= hi || !text.Contains(addr) {
			continue
		}
		inst, err := x86.Decode(text.Data[addr-text.Addr:], addr)
		if err != nil {
			continue
		}
		total += hits * emu.InstCost(&inst)
	}
	return total
}

// Fig5ForProgram measures one program under the given strategies
// (single-program variant of Fig5, used by the benchmarks).
func Fig5ForProgram(p corpus.Program, modes []dyngen.Mode) ([]Fig5Row, error) {
	base, err := measureBaseline(p)
	if err != nil {
		return nil, err
	}
	var rows []Fig5Row
	for _, mode := range modes {
		row, err := measureMode(p, base, mode, false)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row.Fig5Row)
	}
	return rows, nil
}

// MuAblationForProgram is the single-program §V-C ablation.
func MuAblationForProgram(p corpus.Program) (*MuRow, error) {
	base, err := measureBaseline(p)
	if err != nil {
		return nil, err
	}
	fn, err := measureMode(p, base, dyngen.ModeStatic, false)
	if err != nil {
		return nil, err
	}
	mu, err := measureMode(p, base, dyngen.ModeStatic, true)
	if err != nil {
		return nil, err
	}
	return &MuRow{
		Program:      p.Name,
		FuncPerCall:  fn.ChainPerCall,
		MuPerCall:    mu.ChainPerCall,
		Ratio:        mu.ChainPerCall / fn.ChainPerCall,
		FuncChainLen: fn.chainWords,
		MuChainLen:   mu.chainWords,
	}, nil
}
