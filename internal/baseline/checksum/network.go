package checksum

import (
	"encoding/binary"
	"fmt"
	"sort"

	"parallax/internal/image"
	"parallax/internal/ir"
)

// Network configures a checker network composed over another defense
// (the paper's §VI-C): instead of splitting the whole text into equal
// chunks, each checker verifies a table of disjoint [lo, hi) intervals
// — the cold regions a Parallax chain never guards. The tables and
// expected hashes live in .data, so installing them after the ROP
// protection's layout has converged perturbs nothing the chains (or
// the checkers themselves) read.
type Network struct {
	// Checkers is the checker-routine count (below 1 means 3).
	Checkers int
	// Slots is the interval capacity of each checker's table (below 1
	// means 16). The table global is sized at build time, so Slots is
	// part of the module's layout; regions beyond Checkers*Slots are
	// dropped largest-last and reported in NetworkStats.
	Slots int
	// MinRegion drops cold runs shorter than this many bytes (below 1
	// means 16) — tiny gaps between gadgets aren't worth a table slot.
	MinRegion int
}

func (n Network) withDefaults() Network {
	if n.Checkers < 1 {
		n.Checkers = 3
	}
	if n.Slots < 1 {
		n.Slots = 16
	}
	if n.MinRegion < 1 {
		n.MinRegion = 16
	}
	return n
}

// NetworkStats reports what a composed checker network covers.
type NetworkStats struct {
	Checkers       int    `json:"checkers"`
	Regions        int    `json:"regions"`
	CoveredBytes   uint32 `json:"covered_bytes"`
	DroppedRegions int    `json:"dropped_regions"`
	DroppedBytes   uint32 `json:"dropped_bytes"`
}

func netTabSym(i int) string  { return fmt.Sprintf("..cs.ntab%d", i) }
func netWantSym(i int) string { return fmt.Sprintf("..cs.nwant%d", i) }
func netCheckerName(i int) string {
	return fmt.Sprintf("..cs.net%d", i)
}

// netStartName wraps the protected entry with the network's checkers.
const netStartName = "..cs.netstart"

// InjectNetwork appends the checker network's functions and table
// globals to m and wraps its entry, BEFORE any layout work: the
// checkers' sizes are fixed (tables are Slots-sized regardless of how
// many intervals install later), so a protection fixpoint over the
// combined module converges exactly as it would without them.
//
// The injected network is installed empty: every table holds zero
// intervals and every expected hash is FNV-1a's basis (the hash of
// nothing), so the module's observable behavior is unchanged until
// InstallNetwork assigns real regions.
func InjectNetwork(m *ir.Module, n Network) error {
	n = n.withDefaults()
	entry := m.Entry
	if entry == "" {
		if len(m.Funcs) == 0 {
			return fmt.Errorf("checksum: inject network: empty module")
		}
		entry = m.Funcs[0].Name
	}
	basis := make([]byte, 4)
	binary.LittleEndian.PutUint32(basis, fnvBasis)
	for i := 0; i < n.Checkers; i++ {
		m.Globals = append(m.Globals,
			// Explicitly zero-initialized (not Size) so the table lands
			// in writable-initialized .data, where InstallNetwork's
			// image.WriteAt can reach it.
			&ir.Global{Name: netTabSym(i), Init: make([]byte, 4+8*n.Slots)},
			&ir.Global{Name: netWantSym(i), Init: append([]byte(nil), basis...)},
		)
		m.Funcs = append(m.Funcs, buildNetChecker(i))
	}
	m.Funcs = append(m.Funcs, buildStartNamed(netStartName, entry, n.Checkers, netCheckerName))
	m.Entry = netStartName
	return ir.Validate(m)
}

// ColdRegions returns the maximal runs of text bytes not covered by
// guard, longest first (ties by address), dropping runs shorter than
// minLen. guard is the campaign-style guarded-byte map: chain gadget
// spans and serialized chain data.
func ColdRegions(img *image.Image, guard map[uint32]bool, minLen int) [][2]uint32 {
	if minLen < 1 {
		minLen = 1
	}
	text := img.Text()
	if text == nil {
		return nil
	}
	var out [][2]uint32
	runStart := uint32(0)
	inRun := false
	flush := func(end uint32) {
		if inRun && int(end-runStart) >= minLen {
			out = append(out, [2]uint32{runStart, end})
		}
		inRun = false
	}
	for a := text.Addr; a < text.End(); a++ {
		if guard[a] {
			flush(a)
			continue
		}
		if !inRun {
			runStart, inRun = a, true
		}
	}
	flush(text.End())
	sort.SliceStable(out, func(i, j int) bool {
		li, lj := out[i][1]-out[i][0], out[j][1]-out[j][0]
		if li != lj {
			return li > lj
		}
		return out[i][0] < out[j][0]
	})
	return out
}

// InstallNetwork assigns regions to the checkers injected by
// InjectNetwork and writes their tables and expected hashes into the
// linked image. Regions are taken longest-first into the
// Checkers*Slots capacity (maximizing covered bytes), each placed on
// the byte-least-loaded checker; what doesn't fit is reported dropped.
// All writes land in .data — the hashed text is never touched, so
// installation is safe after a converged protection fixpoint.
func InstallNetwork(img *image.Image, n Network, regions [][2]uint32) (*NetworkStats, error) {
	n = n.withDefaults()
	stats := &NetworkStats{Checkers: n.Checkers}
	assign := make([][][2]uint32, n.Checkers)
	load := make([]uint64, n.Checkers)
	for _, r := range regions {
		size := r[1] - r[0]
		best := -1
		for c := 0; c < n.Checkers; c++ {
			if len(assign[c]) >= n.Slots {
				continue
			}
			if best < 0 || load[c] < load[best] {
				best = c
			}
		}
		if best < 0 {
			stats.DroppedRegions++
			stats.DroppedBytes += size
			continue
		}
		assign[best] = append(assign[best], r)
		load[best] += uint64(size)
		stats.Regions++
		stats.CoveredBytes += size
	}

	text := img.Text()
	if text == nil {
		return nil, fmt.Errorf("checksum: install network: image has no text section")
	}
	for c := 0; c < n.Checkers; c++ {
		// Hash in address order — deterministic and cache-friendly for
		// the emulated checker walking its table front to back.
		sort.Slice(assign[c], func(i, j int) bool { return assign[c][i][0] < assign[c][j][0] })
		tab := make([]byte, 4+8*n.Slots)
		binary.LittleEndian.PutUint32(tab, uint32(len(assign[c])))
		h := fnvBasis
		for i, r := range assign[c] {
			if r[0] < text.Addr || r[1] > text.End() || r[0] >= r[1] {
				return nil, fmt.Errorf("checksum: install network: region [%#x,%#x) outside text", r[0], r[1])
			}
			binary.LittleEndian.PutUint32(tab[4+8*i:], r[0])
			binary.LittleEndian.PutUint32(tab[8+8*i:], r[1])
			h = hashRegion(h, text.Data[r[0]-text.Addr:r[1]-text.Addr])
		}
		want := make([]byte, 4)
		binary.LittleEndian.PutUint32(want, h)
		for _, w := range []struct {
			sym string
			b   []byte
		}{{netTabSym(c), tab}, {netWantSym(c), want}} {
			sym, err := img.Lookup(w.sym)
			if err != nil {
				return nil, fmt.Errorf("checksum: install network checker %d: %w", c, err)
			}
			if err := img.WriteAt(sym.Addr, w.b); err != nil {
				return nil, err
			}
		}
	}
	return stats, nil
}

// hashRegion folds b into h dword-at-a-time with a byte tail —
// FNV-1a over 32-bit little-endian words rather than bytes. The word
// granularity is what keeps a composed campaign affordable: the
// emulated checker spends ~10 instructions per dword instead of per
// byte, a 4x cut on megabyte cold sections. buildNetChecker emits
// exactly this fold; the two must stay in lockstep.
func hashRegion(h uint32, b []byte) uint32 {
	i := 0
	for ; i+4 <= len(b); i += 4 {
		h = (h ^ binary.LittleEndian.Uint32(b[i:])) * fnvPrime
	}
	for ; i < len(b); i++ {
		h = (h ^ uint32(b[i])) * fnvPrime
	}
	return h
}

// buildNetChecker emits the table-driven checker i: for each of the
// count intervals in its table, hash text[lo,hi) with FNV-1a dword
// loads plus a byte tail (data reads of code — the hashRegion fold),
// chaining one hash across all intervals; exit(TamperStatus) when it
// misses the expected value.
func buildNetChecker(i int) *ir.Func {
	fb := ir.NewFunc(netCheckerName(i), 0)
	tab := fb.Addr(netTabSym(i), 0)
	count := fb.Load(tab)
	want := fb.Load(fb.Addr(netWantSym(i), 0))
	h := fb.Const(fnvBasisI32)
	one := fb.Const(1)
	four := fb.Const(4)
	eight := fb.Const(8)
	prime := fb.Const(int32(fnvPrime))
	j := fb.Const(0)
	fb.Jmp("outer")

	fb.Block("outer")
	c := fb.Cmp(ir.ULt, j, count)
	fb.Br(c, "entry.load", "check")

	fb.Block("entry.load")
	off := fb.Add(four, fb.Mul(j, eight))
	lo := fb.Load(fb.Add(tab, off))
	hi := fb.Load(fb.Add(tab, fb.Add(off, four)))
	p := fb.Copy(lo)
	fb.Jmp("inner")

	fb.Block("inner")
	p4 := fb.Add(p, four)
	ci := fb.Cmp(ir.ULe, p4, hi)
	fb.Br(ci, "inner.word", "tail")

	fb.Block("inner.word")
	w := fb.Load(p)
	fb.Assign(h, fb.Mul(fb.Xor(h, w), prime))
	fb.Assign(p, p4)
	fb.Jmp("inner")

	fb.Block("tail")
	ct := fb.Cmp(ir.ULt, p, hi)
	fb.Br(ct, "tail.body", "outer.next")

	fb.Block("tail.body")
	b := fb.Load8(p)
	fb.Assign(h, fb.Mul(fb.Xor(h, b), prime))
	fb.Assign(p, fb.Add(p, one))
	fb.Jmp("tail")

	fb.Block("outer.next")
	fb.Assign(j, fb.Add(j, one))
	fb.Jmp("outer")

	fb.Block("check")
	ok := fb.Cmp(ir.Eq, h, want)
	fb.Br(ok, "pass", "tamper")

	fb.Block("tamper")
	st := fb.Const(TamperStatus)
	fb.Syscall(1, st) // exit
	fb.RetVoid()      // unreachable

	fb.Block("pass")
	fb.RetVoid()
	return fb.Fn()
}

// buildStartNamed is buildStart with a caller-chosen wrapper name and
// checker-name scheme, shared by the whole-text and network variants.
func buildStartNamed(name, entry string, n int, checker func(int) string) *ir.Func {
	fb := ir.NewFunc(name, 0)
	for i := 0; i < n; i++ {
		fb.Call(checker(i))
	}
	fb.Ret(fb.Call(entry))
	return fb.Fn()
}
