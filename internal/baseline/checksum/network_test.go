package checksum_test

import (
	"bytes"
	"context"
	"testing"

	"parallax/internal/attack"
	"parallax/internal/baseline/checksum"
	"parallax/internal/core"
	"parallax/internal/corpus/gen"
	"parallax/internal/image"
)

// protectSmall builds the small generated family (seed 1) protected
// with the given composed-checker count (0 = plain Parallax).
func protectSmall(t *testing.T, checkers int) *core.Protected {
	t.Helper()
	f, err := gen.FamilyByName("small")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := gen.FamilyProgram(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.Protect(prog.Build(), core.Options{
		VerifyFuncs: []string{prog.VerifyFunc}, ComposeChecksum: checkers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// coldVictim picks a byte in the middle of a long unguarded text run.
func coldVictim(t *testing.T, p *core.Protected) uint32 {
	t.Helper()
	guard := p.GuardedByteMap()
	text := p.Image.Text()
	for a := text.Addr; a < text.End(); a++ {
		if guard[a] {
			continue
		}
		run := uint32(0)
		for b := a; b < text.End() && !guard[b]; b++ {
			run++
		}
		if run > 200 {
			return a + run/2
		}
		a += run
	}
	t.Fatal("no long unguarded run in text")
	return 0
}

func flipTextByte(t *testing.T, img *image.Image, addr uint32) *image.Image {
	t.Helper()
	mut := img.Clone()
	text := mut.Text()
	text.Data[addr-text.Addr] ^= 0xFF
	return mut
}

func serialize(t *testing.T, img *image.Image) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := img.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestComposedBehaviorUnchanged pins the §VI-C composition's
// transparency: the composed image's observable behavior (exit status,
// stdout) matches the plain protection under both workloads — all the
// checkers add is the startup hashing pass. This is also the emulated
// checker's hash-lockstep gate: if buildNetChecker's fold ever
// diverged from the install-time hashRegion, the clean composed run
// would exit TamperStatus here.
func TestComposedBehaviorUnchanged(t *testing.T) {
	plain := protectSmall(t, 0)
	comp := protectSmall(t, 4)
	if comp.Checksum == nil || comp.Checksum.Regions == 0 || comp.Checksum.CoveredBytes == 0 {
		t.Fatalf("composition installed nothing: %+v", comp.Checksum)
	}
	for _, wl := range []struct {
		name  string
		stdin []byte
	}{{"idle", nil}, {"heavy", gen.HeavyStdin()}} {
		p := attack.Run(context.Background(), plain.Image, wl.stdin)
		c := attack.Run(context.Background(), comp.Image, wl.stdin)
		if p.Err != nil || c.Err != nil {
			t.Fatalf("%s: clean runs failed: %v / %v", wl.name, p.Err, c.Err)
		}
		if p.Status != c.Status || p.Stdout != c.Stdout {
			t.Errorf("%s: composed behavior diverged: status %d vs %d", wl.name, p.Status, c.Status)
		}
		if c.Icount <= p.Icount {
			t.Errorf("%s: composed icount %d not above plain %d (checkers didn't run?)", wl.name, c.Icount, p.Icount)
		}
	}
}

// TestComposedDetectsColdTamper is the blind-spot fix itself: a byte
// flip in unguarded cold text is invisible to the chains under plain
// Parallax but exits TamperStatus under the composed network.
func TestComposedDetectsColdTamper(t *testing.T) {
	comp := protectSmall(t, 4)
	victim := coldVictim(t, comp)
	res := attack.Run(context.Background(), flipTextByte(t, comp.Image, victim), nil)
	if res.Err != nil {
		t.Fatalf("composed cold tamper run failed: %v", res.Err)
	}
	if res.Status != checksum.TamperStatus {
		t.Errorf("composed cold tamper @%#x: status %d, want TamperStatus %d",
			victim, res.Status, checksum.TamperStatus)
	}
}

// TestComposedDeterministic pins the composed build: two Protect runs
// with identical inputs serialize to identical bytes (the farm cache
// and golden campaigns depend on it).
func TestComposedDeterministic(t *testing.T) {
	a := protectSmall(t, 4)
	b := protectSmall(t, 4)
	if !bytes.Equal(serialize(t, a.Image), serialize(t, b.Image)) {
		t.Error("composed protection is not deterministic")
	}
	if *a.Checksum != *b.Checksum {
		t.Errorf("composed stats differ: %+v vs %+v", *a.Checksum, *b.Checksum)
	}
}

// TestColdRegionsProperties checks the region extraction invariants on
// a real protected image: regions are unguarded, inside text, disjoint,
// length-sorted, and at least minLen long.
func TestColdRegionsProperties(t *testing.T) {
	plain := protectSmall(t, 0)
	guard := plain.GuardedByteMap()
	const minLen = 16
	regions := checksum.ColdRegions(plain.Image, guard, minLen)
	if len(regions) == 0 {
		t.Fatal("no cold regions on a protected image")
	}
	text := plain.Image.Text()
	seen := make(map[uint32]bool)
	prevLen := uint32(1 << 31)
	for _, r := range regions {
		if r[0] >= r[1] || r[0] < text.Addr || r[1] > text.End() {
			t.Fatalf("region [%#x,%#x) outside text", r[0], r[1])
		}
		n := r[1] - r[0]
		if n < minLen || n > prevLen {
			t.Fatalf("region [%#x,%#x): bad length %d (prev %d)", r[0], r[1], n, prevLen)
		}
		prevLen = n
		for a := r[0]; a < r[1]; a++ {
			if guard[a] {
				t.Fatalf("region [%#x,%#x) overlaps guarded byte %#x", r[0], r[1], a)
			}
			if seen[a] {
				t.Fatalf("regions overlap at %#x", a)
			}
			seen[a] = true
		}
	}
}

// TestInstallNetworkDrops pins the capacity accounting: a deliberately
// tiny network reports exactly what it had to drop, covered plus
// dropped equals the input, and the kept regions still detect.
func TestInstallNetworkDrops(t *testing.T) {
	f, err := gen.FamilyByName("small")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := gen.FamilyProgram(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := prog.Build()
	net := checksum.Network{Checkers: 1, Slots: 2}
	if err := checksum.InjectNetwork(m, net); err != nil {
		t.Fatal(err)
	}
	comp, err := core.Protect(m, core.Options{VerifyFuncs: []string{prog.VerifyFunc}})
	if err != nil {
		t.Fatal(err)
	}
	regions := checksum.ColdRegions(comp.Image, comp.GuardedByteMap(), 16)
	if len(regions) <= 2 {
		t.Fatalf("want more than 2 regions to force drops, got %d", len(regions))
	}
	stats, err := checksum.InstallNetwork(comp.Image, net, regions)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Regions != 2 || stats.DroppedRegions != len(regions)-2 {
		t.Errorf("stats %+v: want 2 kept, %d dropped", *stats, len(regions)-2)
	}
	var total uint32
	for _, r := range regions {
		total += r[1] - r[0]
	}
	if stats.CoveredBytes+stats.DroppedBytes != total {
		t.Errorf("covered %d + dropped %d != total %d", stats.CoveredBytes, stats.DroppedBytes, total)
	}
	res := attack.Run(context.Background(), comp.Image, nil)
	if res.Err != nil || res.Status == checksum.TamperStatus {
		t.Fatalf("tiny network clean run failed: status %d err %v", res.Status, res.Err)
	}
	mid := regions[0][0] + (regions[0][1]-regions[0][0])/2
	tampered := attack.Run(context.Background(), flipTextByte(t, comp.Image, mid), nil)
	if tampered.Status != checksum.TamperStatus {
		t.Errorf("tamper inside covered region: status %d, want %d", tampered.Status, checksum.TamperStatus)
	}
}
