// Package checksum implements the classic self-checksumming baseline
// (after Chang & Atallah's cross-verifying checksum networks): checker
// routines read the program's own text section as data and compare
// FNV-1a hashes against expected values embedded at protect time.
//
// The baseline exists to reproduce the paper's security argument: it
// detects static patching, but the Wurster et al. split-cache attack
// defeats it completely — which Parallax, reading nothing, is immune
// to.
package checksum

import (
	"encoding/binary"
	"fmt"

	"parallax/internal/codegen"
	"parallax/internal/image"
	"parallax/internal/ir"
)

// TamperStatus is the exit status of the tamper response.
const TamperStatus = 86

// fnv32 constants.
const (
	fnvBasis uint32 = 2166136261
	fnvPrime uint32 = 16777619
	// fnvBasisI32 is the basis reinterpreted as a signed immediate.
	fnvBasisI32 int32 = -2128831035
)

// Options configures the checksum network.
type Options struct {
	// Checkers is the network size: the text is split into this many
	// regions, each verified by its own checker; the checkers' own
	// code falls inside regions covered by other checkers
	// (cross-verification). Values below 1 mean 3.
	Checkers int
	// Layout overrides the link layout.
	Layout image.Layout
}

// Protected is a checksum-protected build.
type Protected struct {
	Image    *image.Image
	Baseline *image.Image
	Checkers int
	// Regions records [lo, hi) per checker for analysis.
	Regions [][2]uint32
}

func loSym(i int) string   { return fmt.Sprintf("..cs.lo%d", i) }
func hiSym(i int) string   { return fmt.Sprintf("..cs.hi%d", i) }
func wantSym(i int) string { return fmt.Sprintf("..cs.want%d", i) }
func checkerName(i int) string {
	return fmt.Sprintf("..cs.check%d", i)
}

// Protect builds a module with a startup checksum network over its
// text section.
func Protect(m *ir.Module, opts Options) (*Protected, error) {
	if opts.Checkers < 1 {
		opts.Checkers = 3
	}
	baseline, err := codegen.Build(m, opts.Layout)
	if err != nil {
		return nil, err
	}

	work := m.Clone()
	entry := work.Entry
	if entry == "" {
		entry = work.Funcs[0].Name
	}
	for i := 0; i < opts.Checkers; i++ {
		work.Globals = append(work.Globals,
			&ir.Global{Name: loSym(i), Init: make([]byte, 4)},
			&ir.Global{Name: hiSym(i), Init: make([]byte, 4)},
			&ir.Global{Name: wantSym(i), Init: make([]byte, 4)},
		)
		work.Funcs = append(work.Funcs, buildChecker(i))
	}
	work.Funcs = append(work.Funcs, buildStart(entry, opts.Checkers))
	work.Entry = "..cs.start"
	if err := ir.Validate(work); err != nil {
		return nil, err
	}

	img, err := codegen.Build(work, opts.Layout)
	if err != nil {
		return nil, err
	}

	// Split the text into regions and embed bounds and expected
	// hashes. The expected values live in .data, so writing them does
	// not perturb what is being hashed.
	text := img.Text()
	p := &Protected{Image: img, Baseline: baseline, Checkers: opts.Checkers}
	chunk := (int(text.Size) + opts.Checkers - 1) / opts.Checkers
	for i := 0; i < opts.Checkers; i++ {
		lo := text.Addr + uint32(i*chunk)
		hi := lo + uint32(chunk)
		if hi > text.End() {
			hi = text.End()
		}
		want := Hash(text.Data[lo-text.Addr : hi-text.Addr])
		for _, w := range []struct {
			sym string
			v   uint32
		}{{loSym(i), lo}, {hiSym(i), hi}, {wantSym(i), want}} {
			sym, err := img.Lookup(w.sym)
			if err != nil {
				return nil, fmt.Errorf("checksum: install checker %d: %w", i, err)
			}
			buf := make([]byte, 4)
			binary.LittleEndian.PutUint32(buf, w.v)
			if err := img.WriteAt(sym.Addr, buf); err != nil {
				return nil, err
			}
		}
		p.Regions = append(p.Regions, [2]uint32{lo, hi})
	}
	return p, nil
}

// Hash is the checker's FNV-1a, exposed so tests can cross-check.
func Hash(b []byte) uint32 {
	h := fnvBasis
	for _, c := range b {
		h = (h ^ uint32(c)) * fnvPrime
	}
	return h
}

// buildChecker emits: hash text[lo,hi) via byte loads (data reads of
// code!), exit(TamperStatus) on mismatch.
func buildChecker(i int) *ir.Func {
	fb := ir.NewFunc(checkerName(i), 0)
	lo := fb.Load(fb.Addr(loSym(i), 0))
	hi := fb.Load(fb.Addr(hiSym(i), 0))
	want := fb.Load(fb.Addr(wantSym(i), 0))
	h := fb.Const(fnvBasisI32)
	p := fb.Copy(lo)
	one := fb.Const(1)
	prime := fb.Const(int32(fnvPrime))
	fb.Jmp("head")

	fb.Block("head")
	c := fb.Cmp(ir.ULt, p, hi)
	fb.Br(c, "body", "check")

	fb.Block("body")
	b := fb.Load8(p)
	fb.Assign(h, fb.Mul(fb.Xor(h, b), prime))
	fb.Assign(p, fb.Add(p, one))
	fb.Jmp("head")

	fb.Block("check")
	ok := fb.Cmp(ir.Eq, h, want)
	fb.Br(ok, "pass", "tamper")

	fb.Block("tamper")
	st := fb.Const(TamperStatus)
	fb.Syscall(1, st) // exit
	fb.RetVoid()      // unreachable

	fb.Block("pass")
	fb.RetVoid()
	return fb.Fn()
}

// buildStart wraps the original entry with the checker calls.
func buildStart(entry string, n int) *ir.Func {
	return buildStartNamed("..cs.start", entry, n, checkerName)
}
