package checksum

import (
	"context"
	"testing"

	"parallax/internal/attack"
	"parallax/internal/emu"
	"parallax/internal/ir"
)

// licenseModule: main computes a check over a built-in "key" and
// returns 7 on success, 13 on failure. The je guarding the result is
// the cracker's target.
func licenseModule(t *testing.T) *ir.Module {
	t.Helper()
	mb := ir.NewModule("license")
	mb.Global("key", []byte{0x21, 0x43, 0x65, 0x87})

	fb := mb.Func("validate", 0)
	k := fb.Load(fb.Addr("key", 0))
	magic := fb.Const(int32(0x87654321 - (1 << 32)))
	ok := fb.Cmp(ir.Eq, k, magic)
	fb.Br(ok, "good", "bad")
	fb.Block("good")
	fb.Ret(fb.Const(1))
	fb.Block("bad")
	fb.Ret(fb.Const(0))

	fb = mb.Func("main", 0)
	r := fb.Call("validate")
	zero := fb.Const(0)
	c := fb.Cmp(ir.Ne, r, zero)
	fb.Br(c, "licensed", "refused")
	fb.Block("licensed")
	fb.Ret(fb.Const(7))
	fb.Block("refused")
	fb.Ret(fb.Const(13))
	mb.SetEntry("main")
	return mb.MustBuild()
}

func TestChecksumCleanRun(t *testing.T) {
	m := licenseModule(t)
	p, err := Protect(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := attack.Run(context.Background(), p.Baseline, nil)
	got := attack.Run(context.Background(), p.Image, nil)
	if want.Err != nil || got.Err != nil {
		t.Fatalf("errors: baseline=%v protected=%v", want.Err, got.Err)
	}
	if got.Status != want.Status {
		t.Fatalf("status: protected=%d baseline=%d", got.Status, want.Status)
	}
}

func TestChecksumDetectsStaticPatch(t *testing.T) {
	m := licenseModule(t)
	p, err := Protect(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Crack: nop out four bytes at the start of validate (static
	// patching, as in software cracking).
	sym := p.Image.MustSymbol("validate")
	tampered := p.Image.Clone()
	if err := attack.NopOut(tampered, sym.Addr, 4); err != nil {
		t.Fatal(err)
	}
	res := attack.Run(context.Background(), tampered, nil)
	if res.Status != TamperStatus {
		t.Fatalf("status = %d (err=%v), want tamper response %d",
			res.Status, res.Err, TamperStatus)
	}
}

func TestChecksumCrossVerification(t *testing.T) {
	m := licenseModule(t)
	p, err := Protect(m, Options{Checkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Patch inside a checker's own code: some other checker's region
	// must cover it and trip.
	sym := p.Image.MustSymbol("..cs.check2")
	tampered := p.Image.Clone()
	orig, err := tampered.ReadAt(sym.Addr+8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := attack.PatchBytes(tampered, sym.Addr+8, []byte{orig[0] ^ 0xFF}); err != nil {
		t.Fatal(err)
	}
	res := attack.Run(context.Background(), tampered, nil)
	clean := attack.Run(context.Background(), p.Image, nil)
	// The checker's bytes are covered by the network: the tampered
	// binary must either trip the explicit response or malfunction
	// before producing the clean result (the patched checker may crash
	// first — also a tamper consequence).
	if res.Same(clean) {
		t.Fatalf("patching a checker went unnoticed: status=%d err=%v", res.Status, res.Err)
	}
}

// TestWursterDefeatsChecksumming is the Wurster et al. result: with the
// split-cache view, the patched code executes while every checksum
// still sees pristine bytes — the cracked binary runs as if untouched.
func TestWursterDefeatsChecksumming(t *testing.T) {
	m := licenseModule(t)
	p, err := Protect(m, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// The target: make validate return 1 unconditionally. Overlay its
	// body with "mov eax,1; leave; ret" — wait for the prologue to set
	// up, then the overlaid body runs. Simplest robust patch: overlay
	// the whole function with mov eax,1; ret.
	sym := p.Image.MustSymbol("validate")
	patch := []byte{0xB8, 0x01, 0x00, 0x00, 0x00, 0xC3} // mov eax,1; ret

	// First confirm the static version of this patch IS detected.
	static := p.Image.Clone()
	if err := attack.PatchBytes(static, sym.Addr, patch); err != nil {
		t.Fatal(err)
	}
	if res := attack.Run(context.Background(), static, nil); res.Status != TamperStatus {
		t.Fatalf("static patch undetected: %d", res.Status)
	}

	// Now the same patch through the split-cache view.
	cpu, err := emu.LoadImage(p.Image)
	if err != nil {
		t.Fatal(err)
	}
	cpu.OS = emu.NewOS(nil)
	attack.Wurster(cpu, sym.Addr, patch)
	if err := cpu.Run(); err != nil {
		t.Fatal(err)
	}
	if cpu.Status == TamperStatus {
		t.Fatal("checksumming detected the Wurster attack; the split view is broken")
	}
	if cpu.Status != 7 {
		t.Fatalf("status = %d, want the cracked 'licensed' result 7", cpu.Status)
	}
}

func TestHashKnownAnswer(t *testing.T) {
	// FNV-1a reference values.
	if got := Hash(nil); got != 2166136261 {
		t.Errorf("Hash(nil) = %d", got)
	}
	if got := Hash([]byte("a")); got != 0xE40C292C {
		t.Errorf("Hash(a) = %#x, want 0xE40C292C", got)
	}
	if got := Hash([]byte("foobar")); got != 0xBF9CF968 {
		t.Errorf("Hash(foobar) = %#x, want 0xBF9CF968", got)
	}
}
