package oh

import (
	"context"
	"testing"

	"parallax/internal/attack"
	"parallax/internal/emu"
	"parallax/internal/image"
	"parallax/internal/ir"
)

// deterministicModule: main calls score() on fixed data; score's state
// is the same every run — the case OH is built for.
func deterministicModule(t *testing.T) *ir.Module {
	t.Helper()
	mb := ir.NewModule("det")

	fb := mb.Func("score", 1)
	x := fb.Param(0)
	acc := fb.Const(1)
	i := fb.Const(0)
	fb.Jmp("head")
	fb.Block("head")
	lim := fb.Const(6)
	c := fb.Cmp(ir.ULt, i, lim)
	fb.Br(c, "body", "done")
	fb.Block("body")
	k := fb.Const(17)
	fb.Assign(acc, fb.Add(fb.Mul(acc, k), fb.Xor(x, i)))
	one := fb.Const(1)
	fb.Assign(i, fb.Add(i, one))
	fb.Jmp("head")
	fb.Block("done")
	fb.Ret(acc)

	fb = mb.Func("main", 0)
	v := fb.Call("score", fb.Const(5))
	mask := fb.Const(0xFF)
	fb.Ret(fb.And(v, mask))
	mb.SetEntry("main")
	return mb.MustBuild()
}

// nondetModule: the protected function's state depends on ptrace — the
// §VIII-C case OH cannot handle.
func nondetModule(t *testing.T) *ir.Module {
	t.Helper()
	mb := ir.NewModule("nondet")
	fb := mb.Func("antidebug", 0)
	req := fb.Const(0)
	r := fb.Syscall(26, req) // ptrace(TRACEME): 0 or -EPERM
	zero := fb.Const(0)
	bad := fb.Cmp(ir.Ne, r, zero)
	fb.Br(bad, "debugged", "clean")
	fb.Block("debugged")
	fb.Ret(fb.Const(1))
	fb.Block("clean")
	fb.Ret(fb.Const(0))

	fb = mb.Func("main", 0)
	d := fb.Call("antidebug")
	hundred := fb.Const(100)
	fb.Ret(fb.Add(d, hundred))
	mb.SetEntry("main")
	return mb.MustBuild()
}

func TestOHCleanAfterCalibration(t *testing.T) {
	m := deterministicModule(t)
	p, err := Protect(m, Options{Funcs: []string{"score"}})
	if err != nil {
		t.Fatal(err)
	}
	img, err := Calibrate(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := attack.Run(context.Background(), p.Baseline, nil)
	got := attack.Run(context.Background(), img, nil)
	if got.Err != nil || got.Status != want.Status {
		t.Fatalf("calibrated run: status=%d err=%v, want %d", got.Status, got.Err, want.Status)
	}
}

func TestOHDetectsSemanticTamper(t *testing.T) {
	m := deterministicModule(t)
	p, err := Protect(m, Options{Funcs: []string{"score"}})
	if err != nil {
		t.Fatal(err)
	}
	img, err := Calibrate(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Change a constant inside score: the computed state changes, so
	// the oblivious hash diverges from the calibrated values.
	sym := img.MustSymbol("score")
	tampered := img.Clone()
	patched := false
	raw, err := tampered.ReadAt(sym.Addr, sym.Size)
	if err != nil {
		t.Fatal(err)
	}
	// Find the mov dword [..], 17 and bump the immediate.
	for off := 0; off+8 < len(raw); off++ {
		if raw[off] == 0xC7 && raw[off+3] == 17 && raw[off+4] == 0 && raw[off+5] == 0 {
			if err := attack.PatchBytes(tampered, sym.Addr+uint32(off+3), []byte{18}); err != nil {
				t.Fatal(err)
			}
			patched = true
			break
		}
	}
	if !patched {
		t.Fatal("could not locate the constant to tamper")
	}
	res := attack.Run(context.Background(), tampered, nil)
	if res.Status != TamperStatus {
		t.Fatalf("status = %d (err=%v), want tamper response %d", res.Status, res.Err, TamperStatus)
	}
}

// TestOHImmuneToWurster: the split-cache attack is useless against OH —
// the overlaid code executes, its computed values change, and the hash
// check trips. (Contrast with the checksum baseline, which it defeats.)
func TestOHImmuneToWurster(t *testing.T) {
	m := deterministicModule(t)
	p, err := Protect(m, Options{Funcs: []string{"score"}})
	if err != nil {
		t.Fatal(err)
	}
	img, err := Calibrate(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	sym := img.MustSymbol("score")
	raw, err := img.ReadAt(sym.Addr, sym.Size)
	if err != nil {
		t.Fatal(err)
	}
	var overlayAddr uint32
	var overlay []byte
	for off := 0; off+8 < len(raw); off++ {
		if raw[off] == 0xC7 && raw[off+3] == 17 && raw[off+4] == 0 && raw[off+5] == 0 {
			overlayAddr = sym.Addr + uint32(off+3)
			overlay = []byte{18}
			break
		}
	}
	if overlay == nil {
		t.Fatal("could not locate the constant to overlay")
	}
	cpu, err := emu.LoadImage(img)
	if err != nil {
		t.Fatal(err)
	}
	cpu.OS = emu.NewOS(nil)
	attack.Wurster(cpu, overlayAddr, overlay)
	if err := cpu.Run(); err != nil {
		t.Fatal(err)
	}
	if cpu.Status != TamperStatus {
		t.Fatalf("status = %d, want OH to detect the overlaid execution (%d)",
			cpu.Status, TamperStatus)
	}
}

// TestOHFalseAlarmOnNondeterminism is §VIII-C: code whose state depends
// on a syscall cannot be protected — an environment not seen during
// calibration raises a false tamper alarm on an untampered binary.
func TestOHFalseAlarmOnNondeterminism(t *testing.T) {
	m := nondetModule(t)
	p, err := Protect(m, Options{Funcs: []string{"antidebug"}})
	if err != nil {
		t.Fatal(err)
	}
	// Calibrate in a clean environment (no debugger).
	img, err := Calibrate(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	clean := attack.Run(context.Background(), img, nil)
	if clean.Status != 100 {
		t.Fatalf("clean run status = %d (err=%v), want 100", clean.Status, clean.Err)
	}

	// Same untampered binary, but now a debugger is attached: ptrace
	// returns a different value, the hashed state differs, and OH cries
	// tamper even though nothing was modified.
	cpu, err := emu.LoadImage(img)
	if err != nil {
		t.Fatal(err)
	}
	cpu.OS = &emu.OS{DebuggerAttached: true}
	if err := cpu.Run(); err != nil {
		t.Fatal(err)
	}
	if cpu.Status != TamperStatus {
		t.Fatalf("status = %d, want false alarm %d — OH should be unable to "+
			"handle the non-deterministic input", cpu.Status, TamperStatus)
	}
}

// TestOHOverheadIsOnProtectedCode quantifies the paper's advantage 3:
// OH slows down the protected function itself.
func TestOHOverheadIsOnProtectedCode(t *testing.T) {
	m := deterministicModule(t)
	p, err := Protect(m, Options{Funcs: []string{"score"}})
	if err != nil {
		t.Fatal(err)
	}
	img, err := Calibrate(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	base := cycles(t, p.Baseline)
	inst := cycles(t, img)
	if inst <= base {
		t.Fatalf("instrumented cycles %d <= baseline %d; no interspersed cost?", inst, base)
	}
	t.Logf("OH whole-run cycles: baseline=%d instrumented=%d (%.2fx)",
		base, inst, float64(inst)/float64(base))
}

func cycles(t *testing.T, img *image.Image) uint64 {
	t.Helper()
	cpu, err := emu.LoadImage(img)
	if err != nil {
		t.Fatal(err)
	}
	cpu.OS = emu.NewOS(nil)
	if err := cpu.Run(); err != nil {
		t.Fatal(err)
	}
	return cpu.Cycles
}
