// Package oh implements a simplified oblivious hashing baseline
// (Chen et al. / Jacob et al.): protected functions are instrumented
// with hash updates over their computed values; at function exit the
// running hash must match one of the values recorded during a
// calibration (testing) run.
//
// The baseline reproduces the paper's comparison points:
//
//   - OH is immune to the Wurster attack (it never reads code bytes);
//   - OH cannot protect non-deterministic code — inputs outside the
//     calibration set raise false tamper alarms (§VIII-C);
//   - OH's overhead lands on the protected code itself, where Parallax
//     confines overhead to the verification code (§I, advantage 3).
package oh

import (
	"encoding/binary"
	"fmt"

	"parallax/internal/codegen"
	"parallax/internal/emu"
	"parallax/internal/image"
	"parallax/internal/ir"
)

// TamperStatus is the exit status of the tamper response.
const TamperStatus = 87

// Symbols of the instrumentation state.
const (
	tabSym  = "..oh.tab"  // count word + entries
	modeSym = "..oh.mode" // 1 = calibrating, 0 = enforcing
)

const checkFunc = "..oh.check"

// Options configures OH protection.
type Options struct {
	// Funcs are the functions to instrument.
	Funcs []string
	// TableCap bounds the calibration table; values below 1 mean 16.
	TableCap int
	// Layout overrides the link layout.
	Layout image.Layout
}

// Protected is an OH-instrumented build. Call Calibrate before use.
type Protected struct {
	Image    *image.Image
	Baseline *image.Image
	Funcs    []string
	tableCap int
}

// Protect instruments the named functions with interspersed hash
// updates and an exit check.
func Protect(m *ir.Module, opts Options) (*Protected, error) {
	if len(opts.Funcs) == 0 {
		return nil, fmt.Errorf("oh: no functions selected")
	}
	if opts.TableCap < 1 {
		opts.TableCap = 16
	}
	baseline, err := codegen.Build(m, opts.Layout)
	if err != nil {
		return nil, err
	}

	work := m.Clone()
	for _, fn := range opts.Funcs {
		f := work.Func(fn)
		if f == nil {
			return nil, fmt.Errorf("oh: function %q not in module", fn)
		}
		instrument(f)
	}
	work.Globals = append(work.Globals,
		&ir.Global{Name: tabSym, Init: make([]byte, 4+4*opts.TableCap)},
		&ir.Global{Name: modeSym, Init: []byte{1, 0, 0, 0}}, // starts calibrating
	)
	work.Funcs = append(work.Funcs, buildCheck(opts.TableCap))
	if err := ir.Validate(work); err != nil {
		return nil, err
	}
	img, err := codegen.Build(work, opts.Layout)
	if err != nil {
		return nil, err
	}
	return &Protected{
		Image:    img,
		Baseline: baseline,
		Funcs:    append([]string(nil), opts.Funcs...),
		tableCap: opts.TableCap,
	}, nil
}

// instrument interleaves hash updates with the function body: after
// every value-producing instruction, h = h*31 + value. The hash is
// checked at every return.
func instrument(f *ir.Func) {
	h := ir.Value(f.NumVals)
	f.NumVals++
	tmp := ir.Value(f.NumVals)
	f.NumVals++
	k31 := ir.Value(f.NumVals)
	f.NumVals++

	for bi, b := range f.Blocks {
		var out []ir.Inst
		if bi == 0 {
			out = append(out,
				ir.Inst{Kind: ir.OpConst, Dst: h, Imm: int32(2166136261 - (1 << 32))},
				ir.Inst{Kind: ir.OpConst, Dst: k31, Imm: 31},
			)
		}
		for _, in := range b.Insts {
			out = append(out, in)
			switch in.Kind {
			case ir.OpBin, ir.OpCmp, ir.OpLoad, ir.OpLoad8:
				// h = h*31 + dst — the oblivious hash of the execution
				// state, interspersed with the protected code.
				out = append(out,
					ir.Inst{Kind: ir.OpBin, Bin: ir.Mul, Dst: tmp, A: h, B: k31},
					ir.Inst{Kind: ir.OpBin, Bin: ir.Add, Dst: h, A: tmp, B: in.Dst},
				)
			}
		}
		if b.Term.Kind == ir.TermRet {
			out = append(out, ir.Inst{
				Kind: ir.OpCall, Dst: tmp, Callee: checkFunc, Args: []ir.Value{h},
			})
		}
		b.Insts = out
	}
}

// buildCheck emits the table membership check / calibration recorder.
func buildCheck(capacity int) *ir.Func {
	fb := ir.NewFunc(checkFunc, 1)
	h := fb.Param(0)
	mode := fb.Load(fb.Addr(modeSym, 0))
	one := fb.Const(1)
	four := fb.Const(4)
	tab := fb.Addr(tabSym, 0)
	count := fb.Load(tab)
	entries := fb.Add(tab, four)

	// Scan the table for h (both modes need it: calibration dedupes).
	i := fb.Const(0)
	fb.Jmp("scan.head")
	fb.Block("scan.head")
	c := fb.Cmp(ir.ULt, i, count)
	fb.Br(c, "scan.body", "miss")
	fb.Block("scan.body")
	v := fb.Load(fb.Add(entries, fb.Mul(i, four)))
	eq := fb.Cmp(ir.Eq, v, h)
	fb.Br(eq, "hit", "scan.next")
	fb.Block("scan.next")
	fb.Assign(i, fb.Add(i, one))
	fb.Jmp("scan.head")

	fb.Block("miss")
	calib := fb.Cmp(ir.Ne, mode, fb.Const(0))
	fb.Br(calib, "record", "tamper")

	fb.Block("record")
	capV := fb.Const(int32(capacity))
	room := fb.Cmp(ir.ULt, count, capV)
	fb.Br(room, "append", "hit") // table full: silently accept while calibrating

	fb.Block("append")
	fb.Store(fb.Add(entries, fb.Mul(count, four)), h)
	fb.Store(tab, fb.Add(count, one))
	fb.Jmp("hit")

	fb.Block("tamper")
	st := fb.Const(TamperStatus)
	fb.Syscall(1, st)
	fb.RetVoid()

	fb.Block("hit")
	fb.Ret(fb.Const(0))
	return fb.Fn()
}

// Calibrate runs the instrumented image on a workload, harvests the
// recorded hash table, and returns an enforcing image with the table
// baked in. Mirrors the paper's "hashes used to verify the state are
// found using dynamic testing".
func Calibrate(p *Protected, stdin []byte) (*image.Image, error) {
	cpu, err := emu.LoadImage(p.Image)
	if err != nil {
		return nil, err
	}
	cpu.OS = emu.NewOS(stdin)
	if err := cpu.Run(); err != nil {
		return nil, fmt.Errorf("oh: calibration run failed: %w", err)
	}
	tab, err := p.Image.Lookup(tabSym)
	if err != nil {
		return nil, fmt.Errorf("oh: calibrate: %w", err)
	}
	raw, err := cpu.Mem.Peek(tab.Addr, tab.Size)
	if err != nil {
		return nil, err
	}
	count := binary.LittleEndian.Uint32(raw)
	if count == 0 {
		return nil, fmt.Errorf("oh: calibration exercised no protected function")
	}

	out := p.Image.Clone()
	if err := out.WriteAt(tab.Addr, raw); err != nil {
		return nil, err
	}
	// Switch to enforcing.
	mode, err := out.Lookup(modeSym)
	if err != nil {
		return nil, fmt.Errorf("oh: calibrate: %w", err)
	}
	if err := out.WriteAt(mode.Addr, []byte{0, 0, 0, 0}); err != nil {
		return nil, err
	}
	return out, nil
}
