package ropguard

import (
	"testing"

	"parallax/internal/core"
	"parallax/internal/corpus"
	"parallax/internal/emu"
)

// TestChainsTriggerHeuristicMonitor reproduces §VIII-B: a
// kBouncer-style monitor stays quiet on ordinary execution but flags
// the Parallax verification chains as ROP — the documented conflict
// between heuristic CFI tools and ROP-based tamperproofing.
func TestChainsTriggerHeuristicMonitor(t *testing.T) {
	p, err := corpus.ByName("nginx")
	if err != nil {
		t.Fatal(err)
	}
	prot, err := core.Protect(p.Build(), core.Options{VerifyFuncs: []string{p.VerifyFunc}})
	if err != nil {
		t.Fatal(err)
	}

	// Unprotected binary: every return goes to a call-preceded
	// address; the monitor must stay silent.
	cpu, err := emu.LoadImage(prot.Baseline)
	if err != nil {
		t.Fatal(err)
	}
	cpu.OS = emu.NewOS(p.Stdin)
	mon := Attach(cpu, prot.Baseline)
	if err := cpu.Run(); err != nil {
		t.Fatal(err)
	}
	if mon.Flagged {
		t.Fatalf("monitor flagged ordinary execution (max run %d)", mon.MaxRun)
	}
	t.Logf("baseline: max suspicious run %d (threshold %d)", mon.MaxRun, mon.Threshold)

	// Protected binary: the chain is a storm of returns to
	// non-call-preceded gadget addresses.
	cpu2, err := emu.LoadImage(prot.Image)
	if err != nil {
		t.Fatal(err)
	}
	cpu2.OS = emu.NewOS(p.Stdin)
	mon2 := Attach(cpu2, prot.Image)
	if err := cpu2.Run(); err != nil {
		t.Fatal(err)
	}
	if !mon2.Flagged {
		t.Fatalf("monitor did not flag the verification chains (max run %d)", mon2.MaxRun)
	}
	t.Logf("protected: %d flags, max suspicious run %d — the §VIII-B conflict",
		mon2.Flags, mon2.MaxRun)
}

// TestMonitorThreshold checks runs below the threshold stay unflagged.
func TestMonitorThreshold(t *testing.T) {
	m := &Monitor{Threshold: 4, callPreceded: map[uint32]bool{0x100: true}}
	for i := 0; i < 3; i++ {
		m.onRet(0, 0x999) // suspicious
	}
	if m.Flagged {
		t.Error("flagged below threshold")
	}
	m.onRet(0, 0x100) // legitimate return resets the run
	for i := 0; i < 3; i++ {
		m.onRet(0, 0x999)
	}
	if m.Flagged {
		t.Error("reset did not clear the run")
	}
	m.onRet(0, 0x999)
	if !m.Flagged || m.Flags != 1 {
		t.Errorf("threshold crossing not flagged: %+v", m)
	}
}
