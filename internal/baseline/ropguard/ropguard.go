// Package ropguard implements a kBouncer/ROPGuard-style heuristic ROP
// monitor (the paper's §VIII-B): a system-level detector that flags
// bursts of return instructions whose targets are not call-preceded —
// the signature of a ROP chain.
//
// The paper observes that such monitors "may conflict with our
// tamperproofing algorithm, detecting its use of ROP code as if it
// were malicious", and that simple chain modifications (long gadgets,
// NOP-gadgets, call-preceded gadgets) circumvent them. This package
// reproduces the conflict measurably: Parallax verification chains
// light the detector up, ordinary execution does not.
package ropguard

import (
	"parallax/internal/emu"
	"parallax/internal/image"
	"parallax/internal/x86"
)

// DefaultThreshold is the consecutive-suspicious-return count that
// raises a flag (kBouncer used chains of 8 short gadgets).
const DefaultThreshold = 8

// Monitor is an attached heuristic ROP detector.
type Monitor struct {
	// Threshold is the consecutive suspicious-return limit.
	Threshold int

	// Flags counts threshold crossings; Flagged is true once any
	// occurred.
	Flags   int
	Flagged bool
	// MaxRun is the longest suspicious-return run observed.
	MaxRun int

	callPreceded map[uint32]bool
	consecutive  int
}

// Attach scans the image for legitimate return targets (addresses
// directly after call instructions) and hooks the CPU's return path.
func Attach(cpu *emu.CPU, img *image.Image) *Monitor {
	m := &Monitor{
		Threshold:    DefaultThreshold,
		callPreceded: make(map[uint32]bool),
	}
	text := img.Text()
	addr := text.Addr
	for int(addr-text.Addr) < len(text.Data) {
		inst, err := x86.Decode(text.Data[addr-text.Addr:], addr)
		if err != nil {
			addr++
			continue
		}
		if inst.Op == x86.CALL {
			m.callPreceded[addr+uint32(inst.Len)] = true
		}
		addr += uint32(inst.Len)
	}
	cpu.RetHook = m.onRet
	return m
}

func (m *Monitor) onRet(_, to uint32) {
	if to == emu.ExitSentinel || m.callPreceded[to] {
		m.consecutive = 0
		return
	}
	m.consecutive++
	if m.consecutive > m.MaxRun {
		m.MaxRun = m.consecutive
	}
	if m.consecutive == m.Threshold {
		m.Flagged = true
		m.Flags++
	}
}
