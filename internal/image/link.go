package image

import (
	"fmt"

	"parallax/internal/x86"
)

// Layout controls where the linker places sections.
type Layout struct {
	// TextBase is the load address of .text. Zero means the default
	// (0x08048000, the classic x86 ELF base).
	TextBase uint32
	// FuncAlign is the default function start alignment. Zero means 16.
	FuncAlign uint32
	// PadByte fills inter-function padding. Zero means 0x90 (NOP).
	PadByte byte
	// PageSize separates sections with distinct permissions. Zero means
	// 4096.
	PageSize uint32
}

func (l Layout) withDefaults() Layout {
	if l.TextBase == 0 {
		l.TextBase = 0x08048000
	}
	if l.FuncAlign == 0 {
		l.FuncAlign = 16
	}
	if l.PadByte == 0 {
		l.PadByte = 0x90
	}
	if l.PageSize == 0 {
		l.PageSize = 4096
	}
	return l
}

func alignUp(v, a uint32) uint32 {
	if a == 0 {
		return v
	}
	return (v + a - 1) &^ (a - 1)
}

// Link lays out and encodes an object into a loadable image.
func Link(obj *Object, layout Layout) (*Image, error) {
	l := newLinker(obj, layout)
	return l.link()
}

type funcLayout struct {
	fn     *Func
	addr   uint32 // address of first instruction (after pad+align)
	size   uint32
	labels map[string]uint32 // local label → absolute address
	offs   []uint32          // per-item offset from addr
}

type linker struct {
	obj    *Object
	layout Layout

	funcs []*funcLayout
	syms  map[string]Symbol
	img   *Image
}

func newLinker(obj *Object, layout Layout) *linker {
	return &linker{obj: obj, layout: layout.withDefaults(), syms: make(map[string]Symbol)}
}

func (l *linker) link() (*Image, error) {
	if len(l.obj.Funcs) == 0 {
		return nil, fmt.Errorf("image: cannot link object with no functions")
	}
	if err := l.layoutText(); err != nil {
		return nil, err
	}
	textEnd := l.funcs[len(l.funcs)-1].addr + l.funcs[len(l.funcs)-1].size
	if err := l.layoutData(textEnd); err != nil {
		return nil, err
	}
	if err := l.emit(); err != nil {
		return nil, err
	}
	entry := l.obj.Entry
	if entry == "" {
		entry = l.obj.Funcs[0].Name
	}
	es, ok := l.syms[entry]
	if !ok {
		return nil, fmt.Errorf("image: entry function %q not defined", entry)
	}
	l.img.Entry = es.Addr
	return l.img, nil
}

// layoutText computes function addresses, sizes and local label
// addresses. Item encodings are deterministic, so sizes computed here
// are final.
func (l *linker) layoutText() error {
	addr := l.layout.TextBase
	l.funcs = make([]*funcLayout, 0, len(l.obj.Funcs))
	for _, fn := range l.obj.Funcs {
		align := fn.Align
		if align == 0 {
			align = l.layout.FuncAlign
		}
		addr += fn.Pad
		addr = alignUp(addr, align)
		fl := &funcLayout{fn: fn, addr: addr, labels: make(map[string]uint32)}
		fl.offs = make([]uint32, len(fn.Items))
		off := uint32(0)
		for i := range fn.Items {
			it := &fn.Items[i]
			fl.offs[i] = off
			if it.Label != "" {
				if _, dup := fl.labels[it.Label]; dup {
					return fmt.Errorf("image: %s: duplicate label %q", fn.Name, it.Label)
				}
				fl.labels[it.Label] = addr + off
			}
			n, err := itemSize(it)
			if err != nil {
				return fmt.Errorf("image: %s item %d: %w", fn.Name, i, err)
			}
			off += n
		}
		fl.size = off
		if _, dup := l.syms[fn.Name]; dup {
			return fmt.Errorf("image: duplicate symbol %q", fn.Name)
		}
		l.syms[fn.Name] = Symbol{Name: fn.Name, Addr: fl.addr, Size: fl.size, Kind: SymFunc}
		l.funcs = append(l.funcs, fl)
		addr += off
	}
	return nil
}

// itemSize returns the encoded size of an item. For items with symbolic
// references the reference slot is forced to its 32-bit form so the
// size does not depend on the final symbol value.
func itemSize(it *Item) (uint32, error) {
	if it.Raw != nil {
		return uint32(len(it.Raw)), nil
	}
	inst, err := prepareInst(it, 0x7FFFFFF0) // placeholder far address
	if err != nil {
		return 0, err
	}
	b, err := x86.Encode(inst, 0)
	if err != nil {
		return 0, err
	}
	return uint32(len(b)), nil
}

// prepareInst returns the instruction with the symbolic slot filled by
// value. A placeholder value with a large magnitude forces 32-bit
// encodings during sizing.
func prepareInst(it *Item, value uint32) (x86.Inst, error) {
	inst := it.Inst
	switch it.Ref.Slot {
	case RefNone:
	case RefTarget:
		if inst.Op != x86.CALL && inst.Op != x86.JMP && inst.Op != x86.JCC {
			return inst, fmt.Errorf("RefTarget on non-branch %v", inst.Op)
		}
		inst.Rel = true
		inst.Target = value
	case RefImm:
		imm := x86.ImmOp(int32(value))
		switch {
		case inst.Op == x86.PUSH:
			inst.Dst = imm
		case inst.HasImm:
			inst.Imm = int32(value)
		default:
			inst.Src = imm
		}
	case RefDisp:
		switch {
		case inst.Dst.Kind == x86.KMem:
			inst.Dst.Disp = int32(value)
		case inst.Src.Kind == x86.KMem:
			inst.Src.Disp = int32(value)
		default:
			return inst, fmt.Errorf("RefDisp without memory operand in %v", inst)
		}
	default:
		return inst, fmt.Errorf("unknown ref slot %d", it.Ref.Slot)
	}
	return inst, nil
}

// refPatchOffset returns the offset of the 4-byte patch site within the
// encoded instruction.
func refPatchOffset(it *Item, encoded []byte) (int, error) {
	switch it.Ref.Slot {
	case RefTarget, RefImm:
		// rel32 / imm32 is always the trailing dword in the forms the
		// code generator emits.
		return len(encoded) - 4, nil
	case RefDisp:
		// disp32 precedes any trailing immediate.
		trailing := 0
		inst := it.Inst
		if inst.Src.Kind == x86.KImm {
			switch {
			case isShiftOp(inst.Op):
				trailing = 1
			case inst.W == 8:
				trailing = 1
			case inst.Op != x86.MOV && inst.Op != x86.TEST && fitsInt8(inst.Src.Imm):
				trailing = 1
			default:
				trailing = int(inst.W) / 8
			}
		}
		if inst.HasImm {
			if fitsInt8(inst.Imm) {
				trailing = 1
			} else {
				trailing = int(inst.W) / 8
			}
		}
		return len(encoded) - trailing - 4, nil
	default:
		return 0, fmt.Errorf("no patch site for slot %d", it.Ref.Slot)
	}
}

func isShiftOp(op x86.Op) bool {
	switch op {
	case x86.ROL, x86.ROR, x86.RCL, x86.RCR, x86.SHL, x86.SAL, x86.SHR, x86.SAR:
		return true
	}
	return false
}

func fitsInt8(v int32) bool { return v >= -128 && v <= 127 }

// layoutData assigns addresses to data objects: .rodata after .text,
// then .data, then .bss, each page-separated.
func (l *linker) layoutData(textEnd uint32) error {
	var ro, rw, bss []*DataSym
	for _, d := range l.obj.Data {
		switch {
		case d.ReadOnly:
			ro = append(ro, d)
		case d.Bytes == nil && d.Size > 0:
			bss = append(bss, d)
		default:
			rw = append(rw, d)
		}
	}
	place := func(base uint32, syms []*DataSym) (uint32, error) {
		addr := base
		for _, d := range syms {
			align := d.Align
			if align == 0 {
				align = 4
			}
			if align&(align-1) != 0 {
				return 0, fmt.Errorf("image: %s: alignment %d not a power of two", d.Name, align)
			}
			addr = alignUp(addr, align)
			size := d.Size
			if size == 0 {
				size = uint32(len(d.Bytes))
			}
			if size < uint32(len(d.Bytes)) {
				return 0, fmt.Errorf("image: %s: size %d < %d initialized bytes",
					d.Name, size, len(d.Bytes))
			}
			if _, dup := l.syms[d.Name]; dup {
				return 0, fmt.Errorf("image: duplicate symbol %q", d.Name)
			}
			l.syms[d.Name] = Symbol{Name: d.Name, Addr: addr, Size: size, Kind: SymObject}
			addr += size
		}
		return addr, nil
	}

	page := l.layout.PageSize
	roBase := alignUp(textEnd, page)
	roEnd, err := place(roBase, ro)
	if err != nil {
		return err
	}
	rwBase := alignUp(roEnd, page)
	if len(ro) == 0 {
		rwBase = roBase
	}
	rwEnd, err := place(rwBase, rw)
	if err != nil {
		return err
	}
	bssBase := alignUp(rwEnd, page)
	if len(rw) == 0 {
		bssBase = rwBase
	}
	bssEnd, err := place(bssBase, bss)
	if err != nil {
		return err
	}

	l.img = &Image{}
	text := &Section{Name: ".text", Addr: l.layout.TextBase, Perm: PermR | PermX}
	l.img.Sections = append(l.img.Sections, text)
	if len(ro) > 0 {
		l.img.Sections = append(l.img.Sections, &Section{
			Name: ".rodata", Addr: roBase, Size: roEnd - roBase, Perm: PermR,
		})
	}
	if len(rw) > 0 {
		l.img.Sections = append(l.img.Sections, &Section{
			Name: ".data", Addr: rwBase, Size: rwEnd - rwBase, Perm: PermR | PermW,
		})
	}
	if len(bss) > 0 {
		l.img.Sections = append(l.img.Sections, &Section{
			Name: ".bss", Addr: bssBase, Size: bssEnd - bssBase, Perm: PermR | PermW,
		})
	}
	return nil
}

// emit encodes all code and data with final symbol values and records
// relocations.
func (l *linker) emit() error {
	// Text.
	text := l.img.Text()
	var out []byte
	addr := l.layout.TextBase
	for _, fl := range l.funcs {
		for addr+uint32(len(out))-l.layout.TextBase < fl.addr-l.layout.TextBase {
			out = append(out, l.layout.PadByte)
		}
		for i := range fl.fn.Items {
			it := &fl.fn.Items[i]
			itemAddr := fl.addr + fl.offs[i]
			if it.Raw != nil {
				out = append(out, it.Raw...)
				continue
			}
			value, err := l.resolve(fl, it)
			if err != nil {
				return fmt.Errorf("image: %s item %d: %w", fl.fn.Name, i, err)
			}
			// Size with the placeholder, then patch, so that the final
			// byte length matches layoutText.
			inst, err := prepareInst(it, 0x7FFFFFF0)
			if err != nil {
				return fmt.Errorf("image: %s item %d: %w", fl.fn.Name, i, err)
			}
			enc, err := x86.Encode(inst, itemAddr)
			if err != nil {
				return fmt.Errorf("image: %s item %d: encode %v: %w", fl.fn.Name, i, inst, err)
			}
			if it.Ref.Slot != RefNone {
				pos, err := refPatchOffset(it, enc)
				if err != nil {
					return fmt.Errorf("image: %s item %d: %w", fl.fn.Name, i, err)
				}
				siteAddr := itemAddr + uint32(pos)
				var patched uint32
				var kind RelocKind
				if it.Ref.Slot == RefTarget {
					patched = value - (siteAddr + 4)
					kind = RelocRel32
				} else {
					patched = value
					kind = RelocAbs32
				}
				putU32(enc[pos:], patched)
				if !l.isLocal(fl, it.Ref.Sym) {
					l.img.Relocs = append(l.img.Relocs, Reloc{
						Addr: siteAddr, Kind: kind, Sym: it.Ref.Sym, Add: it.Ref.Add,
					})
				}
			}
			out = append(out, enc...)
		}
	}
	text.Data = out
	text.Size = uint32(len(out))

	// Data sections.
	for _, d := range l.obj.Data {
		sym := l.syms[d.Name]
		if d.Bytes == nil && !d.ReadOnly && d.Size > 0 {
			continue // BSS: no initialized bytes
		}
		size := sym.Size
		buf := make([]byte, size)
		copy(buf, d.Bytes)
		for _, w := range d.Words {
			if w.Off+4 > size {
				return fmt.Errorf("image: %s: word ref at %d past size %d", d.Name, w.Off, size)
			}
			target, ok := l.syms[w.Sym]
			if !ok {
				return fmt.Errorf("image: %s: undefined symbol %q", d.Name, w.Sym)
			}
			putU32(buf[w.Off:], target.Addr+uint32(w.Add))
			l.img.Relocs = append(l.img.Relocs, Reloc{
				Addr: sym.Addr + w.Off, Kind: RelocAbs32, Sym: w.Sym, Add: w.Add,
			})
		}
		sec := l.img.SectionAt(sym.Addr)
		if sec == nil {
			return fmt.Errorf("image: %s: no section at %#x", d.Name, sym.Addr)
		}
		// Grow the section's data to cover this object.
		end := sym.Addr + size - sec.Addr
		for uint32(len(sec.Data)) < end {
			sec.Data = append(sec.Data, 0)
		}
		copy(sec.Data[sym.Addr-sec.Addr:], buf)
	}

	// Symbol table, functions first then data, in layout order.
	for _, fl := range l.funcs {
		l.img.Symbols = append(l.img.Symbols, l.syms[fl.fn.Name])
	}
	for _, d := range l.obj.Data {
		l.img.Symbols = append(l.img.Symbols, l.syms[d.Name])
	}
	return nil
}

// isLocal reports whether sym is a function-local label of fl.
func (l *linker) isLocal(fl *funcLayout, sym string) bool {
	_, ok := fl.labels[sym]
	return ok
}

// resolve returns the absolute value of an item's symbolic reference.
// Local labels shadow global symbols.
func (l *linker) resolve(fl *funcLayout, it *Item) (uint32, error) {
	if it.Ref.Slot == RefNone {
		return 0, nil
	}
	if a, ok := fl.labels[it.Ref.Sym]; ok {
		return a + uint32(it.Ref.Add), nil
	}
	if s, ok := l.syms[it.Ref.Sym]; ok {
		return s.Addr + uint32(it.Ref.Add), nil
	}
	return 0, fmt.Errorf("undefined symbol %q", it.Ref.Sym)
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}
