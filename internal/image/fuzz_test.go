package image

import (
	"bytes"
	"errors"
	"testing"
)

// fuzzSeedImage is a small valid image exercising every serialized
// field: multiple sections, symbols, relocations, BSS tail.
func fuzzSeedImage() *Image {
	return &Image{
		Entry: 0x1000,
		Sections: []*Section{
			{Name: ".text", Addr: 0x1000, Data: []byte{0xB8, 1, 0, 0, 0, 0xC3},
				Size: 6, Perm: PermR | PermX},
			{Name: ".data", Addr: 0x2000, Data: []byte{1, 2, 3, 4},
				Size: 16, Perm: PermR | PermW},
		},
		Symbols: []Symbol{
			{Name: "main", Addr: 0x1000, Size: 6, Kind: SymFunc},
			{Name: "g", Addr: 0x2000, Size: 4, Kind: SymObject},
		},
		Relocs: []Reloc{{Addr: 0x1001, Kind: RelocAbs32, Sym: "g"}},
	}
}

// FuzzImageReadFrom feeds arbitrary bytes to the deserializer. The
// contract under attack input: return an error or a Validate-clean
// image — never panic, never hang, never hand back a structurally
// broken image.
func FuzzImageReadFrom(f *testing.F) {
	var valid bytes.Buffer
	if _, err := fuzzSeedImage().WriteTo(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())/2]) // truncated stream
	f.Add([]byte("PLX1"))                       // magic only
	f.Add([]byte("PLX0junk"))                   // bad magic
	f.Add([]byte{})
	corrupt := append([]byte(nil), valid.Bytes()...)
	corrupt[len(corrupt)/2] ^= 0xFF
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := ReadFrom(bytes.NewReader(data))
		if err != nil {
			if img != nil {
				t.Fatal("ReadFrom returned both image and error")
			}
			return
		}
		// Anything accepted must satisfy the structural invariants...
		if verr := img.Validate(); verr != nil {
			t.Fatalf("ReadFrom accepted an invalid image: %v", verr)
		}
		// ...and survive the operations downstream consumers perform.
		img.Text()
		img.Funcs()
		img.SymbolAt(img.Entry)
		_ = img.Clone()
		var buf bytes.Buffer
		if _, werr := img.WriteTo(&buf); werr != nil {
			t.Fatalf("round-trip re-encode failed: %v", werr)
		}
	})
}

// TestReadFromRejectsMalformed pins the validation behaviour on
// handcrafted malformed images (the fuzz findings, kept deterministic).
func TestReadFromRejectsMalformed(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Image)
	}{
		{"zero-size section", func(img *Image) { img.Sections[1].Size = 0 }},
		{"wrapping section", func(img *Image) {
			img.Sections[1].Addr = 0xFFFFFFF0
			img.Sections[1].Size = 0x20
		}},
		{"data past size", func(img *Image) { img.Sections[1].Size = 2 }},
		{"overlapping sections", func(img *Image) { img.Sections[1].Addr = 0x1002 }},
		{"no text", func(img *Image) { img.Sections[0].Name = ".tex" }},
		{"non-exec text", func(img *Image) { img.Sections[0].Perm = PermR }},
		{"entry outside code", func(img *Image) { img.Entry = 0x2000 }},
		{"wrapping symbol", func(img *Image) {
			img.Symbols[0] = Symbol{Name: "w", Addr: 0xFFFFFFFF, Size: 8}
		}},
		{"reloc outside sections", func(img *Image) { img.Relocs[0].Addr = 0x9000 }},
		{"reloc past section end", func(img *Image) { img.Relocs[0].Addr = 0x1003 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			img := fuzzSeedImage()
			tc.mutate(img)
			var buf bytes.Buffer
			if _, err := img.WriteTo(&buf); err != nil {
				t.Fatal(err)
			}
			_, err := ReadFrom(&buf)
			if !errors.Is(err, ErrInvalid) {
				t.Fatalf("want ErrInvalid, got %v", err)
			}
		})
	}
}

// TestValidateAcceptsLinkedOutput: images from the real linker pass.
func TestValidateAcceptsSeed(t *testing.T) {
	if err := fuzzSeedImage().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestValidateNilSection: gob cannot even encode a nil slice element,
// so this invariant is checked directly against Validate.
func TestValidateNilSection(t *testing.T) {
	img := fuzzSeedImage()
	img.Sections[0] = nil
	if err := img.Validate(); !errors.Is(err, ErrInvalid) {
		t.Fatalf("want ErrInvalid, got %v", err)
	}
	if err := (*Image)(nil).Validate(); !errors.Is(err, ErrInvalid) {
		t.Fatalf("nil image: want ErrInvalid, got %v", err)
	}
}
