package image

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// Serialized image container: a short magic header followed by a gob
// stream. The format exists so the command-line tools can hand
// protected binaries between invocations; it is not an interchange
// format.

const serialMagic = "PLX1"

// MaxSerialSize bounds how many bytes ReadFrom will consume: a
// defensive cap (well above MaxImageSize plus metadata) so a malicious
// stream cannot make the decoder read without bound.
const MaxSerialSize = MaxImageSize + (1 << 26)

// WriteTo serializes the image.
func (img *Image) WriteTo(w io.Writer) (int64, error) {
	var buf bytes.Buffer
	buf.WriteString(serialMagic)
	if err := gob.NewEncoder(&buf).Encode(img); err != nil {
		return 0, fmt.Errorf("image: encode: %w", err)
	}
	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

// ReadFrom deserializes an image written by WriteTo. Arbitrary input is
// safe: the stream is size-capped, decode failures surface as errors
// (never panics), and the decoded image is structurally validated —
// every rejection wraps ErrInvalid or reports the gob fault.
func ReadFrom(r io.Reader) (*Image, error) {
	magic := make([]byte, len(serialMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("image: reading magic: %w", err)
	}
	if string(magic) != serialMagic {
		return nil, fmt.Errorf("image: bad magic %q", magic)
	}
	img := &Image{}
	if err := gob.NewDecoder(io.LimitReader(r, MaxSerialSize)).Decode(img); err != nil {
		return nil, fmt.Errorf("image: decode: %w", err)
	}
	if err := img.Validate(); err != nil {
		return nil, fmt.Errorf("image: deserialized image rejected: %w", err)
	}
	return img, nil
}

// Save writes the image to a file.
func (img *Image) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := img.WriteTo(f); err != nil {
		return err
	}
	return f.Close()
}

// Load reads an image from a file.
func Load(path string) (*Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFrom(f)
}
