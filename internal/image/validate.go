package image

import (
	"errors"
	"fmt"
)

// ErrInvalid marks a structurally malformed image: every Validate
// failure wraps it, so loaders can distinguish "bad image" from I/O
// errors with errors.Is.
var ErrInvalid = errors.New("image: invalid")

// Structural limits enforced by Validate. Far above anything the
// toolchain emits, low enough that a malicious serialized image cannot
// drive allocation or iteration costs unbounded.
const (
	MaxSections  = 1 << 10
	MaxSymbols   = 1 << 20
	MaxRelocs    = 1 << 20
	MaxNameLen   = 1 << 12
	MaxImageSize = 1 << 30 // total section bytes
)

func invalidf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalid, fmt.Sprintf(format, args...))
}

// Validate checks the image's structural invariants: non-nil,
// non-overlapping, non-wrapping sections within the size limits; an
// executable .text section; an entry point inside executable code; and
// in-range symbols and relocations. Images produced by Link always
// pass; deserialized images are validated before use so arbitrary
// input can never panic or wedge downstream consumers.
func (img *Image) Validate() error {
	if img == nil {
		return invalidf("nil image")
	}
	if len(img.Sections) == 0 {
		return invalidf("no sections")
	}
	if len(img.Sections) > MaxSections {
		return invalidf("%d sections exceeds limit %d", len(img.Sections), MaxSections)
	}
	if len(img.Symbols) > MaxSymbols {
		return invalidf("%d symbols exceeds limit %d", len(img.Symbols), MaxSymbols)
	}
	if len(img.Relocs) > MaxRelocs {
		return invalidf("%d relocations exceeds limit %d", len(img.Relocs), MaxRelocs)
	}

	var total uint64
	for i, s := range img.Sections {
		if s == nil {
			return invalidf("section %d is nil", i)
		}
		if s.Name == "" || len(s.Name) > MaxNameLen {
			return invalidf("section %d has bad name (len %d)", i, len(s.Name))
		}
		if s.Size == 0 {
			return invalidf("section %s has zero size", s.Name)
		}
		if s.Addr+s.Size < s.Addr {
			return invalidf("section %s [%#x,+%d) wraps the address space", s.Name, s.Addr, s.Size)
		}
		if uint32(len(s.Data)) > s.Size {
			return invalidf("section %s: %d data bytes exceed size %d", s.Name, len(s.Data), s.Size)
		}
		total += uint64(s.Size)
		if total > MaxImageSize {
			return invalidf("total section size exceeds %d bytes", MaxImageSize)
		}
		for _, o := range img.Sections[:i] {
			if o != nil && s.Addr < o.End() && o.Addr < s.End() {
				return invalidf("section %s [%#x,%#x) overlaps %s [%#x,%#x)",
					s.Name, s.Addr, s.End(), o.Name, o.Addr, o.End())
			}
		}
	}

	text := img.Text()
	if text == nil {
		return invalidf("no .text section")
	}
	if text.Perm&PermX == 0 {
		return invalidf(".text is not executable (%s)", text.Perm)
	}
	entry := img.SectionAt(img.Entry)
	if entry == nil || entry.Perm&PermX == 0 {
		return invalidf("entry point %#x not in executable code", img.Entry)
	}

	for i, sym := range img.Symbols {
		if len(sym.Name) > MaxNameLen {
			return invalidf("symbol %d has oversized name (len %d)", i, len(sym.Name))
		}
		if sym.Addr+sym.Size < sym.Addr {
			return invalidf("symbol %q [%#x,+%d) wraps the address space", sym.Name, sym.Addr, sym.Size)
		}
	}
	for i, r := range img.Relocs {
		if len(r.Sym) > MaxNameLen {
			return invalidf("relocation %d has oversized symbol name", i)
		}
		s := img.SectionAt(r.Addr)
		if s == nil || r.Addr+4 < r.Addr || r.Addr+4 > s.End() {
			return invalidf("relocation %d site [%#x,+4) outside any section", i, r.Addr)
		}
	}
	return nil
}
