package image

import (
	"bytes"
	"strings"
	"testing"

	"parallax/internal/x86"
)

// linkSimple builds a two-function object with data references and
// links it.
func linkSimple(t *testing.T, layout Layout) (*Image, *Object) {
	t.Helper()
	obj := &Object{Entry: "main"}

	leaf := &Func{Name: "leaf"}
	leaf.Items = append(leaf.Items,
		Item{Inst: x86.Inst{Op: x86.MOV, W: 32, Dst: x86.RegOp(x86.EAX), Src: x86.ImmOp(0)},
			Ref: Ref{Slot: RefImm, Sym: "counter"}},
		Item{Inst: x86.Inst{Op: x86.MOV, W: 32, Dst: x86.RegOp(x86.EAX),
			Src: x86.MemOp(x86.EAX, 0)}},
		InstItem(x86.Inst{Op: x86.RET, W: 32}),
	)

	main := &Func{Name: "main"}
	main.Items = append(main.Items,
		Item{Label: "top",
			Inst: x86.Inst{Op: x86.MOV, W: 32, Dst: x86.MemAbs(0), Src: x86.RegOp(x86.EAX)},
			Ref:  Ref{Slot: RefDisp, Sym: "counter", Add: 4}},
		Item{Inst: x86.Inst{Op: x86.CALL, W: 32}, Ref: Ref{Slot: RefTarget, Sym: "leaf"}},
		Item{Inst: x86.Inst{Op: x86.JCC, W: 32, Cond: x86.CondNE},
			Ref: Ref{Slot: RefTarget, Sym: "top"}},
		RawItem(0x90, 0x90),
		InstItem(x86.Inst{Op: x86.RET, W: 32}),
	)

	if err := obj.AddFunc(main); err != nil {
		t.Fatal(err)
	}
	if err := obj.AddFunc(leaf); err != nil {
		t.Fatal(err)
	}
	if err := obj.AddData(&DataSym{Name: "counter", Bytes: []byte{1, 0, 0, 0, 2, 0, 0, 0}}); err != nil {
		t.Fatal(err)
	}
	if err := obj.AddData(&DataSym{Name: "table", Bytes: make([]byte, 8),
		Words: []WordRef{{Off: 0, Sym: "leaf"}, {Off: 4, Sym: "counter", Add: 4}}}); err != nil {
		t.Fatal(err)
	}
	if err := obj.AddData(&DataSym{Name: "ro", Bytes: []byte("hi"), ReadOnly: true}); err != nil {
		t.Fatal(err)
	}
	if err := obj.AddData(&DataSym{Name: "zeros", Size: 64}); err != nil {
		t.Fatal(err)
	}

	img, err := Link(obj, layout)
	if err != nil {
		t.Fatal(err)
	}
	return img, obj
}

func TestLinkLayoutAndSymbols(t *testing.T) {
	img, _ := linkSimple(t, Layout{})

	text := img.Text()
	if text == nil || text.Perm != PermR|PermX {
		t.Fatalf("bad text section: %+v", text)
	}
	mainSym := img.MustSymbol("main")
	if img.Entry != mainSym.Addr {
		t.Errorf("entry %#x != main %#x", img.Entry, mainSym.Addr)
	}
	leafSym := img.MustSymbol("leaf")
	if leafSym.Addr%16 != 0 || mainSym.Addr%16 != 0 {
		t.Errorf("functions not 16-aligned: %#x %#x", mainSym.Addr, leafSym.Addr)
	}

	// Sections must not overlap and must carry W^X permissions.
	for _, s := range img.Sections {
		if s.Perm&PermW != 0 && s.Perm&PermX != 0 {
			t.Errorf("section %s is both writable and executable", s.Name)
		}
	}
	ro := img.Section(".rodata")
	if ro == nil || ro.Perm != PermR {
		t.Errorf("rodata: %+v", ro)
	}
	bss := img.Section(".bss")
	if bss == nil || bss.Size < 64 {
		t.Errorf("bss: %+v", bss)
	}
}

func TestLinkRelocationsResolve(t *testing.T) {
	img, _ := linkSimple(t, Layout{})
	text := img.Text()
	counter := img.MustSymbol("counter")
	leaf := img.MustSymbol("leaf")
	main := img.MustSymbol("main")

	// leaf's first instruction loads &counter.
	inst, err := x86.Decode(text.Data[leaf.Addr-text.Addr:], leaf.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if uint32(inst.Src.Imm) != counter.Addr {
		t.Errorf("leaf imm = %#x, want &counter %#x", uint32(inst.Src.Imm), counter.Addr)
	}

	// main's first instruction stores to counter+4.
	inst, err = x86.Decode(text.Data[main.Addr-text.Addr:], main.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if uint32(inst.Dst.Disp) != counter.Addr+4 {
		t.Errorf("main disp = %#x, want %#x", uint32(inst.Dst.Disp), counter.Addr+4)
	}

	// The call must target leaf; the jcc must target "top" (= main).
	off := main.Addr - text.Addr + uint32(inst.Len)
	call, err := x86.Decode(text.Data[off:], main.Addr+uint32(inst.Len))
	if err != nil {
		t.Fatal(err)
	}
	if call.Op != x86.CALL || call.Target != leaf.Addr {
		t.Errorf("call = %v, want target %#x", call, leaf.Addr)
	}
	jcc, err := x86.Decode(text.Data[off+uint32(call.Len):], main.Addr+uint32(inst.Len)+uint32(call.Len))
	if err != nil {
		t.Fatal(err)
	}
	if jcc.Op != x86.JCC || jcc.Target != main.Addr {
		t.Errorf("jcc = %v, want target %#x", jcc, main.Addr)
	}

	// The data table holds pointers.
	table := img.MustSymbol("table")
	raw, err := img.ReadAt(table.Addr, 8)
	if err != nil {
		t.Fatal(err)
	}
	w0 := uint32(raw[0]) | uint32(raw[1])<<8 | uint32(raw[2])<<16 | uint32(raw[3])<<24
	w1 := uint32(raw[4]) | uint32(raw[5])<<8 | uint32(raw[6])<<16 | uint32(raw[7])<<24
	if w0 != leaf.Addr || w1 != counter.Addr+4 {
		t.Errorf("table = %#x,%#x want %#x,%#x", w0, w1, leaf.Addr, counter.Addr+4)
	}

	// Global relocations were recorded (local label "top" was not).
	foundLeaf := false
	for _, r := range img.Relocs {
		if r.Sym == "top" {
			t.Error("local label leaked into the relocation table")
		}
		if r.Sym == "leaf" && r.Kind == RelocRel32 {
			foundLeaf = true
		}
	}
	if !foundLeaf {
		t.Error("missing rel32 relocation for leaf")
	}
}

func TestLinkPadAndAlign(t *testing.T) {
	obj := &Object{}
	a := &Func{Name: "a", Items: []Item{InstItem(x86.Inst{Op: x86.RET, W: 32})}}
	b := &Func{Name: "b", Pad: 3, Align: 1,
		Items: []Item{InstItem(x86.Inst{Op: x86.RET, W: 32})}}
	obj.Funcs = []*Func{a, b}
	img, err := Link(obj, Layout{})
	if err != nil {
		t.Fatal(err)
	}
	sa := img.MustSymbol("a")
	sb := img.MustSymbol("b")
	if sb.Addr != sa.Addr+sa.Size+3 {
		t.Errorf("pad not honoured: a ends %#x, b at %#x", sa.Addr+sa.Size, sb.Addr)
	}
	// Padding bytes must be the configured fill (default NOP).
	text := img.Text()
	for i := sa.Addr + sa.Size; i < sb.Addr; i++ {
		if text.Data[i-text.Addr] != 0x90 {
			t.Errorf("pad byte %#x at %#x", text.Data[i-text.Addr], i)
		}
	}
}

func TestLinkErrors(t *testing.T) {
	ret := InstItem(x86.Inst{Op: x86.RET, W: 32})
	tests := []struct {
		name string
		obj  *Object
		want string
	}{
		{"no functions", &Object{}, "no functions"},
		{"undefined symbol", &Object{Funcs: []*Func{{Name: "f", Items: []Item{
			{Inst: x86.Inst{Op: x86.CALL, W: 32}, Ref: Ref{Slot: RefTarget, Sym: "ghost"}},
		}}}}, "undefined symbol"},
		{"duplicate function", &Object{Funcs: []*Func{
			{Name: "f", Items: []Item{ret}},
			{Name: "f", Items: []Item{ret}},
		}}, "duplicate symbol"},
		{"duplicate label", &Object{Funcs: []*Func{{Name: "f", Items: []Item{
			{Label: "x", Inst: x86.Inst{Op: x86.NOP, W: 32}},
			{Label: "x", Inst: x86.Inst{Op: x86.RET, W: 32}},
		}}}}, "duplicate label"},
		{"bad entry", &Object{Entry: "nope", Funcs: []*Func{{Name: "f", Items: []Item{ret}}}},
			"entry function"},
		{"data size too small", &Object{
			Funcs: []*Func{{Name: "f", Items: []Item{ret}}},
			Data:  []*DataSym{{Name: "d", Bytes: []byte{1, 2, 3, 4}, Size: 2}},
		}, "size 2"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Link(tt.obj, Layout{})
			if err == nil {
				t.Fatal("Link succeeded, want error")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

func TestImageReadWriteClone(t *testing.T) {
	img, _ := linkSimple(t, Layout{})
	counter := img.MustSymbol("counter")

	// WriteAt + ReadAt round trip.
	if err := img.WriteAt(counter.Addr, []byte{9, 9}); err != nil {
		t.Fatal(err)
	}
	got, err := img.ReadAt(counter.Addr, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 9 || got[1] != 9 {
		t.Errorf("read back %v", got)
	}

	// Clone isolation.
	clone := img.Clone()
	if err := clone.WriteAt(counter.Addr, []byte{7}); err != nil {
		t.Fatal(err)
	}
	orig, _ := img.ReadAt(counter.Addr, 1)
	if orig[0] != 9 {
		t.Error("clone write leaked into the original")
	}

	// Out-of-range accesses fail.
	if _, err := img.ReadAt(0x10, 4); err == nil {
		t.Error("ReadAt outside sections succeeded")
	}
	if err := img.WriteAt(0x10, []byte{1}); err == nil {
		t.Error("WriteAt outside sections succeeded")
	}

	// BSS writes past initialized data fail loudly.
	zeros := img.MustSymbol("zeros")
	if err := img.WriteAt(zeros.Addr, []byte{1}); err == nil {
		t.Error("WriteAt into BSS succeeded")
	}
}

func TestImageSymbolQueries(t *testing.T) {
	img, _ := linkSimple(t, Layout{})
	main := img.MustSymbol("main")
	s, ok := img.SymbolAt(main.Addr + 1)
	if !ok || s.Name != "main" {
		t.Errorf("SymbolAt = %v, %t", s, ok)
	}
	if _, ok := img.Symbol("ghost"); ok {
		t.Error("found ghost symbol")
	}
	funcs := img.Funcs()
	if len(funcs) != 2 || funcs[0].Addr > funcs[1].Addr {
		t.Errorf("Funcs() = %v", funcs)
	}
	if sec := img.SectionAt(main.Addr); sec == nil || sec.Name != ".text" {
		t.Errorf("SectionAt = %v", sec)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	img, _ := linkSimple(t, Layout{})
	var buf bytes.Buffer
	if _, err := img.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Entry != img.Entry || len(back.Sections) != len(img.Sections) ||
		len(back.Symbols) != len(img.Symbols) {
		t.Fatal("round trip lost structure")
	}
	for i, s := range img.Sections {
		if !bytes.Equal(back.Sections[i].Data, s.Data) {
			t.Errorf("section %s data differs", s.Name)
		}
	}

	// Bad magic rejected.
	if _, err := ReadFrom(bytes.NewReader([]byte("JUNKJUNK"))); err == nil {
		t.Error("ReadFrom accepted junk")
	}
}

func TestObjectClone(t *testing.T) {
	_, obj := linkSimple(t, Layout{})
	clone := obj.Clone()
	clone.Funcs[0].Items[0].Label = "mutated"
	clone.Data[0].Bytes[0] = 0xFF
	if obj.Funcs[0].Items[0].Label == "mutated" {
		t.Error("function mutation leaked")
	}
	if obj.Data[0].Bytes[0] == 0xFF {
		t.Error("data mutation leaked")
	}
}
