// Package image defines the executable container used throughout this
// repository: a loaded Image (sections, symbols, relocations) plus the
// relocatable Object form that the code generator emits and the linker
// turns into an Image.
//
// The format plays the role ELF plays for the paper's prototype. It is
// deliberately minimal: Parallax needs section bytes, symbol addresses
// and relocation fix-ups — nothing more.
package image

import (
	"errors"
	"fmt"
	"sort"
)

// Perm is a section permission bitmask.
type Perm uint8

// Permission bits.
const (
	PermR Perm = 1 << iota
	PermW
	PermX
)

func (p Perm) String() string {
	b := []byte("---")
	if p&PermR != 0 {
		b[0] = 'r'
	}
	if p&PermW != 0 {
		b[1] = 'w'
	}
	if p&PermX != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Section is a contiguous address range with uniform permissions.
type Section struct {
	Name string
	Addr uint32
	Data []byte // initialized bytes; may be shorter than Size (rest is zero)
	Size uint32 // total size in memory
	Perm Perm
}

// End returns the first address past the section.
func (s *Section) End() uint32 { return s.Addr + s.Size }

// Contains reports whether addr falls inside the section.
func (s *Section) Contains(addr uint32) bool {
	return addr >= s.Addr && addr < s.End()
}

// SymKind distinguishes function symbols from data objects.
type SymKind uint8

// Symbol kinds.
const (
	SymFunc SymKind = iota
	SymObject
)

// Symbol names an address range in the image.
type Symbol struct {
	Name string
	Addr uint32
	Size uint32
	Kind SymKind
}

// RelocKind is the patch flavor of a relocation site.
type RelocKind uint8

// Relocation kinds.
const (
	// RelocAbs32 patches a 4-byte absolute address.
	RelocAbs32 RelocKind = iota
	// RelocRel32 patches a 4-byte displacement relative to the end of
	// the 4-byte site (x86 call/jmp/jcc semantics).
	RelocRel32
)

// Reloc records, post-link, where a symbol reference was patched. The
// rewriting passes use these to re-link after moving code.
type Reloc struct {
	Addr uint32 // address of the 4-byte patch site
	Kind RelocKind
	Sym  string
	Add  int32
}

// Image is a linked, loadable program.
type Image struct {
	Entry    uint32
	Sections []*Section
	Symbols  []Symbol
	Relocs   []Reloc
}

// Section returns the section with the given name, or nil.
func (img *Image) Section(name string) *Section {
	for _, s := range img.Sections {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Text returns the executable text section. Every image linked by this
// package has exactly one, named ".text".
func (img *Image) Text() *Section { return img.Section(".text") }

// SectionAt returns the section containing addr, or nil.
func (img *Image) SectionAt(addr uint32) *Section {
	for _, s := range img.Sections {
		if s.Contains(addr) {
			return s
		}
	}
	return nil
}

// Symbol returns the symbol with the given name.
func (img *Image) Symbol(name string) (Symbol, bool) {
	for _, s := range img.Symbols {
		if s.Name == name {
			return s, true
		}
	}
	return Symbol{}, false
}

// ErrNoSymbol is the sentinel wrapped by Lookup failures.
var ErrNoSymbol = errors.New("image: no such symbol")

// Lookup is Symbol with an error return: library code paths use it (and
// propagate the %w-wrapped error) instead of MustSymbol, so a missing
// symbol in a malformed or tampered image degrades into an error, not a
// panic.
func (img *Image) Lookup(name string) (Symbol, error) {
	s, ok := img.Symbol(name)
	if !ok {
		return Symbol{}, fmt.Errorf("%w: %q", ErrNoSymbol, name)
	}
	return s, nil
}

// MustSymbol is Symbol for names that are known to exist; it panics when
// the symbol is missing. Tests, examples and CLI front-ends only —
// library code must use Lookup and propagate the error.
func (img *Image) MustSymbol(name string) Symbol {
	s, ok := img.Symbol(name)
	if !ok {
		panic(fmt.Sprintf("image: missing symbol %q", name))
	}
	return s
}

// SymbolAt returns the symbol whose range covers addr, preferring
// function symbols.
func (img *Image) SymbolAt(addr uint32) (Symbol, bool) {
	var best Symbol
	found := false
	for _, s := range img.Symbols {
		if addr >= s.Addr && addr < s.Addr+s.Size {
			if !found || (s.Kind == SymFunc && best.Kind != SymFunc) {
				best = s
				found = true
			}
		}
	}
	return best, found
}

// Funcs returns all function symbols sorted by address.
func (img *Image) Funcs() []Symbol {
	out := make([]Symbol, 0, len(img.Symbols))
	for _, s := range img.Symbols {
		if s.Kind == SymFunc {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// ReadAt copies length bytes starting at addr from the image's
// initialized section contents. Reads within a section but past its
// initialized data yield zeros (BSS semantics).
func (img *Image) ReadAt(addr, length uint32) ([]byte, error) {
	s := img.SectionAt(addr)
	if s == nil || addr+length > s.End() || addr+length < addr {
		return nil, fmt.Errorf("image: read [%#x,%#x) outside any section", addr, addr+length)
	}
	out := make([]byte, length)
	off := addr - s.Addr
	if off < uint32(len(s.Data)) {
		copy(out, s.Data[off:])
	}
	return out, nil
}

// WriteAt patches bytes at addr in place. The write must fall within a
// single section's initialized data.
func (img *Image) WriteAt(addr uint32, b []byte) error {
	s := img.SectionAt(addr)
	if s == nil {
		return fmt.Errorf("image: write at %#x outside any section", addr)
	}
	off := addr - s.Addr
	if off+uint32(len(b)) > uint32(len(s.Data)) {
		return fmt.Errorf("image: write [%#x,%#x) past initialized data of %s",
			addr, addr+uint32(len(b)), s.Name)
	}
	copy(s.Data[off:], b)
	return nil
}

// Clone returns a deep copy of the image. Protection and attack passes
// mutate clones, leaving the original intact.
func (img *Image) Clone() *Image {
	out := &Image{Entry: img.Entry}
	out.Sections = make([]*Section, len(img.Sections))
	for i, s := range img.Sections {
		ns := *s
		ns.Data = append([]byte(nil), s.Data...)
		out.Sections[i] = &ns
	}
	out.Symbols = append([]Symbol(nil), img.Symbols...)
	out.Relocs = append([]Reloc(nil), img.Relocs...)
	return out
}
