package image

import (
	"fmt"

	"parallax/internal/x86"
)

// RefSlot says which field of an instruction a symbolic reference
// patches.
type RefSlot uint8

// Reference slots.
const (
	RefNone RefSlot = iota
	// RefTarget: the instruction is a relative call/jmp/jcc whose
	// target is the symbol (encoded as rel32).
	RefTarget
	// RefImm: the trailing 32-bit immediate is the absolute address of
	// the symbol (mov reg, $sym; push $sym; ...).
	RefImm
	// RefDisp: the 32-bit displacement of the memory operand is the
	// absolute address of the symbol (mov [sym], reg; ...).
	RefDisp
)

// Ref is a symbolic reference from an instruction to a symbol.
type Ref struct {
	Slot RefSlot
	Sym  string
	Add  int32
}

// Item is one element of a function body: either an instruction
// (optionally carrying a symbolic reference) or raw literal bytes.
// A label, if set, names the item's address with function-local scope.
type Item struct {
	Label string
	Inst  x86.Inst
	Raw   []byte // when non-nil, emitted literally and Inst is ignored
	Ref   Ref
}

// RawItem returns an Item emitting literal bytes.
func RawItem(b ...byte) Item { return Item{Raw: b} }

// InstItem returns an Item for a plain instruction.
func InstItem(inst x86.Inst) Item { return Item{Inst: inst} }

// Func is a relocatable function: a named sequence of items.
type Func struct {
	Name  string
	Align uint32 // start alignment; 0 means the linker default (16)
	Pad   uint32 // extra bytes of padding inserted before the function
	Items []Item
}

// DataSym is a relocatable data object.
type DataSym struct {
	Name     string
	Bytes    []byte // initialized contents; may be shorter than Size
	Size     uint32 // total size; 0 means len(Bytes)
	Align    uint32 // 0 means 4
	ReadOnly bool
	// Words are pointer slots inside the object that the linker fills
	// with symbol addresses.
	Words []WordRef
}

// WordRef is a pointer-sized slot within a data object referencing a
// symbol.
type WordRef struct {
	Off uint32
	Sym string
	Add int32
}

// Object is a relocatable program: the code generator's output and the
// linker's input.
type Object struct {
	Funcs []*Func
	Data  []*DataSym
	Entry string // name of the entry function
}

// Func returns the function with the given name, or nil.
func (o *Object) Func(name string) *Func {
	for _, f := range o.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// DataSym returns the data object with the given name, or nil.
func (o *Object) DataSym(name string) *DataSym {
	for _, d := range o.Data {
		if d.Name == name {
			return d
		}
	}
	return nil
}

// AddFunc appends a function, rejecting duplicate names.
func (o *Object) AddFunc(f *Func) error {
	if o.Func(f.Name) != nil {
		return fmt.Errorf("image: duplicate function %q", f.Name)
	}
	o.Funcs = append(o.Funcs, f)
	return nil
}

// AddData appends a data object, rejecting duplicate names.
func (o *Object) AddData(d *DataSym) error {
	if o.DataSym(d.Name) != nil {
		return fmt.Errorf("image: duplicate data symbol %q", d.Name)
	}
	o.Data = append(o.Data, d)
	return nil
}

// Clone returns a deep copy of the object, so rewriting passes can
// mutate freely.
func (o *Object) Clone() *Object {
	out := &Object{Entry: o.Entry}
	out.Funcs = make([]*Func, len(o.Funcs))
	for i, f := range o.Funcs {
		nf := *f
		nf.Items = make([]Item, len(f.Items))
		for j, it := range f.Items {
			nit := it
			nit.Raw = append([]byte(nil), it.Raw...)
			nf.Items[j] = nit
		}
		out.Funcs[i] = &nf
	}
	out.Data = make([]*DataSym, len(o.Data))
	for i, d := range o.Data {
		nd := *d
		nd.Bytes = append([]byte(nil), d.Bytes...)
		nd.Words = append([]WordRef(nil), d.Words...)
		out.Data[i] = &nd
	}
	return out
}
