package core

import (
	"math/rand"
	"testing"

	"parallax/internal/ir"
)

// randChainableModule generates a random module: a chainable helper
// with arbitrary arithmetic, comparisons, memory traffic and a bounded
// loop, plus a main that exercises it.
func randChainableModule(r *rand.Rand) *ir.Module {
	mb := ir.NewModule("rand")
	mb.GlobalZero("mem", 256)

	fb := mb.Func("helper", 2)
	vals := []ir.Value{fb.Param(0), fb.Param(1), fb.Const(int32(r.Uint32()))}
	pick := func() ir.Value { return vals[r.Intn(len(vals))] }
	bins := []ir.BinKind{ir.Add, ir.Sub, ir.Mul, ir.And, ir.Or, ir.Xor, ir.Shl, ir.Shr, ir.Sar}
	preds := []ir.Pred{ir.Eq, ir.Ne, ir.Lt, ir.Ge, ir.ULt, ir.UGe}

	for k := 0; k < 4+r.Intn(8); k++ {
		switch r.Intn(5) {
		case 0, 1:
			vals = append(vals, fb.Bin(bins[r.Intn(len(bins))], pick(), pick()))
		case 2:
			vals = append(vals, fb.Cmp(preds[r.Intn(len(preds))], pick(), pick()))
		case 3:
			mask := fb.Const(0xFC)
			addr := fb.Add(fb.Addr("mem", 0), fb.And(pick(), mask))
			fb.Store(addr, pick())
			vals = append(vals, fb.Load(addr))
		case 4:
			vals = append(vals, fb.Not(pick()))
		}
	}
	// A bounded loop folding the pool.
	acc := fb.Copy(pick())
	i := fb.Const(0)
	fb.Jmp("head")
	fb.Block("head")
	lim := fb.Const(int32(1 + r.Intn(6)))
	c := fb.Cmp(ir.ULt, i, lim)
	fb.Br(c, "body", "done")
	fb.Block("body")
	fb.Assign(acc, fb.Xor(fb.Add(acc, pick()), i))
	one := fb.Const(1)
	fb.Assign(i, fb.Add(i, one))
	fb.Jmp("head")
	fb.Block("done")
	// A final diamond.
	zero := fb.Const(0)
	pos := fb.Cmp(ir.Ge, acc, zero)
	fb.Br(pos, "p", "n")
	fb.Block("p")
	fb.Ret(acc)
	fb.Block("n")
	fb.Ret(fb.Neg(acc))

	fb = mb.Func("main", 0)
	a := fb.Call("helper", fb.Const(int32(r.Uint32())), fb.Const(int32(r.Uint32())))
	b := fb.Call("helper", a, fb.Const(int32(r.Uint32())))
	mask := fb.Const(0x7FFF)
	fb.Ret(fb.And(fb.Add(a, b), mask))
	mb.SetEntry("main")
	return mb.MustBuild()
}

// TestProtectRandomDifferential pushes random programs through the
// whole pipeline — codegen, rewriting, linking, gadget scan, chain
// compilation, loader splicing — and requires protected behaviour to
// match the baseline exactly.
func TestProtectRandomDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(31337))
	trials := 40
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		m := randChainableModule(r)
		p, err := Protect(m, Options{VerifyFuncs: []string{"helper"}})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, err := runImg(t, p.Baseline)
		if err != nil {
			t.Fatalf("trial %d baseline: %v", trial, err)
		}
		got, err := runImg(t, p.Image)
		if err != nil {
			t.Fatalf("trial %d protected: %v\nchain:\n%s", trial, err, p.Chains["helper"])
		}
		if got != want {
			t.Fatalf("trial %d: protected=%d baseline=%d", trial, got, want)
		}
	}
}
