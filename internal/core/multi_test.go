package core

import (
	"testing"

	"parallax/internal/ir"
)

// buildTwoHelpers returns a module with two chainable helpers.
func buildTwoHelpers(t *testing.T) *ir.Module {
	t.Helper()
	mb := ir.NewModule("two")

	mkHelper := func(name string, k int32) {
		fb := mb.Func(name, 1)
		x := fb.Param(0)
		acc := fb.Copy(x)
		i := fb.Const(0)
		fb.Jmp("head")
		fb.Block("head")
		lim := fb.Const(8)
		c := fb.Cmp(ir.ULt, i, lim)
		fb.Br(c, "body", "done")
		fb.Block("body")
		kv := fb.Const(k)
		fb.Assign(acc, fb.Add(fb.Mul(acc, kv), i))
		one := fb.Const(1)
		fb.Assign(i, fb.Add(i, one))
		fb.Jmp("head")
		fb.Block("done")
		fb.Ret(acc)
	}
	mkHelper("alpha", 13)
	mkHelper("beta", 29)

	fb := mb.Func("main", 0)
	a := fb.Call("alpha", fb.Const(2))
	b := fb.Call("beta", a)
	c := fb.Call("alpha", b)
	mask := fb.Const(0x7F)
	fb.Ret(fb.And(fb.Add(b, c), mask))
	mb.SetEntry("main")
	return mb.MustBuild()
}

// TestProtectMultipleChains translates two functions at once — the
// paper's "one or more code fragments ... one or more ROP chains".
func TestProtectMultipleChains(t *testing.T) {
	m := buildTwoHelpers(t)
	p, err := Protect(m, Options{VerifyFuncs: []string{"alpha", "beta"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Chains) != 2 {
		t.Fatalf("%d chains, want 2", len(p.Chains))
	}
	want, err := runImg(t, p.Baseline)
	if err != nil {
		t.Fatal(err)
	}
	got, err := runImg(t, p.Image)
	if err != nil {
		t.Fatalf("protected: %v", err)
	}
	if got != want {
		t.Fatalf("status %d != %d", got, want)
	}

	// Tampering a gadget used by either chain must derail the program.
	for _, fn := range p.VerifyFuncs {
		g := p.Chains[fn].Gadgets()[0]
		tampered := p.Image.Clone()
		if err := tampered.WriteAt(g.Addr, []byte{0xCC}); err != nil {
			t.Fatal(err)
		}
		st, err := runImg(t, tampered)
		if err == nil && st == want {
			t.Errorf("tampering %s's gadget went unnoticed", fn)
		}
	}
}

// TestOverlapAblation measures the design choice DESIGN.md calls out:
// with rewriting on, chains draw most gadget slots from application
// code (overlapping = protective); with rewriting off, they fall back
// to the pool (non-protective).
func TestOverlapAblation(t *testing.T) {
	m := buildTwoHelpers(t)

	with, err := Protect(m, Options{VerifyFuncs: []string{"alpha"}})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Protect(m, Options{
		VerifyFuncs:      []string{"alpha"},
		DisableRewriting: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	fracWith := float64(with.OverlapGadgets) / float64(with.TotalGadgetSlots)
	fracWithout := float64(without.OverlapGadgets) / float64(without.TotalGadgetSlots)
	t.Logf("overlap slots: rewriting=%.0f%%, disabled=%.0f%% (sites=%d)",
		100*fracWith, 100*fracWithout, with.RewriteSites)
	if with.RewriteSites == 0 {
		t.Error("rewriting applied no splits")
	}
	if fracWith <= fracWithout {
		t.Errorf("rewriting did not raise overlap fraction: %.2f vs %.2f",
			fracWith, fracWithout)
	}
	if fracWith < 0.5 {
		t.Errorf("only %.0f%% of chain slots use overlapping gadgets", 100*fracWith)
	}

	// Both variants still behave correctly.
	for _, p := range []*Protected{with, without} {
		want, err := runImg(t, p.Baseline)
		if err != nil {
			t.Fatal(err)
		}
		if got, err := runImg(t, p.Image); err != nil || got != want {
			t.Fatalf("status=%d err=%v want=%d", got, err, want)
		}
	}
}

// TestMuChainsEndToEnd runs a full µ-chain protection (§V-C) through
// the emulator.
func TestMuChainsEndToEnd(t *testing.T) {
	m := buildTwoHelpers(t)
	p, err := Protect(m, Options{VerifyFuncs: []string{"alpha"}, MuChains: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := runImg(t, p.Baseline)
	if err != nil {
		t.Fatal(err)
	}
	got, err := runImg(t, p.Image)
	if err != nil || got != want {
		t.Fatalf("µ-chain run: status=%d err=%v want=%d", got, err, want)
	}
	// The µ-chain must be materially longer than a function chain.
	plain, err := Protect(m, Options{VerifyFuncs: []string{"alpha"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Chains["alpha"].Words) <= len(plain.Chains["alpha"].Words) {
		t.Error("µ-chain not longer than function chain")
	}
}

// TestProtectDeterministicOutput: identical inputs yield bit-identical
// protected binaries — figure regeneration and the fixpoint pipeline
// depend on it.
func TestProtectDeterministicOutput(t *testing.T) {
	m := buildTwoHelpers(t)
	opts := Options{VerifyFuncs: []string{"alpha", "beta"}, Seed: 7}
	a, err := Protect(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Protect(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Image.Sections) != len(b.Image.Sections) {
		t.Fatal("section structure differs")
	}
	for i, s := range a.Image.Sections {
		o := b.Image.Sections[i]
		if s.Name != o.Name || s.Addr != o.Addr || len(s.Data) != len(o.Data) {
			t.Fatalf("section %s layout differs", s.Name)
		}
		for j := range s.Data {
			if s.Data[j] != o.Data[j] {
				t.Fatalf("section %s differs at offset %#x", s.Name, j)
			}
		}
	}
}

// TestProtectedBytesStats checks the guarded-byte accounting: with
// rewriting on, chains guard real application bytes in every function.
func TestProtectedBytesStats(t *testing.T) {
	m := buildTwoHelpers(t)
	p, err := Protect(m, Options{VerifyFuncs: []string{"alpha"}})
	if err != nil {
		t.Fatal(err)
	}
	s := p.ProtectedBytes()
	t.Logf("guarded: %d/%d bytes (%.1f%%) across %d/%d functions",
		s.GuardedBytes, s.AppBytes, s.Percent(), s.GuardedFuncs, s.TotalFuncs)
	if s.GuardedBytes == 0 || s.AppBytes == 0 {
		t.Fatal("no guarded bytes measured")
	}
	if s.GuardedFuncs == 0 {
		t.Fatal("no guarded functions")
	}
	// Without rewriting the chains fall back to the pool: little to no
	// app coverage.
	q, err := Protect(m, Options{VerifyFuncs: []string{"alpha"}, DisableRewriting: true})
	if err != nil {
		t.Fatal(err)
	}
	if q.ProtectedBytes().GuardedBytes >= s.GuardedBytes {
		t.Errorf("pool-only protection guards %d bytes >= rewritten %d",
			q.ProtectedBytes().GuardedBytes, s.GuardedBytes)
	}
}
