package core

import (
	"testing"

	"parallax/internal/chain"
	"parallax/internal/dyngen"
	"parallax/internal/emu"
	"parallax/internal/x86"
)

// TestDynamicModesEndToEnd runs the mix module protected under each
// dynamic generation mode and checks behaviour matches the baseline,
// and that tampering is still detected.
func TestDynamicModesEndToEnd(t *testing.T) {
	m := buildMixModule(t)
	base, err := Protect(m, Options{VerifyFuncs: []string{"mix"}})
	if err != nil {
		t.Fatal(err)
	}
	want, err := runImg(t, base.Baseline)
	if err != nil {
		t.Fatal(err)
	}

	for _, mode := range []dyngen.Mode{dyngen.ModeXor, dyngen.ModeRC4, dyngen.ModeProb} {
		t.Run(mode.String(), func(t *testing.T) {
			p, err := Protect(m, Options{
				VerifyFuncs: []string{"mix"},
				ChainMode:   mode,
				Seed:        0xC0FFEE,
			})
			if err != nil {
				t.Fatal(err)
			}
			got, err := runImg(t, p.Image)
			if err != nil {
				t.Fatalf("protected run: %v", err)
			}
			if got != want {
				t.Fatalf("status = %d, want %d", got, want)
			}

			// The chain buffer must start zeroed (materialized only at
			// run time): a static analyst diffing the binary sees no
			// chain words.
			sym := p.Image.MustSymbol(chain.ChainSym("mix"))
			raw, err := p.Image.ReadAt(sym.Addr, sym.Size)
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range raw {
				if b != 0 {
					t.Fatal("chain buffer not zero in the binary image")
				}
			}

			// Tampering with a chain gadget must still derail the
			// program: dynamic generation decodes the same gadget
			// addresses.
			g := p.Chains["mix"].Gadgets()[0]
			tampered := p.Image.Clone()
			if err := tampered.WriteAt(g.Addr, []byte{0xCC}); err != nil {
				t.Fatal(err)
			}
			st, err := runImg(t, tampered)
			if err == nil && st == want {
				t.Error("tampered gadget went unnoticed under dynamic generation")
			}
		})
	}
}

// TestProbVariantsActuallyVary checks the §V-B property: across calls,
// the probabilistic decoder materializes different (but equivalent)
// gadget words.
func TestProbVariantsActuallyVary(t *testing.T) {
	m := buildMixModule(t)
	p, err := Protect(m, Options{
		VerifyFuncs:  []string{"mix"},
		ChainMode:    dyngen.ModeProb,
		ProbVariants: 4,
		Seed:         0xBEEF,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Words with more than one compatible gadget exist (the pool is
	// replicated and split immediates add more).
	multi := 0
	for _, n := range p.Tables["mix"].VariantsPerWord {
		if n > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("no chain word has gadget alternatives; probabilistic mode is vacuous")
	}

	// Run the program and snapshot the materialized chain buffer after
	// exit; different time seeds must lead to different materialized
	// words (while behaving identically).
	snapshot := func(now int32) []byte {
		cpu, err := emu.LoadImage(p.Image)
		if err != nil {
			t.Fatal(err)
		}
		os := emu.NewOS(nil)
		os.Now = now
		cpu.OS = os
		if err := cpu.Run(); err != nil {
			t.Fatalf("run with now=%d: %v", now, err)
		}
		sym := p.Image.MustSymbol(chain.ChainSym("mix"))
		raw, err := cpu.Mem.Peek(sym.Addr, sym.Size)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}

	a := snapshot(1_000_000)
	b := snapshot(2_000_000)
	if string(a) == string(b) {
		t.Error("chain words identical across different RNG seeds; variants unused")
	}

	// And the materialized words must still be valid chain content: the
	// runs completed with the correct status (checked inside snapshot by
	// absence of faults) — additionally check word-level: every gadget
	// word decodes to a usable gadget address in the text.
	text := p.Image.Text()
	valid := 0
	for i := 0; i+4 <= len(a); i += 4 {
		v := uint32(a[i]) | uint32(a[i+1])<<8 | uint32(a[i+2])<<16 | uint32(a[i+3])<<24
		if v >= text.Addr && v < text.End() {
			valid++
		}
	}
	if valid == 0 {
		t.Error("no materialized word points into text; chain cannot be real")
	}
}

// TestDynamicDecodersAreNativeCode sanity-checks that decoders are
// ordinary protectable functions in the image.
func TestDynamicDecodersAreNativeCode(t *testing.T) {
	m := buildMixModule(t)
	p, err := Protect(m, Options{
		VerifyFuncs: []string{"mix"},
		ChainMode:   dyngen.ModeRC4,
	})
	if err != nil {
		t.Fatal(err)
	}
	sym, ok := p.Image.Symbol("..parallax.dec.mix")
	if !ok {
		t.Fatal("decoder symbol missing")
	}
	if sym.Size < 50 {
		t.Errorf("decoder suspiciously small: %d bytes", sym.Size)
	}
	// It must decode as clean x86 from the start.
	raw, err := p.Image.ReadAt(sym.Addr, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x86.Decode(raw, sym.Addr); err != nil {
		t.Errorf("decoder start does not decode: %v", err)
	}
}
