package core

import (
	"testing"

	"parallax/internal/chain"
	"parallax/internal/dyngen"
	"parallax/internal/emu"
)

// TestChecksumChains exercises §VI-C: static chains guarded by a
// data-memory checksum. Clean runs pass; modifying chain words in data
// trips the explicit tamper response; and — the point of doing it this
// way — the Wurster split-cache trick cannot hide the chain
// modification, because both the chain consumer (stack pops) and the
// checksummer read the words through the data path.
func TestChecksumChains(t *testing.T) {
	m := buildMixModule(t)
	p, err := Protect(m, Options{
		VerifyFuncs:    []string{"mix"},
		ChecksumChains: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := runImg(t, p.Baseline)
	if err != nil {
		t.Fatal(err)
	}
	got, err := runImg(t, p.Image)
	if err != nil {
		t.Fatalf("checksummed protected run: %v", err)
	}
	if got != want {
		t.Fatalf("status %d != baseline %d", got, want)
	}

	// Attack the verification code itself (§VI-C's threat): flip a
	// chain word in the data section.
	sym := p.Image.MustSymbol(chain.ChainSym("mix"))
	tampered := p.Image.Clone()
	raw, err := tampered.ReadAt(sym.Addr+8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tampered.WriteAt(sym.Addr+8, []byte{raw[0] ^ 0xFF}); err != nil {
		t.Fatal(err)
	}
	cpu, err := emu.LoadImage(tampered)
	if err != nil {
		t.Fatal(err)
	}
	cpu.OS = emu.NewOS(nil)
	cpu.MaxInst = 50_000_000
	_ = cpu.Run() // the checker exits explicitly; faults also count
	if cpu.Status != dyngen.ChecksumTamperStatus {
		t.Fatalf("status = %d, want checksum tamper response %d",
			cpu.Status, dyngen.ChecksumTamperStatus)
	}
}

func TestChecksumChainsRejectsDynamic(t *testing.T) {
	m := buildMixModule(t)
	_, err := Protect(m, Options{
		VerifyFuncs:    []string{"mix"},
		ChecksumChains: true,
		ChainMode:      dyngen.ModeXor,
	})
	if err == nil {
		t.Error("Protect accepted checksumming of dynamic chains")
	}
}
