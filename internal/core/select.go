package core

import (
	"fmt"
	"sort"

	"parallax/internal/codegen"
	"parallax/internal/emu"
	"parallax/internal/emu/tb"
	"parallax/internal/image"
	"parallax/internal/ir"
	"parallax/internal/ropc"
)

// SelectVerificationFunc implements the paper's §VII-B fully-automatic
// selection algorithm:
//
//  1. analyze the call graph for functions called repeatedly from
//     several locations (so integrity is verified repeatedly);
//  2. profile the program and keep functions contributing less than a
//     threshold (2%) of execution;
//  3. of those, pick the function using the most operation types (best
//     gadget coverage).
//
// Only chain-compilable functions (no calls, no syscalls, not the
// entry) are considered.
func SelectVerificationFunc(m *ir.Module, workload []byte) (string, error) {
	return selectVerificationFunc(m, workload, "", nil)
}

// selectVerificationFunc is SelectVerificationFunc with an explicit
// execution backend for the profile run (Options.Engine semantics) and
// an optional shared translation catalog for that backend.
func selectVerificationFunc(m *ir.Module, workload []byte, engine string, cat *tb.Catalog) (string, error) {
	report, err := profileModule(m, workload, engine, cat)
	if err != nil {
		return "", err
	}
	return selectFromProfile(m, report)
}

// FuncProfile is one function's share of a profiling run.
type FuncProfile struct {
	Name string
	// StaticCallSites counts distinct call instructions targeting the
	// function across the module.
	StaticCallSites int
	// DynamicCalls counts executed invocations during the profile run.
	DynamicCalls uint64
	// InstShare is the fraction of executed instructions spent inside
	// the function body.
	InstShare float64
	// OpDiversity counts distinct operation kinds in the function.
	OpDiversity int
	// Chainable reports whether ropc can translate the function.
	Chainable bool
}

// ProfileReport is a per-function profile of a module run.
type ProfileReport struct {
	Funcs      map[string]*FuncProfile
	TotalInsts uint64
	Status     int32
}

// SelectThreshold is the §VII-B execution-share cutoff (2%).
const SelectThreshold = 0.02

// ProfileModule builds the module, runs it under the emulator with
// per-address profiling, and aggregates per-function statistics.
func ProfileModule(m *ir.Module, workload []byte) (*ProfileReport, error) {
	return ProfileModuleEngine(m, workload, "")
}

// ProfileModuleEngine is ProfileModule with an explicit execution
// backend: "" or "interp" run the interpreter, "tb" the
// translation-block engine (internal/emu/tb), which replicates the
// interpreter's per-address hit counting so the resulting profile is
// identical — only the wall-clock differs.
func ProfileModuleEngine(m *ir.Module, workload []byte, engine string) (*ProfileReport, error) {
	return profileModule(m, workload, engine, nil)
}

// profileModule is ProfileModuleEngine with an optional shared
// translation catalog for the tb backend: a farm profiling the same
// module bytes across jobs pays the decode+compile cost once.
func profileModule(m *ir.Module, workload []byte, engine string, cat *tb.Catalog) (*ProfileReport, error) {
	img, err := codegen.Build(m, image.Layout{})
	if err != nil {
		return nil, err
	}
	cpu, err := emu.LoadImage(img)
	if err != nil {
		return nil, err
	}
	cpu.EnableProfile()
	cpu.OS = emu.NewOS(workload)
	var runErr error
	switch engine {
	case "", "interp":
		runErr = cpu.Run()
	case "tb":
		eng := tb.NewWithCatalog(cpu, nil, cat)
		runErr = eng.Run()
		eng.Close()
	default:
		return nil, fmt.Errorf("core: unknown engine %q (want interp or tb)", engine)
	}
	if runErr != nil {
		return nil, fmt.Errorf("core: profile run failed: %w", runErr)
	}

	report := &ProfileReport{
		Funcs:      make(map[string]*FuncProfile, len(m.Funcs)),
		TotalInsts: cpu.Icount,
		Status:     cpu.Status,
	}
	type span struct {
		name   string
		lo, hi uint32
	}
	var spans []span
	for _, s := range img.Funcs() {
		spans = append(spans, span{s.Name, s.Addr, s.Addr + s.Size})
	}
	entryHits := make(map[string]uint64)
	bodyHits := make(map[string]uint64)
	for addr, n := range cpu.Profile() {
		for _, sp := range spans {
			if addr >= sp.lo && addr < sp.hi {
				bodyHits[sp.name] += n
				if addr == sp.lo {
					entryHits[sp.name] += n
				}
				break
			}
		}
	}

	callSites := staticCallSites(m)
	for _, f := range m.Funcs {
		share := 0.0
		if cpu.Icount > 0 {
			share = float64(bodyHits[f.Name]) / float64(cpu.Icount)
		}
		report.Funcs[f.Name] = &FuncProfile{
			Name:            f.Name,
			StaticCallSites: callSites[f.Name],
			DynamicCalls:    entryHits[f.Name],
			InstShare:       share,
			OpDiversity:     len(f.OpKinds()),
			Chainable:       ropc.Chainable(f),
		}
	}
	return report, nil
}

func staticCallSites(m *ir.Module) map[string]int {
	sites := make(map[string]int)
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Insts {
				if b.Insts[i].Kind == ir.OpCall {
					sites[b.Insts[i].Callee]++
				}
			}
		}
	}
	return sites
}

func selectFromProfile(m *ir.Module, report *ProfileReport) (string, error) {
	entry := m.Entry
	if entry == "" && len(m.Funcs) > 0 {
		entry = m.Funcs[0].Name
	}

	var best *FuncProfile
	names := make([]string, 0, len(report.Funcs))
	for n := range report.Funcs {
		names = append(names, n)
	}
	sort.Strings(names) // deterministic tie-breaking
	for _, n := range names {
		p := report.Funcs[n]
		if n == entry || !p.Chainable {
			continue
		}
		// Step 1: called repeatedly — executed more than once at
		// runtime, with at least one static call site.
		if p.StaticCallSites < 1 || p.DynamicCalls < 2 {
			continue
		}
		// Step 2: cheap enough to translate.
		if p.InstShare >= SelectThreshold {
			continue
		}
		// Step 3: maximize operation diversity.
		if best == nil || p.OpDiversity > best.OpDiversity {
			best = p
		}
	}
	if best == nil {
		return "", fmt.Errorf("core: no function satisfies the selection criteria")
	}
	return best.Name, nil
}
