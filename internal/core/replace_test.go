package core

import (
	"encoding/binary"
	"testing"

	"parallax/internal/chain"
	"parallax/internal/gadget"
	"parallax/internal/x86"
)

// TestChainReplacementAttack demonstrates §VI-B: an adversary who
// found the chain cannot simply swap in a trivial replacement — "the
// replacement code must be functionally equivalent to the verification
// code", because the program depends on its results.
//
// The attacker here builds the laziest possible replacement: a chain
// that writes a constant to the return slot and exits. It is
// structurally valid (the program doesn't crash), but the verification
// function's results are wrong and the program's output diverges —
// replacement without reverse engineering buys nothing.
func TestChainReplacementAttack(t *testing.T) {
	m := buildMixModule(t)
	p, err := Protect(m, Options{VerifyFuncs: []string{"mix"}})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := runImg(t, p.Image)
	if err != nil {
		t.Fatal(err)
	}

	// Build the replacement from the binary's own gadget inventory,
	// exactly as an attacker would.
	cat := p.Catalog
	pick := func(k gadget.Kind, dst, src x86.Reg) *gadget.Gadget {
		for _, g := range cat.Find(k, dst, src) {
			if g.StackPops <= 1 && !g.FarRet && g.RetImm == 0 && !g.StackWrites {
				return g
			}
		}
		t.Fatalf("attacker found no %v gadget", k)
		return nil
	}
	popEAX := pick(gadget.KindPopReg, x86.EAX, x86.NumRegs)
	popEBX := pick(gadget.KindPopReg, x86.EBX, x86.NumRegs)
	store := pick(gadget.KindStore, x86.EBX, x86.EAX)
	popEsp := pick(gadget.KindPopEsp, x86.NumRegs, x86.NumRegs)
	bareRet := pick(gadget.KindRet, x86.NumRegs, x86.NumRegs)

	ch := p.Chains["mix"]
	// Replacement chain: ret_slot = 1; exit. Bare-ret filler keeps the
	// final word exactly at the loader-patched exit index.
	words := []uint32{
		popEAX.Addr, 1, // eax = 1
		popEBX.Addr, ch.RetSlotAddr, // ebx = &ret_slot
		store.Addr, // [ebx] = eax
	}
	for len(words) < ch.ExitPtrIndex-1 {
		words = append(words, bareRet.Addr) // chain no-op
	}
	words = append(words, popEsp.Addr, 0xDEADC0DE) // epilogue + exit ptr

	raw := make([]byte, 4*len(words))
	for i, w := range words {
		binary.LittleEndian.PutUint32(raw[4*i:], w)
	}
	sym := p.Image.MustSymbol(chain.ChainSym("mix"))
	attacked := p.Image.Clone()
	if err := attacked.WriteAt(sym.Addr, raw); err != nil {
		t.Fatal(err)
	}

	st, err := runImg(t, attacked)
	if err == nil && st == clean {
		t.Fatalf("trivial chain replacement preserved behaviour (status %d); "+
			"the program must depend on the verification code's results", st)
	}
	t.Logf("replacement attack outcome: status=%d err=%v (clean=%d) — "+
		"functional equivalence is required, as §VI-B argues", st, err, clean)
}
