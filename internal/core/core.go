// Package core implements the Parallax protection engine: it turns an
// IR program into a protected binary whose selected functions run as
// ROP chains over gadgets scattered through (and overlapped with) the
// binary's code, implicitly verifying its integrity (§III).
package core

import (
	"fmt"
	"sort"
	"strings"

	"parallax/internal/baseline/checksum"
	"parallax/internal/chain"
	"parallax/internal/codegen"
	"parallax/internal/dyngen"
	"parallax/internal/emu/tb"
	"parallax/internal/gadget"
	"parallax/internal/image"
	"parallax/internal/ir"
	"parallax/internal/obs"
	"parallax/internal/rewrite"
	"parallax/internal/ropc"
)

// Options configures Protect.
type Options struct {
	// VerifyFuncs names the functions to translate into verification
	// chains. Empty plus AutoSelect=false is an error; use AutoSelect
	// for the §VII-B algorithm.
	VerifyFuncs []string
	// AutoSelect runs the paper's selection algorithm (call-graph +
	// profile + op diversity) to choose one verification function.
	// Requires Workload to drive the profile run.
	AutoSelect bool
	// Workload drives profiling for AutoSelect (stdin given to the
	// program). May be nil.
	Workload []byte
	// Engine selects the execution backend for emulation Protect
	// itself performs (today: the AutoSelect profiling run). "" or
	// "interp" run the interpreter; "tb" runs the translation-block
	// engine (internal/emu/tb). Selection results are identical —
	// the engines are differentially tested in lockstep — so this
	// only trades profiling wall-clock.
	Engine string
	// TBCatalog, when non-nil and Engine is "tb", shares translations
	// between this run's engine and every other engine attached to the
	// same catalog — the farm attaches one per Farm so repeated
	// profiling of identical module bytes decodes them once.
	TBCatalog *tb.Catalog

	// PoolCopies replicates the fallback gadget pool; values below 1
	// mean 2 (two copies give probabilistic generation room to vary).
	PoolCopies int

	// ProtectFuncs names functions whose instructions the rewriting
	// rules should overlap with gadgets. Empty means every function.
	ProtectFuncs []string
	// DisableRewriting skips the §IV-B rewriting rules (gadgets then
	// come only from existing code and the fallback pool).
	DisableRewriting bool

	// ChainMode selects static or dynamically generated chains (§V-B).
	ChainMode dyngen.Mode
	// MuChains compiles instruction-level verification (§V-C) instead
	// of function chains — for the ablation experiment.
	MuChains bool
	// ChecksumChains guards each chain with a data-memory checksum run
	// before every pivot (§VI-C). Static chains only: dynamic chains
	// change between runs by design.
	ChecksumChains bool
	// ComposeChecksum, when positive, composes the §VI-C static
	// checksum network over the protection's cold regions: this many
	// table-driven checkers (internal/baseline/checksum.Network) are
	// injected before the layout fixpoint and, after the chains are
	// installed, assigned the maximal text runs no chain gadget guards.
	// Hot-path behavior is unchanged beyond the startup hashing pass;
	// tampering cold text — invisible to the ROP chains because cold
	// bodies never pull their bytes through a verification run — now
	// exits with checksum.TamperStatus at startup. The Wurster
	// split-cache attack still defeats the checksum half, exactly as
	// the paper concedes for any read-your-own-text defense.
	ComposeChecksum int
	// ProbVariants is the §V-B index-array count N for ModeProb;
	// values below 2 mean 4.
	ProbVariants int
	// Seed drives key and basis derivation for dynamic modes.
	Seed uint32

	// Layout overrides the link layout.
	Layout image.Layout

	// ScanFunc overrides the gadget scanner used inside the fixpoint
	// pipeline. It must be observationally identical to gadget.Scan
	// (same catalog for the same image bytes) — the hook exists so
	// batch drivers such as internal/farm can interpose a
	// content-addressed cache. Nil means gadget.Scan. The returned
	// catalog must not be mutated by the scanner afterwards.
	ScanFunc func(*image.Image, gadget.ScanConfig) *gadget.Catalog
	// Hints seeds the link→scan→compile fixpoint with the converged
	// sizes of a previous run. Correctness never depends on them: the
	// fixpoint still verifies convergence, so wrong hints only cost
	// extra passes. Hints from a converged run of the *same* module
	// and options let the pipeline converge in a single pass.
	Hints *Hints

	// Obs, when non-nil, records span timings for the pipeline stages
	// (codegen, rewrite, layout, scan, chain-compile, install) into the
	// shared registry, with pprof labels so CPU profiles attribute time
	// per stage. Nil disables all instrumentation; it never affects the
	// output image.
	Obs *obs.Registry
}

// Hints captures the converged fixpoint sizes of a Protect run: chain
// byte lengths, exit-pointer indices and dynamic-generation table
// sizes per verification function. Feeding them back into a later run
// of the same module and options (Options.Hints) skips the size
// discovery passes; the result is byte-identical because the final
// image is a pure function of the converged sizes.
type Hints struct {
	ChainLens map[string]int
	ExitIdxs  map[string]int
	OffsLens  map[string]int
	IdxLens   map[string]int
}

func copyHintMap(src map[string]int, n int) map[string]int {
	dst := make(map[string]int, n)
	for k, v := range src {
		dst[k] = v
	}
	return dst
}

// Protected is the result of a Protect run.
type Protected struct {
	// Image is the protected binary.
	Image *image.Image
	// Baseline is the unprotected binary built from the same module
	// with the same layout, for differential evaluation.
	Baseline *image.Image
	// Chains maps verification function names to their compiled
	// chains.
	Chains map[string]*ropc.Chain
	// Catalog is the gadget inventory of the protected image.
	Catalog *gadget.Catalog
	// VerifyFuncs lists the chain-translated functions.
	VerifyFuncs []string
	// Module is the source IR.
	Module *ir.Module
	// RewriteSites counts instructions split by the §IV-B2 rule.
	RewriteSites int
	// Mode is the chain generation mode used.
	Mode dyngen.Mode
	// Tables holds per-function dynamic-generation data (nil entries
	// for static chains).
	Tables map[string]*dyngen.Tables
	// OverlapGadgets counts chain gadget slots satisfied by gadgets
	// overlapping protected code (vs the fallback pool).
	OverlapGadgets int
	// TotalGadgetSlots counts all gadget words across chains.
	TotalGadgetSlots int
	// Hints are the converged fixpoint sizes of this run; feed them to
	// Options.Hints of an identical run to converge in one pass.
	Hints Hints
	// Checksum reports the composed §VI-C checker network's coverage
	// (Options.ComposeChecksum); nil when composition was off.
	Checksum *checksum.NetworkStats
}

// Protect builds and protects a module.
func Protect(m *ir.Module, opts Options) (*Protected, error) {
	if err := ir.Validate(m); err != nil {
		return nil, err
	}
	if opts.PoolCopies < 1 {
		opts.PoolCopies = 2
	}

	verify := append([]string(nil), opts.VerifyFuncs...)
	if opts.AutoSelect {
		sel, err := selectVerificationFunc(m, opts.Workload, opts.Engine, opts.TBCatalog)
		if err != nil {
			return nil, fmt.Errorf("core: auto-select: %w", err)
		}
		verify = append(verify, sel)
	}
	if len(verify) == 0 {
		return nil, fmt.Errorf("core: no verification functions given or selected")
	}
	sort.Strings(verify)
	verify = dedup(verify)

	for _, fn := range verify {
		f := m.Func(fn)
		if f == nil {
			return nil, fmt.Errorf("core: verification function %q not in module", fn)
		}
		if m.Entry == fn || (m.Entry == "" && m.Funcs[0].Name == fn) {
			return nil, fmt.Errorf("core: entry function %q cannot be a verification function", fn)
		}
		if !ropc.Chainable(f) {
			return nil, fmt.Errorf("core: %q makes calls or syscalls and cannot be a verification function", fn)
		}
	}

	// Baseline build for differential evaluation.
	baseline, err := codegen.Build(m, opts.Layout)
	if err != nil {
		return nil, fmt.Errorf("core: baseline build: %w", err)
	}

	if opts.ChecksumChains && opts.ChainMode != dyngen.ModeStatic {
		return nil, fmt.Errorf("core: chain checksumming requires static chains")
	}

	// Dynamic modes, chain checksumming and checksum composition
	// inject stubs into a working copy of the module; the caller's
	// module and the baseline stay clean.
	work := m
	if opts.ChainMode != dyngen.ModeStatic || opts.ChecksumChains || opts.ComposeChecksum > 0 {
		work = m.Clone()
	}
	cfgs := make(map[string]dyngen.Config, len(verify))
	for _, fn := range verify {
		cfg := dyngen.Config{
			Fn: fn, Mode: opts.ChainMode, N: opts.ProbVariants, Seed: opts.Seed,
		}
		if opts.ChainMode != dyngen.ModeStatic {
			if err := dyngen.Inject(work, cfg); err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
		}
		if opts.ChecksumChains {
			if err := dyngen.InjectChecker(work, fn); err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
		}
		cfgs[fn] = cfg
	}
	if opts.ComposeChecksum > 0 {
		// Inject the §VI-C checker network before any layout work: the
		// checkers' code and Slots-sized tables are fixed-size, so the
		// fixpoint below converges as usual; the tables stay empty (a
		// behavioral no-op) until the converged image's cold regions
		// are known and installed.
		if err := checksum.InjectNetwork(work, checksum.Network{Checkers: opts.ComposeChecksum}); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}

	// Frame sizes are layout-independent.
	frameWords := make(map[string]int, len(verify))
	for _, fn := range verify {
		n, err := ropc.FrameWords(work.Func(fn))
		if err != nil {
			return nil, err
		}
		frameWords[fn] = n
	}

	// Iterate link → scan → compile to a fixpoint. Chain sizes feed
	// back into the data layout, which feeds back into address
	// immediates in the text, which can shift the gadget inventory and
	// therefore chain sizes again. In practice this converges after
	// two passes; the cap guards pathological oscillation.
	chainLens := make(map[string]int, len(verify))
	exitIdxs := make(map[string]int, len(verify))
	offsLens := make(map[string]int, len(verify))
	idxLens := make(map[string]int, len(verify))
	if h := opts.Hints; h != nil {
		chainLens = copyHintMap(h.ChainLens, len(verify))
		exitIdxs = copyHintMap(h.ExitIdxs, len(verify))
		offsLens = copyHintMap(h.OffsLens, len(verify))
		idxLens = copyHintMap(h.IdxLens, len(verify))
	}
	scan := opts.ScanFunc
	if scan == nil {
		scan = gadget.Scan
	}
	var (
		img     *image.Image
		catalog *gadget.Catalog
		chains  map[string]*ropc.Chain
		tables  map[string]*dyngen.Tables
	)
	const maxPasses = 10
	stable := false
	rewriteSites := 0
	for pass := 0; pass < maxPasses && !stable; pass++ {
		var err error
		img, rewriteSites, err = buildProtectedObject(work, verify, frameWords, opts, cfgs,
			chainLens, exitIdxs, offsLens, idxLens)
		if err != nil {
			return nil, err
		}
		opts.Obs.Stage("scan", func() {
			catalog = scan(img, gadget.ScanConfig{})
		})
		env := &ropc.Env{
			Catalog:    catalog,
			GlobalAddr: symResolver(img),
			Prefer:     preferOverlap(img, verify),
		}
		stable = true
		chains = make(map[string]*ropc.Chain, len(verify))
		tables = make(map[string]*dyngen.Tables, len(verify))
		opts.Obs.Stage("chain-compile", func() {
			for _, fn := range verify {
				frame, lerr := img.Lookup(chain.FrameSym(fn))
				if lerr != nil {
					err = fmt.Errorf("core: frame for %s: %w", fn, lerr)
					return
				}
				ch, cerr := ropc.CompileWith(work.Func(fn), env, frame.Addr,
					ropc.Options{Mu: opts.MuChains})
				if cerr != nil {
					err = fmt.Errorf("core: chain for %s: %w", fn, cerr)
					return
				}
				tb, terr := dyngen.BuildTables(cfgs[fn], ch, env)
				if terr != nil {
					err = fmt.Errorf("core: tables for %s: %w", fn, terr)
					return
				}
				if ch.ByteLen() != chainLens[fn] || ch.ExitPtrIndex != exitIdxs[fn] ||
					len(tb.Offs) != offsLens[fn] || len(tb.Idx) != idxLens[fn] {
					stable = false
					chainLens[fn] = ch.ByteLen()
					exitIdxs[fn] = ch.ExitPtrIndex
					offsLens[fn] = len(tb.Offs)
					idxLens[fn] = len(tb.Idx)
				}
				chains[fn] = ch
				tables[fn] = tb
			}
		})
		if err != nil {
			return nil, err
		}
	}
	if !stable {
		return nil, fmt.Errorf("core: protection layout did not converge after %d passes", maxPasses)
	}

	var installErr error
	opts.Obs.Stage("install", func() {
		for _, fn := range verify {
			if err := dyngen.Install(img, cfgs[fn], chains[fn], tables[fn]); err != nil {
				installErr = fmt.Errorf("core: installing chain for %s: %w", fn, err)
				return
			}
			if opts.ChecksumChains {
				if err := dyngen.InstallChecker(img, fn, chains[fn]); err != nil {
					installErr = fmt.Errorf("core: installing chain checksum for %s: %w", fn, err)
					return
				}
			}
		}
	})
	if installErr != nil {
		return nil, installErr
	}

	p := &Protected{
		Image:        img,
		Baseline:     baseline,
		Chains:       chains,
		Catalog:      catalog,
		VerifyFuncs:  verify,
		Module:       m,
		RewriteSites: rewriteSites,
		Mode:         opts.ChainMode,
		Tables:       tables,
		Hints: Hints{
			ChainLens: chainLens, ExitIdxs: exitIdxs,
			OffsLens: offsLens, IdxLens: idxLens,
		},
	}
	isOverlap := preferOverlap(img, verify)
	for _, ch := range chains {
		for _, w := range ch.Words {
			if w.Kind != ropc.WGadget {
				continue
			}
			p.TotalGadgetSlots++
			if isOverlap(w.Gadget) {
				p.OverlapGadgets++
			}
		}
	}
	if opts.ComposeChecksum > 0 {
		// With the chains installed and the layout final, assign the
		// cold text — every maximal run no chain gadget guards — to the
		// injected checker network. The tables and expected hashes land
		// in .data, leaving the hashed text untouched.
		var composeErr error
		opts.Obs.Stage("compose", func() {
			regions := checksum.ColdRegions(img, p.GuardedByteMap(), 0)
			p.Checksum, composeErr = checksum.InstallNetwork(img,
				checksum.Network{Checkers: opts.ComposeChecksum}, regions)
		})
		if composeErr != nil {
			return nil, fmt.Errorf("core: composing checksum network: %w", composeErr)
		}
	}
	return p, nil
}

// GuardedByteMap returns the address set whose modification derails a
// verification chain: the chains' gadget spans plus the serialized
// `..parallax.*` chain data. It is the campaign engine's guarded-site
// predicate and the complement of what ComposeChecksum covers.
func (p *Protected) GuardedByteMap() map[uint32]bool {
	g := make(map[uint32]bool)
	for _, ch := range p.Chains {
		for _, gd := range ch.Gadgets() {
			lo, hi := gd.Range()
			for a := lo; a < hi; a++ {
				g[a] = true
			}
		}
	}
	for _, s := range p.Image.Symbols {
		if strings.HasPrefix(s.Name, "..parallax.") {
			for a := s.Addr; a < s.Addr+s.Size; a++ {
				g[a] = true
			}
		}
	}
	return g
}

// preferOverlap marks gadgets inside application code (anything except
// the fallback pool and loader stubs) — the gadgets whose integrity
// actually protects the program.
func preferOverlap(img *image.Image, verify []string) func(*gadget.Gadget) bool {
	type span struct{ lo, hi uint32 }
	verifySet := make(map[string]bool, len(verify))
	for _, v := range verify {
		verifySet[v] = true
	}
	var spans []span
	for _, s := range img.Funcs() {
		if len(s.Name) >= 2 && s.Name[:2] == ".." {
			continue // pool and internal stubs
		}
		if verifySet[s.Name] {
			continue // loader stub, not application code
		}
		spans = append(spans, span{s.Addr, s.Addr + s.Size})
	}
	return func(g *gadget.Gadget) bool {
		for _, sp := range spans {
			if g.Addr >= sp.lo && g.Addr < sp.hi {
				return true
			}
		}
		return false
	}
}

// buildProtectedObject compiles the module, swaps verification
// functions for loader stubs, adds the gadget pool and chain/frame
// data, and links.
func buildProtectedObject(m *ir.Module, verify []string, frameWords map[string]int,
	opts Options, cfgs map[string]dyngen.Config,
	chainLens, exitIdxs, offsLens, idxLens map[string]int) (*image.Image, int, error) {

	var obj *image.Object
	var err error
	opts.Obs.Stage("codegen", func() {
		obj, err = codegen.Compile(m)
	})
	if err != nil {
		return nil, 0, err
	}
	rewriteSites := 0
	if !opts.DisableRewriting {
		// §IV-B2: split immediates in protected functions so gadgets
		// overlap their instructions. Verification functions are
		// excluded — their bodies become loader stubs.
		targets := opts.ProtectFuncs
		if len(targets) == 0 {
			verifySet := make(map[string]bool, len(verify))
			for _, v := range verify {
				verifySet[v] = true
			}
			for _, f := range m.Funcs {
				if !verifySet[f.Name] {
					targets = append(targets, f.Name)
				}
			}
		}
		var res *rewrite.SplitResult
		opts.Obs.Stage("rewrite", func() {
			res, err = rewrite.SplitImmediates(obj, targets)
		})
		if err == nil {
			rewriteSites = res.Sites
		} else if res == nil || res.Sites != 0 {
			return nil, 0, err
		}
	}
	if err := chain.AddPool(obj, opts.PoolCopies); err != nil {
		return nil, 0, err
	}
	for _, fn := range verify {
		f := m.Func(fn)
		cfg := cfgs[fn]
		decoder := ""
		if cfg.Mode != dyngen.ModeStatic {
			decoder = cfg.DecoderName()
		}
		checker := ""
		if opts.ChecksumChains {
			checker = dyngen.CheckerName(fn)
		}
		loader, err := chain.Loader(chain.LoaderConfig{
			FuncName:     fn,
			NumParams:    f.NumParams,
			FrameWords:   frameWords[fn],
			ExitPtrIndex: exitIdxs[fn], // 0 in pass 1
			Decoder:      decoder,
			Checker:      checker,
		})
		if err != nil {
			return nil, 0, err
		}
		replaceFunc(obj, loader)
		size := chainLens[fn]
		if size == 0 {
			size = 4 // pass-1 placeholder
		}
		if err := chain.ReserveData(obj, fn, size, frameWords[fn]); err != nil {
			return nil, 0, err
		}
		if err := dyngen.Reserve(obj, cfg, size, offsLens[fn], idxLens[fn]); err != nil {
			return nil, 0, err
		}
	}
	var img *image.Image
	opts.Obs.Stage("layout", func() {
		img, err = image.Link(obj, opts.Layout)
	})
	if err != nil {
		return nil, 0, err
	}
	return img, rewriteSites, nil
}

func replaceFunc(obj *image.Object, nf *image.Func) {
	for i, f := range obj.Funcs {
		if f.Name == nf.Name {
			obj.Funcs[i] = nf
			return
		}
	}
	obj.Funcs = append(obj.Funcs, nf)
}

func symResolver(img *image.Image) func(string) (uint32, bool) {
	return func(name string) (uint32, bool) {
		s, ok := img.Symbol(name)
		return s.Addr, ok
	}
}

func dedup(in []string) []string {
	out := in[:0]
	for i, s := range in {
		if i == 0 || s != in[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// ProtectedByteStats reports how much of the application's code the
// installed verification chains actually guard: bytes inside gadgets
// the chains execute, measured over application functions (pool and
// loader stubs excluded).
type ProtectedByteStats struct {
	// AppBytes is the application-code byte count.
	AppBytes int
	// GuardedBytes counts app-code bytes overlapped by chain-used
	// gadgets: modifying any of them derails a chain.
	GuardedBytes int
	// GuardedFuncs counts application functions containing at least
	// one chain-used gadget.
	GuardedFuncs int
	// TotalFuncs counts application functions.
	TotalFuncs int
}

// Percent returns guarded bytes as a percentage of application code.
func (s ProtectedByteStats) Percent() float64 {
	if s.AppBytes == 0 {
		return 0
	}
	return 100 * float64(s.GuardedBytes) / float64(s.AppBytes)
}

// ProtectedBytes computes the coverage statistics of this protection.
func (p *Protected) ProtectedBytes() ProtectedByteStats {
	verifySet := make(map[string]bool, len(p.VerifyFuncs))
	for _, v := range p.VerifyFuncs {
		verifySet[v] = true
	}
	type span struct{ lo, hi uint32 }
	var spans []span
	var stats ProtectedByteStats
	for _, s := range p.Image.Funcs() {
		if len(s.Name) >= 2 && s.Name[:2] == ".." || verifySet[s.Name] {
			continue
		}
		spans = append(spans, span{s.Addr, s.Addr + s.Size})
		stats.AppBytes += int(s.Size)
		stats.TotalFuncs++
	}
	guardedFuncs := make(map[int]bool)
	counted := make(map[uint32]bool)
	for _, ch := range p.Chains {
		for _, g := range ch.Gadgets() {
			lo, hi := g.Range()
			for a := lo; a < hi; a++ {
				for i, sp := range spans {
					if a >= sp.lo && a < sp.hi {
						if !counted[a] {
							counted[a] = true
							stats.GuardedBytes++
						}
						guardedFuncs[i] = true
					}
				}
			}
		}
	}
	stats.GuardedFuncs = len(guardedFuncs)
	return stats
}
