package core

import (
	"strings"
	"testing"

	"parallax/internal/emu"
	"parallax/internal/image"
	"parallax/internal/ir"
	"parallax/internal/x86"
)

// buildMixModule returns a module with a chainable worker function
// ("mix": loops, shifts, multiplies, compares) called repeatedly from
// main.
func buildMixModule(t *testing.T) *ir.Module {
	t.Helper()
	mb := ir.NewModule("mixer")

	fb := mb.Func("mix", 2)
	a := fb.Param(0)
	b := fb.Param(1)
	h := fb.Xor(a, fb.Const(0x9E37))
	i := fb.Const(0)
	fb.Jmp("head")
	fb.Block("head")
	lim := fb.Const(8)
	c := fb.Cmp(ir.ULt, i, lim)
	fb.Br(c, "body", "done")
	fb.Block("body")
	k := fb.Const(31)
	fb.Assign(h, fb.Add(fb.Mul(h, k), b))
	seven := fb.Const(7)
	fb.Assign(h, fb.Xor(h, fb.Shr(h, seven)))
	one := fb.Const(1)
	fb.Assign(i, fb.Add(i, one))
	fb.Jmp("head")
	fb.Block("done")
	mask := fb.Const(0x7FFFFFFF)
	fb.Ret(fb.And(h, mask))

	fb = mb.Func("main", 0)
	acc := fb.Const(0)
	j := fb.Const(0)
	fb.Jmp("head")
	fb.Block("head")
	lim2 := fb.Const(5)
	c2 := fb.Cmp(ir.ULt, j, lim2)
	fb.Br(c2, "body", "done")
	fb.Block("body")
	three := fb.Const(3)
	fb.Assign(acc, fb.Call("mix", acc, fb.Mul(j, three)))
	one2 := fb.Const(1)
	fb.Assign(j, fb.Add(j, one2))
	fb.Jmp("head")
	fb.Block("done")
	// Heavy inline work keeps mix's execution share under the §VII-B
	// 2% selection threshold.
	w := fb.Const(0)
	fb.Jmp("whead")
	fb.Block("whead")
	wlim := fb.Const(4000)
	wc := fb.Cmp(ir.ULt, w, wlim)
	fb.Br(wc, "wbody", "wdone")
	fb.Block("wbody")
	k13 := fb.Const(13)
	fb.Assign(acc, fb.Add(acc, fb.Xor(w, k13)))
	wone := fb.Const(1)
	fb.Assign(w, fb.Add(w, wone))
	fb.Jmp("whead")
	fb.Block("wdone")
	m127 := fb.Const(127)
	fb.Ret(fb.And(acc, m127))

	mb.SetEntry("main")
	return mb.MustBuild()
}

func runImg(t *testing.T, img *image.Image) (int32, error) {
	t.Helper()
	cpu, err := emu.RunImage(img, emu.NewOS(nil))
	if err != nil {
		return 0, err
	}
	return cpu.Status, nil
}

func TestProtectEndToEnd(t *testing.T) {
	m := buildMixModule(t)
	p, err := Protect(m, Options{VerifyFuncs: []string{"mix"}})
	if err != nil {
		t.Fatal(err)
	}

	wantStatus, err := runImg(t, p.Baseline)
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	gotStatus, err := runImg(t, p.Image)
	if err != nil {
		t.Fatalf("protected run: %v", err)
	}
	if gotStatus != wantStatus {
		t.Fatalf("protected status = %d, baseline = %d", gotStatus, wantStatus)
	}

	ch := p.Chains["mix"]
	if ch == nil {
		t.Fatal("no chain for mix")
	}
	if len(ch.Gadgets()) < 5 {
		t.Errorf("chain uses only %d distinct gadgets", len(ch.Gadgets()))
	}
	t.Logf("chain: %d words, %d distinct gadgets, status=%d",
		len(ch.Words), len(ch.Gadgets()), gotStatus)
}

// TestProtectTamperDetection is the paper's central claim: modifying a
// gadget that the verification code uses makes the program malfunction.
func TestProtectTamperDetection(t *testing.T) {
	m := buildMixModule(t)
	p, err := Protect(m, Options{VerifyFuncs: []string{"mix"}})
	if err != nil {
		t.Fatal(err)
	}
	cleanStatus, err := runImg(t, p.Image)
	if err != nil {
		t.Fatal(err)
	}

	ch := p.Chains["mix"]
	// Tamper with every distinct gadget in turn; each must derail the
	// program (wrong result or fault).
	detected := 0
	for _, g := range ch.Gadgets() {
		tampered := p.Image.Clone()
		// Overwrite the gadget's first byte with int3 — the shape of a
		// software-breakpoint or hook patch.
		if err := tampered.WriteAt(g.Addr, []byte{0xCC}); err != nil {
			t.Fatal(err)
		}
		status, err := runImg(t, tampered)
		if err != nil || status != cleanStatus {
			detected++
		} else {
			t.Logf("tampering gadget %v went unnoticed", g)
		}
	}
	if detected != len(ch.Gadgets()) {
		t.Errorf("only %d/%d gadget tamperings caused a malfunction",
			detected, len(ch.Gadgets()))
	}
}

// TestProtectTamperIsSilentWithout verifies there are no false
// positives: an untampered protected binary runs identically every
// time.
func TestProtectDeterministic(t *testing.T) {
	m := buildMixModule(t)
	p, err := Protect(m, Options{VerifyFuncs: []string{"mix"}})
	if err != nil {
		t.Fatal(err)
	}
	first, err := runImg(t, p.Image)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := runImg(t, p.Image)
		if err != nil || again != first {
			t.Fatalf("run %d: status=%d err=%v, want %d", i, again, err, first)
		}
	}
}

func TestProtectRejects(t *testing.T) {
	m := buildMixModule(t)
	t.Run("no verification functions", func(t *testing.T) {
		if _, err := Protect(m, Options{}); err == nil {
			t.Error("Protect succeeded without verification functions")
		}
	})
	t.Run("unknown function", func(t *testing.T) {
		if _, err := Protect(m, Options{VerifyFuncs: []string{"ghost"}}); err == nil {
			t.Error("Protect succeeded with unknown function")
		}
	})
	t.Run("entry function", func(t *testing.T) {
		_, err := Protect(m, Options{VerifyFuncs: []string{"main"}})
		if err == nil || !strings.Contains(err.Error(), "entry") {
			t.Errorf("err = %v, want entry rejection", err)
		}
	})
	t.Run("function with calls", func(t *testing.T) {
		mb := ir.NewModule("c")
		fb := mb.Func("leaf", 0)
		fb.Ret(fb.Const(1))
		fb = mb.Func("caller", 0)
		fb.Ret(fb.Call("leaf"))
		fb = mb.Func("main", 0)
		fb.Ret(fb.Call("caller"))
		mb.SetEntry("main")
		m2 := mb.MustBuild()
		_, err := Protect(m2, Options{VerifyFuncs: []string{"caller"}})
		if err == nil {
			t.Error("Protect accepted a calling function as verification code")
		}
	})
}

func TestAutoSelect(t *testing.T) {
	m := buildMixModule(t)
	name, err := SelectVerificationFunc(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if name != "mix" {
		t.Errorf("selected %q, want mix", name)
	}

	p, err := Protect(m, Options{AutoSelect: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.VerifyFuncs) != 1 || p.VerifyFuncs[0] != "mix" {
		t.Errorf("verify funcs = %v", p.VerifyFuncs)
	}
	want, err := runImg(t, p.Baseline)
	if err != nil {
		t.Fatal(err)
	}
	got, err := runImg(t, p.Image)
	if err != nil || got != want {
		t.Errorf("protected=%d (%v), baseline=%d", got, err, want)
	}
}

// TestProtectWithArgsAndMemory exercises a verification function that
// reads and writes global memory through its chain.
func TestProtectWithArgsAndMemory(t *testing.T) {
	mb := ir.NewModule("memmix")
	mb.GlobalZero("state", 64)

	fb := mb.Func("bump", 1)
	idx := fb.Param(0)
	four := fb.Const(4)
	base := fb.Addr("state", 0)
	p := fb.Add(base, fb.Mul(idx, four))
	v := fb.Load(p)
	one := fb.Const(1)
	nv := fb.Add(v, one)
	fb.Store(p, nv)
	fb.Ret(nv)

	fb = mb.Func("main", 0)
	i := fb.Const(0)
	last := fb.Const(0)
	fb.Jmp("head")
	fb.Block("head")
	lim := fb.Const(12)
	c := fb.Cmp(ir.ULt, i, lim)
	fb.Br(c, "body", "done")
	fb.Block("body")
	three := fb.Const(3)
	fb.Assign(last, fb.Call("bump", fb.Bin(ir.URem, i, three)))
	one2 := fb.Const(1)
	fb.Assign(i, fb.Add(i, one2))
	fb.Jmp("head")
	fb.Block("done")
	fb.Ret(last) // state[2] bumped 4 times → 4

	mb.SetEntry("main")
	m := mb.MustBuild()

	p2, err := Protect(m, Options{VerifyFuncs: []string{"bump"}})
	if err != nil {
		t.Fatal(err)
	}
	want, err := runImg(t, p2.Baseline)
	if err != nil {
		t.Fatal(err)
	}
	got, err := runImg(t, p2.Image)
	if err != nil {
		t.Fatalf("protected: %v", err)
	}
	if got != want || want != 4 {
		t.Errorf("status: protected=%d baseline=%d want 4", got, want)
	}
}

// TestChainRegistersPreserved checks the pushad/popad discipline: a
// caller's registers survive a chain call.
func TestChainRegistersPreserved(t *testing.T) {
	m := buildMixModule(t)
	p, err := Protect(m, Options{VerifyFuncs: []string{"mix"}})
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := emu.LoadImage(p.Image)
	if err != nil {
		t.Fatal(err)
	}
	cpu.OS = emu.NewOS(nil)
	// Seed callee-visible registers before running; main's code only
	// relies on the calling convention, so this is a smoke check that
	// the chain machinery does not corrupt the emulated process state.
	cpu.Reg[x86.ESI] = 0x1337
	cpu.Reg[x86.EDI] = 0xBEEF
	if err := cpu.Run(); err != nil {
		t.Fatal(err)
	}
}
