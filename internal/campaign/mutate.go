package campaign

import (
	"bytes"
	"fmt"
	"strings"

	"parallax/internal/core"
	"parallax/internal/emu"
	"parallax/internal/image"
)

// Kind is a tamper-mutation flavor.
type Kind uint8

// Mutation kinds. The first three patch the in-memory image the way a
// cracker's byte patch would; KindSerial corrupts the serialized form
// before loading, exercising the hardened deserializer.
const (
	// KindBitFlip flips a single bit.
	KindBitFlip Kind = iota
	// KindByteSet overwrites one byte with 0xCC (int3 — a debugger
	// breakpoint, the densest realistic patch).
	KindByteSet
	// KindNopSweep overwrites a 4-byte window with NOPs (the classic
	// "nop out the check" crack).
	KindNopSweep
	// KindSerial corrupts the serialized image: bit flips, truncations
	// and magic damage applied to the WriteTo byte stream.
	KindSerial
)

func (k Kind) String() string {
	switch k {
	case KindBitFlip:
		return "bitflip"
	case KindByteSet:
		return "byteset"
	case KindNopSweep:
		return "nopsweep"
	case KindSerial:
		return "serial"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// AllKinds is every mutation kind, in enumeration order.
func AllKinds() []Kind {
	return []Kind{KindBitFlip, KindByteSet, KindNopSweep, KindSerial}
}

// Mutant is one enumerated tamper mutation.
type Mutant struct {
	Kind Kind
	// Region names the enclosing symbol (or section) of the mutation
	// site; "(serialized)" for KindSerial.
	Region string
	// Guarded reports whether any mutated byte is covered by a
	// chain-used gadget or parallax chain data — tampering there should
	// derail verification.
	Guarded bool
	// Addr is the mutation site; for KindSerial it is the byte offset
	// into the serialized stream (or the truncation length).
	Addr uint32
	// Len is how many bytes the mutation touches.
	Len int
	// Bit selects the flipped bit for KindBitFlip.
	Bit uint8
	// Truncate marks a KindSerial mutant that cuts the stream at Addr
	// instead of flipping a bit.
	Truncate bool
}

func (m Mutant) String() string {
	if m.Kind == KindSerial {
		if m.Truncate {
			return fmt.Sprintf("serial:truncate@%d", m.Addr)
		}
		return fmt.Sprintf("serial:flip@%d.%d", m.Addr, m.Bit)
	}
	return fmt.Sprintf("%s@%#x(%s)", m.Kind, m.Addr, m.Region)
}

// apply patches an image clone in place. KindSerial mutants never
// reach here — they are applied to the byte stream by corruptSerial.
func (m Mutant) apply(img *image.Image) error {
	switch m.Kind {
	case KindBitFlip:
		raw, err := img.ReadAt(m.Addr, 1)
		if err != nil {
			return err
		}
		return img.WriteAt(m.Addr, []byte{raw[0] ^ (1 << m.Bit)})
	case KindByteSet:
		return img.WriteAt(m.Addr, []byte{0xCC})
	case KindNopSweep:
		b := make([]byte, m.Len)
		for i := range b {
			b[i] = 0x90
		}
		return img.WriteAt(m.Addr, b)
	}
	return fmt.Errorf("campaign: cannot apply %v in memory", m.Kind)
}

// applyVM patches one mutant into a live emulator that has been
// rewound to the base image, mirroring apply()'s semantics exactly.
// Patch bytes are validated against the base image's initialized-data
// bounds first — the emulator maps sections at their full Size
// (including BSS), so without the check a mutant the clone path's
// WriteAt rejects would silently succeed here and the two paths would
// classify it differently.
func (m Mutant) applyVM(base *image.Image, c *emu.CPU) error {
	var patch []byte
	switch m.Kind {
	case KindBitFlip:
		raw, err := base.ReadAt(m.Addr, 1)
		if err != nil {
			return err
		}
		patch = []byte{raw[0] ^ (1 << m.Bit)}
	case KindByteSet:
		patch = []byte{0xCC}
	case KindNopSweep:
		patch = make([]byte, m.Len)
		for i := range patch {
			patch[i] = 0x90
		}
	default:
		return fmt.Errorf("campaign: cannot apply %v in memory", m.Kind)
	}
	if err := writableAt(base, m.Addr, uint32(len(patch))); err != nil {
		return err
	}
	return c.Patch(m.Addr, patch)
}

// writableAt reproduces image.WriteAt's bounds check without writing:
// the span must fall within a single section's initialized data.
func writableAt(img *image.Image, addr, n uint32) error {
	s := img.SectionAt(addr)
	if s == nil {
		return fmt.Errorf("campaign: patch at %#x outside any section", addr)
	}
	if off := addr - s.Addr; off+n > uint32(len(s.Data)) {
		return fmt.Errorf("campaign: patch [%#x,%#x) past initialized data of %s",
			addr, addr+n, s.Name)
	}
	return nil
}

// corruptSerial returns a corrupted copy of the serialized stream.
func (m Mutant) corruptSerial(stream []byte) []byte {
	if m.Truncate {
		n := int(m.Addr)
		if n > len(stream) {
			n = len(stream)
		}
		return append([]byte(nil), stream[:n]...)
	}
	out := append([]byte(nil), stream...)
	if int(m.Addr) < len(out) {
		out[m.Addr] ^= 1 << m.Bit
	}
	return out
}

// guardedBytes collects every address whose modification should derail
// a verification chain: bytes inside chain-used gadgets, plus the
// parallax chain/frame/table data blocks ("..parallax." symbols).
func guardedBytes(prot *core.Protected) map[uint32]bool {
	return prot.GuardedByteMap()
}

// regionOf names the symbol (preferred) or section containing addr.
func regionOf(img *image.Image, addr uint32) string {
	if s, ok := img.SymbolAt(addr); ok {
		return s.Name
	}
	if s := img.SectionAt(addr); s != nil {
		return s.Name
	}
	return "(unmapped)"
}

// Enumerate generates the campaign's mutant set for a protected image:
// every enabled in-memory kind swept across the executable text and the
// parallax data blocks at cfg.Stride, plus serialized-form corruption.
// The enumeration is deterministic: same image, same config, same list.
func Enumerate(prot *core.Protected, cfg Config) ([]Mutant, error) {
	cfg = cfg.withDefaults()
	enabled := make(map[Kind]bool, len(cfg.Kinds))
	for _, k := range cfg.Kinds {
		enabled[k] = true
	}
	guard := guardedBytes(prot)
	img := prot.Image
	var out []Mutant

	guardedAny := func(addr uint32, n int) bool {
		for i := uint32(0); i < uint32(n); i++ {
			if guard[addr+i] {
				return true
			}
		}
		return false
	}

	// In-memory sweeps over initialized bytes of executable sections.
	for _, sec := range img.Sections {
		if sec.Perm&image.PermX == 0 {
			continue
		}
		for off := uint32(0); off < uint32(len(sec.Data)); off += uint32(cfg.Stride) {
			addr := sec.Addr + off
			region := regionOf(img, addr)
			if enabled[KindBitFlip] {
				out = append(out, Mutant{Kind: KindBitFlip, Region: region, Addr: addr,
					Len: 1, Bit: uint8(off % 8), Guarded: guardedAny(addr, 1)})
			}
			if enabled[KindByteSet] {
				out = append(out, Mutant{Kind: KindByteSet, Region: region, Addr: addr,
					Len: 1, Guarded: guardedAny(addr, 1)})
			}
			if enabled[KindNopSweep] {
				n := 4
				if rem := int(uint32(len(sec.Data)) - off); rem < n {
					n = rem
				}
				out = append(out, Mutant{Kind: KindNopSweep, Region: region, Addr: addr,
					Len: n, Guarded: guardedAny(addr, n)})
			}
		}
	}

	// Parallax data blocks (chain words, frames, tables): bit flips and
	// byte sets only — NOPs are meaningless in data.
	for _, sym := range img.Symbols {
		if !strings.HasPrefix(sym.Name, "..parallax.") || sym.Kind != image.SymObject {
			continue
		}
		sec := img.SectionAt(sym.Addr)
		if sec == nil {
			continue
		}
		for off := uint32(0); off < sym.Size; off += uint32(cfg.Stride) {
			addr := sym.Addr + off
			// Only initialized bytes can be patched via WriteAt.
			if addr-sec.Addr >= uint32(len(sec.Data)) {
				break
			}
			if enabled[KindBitFlip] {
				out = append(out, Mutant{Kind: KindBitFlip, Region: sym.Name, Addr: addr,
					Len: 1, Bit: uint8(off % 8), Guarded: true})
			}
			if enabled[KindByteSet] {
				out = append(out, Mutant{Kind: KindByteSet, Region: sym.Name, Addr: addr,
					Len: 1, Guarded: true})
			}
		}
	}

	// Serialized-form corruption: bit flips across the stream plus
	// truncations and magic damage.
	if enabled[KindSerial] {
		var buf bytes.Buffer
		if _, err := img.WriteTo(&buf); err != nil {
			return nil, fmt.Errorf("campaign: serializing image: %w", err)
		}
		stream := buf.Bytes()
		// ~64 evenly spaced flip sites keep serial mutants a bounded
		// slice of the campaign regardless of image size.
		step := len(stream) / 64
		if step < 1 {
			step = 1
		}
		for off := 0; off < len(stream); off += step {
			out = append(out, Mutant{Kind: KindSerial, Region: serialRegion,
				Addr: uint32(off), Len: 1, Bit: uint8(off % 8)})
		}
		for _, frac := range []int{4, 2} {
			out = append(out, Mutant{Kind: KindSerial, Region: serialRegion,
				Addr: uint32(len(stream) / frac), Truncate: true})
		}
		// Magic damage: flip a bit in each header byte.
		for off := 0; off < 4 && off < len(stream); off++ {
			out = append(out, Mutant{Kind: KindSerial, Region: serialRegion,
				Addr: uint32(off), Len: 1, Bit: 7})
		}
	}

	// Cap the campaign deterministically: keep every k-th mutant.
	if cfg.MaxMutants > 0 && len(out) > cfg.MaxMutants {
		k := (len(out) + cfg.MaxMutants - 1) / cfg.MaxMutants
		kept := out[:0]
		for i := 0; i < len(out); i += k {
			kept = append(kept, out[i])
		}
		out = kept
	}
	return out, nil
}

// serialRegion is the report region for serialized-form mutants.
const serialRegion = "(serialized)"
