package campaign

import (
	"testing"
	"time"

	"parallax/internal/core"
	"parallax/internal/corpus/gen"
)

// TestDifferentialEnginesComposed is the engine-flip gate for §VI-C
// composition under a workload: a generated program protected with
// both a verification chain and the composed checksum network, swept
// under the heavy workload (cold code and the network's checkers both
// execute), must classify every mutant identically under the
// interpreter, tb with private per-worker caches, and tb with the
// campaign's shared catalog. This is the acceptance gate that the
// cold-coverage experiment's matrices are engine-independent, checked
// at the classification level where a single diverging mutant is
// attributable.
func TestDifferentialEnginesComposed(t *testing.T) {
	fam, err := gen.FamilyByName("tiny")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := gen.FamilyProgram(fam, 3)
	if err != nil {
		t.Fatal(err)
	}
	prot, err := core.Protect(prog.Build(), core.Options{
		VerifyFuncs:     []string{prog.VerifyFunc},
		ComposeChecksum: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if prot.Checksum == nil {
		t.Fatal("composition did not install a checksum network")
	}
	heavy, ok := prog.Workload("heavy")
	if !ok {
		t.Fatal("generated program has no heavy workload")
	}

	cfg := Config{
		Workers:    4,
		Stride:     3,
		MaxMutants: 300,
		MaxInst:    8_000_000,
		Timeout:    60 * time.Second,
		Stdin:      heavy,
	}
	mutants, err := Enumerate(prot, cfg)
	if err != nil {
		t.Fatal(err)
	}

	interp, _ := engineClasses(t, prot, mutants, cfg, "", false)
	private, _ := engineClasses(t, prot, mutants, cfg, "tb", true)
	shared, regShared := engineClasses(t, prot, mutants, cfg, "tb", false)

	assertSameVector(t, mutants, "tb-private-composed", interp, private)
	assertSameVector(t, mutants, "tb-shared-composed", interp, shared)
	if hits := regShared.Counter("emu.tb.catalog_hits").Value(); hits == 0 {
		t.Error("shared-catalog composed campaign recorded no catalog hits")
	}

	// A vector of all-identical-but-empty classifications would also
	// pass the identity check; require the sweep to have detected
	// something at all before trusting it as an engine gate.
	chains := 0
	for _, c := range interp {
		if c == ClassChain {
			chains++
		}
	}
	if chains == 0 {
		t.Error("composed sweep under heavy workload detected no chain class at all")
	}
}
