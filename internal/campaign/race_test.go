package campaign

import (
	"context"
	"sync"
	"testing"
	"time"

	"parallax/internal/core"
	"parallax/internal/corpus"
	"parallax/internal/farm"
)

// TestCampaignConcurrentWithFarm runs a campaign shard while a farm
// churns warm and cold protection jobs over a shared stage cache —
// the -race proof that campaign execution, cache fills and cache hits
// don't trample each other. (The campaign reads a Protected produced
// through the same cache the farm keeps mutating.)
func TestCampaignConcurrentWithFarm(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second concurrency test")
	}
	cache := farm.NewCache()
	f := farm.New(farm.Config{Workers: 2, Cache: cache})
	defer f.Close()

	wget, err := corpus.ByName("wget")
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{VerifyFuncs: []string{wget.VerifyFunc}}

	// The campaign target is protected through the shared cache, so
	// campaign reads and farm cache traffic touch the same structures.
	prot, err := f.Protect(context.Background(), "target",
		targetModule(t), core.Options{VerifyFuncs: []string{"mix"}})
	if err != nil {
		t.Fatal(err)
	}
	// Warm the wget entries so half the background jobs are cache hits.
	if _, err := f.Protect(context.Background(), "warmup", wget.Build(), opts); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Warm jobs (cache hits) and cold jobs (fresh pool sizes →
		// scan misses) interleave while the campaign runs.
		for i := 0; i < 4; i++ {
			o := opts
			if i%2 == 1 {
				o.PoolCopies = 3 + i // cold: different content key
			}
			if _, err := f.Protect(context.Background(), "bg", wget.Build(), o); err != nil {
				t.Errorf("background farm job: %v", err)
				return
			}
		}
	}()

	rep, err := Run(context.Background(), prot, Config{
		Workers:    2,
		Stride:     7,
		MaxMutants: 300,
		MaxInst:    2_000_000,
		Timeout:    10 * time.Second,
	})
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Panics != 0 {
		t.Errorf("%d harness panics during concurrent campaign", rep.Panics)
	}
	if rep.Mutants == 0 {
		t.Error("concurrent campaign ran no mutants")
	}
	if s := f.Stats(); s.JobsFailed > 0 {
		t.Errorf("farm jobs failed during campaign: %s", s)
	}
}
