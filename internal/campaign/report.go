package campaign

import (
	"fmt"
	"sort"
	"strings"
)

// Class is a mutant outcome.
type Class uint8

// Outcome classes, per the paper's implicit-detection model: a chain
// detection is the protection working (tampering broke a gadget and the
// verification chain malfunctioned), a crash fault is detectable but
// not attributable to the chain, a timeout is a hang killed by the
// watchdog, and a silent success is a mutation the protection missed.
const (
	ClassChain Class = iota
	ClassCrash
	ClassTimeout
	ClassSilent
	ClassLoaderReject
	ClassInfraError
	numClasses
)

// KindInfraError is the fault-model name for ClassInfraError: the cell
// did not measure the protection at all — the harness infrastructure
// failed (injected or real: an allocation failure, a poisoned restore,
// a worker crash) and the mutant's detection outcome is unknown, not
// bad. Infra cells are excluded from detection rates and are re-run on
// a checkpoint resume.
const KindInfraError = ClassInfraError

func (c Class) String() string {
	switch c {
	case ClassChain:
		return "chain-detected"
	case ClassCrash:
		return "crash-fault"
	case ClassTimeout:
		return "timeout"
	case ClassSilent:
		return "silent"
	case ClassLoaderReject:
		return "loader-reject"
	case ClassInfraError:
		return "infra-error"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Row is one region's line in the detection-coverage matrix.
type Row struct {
	// Region names the symbol (or "(serialized)") the mutants hit.
	Region string
	// Guarded counts mutants at chain-guarded sites in this region.
	Guarded int
	// Total counts all mutants in the region; the class fields
	// partition it.
	Total        int
	Chain        int
	Crash        int
	Timeout      int
	Silent       int
	LoaderReject int
	Infra        int
}

// DetectedRate is the fraction of the region's measured mutants whose
// effect is observable (everything but silent successes). Infra-error
// cells measured nothing, so they are excluded from both sides of the
// ratio rather than counted as detections.
func (r Row) DetectedRate() float64 {
	measured := r.Total - r.Infra
	if measured <= 0 {
		return 0
	}
	return float64(measured-r.Silent) / float64(measured)
}

// Report is a finished campaign's detection-coverage matrix.
type Report struct {
	// Rows is the per-region matrix, sorted by region name.
	Rows []Row
	// Mutants is the total mutant count (sum of row totals).
	Mutants int
	// Panics counts mutant executions that panicked inside the
	// harness; the acceptance bar is zero.
	Panics int
	// GuardedTotal / GuardedChain count mutants at guarded sites and
	// how many of those the chain detected — the paper's coverage
	// claim lives in this ratio.
	GuardedTotal int
	GuardedChain int
	// InfraErrors counts cells lost to harness-infrastructure failures
	// (injected or real); the matrix completes anyway and these cells
	// are re-run on a checkpoint resume.
	InfraErrors int
	// Resumed counts cells restored from a checkpoint journal instead
	// of executed. It is bookkeeping, not an outcome, and is excluded
	// from String() so a resumed matrix renders byte-identical to an
	// uninterrupted one.
	Resumed int
}

// add accumulates one classified mutant.
func (rep *Report) add(rows map[string]*Row, m Mutant, c Class) {
	row := rows[m.Region]
	if row == nil {
		row = &Row{Region: m.Region}
		rows[m.Region] = row
	}
	row.Total++
	rep.Mutants++
	if m.Guarded {
		row.Guarded++
		// Guarded infra cells stay out of the coverage ratio: the cell
		// measured nothing, so it belongs in neither the numerator nor
		// the denominator of the headline claim.
		if c != ClassInfraError {
			rep.GuardedTotal++
			if c == ClassChain {
				rep.GuardedChain++
			}
		}
	}
	switch c {
	case ClassChain:
		row.Chain++
	case ClassCrash:
		row.Crash++
	case ClassTimeout:
		row.Timeout++
	case ClassSilent:
		row.Silent++
	case ClassLoaderReject:
		row.LoaderReject++
	case ClassInfraError:
		row.Infra++
		rep.InfraErrors++
	}
}

// finish sorts the matrix.
func (rep *Report) finish(rows map[string]*Row) {
	rep.Rows = rep.Rows[:0]
	for _, r := range rows {
		rep.Rows = append(rep.Rows, *r)
	}
	sort.Slice(rep.Rows, func(i, j int) bool { return rep.Rows[i].Region < rep.Rows[j].Region })
}

// Totals sums the matrix into one row (Region = "total").
func (rep *Report) Totals() Row {
	t := Row{Region: "total"}
	for _, r := range rep.Rows {
		t.Guarded += r.Guarded
		t.Total += r.Total
		t.Chain += r.Chain
		t.Crash += r.Crash
		t.Timeout += r.Timeout
		t.Silent += r.Silent
		t.LoaderReject += r.LoaderReject
		t.Infra += r.Infra
	}
	return t
}

// GuardedChainRate is the fraction of guarded-site mutants detected by
// chain malfunction — the headline coverage number.
func (rep *Report) GuardedChainRate() float64 {
	if rep.GuardedTotal == 0 {
		return 0
	}
	return float64(rep.GuardedChain) / float64(rep.GuardedTotal)
}

// String renders the matrix as an aligned text table.
func (rep *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %7s %7s %7s %7s %7s %7s %7s %7s %9s\n",
		"region", "mutants", "guarded", "chain", "crash", "timeout", "silent", "reject", "infra", "detected")
	line := func(r Row) {
		fmt.Fprintf(&b, "%-28s %7d %7d %7d %7d %7d %7d %7d %7d %8.1f%%\n",
			r.Region, r.Total, r.Guarded, r.Chain, r.Crash, r.Timeout, r.Silent,
			r.LoaderReject, r.Infra, 100*r.DetectedRate())
	}
	for _, r := range rep.Rows {
		line(r)
	}
	line(rep.Totals())
	fmt.Fprintf(&b, "guarded-site chain detection: %d/%d (%.1f%%), harness panics: %d, infra errors: %d\n",
		rep.GuardedChain, rep.GuardedTotal, 100*rep.GuardedChainRate(), rep.Panics, rep.InfraErrors)
	return b.String()
}
