package campaign

import (
	"fmt"
	"sort"
	"strings"
)

// Class is a mutant outcome.
type Class uint8

// Outcome classes, per the paper's implicit-detection model: a chain
// detection is the protection working (tampering broke a gadget and the
// verification chain malfunctioned), a crash fault is detectable but
// not attributable to the chain, a timeout is a hang killed by the
// watchdog, and a silent success is a mutation the protection missed.
const (
	ClassChain Class = iota
	ClassCrash
	ClassTimeout
	ClassSilent
	ClassLoaderReject
	numClasses
)

func (c Class) String() string {
	switch c {
	case ClassChain:
		return "chain-detected"
	case ClassCrash:
		return "crash-fault"
	case ClassTimeout:
		return "timeout"
	case ClassSilent:
		return "silent"
	case ClassLoaderReject:
		return "loader-reject"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Row is one region's line in the detection-coverage matrix.
type Row struct {
	// Region names the symbol (or "(serialized)") the mutants hit.
	Region string
	// Guarded counts mutants at chain-guarded sites in this region.
	Guarded int
	// Total counts all mutants in the region; the class fields
	// partition it.
	Total        int
	Chain        int
	Crash        int
	Timeout      int
	Silent       int
	LoaderReject int
}

// DetectedRate is the fraction of the region's mutants whose effect is
// observable (everything but silent successes).
func (r Row) DetectedRate() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Total-r.Silent) / float64(r.Total)
}

// Report is a finished campaign's detection-coverage matrix.
type Report struct {
	// Rows is the per-region matrix, sorted by region name.
	Rows []Row
	// Mutants is the total mutant count (sum of row totals).
	Mutants int
	// Panics counts mutant executions that panicked inside the
	// harness; the acceptance bar is zero.
	Panics int
	// GuardedTotal / GuardedChain count mutants at guarded sites and
	// how many of those the chain detected — the paper's coverage
	// claim lives in this ratio.
	GuardedTotal int
	GuardedChain int
}

// add accumulates one classified mutant.
func (rep *Report) add(rows map[string]*Row, m Mutant, c Class) {
	row := rows[m.Region]
	if row == nil {
		row = &Row{Region: m.Region}
		rows[m.Region] = row
	}
	row.Total++
	rep.Mutants++
	if m.Guarded {
		row.Guarded++
		rep.GuardedTotal++
		if c == ClassChain {
			rep.GuardedChain++
		}
	}
	switch c {
	case ClassChain:
		row.Chain++
	case ClassCrash:
		row.Crash++
	case ClassTimeout:
		row.Timeout++
	case ClassSilent:
		row.Silent++
	case ClassLoaderReject:
		row.LoaderReject++
	}
}

// finish sorts the matrix.
func (rep *Report) finish(rows map[string]*Row) {
	rep.Rows = rep.Rows[:0]
	for _, r := range rows {
		rep.Rows = append(rep.Rows, *r)
	}
	sort.Slice(rep.Rows, func(i, j int) bool { return rep.Rows[i].Region < rep.Rows[j].Region })
}

// Totals sums the matrix into one row (Region = "total").
func (rep *Report) Totals() Row {
	t := Row{Region: "total"}
	for _, r := range rep.Rows {
		t.Guarded += r.Guarded
		t.Total += r.Total
		t.Chain += r.Chain
		t.Crash += r.Crash
		t.Timeout += r.Timeout
		t.Silent += r.Silent
		t.LoaderReject += r.LoaderReject
	}
	return t
}

// GuardedChainRate is the fraction of guarded-site mutants detected by
// chain malfunction — the headline coverage number.
func (rep *Report) GuardedChainRate() float64 {
	if rep.GuardedTotal == 0 {
		return 0
	}
	return float64(rep.GuardedChain) / float64(rep.GuardedTotal)
}

// String renders the matrix as an aligned text table.
func (rep *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %7s %7s %7s %7s %7s %7s %7s %9s\n",
		"region", "mutants", "guarded", "chain", "crash", "timeout", "silent", "reject", "detected")
	line := func(r Row) {
		fmt.Fprintf(&b, "%-28s %7d %7d %7d %7d %7d %7d %7d %8.1f%%\n",
			r.Region, r.Total, r.Guarded, r.Chain, r.Crash, r.Timeout, r.Silent,
			r.LoaderReject, 100*r.DetectedRate())
	}
	for _, r := range rep.Rows {
		line(r)
	}
	line(rep.Totals())
	fmt.Fprintf(&b, "guarded-site chain detection: %d/%d (%.1f%%), harness panics: %d\n",
		rep.GuardedChain, rep.GuardedTotal, 100*rep.GuardedChainRate(), rep.Panics)
	return b.String()
}
