package campaign

import (
	"context"
	"testing"
	"time"

	"parallax/internal/attack"
	"parallax/internal/core"
	"parallax/internal/dyngen"
	"parallax/internal/obs"
)

// engineClasses executes the mutant set under one engine configuration
// and returns the per-mutant classification vector plus the registry
// that accumulated the run's emu.tb.* counters. private forces
// per-worker translation caches by dropping the shared catalog
// withDefaults created.
func engineClasses(t *testing.T, prot *core.Protected, mutants []Mutant,
	cfg Config, engine string, private bool) ([]Class, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	cfg.Engine = engine
	cfg.Obs = reg
	cfg = cfg.withDefaults()
	if private {
		cfg.cat = nil
	}
	clean := attack.RunWith(context.Background(), prot.Image, attack.RunConfig{
		Stdin: cfg.Stdin, MaxInst: cfg.MaxInst,
		MemBudget: cfg.MemBudget, StackSize: cfg.StackSize,
		Obs: cfg.Obs, Engine: cfg.Engine, Catalog: cfg.cat,
	})
	if clean.Err != nil {
		t.Fatalf("clean run (%s): %v", engine, clean.Err)
	}
	classes, panics, err := executeAll(context.Background(), prot, mutants, clean, cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if panics != 0 {
		t.Fatalf("engine %s: %d harness panics", engine, panics)
	}
	return classes, reg
}

// assertSameVector requires two classification vectors to agree on
// every mutant.
func assertSameVector(t *testing.T, mutants []Mutant, name string, want, got []Class) {
	t.Helper()
	diverged := 0
	for i := range mutants {
		if want[i] != got[i] {
			diverged++
			if diverged <= 10 {
				t.Errorf("mutant %d (%v): interp=%v %s=%v", i, mutants[i], want[i], name, got[i])
			}
		}
	}
	if diverged > 0 {
		t.Fatalf("%s: %d of %d mutants classified differently from interp", name, diverged, len(mutants))
	}
}

// TestDifferentialEngines is the engine-flip gate on the snapshot
// path: the same multi-worker mutant set classified under the
// interpreter, under tb with private per-worker caches, and under tb
// with the campaign's shared catalog must produce identical vectors —
// and the shared catalog must do strictly less translation work than
// the private caches while actually adopting blocks. Compact enough
// for the race build, where the catalog's concurrent adopt/install
// paths get checked across 4 workers.
func TestDifferentialEngines(t *testing.T) {
	prot := protectedTarget(t)
	cfg := Config{
		Workers:    4,
		Stride:     3,
		MaxMutants: 400,
		MaxInst:    2_000_000,
		Timeout:    60 * time.Second,
	}
	mutants, err := Enumerate(prot, cfg)
	if err != nil {
		t.Fatal(err)
	}

	interp, _ := engineClasses(t, prot, mutants, cfg, "", false)
	private, regPriv := engineClasses(t, prot, mutants, cfg, "tb", true)
	shared, regShared := engineClasses(t, prot, mutants, cfg, "tb", false)

	assertSameVector(t, mutants, "tb-private", interp, private)
	assertSameVector(t, mutants, "tb-shared", interp, shared)

	tPriv := regPriv.Counter("emu.tb.translations").Value()
	tShared := regShared.Counter("emu.tb.translations").Value()
	if tShared >= tPriv {
		t.Errorf("shared catalog translated %d blocks, private caches %d; want strictly fewer", tShared, tPriv)
	}
	if hits := regShared.Counter("emu.tb.catalog_hits").Value(); hits == 0 {
		t.Error("shared-catalog campaign recorded no catalog hits")
	}
	if regPriv.Counter("emu.tb.catalog_hits").Value() != 0 {
		t.Error("private-cache campaign recorded catalog hits")
	}
}

// TestDifferentialEnginesReload covers the clone+reload path: every
// mutant gets a fresh CPU, so the shared catalog is the only thing
// carrying translations across runs — and the vector must still match
// the interpreter's.
func TestDifferentialEnginesReload(t *testing.T) {
	prot := protectedTarget(t)
	cfg := Config{
		Workers:    2,
		Reload:     true,
		Stride:     5,
		MaxMutants: 120,
		MaxInst:    2_000_000,
		Timeout:    60 * time.Second,
	}
	mutants, err := Enumerate(prot, cfg)
	if err != nil {
		t.Fatal(err)
	}
	interp, _ := engineClasses(t, prot, mutants, cfg, "", false)
	shared, regShared := engineClasses(t, prot, mutants, cfg, "tb", false)
	assertSameVector(t, mutants, "tb-shared-reload", interp, shared)
	if hits := regShared.Counter("emu.tb.catalog_hits").Value(); hits == 0 {
		t.Error("reload-path shared catalog recorded no hits")
	}
}

// TestDifferentialEnginesSMC protects the target with xor chains — the
// decoder decrypts the chain buffer before every call, so every run
// self-modifies chain-guarded bytes — and requires engine-identical
// classification with the shared catalog attached. This pins the
// interaction between per-engine SMC invalidation and catalog
// adoption: a mutant adopting a block whose bytes its own decoder is
// about to rewrite must still converge on the interpreter's outcome.
func TestDifferentialEnginesSMC(t *testing.T) {
	p, err := core.Protect(targetModule(t), core.Options{
		VerifyFuncs: []string{"mix"}, ChainMode: dyngen.ModeXor,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Workers:    4,
		Stride:     3,
		MaxMutants: 300,
		MaxInst:    2_000_000,
		Timeout:    60 * time.Second,
	}
	mutants, err := Enumerate(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	interp, _ := engineClasses(t, p, mutants, cfg, "", false)
	shared, _ := engineClasses(t, p, mutants, cfg, "tb", false)
	assertSameVector(t, mutants, "tb-shared-smc", interp, shared)
}
