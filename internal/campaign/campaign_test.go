package campaign

import (
	"context"
	"testing"
	"time"

	"parallax/internal/core"
	"parallax/internal/ir"
)

// targetModule builds a small campaign target: "mix" is both
// verification code and gadget host, "main" drives it.
func targetModule(t *testing.T) *ir.Module {
	t.Helper()
	mb := ir.NewModule("target")

	fb := mb.Func("mix", 2)
	a := fb.Param(0)
	b := fb.Param(1)
	h := fb.Xor(a, fb.Const(0x5D17))
	i := fb.Const(0)
	fb.Jmp("head")
	fb.Block("head")
	lim := fb.Const(6)
	c := fb.Cmp(ir.ULt, i, lim)
	fb.Br(c, "body", "done")
	fb.Block("body")
	k := fb.Const(29)
	fb.Assign(h, fb.Add(fb.Mul(h, k), b))
	five := fb.Const(5)
	fb.Assign(h, fb.Xor(h, fb.Shr(h, five)))
	one := fb.Const(1)
	fb.Assign(i, fb.Add(i, one))
	fb.Jmp("head")
	fb.Block("done")
	mask := fb.Const(0x3FFFFFFF)
	fb.Ret(fb.And(h, mask))

	fb = mb.Func("main", 0)
	acc := fb.Const(0)
	j := fb.Const(0)
	fb.Jmp("head")
	fb.Block("head")
	lim2 := fb.Const(5)
	c2 := fb.Cmp(ir.ULt, j, lim2)
	fb.Br(c2, "body", "done")
	fb.Block("body")
	fb.Assign(acc, fb.Call("mix", acc, j))
	one2 := fb.Const(1)
	fb.Assign(j, fb.Add(j, one2))
	fb.Jmp("head")
	fb.Block("done")
	m127 := fb.Const(127)
	fb.Ret(fb.And(acc, m127))
	mb.SetEntry("main")
	return mb.MustBuild()
}

func protectedTarget(t *testing.T) *core.Protected {
	t.Helper()
	p, err := core.Protect(targetModule(t), core.Options{VerifyFuncs: []string{"mix"}})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCampaignMatrix(t *testing.T) {
	prot := protectedTarget(t)
	rep, err := Run(context.Background(), prot, Config{
		Stride:     3,
		MaxMutants: 1500,
		MaxInst:    2_000_000,
		Timeout:    5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	if rep.Panics != 0 {
		t.Errorf("campaign recorded %d harness panics, want 0", rep.Panics)
	}
	if rep.Mutants == 0 {
		t.Fatal("campaign enumerated no mutants")
	}
	tot := rep.Totals()
	if got := tot.Chain + tot.Crash + tot.Timeout + tot.Silent + tot.LoaderReject; got != tot.Total {
		t.Errorf("classes sum to %d, total is %d — some mutant unclassified", got, tot.Total)
	}
	// The paper's claim: tampering with chain-guarded bytes is detected
	// through chain malfunction. Demand strictly positive coverage.
	if rep.GuardedTotal == 0 {
		t.Fatal("no guarded-site mutants: protection produced no guarded bytes?")
	}
	if rep.GuardedChainRate() <= 0 {
		t.Errorf("guarded-site chain detection rate is 0 (%d/%d)",
			rep.GuardedChain, rep.GuardedTotal)
	}
	// Serialized corruption must be present and mostly bounced by the
	// hardened loader or otherwise accounted for.
	var serial *Row
	for i := range rep.Rows {
		if rep.Rows[i].Region == serialRegion {
			serial = &rep.Rows[i]
		}
	}
	if serial == nil || serial.Total == 0 {
		t.Fatal("no serialized-corruption mutants in the matrix")
	}
	if serial.LoaderReject == 0 {
		t.Error("hardened loader rejected no corrupted streams")
	}
	t.Logf("\n%s", rep)
}

func TestCampaignCancellation(t *testing.T) {
	prot := protectedTarget(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, prot, Config{Stride: 1}); err == nil {
		t.Fatal("cancelled campaign returned no error")
	}
}

func TestCampaignDeterministicEnumeration(t *testing.T) {
	prot := protectedTarget(t)
	cfg := Config{Stride: 5, MaxMutants: 400}
	a, err := Enumerate(prot, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Enumerate(prot, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("enumeration count changed between runs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("mutant %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	if len(a) > 400 {
		t.Errorf("MaxMutants not honored: %d mutants", len(a))
	}
}

func TestCampaignNilProtected(t *testing.T) {
	if _, err := Run(context.Background(), nil, Config{}); err == nil {
		t.Fatal("nil protected accepted")
	}
}
