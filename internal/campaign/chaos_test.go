package campaign

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"parallax/internal/attack"
	"parallax/internal/chaos"
	"parallax/internal/obs"
)

// chaosPlan arms every campaign-reachable fault point with low
// per-decision probabilities and bounded budgets, so a seeded sweep
// hits several distinct points without drowning the matrix.
func chaosPlan(seed uint64) chaos.Plan {
	return chaos.Plan{Seed: seed, Faults: []chaos.Fault{
		{Point: chaos.PointCampaignMutant, Prob: 0.03},
		{Point: chaos.PointCampaignDeadline, Prob: 0.03},
		{Point: chaos.PointEmuRestoreDirty, Prob: 0.03},
		{Point: chaos.PointImageRead, Prob: 0.5},
		{Point: chaos.PointEmuBudget, Prob: 0.02, Count: 8},
	}}
}

// TestChaosCampaignGraceful is the tentpole acceptance gate: a seeded
// plan injecting into several distinct fault points over the wget
// campaign must degrade gracefully — the matrix completes, every
// faulted cell classifies as an infra error, and every cell the
// injection did not touch is identical to the fault-free run's.
func TestChaosCampaignGraceful(t *testing.T) {
	if testing.Short() {
		t.Skip("full wget campaign")
	}
	if raceEnabled {
		t.Skip("corpus chaos sweep skipped under -race (checkpoint tests cover the synthetic target)")
	}
	prot, stdin := protectedCorpus(t, "wget")
	cfg := Config{
		Workers: 4, Stride: 7, MaxMutants: 400,
		MaxInst: 6_000_000, Timeout: 60 * time.Second, Stdin: stdin,
	}.withDefaults()

	clean := attack.RunWith(context.Background(), prot.Image, attack.RunConfig{
		Stdin: cfg.Stdin, MaxInst: cfg.MaxInst,
	})
	if clean.Err != nil {
		t.Fatalf("clean run: %v", clean.Err)
	}
	mutants, err := Enumerate(prot, cfg)
	if err != nil {
		t.Fatal(err)
	}

	base, panics, err := executeAll(context.Background(), prot, mutants, clean, cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if panics != 0 {
		t.Fatalf("fault-free run: %d harness panics", panics)
	}

	reg := obs.NewRegistry()
	chaosCfg := cfg
	chaosCfg.Obs = reg
	chaosCfg.Chaos = chaos.New(chaosPlan(1234), reg)
	faulted, panics, err := executeAll(context.Background(), prot, mutants, clean, chaosCfg, nil, nil)
	if err != nil {
		t.Fatalf("faulted campaign did not complete: %v", err)
	}
	if panics != 0 {
		t.Fatalf("faulted run: %d harness panics leaked past injection accounting", panics)
	}

	infra := 0
	for i := range mutants {
		switch {
		case faulted[i] == ClassInfraError:
			infra++
		case faulted[i] != base[i]:
			t.Errorf("mutant %d (%v): fault-free %v, faulted %v — a non-faulted cell changed",
				i, mutants[i], base[i], faulted[i])
		}
	}
	if infra == 0 {
		t.Fatal("seeded plan injected nothing")
	}
	if reg.Counter("chaos.injected").Value() == 0 {
		t.Fatal("chaos.injected counter did not move")
	}
	points := 0
	for _, p := range chaos.Points() {
		if reg.Counter("chaos.injected."+string(p)).Value() > 0 {
			points++
		}
	}
	if points < 4 {
		t.Fatalf("only %d distinct fault points fired, want >= 4", points)
	}
	t.Logf("chaos campaign: %d/%d infra cells across %d fault points", infra, len(mutants), points)
}

// runCheckpointed runs a full checkpointed campaign over the synthetic
// target and returns its report.
func runCheckpointed(t *testing.T, ctx context.Context, cfg Config, path string) (*Report, error) {
	t.Helper()
	prot := protectedTarget(t)
	cfg.Checkpoint = path
	return Run(ctx, prot, cfg)
}

// TestCheckpointResumeByteIdentical: a campaign killed mid-flight and
// resumed from its journal must produce a matrix byte-identical to an
// uninterrupted run — including when the kill tore the final journal
// line mid-write.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	cfg := Config{Workers: 2, Stride: 6, MaxMutants: 300}
	dir := t.TempDir()

	full := filepath.Join(dir, "full.ckpt")
	rep, err := runCheckpointed(t, context.Background(), cfg, full)
	if err != nil {
		t.Fatal(err)
	}
	want := rep.String()

	// Simulate a kill: keep the header and half the journal entries,
	// plus a torn final line (a write interrupted mid-byte).
	raw, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(raw), "\n")
	if len(lines) < 8 {
		t.Fatalf("journal too small to split: %d lines", len(lines))
	}
	keep := 1 + (len(lines)-1)/2
	torn := strings.Join(lines[:keep], "") + lines[keep][:len(lines[keep])/2]
	killed := filepath.Join(dir, "killed.ckpt")
	if err := os.WriteFile(killed, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}
	rep2, err := runCheckpointed(t, context.Background(), cfg, killed)
	if err != nil {
		t.Fatalf("resume from torn journal: %v", err)
	}
	if rep2.Resumed != keep-1 {
		t.Errorf("Resumed = %d, want %d journaled cells", rep2.Resumed, keep-1)
	}
	if got := rep2.String(); got != want {
		t.Errorf("resumed matrix differs from uninterrupted run:\n--- want\n%s--- got\n%s", want, got)
	}

	// A resume of a complete journal executes nothing and still renders
	// the identical matrix.
	rep3, err := runCheckpointed(t, context.Background(), cfg, full)
	if err != nil {
		t.Fatal(err)
	}
	if rep3.Resumed != rep3.Mutants {
		t.Errorf("complete-journal resume executed %d cells", rep3.Mutants-rep3.Resumed)
	}
	if got := rep3.String(); got != want {
		t.Errorf("complete-journal resume matrix differs:\n--- want\n%s--- got\n%s", want, got)
	}
}

// TestCheckpointCancelAndResume exercises the genuine kill path: the
// campaign context is cancelled mid-run, outcomes observed after the
// cancellation are not journaled, and the resumed campaign reproduces
// the uninterrupted matrix exactly.
func TestCheckpointCancelAndResume(t *testing.T) {
	cfg := Config{Workers: 2, Stride: 6, MaxMutants: 300}
	dir := t.TempDir()

	full := filepath.Join(dir, "full.ckpt")
	rep, err := runCheckpointed(t, context.Background(), cfg, full)
	if err != nil {
		t.Fatal(err)
	}
	want := rep.String()

	cancelled := filepath.Join(dir, "cancelled.ckpt")
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	_, err = runCheckpointed(t, ctx, cfg, cancelled)
	cancel()
	if err == nil {
		t.Skip("campaign finished before the cancellation landed")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled campaign: %v", err)
	}
	rep2, err := runCheckpointed(t, context.Background(), cfg, cancelled)
	if err != nil {
		t.Fatalf("resume after cancellation: %v", err)
	}
	if got := rep2.String(); got != want {
		t.Errorf("post-cancel resume matrix differs:\n--- want\n%s--- got\n%s", want, got)
	}
}

// TestCheckpointMismatchRefused: a journal recorded under one campaign
// must be refused — with the typed error — by a campaign whose config
// or image differs, instead of replaying outcomes onto the wrong cells.
func TestCheckpointMismatchRefused(t *testing.T) {
	cfg := Config{Workers: 2, Stride: 6, MaxMutants: 300}
	path := filepath.Join(t.TempDir(), "ckpt")
	if _, err := runCheckpointed(t, context.Background(), cfg, path); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Stride = 7 // different enumeration
	_, err := runCheckpointed(t, context.Background(), other, path)
	if !errors.Is(err, ErrJournalMismatch) {
		t.Fatalf("want ErrJournalMismatch, got %v", err)
	}

	// Mid-file garbage (not a torn tail) is corruption, also typed.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(raw), "\n")
	lines[2] = "garbage line\n"
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = runCheckpointed(t, context.Background(), cfg, path)
	if !errors.Is(err, ErrJournalCorrupt) {
		t.Fatalf("want ErrJournalCorrupt, got %v", err)
	}
}
