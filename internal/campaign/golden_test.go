// External test package: goldens are keyed by generated families, and
// importing corpus/gen from an internal campaign test would read as a
// dependency of the engine on the generator. The goldens only need the
// public campaign API.
package campaign_test

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"parallax/internal/campaign"
	"parallax/internal/core"
	"parallax/internal/corpus/gen"
)

var update = flag.Bool("update", false, "rewrite campaign matrix goldens")

// goldenKey names a golden by (family, seed, params-hash, workload):
// re-seeding or re-parameterizing a family invalidates exactly the
// goldens whose inputs changed, stale goldens for retired parameter
// tuples are visible as orphaned files rather than silently matched,
// and the same program swept under different workload profiles records
// distinct matrices (the workload decides whether cold code executes).
func goldenKey(fam gen.Family, seed uint64, workload string) string {
	return fmt.Sprintf("%s_s%d_%s_%s", fam.Name, seed, fam.Params.Hash()[:12], workload)
}

// goldenConfig is the pinned campaign configuration the goldens were
// recorded under. Every knob that shapes enumeration or classification
// is explicit; changing any of them requires re-recording with -update.
func goldenConfig() campaign.Config {
	return campaign.Config{
		Workers:    4,
		MaxInst:    2_000_000,
		Stride:     7,
		MaxMutants: 64,
	}
}

// goldenTargets is the recorded (family, seed, workload) set: two
// seeds of the smallest family plus one mix variant, with the first
// target recorded under both workload profiles so the idle/heavy
// matrix split is itself pinned.
func goldenTargets(t *testing.T) []struct {
	fam      gen.Family
	seed     uint64
	workload string
} {
	t.Helper()
	pick := func(name string) gen.Family {
		fam, err := gen.FamilyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		return fam
	}
	return []struct {
		fam      gen.Family
		seed     uint64
		workload string
	}{
		{pick("tiny"), 1, "idle"},
		{pick("tiny"), 1, "heavy"},
		{pick("tiny"), 2, "idle"},
		{pick("branchy"), 1, "heavy"},
	}
}

// TestCampaignGoldens renders each target's detection matrix and
// compares it byte-for-byte against the recorded golden; -update
// rewrites them. A mismatch means the protect pipeline, the campaign's
// deterministic enumeration, the classifier, or the generator changed
// observable behaviour — all of which must be a deliberate, re-recorded
// decision, never drift.
func TestCampaignGoldens(t *testing.T) {
	for _, tgt := range goldenTargets(t) {
		tgt := tgt
		t.Run(goldenKey(tgt.fam, tgt.seed, tgt.workload), func(t *testing.T) {
			prog, err := gen.FamilyProgram(tgt.fam, tgt.seed)
			if err != nil {
				t.Fatal(err)
			}
			stdin, ok := prog.Workload(tgt.workload)
			if !ok {
				t.Fatalf("no workload %q in %s", tgt.workload, prog.Name)
			}
			prot, err := core.Protect(prog.Build(), core.Options{
				VerifyFuncs: []string{prog.VerifyFunc},
			})
			if err != nil {
				t.Fatalf("protect: %v", err)
			}
			cfg := goldenConfig()
			cfg.Stdin = stdin
			rep, err := campaign.Run(context.Background(), prot, cfg)
			if err != nil {
				t.Fatalf("campaign: %v", err)
			}
			got := rep.String()

			path := filepath.Join("testdata", "golden", goldenKey(tgt.fam, tgt.seed, tgt.workload)+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("recorded %s", path)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to record): %v", err)
			}
			if got != string(want) {
				t.Errorf("detection matrix drifted from %s:\n--- golden ---\n%s--- got ---\n%s",
					path, want, got)
			}
		})
	}
}

// TestGoldenKeyInvalidation pins the keying contract: a params change
// moves the key (so the old golden cannot be silently matched), a seed
// change moves the key, and the key is a pure function of its inputs.
func TestGoldenKeyInvalidation(t *testing.T) {
	fam, err := gen.FamilyByName("tiny")
	if err != nil {
		t.Fatal(err)
	}
	base := goldenKey(fam, 1, "idle")
	if goldenKey(fam, 1, "idle") != base {
		t.Fatal("key not stable")
	}
	if goldenKey(fam, 2, "idle") == base {
		t.Error("seed change did not move the key")
	}
	if goldenKey(fam, 1, "heavy") == base {
		t.Error("workload change did not move the key")
	}
	mutated := fam
	mutated.Params.HotPct++
	if goldenKey(mutated, 1, "idle") == base {
		t.Error("params change did not move the key")
	}
	// The mutated key must not resolve to a recorded golden: a params
	// change invalidates (finds absent) rather than mismatches.
	path := filepath.Join("testdata", "golden", goldenKey(mutated, 1, "idle")+".golden")
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("golden unexpectedly exists for mutated params: %s", path)
	}
	// And the real key must resolve, so the invalidation above is
	// meaningful rather than vacuous.
	real := filepath.Join("testdata", "golden", base+".golden")
	if _, err := os.Stat(real); err != nil {
		t.Errorf("recorded golden missing for %s: %v", base, err)
	}
}
