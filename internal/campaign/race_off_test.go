//go:build !race

package campaign

// raceEnabled mirrors race_on_test.go for ordinary builds.
const raceEnabled = false
