package campaign

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"parallax/internal/attack"
	"parallax/internal/core"
	"parallax/internal/corpus"
)

// diffConfig is the shared differential-test configuration: a generous
// wall-clock watchdog so hangs die deterministically on the instruction
// budget, never on timing. maxInst must exceed the program's clean-run
// instruction count (wget ≈ 3.4M, nginx ≈ 18M).
func diffConfig(workers int, maxInst uint64, maxMutants int) Config {
	return Config{
		Workers:    workers,
		Stride:     5,
		MaxMutants: maxMutants,
		MaxInst:    maxInst,
		Timeout:    60 * time.Second,
	}
}

// assertSameClasses runs the same mutant set through the clone+reload
// path and the snapshot/restore path and requires byte-identical
// per-mutant classification vectors.
func assertSameClasses(t *testing.T, prot *core.Protected, mutants []Mutant, cfg Config) {
	t.Helper()
	cfg = cfg.withDefaults()
	clean := attack.RunWith(context.Background(), prot.Image, attack.RunConfig{
		Stdin: cfg.Stdin, MaxInst: cfg.MaxInst,
		MemBudget: cfg.MemBudget, StackSize: cfg.StackSize,
	})
	if clean.Err != nil {
		t.Fatalf("clean run: %v", clean.Err)
	}

	reloadCfg := cfg
	reloadCfg.Reload = true
	reload, panics, err := executeAll(context.Background(), prot, mutants, clean, reloadCfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if panics != 0 {
		t.Fatalf("reload path: %d harness panics", panics)
	}
	snapCfg := cfg
	snapCfg.Reload = false
	snap, panics, err := executeAll(context.Background(), prot, mutants, clean, snapCfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if panics != 0 {
		t.Fatalf("snapshot path: %d harness panics", panics)
	}

	diverged := 0
	for i := range mutants {
		if reload[i] != snap[i] {
			diverged++
			if diverged <= 10 {
				t.Errorf("mutant %d (%v): reload=%v snapshot=%v",
					i, mutants[i], reload[i], snap[i])
			}
		}
	}
	if diverged > 0 {
		t.Fatalf("%d of %d mutants classified differently between paths", diverged, len(mutants))
	}
}

// protectedCorpus protects one seed corpus program for campaigning.
func protectedCorpus(t *testing.T, name string) (*core.Protected, []byte) {
	t.Helper()
	p, err := corpus.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	prot, err := core.Protect(p.Build(), core.Options{
		VerifyFuncs: []string{p.VerifyFunc}, Workload: p.Stdin,
	})
	if err != nil {
		t.Fatal(err)
	}
	return prot, p.Stdin
}

// TestDifferentialTarget is the always-on differential: the synthetic
// campaign target, every mutation kind, and the full Run reports
// compared field for field. Cheap enough to run under the race
// detector too.
func TestDifferentialTarget(t *testing.T) {
	prot := protectedTarget(t)
	cfg := Config{
		Stride:     3,
		MaxMutants: 400,
		MaxInst:    2_000_000,
		Timeout:    60 * time.Second,
	}
	mutants, err := Enumerate(prot, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertSameClasses(t, prot, mutants, cfg)

	reloadCfg := cfg
	reloadCfg.Reload = true
	repReload, err := Run(context.Background(), prot, reloadCfg)
	if err != nil {
		t.Fatal(err)
	}
	repSnap, err := Run(context.Background(), prot, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(repReload, repSnap) {
		t.Errorf("reports differ between paths:\nreload:\n%s\nsnapshot:\n%s",
			repReload, repSnap)
	}
}

// TestDifferentialCorpus: the enumerated campaign over the seed wget
// and nginx corpus must classify identically on both execution paths,
// and (for wget) the full Run reports must match field for field.
func TestDifferentialCorpus(t *testing.T) {
	if raceEnabled {
		t.Skip("corpus differential skipped under -race (covered by the synthetic target)")
	}
	cases := []struct {
		name       string
		maxInst    uint64
		maxMutants int
		reports    bool
	}{
		{"wget", 6_000_000, 60, true},
		{"nginx", 25_000_000, 24, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prot, stdin := protectedCorpus(t, tc.name)
			cfg := diffConfig(1, tc.maxInst, tc.maxMutants)
			cfg.Stdin = stdin

			mutants, err := Enumerate(prot, cfg)
			if err != nil {
				t.Fatal(err)
			}
			assertSameClasses(t, prot, mutants, cfg)
			if !tc.reports {
				return
			}
			reloadCfg := cfg
			reloadCfg.Reload = true
			repReload, err := Run(context.Background(), prot, reloadCfg)
			if err != nil {
				t.Fatal(err)
			}
			repSnap, err := Run(context.Background(), prot, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(repReload, repSnap) {
				t.Errorf("reports differ between paths:\nreload:\n%s\nsnapshot:\n%s",
					repReload, repSnap)
			}
		})
	}
}

// TestDifferentialRandomMutants throws seeded-random byte patches at
// both paths, deliberately including sites outside initialized data
// (BSS tails) and section edges, where the two paths' bounds handling
// could plausibly diverge.
func TestDifferentialRandomMutants(t *testing.T) {
	if raceEnabled {
		t.Skip("corpus differential skipped under -race (covered by the synthetic target)")
	}
	prot, stdin := protectedCorpus(t, "wget")
	sections := prot.Image.Sections
	if len(sections) == 0 {
		t.Fatal("protected image has no sections")
	}

	r := rand.New(rand.NewSource(1))
	var mutants []Mutant
	for i := 0; i < 60; i++ {
		sec := sections[r.Intn(len(sections))]
		// Bias toward edges: full Size span includes BSS, which the
		// clone path's WriteAt rejects — parity there matters most.
		off := uint32(r.Intn(int(sec.Size)))
		if i%5 == 0 && sec.Size > 4 {
			off = sec.Size - uint32(1+r.Intn(4))
		}
		m := Mutant{
			Region:  regionOf(prot.Image, sec.Addr+off),
			Addr:    sec.Addr + off,
			Len:     1,
			Guarded: i%2 == 0,
		}
		switch r.Intn(3) {
		case 0:
			m.Kind = KindBitFlip
			m.Bit = uint8(r.Intn(8))
		case 1:
			m.Kind = KindByteSet
		default:
			m.Kind = KindNopSweep
			m.Len = 1 + r.Intn(6)
		}
		mutants = append(mutants, m)
	}
	cfg := diffConfig(1, 6_000_000, 0)
	cfg.Stdin = stdin
	assertSameClasses(t, prot, mutants, cfg)
}

// TestDifferentialMultiWorker is the -race variant: several workers
// per path, each with its own vmEngine, sharing nothing but the base
// image — and still the identical classification vector. Uses the
// synthetic target so the race build can afford it.
func TestDifferentialMultiWorker(t *testing.T) {
	prot := protectedTarget(t)
	cfg := Config{
		Workers:    4,
		Stride:     3,
		MaxMutants: 400,
		MaxInst:    2_000_000,
		Timeout:    60 * time.Second,
	}
	mutants, err := Enumerate(prot, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertSameClasses(t, prot, mutants, cfg)
}
