// Package campaign is the exhaustive tamper-campaign engine: it
// enumerates byte-level mutations over a protected image (bit flips,
// byte patches, NOP sweeps, serialized-form corruption), executes every
// mutant under the emulator with hard watchdog budgets, and classifies
// each outcome into a per-region detection-coverage matrix.
//
// The matrix quantifies the paper's central claim — tampering with
// protected instructions destroys the gadgets the verification chains
// execute, so modifications surface as chain malfunction without any
// explicit checksum. A mutant is chain-detected when it faults inside
// chain-guarded bytes (gadget spans or parallax chain data) or when a
// mutation of a guarded site survives to a divergent exit; crash-fault
// when it dies elsewhere; timeout when the watchdog kills a hang;
// silent when the mutated program is observationally identical to the
// clean run. Serialized-form mutants rejected by the hardened loader
// are counted separately — a corruption the toolchain refuses to load
// never reaches execution.
//
// The engine is hardened for hostile inputs by construction: every
// mutant runs under a context deadline and instruction budget, panics
// in the harness are confined and counted, and the campaign is
// deterministic for a given image and config.
package campaign

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"parallax/internal/attack"
	"parallax/internal/chaos"
	"parallax/internal/core"
	"parallax/internal/emu"
	"parallax/internal/emu/tb"
	"parallax/internal/image"
	"parallax/internal/obs"
)

// Config tunes a campaign.
type Config struct {
	// Workers is the concurrent mutant-executor count; below 1 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// MaxInst bounds each mutant run (0 = 5M instructions).
	MaxInst uint64
	// Timeout is the per-mutant wall-clock watchdog (0 = 2s).
	Timeout time.Duration
	// Stride is the byte step between mutation sites (0 = 1: every
	// byte).
	Stride int
	// MaxMutants caps the campaign size; enumeration downsamples
	// deterministically above it (0 = 4096).
	MaxMutants int
	// Kinds selects the mutation kinds (nil = AllKinds).
	Kinds []Kind
	// Stdin is the workload fed to every run, clean and mutated.
	Stdin []byte
	// Reload forces the legacy execution path: a full image clone +
	// emulator load per mutant. The zero value uses the snapshot/restore
	// engine — each worker loads the image once and rewinds dirty pages
	// between mutants — which is behaviorally identical (see the
	// differential tests) and allocation-free per mutant; the wall-clock
	// win scales with image size relative to workload length (see
	// EXPERIMENTS.md). KindSerial mutants always take the loader path
	// regardless.
	Reload bool
	// MemBudget / StackSize bound each mutant's emulator (0 =
	// defaults).
	MemBudget uint64
	StackSize uint32
	// Engine selects the execution backend for every run, clean and
	// mutated: "" or "interp" is the interpreter, "tb" the
	// translation-block engine. On the snapshot/restore path each
	// worker keeps one persistent tb engine, so translations of the
	// unmutated pages stay warm across mutants (Restore's page
	// copy-back invalidates exactly the translations a mutant dirtied).
	Engine string
	// Obs, when non-nil, accumulates campaign activity into a shared
	// metrics registry: per-class outcome counters
	// (campaign.outcome.<class>), campaign.mutants, campaign.panics,
	// and — via attack.RunWith — the emu.* run counters for every
	// mutant execution. Nil disables recording entirely.
	Obs *obs.Registry
	// Chaos, when non-nil, arms fault injection on mutant execution
	// (never the clean reference run): worker crashes, blown deadlines,
	// restore corruption, load failures, truncated serialized reads.
	// Faulted cells classify as ClassInfraError and the matrix still
	// completes; see the package fault model in internal/chaos.
	Chaos *chaos.Injector
	// Checkpoint, when non-empty, is the path of the append-only resume
	// journal: every finished mutant outcome is recorded there, and a
	// re-run against the same image, config and journal skips the
	// recorded cells — a killed campaign resumes where it stopped and
	// produces a byte-identical final matrix.
	Checkpoint string

	// cat is the campaign's shared translation catalog, created by
	// withDefaults when Engine is "tb" and threaded to the clean run
	// and every worker engine on both execution paths. A one-byte
	// mutant re-translates only the blocks its patch touched; the
	// other ~99% are adopted from whichever worker translated them
	// first (see internal/emu/tb's catalog coherence story).
	cat *tb.Catalog
}

func (cfg Config) withDefaults() Config {
	if cfg.Workers < 1 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxInst == 0 {
		cfg.MaxInst = 5_000_000
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.Stride < 1 {
		cfg.Stride = 1
	}
	if cfg.MaxMutants == 0 {
		cfg.MaxMutants = 4096
	}
	if cfg.Kinds == nil {
		cfg.Kinds = AllKinds()
	}
	if cfg.Engine == "tb" && cfg.cat == nil {
		cfg.cat = tb.NewCatalog()
	}
	return cfg
}

// Workload names one stdin profile for a campaign. The same protected
// image exercises different code under different workloads — the
// generated corpus reads a cold-call budget from stdin — so detection
// coverage is a per-workload quantity, not a per-image one.
type Workload struct {
	Name  string
	Stdin []byte
}

// RunWorkloads executes one full campaign per workload against the
// same protected image and returns the reports keyed by workload name.
// The workloads share cfg (including, for the tb engine, one shared
// translation catalog — stdin never changes code bytes, so every
// workload's workers adopt each other's translations). A configured
// checkpoint path gets a per-workload suffix so resumable campaigns
// don't collide; the journal additionally binds the workload's stdin
// through the config hash.
func RunWorkloads(ctx context.Context, prot *core.Protected, cfg Config, wls []Workload) (map[string]*Report, error) {
	cfg = cfg.withDefaults() // one shared catalog across all workloads
	out := make(map[string]*Report, len(wls))
	for _, wl := range wls {
		wcfg := cfg
		wcfg.Stdin = wl.Stdin
		if wcfg.Checkpoint != "" {
			wcfg.Checkpoint = wcfg.Checkpoint + "." + wl.Name
		}
		rep, err := Run(ctx, prot, wcfg)
		if err != nil {
			return nil, fmt.Errorf("campaign: workload %q: %w", wl.Name, err)
		}
		out[wl.Name] = rep
	}
	return out, nil
}

// Run executes a tamper campaign against a protected image and returns
// its detection-coverage matrix. The context cancels the whole
// campaign; each mutant additionally runs under cfg.Timeout and
// cfg.MaxInst. Run never panics on any mutant — harness panics are
// recovered, counted in Report.Panics, and classified as crash faults.
func Run(ctx context.Context, prot *core.Protected, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if prot == nil || prot.Image == nil {
		return nil, fmt.Errorf("campaign: nil protected image")
	}

	// Reference run: the clean image's observable behavior.
	clean := attack.RunWith(ctx, prot.Image, attack.RunConfig{
		Stdin: cfg.Stdin, MaxInst: cfg.MaxInst,
		MemBudget: cfg.MemBudget, StackSize: cfg.StackSize,
		Obs: cfg.Obs, Engine: cfg.Engine, Catalog: cfg.cat,
	})
	if clean.Err != nil {
		return nil, fmt.Errorf("campaign: clean reference run failed: %w", clean.Err)
	}

	mutants, err := Enumerate(prot, cfg)
	if err != nil {
		return nil, err
	}
	var jn *journal
	var done map[int]Class
	if cfg.Checkpoint != "" {
		var buf bytes.Buffer
		if _, err := prot.Image.WriteTo(&buf); err != nil {
			return nil, fmt.Errorf("campaign: serializing image for checkpoint: %w", err)
		}
		jn, done, err = openJournal(cfg.Checkpoint, imageHash(buf.Bytes()), cfg, mutants)
		if err != nil {
			return nil, err
		}
		defer jn.close()
	}
	classes, panics, err := executeAll(ctx, prot, mutants, clean, cfg, jn, done)
	if err != nil {
		return nil, err
	}

	rep := &Report{Panics: panics, Resumed: len(done)}
	rows := make(map[string]*Row)
	for i, m := range mutants {
		rep.add(rows, m, classes[i])
	}
	rep.finish(rows)
	recordOutcomes(cfg.Obs, rep, classes)
	return rep, nil
}

// executeAll runs every mutant through the worker pool and returns the
// per-mutant classification vector plus the recovered-panic count. It
// is the campaign's execution core, split out so differential tests can
// compare the two execution paths mutant by mutant. cfg must already
// have defaults applied.
//
// jn and done (both optional) carry the checkpoint state: cells in
// done are restored without executing, and every freshly finished cell
// is appended to jn — except infra-error cells, whose failure was
// transient, and cells finished after the campaign context was
// cancelled, whose outcome may be cancellation-tainted.
func executeAll(ctx context.Context, prot *core.Protected, mutants []Mutant,
	clean attack.RunResult, cfg Config, jn *journal, done map[int]Class) ([]Class, int, error) {
	var stream []byte
	for _, m := range mutants {
		if m.Kind == KindSerial {
			var buf bytes.Buffer
			if _, err := prot.Image.WriteTo(&buf); err != nil {
				return nil, 0, fmt.Errorf("campaign: serializing image: %w", err)
			}
			stream = buf.Bytes()
			break
		}
	}
	guard := guardedBytes(prot)

	classes := make([]Class, len(mutants))
	for i, c := range done {
		classes[i] = c
	}
	var panics uint64
	var ckErrs uint64
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker owns one reusable VM; a load failure here
			// falls back to the per-mutant clone+reload path (eng nil),
			// where the same failure surfaces per mutant.
			var eng *vmEngine
			if !cfg.Reload {
				eng = newVMEngine(prot.Image, cfg)
			}
			for i := range next {
				classes[i] = runOne(ctx, prot.Image, stream, guard, i, mutants[i], clean, cfg, eng, &panics)
				if eng != nil && eng.poisoned {
					// Injected restore corruption: the VM's state is no
					// longer trustworthy. Rebuild it; until then (or on
					// rebuild failure) mutants take the clone path.
					eng.close()
					eng = newVMEngine(prot.Image, cfg)
				}
				if jn != nil && classes[i] != ClassInfraError && ctx.Err() == nil {
					// A failed append degrades the checkpoint (those cells
					// re-run on resume), never the running campaign.
					if err := jn.append(i, classes[i], mutants[i]); err != nil {
						atomic.AddUint64(&ckErrs, 1)
					}
				}
			}
		}()
	}
feed:
	for i := range mutants {
		if _, ok := done[i]; ok {
			continue
		}
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if n := atomic.LoadUint64(&ckErrs); n > 0 && cfg.Obs != nil {
		cfg.Obs.Counter("campaign.checkpoint_errors").Add(n)
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, fmt.Errorf("campaign: cancelled: %w", err)
	}
	return classes, int(atomic.LoadUint64(&panics)), nil
}

// vmEngine is one worker's reusable execution engine: the protected
// image loaded into an emulator once, snapshotted, and rewound between
// mutants so each run pays only for the pages the previous one dirtied.
type vmEngine struct {
	cpu  *emu.CPU
	snap *emu.Snapshot

	// tbe is the worker's persistent translation-block engine
	// (Config.Engine "tb" only). Living across mutants, it keeps
	// translations of undisturbed code warm: applyVM's pokes and
	// Restore's page copy-backs invalidate, through the memory bus's
	// code hooks, exactly the blocks whose bytes changed.
	tbe *tb.Engine

	// poisoned marks the VM state corrupted (injected restore fault):
	// the owning worker must discard and rebuild the engine before the
	// next mutant.
	poisoned bool
}

// close releases the engine's translation backend (the CPU needs no
// teardown).
func (e *vmEngine) close() {
	if e.tbe != nil {
		e.tbe.Close()
	}
}

// newVMEngine loads the image and takes the baseline snapshot. A load
// failure returns nil: the caller falls back to clone+reload, which
// reports the failure per mutant exactly as before.
func newVMEngine(base *image.Image, cfg Config) *vmEngine {
	cpu, err := emu.LoadImageWith(base, emu.LoadConfig{
		StackSize: cfg.StackSize,
		MemBudget: cfg.MemBudget,
		Chaos:     cfg.Chaos,
	})
	if err != nil {
		return nil
	}
	eng := &vmEngine{cpu: cpu, snap: cpu.Snapshot()}
	if cfg.Engine == "tb" {
		eng.tbe = tb.NewWithCatalog(cpu, cfg.Obs, cfg.cat)
	}
	return eng
}

// recordOutcomes mirrors a finished campaign's classification tallies
// into the registry. Done once per campaign, after the workers join, so
// the mutant hot loop carries no recording cost beyond attack.RunWith's.
func recordOutcomes(reg *obs.Registry, rep *Report, classes []Class) {
	if reg == nil {
		return
	}
	reg.Counter("campaign.mutants").Add(uint64(len(classes)))
	reg.Counter("campaign.panics").Add(uint64(rep.Panics))
	reg.Counter("campaign.infra_errors").Add(uint64(rep.InfraErrors))
	reg.Counter("campaign.resumed_mutants").Add(uint64(rep.Resumed))
	var byClass [numClasses]uint64
	for _, c := range classes {
		if c < numClasses {
			byClass[c]++
		}
	}
	for c, n := range byClass {
		if n != 0 {
			reg.Counter("campaign.outcome." + Class(c).String()).Add(n)
		}
	}
}

// runOne executes and classifies a single mutant. It never panics:
// any harness panic is recovered, counted, and classified as a crash.
// Non-serial mutants run on the worker's vmEngine when one is
// available (restore dirty pages, poke the mutation, run); KindSerial
// mutants always exercise the loader, and a nil engine falls back to
// clone+reload.
func runOne(ctx context.Context, base *image.Image, stream []byte,
	guard map[uint32]bool, idx int, m Mutant, clean attack.RunResult,
	cfg Config, eng *vmEngine, panics *uint64) (cls Class) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok && chaos.IsInjected(e) {
				// Injected worker crash: infrastructure, not a harness
				// bug — the cell is lost, the panic tally stays honest.
				cls = ClassInfraError
				return
			}
			atomic.AddUint64(panics, 1)
			cls = ClassCrash
		}
	}()
	inj := cfg.Chaos
	if err := inj.Fire(chaos.PointCampaignMutant, uint64(idx)); err != nil {
		panic(err)
	}
	// Injected deadline blow-through: the mutant starts with its wall
	// budget already exhausted, exercising the watchdog path end to end;
	// whatever the truncated run reports, the cell is an infra error.
	blownDeadline := inj.Should(chaos.PointCampaignDeadline, uint64(idx))
	timeout := cfg.Timeout
	if blownDeadline {
		timeout = -1
	}

	runCfg := attack.RunConfig{
		Stdin: cfg.Stdin, MaxInst: cfg.MaxInst,
		MemBudget: cfg.MemBudget, StackSize: cfg.StackSize,
		Obs: cfg.Obs, Engine: cfg.Engine, Catalog: cfg.cat,
		Chaos: cfg.Chaos, ChaosKey: uint64(idx),
	}

	var img *image.Image
	switch {
	case m.Kind == KindSerial:
		loaded, err := image.ReadFrom(
			inj.Reader(chaos.PointImageRead, uint64(idx), bytes.NewReader(m.corruptSerial(stream))))
		if err != nil {
			if chaos.IsInjected(err) {
				// The read was truncated by injection, not by the mutant:
				// the loader's verdict on this corruption is unknown.
				return ClassInfraError
			}
			return ClassLoaderReject
		}
		img = loaded
	case eng != nil:
		st := eng.cpu.Restore(eng.snap)
		if reg := cfg.Obs; reg != nil {
			reg.Counter("emu.restores").Inc()
			reg.Histogram("emu.dirty_pages").Record(uint64(st.DirtyPages))
		}
		if inj.Should(chaos.PointEmuRestoreDirty, uint64(idx)) {
			// Injected dirty-page copy-back corruption: flip a byte of
			// restored state and poison the VM — the worker rebuilds it,
			// and this cell measured nothing.
			if raw, err := eng.cpu.Mem.Peek(base.Entry, 1); err == nil {
				eng.cpu.Mem.Poke(base.Entry, []byte{raw[0] ^ 0xFF})
			}
			eng.poisoned = true
			return ClassInfraError
		}
		if err := m.applyVM(base, eng.cpu); err != nil {
			// Unpatchable site: same rejection the clone path's
			// image.WriteAt would produce, before execution.
			return ClassLoaderReject
		}
		mctx, cancel := context.WithTimeout(ctx, timeout)
		defer cancel()
		runCfg.CPU = eng.cpu
		if eng.tbe != nil {
			runCfg.Exec = eng.tbe
		}
		res := attack.RunWith(mctx, base, runCfg)
		if blownDeadline {
			return ClassInfraError
		}
		return classify(m, res, clean, guard)
	default:
		img = base.Clone()
		if err := m.apply(img); err != nil {
			// Unpatchable site (enumeration raced initialized-data
			// bounds): treat as rejected before execution.
			return ClassLoaderReject
		}
	}

	mctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	res := attack.RunWith(mctx, img, runCfg)
	if blownDeadline {
		return ClassInfraError
	}
	return classify(m, res, clean, guard)
}

// classify maps one mutant run outcome onto the matrix classes.
func classify(m Mutant, res, clean attack.RunResult, guard map[uint32]bool) Class {
	var de *emu.DeadlineError
	switch {
	case chaos.IsInjected(res.Err):
		// Checked before every outcome shape: an injected fault (forced
		// budget trip, failed allocation) wears the same error types as
		// earned failures, and must never masquerade as a detection.
		return ClassInfraError
	case res.Err == nil:
		if res.Status == clean.Status && res.Stdout == clean.Stdout {
			return ClassSilent
		}
		// Divergent but clean exit: a guarded-site mutation that
		// changed behavior means the chain computed garbage — implicit
		// detection. An unguarded site diverging is the mutated app
		// code itself malfunctioning.
		if m.Guarded {
			return ClassChain
		}
		return ClassCrash
	case errors.Is(res.Err, emu.ErrInstLimit), errors.As(res.Err, &de):
		return ClassTimeout
	default:
		// The run died. Attribute the fault to the chain when the
		// mutation hit guarded bytes (the canonical Parallax detection:
		// a broken gadget derails the chain) or when the final EIP is
		// itself inside chain-guarded territory.
		if m.Guarded || guard[res.EIP] {
			return ClassChain
		}
		return ClassCrash
	}
}
