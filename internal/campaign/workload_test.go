package campaign

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"parallax/internal/core"
	"parallax/internal/corpus/gen"
	"parallax/internal/obs"
)

// workloadTarget protects one small generated program and returns it
// with its heavy-profile stdin.
func workloadTarget(t *testing.T) (*core.Protected, []byte) {
	t.Helper()
	fam, err := gen.FamilyByName("tiny")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := gen.FamilyProgram(fam, 1)
	if err != nil {
		t.Fatal(err)
	}
	prot, err := core.Protect(prog.Build(), core.Options{VerifyFuncs: []string{prog.VerifyFunc}})
	if err != nil {
		t.Fatal(err)
	}
	heavy, ok := prog.Workload("heavy")
	if !ok {
		t.Fatal("generated program has no heavy workload")
	}
	return prot, heavy
}

// TestRunWorkloads pins the multi-workload contract: one image swept
// under idle and heavy stdin profiles yields per-workload reports that
// differ (the heavy profile executes cold code), each byte-identical
// to a standalone Run with the same stdin, and a configured checkpoint
// path fans out into per-workload journals rather than colliding.
func TestRunWorkloads(t *testing.T) {
	prot, heavy := workloadTarget(t)
	dir := t.TempDir()
	cfg := Config{
		Workers:    2,
		Stride:     7,
		MaxMutants: 64,
		MaxInst:    4_000_000,
		Timeout:    30 * time.Second,
		Checkpoint: filepath.Join(dir, "journal"),
	}
	reps, err := RunWorkloads(context.Background(), prot, cfg, []Workload{
		{Name: "idle", Stdin: nil},
		{Name: "heavy", Stdin: heavy},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 {
		t.Fatalf("got %d reports, want 2", len(reps))
	}
	idle, heavyRep := reps["idle"], reps["heavy"]
	if idle == nil || heavyRep == nil {
		t.Fatalf("missing per-workload report: %v", reps)
	}
	if idle.String() == heavyRep.String() {
		t.Errorf("idle and heavy matrices identical — heavy workload never reached cold code:\n%s", idle)
	}
	for _, name := range []string{"journal.idle", "journal.heavy"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("per-workload checkpoint %s: %v", name, err)
		}
	}

	// Each workload's report must be what a standalone campaign with
	// the same stdin produces — RunWorkloads adds sharing, not
	// semantics. (Fresh config: no checkpoint, or the journal above
	// would satisfy the run from cache.)
	scfg := cfg
	scfg.Checkpoint = ""
	solo, err := Run(context.Background(), prot, func() Config { c := scfg; c.Stdin = heavy; return c }())
	if err != nil {
		t.Fatal(err)
	}
	if solo.String() != heavyRep.String() {
		t.Errorf("heavy workload report differs from standalone Run:\n--- workloads ---\n%s--- solo ---\n%s",
			heavyRep, solo)
	}
}

// TestRunWorkloadsSharedCatalog pins the tb-engine economics: the
// second workload's campaign must adopt translations the first one
// minted (stdin never changes code bytes), so a shared-catalog double
// sweep translates fewer blocks than two isolated sweeps.
func TestRunWorkloadsSharedCatalog(t *testing.T) {
	prot, heavy := workloadTarget(t)
	sweep := func(shared bool) uint64 {
		reg := obs.NewRegistry()
		cfg := Config{
			Workers:    2,
			Stride:     7,
			MaxMutants: 48,
			MaxInst:    4_000_000,
			Timeout:    30 * time.Second,
			Engine:     "tb",
			Obs:        reg,
		}
		wls := []Workload{{Name: "idle"}, {Name: "heavy", Stdin: heavy}}
		if shared {
			if _, err := RunWorkloads(context.Background(), prot, cfg, wls); err != nil {
				t.Fatal(err)
			}
		} else {
			for _, wl := range wls {
				wcfg := cfg
				wcfg.Stdin = wl.Stdin
				if _, err := Run(context.Background(), prot, wcfg); err != nil {
					t.Fatal(err)
				}
			}
		}
		return reg.Counter("emu.tb.translations").Value()
	}
	isolated := sweep(false)
	shared := sweep(true)
	if shared >= isolated {
		t.Errorf("shared catalog translated %d blocks across workloads, isolated campaigns %d; want strictly fewer",
			shared, isolated)
	}
}
