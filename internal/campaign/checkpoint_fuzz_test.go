package campaign

import (
	"fmt"
	"strings"
	"testing"
)

// FuzzCheckpointJournal drives the journal decoder with truncated,
// garbage and duplicate inputs. The contract under any input: no
// panic, and either a typed refusal or outcomes that can only produce
// a correct matrix — every accepted entry is in range, digest-bound to
// its mutant, and internally consistent; the intact-byte count never
// exceeds the input.
func FuzzCheckpointJournal(f *testing.F) {
	mutants := []Mutant{
		{Kind: KindBitFlip, Region: "f", Addr: 0x1000, Len: 1, Bit: 3, Guarded: true},
		{Kind: KindByteSet, Region: "g", Addr: 0x1004, Len: 1},
		{Kind: KindSerial, Region: serialRegion, Addr: 7, Len: 1, Bit: 1},
	}
	header := fmt.Sprintf("%s img=%016x cfg=%016x n=%d",
		journalMagic, uint64(0xabc), configHash(Config{}.withDefaults()), len(mutants))
	entry := func(idx int, c Class) string {
		d := mutantDigest(mutants[idx])
		return fmt.Sprintf("%d %d %016x %08x\n", idx, c, d, entryCRC(idx, c, d))
	}

	valid := header + "\n" + entry(0, ClassChain) + entry(2, ClassLoaderReject)
	f.Add([]byte(valid))
	f.Add([]byte(valid[:len(valid)-5]))                        // torn tail
	f.Add([]byte(header + "\n" + "0 0 dead beef\n"))           // bad crc, complete line
	f.Add([]byte(valid + entry(0, ClassChain)))                // duplicate, agreeing
	f.Add([]byte(valid + entry(0, ClassSilent)))               // duplicate, conflicting
	f.Add([]byte(valid + entry(1, ClassCrash)[:7]))            // torn mid-entry
	f.Add([]byte("parallax-checkpoint v1 img=0 cfg=0 n=99\n")) // foreign header
	f.Add([]byte("\x00\xff garbage"))
	f.Add([]byte(header + "\n" + "99 1 0000000000000000 00000000\n"))

	f.Fuzz(func(t *testing.T, raw []byte) {
		keep, done, err := parseJournal(raw, header, mutants)
		if err != nil {
			return // typed refusal is always acceptable
		}
		if keep < 0 || keep > int64(len(raw)) {
			t.Fatalf("intact byte count %d outside input of %d bytes", keep, len(raw))
		}
		if keep > 0 && !strings.HasPrefix(string(raw), header) {
			t.Fatal("accepted a journal whose header does not match")
		}
		for idx, c := range done {
			if idx < 0 || idx >= len(mutants) {
				t.Fatalf("accepted out-of-range mutant index %d", idx)
			}
			if c >= numClasses {
				t.Fatalf("accepted invalid class %d for mutant %d", c, idx)
			}
		}
	})
}
