package campaign

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strings"
	"sync"
	"time"
)

// The checkpoint journal makes a campaign resumable: every finished
// mutant outcome is appended as one self-checking line, so a killed
// process restarted with the same image, config and journal re-runs
// only the cells that never completed — and produces a final matrix
// byte-identical to an uninterrupted run.
//
// Format (text, one record per line):
//
//	parallax-checkpoint v1 img=<16 hex> cfg=<16 hex> n=<mutants>
//	<index> <class> <mutant digest, 16 hex> <crc32 of the line prefix, 8 hex>
//
// The header binds the journal to the exact campaign: img is a FNV-64
// of the serialized protected image, cfg a FNV-64 of every Config
// field that shapes the mutant set or its classification, n the
// enumerated mutant count. Each entry carries its mutant's own digest
// so a journal can never silently replay outcomes onto a different
// enumeration.
//
// Appends are single Write calls on an O_APPEND descriptor, so a kill
// can only tear the final line. openJournal truncates a torn tail
// (and only a tail) and treats every other malformation as a typed
// error: a resume either reproduces the exact matrix or refuses.
//
// Deliberately not journaled:
//   - infra-error cells — the failure was transient harness
//     infrastructure, so the resume re-runs them for a real outcome;
//   - outcomes observed after the campaign context was cancelled — a
//     run interrupted mid-flight classifies as a timeout it did not
//     earn, and must not be persisted as one.

// ErrJournalCorrupt reports a checkpoint journal whose contents fail
// structural validation beyond a torn final line: garbage mid-file, a
// bad per-line checksum, an out-of-range index, or two entries that
// disagree about one mutant.
var ErrJournalCorrupt = errors.New("campaign: checkpoint journal corrupt")

// ErrJournalMismatch reports a well-formed journal that belongs to a
// different campaign: another image, another config, another mutant
// enumeration.
var ErrJournalMismatch = errors.New("campaign: checkpoint journal mismatch")

const journalMagic = "parallax-checkpoint v1"

// fnv64 is the journal's content hash (FNV-1a).
func fnv64(parts ...[]byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, p := range parts {
		for _, b := range p {
			h = (h ^ uint64(b)) * 0x100000001b3
		}
	}
	return h
}

// imageHash binds a journal to the exact protected image bytes.
func imageHash(stream []byte) uint64 { return fnv64(stream) }

// configHash folds every Config field that shapes the mutant set or
// its classification. Workers, Obs, Chaos and Checkpoint itself are
// excluded: they change scheduling and bookkeeping, never the matrix a
// given mutant index resolves to.
func configHash(cfg Config) uint64 {
	var b bytes.Buffer
	fmt.Fprintf(&b, "maxinst=%d timeout=%s stride=%d maxmutants=%d reload=%t membudget=%d stacksize=%d engine=%q kinds=",
		cfg.MaxInst, time.Duration(cfg.Timeout), cfg.Stride, cfg.MaxMutants,
		cfg.Reload, cfg.MemBudget, cfg.StackSize, cfg.Engine)
	for _, k := range cfg.Kinds {
		fmt.Fprintf(&b, "%d,", k)
	}
	return fnv64(b.Bytes(), cfg.Stdin)
}

// mutantDigest fingerprints one enumerated mutant so journal entries
// can be verified against the resume's own enumeration.
func mutantDigest(m Mutant) uint64 {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%d %q %t %d %d %d %t", m.Kind, m.Region, m.Guarded,
		m.Addr, m.Len, m.Bit, m.Truncate)
	return fnv64(b.Bytes())
}

// entryCRC covers an entry line's content fields.
func entryCRC(idx int, c Class, digest uint64) uint32 {
	return crc32.ChecksumIEEE([]byte(fmt.Sprintf("%d %d %016x", idx, c, digest)))
}

// journal is an open checkpoint file accepting outcome appends.
type journal struct {
	mu sync.Mutex
	f  *os.File
}

// openJournal opens (or creates) the checkpoint at path for the given
// campaign and returns the validated already-finished outcomes. The
// mutants slice is the resume's own enumeration; every journal entry
// is checked against it. A torn final line — the only damage a killed
// O_APPEND writer can cause — is truncated away; anything else fails
// with ErrJournalCorrupt or ErrJournalMismatch.
func openJournal(path string, imgHash uint64, cfg Config, mutants []Mutant) (*journal, map[int]Class, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("campaign: opening checkpoint: %w", err)
	}
	raw, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("campaign: reading checkpoint: %w", err)
	}
	header := fmt.Sprintf("%s img=%016x cfg=%016x n=%d",
		journalMagic, imgHash, configHash(cfg), len(mutants))

	done := make(map[int]Class)
	if len(raw) == 0 {
		// Fresh journal: write the header now, before any outcome.
		if _, err := f.WriteString(header + "\n"); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("campaign: writing checkpoint header: %w", err)
		}
	} else {
		keep, outcomes, err := parseJournal(raw, header, mutants)
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		if keep != int64(len(raw)) {
			// Torn tail: drop it so the next append starts a clean line.
			if err := f.Truncate(keep); err != nil {
				f.Close()
				return nil, nil, fmt.Errorf("campaign: truncating torn checkpoint tail: %w", err)
			}
		}
		if keep == 0 {
			// Even the header was torn: restart the journal from scratch.
			if _, err := f.WriteAt([]byte(header+"\n"), 0); err != nil {
				f.Close()
				return nil, nil, fmt.Errorf("campaign: rewriting checkpoint header: %w", err)
			}
		}
		done = outcomes
	}
	// Reopen semantics via flags: every append goes through O_APPEND so
	// concurrent workers' single-Write lines never interleave.
	apnd, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	f.Close()
	if err != nil {
		return nil, nil, fmt.Errorf("campaign: opening checkpoint for append: %w", err)
	}
	return &journal{f: apnd}, done, nil
}

// parseJournal validates raw against the expected header and mutant
// enumeration. It returns how many bytes of raw are intact (a torn
// final line is excluded) and the finished outcomes.
func parseJournal(raw []byte, header string, mutants []Mutant) (int64, map[int]Class, error) {
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	if !sc.Scan() {
		return 0, nil, fmt.Errorf("%w: unreadable header", ErrJournalCorrupt)
	}
	got := sc.Text()
	if !strings.HasPrefix(got, journalMagic) {
		return 0, nil, fmt.Errorf("%w: bad magic", ErrJournalCorrupt)
	}
	if got != header {
		// A well-formed header that names another campaign. A torn
		// header (no trailing newline yet) is indistinguishable from a
		// mismatch only when the file holds exactly one partial line;
		// refusing is the safe side of that ambiguity.
		return 0, nil, fmt.Errorf("%w: journal header %q, campaign %q", ErrJournalMismatch, got, header)
	}
	if int64(len(raw)) <= int64(len(header)) {
		// The header's own newline never landed: the kill interrupted
		// the very first write. Nothing usable; start over.
		return 0, make(map[int]Class), nil
	}

	done := make(map[int]Class)
	keep := int64(len(header) + 1)
	for sc.Scan() {
		line := sc.Text()
		if keep+int64(len(line)) >= int64(len(raw)) {
			// The final line never got its newline: a torn write, even
			// if its prefix happens to parse. Resume re-runs that cell.
			return keep, done, nil
		}
		var idx, cls int
		var digest uint64
		var crc uint32
		n, err := fmt.Sscanf(line, "%d %d %x %x", &idx, &cls, &digest, &crc)
		// Round-tripping through the canonical form rejects what Sscanf
		// alone tolerates: trailing garbage, case drift, odd spacing.
		if err != nil || n != 4 ||
			line != fmt.Sprintf("%d %d %016x %08x", idx, cls, digest, crc) ||
			entryCRC(idx, Class(cls), digest) != crc {
			return 0, nil, fmt.Errorf("%w: entry %q", ErrJournalCorrupt, line)
		}
		if idx < 0 || idx >= len(mutants) || Class(cls) >= numClasses {
			return 0, nil, fmt.Errorf("%w: entry %q out of range", ErrJournalCorrupt, line)
		}
		if digest != mutantDigest(mutants[idx]) {
			return 0, nil, fmt.Errorf("%w: mutant %d digest differs from enumeration", ErrJournalMismatch, idx)
		}
		if prev, ok := done[idx]; ok && prev != Class(cls) {
			return 0, nil, fmt.Errorf("%w: mutant %d recorded as both %v and %v",
				ErrJournalCorrupt, idx, prev, Class(cls))
		}
		done[idx] = Class(cls)
		keep += int64(len(line)) + 1
	}
	if err := sc.Err(); err != nil {
		return 0, nil, fmt.Errorf("%w: %w", ErrJournalCorrupt, err)
	}
	return keep, done, nil
}

// append records one finished mutant outcome. The line is one Write on
// an O_APPEND descriptor — atomic with respect to both a kill and the
// other workers.
func (j *journal) append(idx int, c Class, m Mutant) error {
	d := mutantDigest(m)
	line := fmt.Sprintf("%d %d %016x %08x\n", idx, c, d, entryCRC(idx, c, d))
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.WriteString(line); err != nil {
		return fmt.Errorf("campaign: appending checkpoint entry: %w", err)
	}
	return nil
}

func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
