//go:build race

package campaign

// raceEnabled gates the heavyweight corpus differential tests out of
// the race pass: under the detector the emulator loop is ~10x slower,
// so the race build runs the compact synthetic-target differentials
// (which exercise the same worker sharing) instead.
const raceEnabled = true
