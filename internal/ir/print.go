package ir

import (
	"fmt"
	"strings"
)

// String renders a function as readable IR text.
func (f *Func) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s(%d params, %d vals) {\n", f.Name, f.NumParams, f.NumVals)
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "%s:\n", blk.Name)
		for _, in := range blk.Insts {
			fmt.Fprintf(&b, "\t%s\n", in)
		}
		fmt.Fprintf(&b, "\t%s\n", blk.Term)
	}
	b.WriteString("}\n")
	return b.String()
}

// String renders the whole module.
func (m *Module) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "module %s", m.Name)
	if m.Entry != "" {
		fmt.Fprintf(&b, " (entry %s)", m.Entry)
	}
	b.WriteString("\n")
	for _, g := range m.Globals {
		ro := ""
		if g.ReadOnly {
			ro = " readonly"
		}
		fmt.Fprintf(&b, "global %s [%d bytes]%s\n", g.Name, g.ByteSize(), ro)
	}
	for _, e := range m.Externs {
		fmt.Fprintf(&b, "extern %s\n", e)
	}
	for _, f := range m.Funcs {
		b.WriteString("\n")
		b.WriteString(f.String())
	}
	return b.String()
}
