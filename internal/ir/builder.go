package ir

import "fmt"

// ModuleBuilder assembles a Module.
type ModuleBuilder struct {
	m *Module
}

// NewModule returns a builder for a module with the given name.
func NewModule(name string) *ModuleBuilder {
	return &ModuleBuilder{m: &Module{Name: name}}
}

// Global adds an initialized global and returns its name for use with
// Addr.
func (mb *ModuleBuilder) Global(name string, init []byte) string {
	mb.m.Globals = append(mb.m.Globals, &Global{Name: name, Init: init})
	return name
}

// GlobalZero adds a zero-initialized global of the given size.
func (mb *ModuleBuilder) GlobalZero(name string, size uint32) string {
	mb.m.Globals = append(mb.m.Globals, &Global{Name: name, Size: size})
	return name
}

// GlobalRO adds a read-only global.
func (mb *ModuleBuilder) GlobalRO(name string, init []byte) string {
	mb.m.Globals = append(mb.m.Globals, &Global{Name: name, Init: init, ReadOnly: true})
	return name
}

// Func starts a function with the given parameter count; the returned
// FuncBuilder's entry block is current.
func (mb *ModuleBuilder) Func(name string, numParams int) *FuncBuilder {
	f := &Func{Name: name, NumParams: numParams, NumVals: numParams}
	mb.m.Funcs = append(mb.m.Funcs, f)
	fb := &FuncBuilder{f: f}
	fb.Block("entry")
	return fb
}

// SetEntry marks the module entry function.
func (mb *ModuleBuilder) SetEntry(name string) { mb.m.Entry = name }

// Extern declares an externally-defined symbol for OpAddr use.
func (mb *ModuleBuilder) Extern(name string) string {
	mb.m.Externs = append(mb.m.Externs, name)
	return name
}

// Build validates and returns the module.
func (mb *ModuleBuilder) Build() (*Module, error) {
	if err := Validate(mb.m); err != nil {
		return nil, err
	}
	return mb.m, nil
}

// MustBuild is Build for statically known-valid modules.
func (mb *ModuleBuilder) MustBuild() *Module {
	m, err := mb.Build()
	if err != nil {
		panic(fmt.Sprintf("ir: MustBuild: %v", err))
	}
	return m
}

// FuncBuilder assembles one function block by block. All emission
// methods append to the current block.
type FuncBuilder struct {
	f   *Func
	cur *Block
}

// NewFunc returns a builder for a standalone function that is not (yet)
// attached to a module; append the built Fn to Module.Funcs manually.
func NewFunc(name string, numParams int) *FuncBuilder {
	f := &Func{Name: name, NumParams: numParams, NumVals: numParams}
	fb := &FuncBuilder{f: f}
	fb.Block("entry")
	return fb
}

// Fn returns the function under construction.
func (fb *FuncBuilder) Fn() *Func { return fb.f }

// Param returns the value holding the i-th parameter.
func (fb *FuncBuilder) Param(i int) Value {
	if i < 0 || i >= fb.f.NumParams {
		panic(fmt.Sprintf("ir: param %d out of range (%d params)", i, fb.f.NumParams))
	}
	return Value(i)
}

// Block creates (or switches to) a block with the given name and makes
// it current. Creating a block does not add a terminator; every block
// must be terminated before Build.
func (fb *FuncBuilder) Block(name string) *FuncBuilder {
	if b := fb.f.Block(name); b != nil {
		fb.cur = b
		return fb
	}
	b := &Block{Name: name, Term: Term{Kind: TermRet}}
	fb.f.Blocks = append(fb.f.Blocks, b)
	fb.cur = b
	return fb
}

func (fb *FuncBuilder) newVal() Value {
	v := Value(fb.f.NumVals)
	fb.f.NumVals++
	return v
}

func (fb *FuncBuilder) emit(in Inst) Value {
	fb.cur.Insts = append(fb.cur.Insts, in)
	return in.Dst
}

// Const emits a constant.
func (fb *FuncBuilder) Const(v int32) Value {
	return fb.emit(Inst{Kind: OpConst, Dst: fb.newVal(), Imm: v})
}

// Bin emits a binary operation.
func (fb *FuncBuilder) Bin(k BinKind, a, b Value) Value {
	return fb.emit(Inst{Kind: OpBin, Dst: fb.newVal(), Bin: k, A: a, B: b})
}

// Convenience arithmetic wrappers.

// Add emits a + b.
func (fb *FuncBuilder) Add(a, b Value) Value { return fb.Bin(Add, a, b) }

// Sub emits a - b.
func (fb *FuncBuilder) Sub(a, b Value) Value { return fb.Bin(Sub, a, b) }

// Mul emits a * b.
func (fb *FuncBuilder) Mul(a, b Value) Value { return fb.Bin(Mul, a, b) }

// And emits a & b.
func (fb *FuncBuilder) And(a, b Value) Value { return fb.Bin(And, a, b) }

// Or emits a | b.
func (fb *FuncBuilder) Or(a, b Value) Value { return fb.Bin(Or, a, b) }

// Xor emits a ^ b.
func (fb *FuncBuilder) Xor(a, b Value) Value { return fb.Bin(Xor, a, b) }

// Shl emits a << b.
func (fb *FuncBuilder) Shl(a, b Value) Value { return fb.Bin(Shl, a, b) }

// Shr emits a >> b (logical).
func (fb *FuncBuilder) Shr(a, b Value) Value { return fb.Bin(Shr, a, b) }

// Not emits ^a.
func (fb *FuncBuilder) Not(a Value) Value {
	return fb.emit(Inst{Kind: OpNot, Dst: fb.newVal(), A: a})
}

// Neg emits -a.
func (fb *FuncBuilder) Neg(a Value) Value {
	return fb.emit(Inst{Kind: OpNeg, Dst: fb.newVal(), A: a})
}

// Cmp emits (a pred b) as 0/1.
func (fb *FuncBuilder) Cmp(p Pred, a, b Value) Value {
	return fb.emit(Inst{Kind: OpCmp, Dst: fb.newVal(), Pred: p, A: a, B: b})
}

// Load emits a 32-bit load from the address in a.
func (fb *FuncBuilder) Load(a Value) Value {
	return fb.emit(Inst{Kind: OpLoad, Dst: fb.newVal(), A: a})
}

// Load8 emits a zero-extended byte load.
func (fb *FuncBuilder) Load8(a Value) Value {
	return fb.emit(Inst{Kind: OpLoad8, Dst: fb.newVal(), A: a})
}

// Store emits a 32-bit store of val to the address in addr.
func (fb *FuncBuilder) Store(addr, val Value) {
	fb.emit(Inst{Kind: OpStore, A: addr, B: val})
}

// Store8 emits a byte store.
func (fb *FuncBuilder) Store8(addr, val Value) {
	fb.emit(Inst{Kind: OpStore8, A: addr, B: val})
}

// Addr emits the address of a global plus offset.
func (fb *FuncBuilder) Addr(global string, off int32) Value {
	return fb.emit(Inst{Kind: OpAddr, Dst: fb.newVal(), Global: global, Imm: off})
}

// Call emits a call; the result value holds the callee's return value.
func (fb *FuncBuilder) Call(callee string, args ...Value) Value {
	return fb.emit(Inst{
		Kind: OpCall, Dst: fb.newVal(), Callee: callee,
		Args: append([]Value(nil), args...),
	})
}

// Syscall emits a Linux i386 syscall with up to five arguments.
func (fb *FuncBuilder) Syscall(num int32, args ...Value) Value {
	if len(args) > 5 {
		panic("ir: syscall takes at most 5 arguments")
	}
	return fb.emit(Inst{
		Kind: OpSyscall, Dst: fb.newVal(), Imm: num,
		Args: append([]Value(nil), args...),
	})
}

// Copy emits dst = a into a fresh value.
func (fb *FuncBuilder) Copy(a Value) Value {
	return fb.emit(Inst{Kind: OpCopy, Dst: fb.newVal(), A: a})
}

// Assign emits dst = a into an existing value (the IR is not SSA;
// loop-carried variables are re-assigned).
func (fb *FuncBuilder) Assign(dst, a Value) {
	fb.emit(Inst{Kind: OpCopy, Dst: dst, A: a})
}

// AssignConst emits dst = imm into an existing value.
func (fb *FuncBuilder) AssignConst(dst Value, imm int32) {
	fb.emit(Inst{Kind: OpConst, Dst: dst, Imm: imm})
}

// Ret terminates the current block returning val.
func (fb *FuncBuilder) Ret(val Value) {
	fb.cur.Term = Term{Kind: TermRet, Val: val, HasVal: true}
}

// RetVoid terminates the current block returning 0.
func (fb *FuncBuilder) RetVoid() {
	fb.cur.Term = Term{Kind: TermRet}
}

// Jmp terminates the current block with an unconditional jump.
func (fb *FuncBuilder) Jmp(block string) {
	fb.cur.Term = Term{Kind: TermJmp, Then: block}
}

// Br terminates the current block branching on cond.
func (fb *FuncBuilder) Br(cond Value, then, els string) {
	fb.cur.Term = Term{Kind: TermBr, Val: cond, Then: then, Else: els}
}
