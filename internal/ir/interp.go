package ir

import (
	"bytes"
	"errors"
	"fmt"
)

// Interpreter errors.
var (
	// ErrSteps means the step budget was exhausted.
	ErrSteps = errors.New("ir: step limit exceeded")
	// ErrTrap is an execution trap (divide by zero, bad memory access,
	// call depth).
	ErrTrap = errors.New("ir: trap")
)

// Kernel provides syscall semantics to the interpreter. It mirrors the
// contract of emu.Kernel so a program can be run under both and
// compared.
type Kernel interface {
	// Syscall handles syscall num with up to five arguments, returning
	// the EAX result. exit=true terminates the program with status.
	Syscall(ip *Interp, num uint32, args [5]uint32) (ret uint32, exit bool, status int32)
}

// Interp executes IR modules with reference semantics.
type Interp struct {
	M  *Module
	OS Kernel

	// MaxSteps bounds total executed instructions; 0 means a large
	// default.
	MaxSteps uint64
	// Steps counts executed instructions.
	Steps uint64

	// GlobalBase is the virtual address of the first global. The value
	// is arbitrary; it exists so address arithmetic behaves like the
	// compiled program's.
	GlobalBase uint32

	arena   []byte
	offsets map[string]uint32

	exited bool
	status int32

	depth int
}

const (
	defaultInterpSteps = 200_000_000
	maxCallDepth       = 512
	defaultGlobalBase  = 0x10000000
)

// NewInterp prepares an interpreter for the module. Globals are laid
// out in declaration order at GlobalBase.
func NewInterp(m *Module, os Kernel) *Interp {
	ip := &Interp{M: m, OS: os, GlobalBase: defaultGlobalBase, offsets: make(map[string]uint32)}
	off := uint32(0)
	for _, g := range m.Globals {
		off = (off + 3) &^ 3
		ip.offsets[g.Name] = off
		off += g.ByteSize()
	}
	ip.arena = make([]byte, off)
	for _, g := range m.Globals {
		copy(ip.arena[ip.offsets[g.Name]:], g.Init)
	}
	return ip
}

// GlobalAddr returns the virtual address of a global.
func (ip *Interp) GlobalAddr(name string) (uint32, bool) {
	off, ok := ip.offsets[name]
	return ip.GlobalBase + off, ok
}

// ReadMem copies n bytes at the virtual address addr.
func (ip *Interp) ReadMem(addr, n uint32) ([]byte, error) {
	start := addr - ip.GlobalBase
	if start+n > uint32(len(ip.arena)) || start+n < start {
		return nil, fmt.Errorf("%w: read [%#x,%#x) outside globals", ErrTrap, addr, addr+n)
	}
	return append([]byte(nil), ip.arena[start:start+n]...), nil
}

// WriteMem writes bytes at the virtual address addr.
func (ip *Interp) WriteMem(addr uint32, b []byte) error {
	start := addr - ip.GlobalBase
	if start+uint32(len(b)) > uint32(len(ip.arena)) || start+uint32(len(b)) < start {
		return fmt.Errorf("%w: write [%#x,%#x) outside globals", ErrTrap, addr,
			addr+uint32(len(b)))
	}
	copy(ip.arena[start:], b)
	return nil
}

func (ip *Interp) load32(addr uint32) (uint32, error) {
	b, err := ip.ReadMem(addr, 4)
	if err != nil {
		return 0, err
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
}

func (ip *Interp) store32(addr, v uint32) error {
	return ip.WriteMem(addr, []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)})
}

// Run executes the module entry function with no arguments and returns
// the exit status (the entry function's return value, or the argument
// of an exit syscall).
func (ip *Interp) Run() (int32, error) {
	f := ip.M.EntryFunc()
	if f == nil {
		return 0, fmt.Errorf("ir: module has no entry function")
	}
	ret, err := ip.call(f, nil)
	if err != nil {
		return 0, err
	}
	if ip.exited {
		return ip.status, nil
	}
	return int32(ret), nil
}

// CallFunc invokes a named function with arguments. The exit flag of a
// previous run is respected: after an exit syscall no more code runs.
func (ip *Interp) CallFunc(name string, args ...uint32) (uint32, error) {
	f := ip.M.Func(name)
	if f == nil {
		return 0, fmt.Errorf("ir: undefined function %q", name)
	}
	return ip.call(f, args)
}

// Exited reports whether the program terminated via the exit syscall,
// and with which status.
func (ip *Interp) Exited() (bool, int32) { return ip.exited, ip.status }

func (ip *Interp) call(f *Func, args []uint32) (uint32, error) {
	if len(args) != f.NumParams {
		return 0, fmt.Errorf("ir: %s called with %d args, want %d",
			f.Name, len(args), f.NumParams)
	}
	if ip.depth++; ip.depth > maxCallDepth {
		ip.depth--
		return 0, fmt.Errorf("%w: call depth exceeded in %s", ErrTrap, f.Name)
	}
	defer func() { ip.depth-- }()

	vals := make([]uint32, f.NumVals)
	copy(vals, args)
	block := f.Entry()
	limit := ip.MaxSteps
	if limit == 0 {
		limit = defaultInterpSteps
	}

	for {
		for i := range block.Insts {
			in := &block.Insts[i]
			if ip.Steps++; ip.Steps > limit {
				return 0, ErrSteps
			}
			if err := ip.exec(f, in, vals); err != nil {
				return 0, err
			}
			if ip.exited {
				return 0, nil
			}
		}
		if ip.Steps++; ip.Steps > limit {
			return 0, ErrSteps
		}
		switch block.Term.Kind {
		case TermRet:
			if block.Term.HasVal {
				return vals[block.Term.Val], nil
			}
			return 0, nil
		case TermJmp:
			block = f.Block(block.Term.Then)
		case TermBr:
			if vals[block.Term.Val] != 0 {
				block = f.Block(block.Term.Then)
			} else {
				block = f.Block(block.Term.Else)
			}
		}
	}
}

func (ip *Interp) exec(f *Func, in *Inst, vals []uint32) error {
	switch in.Kind {
	case OpConst:
		vals[in.Dst] = uint32(in.Imm)
	case OpCopy:
		vals[in.Dst] = vals[in.A]
	case OpNot:
		vals[in.Dst] = ^vals[in.A]
	case OpNeg:
		vals[in.Dst] = -vals[in.A]
	case OpBin:
		a, b := vals[in.A], vals[in.B]
		r, err := evalBin(in.Bin, a, b)
		if err != nil {
			return fmt.Errorf("%w in %s", err, f.Name)
		}
		vals[in.Dst] = r
	case OpCmp:
		vals[in.Dst] = evalCmp(in.Pred, vals[in.A], vals[in.B])
	case OpLoad:
		v, err := ip.load32(vals[in.A])
		if err != nil {
			return err
		}
		vals[in.Dst] = v
	case OpLoad8:
		b, err := ip.ReadMem(vals[in.A], 1)
		if err != nil {
			return err
		}
		vals[in.Dst] = uint32(b[0])
	case OpStore:
		return ip.store32(vals[in.A], vals[in.B])
	case OpStore8:
		return ip.WriteMem(vals[in.A], []byte{byte(vals[in.B])})
	case OpAddr:
		a, ok := ip.GlobalAddr(in.Global)
		if !ok {
			return fmt.Errorf("ir: undefined global %q", in.Global)
		}
		vals[in.Dst] = a + uint32(in.Imm)
	case OpCall:
		callee := ip.M.Func(in.Callee)
		if callee == nil {
			return fmt.Errorf("ir: undefined callee %q", in.Callee)
		}
		args := make([]uint32, len(in.Args))
		for i, a := range in.Args {
			args[i] = vals[a]
		}
		r, err := ip.call(callee, args)
		if err != nil {
			return err
		}
		vals[in.Dst] = r
	case OpSyscall:
		if ip.OS == nil {
			return fmt.Errorf("%w: syscall with no kernel", ErrTrap)
		}
		var args [5]uint32
		for i, a := range in.Args {
			args[i] = vals[a]
		}
		ret, exit, status := ip.OS.Syscall(ip, uint32(in.Imm), args)
		if exit {
			ip.exited = true
			ip.status = status
			return nil
		}
		vals[in.Dst] = ret
	default:
		return fmt.Errorf("ir: unknown instruction kind %d", in.Kind)
	}
	return nil
}

func evalBin(k BinKind, a, b uint32) (uint32, error) {
	switch k {
	case Add:
		return a + b, nil
	case Sub:
		return a - b, nil
	case Mul:
		return a * b, nil
	case And:
		return a & b, nil
	case Or:
		return a | b, nil
	case Xor:
		return a ^ b, nil
	case Shl:
		return a << (b & 31), nil
	case Shr:
		return a >> (b & 31), nil
	case Sar:
		return uint32(int32(a) >> (b & 31)), nil
	case UDiv:
		if b == 0 {
			return 0, fmt.Errorf("%w: divide by zero", ErrTrap)
		}
		return a / b, nil
	case URem:
		if b == 0 {
			return 0, fmt.Errorf("%w: divide by zero", ErrTrap)
		}
		return a % b, nil
	case SDiv:
		if b == 0 || (int32(a) == -1<<31 && int32(b) == -1) {
			return 0, fmt.Errorf("%w: divide error", ErrTrap)
		}
		return uint32(int32(a) / int32(b)), nil
	case SRem:
		if b == 0 || (int32(a) == -1<<31 && int32(b) == -1) {
			return 0, fmt.Errorf("%w: divide error", ErrTrap)
		}
		return uint32(int32(a) % int32(b)), nil
	default:
		return 0, fmt.Errorf("ir: unknown binary op %d", k)
	}
}

func evalCmp(p Pred, a, b uint32) uint32 {
	var v bool
	switch p {
	case Eq:
		v = a == b
	case Ne:
		v = a != b
	case Lt:
		v = int32(a) < int32(b)
	case Le:
		v = int32(a) <= int32(b)
	case Gt:
		v = int32(a) > int32(b)
	case Ge:
		v = int32(a) >= int32(b)
	case ULt:
		v = a < b
	case ULe:
		v = a <= b
	case UGt:
		v = a > b
	case UGe:
		v = a >= b
	}
	if v {
		return 1
	}
	return 0
}

// StdKernel is the interpreter's deterministic kernel model. Its
// semantics deliberately mirror emu.OS so the same program can be run
// under the interpreter and the emulator and compared byte for byte.
type StdKernel struct {
	Stdout bytes.Buffer
	Stderr bytes.Buffer
	Stdin  *bytes.Reader

	DebuggerAttached bool
	traced           bool
	Now              int32
	RandState        uint32
	Pid              int32
}

var _ Kernel = (*StdKernel)(nil)

// Syscall numbers must match emu's; redeclared here to avoid an import
// cycle (emu does not depend on ir, and ir must not depend on emu).
const (
	sysExit    = 1
	sysRead    = 3
	sysWrite   = 4
	sysTime    = 13
	sysGetpid  = 20
	sysPtrace  = 26
	sysGetrand = 355
)

// Syscall implements Kernel with emu.OS-identical semantics.
func (k *StdKernel) Syscall(ip *Interp, num uint32, a [5]uint32) (uint32, bool, int32) {
	neg := func(e int32) uint32 { return uint32(-e) }
	switch num {
	case sysExit:
		return 0, true, int32(a[0])
	case sysWrite:
		buf, err := ip.ReadMem(a[1], a[2])
		if err != nil {
			return neg(14), false, 0 // EFAULT
		}
		switch a[0] {
		case 1:
			k.Stdout.Write(buf)
		case 2:
			k.Stderr.Write(buf)
		default:
			return neg(9), false, 0 // EBADF
		}
		return a[2], false, 0
	case sysRead:
		if a[0] != 0 || k.Stdin == nil {
			return neg(9), false, 0
		}
		buf := make([]byte, a[2])
		n, _ := k.Stdin.Read(buf)
		if err := ip.WriteMem(a[1], buf[:n]); err != nil {
			return neg(14), false, 0
		}
		return uint32(n), false, 0
	case sysTime:
		now := k.Now
		if now == 0 {
			now = 1_420_070_400
		}
		if a[0] != 0 {
			if err := ip.store32(a[0], uint32(now)); err != nil {
				return neg(14), false, 0
			}
		}
		return uint32(now), false, 0
	case sysGetpid:
		pid := k.Pid
		if pid == 0 {
			pid = 4242
		}
		return uint32(pid), false, 0
	case sysPtrace:
		if a[0] == 0 { // PTRACE_TRACEME
			if k.DebuggerAttached || k.traced {
				return neg(1), false, 0 // EPERM
			}
			k.traced = true
			return 0, false, 0
		}
		return neg(38), false, 0 // ENOSYS
	case sysGetrand:
		s := k.RandState
		if s == 0 {
			s = 0x9E3779B9
		}
		buf := make([]byte, a[1])
		for i := range buf {
			s ^= s << 13
			s ^= s >> 17
			s ^= s << 5
			buf[i] = uint8(s)
		}
		k.RandState = s
		if err := ip.WriteMem(a[0], buf); err != nil {
			return neg(14), false, 0
		}
		return a[1], false, 0
	default:
		return neg(38), false, 0
	}
}
