package ir

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// buildFib returns a module computing fib(n) iteratively plus a
// recursive variant.
func buildFib(t *testing.T) *Module {
	t.Helper()
	mb := NewModule("fib")

	fb := mb.Func("fib_iter", 1)
	n := fb.Param(0)
	a := fb.Const(0)
	b := fb.Const(1)
	i := fb.Const(0)
	fb.Jmp("head")
	fb.Block("head")
	c := fb.Cmp(ULt, i, n)
	fb.Br(c, "body", "done")
	fb.Block("body")
	tmp := fb.Add(a, b)
	fb.Assign(a, b)
	fb.Assign(b, tmp)
	one := fb.Const(1)
	fb.Assign(i, fb.Add(i, one))
	fb.Jmp("head")
	fb.Block("done")
	fb.Ret(a)

	fb = mb.Func("fib_rec", 1)
	n = fb.Param(0)
	two := fb.Const(2)
	c = fb.Cmp(ULt, n, two)
	fb.Br(c, "base", "rec")
	fb.Block("base")
	fb.Ret(n)
	fb.Block("rec")
	one = fb.Const(1)
	r1 := fb.Call("fib_rec", fb.Sub(n, one))
	r2 := fb.Call("fib_rec", fb.Sub(n, two))
	fb.Ret(fb.Add(r1, r2))

	fb = mb.Func("main", 0)
	arg := fb.Const(10)
	v1 := fb.Call("fib_iter", arg)
	v2 := fb.Call("fib_rec", arg)
	fb.Ret(fb.Add(v1, v2))

	mb.SetEntry("main")
	m, err := mb.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestInterpFib(t *testing.T) {
	m := buildFib(t)
	ip := NewInterp(m, &StdKernel{})
	status, err := ip.Run()
	if err != nil {
		t.Fatal(err)
	}
	if status != 110 { // fib(10)=55, twice
		t.Errorf("status = %d, want 110", status)
	}
}

func TestInterpCallFunc(t *testing.T) {
	m := buildFib(t)
	ip := NewInterp(m, &StdKernel{})
	for n, want := range map[uint32]uint32{0: 0, 1: 1, 2: 1, 7: 13, 20: 6765} {
		got, err := ip.CallFunc("fib_iter", n)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("fib(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestInterpGlobalsAndMemory(t *testing.T) {
	mb := NewModule("mem")
	mb.Global("buf", make([]byte, 64))
	mb.GlobalRO("msg", []byte("hi"))
	fb := mb.Func("main", 0)
	p := fb.Addr("buf", 0)
	v := fb.Const(0x01020304)
	fb.Store(p, v)
	p4 := fb.Addr("buf", 4)
	b := fb.Const(0xAB)
	fb.Store8(p4, b)
	r1 := fb.Load(p)
	r2 := fb.Load8(p4)
	fb.Ret(fb.Add(r1, r2))
	mb.SetEntry("main")
	m, err := mb.Build()
	if err != nil {
		t.Fatal(err)
	}
	ip := NewInterp(m, &StdKernel{})
	status, err := ip.Run()
	if err != nil {
		t.Fatal(err)
	}
	if uint32(status) != 0x01020304+0xAB {
		t.Errorf("status = %#x, want %#x", uint32(status), uint32(0x01020304+0xAB))
	}
}

func TestInterpSyscalls(t *testing.T) {
	mb := NewModule("sys")
	mb.Global("greeting", []byte("hello\n"))
	fb := mb.Func("main", 0)
	fd := fb.Const(1)
	buf := fb.Addr("greeting", 0)
	n := fb.Const(6)
	fb.Syscall(sysWrite, fd, buf, n)
	status := fb.Const(9)
	fb.Syscall(sysExit, status)
	fb.Ret(fb.Const(0)) // unreachable
	mb.SetEntry("main")
	m, err := mb.Build()
	if err != nil {
		t.Fatal(err)
	}
	k := &StdKernel{}
	ip := NewInterp(m, k)
	st, err := ip.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st != 9 {
		t.Errorf("status = %d, want 9", st)
	}
	if k.Stdout.String() != "hello\n" {
		t.Errorf("stdout = %q", k.Stdout.String())
	}
}

func TestInterpPtraceNondeterminism(t *testing.T) {
	mb := NewModule("pt")
	fb := mb.Func("main", 0)
	req := fb.Const(0)
	r := fb.Syscall(sysPtrace, req)
	zero := fb.Const(0)
	ok := fb.Cmp(Eq, r, zero)
	fb.Br(ok, "clean", "debugged")
	fb.Block("clean")
	fb.Ret(fb.Const(0))
	fb.Block("debugged")
	fb.Ret(fb.Const(1))
	mb.SetEntry("main")
	m, err := mb.Build()
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewInterp(m, &StdKernel{}).Run()
	if err != nil || st != 0 {
		t.Errorf("clean run = %d, %v; want 0", st, err)
	}
	st, err = NewInterp(m, &StdKernel{DebuggerAttached: true}).Run()
	if err != nil || st != 1 {
		t.Errorf("debugged run = %d, %v; want 1", st, err)
	}
}

func TestInterpReadStdin(t *testing.T) {
	mb := NewModule("rd")
	mb.GlobalZero("inbuf", 16)
	fb := mb.Func("main", 0)
	fd := fb.Const(0)
	buf := fb.Addr("inbuf", 0)
	n := fb.Const(4)
	got := fb.Syscall(sysRead, fd, buf, n)
	first := fb.Load8(buf)
	fb.Ret(fb.Add(got, first))
	mb.SetEntry("main")
	m, err := mb.Build()
	if err != nil {
		t.Fatal(err)
	}
	k := &StdKernel{Stdin: bytes.NewReader([]byte("A..."))}
	st, err := NewInterp(m, k).Run()
	if err != nil {
		t.Fatal(err)
	}
	if st != 4+'A' {
		t.Errorf("status = %d, want %d", st, 4+'A')
	}
}

func TestInterpTraps(t *testing.T) {
	t.Run("divide by zero", func(t *testing.T) {
		mb := NewModule("dz")
		fb := mb.Func("main", 0)
		a := fb.Const(1)
		z := fb.Const(0)
		fb.Ret(fb.Bin(UDiv, a, z))
		m := mb.MustBuild()
		_, err := NewInterp(m, nil).Run()
		if !errors.Is(err, ErrTrap) {
			t.Errorf("err = %v, want ErrTrap", err)
		}
	})
	t.Run("wild store", func(t *testing.T) {
		mb := NewModule("ws")
		fb := mb.Func("main", 0)
		p := fb.Const(0x123)
		v := fb.Const(1)
		fb.Store(p, v)
		fb.RetVoid()
		m := mb.MustBuild()
		_, err := NewInterp(m, nil).Run()
		if !errors.Is(err, ErrTrap) {
			t.Errorf("err = %v, want ErrTrap", err)
		}
	})
	t.Run("infinite loop hits step limit", func(t *testing.T) {
		mb := NewModule("loop")
		fb := mb.Func("main", 0)
		fb.Jmp("spin")
		fb.Block("spin")
		fb.Jmp("spin")
		m := mb.MustBuild()
		ip := NewInterp(m, nil)
		ip.MaxSteps = 1000
		_, err := ip.Run()
		if !errors.Is(err, ErrSteps) {
			t.Errorf("err = %v, want ErrSteps", err)
		}
	})
	t.Run("runaway recursion", func(t *testing.T) {
		mb := NewModule("rec")
		fb := mb.Func("main", 0)
		fb.Ret(fb.Call("main"))
		m := mb.MustBuild()
		_, err := NewInterp(m, nil).Run()
		if !errors.Is(err, ErrTrap) {
			t.Errorf("err = %v, want ErrTrap", err)
		}
	})
}

func TestValidateRejects(t *testing.T) {
	tests := []struct {
		name  string
		build func() *Module
		want  string
	}{
		{"duplicate function", func() *Module {
			m := &Module{Funcs: []*Func{
				{Name: "f", Blocks: []*Block{{Name: "entry"}}},
				{Name: "f", Blocks: []*Block{{Name: "entry"}}},
			}}
			return m
		}, "duplicate function"},
		{"undefined callee", func() *Module {
			mb := NewModule("x")
			fb := mb.Func("main", 0)
			v := fb.Const(0)
			fb.cur.Insts = append(fb.cur.Insts, Inst{Kind: OpCall, Dst: v, Callee: "ghost"})
			fb.RetVoid()
			return mb.m
		}, "undefined callee"},
		{"undefined block", func() *Module {
			mb := NewModule("x")
			fb := mb.Func("main", 0)
			fb.Jmp("nowhere")
			return mb.m
		}, "undefined block"},
		{"value out of range", func() *Module {
			mb := NewModule("x")
			fb := mb.Func("main", 0)
			fb.cur.Insts = append(fb.cur.Insts, Inst{Kind: OpCopy, Dst: 99, A: 0})
			fb.RetVoid()
			return mb.m
		}, "out of range"},
		{"bad arg count", func() *Module {
			mb := NewModule("x")
			fb := mb.Func("two", 2)
			fb.RetVoid()
			fb = mb.Func("main", 0)
			v := fb.Const(1)
			fb.cur.Insts = append(fb.cur.Insts,
				Inst{Kind: OpCall, Dst: v, Callee: "two", Args: []Value{v}})
			fb.RetVoid()
			return mb.m
		}, "want 2"},
		{"undefined global", func() *Module {
			mb := NewModule("x")
			fb := mb.Func("main", 0)
			v := fb.Const(0)
			fb.cur.Insts = append(fb.cur.Insts, Inst{Kind: OpAddr, Dst: v, Global: "nope"})
			fb.RetVoid()
			return mb.m
		}, "undefined global"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := Validate(tt.build())
			if err == nil {
				t.Fatal("Validate succeeded, want error")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

func TestOpKindsDiversity(t *testing.T) {
	m := buildFib(t)
	kinds := m.Func("fib_iter").OpKinds()
	for _, want := range []string{"bin.add", "cmp.ult"} {
		if !kinds[want] {
			t.Errorf("OpKinds missing %q: %v", want, kinds)
		}
	}
}

func TestEvalBinProperties(t *testing.T) {
	// Shift counts are masked to 5 bits like the hardware.
	if v, _ := evalBin(Shl, 1, 33); v != 2 {
		t.Errorf("shl 1,33 = %d, want 2", v)
	}
	if v, _ := evalBin(Sar, 0x80000000, 31); v != 0xFFFFFFFF {
		t.Errorf("sar = %#x, want all ones", v)
	}
	// INT_MIN / -1 traps rather than wrapping.
	if _, err := evalBin(SDiv, 0x80000000, 0xFFFFFFFF); !errors.Is(err, ErrTrap) {
		t.Errorf("sdiv overflow: err = %v, want trap", err)
	}
}

func TestPrinter(t *testing.T) {
	m := buildFib(t)
	out := m.String()
	for _, want := range []string{
		"module fib (entry main)",
		"func fib_iter(1 params,",
		"br v", "ret v", "jmp head",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("module dump missing %q:\n%s", want, out)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	m := buildFib(t)
	c := m.Clone()
	c.Funcs[0].Blocks[0].Insts[0].Imm = 999
	c.Entry = "fib_rec"
	if m.Funcs[0].Blocks[0].Insts[0].Imm == 999 {
		t.Error("instruction mutation leaked through Clone")
	}
	if m.Entry != "main" {
		t.Error("entry mutation leaked through Clone")
	}
	if err := Validate(c); err != nil {
		t.Errorf("clone invalid: %v", err)
	}
}
