// Package ir defines the small typed intermediate representation that
// every program in this repository is written in.
//
// One IR, two backends: internal/codegen compiles IR to x86 machine
// code (producing the binaries Parallax protects), and internal/ropc
// compiles IR functions to ROP chains (producing the paper's
// "verification code"). Because both backends consume the same IR, a
// function translated to a chain is by construction a faithful
// re-implementation of original program code — exactly the paper's §V
// translation step — and the IR interpreter in this package provides
// reference semantics for differential testing.
//
// The machine model is 32-bit: all values are uint32 words; signedness
// is a property of the operation, not the value.
package ir

import "fmt"

// BinKind enumerates two-operand arithmetic operations.
type BinKind uint8

// Binary operations.
const (
	Add BinKind = iota
	Sub
	Mul
	And
	Or
	Xor
	Shl
	Shr  // logical shift right
	Sar  // arithmetic shift right
	UDiv // unsigned division; divide-by-zero traps
	URem
	SDiv // signed division
	SRem
)

var binNames = [...]string{
	Add: "add", Sub: "sub", Mul: "mul", And: "and", Or: "or", Xor: "xor",
	Shl: "shl", Shr: "shr", Sar: "sar", UDiv: "udiv", URem: "urem",
	SDiv: "sdiv", SRem: "srem",
}

func (k BinKind) String() string {
	if int(k) < len(binNames) {
		return binNames[k]
	}
	return fmt.Sprintf("bin(%d)", uint8(k))
}

// Pred enumerates comparison predicates.
type Pred uint8

// Comparison predicates. Signedness matters: Lt/Le/Gt/Ge are signed,
// the U-prefixed forms unsigned.
const (
	Eq Pred = iota
	Ne
	Lt
	Le
	Gt
	Ge
	ULt
	ULe
	UGt
	UGe
)

var predNames = [...]string{
	Eq: "eq", Ne: "ne", Lt: "lt", Le: "le", Gt: "gt", Ge: "ge",
	ULt: "ult", ULe: "ule", UGt: "ugt", UGe: "uge",
}

func (p Pred) String() string {
	if int(p) < len(predNames) {
		return predNames[p]
	}
	return fmt.Sprintf("pred(%d)", uint8(p))
}

// Value is a virtual register index within a function.
type Value int

func (v Value) String() string { return fmt.Sprintf("v%d", int(v)) }

// InstKind discriminates Inst.
type InstKind uint8

// Instruction kinds.
const (
	// OpConst: Dst = Imm.
	OpConst InstKind = iota
	// OpBin: Dst = A <Bin> B.
	OpBin
	// OpNot: Dst = ^A.
	OpNot
	// OpNeg: Dst = -A.
	OpNeg
	// OpCmp: Dst = (A <Pred> B) ? 1 : 0.
	OpCmp
	// OpLoad: Dst = mem32[A].
	OpLoad
	// OpLoad8: Dst = zext(mem8[A]).
	OpLoad8
	// OpStore: mem32[A] = B.
	OpStore
	// OpStore8: mem8[A] = low8(B).
	OpStore8
	// OpAddr: Dst = &Global + Imm.
	OpAddr
	// OpCall: Dst = Callee(Args...).
	OpCall
	// OpSyscall: Dst = syscall(Imm; Args...) with the Linux i386 ABI.
	OpSyscall
	// OpCopy: Dst = A.
	OpCopy
)

// Inst is one non-terminator IR instruction.
type Inst struct {
	Kind   InstKind
	Dst    Value
	A, B   Value
	Imm    int32
	Bin    BinKind
	Pred   Pred
	Global string  // OpAddr
	Callee string  // OpCall
	Args   []Value // OpCall, OpSyscall
}

func (i Inst) String() string {
	switch i.Kind {
	case OpConst:
		return fmt.Sprintf("%v = const %d", i.Dst, i.Imm)
	case OpBin:
		return fmt.Sprintf("%v = %v %v, %v", i.Dst, i.Bin, i.A, i.B)
	case OpNot:
		return fmt.Sprintf("%v = not %v", i.Dst, i.A)
	case OpNeg:
		return fmt.Sprintf("%v = neg %v", i.Dst, i.A)
	case OpCmp:
		return fmt.Sprintf("%v = cmp %v %v, %v", i.Dst, i.Pred, i.A, i.B)
	case OpLoad:
		return fmt.Sprintf("%v = load [%v]", i.Dst, i.A)
	case OpLoad8:
		return fmt.Sprintf("%v = load8 [%v]", i.Dst, i.A)
	case OpStore:
		return fmt.Sprintf("store [%v], %v", i.A, i.B)
	case OpStore8:
		return fmt.Sprintf("store8 [%v], %v", i.A, i.B)
	case OpAddr:
		return fmt.Sprintf("%v = addr %s+%d", i.Dst, i.Global, i.Imm)
	case OpCall:
		return fmt.Sprintf("%v = call %s%v", i.Dst, i.Callee, i.Args)
	case OpSyscall:
		return fmt.Sprintf("%v = syscall %d%v", i.Dst, i.Imm, i.Args)
	case OpCopy:
		return fmt.Sprintf("%v = %v", i.Dst, i.A)
	default:
		return fmt.Sprintf("inst(%d)", i.Kind)
	}
}

// TermKind discriminates block terminators.
type TermKind uint8

// Terminator kinds.
const (
	// TermRet returns Val (or 0 when HasVal is false).
	TermRet TermKind = iota
	// TermJmp jumps unconditionally to Then.
	TermJmp
	// TermBr branches to Then when Val != 0, else to Else.
	TermBr
)

// Term is a basic-block terminator.
type Term struct {
	Kind   TermKind
	Val    Value
	HasVal bool
	Then   string
	Else   string
}

func (t Term) String() string {
	switch t.Kind {
	case TermRet:
		if t.HasVal {
			return fmt.Sprintf("ret %v", t.Val)
		}
		return "ret"
	case TermJmp:
		return fmt.Sprintf("jmp %s", t.Then)
	case TermBr:
		return fmt.Sprintf("br %v, %s, %s", t.Val, t.Then, t.Else)
	default:
		return fmt.Sprintf("term(%d)", t.Kind)
	}
}

// Block is a basic block: straight-line instructions plus one
// terminator.
type Block struct {
	Name  string
	Insts []Inst
	Term  Term
}

// Func is an IR function. Parameters arrive in virtual registers
// v0..v(NumParams-1); NumVals is the total virtual register count.
type Func struct {
	Name      string
	NumParams int
	NumVals   int
	Blocks    []*Block
}

// Block returns the named block, or nil.
func (f *Func) Block(name string) *Block {
	for _, b := range f.Blocks {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// Entry returns the first block.
func (f *Func) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// OpKinds returns the set of distinct operation kinds used by the
// function, with OpBin refined by BinKind and OpCmp by Pred. The §VII-B
// selection algorithm uses this as its "types of operations" diversity
// metric.
func (f *Func) OpKinds() map[string]bool {
	kinds := make(map[string]bool)
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			switch in.Kind {
			case OpBin:
				kinds["bin."+in.Bin.String()] = true
			case OpCmp:
				kinds["cmp."+in.Pred.String()] = true
			default:
				kinds[fmt.Sprintf("op.%d", in.Kind)] = true
			}
		}
		kinds[fmt.Sprintf("term.%d", b.Term.Kind)] = true
	}
	return kinds
}

// Global is a module-level data object.
type Global struct {
	Name     string
	Init     []byte // initial bytes; may be shorter than Size
	Size     uint32 // 0 means len(Init)
	ReadOnly bool
}

// ByteSize returns the effective size of the global.
func (g *Global) ByteSize() uint32 {
	if g.Size != 0 {
		return g.Size
	}
	return uint32(len(g.Init))
}

// Module is a complete IR program.
type Module struct {
	Name    string
	Funcs   []*Func
	Globals []*Global
	Entry   string // entry function name; empty means first function
	// Externs declares symbols that OpAddr may reference but that are
	// defined outside the module — e.g. linker-created chain buffers
	// referenced by dynamic-generation decoders. The interpreter
	// cannot resolve them; only compiled code can.
	Externs []string
}

// HasExtern reports whether name is a declared extern symbol.
func (m *Module) HasExtern(name string) bool {
	for _, e := range m.Externs {
		if e == name {
			return true
		}
	}
	return false
}

// Func returns the named function, or nil.
func (m *Module) Func(name string) *Func {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Global returns the named global, or nil.
func (m *Module) Global(name string) *Global {
	for _, g := range m.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// EntryFunc returns the entry function.
func (m *Module) EntryFunc() *Func {
	if m.Entry != "" {
		return m.Func(m.Entry)
	}
	if len(m.Funcs) == 0 {
		return nil
	}
	return m.Funcs[0]
}

// Clone returns a deep copy of the module; transformation passes
// (e.g. dynamic-generation decoder injection) mutate clones, keeping
// the caller's module intact.
func (m *Module) Clone() *Module {
	out := &Module{Name: m.Name, Entry: m.Entry}
	out.Externs = append([]string(nil), m.Externs...)
	out.Funcs = make([]*Func, len(m.Funcs))
	for i, f := range m.Funcs {
		nf := &Func{Name: f.Name, NumParams: f.NumParams, NumVals: f.NumVals}
		nf.Blocks = make([]*Block, len(f.Blocks))
		for j, b := range f.Blocks {
			nb := &Block{Name: b.Name, Term: b.Term}
			nb.Insts = make([]Inst, len(b.Insts))
			for k, in := range b.Insts {
				ni := in
				ni.Args = append([]Value(nil), in.Args...)
				nb.Insts[k] = ni
			}
			nf.Blocks[j] = nb
		}
		out.Funcs[i] = nf
	}
	out.Globals = make([]*Global, len(m.Globals))
	for i, g := range m.Globals {
		ng := *g
		ng.Init = append([]byte(nil), g.Init...)
		out.Globals[i] = &ng
	}
	return out
}
