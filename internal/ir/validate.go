package ir

import "fmt"

// Validate checks module well-formedness: unique names, resolvable
// block/function/global references, and value indices within range.
func Validate(m *Module) error {
	funcNames := make(map[string]bool, len(m.Funcs))
	for _, f := range m.Funcs {
		if funcNames[f.Name] {
			return fmt.Errorf("ir: duplicate function %q", f.Name)
		}
		funcNames[f.Name] = true
	}
	globalNames := make(map[string]bool, len(m.Globals))
	for _, g := range m.Globals {
		if globalNames[g.Name] {
			return fmt.Errorf("ir: duplicate global %q", g.Name)
		}
		if funcNames[g.Name] {
			return fmt.Errorf("ir: global %q collides with a function", g.Name)
		}
		globalNames[g.Name] = true
		if g.Size != 0 && g.Size < uint32(len(g.Init)) {
			return fmt.Errorf("ir: global %q size %d < %d init bytes",
				g.Name, g.Size, len(g.Init))
		}
	}
	if m.Entry != "" && !funcNames[m.Entry] {
		return fmt.Errorf("ir: entry function %q not defined", m.Entry)
	}
	for _, e := range m.Externs {
		globalNames[e] = true
	}
	for _, f := range m.Funcs {
		if err := validateFunc(m, f, funcNames, globalNames); err != nil {
			return err
		}
	}
	return nil
}

func validateFunc(m *Module, f *Func, funcs, globals map[string]bool) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("ir: %s: no blocks", f.Name)
	}
	if f.NumParams > f.NumVals {
		return fmt.Errorf("ir: %s: %d params but only %d values", f.Name, f.NumParams, f.NumVals)
	}
	blocks := make(map[string]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		if blocks[b.Name] {
			return fmt.Errorf("ir: %s: duplicate block %q", f.Name, b.Name)
		}
		blocks[b.Name] = true
	}
	checkVal := func(v Value, what string) error {
		if int(v) < 0 || int(v) >= f.NumVals {
			return fmt.Errorf("ir: %s: %s value %v out of range [0,%d)", f.Name, what, v, f.NumVals)
		}
		return nil
	}
	for _, b := range f.Blocks {
		for i, in := range b.Insts {
			where := fmt.Sprintf("%s.%s[%d]", f.Name, b.Name, i)
			switch in.Kind {
			case OpConst:
				if err := checkVal(in.Dst, where+" dst"); err != nil {
					return err
				}
			case OpBin, OpCmp:
				for _, v := range []Value{in.Dst, in.A, in.B} {
					if err := checkVal(v, where); err != nil {
						return err
					}
				}
			case OpNot, OpNeg, OpCopy, OpLoad, OpLoad8:
				for _, v := range []Value{in.Dst, in.A} {
					if err := checkVal(v, where); err != nil {
						return err
					}
				}
			case OpStore, OpStore8:
				for _, v := range []Value{in.A, in.B} {
					if err := checkVal(v, where); err != nil {
						return err
					}
				}
			case OpAddr:
				if err := checkVal(in.Dst, where+" dst"); err != nil {
					return err
				}
				if !globals[in.Global] {
					return fmt.Errorf("ir: %s: undefined global %q", where, in.Global)
				}
			case OpCall:
				if err := checkVal(in.Dst, where+" dst"); err != nil {
					return err
				}
				if !funcs[in.Callee] {
					return fmt.Errorf("ir: %s: undefined callee %q", where, in.Callee)
				}
				callee := m.Func(in.Callee)
				if callee != nil && len(in.Args) != callee.NumParams {
					return fmt.Errorf("ir: %s: call %s with %d args, want %d",
						where, in.Callee, len(in.Args), callee.NumParams)
				}
				for _, a := range in.Args {
					if err := checkVal(a, where+" arg"); err != nil {
						return err
					}
				}
			case OpSyscall:
				if err := checkVal(in.Dst, where+" dst"); err != nil {
					return err
				}
				if len(in.Args) > 5 {
					return fmt.Errorf("ir: %s: syscall with %d args (max 5)", where, len(in.Args))
				}
				for _, a := range in.Args {
					if err := checkVal(a, where+" arg"); err != nil {
						return err
					}
				}
			default:
				return fmt.Errorf("ir: %s: unknown instruction kind %d", where, in.Kind)
			}
		}
		switch b.Term.Kind {
		case TermRet:
			if b.Term.HasVal {
				if err := checkVal(b.Term.Val, f.Name+"."+b.Name+" ret"); err != nil {
					return err
				}
			}
		case TermJmp:
			if !blocks[b.Term.Then] {
				return fmt.Errorf("ir: %s.%s: jmp to undefined block %q", f.Name, b.Name, b.Term.Then)
			}
		case TermBr:
			if err := checkVal(b.Term.Val, f.Name+"."+b.Name+" br cond"); err != nil {
				return err
			}
			for _, t := range []string{b.Term.Then, b.Term.Else} {
				if !blocks[t] {
					return fmt.Errorf("ir: %s.%s: br to undefined block %q", f.Name, b.Name, t)
				}
			}
		default:
			return fmt.Errorf("ir: %s.%s: unknown terminator kind %d", f.Name, b.Name, b.Term.Kind)
		}
	}
	return nil
}
