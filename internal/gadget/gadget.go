// Package gadget finds and classifies ROP gadgets: instruction
// sequences of at most six instructions ending in a near or far return,
// at any byte offset of an executable section — aligned with the
// program's real instruction stream or hidden inside it.
//
// Classification assigns each gadget a semantic type ("pop reg",
// "add dst,src", "store [dst],src", ...) via a small symbolic evaluator
// over the decoded instructions, plus safety metadata (clobbered
// registers, incidental memory traffic, stack consumption) that the ROP
// compiler uses to decide whether a gadget is chain-usable.
package gadget

import (
	"fmt"
	"sort"
	"strings"

	"parallax/internal/x86"
)

// Kind is the semantic type of a gadget. The taxonomy follows the
// paper's §III "gadget mapping which categorizes the available gadgets
// into a set of types; for instance, memory stores and register moves".
type Kind uint8

// Gadget kinds.
const (
	// KindOther decodes cleanly to a return but matches no chain-usable
	// pattern. Still valuable for protection (§VII-A counts bytes).
	KindOther Kind = iota
	// KindRet is a bare return (chain no-op).
	KindRet
	// KindPopReg: pop Dst; ret — the constant loader.
	KindPopReg
	// KindMovReg: Dst = Src; ret.
	KindMovReg
	// KindAddReg: Dst += Src; ret.
	KindAddReg
	// KindSubReg: Dst -= Src; ret.
	KindSubReg
	// KindAndReg: Dst &= Src; ret.
	KindAndReg
	// KindOrReg: Dst |= Src; ret.
	KindOrReg
	// KindXorReg: Dst ^= Src; ret.
	KindXorReg
	// KindNegReg: Dst = -Dst; ret.
	KindNegReg
	// KindNotReg: Dst = ^Dst; ret.
	KindNotReg
	// KindShrImm: Dst >>= ShiftK (logical); ret.
	KindShrImm
	// KindShlImm: Dst <<= ShiftK; ret.
	KindShlImm
	// KindLoad: Dst = mem32[Src]; ret.
	KindLoad
	// KindStore: mem32[Dst] = Src; ret.
	KindStore
	// KindAddEsp: esp += Src; ret — the chain branch primitive.
	KindAddEsp
	// KindPopEsp: pop esp; ret — the chain epilogue primitive.
	KindPopEsp
	// KindXchgReg: Dst <-> Src; ret.
	KindXchgReg
	// KindMulReg: Dst *= Src (truncated signed multiply); ret.
	KindMulReg
	// KindShlCL: Dst <<= CL; ret.
	KindShlCL
	// KindShrCL: Dst >>= CL (logical); ret.
	KindShrCL
	// KindSarCL: Dst >>= CL (arithmetic); ret.
	KindSarCL
	// KindSarImm: Dst >>= ShiftK (arithmetic); ret.
	KindSarImm
	// KindUDivMod: xor edx,edx; div Src; ret — EAX = EAX/Src,
	// EDX = EAX%Src (unsigned). Matched structurally.
	KindUDivMod
	// KindSDivMod: cdq; idiv Src; ret — signed divide. Matched
	// structurally.
	KindSDivMod
)

var kindNames = map[Kind]string{
	KindOther: "other", KindRet: "ret", KindPopReg: "pop", KindMovReg: "mov",
	KindAddReg: "add", KindSubReg: "sub", KindAndReg: "and", KindOrReg: "or",
	KindXorReg: "xor", KindNegReg: "neg", KindNotReg: "not",
	KindShrImm: "shr", KindShlImm: "shl", KindLoad: "load", KindStore: "store",
	KindAddEsp: "addesp", KindPopEsp: "popesp", KindXchgReg: "xchg",
	KindMulReg: "mul", KindShlCL: "shlcl", KindShrCL: "shrcl",
	KindSarCL: "sarcl", KindSarImm: "sar", KindUDivMod: "udiv",
	KindSDivMod: "sdiv",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// RegSet is a bitmask of general-purpose registers.
type RegSet uint8

// Add inserts a register.
func (s *RegSet) Add(r x86.Reg) { *s |= 1 << r }

// Has reports membership.
func (s RegSet) Has(r x86.Reg) bool { return s&(1<<r) != 0 }

// Without returns s minus r.
func (s RegSet) Without(r x86.Reg) RegSet { return s &^ (1 << r) }

func (s RegSet) String() string {
	var parts []string
	for r := x86.Reg(0); r < x86.NumRegs; r++ {
		if s.Has(r) {
			parts = append(parts, r.String())
		}
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Gadget is one discovered gadget.
type Gadget struct {
	Addr  uint32
	Len   int // total byte length including the return
	Insts []x86.Inst

	Kind   Kind
	Dst    x86.Reg
	Src    x86.Reg
	ShiftK uint8 // shift amount for KindShrImm/KindShlImm

	// PopSlot is, for KindPopReg, the dword index below the initial
	// stack pointer that lands in Dst (0 for a bare pop reg; ret).
	PopSlot int
	// StackPops is the number of dwords consumed from the stack before
	// the return address is read.
	StackPops int
	// RetImm is the ret imm16 extra stack adjustment in bytes, applied
	// after popping the return address.
	RetImm uint16
	// FarRet marks retf gadgets, which consume one extra dword (the
	// discarded CS) after the return address.
	FarRet bool

	// Clobbers are registers modified beyond Dst (ESP excluded).
	Clobbers RegSet
	// MemReads/MemWrites flag incidental memory traffic with addresses
	// that are not part of the gadget's semantic contract. Gadgets with
	// MemWrites are never chain-usable; stray reads are tolerated only
	// by protection counting.
	MemReads  bool
	MemWrites bool
	// StackWrites marks gadgets that push below the incoming stack
	// pointer. In a chain, such a push overwrites already-consumed
	// chain words, corrupting the chain for its next invocation, so
	// these gadgets are never chain-usable.
	StackWrites bool

	// Aligned marks gadgets that begin on an instruction boundary of
	// the host program's linear disassembly.
	Aligned bool
}

// Usable reports whether the ROP compiler may put this gadget in a
// chain: it must have a recognized kind and no stray memory writes.
func (g *Gadget) Usable() bool {
	return g.Kind != KindOther && !g.MemWrites && !g.StackWrites
}

// String renders a short description.
func (g *Gadget) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%#x: ", g.Addr)
	for i, in := range g.Insts {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(in.String())
	}
	fmt.Fprintf(&b, "  [%s", g.Kind)
	switch g.Kind {
	case KindPopReg, KindNegReg, KindNotReg, KindShlCL, KindShrCL, KindSarCL:
		fmt.Fprintf(&b, " %s", g.Dst)
	case KindShrImm, KindShlImm, KindSarImm:
		fmt.Fprintf(&b, " %s,%d", g.Dst, g.ShiftK)
	case KindMovReg, KindAddReg, KindSubReg, KindAndReg, KindOrReg, KindXorReg,
		KindLoad, KindStore, KindXchgReg, KindMulReg:
		fmt.Fprintf(&b, " %s,%s", g.Dst, g.Src)
	case KindAddEsp, KindUDivMod, KindSDivMod:
		fmt.Fprintf(&b, " %s", g.Src)
	}
	b.WriteString("]")
	return b.String()
}

// Range returns the byte interval [Addr, Addr+Len).
func (g *Gadget) Range() (uint32, uint32) { return g.Addr, g.Addr + uint32(g.Len) }

// Catalog is the full gadget inventory of a binary, indexed by kind.
type Catalog struct {
	Gadgets []*Gadget
	byKind  map[Kind][]*Gadget
}

// NewCatalog indexes a gadget list.
func NewCatalog(gs []*Gadget) *Catalog {
	c := &Catalog{Gadgets: gs, byKind: make(map[Kind][]*Gadget)}
	for _, g := range gs {
		c.byKind[g.Kind] = append(c.byKind[g.Kind], g)
	}
	return c
}

// ByKind returns all gadgets of a kind.
func (c *Catalog) ByKind(k Kind) []*Gadget { return c.byKind[k] }

// Find returns chain-usable gadgets of kind k with the given dst/src
// constraints; pass x86.NumRegs as a wildcard.
func (c *Catalog) Find(k Kind, dst, src x86.Reg) []*Gadget {
	var out []*Gadget
	for _, g := range c.byKind[k] {
		if !g.Usable() {
			continue
		}
		if dst != x86.NumRegs && g.Dst != dst {
			continue
		}
		if src != x86.NumRegs && g.Src != src {
			continue
		}
		out = append(out, g)
	}
	return out
}

// At returns the gadget starting at addr, or nil.
func (c *Catalog) At(addr uint32) *Gadget {
	for _, g := range c.Gadgets {
		if g.Addr == addr {
			return g
		}
	}
	return nil
}

// CoveredBytes returns the union size of all gadget byte ranges within
// [lo, hi), plus a bitmap of covered offsets relative to lo.
func (c *Catalog) CoveredBytes(lo, hi uint32) (int, []bool) {
	if hi <= lo {
		return 0, nil
	}
	cover := make([]bool, hi-lo)
	for _, g := range c.Gadgets {
		s, e := g.Range()
		if e <= lo || s >= hi {
			continue
		}
		if s < lo {
			s = lo
		}
		if e > hi {
			e = hi
		}
		for i := s; i < e; i++ {
			cover[i-lo] = true
		}
	}
	n := 0
	for _, v := range cover {
		if v {
			n++
		}
	}
	return n, cover
}

// Sort orders gadgets by address.
func (c *Catalog) Sort() {
	sort.Slice(c.Gadgets, func(i, j int) bool { return c.Gadgets[i].Addr < c.Gadgets[j].Addr })
}
