package gadget

import "testing"

// FuzzScan feeds arbitrary bytes to the scanner: no panics, and every
// reported gadget must lie inside the buffer with a sane length.
func FuzzScan(f *testing.F) {
	f.Add([]byte{0x58, 0xC3, 0x01, 0xD8, 0xC3})
	f.Add([]byte{0xB8, 0x58, 0xC3, 0x00, 0x00, 0xC3})
	f.Fuzz(func(t *testing.T, code []byte) {
		const base = 0x1000
		for _, g := range ScanBytes(code, base, ScanConfig{}) {
			lo, hi := g.Range()
			if lo < base || hi > base+uint32(len(code)) || g.Len <= 0 {
				t.Fatalf("gadget out of bounds: %v over %d bytes", g, len(code))
			}
			if g.Kind != KindOther && len(g.Insts) == 0 {
				t.Fatalf("typed gadget without instructions: %v", g)
			}
		}
	})
}
