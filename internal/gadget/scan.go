package gadget

import (
	"parallax/internal/image"
	"parallax/internal/x86"
)

// ScanConfig tunes the gadget scanner.
type ScanConfig struct {
	// MaxInsts is the longest considered gadget in instructions
	// (including the return). Zero means 6, the paper's §VII-A limit
	// ("we limited the length of the considered gadgets to six
	// instructions").
	MaxInsts int
	// MaxBytes bounds a gadget's byte length. Zero means 24.
	MaxBytes int
	// IncludeFar controls whether retf-terminated gadgets are scanned
	// (§IV-B5). Default true; set SkipFar to disable.
	SkipFar bool
}

func (c ScanConfig) withDefaults() ScanConfig {
	if c.MaxInsts == 0 {
		c.MaxInsts = 6
	}
	if c.MaxBytes == 0 {
		c.MaxBytes = 24
	}
	return c
}

// ScanBytes finds every gadget in code (loaded at base): for each byte
// offset, decode forward; a sequence of at most MaxInsts instructions
// ending in ret/retf is a candidate, which the classifier then types.
func ScanBytes(code []byte, base uint32, cfg ScanConfig) []*Gadget {
	cfg = cfg.withDefaults()

	// Mark aligned instruction starts from a linear sweep so gadgets
	// can report whether they hide inside the instruction stream.
	aligned := make([]bool, len(code))
	for off := 0; off < len(code); {
		aligned[off] = true
		inst, err := x86.Decode(code[off:], base+uint32(off))
		if err != nil {
			off++
			continue
		}
		off += inst.Len
	}

	var out []*Gadget
	for off := 0; off < len(code); off++ {
		g := scanAt(code, base, off, cfg)
		if g == nil {
			continue
		}
		g.Aligned = aligned[off]
		out = append(out, g)
	}
	return out
}

// scanAt decodes a gadget candidate starting at offset off.
func scanAt(code []byte, base uint32, off int, cfg ScanConfig) *Gadget {
	var insts []x86.Inst
	pos := off
	for len(insts) < cfg.MaxInsts {
		if pos-off >= cfg.MaxBytes || pos >= len(code) {
			return nil
		}
		inst, err := x86.Decode(code[pos:], base+uint32(pos))
		if err != nil {
			return nil
		}
		if pos-off+inst.Len > cfg.MaxBytes {
			return nil
		}
		insts = append(insts, inst)
		pos += inst.Len
		if inst.Op == x86.RET || inst.Op == x86.RETF {
			if inst.Op == x86.RETF && cfg.SkipFar {
				return nil
			}
			g := &Gadget{
				Addr:  base + uint32(off),
				Len:   pos - off,
				Insts: insts,
			}
			if !classify(g) {
				return nil
			}
			return g
		}
	}
	return nil
}

// Scan finds and indexes all gadgets in an image's executable sections.
func Scan(img *image.Image, cfg ScanConfig) *Catalog {
	var all []*Gadget
	for _, s := range img.Sections {
		if s.Perm&image.PermX == 0 {
			continue
		}
		all = append(all, ScanBytes(s.Data, s.Addr, cfg)...)
	}
	c := NewCatalog(all)
	c.Sort()
	return c
}
