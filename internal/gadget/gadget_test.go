package gadget

import (
	"math/rand"
	"testing"

	"parallax/internal/emu"
	"parallax/internal/image"
	"parallax/internal/x86"
)

func TestClassifyGolden(t *testing.T) {
	tests := []struct {
		name   string
		bytes  []byte
		kind   Kind
		dst    x86.Reg
		src    x86.Reg
		usable bool
	}{
		{"ret", []byte{0xC3}, KindRet, 0, 0, true},
		{"ret imm", []byte{0xC2, 0x08, 0x00}, KindRet, 0, 0, true},
		{"pop eax", []byte{0x58, 0xC3}, KindPopReg, x86.EAX, 0, true},
		{"pop edi", []byte{0x5F, 0xC3}, KindPopReg, x86.EDI, 0, true},
		{"mov eax,ebx", []byte{0x89, 0xD8, 0xC3}, KindMovReg, x86.EAX, x86.EBX, true},
		{"add eax,esi", []byte{0x01, 0xF0, 0xC3}, KindAddReg, x86.EAX, x86.ESI, true},
		{"add esi,eax", []byte{0x01, 0xC6, 0xC3}, KindAddReg, x86.ESI, x86.EAX, true},
		{"sub ecx,edx", []byte{0x29, 0xD1, 0xC3}, KindSubReg, x86.ECX, x86.EDX, true},
		{"and ebx,eax", []byte{0x21, 0xC3, 0xC3}, KindAndReg, x86.EBX, x86.EAX, true},
		{"or eax,ecx", []byte{0x09, 0xC8, 0xC3}, KindOrReg, x86.EAX, x86.ECX, true},
		{"xor edx,ebx", []byte{0x31, 0xDA, 0xC3}, KindXorReg, x86.EDX, x86.EBX, true},
		{"neg eax", []byte{0xF7, 0xD8, 0xC3}, KindNegReg, x86.EAX, 0, true},
		{"not ecx", []byte{0xF7, 0xD1, 0xC3}, KindNotReg, x86.ECX, 0, true},
		{"shr eax,5", []byte{0xC1, 0xE8, 0x05, 0xC3}, KindShrImm, x86.EAX, 0, true},
		{"shl ebx,2", []byte{0xC1, 0xE3, 0x02, 0xC3}, KindShlImm, x86.EBX, 0, true},
		{"load eax,[ebx]", []byte{0x8B, 0x03, 0xC3}, KindLoad, x86.EAX, x86.EBX, true},
		{"store [eax],ecx", []byte{0x89, 0x08, 0xC3}, KindStore, x86.EAX, x86.ECX, true},
		{"pop esp", []byte{0x5C, 0xC3}, KindPopEsp, 0, 0, true},
		{"add esp,eax", []byte{0x01, 0xC4, 0xC3}, KindAddEsp, 0, x86.EAX, true},
		{"retf bare", []byte{0xCB}, KindRet, 0, 0, true},
		// The paper's §IV-A far-return gadget: and al,0; add [eax],al;
		// add al,ch; retf. Byte-width effects and a stray memory write
		// make it inventory-only.
		{"paper retf gadget", []byte{0x24, 0x00, 0x00, 0x00, 0x00, 0xE8, 0xCB},
			KindOther, 0, 0, false},
		// A clean store with arithmetic beside it: classified as a
		// store gadget whose clobber set absorbs the arithmetic.
		{"store with clobbering add", []byte{0x89, 0x0B, 0x01, 0xF0, 0xC3},
			KindStore, x86.EBX, x86.ECX, true},
		// lea-based move.
		{"lea eax,[ebx]", []byte{0x8D, 0x03, 0xC3}, KindMovReg, x86.EAX, x86.EBX, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := scanAt(tt.bytes, 0x1000, 0, ScanConfig{}.withDefaults())
			if g == nil {
				t.Fatalf("scanAt(% x) found no gadget", tt.bytes)
			}
			if g.Kind != tt.kind {
				t.Fatalf("kind = %v, want %v (%v)", g.Kind, tt.kind, g)
			}
			switch tt.kind {
			case KindPopReg, KindNegReg, KindNotReg, KindShrImm, KindShlImm:
				if g.Dst != tt.dst {
					t.Errorf("dst = %v, want %v", g.Dst, tt.dst)
				}
			case KindMovReg, KindAddReg, KindSubReg, KindAndReg, KindOrReg,
				KindXorReg, KindLoad, KindStore:
				if g.Dst != tt.dst || g.Src != tt.src {
					t.Errorf("dst,src = %v,%v want %v,%v", g.Dst, g.Src, tt.dst, tt.src)
				}
			case KindAddEsp:
				if g.Src != tt.src {
					t.Errorf("src = %v, want %v", g.Src, tt.src)
				}
			}
			if g.Usable() != tt.usable {
				t.Errorf("usable = %t, want %t (%v)", g.Usable(), tt.usable, g)
			}
		})
	}
}

func TestClassifyRejectsControlFlow(t *testing.T) {
	seqs := [][]byte{
		{0x58, 0xEB, 0x01, 0xC3},             // pop eax; jmp +1; ret
		{0xCD, 0x80, 0xC3},                   // int 0x80; ret
		{0xCC, 0xC3},                         // int3; ret
		{0xF4, 0xC3},                         // hlt; ret
		{0xE8, 0x00, 0x00, 0x00, 0x00, 0xC3}, // call; ret
		{0x74, 0x00, 0xC3},                   // je; ret
	}
	for _, b := range seqs {
		if g := scanAt(b, 0, 0, ScanConfig{}.withDefaults()); g != nil {
			t.Errorf("scanAt(% x) = %v, want nil", b, g)
		}
	}
}

func TestClassifyPopChainAndClobbers(t *testing.T) {
	// pop ecx; pop eax; ret: primary is eax (slot 1), ecx clobbered.
	g := scanAt([]byte{0x59, 0x58, 0xC3}, 0, 0, ScanConfig{}.withDefaults())
	if g == nil {
		t.Fatal("no gadget")
	}
	if g.Kind != KindPopReg || g.StackPops != 2 {
		t.Fatalf("got %v (pops=%d)", g, g.StackPops)
	}
	if g.Dst == x86.EAX {
		if g.PopSlot != 1 || !g.Clobbers.Has(x86.ECX) {
			t.Errorf("eax slot=%d clobbers=%v", g.PopSlot, g.Clobbers)
		}
	} else if g.Dst == x86.ECX {
		if g.PopSlot != 0 || !g.Clobbers.Has(x86.EAX) {
			t.Errorf("ecx slot=%d clobbers=%v", g.PopSlot, g.Clobbers)
		}
	} else {
		t.Errorf("unexpected dst %v", g.Dst)
	}
}

func TestScanUnalignedGadgets(t *testing.T) {
	// mov eax, 0x58c3: the immediate hides "pop eax; ret".
	code := []byte{0xB8, 0x58, 0xC3, 0x00, 0x00, 0xC3}
	gs := ScanBytes(code, 0x1000, ScanConfig{})
	var hidden *Gadget
	for _, g := range gs {
		if g.Addr == 0x1001 {
			hidden = g
		}
	}
	if hidden == nil {
		t.Fatalf("unaligned gadget at 0x1001 not found; got %v", gs)
	}
	if hidden.Aligned {
		t.Error("gadget inside mov immediate reported as aligned")
	}
	if hidden.Kind != KindPopReg || hidden.Dst != x86.EAX {
		t.Errorf("hidden gadget = %v", hidden)
	}
	// The trailing plain ret must be aligned.
	var tail *Gadget
	for _, g := range gs {
		if g.Addr == 0x1005 {
			tail = g
		}
	}
	if tail == nil || !tail.Aligned {
		t.Errorf("trailing ret gadget missing or unaligned: %v", tail)
	}
}

func TestCatalogQueries(t *testing.T) {
	code := []byte{
		0x58, 0xC3, // pop eax; ret
		0x5B, 0xC3, // pop ebx; ret
		0x01, 0xD8, 0xC3, // add eax, ebx; ret
		0x89, 0x08, 0xC3, // mov [eax], ecx; ret
	}
	cat := NewCatalog(ScanBytes(code, 0x2000, ScanConfig{}))
	cat.Sort()

	pops := cat.Find(KindPopReg, x86.NumRegs, x86.NumRegs)
	if len(pops) < 2 {
		t.Fatalf("found %d pop gadgets, want >= 2", len(pops))
	}
	eaxPops := cat.Find(KindPopReg, x86.EAX, x86.NumRegs)
	if len(eaxPops) != 1 || eaxPops[0].Addr != 0x2000 {
		t.Errorf("pop eax gadgets = %v", eaxPops)
	}
	adds := cat.Find(KindAddReg, x86.EAX, x86.EBX)
	if len(adds) != 1 {
		t.Errorf("add eax,ebx gadgets = %v", adds)
	}
	stores := cat.Find(KindStore, x86.NumRegs, x86.NumRegs)
	if len(stores) != 1 || stores[0].Dst != x86.EAX || stores[0].Src != x86.ECX {
		t.Errorf("store gadgets = %v", stores)
	}
	if g := cat.At(0x2002); g == nil || g.Kind != KindPopReg {
		t.Errorf("At(0x2002) = %v", g)
	}
	n, cover := cat.CoveredBytes(0x2000, 0x2000+uint32(len(code)))
	if n == 0 || len(cover) != len(code) {
		t.Errorf("coverage = %d over %d", n, len(cover))
	}
}

// predictDst computes the expected destination value for a typed
// gadget.
func predictDst(g *Gadget, init [8]uint32, words []uint32, memVal uint32) (uint32, bool) {
	switch g.Kind {
	case KindPopReg:
		return words[g.PopSlot], true
	case KindMovReg:
		return init[g.Src], true
	case KindAddReg:
		return init[g.Dst] + init[g.Src], true
	case KindSubReg:
		return init[g.Dst] - init[g.Src], true
	case KindAndReg:
		return init[g.Dst] & init[g.Src], true
	case KindOrReg:
		return init[g.Dst] | init[g.Src], true
	case KindXorReg:
		return init[g.Dst] ^ init[g.Src], true
	case KindNegReg:
		return -init[g.Dst], true
	case KindNotReg:
		return ^init[g.Dst], true
	case KindShrImm:
		return init[g.Dst] >> g.ShiftK, true
	case KindShlImm:
		return init[g.Dst] << g.ShiftK, true
	case KindSarImm:
		return uint32(int32(init[g.Dst]) >> g.ShiftK), true
	case KindShlCL:
		return init[g.Dst] << (init[g.Src] & 31), true
	case KindShrCL:
		return init[g.Dst] >> (init[g.Src] & 31), true
	case KindSarCL:
		return uint32(int32(init[g.Dst]) >> (init[g.Src] & 31)), true
	case KindMulReg:
		return init[g.Dst] * init[g.Src], true
	case KindLoad:
		return memVal, true
	default:
		return 0, false
	}
}

// TestClassifierAgainstEmulator is the classifier's differential proof:
// every usable gadget found in random byte soup is executed on the
// emulator and must behave exactly as classified.
func TestClassifierAgainstEmulator(t *testing.T) {
	const (
		codeBase = 0x08048000
		dataBase = 0x08100000
		stkBase  = 0x0B000000
	)
	r := rand.New(rand.NewSource(99))
	tested := 0
	for blob := 0; blob < 300; blob++ {
		code := make([]byte, 64)
		r.Read(code)
		// Sprinkle returns so gadgets are plentiful.
		for i := 0; i < 8; i++ {
			code[r.Intn(len(code))] = 0xC3
		}
		for _, g := range ScanBytes(code, codeBase, ScanConfig{}) {
			if !g.Usable() || g.MemReads || g.MemWrites {
				continue
			}
			switch g.Kind {
			case KindAddEsp, KindPopEsp, KindRet, KindOther:
				continue
			}
			hasDiv := false
			for _, in := range g.Insts {
				if in.Op == x86.DIV || in.Op == x86.IDIV {
					hasDiv = true
				}
			}
			if hasDiv {
				continue
			}
			tested++
			verifyGadgetSemantics(t, r, code, g, codeBase, dataBase, stkBase)
		}
	}
	if tested < 30 {
		t.Errorf("only %d gadgets exercised; scanner or generator too weak", tested)
	}
	t.Logf("verified %d gadgets against the emulator", tested)
}

func verifyGadgetSemantics(t *testing.T, r *rand.Rand, code []byte, g *Gadget,
	codeBase, dataBase, stkBase uint32) {
	t.Helper()
	c := emu.New()
	text, err := c.Mem.Map(".text", codeBase, uint32(len(code)), image.PermR|image.PermX)
	if err != nil {
		t.Fatal(err)
	}
	copy(text.Data, code)
	if _, err := c.Mem.Map(".data", dataBase, 0x1000, image.PermR|image.PermW); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Mem.Map("[stack]", stkBase, 0x1000, image.PermR|image.PermW); err != nil {
		t.Fatal(err)
	}

	// Initial registers: random, but pointer operands of load/store
	// point into the data sandbox.
	var init [8]uint32
	for i := range init {
		init[i] = r.Uint32()
	}
	memVal := r.Uint32()
	switch g.Kind {
	case KindLoad:
		init[g.Src] = dataBase + 0x100
	case KindStore:
		init[g.Dst] = dataBase + 0x200
	}
	if g.Kind == KindLoad {
		if err := c.Mem.Store32(dataBase+0x100, memVal, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i, v := range init {
		c.Reg[i] = v
	}

	// Chain words consumed by the gadget, then the exit sentinel (and
	// a dummy CS for far returns).
	words := make([]uint32, g.StackPops)
	for i := range words {
		words[i] = r.Uint32()
	}
	sp := stkBase + 0x800
	c.Reg[x86.ESP] = sp
	for i, w := range words {
		if err := c.Mem.Store32(sp+uint32(4*i), w, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Mem.Store32(sp+uint32(4*g.StackPops), emu.ExitSentinel, 0); err != nil {
		t.Fatal(err)
	}
	if g.FarRet {
		if err := c.Mem.Store32(sp+uint32(4*g.StackPops+4), 0x23, 0); err != nil {
			t.Fatal(err)
		}
	}

	c.EIP = g.Addr
	c.MaxInst = 100
	if err := c.Run(); err != nil {
		t.Fatalf("gadget %v faulted: %v\ncpu: %s", g, err, c)
	}
	if !c.Exited {
		t.Fatalf("gadget %v did not reach the sentinel", g)
	}

	if g.Kind == KindStore {
		got, err := c.Mem.Load32(dataBase+0x200, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got != init[g.Src] {
			t.Fatalf("gadget %v stored %#x, want %#x", g, got, init[g.Src])
		}
	} else {
		want, ok := predictDst(g, init, words, memVal)
		if !ok {
			t.Fatalf("no prediction for %v", g)
		}
		if got := c.Reg[g.Dst]; got != want {
			t.Fatalf("gadget %v: dst=%#x, want %#x (init=%x words=%x)",
				g, got, want, init, words)
		}
	}

	// Non-clobbered registers must be preserved.
	for reg := x86.Reg(0); reg < x86.NumRegs; reg++ {
		if reg == x86.ESP || reg == g.Dst || g.Clobbers.Has(reg) {
			continue
		}
		if c.Reg[reg] != init[reg] {
			t.Fatalf("gadget %v silently clobbered %v: %#x -> %#x",
				g, reg, init[reg], c.Reg[reg])
		}
	}
}

// TestClassifyExtendedKinds covers the multiply, CL-shift and
// structural divide classifications.
func TestClassifyExtendedKinds(t *testing.T) {
	tests := []struct {
		name   string
		bytes  []byte
		kind   Kind
		dst    x86.Reg
		src    x86.Reg
		usable bool
	}{
		{"imul eax,ebx", []byte{0x0F, 0xAF, 0xC3, 0xC3}, KindMulReg, x86.EAX, x86.EBX, true},
		{"shl eax,cl", []byte{0xD3, 0xE0, 0xC3}, KindShlCL, x86.EAX, x86.ECX, true},
		{"shr eax,cl", []byte{0xD3, 0xE8, 0xC3}, KindShrCL, x86.EAX, x86.ECX, true},
		{"sar eax,cl", []byte{0xD3, 0xF8, 0xC3}, KindSarCL, x86.EAX, x86.ECX, true},
		{"sar ebx,3", []byte{0xC1, 0xFB, 0x03, 0xC3}, KindSarImm, x86.EBX, 0, true},
		{"udiv", []byte{0x31, 0xD2, 0xF7, 0xF3, 0xC3}, KindUDivMod, x86.EAX, x86.EBX, true},
		{"sdiv", []byte{0x99, 0xF7, 0xFB, 0xC3}, KindSDivMod, x86.EAX, x86.EBX, true},
		// A divide without the edx-clearing prologue stays untyped.
		{"bare div", []byte{0xF7, 0xF3, 0xC3}, KindOther, 0, 0, false},
		// Pushing gadgets are never chain-usable (StackWrites).
		{"push pop", []byte{0x50, 0x59, 0xC3}, KindMovReg, x86.ECX, x86.EAX, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := scanAt(tt.bytes, 0x1000, 0, ScanConfig{}.withDefaults())
			if g == nil {
				t.Fatalf("scanAt(% x) found no gadget", tt.bytes)
			}
			if g.Kind != tt.kind {
				t.Fatalf("kind = %v, want %v (%v)", g.Kind, tt.kind, g)
			}
			if g.Usable() != tt.usable {
				t.Errorf("usable = %t, want %t (%v)", g.Usable(), tt.usable, g)
			}
			switch tt.kind {
			case KindMulReg:
				if g.Dst != tt.dst || g.Src != tt.src {
					t.Errorf("dst,src = %v,%v", g.Dst, g.Src)
				}
			case KindShlCL, KindShrCL, KindSarCL:
				if g.Dst != tt.dst || g.Src != tt.src {
					t.Errorf("dst,src = %v,%v", g.Dst, g.Src)
				}
			case KindUDivMod, KindSDivMod:
				if g.Src != tt.src || !g.Clobbers.Has(x86.EDX) {
					t.Errorf("src=%v clobbers=%v", g.Src, g.Clobbers)
				}
			}
		})
	}
}

// TestRegSetQuick checks RegSet's algebra.
func TestRegSetQuick(t *testing.T) {
	var s RegSet
	s.Add(x86.EAX)
	s.Add(x86.EDI)
	if !s.Has(x86.EAX) || !s.Has(x86.EDI) || s.Has(x86.EBX) {
		t.Errorf("membership broken: %v", s)
	}
	s2 := s.Without(x86.EAX)
	if s2.Has(x86.EAX) || !s2.Has(x86.EDI) {
		t.Errorf("Without broken: %v", s2)
	}
	if s.String() != "{eax,edi}" {
		t.Errorf("String = %q", s.String())
	}
}
