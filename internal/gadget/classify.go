package gadget

import (
	"parallax/internal/x86"
)

// The classifier runs a small symbolic evaluator over a gadget's
// instructions. Registers start as Init(r); instructions build
// expressions; at the return, the final state is matched against the
// kind taxonomy. Anything outside the tracked subset degrades to
// Unknown, which keeps classification sound: a gadget is only typed
// when its semantics are fully understood.

type symKind uint8

const (
	symUnknown symKind = iota
	symInit            // initial value of a register
	symConst
	symStack // dword at initial_esp + 4*idx (idx >= 0: chain data)
	symBin   // binary expression
	symNeg
	symNot
	symLoad // 32-bit load from Addr expression
)

type sym struct {
	kind symKind
	reg  x86.Reg // symInit
	c    uint32  // symConst
	idx  int     // symStack
	op   x86.Op  // symBin
	a, b *sym    // operands (a also for symNeg/symNot/symLoad address)
}

var unknownSym = &sym{kind: symUnknown}

func initSym(r x86.Reg) *sym { return &sym{kind: symInit, reg: r} }
func constSym(c uint32) *sym { return &sym{kind: symConst, c: c} }
func stackSym(idx int) *sym  { return &sym{kind: symStack, idx: idx} }
func loadSym(addr *sym) *sym { return &sym{kind: symLoad, a: addr} }
func binSym(op x86.Op, a, b *sym) *sym {
	return &sym{kind: symBin, op: op, a: a, b: b}
}

// isInit reports whether s is the untouched initial value of r.
func (s *sym) isInit(r x86.Reg) bool { return s.kind == symInit && s.reg == r }

type memWrite struct {
	addr  *sym
	value *sym
	wide  bool // 32-bit
}

type evaluator struct {
	regs   [x86.NumRegs]*sym
	espOff int  // esp = initial_esp + 4*espOff (when espKnown)
	espSym *sym // set when esp left the simple offset form
	slots  map[int]*sym

	writes    []memWrite
	loads     int
	minEsp    int // most negative espOff reached (stack writes below entry)
	stackBad  bool
	memReads  bool
	memWrites bool
}

// noteEsp records stack excursions below the entry pointer.
func (e *evaluator) noteEsp() {
	if e.espOff < e.minEsp {
		e.minEsp = e.espOff
	}
}

func newEvaluator() *evaluator {
	e := &evaluator{slots: make(map[int]*sym)}
	for r := x86.Reg(0); r < x86.NumRegs; r++ {
		e.regs[r] = initSym(r)
	}
	return e
}

// addrSym computes the symbolic effective address of a memory operand.
func (e *evaluator) addrSym(o x86.Operand) *sym {
	var s *sym
	if o.HasBase {
		if o.Base == x86.ESP {
			return unknownSym // esp-relative data addressing not modeled
		}
		s = e.regs[o.Base]
	}
	if o.HasIndex {
		return unknownSym // scaled indexing degrades to unknown
	}
	if s == nil {
		return constSym(uint32(o.Disp))
	}
	if o.Disp == 0 {
		return s
	}
	return binSym(x86.ADD, s, constSym(uint32(o.Disp)))
}

// readOp returns the symbolic value of a 32-bit operand.
func (e *evaluator) readOp(o x86.Operand) *sym {
	switch o.Kind {
	case x86.KReg:
		return e.regs[o.Reg]
	case x86.KImm:
		return constSym(uint32(o.Imm))
	case x86.KMem:
		e.loads++
		a := e.addrSym(o)
		if a.kind == symUnknown {
			e.memReads = true
			return unknownSym
		}
		return loadSym(a)
	default:
		return unknownSym
	}
}

// step evaluates one instruction; ok=false aborts classification (the
// sequence is not a valid straight-line gadget body).
func (e *evaluator) step(in *x86.Inst) (ok bool) {
	// Control flow, traps and kernel transitions invalidate a gadget
	// body outright.
	switch in.Op {
	case x86.CALL, x86.JMP, x86.JCC, x86.INT, x86.INT3, x86.HLT:
		return false
	case x86.MOVS, x86.STOS, x86.CMPS, x86.SCAS, x86.LODS:
		// String ops have unbounded, pointer-register-directed memory
		// traffic at any width.
		e.memWrites = true
		e.memReads = true
		e.regs[x86.ESI] = unknownSym
		e.regs[x86.EDI] = unknownSym
		if in.Rep || in.RepNE {
			e.regs[x86.ECX] = unknownSym
		}
		if in.Op == x86.LODS || in.Op == x86.SCAS {
			e.regs[x86.EAX] = unknownSym
		}
		return true
	}

	// Narrow operations are not tracked precisely: they poison their
	// destination and flag memory traffic.
	if in.W != 32 {
		switch in.Op {
		case x86.CMP, x86.TEST, x86.NOP, x86.SAHF, x86.LAHF:
			// flags only (lahf poisons AH's parent register)
			if in.Op == x86.LAHF {
				e.regs[x86.EAX] = unknownSym
			}
			if m, isMem := in.MemOperand(); isMem {
				_ = m
				e.loads++
				e.memReads = true
			}
			return true
		}
		if in.Dst.Kind == x86.KMem {
			e.memWrites = true
			return true
		}
		switch in.Op {
		case x86.MUL, x86.IMUL, x86.DIV, x86.IDIV:
			// Narrow multiplies/divides write AX or DX:AX.
			e.regs[x86.EAX] = unknownSym
			e.regs[x86.EDX] = unknownSym
			if _, isMem := in.MemOperand(); isMem {
				e.loads++
				e.memReads = true
			}
			return true
		}
		poison := func(o x86.Operand) {
			if o.Kind != x86.KReg {
				return
			}
			// Byte registers 4..7 alias the second byte of regs 0..3.
			r := o.Reg
			if in.W == 8 && r >= 4 {
				r -= 4
			}
			e.regs[r] = unknownSym
		}
		poison(in.Dst)
		if in.Op == x86.XCHG {
			poison(in.Src) // xchg writes both operands
		}
		if in.Src.Kind == x86.KMem {
			e.loads++
			e.memReads = true
		}
		return true
	}

	switch in.Op {
	case x86.NOP, x86.CMP, x86.TEST, x86.CLC, x86.STC, x86.CMC, x86.CLD, x86.STD,
		x86.PUSHFD:
		if in.Op == x86.PUSHFD {
			e.espOff--
			e.noteEsp()
			e.slots[e.espOff] = unknownSym
		}
		if _, isMem := in.MemOperand(); isMem {
			e.loads++
			e.memReads = true
		}
		return true

	case x86.POPFD:
		e.espOff++
		return true

	case x86.MOV:
		v := e.readOp(in.Src)
		return e.writeOp(in.Dst, v)

	case x86.LEA:
		e.regs[in.Dst.Reg] = e.addrSym(in.Src)
		return true

	case x86.ADD, x86.SUB, x86.AND, x86.OR, x86.XOR, x86.ADC, x86.SBB:
		op := in.Op
		if op == x86.ADC {
			op = x86.ADD // carry not modeled; value degraded below
		}
		if op == x86.SBB {
			op = x86.SUB
		}
		a := e.readOp(in.Dst)
		b := e.readOp(in.Src)
		v := binSym(op, a, b)
		if in.Op == x86.ADC || in.Op == x86.SBB {
			v = unknownSym // depends on incoming CF
		}
		// Special case: esp arithmetic with a register source is the
		// AddEsp branch primitive.
		if in.Dst.IsReg(x86.ESP) {
			if in.Op == x86.ADD && in.Src.Kind == x86.KImm {
				if in.Src.Imm%4 != 0 {
					e.stackBad = true
					return true
				}
				e.espOff += int(in.Src.Imm / 4)
				return true
			}
			if in.Op == x86.SUB && in.Src.Kind == x86.KImm {
				if in.Src.Imm%4 != 0 {
					e.stackBad = true
					return true
				}
				e.espOff -= int(in.Src.Imm / 4)
				e.noteEsp()
				return true
			}
			if in.Op == x86.ADD && in.Src.Kind == x86.KReg {
				e.espSym = binSym(x86.ADD, initSym(x86.ESP), e.regs[in.Src.Reg])
				return true
			}
			e.stackBad = true
			return true
		}
		return e.writeOp(in.Dst, v)

	case x86.XCHG:
		if in.Dst.Kind == x86.KReg && in.Src.Kind == x86.KReg {
			if in.Dst.Reg == x86.ESP || in.Src.Reg == x86.ESP {
				// Stack pivot: esp leaves the tracked form.
				e.stackBad = true
				other := in.Dst.Reg
				if other == x86.ESP {
					other = in.Src.Reg
				}
				e.regs[other] = unknownSym
				return true
			}
			e.regs[in.Dst.Reg], e.regs[in.Src.Reg] = e.regs[in.Src.Reg], e.regs[in.Dst.Reg]
			return true
		}
		a := e.readOp(in.Dst)
		b := e.readOp(in.Src)
		if !e.writeOp(in.Dst, b) {
			return false
		}
		return e.writeOp(in.Src, a)

	case x86.NEG:
		v := e.readOp(in.Dst)
		return e.writeOp(in.Dst, &sym{kind: symNeg, a: v})

	case x86.NOT:
		v := e.readOp(in.Dst)
		return e.writeOp(in.Dst, &sym{kind: symNot, a: v})

	case x86.INC:
		v := e.readOp(in.Dst)
		return e.writeOp(in.Dst, binSym(x86.ADD, v, constSym(1)))

	case x86.DEC:
		v := e.readOp(in.Dst)
		return e.writeOp(in.Dst, binSym(x86.SUB, v, constSym(1)))

	case x86.SHL, x86.SAL, x86.SHR, x86.SAR, x86.ROL, x86.ROR, x86.RCL, x86.RCR:
		v := e.readOp(in.Dst)
		op := in.Op
		if op == x86.SAL {
			op = x86.SHL
		}
		if op == x86.SHL || op == x86.SHR || op == x86.SAR {
			if in.Src.Kind == x86.KImm {
				return e.writeOp(in.Dst, binSym(op, v, constSym(uint32(in.Src.Imm))))
			}
			if in.Src.IsReg(x86.ECX) {
				return e.writeOp(in.Dst, binSym(op, v, e.regs[x86.ECX]))
			}
		}
		return e.writeOp(in.Dst, unknownSym)

	case x86.PUSH:
		v := e.readOp(in.Dst)
		e.espOff--
		e.noteEsp()
		e.slots[e.espOff] = v
		return true

	case x86.POP:
		v, popOK := e.popSlot()
		if !popOK {
			return true // stackBad already set
		}
		if in.Dst.IsReg(x86.ESP) {
			e.espSym = v
			return true
		}
		return e.writeOp(in.Dst, v)

	case x86.PUSHAD:
		for i := 0; i < 8; i++ {
			e.espOff--
			e.noteEsp()
			e.slots[e.espOff] = unknownSym
		}
		return true

	case x86.POPAD:
		for _, r := range []x86.Reg{x86.EDI, x86.ESI, x86.EBP, x86.EBX,
			x86.EDX, x86.ECX, x86.EAX} {
			e.regs[r] = unknownSym
		}
		e.espOff += 8
		return true

	case x86.LEAVE:
		// esp = ebp; pop ebp — the stack pointer leaves the tracked
		// form.
		e.espSym = e.regs[x86.EBP]
		e.regs[x86.EBP] = unknownSym
		e.stackBad = true
		return true

	case x86.MOVZX, x86.MOVSX:
		if in.Src.Kind == x86.KMem {
			e.loads++
			e.memReads = true
		}
		e.regs[in.Dst.Reg] = unknownSym
		return true

	case x86.MUL, x86.IMUL, x86.DIV, x86.IDIV:
		// Two-operand register imul is precisely tracked (truncated
		// multiply); everything else poisons EDX:EAX.
		if in.Op == x86.IMUL && !in.HasImm && in.Dst.Kind == x86.KReg &&
			in.Src.Kind == x86.KReg {
			a := e.regs[in.Dst.Reg]
			b := e.regs[in.Src.Reg]
			return e.writeOp(in.Dst, binSym(x86.IMUL, a, b))
		}
		if _, isMem := in.MemOperand(); isMem {
			e.loads++
			e.memReads = true
		}
		e.regs[x86.EAX] = unknownSym
		e.regs[x86.EDX] = unknownSym
		if in.Op == x86.IMUL && in.Dst.Kind == x86.KReg && in.Src.Kind != x86.KNone {
			e.regs[in.Dst.Reg] = unknownSym
		}
		return true

	case x86.CDQ, x86.CWDE:
		e.regs[x86.EDX] = unknownSym
		if in.Op == x86.CWDE {
			e.regs[x86.EAX] = unknownSym
		}
		return true

	case x86.SETCC:
		return e.writeOp(in.Dst, unknownSym)

	default:
		return false
	}
}

func (e *evaluator) popSlot() (*sym, bool) {
	if e.espSym != nil {
		e.stackBad = true
		return unknownSym, false
	}
	idx := e.espOff
	e.espOff++
	if v, written := e.slots[idx]; written {
		return v, true
	}
	if idx < 0 {
		// Reading below where the gadget itself pushed but at a slot it
		// never wrote: value unknowable.
		return unknownSym, true
	}
	return stackSym(idx), true
}

// writeOp stores a symbolic value into a 32-bit destination.
func (e *evaluator) writeOp(o x86.Operand, v *sym) bool {
	switch o.Kind {
	case x86.KReg:
		if o.Reg == x86.ESP {
			// Arbitrary esp writes are stack pivots outside the
			// tracked form.
			e.stackBad = true
			return true
		}
		e.regs[o.Reg] = v
		return true
	case x86.KMem:
		a := e.addrSym(o)
		if a.kind == symUnknown {
			e.memWrites = true
			return true
		}
		e.writes = append(e.writes, memWrite{addr: a, value: v, wide: true})
		return true
	default:
		return false
	}
}

// classify runs the evaluator over the instruction sequence (which must
// end in RET/RETF) and fills in the gadget's semantic fields. It
// returns false when the body contains instructions that invalidate it
// as a gadget (control flow, traps). Gadgets the evaluator cannot type
// get a second chance against the structural patterns (divides, whose
// paired EAX/EDX results are beyond the single-destination model).
func classify(g *Gadget) bool {
	if !classifyEval(g) {
		return false
	}
	if g.Kind == KindOther {
		matchStructural(g)
	}
	return true
}

// matchStructural recognizes exact multi-result instruction patterns.
func matchStructural(g *Gadget) {
	ins := g.Insts
	if len(ins) != 3 || ins[2].Op != x86.RET || ins[2].Imm != 0 {
		return
	}
	div := &ins[1]
	if div.W != 32 || div.Dst.Kind != x86.KReg {
		return
	}
	r := div.Dst.Reg
	if r == x86.ESP || r == x86.EDX || r == x86.EAX {
		return
	}
	reset := func(kind Kind) {
		g.Kind = kind
		g.Dst = x86.EAX
		g.Src = r
		var cl RegSet
		cl.Add(x86.EDX)
		g.Clobbers = cl
		g.MemReads = false
		g.MemWrites = false
		g.StackPops = 0
	}
	switch {
	case ins[0].Op == x86.XOR && ins[0].W == 32 &&
		ins[0].Dst.IsReg(x86.EDX) && ins[0].Src.IsReg(x86.EDX) &&
		div.Op == x86.DIV:
		reset(KindUDivMod)
	case ins[0].Op == x86.CDQ && div.Op == x86.IDIV:
		reset(KindSDivMod)
	}
}

func classifyEval(g *Gadget) bool {
	e := newEvaluator()
	for i := 0; i < len(g.Insts)-1; i++ {
		if !e.step(&g.Insts[i]) {
			return false
		}
	}
	ret := g.Insts[len(g.Insts)-1]
	g.FarRet = ret.Op == x86.RETF
	g.RetImm = uint16(ret.Imm)
	g.StackWrites = e.minEsp < 0

	// Stack accounting.
	if e.espSym != nil {
		// esp was replaced: AddEsp / PopEsp patterns.
		g.StackPops = 0
		s := e.espSym
		switch {
		case s.kind == symBin && s.op == x86.ADD && s.a.isInit(x86.ESP) &&
			s.b.kind == symInit && !e.stackBad:
			g.Kind = KindAddEsp
			g.Src = s.b.reg
			g.Clobbers = e.clobbers(x86.NumRegs)
			g.MemReads = e.memReads
			g.MemWrites = e.memWrites || len(e.writes) > 0
			return true
		case s.kind == symStack && s.idx >= 0 && !e.stackBad:
			g.Kind = KindPopEsp
			g.PopSlot = s.idx
			g.Clobbers = e.clobbers(x86.NumRegs)
			g.MemReads = e.memReads
			g.MemWrites = e.memWrites || len(e.writes) > 0
			return true
		default:
			g.Kind = KindOther
			g.MemReads = e.memReads
			g.MemWrites = true // unknown stack: never chain-usable
			return true
		}
	}
	if _, written := e.slots[e.espOff]; written {
		// The gadget wrote the slot its own return will pop: control
		// goes to a gadget-controlled value, not the next chain word.
		e.stackBad = true
	}
	if e.espOff < 0 || e.stackBad {
		// Net push or untracked esp: keep as untyped gadget.
		g.Kind = KindOther
		g.MemReads = e.memReads
		g.MemWrites = true
		return true
	}
	g.StackPops = e.espOff

	g.MemReads = e.memReads
	g.MemWrites = e.memWrites

	// Identify semantic writes first: exactly one well-formed store.
	var store *memWrite
	cleanWrites := true
	for i := range e.writes {
		w := &e.writes[i]
		if w.wide && w.addr.kind == symInit && w.addr.reg != x86.ESP && store == nil {
			store = w
		} else {
			cleanWrites = false
		}
	}
	if !cleanWrites {
		g.MemWrites = true
		store = nil
	}

	// Collect changed registers.
	type change struct {
		reg x86.Reg
		s   *sym
	}
	var changes []change
	for r := x86.Reg(0); r < x86.NumRegs; r++ {
		if r == x86.ESP {
			continue
		}
		if !e.regs[r].isInit(r) {
			changes = append(changes, change{r, e.regs[r]})
		}
	}

	// Try to find a primary effect among the changed registers.
	// ESP is never a legal data source: its runtime value is the chain
	// pointer, which no register pattern models.
	match := func(r x86.Reg, s *sym) (Kind, x86.Reg, uint8, int, bool) {
		switch {
		case s.kind == symStack && s.idx >= 0:
			return KindPopReg, 0, 0, s.idx, true
		case s.kind == symInit && s.reg != x86.ESP:
			return KindMovReg, s.reg, 0, 0, true
		case s.kind == symNeg && s.a.isInit(r):
			return KindNegReg, 0, 0, 0, true
		case s.kind == symNot && s.a.isInit(r):
			return KindNotReg, 0, 0, 0, true
		case s.kind == symLoad && s.a.kind == symInit && s.a.reg != x86.ESP:
			return KindLoad, s.a.reg, 0, 0, true
		case s.kind == symBin && s.a.isInit(r) && s.b.kind == symInit && s.b.reg != x86.ESP:
			switch s.op {
			case x86.ADD:
				return KindAddReg, s.b.reg, 0, 0, true
			case x86.SUB:
				return KindSubReg, s.b.reg, 0, 0, true
			case x86.AND:
				return KindAndReg, s.b.reg, 0, 0, true
			case x86.OR:
				return KindOrReg, s.b.reg, 0, 0, true
			case x86.XOR:
				return KindXorReg, s.b.reg, 0, 0, true
			case x86.IMUL:
				return KindMulReg, s.b.reg, 0, 0, true
			case x86.SHL:
				// Shift count comes from the CL encoding; Src records
				// the register whose value reached CL.
				return KindShlCL, s.b.reg, 0, 0, true
			case x86.SHR:
				return KindShrCL, s.b.reg, 0, 0, true
			case x86.SAR:
				return KindSarCL, s.b.reg, 0, 0, true
			}
		case s.kind == symBin && s.a.isInit(r) && s.b.kind == symConst &&
			(s.op == x86.SHR || s.op == x86.SHL || s.op == x86.SAR):
			k := uint8(s.b.c & 31)
			switch s.op {
			case x86.SHR:
				return KindShrImm, 0, k, 0, true
			case x86.SHL:
				return KindShlImm, 0, k, 0, true
			default:
				return KindSarImm, 0, k, 0, true
			}
		}
		return KindOther, 0, 0, 0, false
	}

	// A clean store gadget: one store, and any register changes are
	// clobbers.
	if store != nil && !g.MemWrites {
		if store.value.kind == symInit && store.value.reg != x86.ESP {
			g.Kind = KindStore
			g.Dst = store.addr.reg
			g.Src = store.value.reg
			g.Clobbers = e.clobbers(x86.NumRegs)
			return true
		}
		// Anything else written to memory is an unmodeled side effect.
		g.MemWrites = true
	}

	var best *change
	var bestKind Kind
	var bestSrc x86.Reg
	var bestShift uint8
	var bestSlot int
	for i := range changes {
		k, src, shift, slot, ok := match(changes[i].reg, changes[i].s)
		if !ok {
			continue
		}
		// Prefer the first match; pops beat moves beat arithmetic only
		// in pathological multi-effect gadgets, where any consistent
		// choice is fine because the rest becomes clobbers.
		if best == nil {
			best = &changes[i]
			bestKind, bestSrc, bestShift, bestSlot = k, src, shift, slot
		}
	}

	if best == nil {
		if len(changes) == 0 && len(e.writes) == 0 {
			g.Kind = KindRet
			return true
		}
		g.Kind = KindOther
		return true
	}

	g.Kind = bestKind
	g.Dst = best.reg
	g.Src = bestSrc
	g.ShiftK = bestShift
	g.PopSlot = bestSlot
	g.Clobbers = e.clobbers(best.reg)
	// A typed gadget that also has stray stores is unusable; record the
	// type anyway for inventory purposes.
	if len(e.writes) > 0 && g.Kind != KindStore {
		g.MemWrites = true
	}
	// Loads that are not the classified effect are incidental.
	if g.Kind != KindLoad && e.loads > 0 {
		g.MemReads = true
	}
	return true
}

// clobbers returns the set of changed registers other than primary and
// ESP.
func (e *evaluator) clobbers(primary x86.Reg) RegSet {
	var s RegSet
	for r := x86.Reg(0); r < x86.NumRegs; r++ {
		if r == x86.ESP || r == primary {
			continue
		}
		if !e.regs[r].isInit(r) {
			s.Add(r)
		}
	}
	return s
}
