// Package ropc compiles IR functions into ROP chains — the paper's §V
// "verification code". A compiled chain is a sequence of 32-bit words
// (gadget addresses and constants) that re-implements the function
// using gadgets scattered over the protected binary, so that executing
// it implicitly verifies those gadgets' integrity.
//
// The compiler targets a canonical gadget basis (pop/mov/load/store/
// ALU/shift/div/add-esp/pop-esp); Parallax guarantees availability by
// inserting a fallback pool when the host binary lacks a type (§III:
// "a standard set of non-overlapping gadgets can be inserted"), and
// always prefers gadgets overlapping protected instructions.
package ropc

import (
	"fmt"

	"parallax/internal/ir"
)

// Lower rewrites a function into the chain-compilable core subset:
//
//   - OpCmp becomes branchless bit arithmetic (chains have no flags);
//   - TermBr conditions are normalized to exact 0/1 booleans;
//   - OpLoad8/OpStore8 become aligned word accesses with shift/mask
//     arithmetic.
//
// The result is a fresh function; the input is not modified. Lowered
// functions are semantically identical to their originals, which the
// differential tests check with the IR interpreter.
func Lower(f *ir.Func) (*ir.Func, error) {
	nf := &ir.Func{Name: f.Name, NumParams: f.NumParams, NumVals: f.NumVals}
	lw := &lowerer{f: nf}
	for _, b := range f.Blocks {
		nb := &ir.Block{Name: b.Name, Term: b.Term}
		lw.cur = nb
		for i := range b.Insts {
			if err := lw.inst(&b.Insts[i]); err != nil {
				return nil, fmt.Errorf("ropc: lowering %s.%s: %w", f.Name, b.Name, err)
			}
		}
		if nb.Term.Kind == ir.TermBr {
			// Normalize the branch condition to an exact boolean: the
			// chain's mask trick (neg) needs 0 or 1, not just zero /
			// non-zero.
			nb.Term.Val = lw.emitNe(nb.Term.Val, lw.constVal(0))
		}
		nf.Blocks = append(nf.Blocks, nb)
	}
	return nf, nil
}

type lowerer struct {
	f   *ir.Func
	cur *ir.Block
}

func (lw *lowerer) newVal() ir.Value {
	v := ir.Value(lw.f.NumVals)
	lw.f.NumVals++
	return v
}

func (lw *lowerer) emit(in ir.Inst) ir.Value {
	lw.cur.Insts = append(lw.cur.Insts, in)
	return in.Dst
}

func (lw *lowerer) constVal(c int32) ir.Value {
	return lw.emit(ir.Inst{Kind: ir.OpConst, Dst: lw.newVal(), Imm: c})
}

func (lw *lowerer) bin(k ir.BinKind, a, b ir.Value) ir.Value {
	return lw.emit(ir.Inst{Kind: ir.OpBin, Dst: lw.newVal(), Bin: k, A: a, B: b})
}

func (lw *lowerer) neg(a ir.Value) ir.Value {
	return lw.emit(ir.Inst{Kind: ir.OpNeg, Dst: lw.newVal(), A: a})
}

// emitNe computes (a != b) as 0/1: d = a-b; ((d | -d) >> 31) & 1, all
// with plain word arithmetic.
func (lw *lowerer) emitNe(a, b ir.Value) ir.Value {
	d := lw.bin(ir.Sub, a, b)
	nd := lw.neg(d)
	m := lw.bin(ir.Or, d, nd)
	sh := lw.constVal(31)
	return lw.bin(ir.Shr, m, sh)
}

// emitULt computes (a <u b) via the borrow-out formula
// MSB((~a & b) | ((~a | b) & (a-b))).
func (lw *lowerer) emitULt(a, b ir.Value) ir.Value {
	na := lw.emit(ir.Inst{Kind: ir.OpNot, Dst: lw.newVal(), A: a})
	t1 := lw.bin(ir.And, na, b)
	t2 := lw.bin(ir.Or, na, b)
	d := lw.bin(ir.Sub, a, b)
	t3 := lw.bin(ir.And, t2, d)
	m := lw.bin(ir.Or, t1, t3)
	sh := lw.constVal(31)
	return lw.bin(ir.Shr, m, sh)
}

// emitSLt computes (a <s b) via MSB(d ^ ((a^b) & (d^a))), d = a-b.
func (lw *lowerer) emitSLt(a, b ir.Value) ir.Value {
	d := lw.bin(ir.Sub, a, b)
	ab := lw.bin(ir.Xor, a, b)
	da := lw.bin(ir.Xor, d, a)
	t := lw.bin(ir.And, ab, da)
	m := lw.bin(ir.Xor, d, t)
	sh := lw.constVal(31)
	return lw.bin(ir.Shr, m, sh)
}

func (lw *lowerer) flip(v ir.Value) ir.Value {
	one := lw.constVal(1)
	return lw.bin(ir.Xor, v, one)
}

func (lw *lowerer) inst(in *ir.Inst) error {
	switch in.Kind {
	case ir.OpCmp:
		var r ir.Value
		switch in.Pred {
		case ir.Ne:
			r = lw.emitNe(in.A, in.B)
		case ir.Eq:
			r = lw.flip(lw.emitNe(in.A, in.B))
		case ir.ULt:
			r = lw.emitULt(in.A, in.B)
		case ir.UGt:
			r = lw.emitULt(in.B, in.A)
		case ir.UGe:
			r = lw.flip(lw.emitULt(in.A, in.B))
		case ir.ULe:
			r = lw.flip(lw.emitULt(in.B, in.A))
		case ir.Lt:
			r = lw.emitSLt(in.A, in.B)
		case ir.Gt:
			r = lw.emitSLt(in.B, in.A)
		case ir.Ge:
			r = lw.flip(lw.emitSLt(in.A, in.B))
		case ir.Le:
			r = lw.flip(lw.emitSLt(in.B, in.A))
		default:
			return fmt.Errorf("unknown predicate %v", in.Pred)
		}
		lw.emit(ir.Inst{Kind: ir.OpCopy, Dst: in.Dst, A: r})
		return nil

	case ir.OpLoad8:
		// byte = (mem32[a & ~3] >> (8*(a & 3))) & 0xFF
		m3 := lw.constVal(^int32(3))
		aligned := lw.bin(ir.And, in.A, m3)
		w := lw.emit(ir.Inst{Kind: ir.OpLoad, Dst: lw.newVal(), A: aligned})
		three := lw.constVal(3)
		off := lw.bin(ir.And, in.A, three)
		eight := lw.constVal(3)
		sh := lw.bin(ir.Shl, off, eight) // off*8 via <<3
		shifted := lw.bin(ir.Shr, w, sh)
		ff := lw.constVal(0xFF)
		r := lw.bin(ir.And, shifted, ff)
		lw.emit(ir.Inst{Kind: ir.OpCopy, Dst: in.Dst, A: r})
		return nil

	case ir.OpStore8:
		// w = mem32[a&~3]; sh = 8*(a&3);
		// mem32[a&~3] = (w & ~(0xFF<<sh)) | ((v&0xFF) << sh)
		m3 := lw.constVal(^int32(3))
		aligned := lw.bin(ir.And, in.A, m3)
		w := lw.emit(ir.Inst{Kind: ir.OpLoad, Dst: lw.newVal(), A: aligned})
		three := lw.constVal(3)
		off := lw.bin(ir.And, in.A, three)
		eight := lw.constVal(3)
		sh := lw.bin(ir.Shl, off, eight)
		ff := lw.constVal(0xFF)
		mask := lw.bin(ir.Shl, ff, sh)
		nmask := lw.emit(ir.Inst{Kind: ir.OpNot, Dst: lw.newVal(), A: mask})
		cleared := lw.bin(ir.And, w, nmask)
		vb := lw.bin(ir.And, in.B, ff)
		vs := lw.bin(ir.Shl, vb, sh)
		merged := lw.bin(ir.Or, cleared, vs)
		lw.emit(ir.Inst{Kind: ir.OpStore, A: aligned, B: merged})
		return nil

	case ir.OpCall, ir.OpSyscall:
		return fmt.Errorf("%v cannot be lowered into a chain", in.Kind)

	default:
		lw.cur.Insts = append(lw.cur.Insts, *in)
		return nil
	}
}

// Chainable reports whether a function can be compiled to a chain: it
// must not call other functions or make system calls (§VII-B's
// selection algorithm only considers such functions).
func Chainable(f *ir.Func) bool {
	for _, b := range f.Blocks {
		for i := range b.Insts {
			switch b.Insts[i].Kind {
			case ir.OpCall, ir.OpSyscall:
				return false
			}
		}
	}
	return true
}
