package ropc

import (
	"bytes"
	"encoding/binary"
	"testing"

	"parallax/internal/gadget"
	"parallax/internal/x86"
)

// TestChainBytesEdgeCases pins the serialized chain format at its
// boundaries: the chain words become exactly 4-byte little-endian
// values, gadget words serialize their gadget's address (never the
// stale Value field), and the degenerate empty chain is a well-formed
// zero-length serialization. dyngen's installers and decoders consume
// this format verbatim, so any drift here corrupts installed binaries.
func TestChainBytesEdgeCases(t *testing.T) {
	g1 := &gadget.Gadget{Addr: 0x08048010, Len: 2}
	g2 := &gadget.Gadget{Addr: 0xFFFFFFFC, Len: 1} // top-of-address-space gadget
	cases := []struct {
		name  string
		words []Word
		want  []uint32
	}{
		{name: "empty", words: nil, want: nil},
		{
			name:  "single gadget",
			words: []Word{{Kind: WGadget, Gadget: g1, Value: 0xDEAD}}, // Value must be ignored
			want:  []uint32{0x08048010},
		},
		{
			name: "const zero and max",
			words: []Word{
				{Kind: WConst, Value: 0},
				{Kind: WConst, Value: 0xFFFFFFFF},
			},
			want: []uint32{0, 0xFFFFFFFF},
		},
		{
			name: "mixed kinds in order",
			words: []Word{
				{Kind: WGadget, Gadget: g2},
				{Kind: WJunk, Value: 0x4A4A4A4A},
				{Kind: WConst, Value: 7},
				{Kind: WExitPtr, Value: 0}, // loader patches this slot at run time
			},
			want: []uint32{0xFFFFFFFC, 0x4A4A4A4A, 7, 0},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := &Chain{FuncName: "f", Words: tc.words}
			if got, want := c.ByteLen(), 4*len(tc.words); got != want {
				t.Errorf("ByteLen = %d, want %d", got, want)
			}
			b := c.Bytes()
			if len(b) != 4*len(tc.want) {
				t.Fatalf("Bytes length %d, want %d", len(b), 4*len(tc.want))
			}
			for i, want := range tc.want {
				if got := binary.LittleEndian.Uint32(b[4*i:]); got != want {
					t.Errorf("word %d = %#x, want %#x", i, got, want)
				}
			}
		})
	}
}

// TestChainBytesStable checks serialization is a pure function: two
// materializations of one chain are identical and do not alias.
func TestChainBytesStable(t *testing.T) {
	c := &Chain{Words: []Word{
		{Kind: WGadget, Gadget: &gadget.Gadget{Addr: 0x08048000}},
		{Kind: WConst, Value: 42},
	}}
	a, b := c.Bytes(), c.Bytes()
	if !bytes.Equal(a, b) {
		t.Fatalf("serialization not stable: % x vs % x", a, b)
	}
	a[0] ^= 0xFF
	if bytes.Equal(a, c.Bytes()) {
		t.Error("Bytes aliases an internal buffer")
	}
}

// TestGadgetAddrsDedup checks the implicitly-verified gadget set
// deduplicates repeated gadgets but keeps first-use order.
func TestGadgetAddrsDedup(t *testing.T) {
	g1 := &gadget.Gadget{Addr: 0x10}
	g2 := &gadget.Gadget{Addr: 0x20}
	c := &Chain{Words: []Word{
		{Kind: WGadget, Gadget: g2},
		{Kind: WGadget, Gadget: g1},
		{Kind: WConst, Value: 0x30}, // consts never contribute addresses
		{Kind: WGadget, Gadget: g2},
	}}
	addrs := c.GadgetAddrs()
	if len(addrs) != 2 || addrs[0] != 0x20 || addrs[1] != 0x10 {
		t.Errorf("GadgetAddrs = %#x, want [0x20 0x10]", addrs)
	}
	if gs := c.Gadgets(); len(gs) != 2 || gs[0] != g2 || gs[1] != g1 {
		t.Errorf("Gadgets dedup wrong: %v", gs)
	}
}

// TestSpecString covers the Spec debug rendering used in
// MissingGadgetError messages.
func TestSpecString(t *testing.T) {
	s := Spec{Kind: gadget.KindMovReg, Dst: x86.EAX, Src: x86.EBX}
	if got := s.String(); got == "" {
		t.Fatal("empty Spec string")
	}
	e := &MissingGadgetError{Spec: s}
	if e.Error() == "" {
		t.Fatal("empty MissingGadgetError message")
	}
}
