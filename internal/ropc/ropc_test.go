package ropc

import (
	"errors"
	"math/rand"
	"testing"

	"parallax/internal/chain"
	"parallax/internal/emu"
	"parallax/internal/gadget"
	"parallax/internal/image"
	"parallax/internal/ir"
	"parallax/internal/x86"
)

// poolEnv links a pool-only image and returns a compiler environment
// plus the image for execution tests.
func poolEnv(t *testing.T) (*Env, *image.Image) {
	t.Helper()
	obj := &image.Object{}
	if err := chain.AddPool(obj, 2); err != nil {
		t.Fatal(err)
	}
	img, err := image.Link(obj, image.Layout{})
	if err != nil {
		t.Fatal(err)
	}
	cat := gadget.Scan(img, gadget.ScanConfig{})
	env := &Env{
		Catalog:    cat,
		GlobalAddr: func(string) (uint32, bool) { return 0, false },
	}
	return env, img
}

// sampleFunc builds a chainable function exercising every supported
// construct: f(a, b) with loop, branches, comparisons, memory via a
// global, shifts, mul, div.
func sampleModule(t *testing.T) *ir.Module {
	t.Helper()
	mb := ir.NewModule("s")
	mb.GlobalZero("scratch", 64)
	fb := mb.Func("f", 2)
	a := fb.Param(0)
	b := fb.Param(1)
	acc := fb.Xor(a, b)
	i := fb.Const(0)
	fb.Jmp("head")
	fb.Block("head")
	lim := fb.Const(5)
	c := fb.Cmp(ir.ULt, i, lim)
	fb.Br(c, "body", "done")
	fb.Block("body")
	three := fb.Const(3)
	fb.Assign(acc, fb.Add(fb.Mul(acc, three), fb.Shr(acc, three)))
	p := fb.Addr("scratch", 0)
	fb.Store(p, acc)
	fb.Assign(acc, fb.Add(fb.Load(p), i))
	one := fb.Const(1)
	fb.Assign(i, fb.Add(i, one))
	fb.Jmp("head")
	fb.Block("done")
	seven := fb.Const(7)
	q := fb.Bin(ir.UDiv, acc, seven)
	r := fb.Bin(ir.URem, acc, seven)
	ge := fb.Cmp(ir.Ge, q, r)
	fb.Br(ge, "big", "small")
	fb.Block("big")
	fb.Ret(fb.Add(q, r))
	fb.Block("small")
	fb.Ret(fb.Sub(r, q))
	mb.SetEntry("f")
	return mb.MustBuild()
}

func TestChainable(t *testing.T) {
	m := sampleModule(t)
	if !Chainable(m.Func("f")) {
		t.Error("sample function should be chainable")
	}
	mb := ir.NewModule("c")
	fb := mb.Func("callee", 0)
	fb.RetVoid()
	fb = mb.Func("caller", 0)
	fb.Ret(fb.Call("callee"))
	fb = mb.Func("sys", 0)
	fb.Ret(fb.Syscall(20))
	m2 := mb.MustBuild()
	if Chainable(m2.Func("caller")) || Chainable(m2.Func("sys")) {
		t.Error("calls and syscalls must not be chainable")
	}
}

// TestLowerPreservesSemantics is the lowering pass's differential
// proof: for random functions and arguments, the lowered function
// computes the same results under the IR interpreter.
func TestLowerPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	preds := []ir.Pred{ir.Eq, ir.Ne, ir.Lt, ir.Le, ir.Gt, ir.Ge, ir.ULt, ir.ULe, ir.UGt, ir.UGe}
	for trial := 0; trial < 150; trial++ {
		mb := ir.NewModule("lw")
		mb.GlobalZero("g", 64)
		fb := mb.Func("f", 2)
		a := fb.Param(0)
		b := fb.Param(1)
		// Random mix of cmps, byte memory ops and arithmetic.
		vals := []ir.Value{a, b, fb.Const(int32(r.Uint32()))}
		pick := func() ir.Value { return vals[r.Intn(len(vals))] }
		for k := 0; k < 6; k++ {
			switch r.Intn(4) {
			case 0:
				vals = append(vals, fb.Cmp(preds[r.Intn(len(preds))], pick(), pick()))
			case 1:
				off := fb.Const(int32(r.Intn(60)))
				addr := fb.Add(fb.Addr("g", 0), off)
				fb.Store8(addr, pick())
				vals = append(vals, fb.Load8(addr))
			case 2:
				vals = append(vals, fb.Bin(ir.Add, pick(), pick()))
			case 3:
				vals = append(vals, fb.Bin(ir.Xor, pick(), pick()))
			}
		}
		cond := fb.Cmp(preds[r.Intn(len(preds))], pick(), pick())
		fb.Br(cond, "t", "e")
		fb.Block("t")
		fb.Ret(fb.Add(pick(), pick()))
		fb.Block("e")
		fb.Ret(fb.Xor(pick(), pick()))
		m := mb.MustBuild()

		lowered, err := Lower(m.Func("f"))
		if err != nil {
			t.Fatal(err)
		}
		lm := m.Clone()
		for i, f := range lm.Funcs {
			if f.Name == "f" {
				lm.Funcs[i] = lowered
			}
		}
		if err := ir.Validate(lm); err != nil {
			t.Fatalf("lowered module invalid: %v", err)
		}

		for args := 0; args < 8; args++ {
			x := r.Uint32()
			y := r.Uint32()
			want, err1 := ir.NewInterp(m, nil).CallFunc("f", x, y)
			got, err2 := ir.NewInterp(lm, nil).CallFunc("f", x, y)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("trial %d: error divergence %v vs %v", trial, err1, err2)
			}
			if err1 == nil && want != got {
				t.Fatalf("trial %d f(%#x,%#x): original %#x, lowered %#x",
					trial, x, y, want, got)
			}
		}
	}
}

func TestLowerRejectsCalls(t *testing.T) {
	mb := ir.NewModule("x")
	fb := mb.Func("callee", 0)
	fb.RetVoid()
	fb = mb.Func("f", 0)
	fb.Ret(fb.Call("callee"))
	m := mb.MustBuild()
	if _, err := Lower(m.Func("f")); err == nil {
		t.Error("Lower accepted a function with calls")
	}
}

func TestCompileStructure(t *testing.T) {
	env, _ := poolEnv(t)
	m := sampleModule(t)
	fakeGlobals := func(name string) (uint32, bool) {
		if name == "scratch" {
			return 0x08100000, true
		}
		return 0, false
	}
	env.GlobalAddr = fakeGlobals

	ch, err := Compile(m.Func("f"), env, 0x08200000)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Words) < 50 {
		t.Fatalf("suspiciously small chain: %d words", len(ch.Words))
	}
	if ch.Words[0].Kind != WGadget {
		t.Error("chain must start with a gadget address")
	}
	if ch.ExitPtrIndex != len(ch.Words)-1 ||
		ch.Words[ch.ExitPtrIndex].Kind != WExitPtr {
		t.Errorf("exit pointer not last: idx=%d len=%d", ch.ExitPtrIndex, len(ch.Words))
	}
	for i, w := range ch.Words {
		if w.Kind == WGadget && !w.Gadget.Usable() {
			t.Errorf("word %d uses unusable gadget %v", i, w.Gadget)
		}
	}
	// The word before the exit pointer must be a pop-esp gadget.
	popEsp := ch.Words[ch.ExitPtrIndex-1]
	if popEsp.Kind != WGadget || popEsp.Gadget.Kind != gadget.KindPopEsp {
		t.Errorf("epilogue gadget = %+v", popEsp)
	}
	// Bytes materialize to 4x words with gadget addresses inside text.
	b := ch.Bytes()
	if len(b) != ch.ByteLen() {
		t.Errorf("ByteLen %d != %d", ch.ByteLen(), len(b))
	}
}

func TestCompileDeterministic(t *testing.T) {
	env, _ := poolEnv(t)
	env.GlobalAddr = func(string) (uint32, bool) { return 0x08100000, true }
	m := sampleModule(t)
	a, err := Compile(m.Func("f"), env, 0x08200000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(m.Func("f"), env, 0x08200000)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Words) != len(b.Words) {
		t.Fatalf("non-deterministic length: %d vs %d", len(a.Words), len(b.Words))
	}
	ab, bb := a.Bytes(), b.Bytes()
	for i := range ab {
		if ab[i] != bb[i] {
			t.Fatalf("non-deterministic word content at byte %d", i)
		}
	}
}

func TestCompileMissingGadget(t *testing.T) {
	env := &Env{
		Catalog:    gadget.NewCatalog(nil),
		GlobalAddr: func(string) (uint32, bool) { return 0, false },
	}
	m := sampleModule(t)
	_, err := Compile(m.Func("f"), env, 0x1000)
	var miss *MissingGadgetError
	if !errors.As(err, &miss) {
		t.Fatalf("err = %v, want MissingGadgetError", err)
	}
}

func TestMuChainLonger(t *testing.T) {
	env, _ := poolEnv(t)
	env.GlobalAddr = func(string) (uint32, bool) { return 0x08100000, true }
	m := sampleModule(t)
	fn, err := Compile(m.Func("f"), env, 0x08200000)
	if err != nil {
		t.Fatal(err)
	}
	mu, err := CompileWith(m.Func("f"), env, 0x08200000, Options{Mu: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(mu.Words) <= len(fn.Words) {
		t.Errorf("µ-chain (%d words) not longer than function chain (%d)",
			len(mu.Words), len(fn.Words))
	}
}

func TestAlternativesShareFootprint(t *testing.T) {
	env, _ := poolEnv(t)
	env.GlobalAddr = func(string) (uint32, bool) { return 0x08100000, true }
	m := sampleModule(t)
	ch, err := Compile(m.Func("f"), env, 0x08200000)
	if err != nil {
		t.Fatal(err)
	}
	sawMulti := false
	for _, w := range ch.Words {
		if w.Kind != WGadget {
			continue
		}
		alts := Alternatives(env, w)
		if len(alts) == 0 {
			t.Fatalf("no alternatives for %v (must at least include itself)", w.Gadget)
		}
		if len(alts) > 1 {
			sawMulti = true
		}
		for _, g := range alts {
			if g.StackPops != w.Gadget.StackPops || g.FarRet != w.Gadget.FarRet {
				t.Errorf("footprint mismatch: %v vs %v", g, w.Gadget)
			}
			if g.Clobbers&w.Live != 0 {
				t.Errorf("alternative %v clobbers live set %v", g, w.Live)
			}
		}
	}
	if !sawMulti {
		t.Error("pool replicated twice but no word has multiple alternatives")
	}
}

// TestChainExecutesStandalone drives a compiled chain directly (no
// loader): frame prepared by hand, esp pivoted into the chain, exit
// pointer patched to a stack slot holding the sentinel continuation.
func TestChainExecutesStandalone(t *testing.T) {
	env, img := poolEnv(t)

	const (
		dataBase  = 0x08100000
		frameBase = 0x08100100
		chainBase = 0x08100800
		stackBase = 0x0B000000
	)
	env.GlobalAddr = func(name string) (uint32, bool) {
		if name == "scratch" {
			return dataBase, true
		}
		return 0, false
	}
	m := sampleModule(t)
	ch, err := Compile(m.Func("f"), env, frameBase)
	if err != nil {
		t.Fatal(err)
	}

	run := func(a, b uint32) (uint32, error) {
		cpu := emu.New()
		text := img.Text()
		seg, err := cpu.Mem.Map(".text", text.Addr, text.Size, image.PermR|image.PermX)
		if err != nil {
			t.Fatal(err)
		}
		copy(seg.Data, text.Data)
		if _, err := cpu.Mem.Map(".data", dataBase, 0x2000, image.PermR|image.PermW); err != nil {
			t.Fatal(err)
		}
		if _, err := cpu.Mem.Map("[stack]", stackBase, 0x1000, image.PermR|image.PermW); err != nil {
			t.Fatal(err)
		}
		// Install the chain and arguments.
		if err := cpu.Mem.Poke(chainBase, ch.Bytes()); err != nil {
			t.Fatal(err)
		}
		if err := cpu.Mem.Store32(frameBase, a, 0); err != nil {
			t.Fatal(err)
		}
		if err := cpu.Mem.Store32(frameBase+4, b, 0); err != nil {
			t.Fatal(err)
		}
		// Continuation: a stack slot holding the exit sentinel; the
		// chain's exit pointer is patched to its address (the loader's
		// job in a full binary).
		contSlot := uint32(stackBase + 0x800)
		if err := cpu.Mem.Store32(contSlot, emu.ExitSentinel, 0); err != nil {
			t.Fatal(err)
		}
		if err := cpu.Mem.Store32(chainBase+uint32(4*ch.ExitPtrIndex), contSlot, 0); err != nil {
			t.Fatal(err)
		}
		// Pivot into the chain: esp at the first word, then "ret" by
		// setting EIP from it — emulate the loader's final ret.
		cpu.Reg[x86.ESP] = chainBase + 4
		first, err := cpu.Mem.Load32(chainBase, 0)
		if err != nil {
			t.Fatal(err)
		}
		cpu.EIP = first
		cpu.MaxInst = 1_000_000
		if err := cpu.Run(); err != nil {
			return 0, err
		}
		if !cpu.Exited {
			t.Fatal("chain did not reach the sentinel")
		}
		return cpu.Mem.Load32(ch.RetSlotAddr, 0)
	}

	for trial := 0; trial < 10; trial++ {
		a := uint32(trial * 977)
		b := uint32(trial*31 + 5)
		want, err := ir.NewInterp(m, nil).CallFunc("f", a, b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := run(a, b)
		if err != nil {
			t.Fatalf("chain run f(%d,%d): %v", a, b, err)
		}
		if got != want {
			t.Fatalf("chain f(%d,%d) = %#x, want %#x", a, b, got, want)
		}
	}
}
