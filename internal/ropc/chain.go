package ropc

import (
	"encoding/binary"
	"fmt"
	"strings"

	"parallax/internal/gadget"
	"parallax/internal/x86"
)

// WordKind discriminates chain words.
type WordKind uint8

// Chain word kinds.
const (
	// WGadget is a gadget address.
	WGadget WordKind = iota
	// WConst is an immediate constant, frame address or global
	// address consumed by a pop gadget.
	WConst
	// WJunk is padding consumed but ignored (extra pops, far-return CS
	// words, ret-imm skips).
	WJunk
	// WExitPtr is the final chain word: the loader patches it before
	// every run with the stack address holding the resume address
	// (§V-A's epilogue).
	WExitPtr
)

// Spec is the semantic requirement a gadget slot satisfies. Two gadgets
// with the same Spec are interchangeable, which is exactly the
// equivalence dyngen's probabilistic generation exploits (§V-B).
type Spec struct {
	Kind gadget.Kind
	Dst  x86.Reg
	Src  x86.Reg
}

func (s Spec) String() string {
	return fmt.Sprintf("%v(%v,%v)", s.Kind, s.Dst, s.Src)
}

// Word is one 32-bit chain element.
type Word struct {
	Kind   WordKind
	Gadget *gadget.Gadget // WGadget
	Value  uint32         // WConst/WJunk
	Spec   Spec           // WGadget: the requirement this slot fills
	// Live records the registers that were live when the gadget was
	// selected; any interchangeable alternative must avoid clobbering
	// them (used by probabilistic regeneration, §V-B).
	Live gadget.RegSet
}

// Chain is a compiled verification chain for one function.
type Chain struct {
	FuncName string
	Words    []Word

	// FrameBase/FrameSize describe the scratch frame holding the
	// function's virtual registers plus the return-value slot.
	FrameBase uint32
	FrameSize uint32
	NumParams int
	// RetSlotAddr is where the chain stores its return value.
	RetSlotAddr uint32
	// ExitPtrIndex is the index of the WExitPtr word.
	ExitPtrIndex int
}

// ByteLen returns the chain's size in bytes.
func (c *Chain) ByteLen() int { return 4 * len(c.Words) }

// Bytes materializes the chain into little-endian words.
func (c *Chain) Bytes() []byte {
	out := make([]byte, 0, c.ByteLen())
	for _, w := range c.Words {
		v := w.Value
		if w.Kind == WGadget {
			v = w.Gadget.Addr
		}
		out = binary.LittleEndian.AppendUint32(out, v)
	}
	return out
}

// GadgetAddrs returns the distinct gadget addresses the chain uses —
// the set whose integrity it implicitly verifies.
func (c *Chain) GadgetAddrs() []uint32 {
	seen := make(map[uint32]bool)
	var out []uint32
	for _, w := range c.Words {
		if w.Kind == WGadget && !seen[w.Gadget.Addr] {
			seen[w.Gadget.Addr] = true
			out = append(out, w.Gadget.Addr)
		}
	}
	return out
}

// Gadgets returns the distinct gadgets used by the chain.
func (c *Chain) Gadgets() []*gadget.Gadget {
	seen := make(map[uint32]bool)
	var out []*gadget.Gadget
	for _, w := range c.Words {
		if w.Kind == WGadget && !seen[w.Gadget.Addr] {
			seen[w.Gadget.Addr] = true
			out = append(out, w.Gadget)
		}
	}
	return out
}

// String renders a word-by-word dump for debugging and the ropdump
// tool.
func (c *Chain) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chain %s: %d words, frame %#x+%d\n",
		c.FuncName, len(c.Words), c.FrameBase, c.FrameSize)
	for i, w := range c.Words {
		switch w.Kind {
		case WGadget:
			fmt.Fprintf(&b, "  [%3d] gadget %v\n", i, w.Gadget)
		case WConst:
			fmt.Fprintf(&b, "  [%3d] const  %#x\n", i, w.Value)
		case WJunk:
			fmt.Fprintf(&b, "  [%3d] junk\n", i)
		case WExitPtr:
			fmt.Fprintf(&b, "  [%3d] exitptr\n", i)
		}
	}
	return b.String()
}

// Env supplies the compiler with its gadget inventory and address
// resolution.
type Env struct {
	Catalog *gadget.Catalog
	// GlobalAddr resolves a global symbol to its linked address.
	GlobalAddr func(string) (uint32, bool)
	// Prefer ranks gadget candidates: gadgets for which it returns
	// true are chosen over others. Parallax passes a predicate marking
	// gadgets that overlap protected instructions (§III: "overlapping
	// gadgets are always preferred over non-overlapping gadgets").
	Prefer func(*gadget.Gadget) bool
}

// MissingGadgetError reports that no chain-usable gadget satisfies a
// required spec; Parallax responds by inserting the fallback pool.
type MissingGadgetError struct {
	Spec Spec
	Live gadget.RegSet
}

func (e *MissingGadgetError) Error() string {
	return fmt.Sprintf("ropc: no usable gadget for %v (live %v)", e.Spec, e.Live)
}

func popcount(v uint8) int {
	n := 0
	for v != 0 {
		v &= v - 1
		n++
	}
	return n
}

// Alternatives returns the gadgets interchangeable with the one in a
// chain word: same semantic spec, same stack footprint (pops, pop slot,
// far-return, ret-imm), and clobbers compatible with the word's live
// set. The result always contains the word's own gadget. These
// equivalence classes are the G_i sets of the paper's §V-B
// probabilistic generation.
func Alternatives(env *Env, w Word) []*gadget.Gadget {
	if w.Kind != WGadget {
		return nil
	}
	base := w.Gadget
	var out []*gadget.Gadget
	for _, g := range env.Catalog.Find(w.Spec.Kind, w.Spec.Dst, w.Spec.Src) {
		if g.Clobbers&w.Live != 0 {
			continue
		}
		if g.StackPops != base.StackPops || g.PopSlot != base.PopSlot ||
			g.FarRet != base.FarRet || g.RetImm != base.RetImm {
			continue
		}
		if g.MemReads != base.MemReads || g.MemWrites || g.StackWrites {
			continue
		}
		out = append(out, g)
	}
	return out
}
