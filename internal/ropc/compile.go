package ropc

import (
	"fmt"

	"parallax/internal/gadget"
	"parallax/internal/ir"
	"parallax/internal/x86"
)

// junkWord fills chain slots whose runtime value is irrelevant.
const junkWord = 0xDEADC0DE

// anyReg is the wildcard register constraint in a Spec.
const anyReg = x86.NumRegs

// Options tunes chain compilation.
type Options struct {
	// Mu compiles instruction-level verification (§V-C µ-chains): each
	// IR instruction's gadget sequence carries its own context
	// save/restore prologue and epilogue, the structure that costs
	// µ-chains their ~2x overhead over function chains.
	Mu bool
}

// Compile translates an IR function into a ROP chain.
//
// The function's virtual registers live in a scratch frame at
// frameBase (one dword per register, two context-save slots, and a
// trailing return-value slot); the chain is position-dependent only
// through the gadget and frame addresses baked into its words.
func Compile(f *ir.Func, env *Env, frameBase uint32) (*Chain, error) {
	return CompileWith(f, env, frameBase, Options{})
}

// CompileWith is Compile with explicit options.
func CompileWith(f *ir.Func, env *Env, frameBase uint32, opt Options) (*Chain, error) {
	if !Chainable(f) {
		return nil, fmt.Errorf("ropc: %s makes calls or syscalls and cannot be chained", f.Name)
	}
	lf, err := Lower(f)
	if err != nil {
		return nil, err
	}
	c := &compiler{
		env:       env,
		f:         lf,
		frameBase: frameBase,
		labels:    make(map[string]int),
		mu:        opt.Mu,
	}
	if err := c.run(); err != nil {
		return nil, fmt.Errorf("ropc: compiling %s: %w", f.Name, err)
	}
	return &Chain{
		FuncName:     f.Name,
		Words:        c.words,
		FrameBase:    frameBase,
		FrameSize:    uint32(4 * (lf.NumVals + frameExtra)),
		NumParams:    f.NumParams,
		RetSlotAddr:  frameBase + uint32(4*(lf.NumVals+frameExtra-1)),
		ExitPtrIndex: c.exitPtrIdx,
	}, nil
}

// frameExtra is the number of frame slots beyond the virtual
// registers: two µ-chain context-save slots and the return slot (last).
const frameExtra = 3

// FrameWords returns the number of frame dwords Compile will use for a
// function. Callers reserving frame space before compilation use this;
// the return slot is always the final word.
func FrameWords(f *ir.Func) (int, error) {
	lf, err := Lower(f)
	if err != nil {
		return 0, err
	}
	return lf.NumVals + frameExtra, nil
}

type fixupKind uint8

const (
	fixDiff  fixupKind = iota // 4*(idx(labelA) - idx(labelB))
	fixDelta                  // 4*(idx(labelA) - base)
)

type fixup struct {
	wordIdx int
	kind    fixupKind
	labelA  string
	labelB  string
	base    int
}

type compiler struct {
	env       *Env
	f         *ir.Func
	frameBase uint32

	words       []Word
	pendingSkip int
	labels      map[string]int
	fixups      []fixup
	exitPtrIdx  int
	mu          bool
}

func (c *compiler) slotAddr(v ir.Value) uint32 {
	return c.frameBase + uint32(4*int(v))
}

func (c *compiler) retSlotAddr() uint32 {
	return c.frameBase + uint32(4*(c.f.NumVals+frameExtra-1))
}

func (c *compiler) saveSlotAddr(i int) uint32 {
	return c.frameBase + uint32(4*(c.f.NumVals+i))
}

// emitGadget appends a gadget word plus its stack footprint. When
// valueSlot is non-nil, the gadget must be a popper and *valueSlot
// receives the index of the word that lands in its destination.
func (c *compiler) emitGadget(spec Spec, live gadget.RegSet, value uint32,
	valueSlot *int) error {
	g, err := c.pickChecked(spec, live)
	if err != nil {
		return err
	}
	c.words = append(c.words, Word{Kind: WGadget, Gadget: g, Spec: spec, Live: live})
	// A far return or ret-imm on the *previous* gadget consumes words
	// immediately after this gadget's address.
	for i := 0; i < c.pendingSkip; i++ {
		c.words = append(c.words, Word{Kind: WJunk, Value: junkWord})
	}
	c.pendingSkip = 0
	for i := 0; i < g.StackPops; i++ {
		if valueSlot != nil && i == g.PopSlot {
			*valueSlot = len(c.words)
			c.words = append(c.words, Word{Kind: WConst, Value: value})
		} else {
			c.words = append(c.words, Word{Kind: WJunk, Value: junkWord})
		}
	}
	if g.FarRet {
		c.pendingSkip++
	}
	c.pendingSkip += int(g.RetImm) / 4
	return nil
}

// pickChecked adds structural safety requirements beyond Env.pick.
func (c *compiler) pickChecked(spec Spec, live gadget.RegSet) (*gadget.Gadget, error) {
	cands := c.env.Catalog.Find(spec.Kind, spec.Dst, spec.Src)
	var best *gadget.Gadget
	bestScore := -1 << 30
	for _, g := range cands {
		if !c.safeFor(spec, g, live) {
			continue
		}
		score := 0
		if c.env.Prefer != nil && c.env.Prefer(g) {
			score += 1000
		}
		score -= 10 * g.StackPops
		if g.FarRet {
			score -= 5
		}
		if g.RetImm != 0 {
			score -= 5
		}
		score -= int(popcount(uint8(g.Clobbers)))
		if score > bestScore {
			best = g
			bestScore = score
		}
	}
	if best == nil {
		return nil, &MissingGadgetError{Spec: spec, Live: live}
	}
	return best, nil
}

func (c *compiler) safeFor(spec Spec, g *gadget.Gadget, live gadget.RegSet) bool {
	if !g.Usable() {
		return false
	}
	if g.Clobbers&live != 0 {
		return false
	}
	if g.RetImm%4 != 0 {
		return false
	}
	switch spec.Kind {
	case gadget.KindAddEsp:
		// The pivot must be exactly [add esp, r; ret]: any stack pop
		// around the pivot would consume target words.
		return len(g.Insts) == 2 && !g.FarRet && g.RetImm == 0
	case gadget.KindPopEsp:
		return len(g.Insts) == 2 && !g.FarRet && g.RetImm == 0 && g.PopSlot == 0
	case gadget.KindLoad, gadget.KindUDivMod, gadget.KindSDivMod:
		// Their single read is the semantic contract.
		return !g.MemWrites
	default:
		return !g.MemReads && !g.MemWrites
	}
}

// Canonical emission helpers. The compiler routes all data through a
// fixed register discipline: EAX is the accumulator, EBX the address/
// second operand, ECX the parking and shift-count register, EDX the
// division remainder.

func (c *compiler) pop(r x86.Reg, value uint32, live gadget.RegSet) error {
	return c.emitGadget(Spec{Kind: gadget.KindPopReg, Dst: r, Src: anyReg},
		live, value, new(int))
}

func (c *compiler) popIdx(r x86.Reg, value uint32, live gadget.RegSet) (int, error) {
	idx := -1
	err := c.emitGadget(Spec{Kind: gadget.KindPopReg, Dst: r, Src: anyReg},
		live, value, &idx)
	return idx, err
}

func (c *compiler) op(kind gadget.Kind, dst, src x86.Reg, live gadget.RegSet) error {
	return c.emitGadget(Spec{Kind: kind, Dst: dst, Src: src}, live, 0, nil)
}

func live(regs ...x86.Reg) gadget.RegSet {
	var s gadget.RegSet
	for _, r := range regs {
		s.Add(r)
	}
	return s
}

// loadVal leaves frame[v] in EAX. Keep holds registers that must
// survive.
func (c *compiler) loadVal(v ir.Value, keep gadget.RegSet) error {
	if err := c.pop(x86.EBX, c.slotAddr(v), keep); err != nil {
		return err
	}
	keepB := keep
	keepB.Add(x86.EBX)
	return c.op(gadget.KindLoad, x86.EAX, x86.EBX, keepB)
}

// storeEAX writes EAX into frame[v].
func (c *compiler) storeEAX(v ir.Value, keep gadget.RegSet) error {
	keepA := keep
	keepA.Add(x86.EAX)
	if err := c.pop(x86.EBX, c.slotAddr(v), keepA); err != nil {
		return err
	}
	keepA.Add(x86.EBX)
	return c.op(gadget.KindStore, x86.EBX, x86.EAX, keepA)
}

func (c *compiler) mov(dst, src x86.Reg, keep gadget.RegSet) error {
	keepS := keep
	keepS.Add(src)
	return c.op(gadget.KindMovReg, dst, src, keepS)
}

func (c *compiler) run() error {
	for _, b := range c.f.Blocks {
		c.labels[b.Name] = len(c.words)
		if c.pendingSkip != 0 {
			return fmt.Errorf("internal: pending stack skip crosses block label %q", b.Name)
		}
		for i := range b.Insts {
			if c.mu {
				if err := c.muContext(); err != nil {
					return fmt.Errorf("block %s inst %d prologue: %w", b.Name, i, err)
				}
			}
			if err := c.inst(&b.Insts[i]); err != nil {
				return fmt.Errorf("block %s inst %d (%v): %w", b.Name, i, b.Insts[i], err)
			}
			if c.mu {
				if err := c.muRestore(); err != nil {
					return fmt.Errorf("block %s inst %d epilogue: %w", b.Name, i, err)
				}
			}
		}
		if err := c.term(&b.Term); err != nil {
			return fmt.Errorf("block %s terminator (%v): %w", b.Name, b.Term, err)
		}
	}
	if err := c.emitExit(); err != nil {
		return err
	}
	return c.resolve()
}

func (c *compiler) inst(in *ir.Inst) error {
	switch in.Kind {
	case ir.OpConst:
		if err := c.pop(x86.EAX, uint32(in.Imm), live()); err != nil {
			return err
		}
		return c.storeEAX(in.Dst, live())

	case ir.OpCopy:
		if err := c.loadVal(in.A, live()); err != nil {
			return err
		}
		return c.storeEAX(in.Dst, live())

	case ir.OpAddr:
		addr, ok := c.env.GlobalAddr(in.Global)
		if !ok {
			return fmt.Errorf("undefined global %q", in.Global)
		}
		if err := c.pop(x86.EAX, addr+uint32(in.Imm), live()); err != nil {
			return err
		}
		return c.storeEAX(in.Dst, live())

	case ir.OpNot, ir.OpNeg:
		if err := c.loadVal(in.A, live()); err != nil {
			return err
		}
		kind := gadget.KindNotReg
		if in.Kind == ir.OpNeg {
			kind = gadget.KindNegReg
		}
		if err := c.op(kind, x86.EAX, anyReg, live(x86.EAX)); err != nil {
			return err
		}
		return c.storeEAX(in.Dst, live())

	case ir.OpLoad:
		if err := c.loadVal(in.A, live()); err != nil {
			return err
		}
		if err := c.mov(x86.EBX, x86.EAX, live()); err != nil {
			return err
		}
		if err := c.op(gadget.KindLoad, x86.EAX, x86.EBX, live(x86.EBX)); err != nil {
			return err
		}
		return c.storeEAX(in.Dst, live())

	case ir.OpStore:
		// value → ECX, address → EBX, value back to EAX, store.
		if err := c.loadVal(in.B, live()); err != nil {
			return err
		}
		if err := c.mov(x86.ECX, x86.EAX, live()); err != nil {
			return err
		}
		if err := c.loadVal(in.A, live(x86.ECX)); err != nil {
			return err
		}
		if err := c.mov(x86.EBX, x86.EAX, live(x86.ECX)); err != nil {
			return err
		}
		if err := c.mov(x86.EAX, x86.ECX, live(x86.EBX)); err != nil {
			return err
		}
		return c.op(gadget.KindStore, x86.EBX, x86.EAX, live(x86.EAX, x86.EBX))

	case ir.OpBin:
		return c.binOp(in)

	case ir.OpCmp, ir.OpLoad8, ir.OpStore8:
		return fmt.Errorf("internal: %v survived lowering", in.Kind)

	default:
		return fmt.Errorf("unsupported instruction kind %d", in.Kind)
	}
}

func (c *compiler) binOp(in *ir.Inst) error {
	// B → ECX, A → EAX, then combine.
	if err := c.loadVal(in.B, live()); err != nil {
		return err
	}
	if err := c.mov(x86.ECX, x86.EAX, live()); err != nil {
		return err
	}
	if err := c.loadVal(in.A, live(x86.ECX)); err != nil {
		return err
	}

	switch in.Bin {
	case ir.Add, ir.Sub, ir.And, ir.Or, ir.Xor, ir.Mul:
		kind := map[ir.BinKind]gadget.Kind{
			ir.Add: gadget.KindAddReg, ir.Sub: gadget.KindSubReg,
			ir.And: gadget.KindAndReg, ir.Or: gadget.KindOrReg,
			ir.Xor: gadget.KindXorReg, ir.Mul: gadget.KindMulReg,
		}[in.Bin]
		if err := c.mov(x86.EBX, x86.ECX, live(x86.EAX)); err != nil {
			return err
		}
		if err := c.op(kind, x86.EAX, x86.EBX, live(x86.EAX, x86.EBX)); err != nil {
			return err
		}

	case ir.Shl, ir.Shr, ir.Sar:
		kind := map[ir.BinKind]gadget.Kind{
			ir.Shl: gadget.KindShlCL, ir.Shr: gadget.KindShrCL, ir.Sar: gadget.KindSarCL,
		}[in.Bin]
		// Count is already in ECX.
		if err := c.op(kind, x86.EAX, x86.ECX, live(x86.EAX, x86.ECX)); err != nil {
			return err
		}

	case ir.UDiv, ir.URem, ir.SDiv, ir.SRem:
		kind := gadget.KindUDivMod
		if in.Bin == ir.SDiv || in.Bin == ir.SRem {
			kind = gadget.KindSDivMod
		}
		if err := c.mov(x86.EBX, x86.ECX, live(x86.EAX)); err != nil {
			return err
		}
		if err := c.op(kind, x86.EAX, x86.EBX, live(x86.EAX, x86.EBX)); err != nil {
			return err
		}
		if in.Bin == ir.URem || in.Bin == ir.SRem {
			if err := c.mov(x86.EAX, x86.EDX, live(x86.EDX)); err != nil {
				return err
			}
		}

	default:
		return fmt.Errorf("unsupported binary op %v", in.Bin)
	}
	return c.storeEAX(in.Dst, live())
}

// muContext emits the per-instruction context save a standalone inline
// µ-chain needs: the surrounding native registers are parked in the
// frame before the instruction's gadget sequence runs. (Between IR
// instructions no chain register is live, so the traffic is free to
// use the scratch registers.)
func (c *compiler) muContext() error {
	for i := 0; i < 2; i++ {
		if err := c.pop(x86.EBX, c.saveSlotAddr(i), live()); err != nil {
			return err
		}
		if err := c.op(gadget.KindStore, x86.EBX, x86.EAX, live(x86.EAX, x86.EBX)); err != nil {
			return err
		}
	}
	return nil
}

// muRestore is the matching per-instruction epilogue.
func (c *compiler) muRestore() error {
	for i := 1; i >= 0; i-- {
		if err := c.pop(x86.EBX, c.saveSlotAddr(i), live()); err != nil {
			return err
		}
		if err := c.op(gadget.KindLoad, x86.EAX, x86.EBX, live(x86.EBX)); err != nil {
			return err
		}
	}
	return nil
}

const exitLabel = "..exit"

func (c *compiler) term(t *ir.Term) error {
	switch t.Kind {
	case ir.TermRet:
		if t.HasVal {
			if err := c.loadVal(t.Val, live()); err != nil {
				return err
			}
		} else {
			if err := c.pop(x86.EAX, 0, live()); err != nil {
				return err
			}
		}
		keep := live(x86.EAX)
		if err := c.pop(x86.EBX, c.retSlotAddr(), keep); err != nil {
			return err
		}
		if err := c.op(gadget.KindStore, x86.EBX, x86.EAX, live(x86.EAX, x86.EBX)); err != nil {
			return err
		}
		return c.emitJmp(exitLabel)

	case ir.TermJmp:
		return c.emitJmp(t.Then)

	case ir.TermBr:
		return c.emitBr(t.Val, t.Then, t.Else)

	default:
		return fmt.Errorf("unknown terminator %d", t.Kind)
	}
}

// emitJmp transfers chain control to a label: EAX = 4*(target - here)
// then esp += EAX.
func (c *compiler) emitJmp(label string) error {
	deltaIdx, err := c.popIdx(x86.EAX, 0, live())
	if err != nil {
		return err
	}
	if err := c.op(gadget.KindAddEsp, anyReg, x86.EAX, live(x86.EAX)); err != nil {
		return err
	}
	addEspIdx := len(c.words) - 1 // AddEsp gadgets never carry data words
	c.fixups = append(c.fixups, fixup{
		wordIdx: deltaIdx, kind: fixDelta, labelA: label, base: addEspIdx + 1,
	})
	return nil
}

// emitBr branches on a 0/1 condition:
//
//	EAX = cond; EAX = -EAX              (mask: 0 or ~0)
//	EBX = 4*(then-else); EAX &= EBX     (diff if taken)
//	EBX = 4*(else-base); EAX += EBX     (final delta)
//	esp += EAX
func (c *compiler) emitBr(cond ir.Value, then, els string) error {
	if err := c.loadVal(cond, live()); err != nil {
		return err
	}
	if err := c.op(gadget.KindNegReg, x86.EAX, anyReg, live(x86.EAX)); err != nil {
		return err
	}
	diffIdx, err := c.popIdx(x86.EBX, 0, live(x86.EAX))
	if err != nil {
		return err
	}
	if err := c.op(gadget.KindAndReg, x86.EAX, x86.EBX, live(x86.EAX, x86.EBX)); err != nil {
		return err
	}
	elseIdx, err := c.popIdx(x86.EBX, 0, live(x86.EAX))
	if err != nil {
		return err
	}
	if err := c.op(gadget.KindAddReg, x86.EAX, x86.EBX, live(x86.EAX, x86.EBX)); err != nil {
		return err
	}
	if err := c.op(gadget.KindAddEsp, anyReg, x86.EAX, live(x86.EAX)); err != nil {
		return err
	}
	addEspIdx := len(c.words) - 1
	c.fixups = append(c.fixups,
		fixup{wordIdx: diffIdx, kind: fixDiff, labelA: then, labelB: els},
		fixup{wordIdx: elseIdx, kind: fixDelta, labelA: els, base: addEspIdx + 1},
	)
	return nil
}

// emitExit appends the §V-A epilogue: a pop-esp gadget whose data word
// (patched by the loader before every call) points back into the
// caller's stack frame, where the resume address waits.
func (c *compiler) emitExit() error {
	c.labels[exitLabel] = len(c.words)
	if c.pendingSkip != 0 {
		return fmt.Errorf("internal: pending stack skip at chain exit")
	}
	g, err := c.pickChecked(Spec{Kind: gadget.KindPopEsp, Dst: anyReg, Src: anyReg}, live())
	if err != nil {
		return err
	}
	c.words = append(c.words, Word{
		Kind: WGadget, Gadget: g,
		Spec: Spec{Kind: gadget.KindPopEsp, Dst: anyReg, Src: anyReg},
	})
	c.exitPtrIdx = len(c.words)
	c.words = append(c.words, Word{Kind: WExitPtr, Value: junkWord})
	return nil
}

func (c *compiler) resolve() error {
	idxOf := func(label string) (int, error) {
		i, ok := c.labels[label]
		if !ok {
			return 0, fmt.Errorf("undefined chain label %q", label)
		}
		return i, nil
	}
	for _, f := range c.fixups {
		a, err := idxOf(f.labelA)
		if err != nil {
			return err
		}
		var v int
		switch f.kind {
		case fixDiff:
			b, err := idxOf(f.labelB)
			if err != nil {
				return err
			}
			v = 4 * (a - b)
		case fixDelta:
			v = 4 * (a - f.base)
		}
		c.words[f.wordIdx].Value = uint32(int32(v))
	}
	return nil
}
