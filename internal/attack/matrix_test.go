package attack

import (
	"context"
	"testing"

	"parallax/internal/core"
	"parallax/internal/emu"
	"parallax/internal/ir"
)

// protectedTarget builds a small program protected by Parallax: "mix"
// is both verification code and contains gadgets the chain uses.
func protectedTarget(t *testing.T) *core.Protected {
	t.Helper()
	mb := ir.NewModule("target")

	fb := mb.Func("mix", 2)
	a := fb.Param(0)
	b := fb.Param(1)
	h := fb.Xor(a, fb.Const(0x5D17))
	i := fb.Const(0)
	fb.Jmp("head")
	fb.Block("head")
	lim := fb.Const(6)
	c := fb.Cmp(ir.ULt, i, lim)
	fb.Br(c, "body", "done")
	fb.Block("body")
	k := fb.Const(29)
	fb.Assign(h, fb.Add(fb.Mul(h, k), b))
	five := fb.Const(5)
	fb.Assign(h, fb.Xor(h, fb.Shr(h, five)))
	one := fb.Const(1)
	fb.Assign(i, fb.Add(i, one))
	fb.Jmp("head")
	fb.Block("done")
	mask := fb.Const(0x3FFFFFFF)
	fb.Ret(fb.And(h, mask))

	fb = mb.Func("main", 0)
	acc := fb.Const(0)
	j := fb.Const(0)
	fb.Jmp("head")
	fb.Block("head")
	lim2 := fb.Const(5)
	c2 := fb.Cmp(ir.ULt, j, lim2)
	fb.Br(c2, "body", "done")
	fb.Block("body")
	fb.Assign(acc, fb.Call("mix", acc, j))
	one2 := fb.Const(1)
	fb.Assign(j, fb.Add(j, one2))
	fb.Jmp("head")
	fb.Block("done")
	m127 := fb.Const(127)
	fb.Ret(fb.And(acc, m127))
	mb.SetEntry("main")
	m := mb.MustBuild()

	p, err := core.Protect(m, core.Options{VerifyFuncs: []string{"mix"}})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestParallaxSurvivesWurster is the headline security claim: the
// split-cache attack that defeats checksumming does not help against
// Parallax, because the verification chain *executes* its gadgets —
// through the very fetch path the attack controls.
func TestParallaxSurvivesWurster(t *testing.T) {
	p := protectedTarget(t)
	clean := Run(context.Background(), p.Image, nil)
	if clean.Err != nil {
		t.Fatal(clean.Err)
	}

	g := p.Chains["mix"].Gadgets()[0]
	cpu, err := emu.LoadImage(p.Image)
	if err != nil {
		t.Fatal(err)
	}
	cpu.OS = emu.NewOS(nil)
	// Overlay the gadget's first byte: data reads (a hypothetical
	// checksummer) would still see the pristine byte, but the chain's
	// ret transfers fetch straight into the overlay.
	Wurster(cpu, g.Addr, []byte{0xCC})

	// Data view untouched?
	b, err := cpu.Mem.Read(g.Addr, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := p.Image.ReadAt(g.Addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != orig[0] {
		t.Fatal("data view changed; overlay is misconfigured")
	}

	runErr := cpu.Run()
	if runErr == nil && cpu.Status == clean.Status {
		t.Fatal("Parallax-protected binary ran correctly under the Wurster attack")
	}
	t.Logf("Wurster-attacked run: status=%d err=%v (clean status=%d)",
		cpu.Status, runErr, clean.Status)
}

// TestRuntimePatchDetected: a debugger-style runtime patch of a chain
// gadget derails the program.
func TestRuntimePatchDetected(t *testing.T) {
	p := protectedTarget(t)
	clean := Run(context.Background(), p.Image, nil)

	g := p.Chains["mix"].Gadgets()[1]
	cpu, err := emu.LoadImage(p.Image)
	if err != nil {
		t.Fatal(err)
	}
	cpu.OS = emu.NewOS(nil)
	if err := RuntimePatch(cpu, g.Addr, []byte{0xCC}); err != nil {
		t.Fatal(err)
	}
	runErr := cpu.Run()
	if runErr == nil && cpu.Status == clean.Status {
		t.Fatal("runtime patch went unnoticed")
	}
}

// TestCodeRestoreWindow demonstrates the §VI-A analysis: a restore
// attack succeeds only if the modification never overlaps a
// verification run — repeated verification shrinks that window.
func TestCodeRestoreWindow(t *testing.T) {
	p := protectedTarget(t)
	clean := Run(context.Background(), p.Image, nil)
	mix := p.Image.MustSymbol("mix")
	g := p.Chains["mix"].Gadgets()[0]

	t.Run("patch during verification window is caught", func(t *testing.T) {
		cpu, err := emu.LoadImage(p.Image)
		if err != nil {
			t.Fatal(err)
		}
		cpu.OS = emu.NewOS(nil)
		// Stop right as the second chain call begins, patch, continue.
		if _, err := RunUntil(cpu, mix.Addr, 2, 10_000_000); err != nil {
			t.Fatal(err)
		}
		r, err := NewRestorer(cpu, g.Addr, []byte{0xCC})
		if err != nil {
			t.Fatal(err)
		}
		_ = r // never restored: the chain runs over the patched gadget
		runErr := cpu.Run()
		if runErr == nil && cpu.Status == clean.Status {
			t.Fatal("patch alive during a chain run went unnoticed")
		}
	})

	t.Run("patch-and-restore between verifications slips through", func(t *testing.T) {
		cpu, err := emu.LoadImage(p.Image)
		if err != nil {
			t.Fatal(err)
		}
		cpu.OS = emu.NewOS(nil)
		if _, err := RunUntil(cpu, mix.Addr, 2, 10_000_000); err != nil {
			t.Fatal(err)
		}
		// The adversary patches a *different* location than the chain's
		// gadgets would notice... here: patch the gadget but restore
		// before stepping further — zero instructions execute under the
		// patch.
		r, err := NewRestorer(cpu, g.Addr, []byte{0xCC})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Restore(); err != nil {
			t.Fatal(err)
		}
		if err := cpu.Run(); err != nil {
			t.Fatal(err)
		}
		if cpu.Status != clean.Status {
			t.Fatalf("restored run diverged: %d vs %d", cpu.Status, clean.Status)
		}
	})
}

// TestForceJumpAndInvertCond exercise the patch helpers on a raw
// binary.
func TestForceJumpAndInvertCond(t *testing.T) {
	p := protectedTarget(t)
	// Find a conditional jump in main.
	main := p.Image.MustSymbol("main")
	raw, err := p.Image.ReadAt(main.Addr, main.Size)
	if err != nil {
		t.Fatal(err)
	}
	var jccAddr uint32
	for off := 0; off+6 < len(raw); off++ {
		if raw[off] == 0x0F && raw[off+1] >= 0x80 && raw[off+1] <= 0x8F {
			jccAddr = main.Addr + uint32(off)
			break
		}
	}
	if jccAddr == 0 {
		t.Fatal("no conditional jump found in main")
	}

	forced := p.Image.Clone()
	if err := ForceJump(forced, jccAddr); err != nil {
		t.Fatal(err)
	}
	inverted := p.Image.Clone()
	if err := InvertCond(inverted, jccAddr); err != nil {
		t.Fatal(err)
	}
	clean := Run(context.Background(), p.Image, nil)
	// Both patches change main's control flow; whatever happens, it
	// must not be the clean outcome (main is not chain-protected here,
	// so we only check the helpers actually modify behaviour).
	if Run(context.Background(), forced, nil).Same(clean) && Run(context.Background(), inverted, nil).Same(clean) {
		t.Error("neither patch changed program behaviour")
	}
}
