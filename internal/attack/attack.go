// Package attack implements the adversary's toolbox from the paper's
// threat model (§II-B) and attack-resistance analysis (§VI): static
// code patching (software cracking), runtime patching (debuggers,
// breakpoints), code-restore attacks, and the Wurster et al. split
// instruction-/data-cache attack that defeats checksumming.
//
// Everything here operates on images and emulated CPUs; tests and
// examples use it to demonstrate which protections survive which
// attacks.
package attack

import (
	"context"
	"errors"
	"fmt"

	"parallax/internal/chaos"
	"parallax/internal/emu"
	"parallax/internal/emu/tb"
	"parallax/internal/image"
	"parallax/internal/obs"
	"parallax/internal/x86"
)

// NopOut statically overwrites [addr, addr+n) with NOPs in the image —
// the classic Listing 2 attack that disables a jump or call.
func NopOut(img *image.Image, addr, n uint32) error {
	b := make([]byte, n)
	for i := range b {
		b[i] = 0x90
	}
	return img.WriteAt(addr, b)
}

// PatchBytes statically overwrites image bytes (software cracking).
func PatchBytes(img *image.Image, addr uint32, b []byte) error {
	return img.WriteAt(addr, b)
}

// ForceJump rewrites the conditional jump at addr into an unconditional
// one — the §IV-A attack (4): "rewriting the jns instruction to an
// unconditional jmp". Handles both rel8 (2-byte) and 0F 8x rel32
// (6-byte) forms.
func ForceJump(img *image.Image, addr uint32) error {
	text := img.Text()
	if text == nil || !text.Contains(addr) {
		return fmt.Errorf("attack: %#x not in text", addr)
	}
	raw, err := img.ReadAt(addr, 8)
	if err != nil {
		return err
	}
	in, err := x86.Decode(raw, addr)
	if err != nil {
		return err
	}
	if in.Op != x86.JCC {
		return fmt.Errorf("attack: %v at %#x is not a conditional jump", in, addr)
	}
	switch in.Len {
	case 2: // 7x rel8 → EB rel8
		return img.WriteAt(addr, []byte{0xEB, raw[1]})
	case 6: // 0F 8x rel32 → E9 rel32; NOP the spare byte
		out := []byte{0xE9, raw[2], raw[3], raw[4], raw[5], 0x90}
		// Relative displacement is measured from instruction end: the
		// E9 form is one byte shorter, so the displacement grows by 1.
		d := uint32(out[1]) | uint32(out[2])<<8 | uint32(out[3])<<16 | uint32(out[4])<<24
		d++
		out[1], out[2], out[3], out[4] = byte(d), byte(d>>8), byte(d>>16), byte(d>>24)
		return img.WriteAt(addr, out)
	default:
		return fmt.Errorf("attack: unexpected jcc length %d", in.Len)
	}
}

// InvertCond flips the condition of the jump at addr (je→jne, ...).
func InvertCond(img *image.Image, addr uint32) error {
	raw, err := img.ReadAt(addr, 2)
	if err != nil {
		return err
	}
	switch {
	case raw[0] >= 0x70 && raw[0] <= 0x7F:
		return img.WriteAt(addr, []byte{raw[0] ^ 1})
	case raw[0] == 0x0F && raw[1] >= 0x80 && raw[1] <= 0x8F:
		return img.WriteAt(addr+1, []byte{raw[1] ^ 1})
	}
	return fmt.Errorf("attack: no conditional jump at %#x", addr)
}

// RuntimePatch pokes bytes into a running CPU's memory, bypassing
// permissions — a debugger writing a software breakpoint or hook.
func RuntimePatch(c *emu.CPU, addr uint32, b []byte) error {
	if err := c.Mem.Poke(addr, b); err != nil {
		return err
	}
	c.InvalidateCode()
	return nil
}

// Restorer implements the §VI-A code-restore attack: patch code, let it
// execute, then put the original bytes back hoping the verification
// code never sees the modification.
type Restorer struct {
	cpu   *emu.CPU
	addr  uint32
	orig  []byte
	armed bool
}

// NewRestorer patches addr with b and remembers the original bytes.
func NewRestorer(c *emu.CPU, addr uint32, b []byte) (*Restorer, error) {
	orig, err := c.Mem.Peek(addr, uint32(len(b)))
	if err != nil {
		return nil, err
	}
	if err := RuntimePatch(c, addr, b); err != nil {
		return nil, err
	}
	return &Restorer{cpu: c, addr: addr, orig: orig, armed: true}, nil
}

// Restore puts the original bytes back.
func (r *Restorer) Restore() error {
	if !r.armed {
		return nil
	}
	r.armed = false
	return RuntimePatch(r.cpu, r.addr, r.orig)
}

// Wurster arms the split-cache attack on a CPU: instruction fetches in
// [addr, addr+len(b)) execute b, while data reads (and therefore any
// checksumming code) continue to see the original bytes. This is the
// user-space effect of the kernel patch in Wurster et al. [36].
func Wurster(c *emu.CPU, addr uint32, b []byte) {
	c.SetOverlay(addr, b)
}

// RunResult summarizes an attacked run for comparison against a clean
// one.
type RunResult struct {
	Status int32
	Stdout string
	Err    error
	Icount uint64
	// EIP is the final program counter — for faulting runs, the address
	// of the instruction that died, which campaign analysis attributes
	// to chain gadgets vs. ordinary code.
	EIP uint32
}

// RunConfig tunes Run's environment.
type RunConfig struct {
	Stdin []byte
	// DebuggerAttached makes ptrace(TRACEME) fail, as under a real
	// debugger.
	DebuggerAttached bool
	// MaxInst bounds the run (0 = 50M).
	MaxInst uint64
	// StackSize / MemBudget configure the emulator loader (0 = defaults).
	StackSize uint32
	MemBudget uint64
	// CheckStride is the cancellation-poll stride in instructions
	// (0 = emulator default).
	CheckStride uint64
	// Obs, when non-nil, accumulates run metrics into the shared
	// registry: emu.runs, emu.insts, emu.watchdog_trips,
	// emu.inst_limit_trips, emu.load_failures and emu.faults.
	Obs *obs.Registry
	// Trace attaches an execution trace sink to the run's CPU;
	// TraceEvery is the instruction-event sampling stride (see
	// emu.CPU.TraceEvery).
	Trace      obs.TraceSink
	TraceEvery uint64
	// CPU, when non-nil, reuses an already-loaded emulator instead of
	// loading the image — the snapshot/restore campaign path. The
	// caller owns memory and register state (emu.CPU.Restore rewinds
	// between runs); RunWith still installs a fresh kernel and applies
	// the budgets above on every call. The image argument is ignored.
	CPU *emu.CPU
	// Engine selects the execution backend: "" or "interp" is the
	// interpreter, "tb" the translation-block engine (internal/emu/tb).
	// Any other value fails the run.
	Engine string
	// Catalog, when non-nil and Engine is "tb", attaches the shared
	// translation catalog to the run's engine: translations of
	// identical code bytes are adopted from (and published for) every
	// other run sharing the catalog. Ignored when Exec drives the run —
	// a persistent engine carries its own catalog.
	Catalog *tb.Catalog
	// Exec, when non-nil, drives the run instead of the backend Engine
	// selects: RunWith calls Exec.RunContext against the (possibly
	// reused) CPU. The campaign path passes a persistent tb.Engine
	// here so translations stay warm across snapshot/restore mutants.
	Exec Runner
	// Chaos, when non-nil, arms fault injection on a freshly loaded
	// emulator (segment-map failures, forced budget trips) and wraps
	// the run's stdin with a PointStdinRead short-read fault. A reused
	// CPU keeps whatever injector its loader armed; the stdin wrap
	// applies to every run.
	Chaos *chaos.Injector
	// ChaosKey keys this run's injection decisions for per-run points
	// (today: the stdin reader). The campaign passes the mutant index
	// so the faulted cell set is scheduling-independent.
	ChaosKey uint64
}

// Runner is an execution backend driving an already-configured CPU —
// satisfied by emu.CPU (the interpreter) and tb.Engine.
type Runner interface {
	RunContext(ctx context.Context) error
}

// RunWith executes an image under a configured kernel. The context is a
// hard watchdog: when it expires or is cancelled, the run stops within
// one poll stride and the result carries an emu.DeadlineError. Load and
// run failures are reported in the result, never panicked, so attacked
// or corrupted images can be swept mechanically.
func RunWith(ctx context.Context, img *image.Image, cfg RunConfig) RunResult {
	cpu := cfg.CPU
	if cpu == nil {
		loaded, err := emu.LoadImageWith(img, emu.LoadConfig{
			StackSize: cfg.StackSize,
			MemBudget: cfg.MemBudget,
			Chaos:     cfg.Chaos,
		})
		if err != nil {
			cfg.Obs.Counter("emu.load_failures").Inc()
			return RunResult{Err: err}
		}
		cpu = loaded
	}
	cpu.MaxInst = cfg.MaxInst
	if cpu.MaxInst == 0 {
		// Attacked binaries frequently spin; bound the run so a hang
		// reads as a malfunction rather than stalling the caller.
		cpu.MaxInst = 50_000_000
	}
	if cfg.CheckStride != 0 {
		cpu.CheckStride = cfg.CheckStride
	}
	cpu.Trace = cfg.Trace
	cpu.TraceEvery = cfg.TraceEvery
	os := emu.NewOS(cfg.Stdin)
	os.Stdin = cfg.Chaos.ReaderN(chaos.PointStdinRead, cfg.ChaosKey, os.Stdin, int64(len(cfg.Stdin)))
	os.DebuggerAttached = cfg.DebuggerAttached
	cpu.OS = os
	run := cpu.RunContext
	switch {
	case cfg.Exec != nil:
		run = cfg.Exec.RunContext
	case cfg.Engine == "tb":
		eng := tb.NewWithCatalog(cpu, cfg.Obs, cfg.Catalog)
		defer eng.Close()
		run = eng.RunContext
	case cfg.Engine != "" && cfg.Engine != "interp":
		cfg.Obs.Counter("emu.load_failures").Inc()
		return RunResult{Err: fmt.Errorf("attack: unknown engine %q (want interp or tb)", cfg.Engine)}
	}
	err := run(ctx)
	recordRun(cfg.Obs, cpu, err)
	return RunResult{
		Status: cpu.Status,
		Stdout: os.Stdout.String(),
		Err:    err,
		Icount: cpu.Icount,
		EIP:    cpu.EIP,
	}
}

// recordRun accumulates one finished emulator run into the registry.
// The per-run cost is a handful of map lookups; nothing here runs per
// instruction.
func recordRun(reg *obs.Registry, cpu *emu.CPU, err error) {
	if reg == nil {
		return
	}
	reg.Counter("emu.runs").Inc()
	reg.Counter("emu.insts").Add(cpu.Icount)
	var de *emu.DeadlineError
	switch {
	case err == nil:
	case errors.As(err, &de):
		reg.Counter("emu.watchdog_trips").Inc()
	case errors.Is(err, emu.ErrInstLimit):
		reg.Counter("emu.inst_limit_trips").Inc()
	default:
		reg.Counter("emu.faults").Inc()
	}
}

// Run executes an image under a fresh kernel and reports the outcome;
// never failing, so attacked runs (which may fault) can be compared
// uniformly.
func Run(ctx context.Context, img *image.Image, stdin []byte) RunResult {
	return RunWith(ctx, img, RunConfig{Stdin: stdin})
}

// Same reports whether two run results are observationally identical.
func (r RunResult) Same(o RunResult) bool {
	return r.Status == o.Status && r.Stdout == o.Stdout &&
		(r.Err == nil) == (o.Err == nil)
}

// RunUntil steps the CPU until EIP reaches addr for the n-th time (or
// the program exits). It returns the number of times addr was hit.
func RunUntil(c *emu.CPU, addr uint32, n int, maxInst uint64) (int, error) {
	hits := 0
	for i := uint64(0); i < maxInst && !c.Exited; i++ {
		if c.EIP == addr {
			hits++
			if hits >= n {
				return hits, nil
			}
		}
		if err := c.Step(); err != nil {
			return hits, err
		}
	}
	return hits, nil
}
