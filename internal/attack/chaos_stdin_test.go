package attack

import (
	"context"
	"testing"

	"parallax/internal/chaos"
	"parallax/internal/codegen"
	"parallax/internal/image"
	"parallax/internal/ir"
)

// stdinEcho builds a program whose observable status depends on its
// workload bytes: exit(buf[0] + buf[1]) after read(0, buf, 4).
func stdinEcho(t *testing.T) *image.Image {
	t.Helper()
	mb := ir.NewModule("stdinecho")
	mb.Global("buf", make([]byte, 4))
	fb := mb.Func("main", 0)
	fb.Syscall(3, fb.Const(0), fb.Addr("buf", 0), fb.Const(4))
	b0 := fb.Load8(fb.Addr("buf", 0))
	b1 := fb.Load8(fb.Addr("buf", 1))
	fb.Syscall(1, fb.Add(b0, b1))
	fb.Ret(fb.Const(0))
	mb.SetEntry("main")
	m := mb.MustBuild()
	obj, err := codegen.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	img, err := image.Link(obj, image.Layout{})
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// TestChaosStdinInjection pins the workload-reader fault point end to
// end: a fired PointStdinRead decision aborts the run with a typed
// injected error (never a silently garbled workload), non-firing keys
// run byte-identically to a chaos-free run, and decisions are pure in
// (seed, key).
func TestChaosStdinInjection(t *testing.T) {
	img := stdinEcho(t)
	ctx := context.Background()
	stdin := []byte{3, 7, 0, 0}

	clean := RunWith(ctx, img, RunConfig{Stdin: stdin})
	if clean.Err != nil || clean.Status != 10 {
		t.Fatalf("clean run: status %d err %v, want 10, nil", clean.Status, clean.Err)
	}

	inj := chaos.New(chaos.Plan{
		Seed:   42,
		Faults: []chaos.Fault{{Point: chaos.PointStdinRead, Prob: 0.5}},
	}, nil)

	fired, spared := 0, 0
	for key := uint64(0); key < 64; key++ {
		res := RunWith(ctx, img, RunConfig{Stdin: stdin, Chaos: inj, ChaosKey: key})
		if inj.Should(chaos.PointStdinRead, key) {
			// decide() is pure in (seed, point, key) with no budget cap,
			// so re-asking after the run sees the same answer.
			fired++
			if !chaos.IsInjected(res.Err) {
				t.Fatalf("key %d fired but run err = %v (status %d); want injected abort", key, res.Err, res.Status)
			}
		} else {
			spared++
			if res.Err != nil || res.Status != clean.Status || res.Stdout != clean.Stdout || res.Icount != clean.Icount {
				t.Fatalf("key %d did not fire but run differs from chaos-free: %+v vs %+v", key, res, clean)
			}
		}
	}
	if fired == 0 || spared == 0 {
		t.Fatalf("want both fired and spared keys in 64 trials, got %d/%d", fired, spared)
	}

	// Same (seed, key) → same outcome, independent of the runs above.
	inj2 := chaos.New(chaos.Plan{
		Seed:   42,
		Faults: []chaos.Fault{{Point: chaos.PointStdinRead, Prob: 0.5}},
	}, nil)
	for key := uint64(0); key < 64; key++ {
		if inj2.Should(chaos.PointStdinRead, key) != inj.Should(chaos.PointStdinRead, key) {
			t.Fatalf("key %d: decision not reproducible across injectors", key)
		}
	}
}
