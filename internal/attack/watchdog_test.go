package attack

import (
	"context"
	"errors"
	"testing"
	"time"

	"parallax/internal/emu"
	"parallax/internal/image"
)

// TestRunawayMutantKilledWithinBudget: a tampered image that spins
// forever must be killed by the context watchdog within the deadline
// budget, and the result must identify the kill as a deadline, not a
// crash.
func TestRunawayMutantKilledWithinBudget(t *testing.T) {
	runaway := &image.Image{
		Entry: 0x1000,
		Sections: []*image.Section{{
			Name: ".text", Addr: 0x1000, Data: []byte{0xEB, 0xFE}, // jmp self
			Size: 2, Perm: image.PermR | image.PermX,
		}},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()

	start := time.Now()
	res := RunWith(ctx, runaway, RunConfig{MaxInst: 1 << 62, CheckStride: 1024})
	elapsed := time.Since(start)

	if elapsed > 5*time.Second {
		t.Fatalf("runaway mutant survived %v past a 50ms budget", elapsed)
	}
	var de *emu.DeadlineError
	if !errors.As(res.Err, &de) {
		t.Fatalf("want DeadlineError, got %v", res.Err)
	}
	if !errors.Is(res.Err, context.DeadlineExceeded) {
		t.Fatalf("result must wrap context.DeadlineExceeded: %v", res.Err)
	}
	if res.Icount == 0 {
		t.Error("watchdog fired before the mutant executed at all")
	}
}

// TestRunReportsFaultEIP: the result's EIP pinpoints the faulting
// instruction so campaign analysis can attribute the fault to a region.
func TestRunReportsFaultEIP(t *testing.T) {
	// mov eax,[0] — faults immediately at the entry point.
	fault := &image.Image{
		Entry: 0x1000,
		Sections: []*image.Section{{
			Name: ".text", Addr: 0x1000, Data: []byte{0xA1, 0, 0, 0, 0},
			Size: 5, Perm: image.PermR | image.PermX,
		}},
	}
	res := Run(context.Background(), fault, nil)
	if res.Err == nil {
		t.Fatal("expected a fault")
	}
	if res.EIP != 0x1000 {
		t.Fatalf("fault EIP = %#x, want 0x1000", res.EIP)
	}
}
