package farm

import (
	"context"
	"errors"
	"sync"
	"time"

	"parallax/internal/obs"
)

// ErrCircuitOpen is wrapped by jobs rejected while the farm's circuit
// breaker is open.
var ErrCircuitOpen = errors.New("farm: circuit open")

// RetryPolicy configures per-job retry with capped, jittered backoff.
// The zero value disables retries.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per job, including the
	// first; values below 2 mean a single attempt.
	MaxAttempts int
	// BaseDelay is the backoff floor before the second attempt. Zero
	// means 10ms when retries are enabled.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Zero means 1s.
	MaxDelay time.Duration
	// JitterSeed seeds the deterministic decorrelated jitter. Each job
	// derives its own delay stream from the seed and its name, so jobs
	// that fail together (a breaker reopening, a shared dependency
	// recovering) retry spread across [BaseDelay, MaxDelay] instead of
	// hammering back on the same tick. The same seed reproduces the
	// same delays; zero is a valid seed.
	JitterSeed uint64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts > 1 {
		if p.BaseDelay <= 0 {
			p.BaseDelay = 10 * time.Millisecond
		}
		if p.MaxDelay <= 0 {
			p.MaxDelay = time.Second
		}
	}
	return p
}

// backoff returns the jitter-free delay curve before attempt n (the
// first retry is n=2): BaseDelay doubled per retry, capped at MaxDelay.
// Production retries draw from stream instead — this is the reference
// envelope the jittered delays are judged against in tests.
func (p RetryPolicy) backoff(n int) time.Duration {
	d := p.BaseDelay
	for i := 2; i < n; i++ {
		d *= 2
		if d >= p.MaxDelay {
			return p.MaxDelay
		}
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	return d
}

// backoffStream is one job's retry-delay sequence with decorrelated
// jitter: each delay is drawn uniformly from [BaseDelay, 3×previous]
// and capped at MaxDelay. Unlike "exponential + random fraction", the
// decorrelated form forgets the shared schedule entirely after the
// first draw, so jobs that failed on the same tick do not converge
// back onto one.
type backoffStream struct {
	p    RetryPolicy
	rng  uint64
	prev time.Duration
}

// stream returns the delay stream for one job. Streams are
// deterministic — the same policy, seed and name yield the same
// delays — while different names decorrelate from each other.
func (p RetryPolicy) stream(name string) *backoffStream {
	// FNV-1a fold of the name into the seed; splitmix64 in next() does
	// the real mixing.
	h := p.JitterSeed ^ 0xcbf29ce484222325
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 0x100000001b3
	}
	return &backoffStream{p: p, rng: h, prev: p.BaseDelay}
}

// next returns the delay before the stream's next retry.
func (s *backoffStream) next() time.Duration {
	s.rng += 0x9e3779b97f4a7c15 // splitmix64
	z := s.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31

	lo, hi := s.p.BaseDelay, 3*s.prev
	if hi <= lo {
		hi = lo + 1
	}
	d := lo + time.Duration(z%uint64(hi-lo))
	if d > s.p.MaxDelay {
		d = s.p.MaxDelay
	}
	s.prev = d
	return d
}

// BreakerConfig configures the farm's consecutive-failure circuit
// breaker. The zero value disables it.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that opens the circuit;
	// 0 disables the breaker.
	Threshold int
	// Cooldown is how long the circuit stays open. Zero means 1s.
	Cooldown time.Duration
}

// breaker tracks consecutive job failures farm-wide. When Threshold
// failures occur with no intervening success the circuit opens for
// Cooldown: jobs fail fast with ErrCircuitOpen instead of burning
// workers on a persistently broken pipeline stage. After the cooldown
// one job is let through; its outcome re-trips or closes the circuit
// (the consecutive count is only reset by a success).
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	// Registry mirrors (nil-safe handles; nil when the farm has no
	// obs.Registry): trip count and a 0/1 open-state gauge.
	tripCtr *obs.Counter
	openG   *obs.Gauge

	mu        sync.Mutex
	consec    int
	openUntil time.Time
	trips     uint64
}

func newBreaker(cfg BreakerConfig, now func() time.Time) *breaker {
	if cfg.Threshold <= 0 {
		return nil
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = time.Second
	}
	return &breaker{threshold: cfg.Threshold, cooldown: cfg.Cooldown, now: now}
}

// allow reports whether a job may run now.
func (b *breaker) allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return !b.now().Before(b.openUntil)
}

// recordFailure counts a job failure and trips the circuit at the
// threshold.
func (b *breaker) recordFailure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consec++
	if b.consec >= b.threshold {
		b.openUntil = b.now().Add(b.cooldown)
		b.trips++
		b.tripCtr.Inc()
		b.openG.Set(1)
	}
}

// recordSuccess closes the circuit and resets the failure streak.
func (b *breaker) recordSuccess() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consec = 0
	b.openUntil = time.Time{}
	b.openG.Set(0)
}

func (b *breaker) tripCount() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// realSleep is the production sleep seam: context-aware so a cancelled
// job never sits out a backoff.
func realSleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
