package farm

import (
	"fmt"
	"sync/atomic"
	"time"
)

// counters is the farm's live metric set. All fields are updated with
// atomics so workers never contend on a lock for bookkeeping.
type counters struct {
	submitted      uint64
	completed      uint64
	failed         uint64
	cancelled      uint64
	panics         uint64
	retries        uint64
	breakerRejects uint64

	scanHits   uint64
	scanMisses uint64
	hintHits   uint64
	hintMisses uint64

	queueDepth int64

	queueNanos   int64
	scanNanos    int64
	protectNanos int64
}

// Stats is a point-in-time snapshot of a farm's counters.
type Stats struct {
	// Job lifecycle counts.
	JobsSubmitted uint64
	JobsCompleted uint64
	JobsFailed    uint64
	JobsCancelled uint64
	// Panics counts pipeline panics converted to job errors (a subset
	// of JobsFailed).
	Panics uint64
	// Retries counts re-runs of failed attempts under the retry policy.
	Retries uint64
	// BreakerTrips counts circuit-breaker opens; BreakerRejects counts
	// jobs failed fast while the circuit was open.
	BreakerTrips   uint64
	BreakerRejects uint64

	// ScanHits/ScanMisses count content-addressed gadget-scan cache
	// lookups; a miss is a scan actually run.
	ScanHits   uint64
	ScanMisses uint64
	// HintHits/HintMisses count fixpoint layout-hint cache lookups; a
	// hit lets core.Protect converge in a single pass.
	HintHits   uint64
	HintMisses uint64

	// QueueDepth is the number of jobs accepted but not yet running.
	QueueDepth int

	// Per-stage time, summed across workers.
	QueueWait   time.Duration // submit → worker pickup
	ScanTime    time.Duration // inside gadget.Scan (cache misses only)
	ProtectTime time.Duration // inside core.Protect, scans included
}

// ScanHitRate returns the scan-cache hit fraction in [0,1], or 0 when
// no lookups happened.
func (s Stats) ScanHitRate() float64 {
	total := s.ScanHits + s.ScanMisses
	if total == 0 {
		return 0
	}
	return float64(s.ScanHits) / float64(total)
}

// String renders the snapshot as a compact single-line summary.
func (s Stats) String() string {
	return fmt.Sprintf(
		"jobs: %d submitted, %d completed, %d failed, %d cancelled (%d panics, "+
			"%d retries, %d breaker trips/%d rejects), queue %d | "+
			"scan cache: %d hits / %d misses (%.1f%%), hints: %d/%d | "+
			"time: queue %v, scan %v, protect %v",
		s.JobsSubmitted, s.JobsCompleted, s.JobsFailed, s.JobsCancelled, s.Panics,
		s.Retries, s.BreakerTrips, s.BreakerRejects,
		s.QueueDepth,
		s.ScanHits, s.ScanMisses, 100*s.ScanHitRate(),
		s.HintHits, s.HintHits+s.HintMisses,
		s.QueueWait.Round(time.Microsecond), s.ScanTime.Round(time.Microsecond),
		s.ProtectTime.Round(time.Microsecond))
}

// Delta returns s minus earlier, for per-round reporting on a
// long-lived farm. QueueDepth is taken from s as-is.
func (s Stats) Delta(earlier Stats) Stats {
	return Stats{
		JobsSubmitted:  s.JobsSubmitted - earlier.JobsSubmitted,
		JobsCompleted:  s.JobsCompleted - earlier.JobsCompleted,
		JobsFailed:     s.JobsFailed - earlier.JobsFailed,
		JobsCancelled:  s.JobsCancelled - earlier.JobsCancelled,
		Panics:         s.Panics - earlier.Panics,
		Retries:        s.Retries - earlier.Retries,
		BreakerTrips:   s.BreakerTrips - earlier.BreakerTrips,
		BreakerRejects: s.BreakerRejects - earlier.BreakerRejects,
		ScanHits:       s.ScanHits - earlier.ScanHits,
		ScanMisses:     s.ScanMisses - earlier.ScanMisses,
		HintHits:       s.HintHits - earlier.HintHits,
		HintMisses:     s.HintMisses - earlier.HintMisses,
		QueueDepth:     s.QueueDepth,
		QueueWait:      s.QueueWait - earlier.QueueWait,
		ScanTime:       s.ScanTime - earlier.ScanTime,
		ProtectTime:    s.ProtectTime - earlier.ProtectTime,
	}
}

func (c *counters) snapshot() Stats {
	return Stats{
		JobsSubmitted:  atomic.LoadUint64(&c.submitted),
		JobsCompleted:  atomic.LoadUint64(&c.completed),
		JobsFailed:     atomic.LoadUint64(&c.failed),
		JobsCancelled:  atomic.LoadUint64(&c.cancelled),
		Panics:         atomic.LoadUint64(&c.panics),
		Retries:        atomic.LoadUint64(&c.retries),
		BreakerRejects: atomic.LoadUint64(&c.breakerRejects),
		ScanHits:       atomic.LoadUint64(&c.scanHits),
		ScanMisses:     atomic.LoadUint64(&c.scanMisses),
		HintHits:       atomic.LoadUint64(&c.hintHits),
		HintMisses:     atomic.LoadUint64(&c.hintMisses),
		QueueDepth:     int(atomic.LoadInt64(&c.queueDepth)),
		QueueWait:      time.Duration(atomic.LoadInt64(&c.queueNanos)),
		ScanTime:       time.Duration(atomic.LoadInt64(&c.scanNanos)),
		ProtectTime:    time.Duration(atomic.LoadInt64(&c.protectNanos)),
	}
}
