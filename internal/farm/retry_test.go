package farm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"parallax/internal/core"
	"parallax/internal/corpus"
	"parallax/internal/ir"
)

// flakyFn fails a job's first n attempts, then succeeds. The sleep seam
// records backoffs instead of sleeping, so the tests are instantaneous
// and deterministic.
type flakySeam struct {
	mu        sync.Mutex
	failFirst map[string]int // per job name: attempts to fail
	calls     map[string]int
	backoffs  []time.Duration
}

func (s *flakySeam) protect(j *Job) (*core.Protected, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls[j.Name]++
	if s.calls[j.Name] <= s.failFirst[j.Name] {
		return nil, fmt.Errorf("farm: job %q: transient failure %d", j.Name, s.calls[j.Name])
	}
	return &core.Protected{}, nil
}

func (s *flakySeam) sleep(ctx context.Context, d time.Duration) error {
	s.mu.Lock()
	s.backoffs = append(s.backoffs, d)
	s.mu.Unlock()
	return ctx.Err()
}

// seamFarm builds a single-worker farm with the deterministic seams
// installed before the worker can pick up any job.
func seamFarm(cfg Config, seam *flakySeam, now func() time.Time) *Farm {
	cfg.Workers = 1
	f := New(cfg)
	f.protectFn = seam.protect
	f.sleep = seam.sleep
	if now != nil {
		f.now = now
	}
	return f
}

// seamModule returns a valid module for seam tests; the protect seam
// never actually compiles it.
func seamModule(t *testing.T) *ir.Module {
	t.Helper()
	p, err := corpus.ByName("wget")
	if err != nil {
		t.Fatal(err)
	}
	return p.Build()
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	seam := &flakySeam{failFirst: map[string]int{"j": 2}, calls: map[string]int{}}
	f := seamFarm(Config{
		Retry: RetryPolicy{MaxAttempts: 4, BaseDelay: 10 * time.Millisecond, MaxDelay: 25 * time.Millisecond},
	}, seam, nil)
	defer f.Close()

	j, err := f.Submit(context.Background(), "j", seamModule(t), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := j.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("job failed despite retries: %v", res.Err)
	}
	if res.Attempts != 3 {
		t.Errorf("Attempts = %d, want 3", res.Attempts)
	}
	// Two failures → two jittered backoffs, each within the policy's
	// [BaseDelay, MaxDelay] envelope.
	if len(seam.backoffs) != 2 {
		t.Fatalf("backoffs = %v, want 2 delays", seam.backoffs)
	}
	for i, d := range seam.backoffs {
		if d < 10*time.Millisecond || d > 25*time.Millisecond {
			t.Errorf("backoff[%d] = %v, want within [10ms, 25ms]", i, d)
		}
	}
	if got := f.Stats().Retries; got != 2 {
		t.Errorf("Stats().Retries = %d, want 2", got)
	}
}

func TestRetryBackoffCap(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 10, BaseDelay: 10 * time.Millisecond, MaxDelay: 35 * time.Millisecond}.withDefaults()
	got := []time.Duration{p.backoff(2), p.backoff(3), p.backoff(4), p.backoff(5), p.backoff(9)}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond,
		35 * time.Millisecond, 35 * time.Millisecond, 35 * time.Millisecond}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("backoff %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestRetryJitterDesync is the thundering-herd regression: jobs whose
// failures are synchronized (a shared breaker reopening) must not all
// retry on the same tick. Every per-job delay stream is deterministic,
// but different jobs draw different delays.
func TestRetryJitterDesync(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond,
		MaxDelay: time.Second, JitterSeed: 42}.withDefaults()

	// 16 concurrent jobs, all failing at t=0: collect each job's first
	// retry delay and demand they spread over multiple distinct ticks.
	firsts := make(map[time.Duration]int)
	for i := 0; i < 16; i++ {
		s := p.stream(fmt.Sprintf("job-%d", i))
		firsts[s.next()]++
	}
	if len(firsts) < 8 {
		t.Errorf("16 synchronized jobs landed on only %d distinct ticks: %v", len(firsts), firsts)
	}
	for d, n := range firsts {
		if d < p.BaseDelay || d > p.MaxDelay {
			t.Errorf("delay %v (×%d) outside [%v, %v]", d, n, p.BaseDelay, p.MaxDelay)
		}
	}

	// Within one job the whole sequence stays inside the envelope.
	s := p.stream("job-0")
	for i := 0; i < 8; i++ {
		if d := s.next(); d < p.BaseDelay || d > p.MaxDelay {
			t.Fatalf("delay %d = %v outside [%v, %v]", i, d, p.BaseDelay, p.MaxDelay)
		}
	}
}

// TestRetryJitterDeterministic: the same seed, policy and job name
// reproduce the same delay sequence — the property the campaign and
// farm tests rely on for reproducible schedules.
func TestRetryJitterDeterministic(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 6, BaseDelay: 5 * time.Millisecond,
		MaxDelay: 500 * time.Millisecond, JitterSeed: 7}.withDefaults()
	a, b := p.stream("job"), p.stream("job")
	for i := 0; i < 6; i++ {
		if da, db := a.next(), b.next(); da != db {
			t.Fatalf("delay %d differs between identical streams: %v vs %v", i, da, db)
		}
	}
	// A different seed shifts the schedule.
	q := p
	q.JitterSeed = 8
	c, d := p.stream("job"), q.stream("job")
	same := true
	for i := 0; i < 6; i++ {
		if c.next() != d.next() {
			same = false
		}
	}
	if same {
		t.Error("changing JitterSeed left the delay sequence unchanged")
	}
}

func TestRetryExhaustionReportsLastError(t *testing.T) {
	seam := &flakySeam{failFirst: map[string]int{"j": 99}, calls: map[string]int{}}
	f := seamFarm(Config{Retry: RetryPolicy{MaxAttempts: 3}}, seam, nil)
	defer f.Close()

	j, err := f.Submit(context.Background(), "j", seamModule(t), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, _ := j.Wait(context.Background())
	if res.Err == nil {
		t.Fatal("want failure after exhausted retries")
	}
	if res.Attempts != 3 {
		t.Errorf("Attempts = %d, want 3", res.Attempts)
	}
	if s := f.Stats(); s.JobsFailed != 1 || s.Retries != 2 {
		t.Errorf("stats = %+v, want 1 failed / 2 retries", s)
	}
}

func TestJobDeadlineExpires(t *testing.T) {
	// The job deadline is enforced via a derived context, so an expired
	// deadline cancels the job while queued — drive it with a real (but
	// tiny) timeout and a protect seam the job never reaches because the
	// worker pool is saturated by a slow job.
	block := make(chan struct{})
	seam := &flakySeam{failFirst: map[string]int{}, calls: map[string]int{}}
	f := seamFarm(Config{JobTimeout: 20 * time.Millisecond}, seam, nil)
	f.protectFn = func(j *Job) (*core.Protected, error) {
		if j.Name == "blocker" {
			<-block
		}
		return &core.Protected{}, nil
	}
	defer f.Close()

	blocker, err := f.Submit(context.Background(), "blocker", seamModule(t), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	starved, err := f.Submit(context.Background(), "starved", seamModule(t), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := starved.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.Err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", res.Err)
	}
	if res.Attempts != 0 {
		t.Errorf("expired-in-queue job ran %d attempts", res.Attempts)
	}
	close(block)
	if res, _ := blocker.Wait(context.Background()); res.Err != nil {
		t.Fatalf("blocker failed: %v", res.Err)
	}
}

func TestCircuitBreakerTripsAndRecovers(t *testing.T) {
	// Virtual clock: the breaker sees only what we tell it.
	var mu sync.Mutex
	clock := time.Unix(1000, 0)
	now := func() time.Time { mu.Lock(); defer mu.Unlock(); return clock }
	advance := func(d time.Duration) { mu.Lock(); clock = clock.Add(d); mu.Unlock() }

	seam := &flakySeam{
		failFirst: map[string]int{"f1": 9, "f2": 9, "f3": 9, "ok": 0, "ok2": 0},
		calls:     map[string]int{},
	}
	f := seamFarm(Config{
		Breaker: BreakerConfig{Threshold: 2, Cooldown: time.Minute},
	}, seam, now)
	defer f.Close()

	run := func(name string) Result {
		j, err := f.Submit(context.Background(), name, seamModule(t), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := j.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	// Two consecutive failures trip the breaker.
	if res := run("f1"); res.Err == nil {
		t.Fatal("f1 should fail")
	}
	if res := run("f2"); res.Err == nil {
		t.Fatal("f2 should fail")
	}
	// Circuit open: the next job is rejected without running.
	res := run("ok")
	if !errors.Is(res.Err, ErrCircuitOpen) {
		t.Fatalf("want ErrCircuitOpen, got %v", res.Err)
	}
	if res.Attempts != 0 {
		t.Errorf("rejected job ran %d attempts", res.Attempts)
	}
	// After the cooldown a probe goes through; its success closes the
	// circuit for good.
	advance(2 * time.Minute)
	if res := run("ok2"); res.Err != nil {
		t.Fatalf("post-cooldown job failed: %v", res.Err)
	}
	if res := run("f3"); res.Err == nil {
		t.Fatal("f3 should fail")
	}
	// One failure after a success: streak reset, circuit still closed.
	if res := run("ok"); !errors.Is(res.Err, nil) && errors.Is(res.Err, ErrCircuitOpen) {
		t.Fatalf("circuit re-opened after a single failure: %v", res.Err)
	}

	s := f.Stats()
	if s.BreakerTrips == 0 || s.BreakerRejects != 1 {
		t.Errorf("stats = trips %d rejects %d, want ≥1 trip and exactly 1 reject",
			s.BreakerTrips, s.BreakerRejects)
	}
}

func TestBreakerReopensOnPostCooldownFailure(t *testing.T) {
	var mu sync.Mutex
	clock := time.Unix(0, 0)
	now := func() time.Time { mu.Lock(); defer mu.Unlock(); return clock }
	advance := func(d time.Duration) { mu.Lock(); clock = clock.Add(d); mu.Unlock() }

	b := newBreaker(BreakerConfig{Threshold: 2, Cooldown: time.Minute}, now)
	b.recordFailure()
	b.recordFailure()
	if b.allow() {
		t.Fatal("breaker should be open")
	}
	advance(61 * time.Second)
	if !b.allow() {
		t.Fatal("breaker should allow a probe after cooldown")
	}
	// The probe fails: the streak is still ≥ threshold, so one failure
	// re-opens the circuit immediately.
	b.recordFailure()
	if b.allow() {
		t.Fatal("breaker should re-open on a failed probe")
	}
	if got := b.tripCount(); got != 2 {
		t.Errorf("tripCount = %d, want 2", got)
	}
}
