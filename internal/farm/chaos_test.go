package farm

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"parallax/internal/chaos"
	"parallax/internal/core"
	"parallax/internal/corpus"
	"parallax/internal/ir"
)

// chaosFixture returns a real protectable module and valid options for
// the chaos tests that exercise the full pipeline (not the seams).
func chaosFixture(t *testing.T) (*ir.Module, core.Options) {
	t.Helper()
	p, err := corpus.ByName("wget")
	if err != nil {
		t.Fatal(err)
	}
	return p.Build(), core.Options{VerifyFuncs: []string{p.VerifyFunc}}
}

// TestChaosWorkerPanicConfined: an injected pipeline-stage panic must
// be confined to its job — reported as a *PanicError carrying the
// chaos marker — while the worker survives to run the next job.
func TestChaosWorkerPanicConfined(t *testing.T) {
	f := New(Config{
		Workers: 1,
		Chaos: chaos.New(chaos.Plan{Seed: 1, Faults: []chaos.Fault{
			{Point: chaos.PointFarmWorkerPanic, Prob: 1, Count: 1}}}, nil),
	})
	defer f.Close()

	m, opts := chaosFixture(t)
	j1, err := f.Submit(context.Background(), "victim", m, opts)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := j1.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var pe *PanicError
	if !errors.As(res1.Err, &pe) {
		t.Fatalf("want PanicError, got %v", res1.Err)
	}
	if !chaos.IsInjected(res1.Err) {
		t.Fatalf("injected panic not marked injected: %v", res1.Err)
	}

	// Count budget exhausted: the worker survived and the next job runs
	// clean on the same goroutine.
	j2, err := f.Submit(context.Background(), "survivor", m, opts)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := j2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Err != nil {
		t.Fatalf("job after confined panic failed: %v", res2.Err)
	}
	if s := f.Stats(); s.Panics != 1 {
		t.Errorf("Stats().Panics = %d, want 1", s.Panics)
	}
}

// TestChaosCacheReadRecompute: a corrupted stage-cache read must be
// bypassed — the scan recomputes from the image bytes, the lookup
// counts as a miss, and the job's output stays byte-identical to the
// uncorrupted run (gadget.Scan is pure).
func TestChaosCacheReadRecompute(t *testing.T) {
	m, opts := chaosFixture(t)

	clean := New(Config{Workers: 1})
	ref, err := clean.Protect(context.Background(), "ref", m, opts)
	clean.Close()
	if err != nil {
		t.Fatal(err)
	}

	f := New(Config{
		Workers: 1,
		Chaos: chaos.New(chaos.Plan{Seed: 2, Faults: []chaos.Fault{
			{Point: chaos.PointFarmCacheRead, Prob: 1}}}, nil),
	})
	defer f.Close()
	// First job populates the cache; the second would hit it, but every
	// hit is corrupted, so it must rescan.
	if _, err := f.Protect(context.Background(), "warm", m, opts); err != nil {
		t.Fatal(err)
	}
	j, err := f.Submit(context.Background(), "corrupted", m, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := j.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("corrupted-cache job failed: %v", res.Err)
	}
	if res.ScanHits != 0 {
		t.Errorf("corrupted reads served as hits: %d", res.ScanHits)
	}
	if res.ScanMisses == 0 {
		t.Error("corrupted reads recorded no misses")
	}
	if !bytes.Equal(imageBytes(t, ref.Image), imageBytes(t, res.Protected.Image)) {
		t.Error("recomputed-after-corruption output differs from clean run")
	}
}

// TestChaosQueueStall: an injected submission stall delays the enqueue
// by the plan's duration but never loses the job.
func TestChaosQueueStall(t *testing.T) {
	seam := &flakySeam{failFirst: map[string]int{}, calls: map[string]int{}}
	f := seamFarm(Config{
		Chaos: chaos.New(chaos.Plan{Seed: 3, Faults: []chaos.Fault{
			{Point: chaos.PointFarmQueueStall, Prob: 1, Delay: 2 * time.Millisecond}}}, nil),
	}, seam, nil)
	defer f.Close()

	j, err := f.Submit(context.Background(), "stalled", seamModule(t), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res, _ := j.Wait(context.Background()); res.Err != nil {
		t.Fatalf("stalled job failed: %v", res.Err)
	}
	// The sleep seam recorded the stall instead of sleeping.
	if len(seam.backoffs) != 1 || seam.backoffs[0] != 2*time.Millisecond {
		t.Errorf("stalls = %v, want [2ms]", seam.backoffs)
	}
}

// TestRetryDeadlineBudget is the deadline-aware backoff satellite: a
// 3-attempt retry policy under a 10ms job deadline must give up the
// moment a backoff cannot end before the deadline — returning an error
// wrapping context.DeadlineExceeded within the budget, not after
// sleeping out the full retry schedule.
func TestRetryDeadlineBudget(t *testing.T) {
	seam := &flakySeam{failFirst: map[string]int{"j": 99}, calls: map[string]int{}}
	f := seamFarm(Config{
		Retry:      RetryPolicy{MaxAttempts: 3}, // defaults: 10ms base, 1s cap
		JobTimeout: 10 * time.Millisecond,
	}, seam, nil)
	defer f.Close()

	start := time.Now()
	j, err := f.Submit(context.Background(), "j", seamModule(t), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := j.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if !errors.Is(res.Err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", res.Err)
	}
	// The full jittered 2-backoff schedule is ≥ 20ms and may reach 1s;
	// giving up at the deadline check must beat it comfortably.
	if elapsed > 5*time.Second {
		t.Fatalf("deadline-bounded retries took %v", elapsed)
	}
	if len(seam.backoffs) != 0 {
		t.Errorf("slept %v despite backoff exceeding the deadline", seam.backoffs)
	}
}
