package farm

import "parallax/internal/obs"

// farmMetrics holds the farm's handles into a shared obs.Registry.
// With no registry configured every handle is nil and each recording
// site costs a single nil check (see the obs package contract), so the
// farm's hot path is unchanged when observability is off.
//
// The handles mirror the counters struct rather than replacing it:
// Stats() stays self-contained and dependency-free, while the registry
// view merges farm activity with emulator and pipeline metrics for
// `parallax campaign --metrics` style reports.
type farmMetrics struct {
	submitted      *obs.Counter
	completed      *obs.Counter
	failed         *obs.Counter
	cancelled      *obs.Counter
	panics         *obs.Counter
	retries        *obs.Counter
	breakerRejects *obs.Counter

	scanHits   *obs.Counter
	scanMisses *obs.Counter
	hintHits   *obs.Counter
	hintMisses *obs.Counter

	queueDepth *obs.Gauge

	queueWaitNs  *obs.Histogram
	jobRuntimeNs *obs.Histogram
}

// newFarmMetrics resolves the handle set. A nil registry yields nil
// handles (the disabled state); r.Counter et al. are nil-safe.
func newFarmMetrics(r *obs.Registry) farmMetrics {
	return farmMetrics{
		submitted:      r.Counter("farm.jobs_submitted"),
		completed:      r.Counter("farm.jobs_completed"),
		failed:         r.Counter("farm.jobs_failed"),
		cancelled:      r.Counter("farm.jobs_cancelled"),
		panics:         r.Counter("farm.panics"),
		retries:        r.Counter("farm.retries"),
		breakerRejects: r.Counter("farm.breaker_rejects"),
		scanHits:       r.Counter("farm.scan_cache_hits"),
		scanMisses:     r.Counter("farm.scan_cache_misses"),
		hintHits:       r.Counter("farm.hint_cache_hits"),
		hintMisses:     r.Counter("farm.hint_cache_misses"),
		queueDepth:     r.Gauge("farm.queue_depth"),
		queueWaitNs:    r.Histogram("farm.queue_wait_ns"),
		jobRuntimeNs:   r.Histogram("farm.job_runtime_ns"),
	}
}
