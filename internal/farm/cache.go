package farm

import (
	"crypto/sha256"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"parallax/internal/chaos"
	"parallax/internal/core"
	"parallax/internal/gadget"
	"parallax/internal/image"
	"parallax/internal/ir"
)

// key is a content address: a SHA-256 over the exact inputs of a
// cached stage.
type key [sha256.Size]byte

// Cache memoizes the two expensive, pure pipeline stages across jobs:
//
//   - gadget scan + classification, keyed by the executable section
//     bytes (addresses included) and the scan parameters. Protecting
//     the same text twice — a resubmitted job, or fixpoint passes that
//     reproduce an earlier layout — pays for the scan once.
//   - converged fixpoint layout sizes (core.Hints), keyed by the full
//     job content (module text + options). A hint hit lets an
//     identical job converge in a single link→scan→compile pass, which
//     in turn makes its one scan a guaranteed cache hit.
//
// Both stages are pure functions of their key, so sharing results
// cannot change output bytes. Cached catalogs are shared read-only
// between jobs; nothing in the pipeline mutates a catalog after Scan.
//
// A Cache is safe for concurrent use and may be shared between farms
// (e.g. a warm cache handed to a new farm with a different worker
// count). Concurrent lookups of the same not-yet-computed scan are
// deduplicated: one caller computes, the rest block and share.
type Cache struct {
	mu    sync.Mutex
	scans map[key]*scanEntry
	hints map[key]*core.Hints
}

type scanEntry struct {
	once sync.Once
	cat  *gadget.Catalog
}

// NewCache returns an empty stage cache.
func NewCache() *Cache {
	return &Cache{
		scans: make(map[key]*scanEntry),
		hints: make(map[key]*core.Hints),
	}
}

// Len reports the number of cached scan catalogs and layout hints.
func (c *Cache) Len() (scans, hints int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.scans), len(c.hints)
}

// scanner returns a core.Options.ScanFunc that serves scans from the
// cache, recording hits and misses into both the farm counters and the
// per-job tallies.
func (c *Cache) scanner(ct *counters, jobHits, jobMisses *uint64, inj *chaos.Injector) func(*image.Image, gadget.ScanConfig) *gadget.Catalog {
	return func(img *image.Image, cfg gadget.ScanConfig) *gadget.Catalog {
		k := scanKey(img, cfg)
		c.mu.Lock()
		e, ok := c.scans[k]
		if !ok {
			e = &scanEntry{}
			c.scans[k] = e
		}
		c.mu.Unlock()
		hit := true
		e.once.Do(func() {
			hit = false
			start := time.Now()
			e.cat = gadget.Scan(img, cfg)
			atomic.AddInt64(&ct.scanNanos, time.Since(start).Nanoseconds())
		})
		if hit && inj.ShouldNext(chaos.PointFarmCacheRead) {
			// Injected cache corruption: the cached catalog is treated as
			// failing its read-back check, so this lookup bypasses the
			// entry and rescans from the image bytes. Output determinism
			// holds because gadget.Scan is pure; the entry itself is left
			// alone (concurrent readers may hold e.cat).
			start := time.Now()
			cat := gadget.Scan(img, cfg)
			atomic.AddInt64(&ct.scanNanos, time.Since(start).Nanoseconds())
			atomic.AddUint64(&ct.scanMisses, 1)
			atomic.AddUint64(jobMisses, 1)
			return cat
		}
		if hit {
			atomic.AddUint64(&ct.scanHits, 1)
			atomic.AddUint64(jobHits, 1)
		} else {
			atomic.AddUint64(&ct.scanMisses, 1)
			atomic.AddUint64(jobMisses, 1)
		}
		return e.cat
	}
}

// lookupHints returns cached converged layout sizes for a job key.
func (c *Cache) lookupHints(k key) (*core.Hints, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.hints[k]
	return h, ok
}

// storeHints records the converged layout sizes of a finished job.
func (c *Cache) storeHints(k key, h core.Hints) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hints[k] = &h
}

// scanKey addresses a gadget scan: every executable section's name,
// load address and exact bytes, plus the scan parameters. Matches the
// section walk in gadget.Scan.
func scanKey(img *image.Image, cfg gadget.ScanConfig) key {
	h := sha256.New()
	fmt.Fprintf(h, "scan:maxinsts=%d:maxbytes=%d:skipfar=%t\n",
		cfg.MaxInsts, cfg.MaxBytes, cfg.SkipFar)
	for _, s := range img.Sections {
		if s.Perm&image.PermX == 0 {
			continue
		}
		fmt.Fprintf(h, "section:%s:%#x:%d:", s.Name, s.Addr, s.Size)
		h.Write(s.Data)
		h.Write([]byte{'\n'})
	}
	var k key
	h.Sum(k[:0])
	return k
}

// jobKey addresses a whole protection job: the module content and
// every Options field that influences the output image. ScanFunc,
// Hints and Obs are deliberately excluded — accelerators and observers
// never change output bytes, so they must not fragment the cache.
func jobKey(m *ir.Module, opts core.Options) key {
	h := sha256.New()
	// Module: the IR printer covers entry, funcs, blocks and
	// instruction streams; global initial bytes are appended explicitly
	// because the printer only records their sizes.
	fmt.Fprintf(h, "module:%s\n", m)
	for _, g := range m.Globals {
		fmt.Fprintf(h, "global:%s:%d:%t:", g.Name, g.ByteSize(), g.ReadOnly)
		h.Write(g.Init)
		h.Write([]byte{'\n'})
	}
	fmt.Fprintf(h, "opts:verify=%q auto=%t pool=%d protect=%q norewrite=%t\n",
		opts.VerifyFuncs, opts.AutoSelect, opts.PoolCopies,
		opts.ProtectFuncs, opts.DisableRewriting)
	fmt.Fprintf(h, "opts:mode=%d mu=%t cschk=%t probN=%d seed=%d\n",
		opts.ChainMode, opts.MuChains, opts.ChecksumChains,
		opts.ProbVariants, opts.Seed)
	fmt.Fprintf(h, "opts:layout=%d/%d/%d/%d\n",
		opts.Layout.TextBase, opts.Layout.FuncAlign, opts.Layout.PadByte,
		opts.Layout.PageSize)
	fmt.Fprintf(h, "opts:workload=%d:", len(opts.Workload))
	h.Write(opts.Workload)
	var k key
	h.Sum(k[:0])
	return k
}
