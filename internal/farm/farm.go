// Package farm is the concurrent batch-protection service: it runs
// many core.Protect jobs over a bounded worker pool and memoizes the
// expensive pure stages (gadget scan + classification, fixpoint layout
// sizes) in a content-addressed cache shared by all jobs.
//
// The acceptance bar is determinism: a job's output image is
// byte-identical to a sequential core.Protect of the same module and
// options, regardless of worker count, submission order, or cache
// state. That holds because every cached stage is a pure function of
// its content key — a catalog is keyed by the exact executable bytes
// it was scanned from, and layout hints are keyed by the full job
// content and merely let the (still verified) fixpoint converge in one
// pass.
//
// Cancellation is cooperative at job granularity: a cancelled context
// fails jobs still in the queue promptly, but a job already inside
// core.Protect runs to completion (the pipeline is not preemptible).
// A panic inside a pipeline stage is confined to the job: the worker
// survives and the job reports a *PanicError.
package farm

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"parallax/internal/chaos"
	"parallax/internal/core"
	"parallax/internal/emu/tb"
	"parallax/internal/ir"
	"parallax/internal/obs"
)

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("farm: closed")

// PanicError wraps a panic recovered from a protection pipeline stage.
type PanicError struct {
	Value any    // the recovered panic value
	Stack []byte // stack trace captured at recovery
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("pipeline panic: %v", e.Value)
}

// Unwrap exposes the panic value when it is itself an error, so
// errors.Is/As reach through a confined panic — e.g. chaos.IsInjected
// distinguishes an injected worker panic from a genuine pipeline bug.
func (e *PanicError) Unwrap() error {
	err, _ := e.Value.(error)
	return err
}

// Config sizes a Farm.
type Config struct {
	// Workers is the worker-goroutine count; values below 1 mean
	// runtime.GOMAXPROCS(0).
	Workers int
	// Queue bounds the number of accepted-but-not-running jobs; a full
	// queue makes Submit block (backpressure). Values below 1 mean
	// 2×Workers.
	Queue int
	// Cache is the stage cache to use; nil means a fresh private one.
	// Sharing a warm Cache across farms is safe and useful.
	Cache *Cache
	// Retry re-runs failed jobs with capped exponential backoff. The
	// zero value disables retries.
	Retry RetryPolicy
	// JobTimeout bounds each job from submission to completion
	// (retries and backoff included); an expired job fails with an
	// error wrapping context.DeadlineExceeded. Zero means no deadline.
	JobTimeout time.Duration
	// Breaker configures the consecutive-failure circuit breaker. The
	// zero value disables it.
	Breaker BreakerConfig
	// Obs, when non-nil, mirrors farm activity into a shared metrics
	// registry (farm.* counters, queue-depth gauge, latency histograms,
	// breaker state) so one report can merge farm, emulator and
	// pipeline-stage views. Nil keeps the farm observability-free: the
	// per-event cost is a single nil check.
	Obs *obs.Registry
	// Chaos, when non-nil, arms the farm's fault-injection points:
	// chaos.PointFarmWorkerPanic (a pipeline stage panics),
	// chaos.PointFarmCacheRead (a stage-cache read is corrupted and
	// recomputed) and chaos.PointFarmQueueStall (a submission stalls).
	// Nil — the production default — makes every point a nil check.
	Chaos *chaos.Injector
}

// Farm is a worker pool executing protection jobs. Create with New,
// feed with Submit, stop with Close.
type Farm struct {
	cache      *Cache
	ct         counters
	om         farmMetrics
	jobs       chan *Job
	wg         sync.WaitGroup
	retry      RetryPolicy
	jobTimeout time.Duration
	brk        *breaker
	chaos      *chaos.Injector

	// tbCat is the farm-wide shared translation catalog, injected into
	// every tb-engine job that did not bring its own: jobs profiling
	// identical module bytes (cache-miss retries, option sweeps over
	// one module) decode them once. Determinism is unaffected — the
	// catalog changes which engine instance pays for a translation,
	// never what any engine executes.
	tbCat *tb.Catalog

	// Deterministic-test seams; production values are time.Now,
	// realSleep and (*Farm).protect.
	now       func() time.Time
	sleep     func(context.Context, time.Duration) error
	protectFn func(*Job) (*core.Protected, error)

	closeMu sync.RWMutex
	closed  bool
}

// New starts a farm. The returned farm accepts jobs until Close.
func New(cfg Config) *Farm {
	if cfg.Workers < 1 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Queue < 1 {
		cfg.Queue = 2 * cfg.Workers
	}
	if cfg.Cache == nil {
		cfg.Cache = NewCache()
	}
	f := &Farm{
		cache:      cfg.Cache,
		om:         newFarmMetrics(cfg.Obs),
		jobs:       make(chan *Job, cfg.Queue),
		retry:      cfg.Retry.withDefaults(),
		jobTimeout: cfg.JobTimeout,
		chaos:      cfg.Chaos,
		tbCat:      tb.NewCatalog(),
		now:        time.Now,
		sleep:      realSleep,
	}
	f.brk = newBreaker(cfg.Breaker, func() time.Time { return f.now() })
	if f.brk != nil {
		f.brk.tripCtr = cfg.Obs.Counter("farm.breaker_trips")
		f.brk.openG = cfg.Obs.Gauge("farm.breaker_open")
	}
	f.protectFn = f.protect
	f.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go f.worker()
	}
	return f
}

// Cache returns the farm's stage cache (to share with another farm).
func (f *Farm) Cache() *Cache { return f.cache }

// Stats returns a point-in-time snapshot of the farm's counters. It is
// an alias for StatsSnapshot, which documents the concurrency contract.
func (f *Farm) Stats() Stats {
	return f.StatsSnapshot()
}

// StatsSnapshot returns a copy of the farm's counters that is safe to
// read while jobs are active: every field is loaded atomically (or
// under the breaker's mutex), so no value is ever torn. The snapshot
// is per-field consistent, not globally linearized — a job finishing
// mid-snapshot can appear in JobsCompleted before JobsSubmitted
// reflects a concurrent submit. Callers needing cross-field invariants
// should quiesce the farm first (Close, or wait on all jobs).
func (f *Farm) StatsSnapshot() Stats {
	s := f.ct.snapshot()
	s.BreakerTrips = f.brk.tripCount()
	return s
}

// Close stops accepting jobs, waits for queued and running jobs to
// finish, and stops the workers. It is idempotent and safe to call
// concurrently with Submit (late submits fail with ErrClosed).
func (f *Farm) Close() {
	f.closeMu.Lock()
	if !f.closed {
		f.closed = true
		close(f.jobs)
	}
	f.closeMu.Unlock()
	f.wg.Wait()
}

// Job states (atomic).
const (
	stateQueued int32 = iota
	stateRunning
	stateDone
)

// Job is the future returned by Submit.
type Job struct {
	// Name labels the job in errors and reports.
	Name string

	ctx       context.Context
	cancel    context.CancelFunc // releases the JobTimeout deadline, if any
	module    *ir.Module
	opts      core.Options
	submitted time.Time
	state     int32
	done      chan struct{}
	res       Result
}

// finish marks the job done and releases its deadline resources.
func (j *Job) finish() {
	close(j.done)
	if j.cancel != nil {
		j.cancel()
	}
}

// Result is the outcome of a finished job.
type Result struct {
	// Name echoes the job label.
	Name string
	// Protected is the protection output; nil when Err is set.
	Protected *core.Protected
	// Err is the job failure, wrapped with the job name. Invalid
	// options, pipeline errors, cancellation and recovered panics all
	// land here; the worker itself never dies.
	Err error

	// QueueWait is the submit→start latency; Runtime the pipeline time.
	QueueWait time.Duration
	Runtime   time.Duration

	// ScanHits/ScanMisses count this job's gadget-scan cache lookups.
	ScanHits   uint64
	ScanMisses uint64
	// HintUsed reports whether cached fixpoint sizes seeded this job.
	HintUsed bool
	// Attempts is how many times the pipeline ran for this job (0 for
	// jobs that never started: cancelled while queued or rejected by
	// the circuit breaker).
	Attempts int
}

// Done is closed when the job has finished (or was cancelled while
// queued).
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job finishes or ctx expires. The error return
// concerns the wait itself; a job failure is reported in Result.Err.
func (j *Job) Wait(ctx context.Context) (Result, error) {
	select {
	case <-j.done:
		return j.res, nil
	case <-ctx.Done():
		return Result{Name: j.Name}, fmt.Errorf("farm: waiting for job %q: %w", j.Name, ctx.Err())
	}
}

// Submit enqueues a protection job and returns its future. It blocks
// when the queue is full and fails if ctx is cancelled while blocked
// or the farm is closed. The job observes ctx too: cancellation fails
// it promptly while queued (a job already running completes).
func (f *Farm) Submit(ctx context.Context, name string, m *ir.Module, opts core.Options) (*Job, error) {
	if m == nil {
		return nil, fmt.Errorf("farm: job %q: nil module", name)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	j := &Job{
		Name:      name,
		ctx:       ctx,
		module:    m,
		opts:      opts,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	if f.jobTimeout > 0 {
		// The deadline covers the job's whole life — queue wait, every
		// attempt, and backoff between attempts.
		j.ctx, j.cancel = context.WithTimeout(ctx, f.jobTimeout)
	}
	j.res.Name = name

	if d := f.chaos.StallNext(chaos.PointFarmQueueStall); d > 0 {
		// Injected scheduler hiccup: the submission stalls (ctx-aware)
		// before reaching the queue. Outside the close lock so a stalled
		// submit never blocks Close.
		if err := f.sleep(ctx, d); err != nil {
			return nil, fmt.Errorf("farm: submitting job %q: %w", name, err)
		}
	}

	f.closeMu.RLock()
	defer f.closeMu.RUnlock()
	if f.closed {
		return nil, fmt.Errorf("farm: job %q: %w", name, ErrClosed)
	}
	atomic.AddInt64(&f.ct.queueDepth, 1)
	f.om.queueDepth.Add(1)
	select {
	case f.jobs <- j:
	case <-ctx.Done():
		atomic.AddInt64(&f.ct.queueDepth, -1)
		f.om.queueDepth.Add(-1)
		return nil, fmt.Errorf("farm: submitting job %q: %w", name, ctx.Err())
	}
	atomic.AddUint64(&f.ct.submitted, 1)
	f.om.submitted.Inc()
	go j.watchCancel(f)
	return j, nil
}

// Protect is Submit followed by Wait: a one-call synchronous protect
// through the farm's cache and pool.
func (f *Farm) Protect(ctx context.Context, name string, m *ir.Module, opts core.Options) (*core.Protected, error) {
	j, err := f.Submit(ctx, name, m, opts)
	if err != nil {
		return nil, err
	}
	res, err := j.Wait(ctx)
	if err != nil {
		return nil, err
	}
	return res.Protected, res.Err
}

// watchCancel fails the job early if its context is cancelled while it
// still sits in the queue. The queued→done transition is arbitrated by
// the state CAS, so a worker that dequeues the job afterwards skips it.
func (j *Job) watchCancel(f *Farm) {
	select {
	case <-j.ctx.Done():
		if atomic.CompareAndSwapInt32(&j.state, stateQueued, stateDone) {
			j.res.QueueWait = time.Since(j.submitted)
			j.res.Err = fmt.Errorf("farm: job %q cancelled while queued: %w", j.Name, j.ctx.Err())
			atomic.AddInt64(&f.ct.queueDepth, -1)
			atomic.AddUint64(&f.ct.cancelled, 1)
			f.om.queueDepth.Add(-1)
			f.om.cancelled.Inc()
			j.finish()
		}
	case <-j.done:
	}
}

func (f *Farm) worker() {
	defer f.wg.Done()
	for j := range f.jobs {
		if !atomic.CompareAndSwapInt32(&j.state, stateQueued, stateRunning) {
			continue // cancelled while queued; watcher already closed it
		}
		atomic.AddInt64(&f.ct.queueDepth, -1)
		f.om.queueDepth.Add(-1)
		j.res.QueueWait = time.Since(j.submitted)
		atomic.AddInt64(&f.ct.queueNanos, j.res.QueueWait.Nanoseconds())
		f.om.queueWaitNs.Record(uint64(j.res.QueueWait.Nanoseconds()))
		f.run(j)
		atomic.StoreInt32(&j.state, stateDone)
		j.finish()
	}
}

func (f *Farm) run(j *Job) {
	if err := j.ctx.Err(); err != nil {
		j.res.Err = fmt.Errorf("farm: job %q cancelled: %w", j.Name, err)
		atomic.AddUint64(&f.ct.cancelled, 1)
		f.om.cancelled.Inc()
		return
	}
	if !f.brk.allow() {
		j.res.Err = fmt.Errorf("farm: job %q: %w", j.Name, ErrCircuitOpen)
		atomic.AddUint64(&f.ct.failed, 1)
		atomic.AddUint64(&f.ct.breakerRejects, 1)
		f.om.failed.Inc()
		f.om.breakerRejects.Inc()
		return
	}

	maxAttempts := f.retry.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	start := time.Now()
	// Per-job jittered delay stream: jobs retrying off the same failure
	// wave each follow their own schedule.
	bo := f.retry.stream(j.Name)
	var prot *core.Protected
	var err error
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		j.res.Attempts = attempt
		prot, err = f.protectFn(j)
		if err == nil || attempt == maxAttempts {
			break
		}
		atomic.AddUint64(&f.ct.retries, 1)
		f.om.retries.Inc()
		d := bo.next()
		if dl, ok := j.ctx.Deadline(); ok {
			// Deadline-aware backoff: a sleep that cannot end before the
			// job deadline is a guaranteed cancellation, so fail now
			// instead of burning the remaining budget asleep.
			if rem := dl.Sub(f.now()); d >= rem {
				err = fmt.Errorf("farm: job %q: retry backoff %v exceeds remaining deadline %v: %w",
					j.Name, d, rem, context.DeadlineExceeded)
				break
			}
		}
		if serr := f.sleep(j.ctx, d); serr != nil {
			err = fmt.Errorf("farm: job %q cancelled during retry backoff: %w", j.Name, serr)
			break
		}
	}
	j.res.Runtime = time.Since(start)
	atomic.AddInt64(&f.ct.protectNanos, j.res.Runtime.Nanoseconds())
	f.om.jobRuntimeNs.Record(uint64(j.res.Runtime.Nanoseconds()))
	// The per-job scan tallies are stable here: every attempt ran on
	// this goroutine.
	f.om.scanHits.Add(j.res.ScanHits)
	f.om.scanMisses.Add(j.res.ScanMisses)
	if err != nil {
		j.res.Err = err
		atomic.AddUint64(&f.ct.failed, 1)
		f.om.failed.Inc()
		f.brk.recordFailure()
		return
	}
	j.res.Protected = prot
	atomic.AddUint64(&f.ct.completed, 1)
	f.om.completed.Inc()
	f.brk.recordSuccess()
}

// protect runs one job through core.Protect with the cache wired in
// and panics confined to the job.
func (f *Farm) protect(j *Job) (prot *core.Protected, err error) {
	defer func() {
		if r := recover(); r != nil {
			atomic.AddUint64(&f.ct.panics, 1)
			f.om.panics.Inc()
			err = fmt.Errorf("farm: job %q: %w", j.Name,
				&PanicError{Value: r, Stack: debug.Stack()})
		}
	}()
	if cerr := f.chaos.FireNext(chaos.PointFarmWorkerPanic); cerr != nil {
		// Injected pipeline-stage panic: the confinement machinery above
		// must catch it exactly like a real stage bug.
		panic(cerr)
	}
	opts := j.opts
	k := jobKey(j.module, opts)
	if opts.Engine == "tb" && opts.TBCatalog == nil {
		// Farm-wide translation sharing; like ScanFunc below, the
		// injected field is ignored by jobKey (it affects cost, not
		// output), so cache identity is unchanged.
		opts.TBCatalog = f.tbCat
	}
	if opts.ScanFunc == nil {
		opts.ScanFunc = f.cache.scanner(&f.ct, &j.res.ScanHits, &j.res.ScanMisses, f.chaos)
	}
	if opts.Hints == nil {
		if h, ok := f.cache.lookupHints(k); ok {
			opts.Hints = h
			j.res.HintUsed = true
			atomic.AddUint64(&f.ct.hintHits, 1)
			f.om.hintHits.Inc()
		} else {
			atomic.AddUint64(&f.ct.hintMisses, 1)
			f.om.hintMisses.Inc()
		}
	}
	prot, err = core.Protect(j.module, opts)
	if err != nil {
		return nil, fmt.Errorf("farm: job %q: %w", j.Name, err)
	}
	f.cache.storeHints(k, prot.Hints)
	return prot, nil
}
