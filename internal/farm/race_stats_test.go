package farm

import (
	"context"
	"sync"
	"testing"

	"parallax/internal/core"
	"parallax/internal/corpus"
	"parallax/internal/obs"
)

// TestStatsSnapshotDuringJobs hammers StatsSnapshot (and the obs
// registry snapshot) from several goroutines while the farm is actively
// protecting jobs. Run under -race this is the audit for the "Stats
// reads race with worker updates" concern: every counter is atomic and
// the breaker state is mutex-guarded, so the detector must stay quiet.
// It also checks snapshot monotonicity — lifecycle counters never move
// backwards between two snapshots taken by the same reader.
func TestStatsSnapshotDuringJobs(t *testing.T) {
	reg := obs.NewRegistry()
	f := New(Config{
		Workers: 4,
		Obs:     reg,
		Breaker: BreakerConfig{Threshold: 3},
	})
	defer f.Close()

	prog := corpus.All()[0]
	opts := core.Options{VerifyFuncs: []string{prog.VerifyFunc}, Obs: reg}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var last Stats
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := f.StatsSnapshot()
				if s.JobsSubmitted < last.JobsSubmitted ||
					s.JobsCompleted < last.JobsCompleted ||
					s.JobsFailed < last.JobsFailed {
					t.Errorf("snapshot went backwards: %+v after %+v", s, last)
					return
				}
				last = s
				// The registry snapshot walks the same hot counters.
				_ = reg.Snapshot()
			}
		}()
	}

	const jobs = 12
	ctx := context.Background()
	futures := make([]*Job, 0, jobs)
	for i := 0; i < jobs; i++ {
		j, err := f.Submit(ctx, prog.Name, prog.Build(), opts)
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		futures = append(futures, j)
	}
	for _, j := range futures {
		if res, err := j.Wait(ctx); err != nil || res.Err != nil {
			t.Fatalf("job failed: wait=%v res=%v", err, res.Err)
		}
	}
	close(stop)
	readers.Wait()

	s := f.StatsSnapshot()
	if s.JobsSubmitted != jobs || s.JobsCompleted != jobs {
		t.Errorf("final stats %d submitted / %d completed, want %d/%d",
			s.JobsSubmitted, s.JobsCompleted, jobs, jobs)
	}
	// The registry mirror must agree with the farm's own counters once
	// the farm is quiet.
	rep := reg.Snapshot()
	if got := rep.Counters["farm.jobs_completed"]; got != jobs {
		t.Errorf("registry farm.jobs_completed = %d, want %d", got, jobs)
	}
	if got := rep.Counters["farm.jobs_submitted"]; got != jobs {
		t.Errorf("registry farm.jobs_submitted = %d, want %d", got, jobs)
	}
	hits := rep.Counters["farm.scan_cache_hits"]
	misses := rep.Counters["farm.scan_cache_misses"]
	if hits+misses == 0 {
		t.Error("registry recorded no scan-cache lookups")
	}
	if _, ok := rep.Stages["scan"]; !ok {
		t.Error("registry recorded no scan stage timing (Options.Obs not threaded)")
	}
}
