package farm

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"parallax/internal/core"
	"parallax/internal/corpus"
	"parallax/internal/gadget"
	"parallax/internal/image"
	"parallax/internal/ir"
)

// waitResult waits for a job with a test timeout.
func waitResult(t *testing.T, j *Job) Result {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := j.Wait(ctx)
	if err != nil {
		t.Fatalf("job %q did not finish: %v", j.Name, err)
	}
	return res
}

// TestFarmInvalidJobs: bad options fail the job with a wrapped error
// and leave the worker alive for the next job.
func TestFarmInvalidJobs(t *testing.T) {
	p, err := corpus.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	f := New(Config{Workers: 1})
	defer f.Close()
	ctx := context.Background()

	// Unknown verification function.
	j1, err := f.Submit(ctx, "bad-verify", p.Build(),
		core.Options{VerifyFuncs: []string{"no_such_func"}})
	if err != nil {
		t.Fatal(err)
	}
	if res := waitResult(t, j1); res.Err == nil {
		t.Error("unknown verify function: job succeeded, want error")
	} else if !strings.Contains(res.Err.Error(), "bad-verify") {
		t.Errorf("job error not wrapped with job name: %v", res.Err)
	}

	// Zero-length module (no functions at all).
	j2, err := f.Submit(ctx, "empty-module", &ir.Module{Name: "empty"},
		core.Options{VerifyFuncs: []string{"x"}})
	if err != nil {
		t.Fatal(err)
	}
	if res := waitResult(t, j2); res.Err == nil {
		t.Error("empty module: job succeeded, want error")
	}

	// Nil module is rejected at submission.
	if _, err := f.Submit(ctx, "nil-module", nil, core.Options{}); err == nil {
		t.Error("nil module accepted")
	}

	// The worker survived all of the above.
	prot, err := f.Protect(ctx, "good", p.Build(),
		core.Options{VerifyFuncs: []string{p.VerifyFunc}})
	if err != nil || prot == nil {
		t.Fatalf("valid job after failures: %v", err)
	}
	st := f.Stats()
	if st.JobsFailed != 2 || st.JobsCompleted != 1 {
		t.Errorf("stats after mixed jobs: %v", st)
	}
}

// blockingScan returns a ScanFunc that signals entry and then blocks
// until release is closed — a deterministic way to occupy a worker.
func blockingScan(entered chan<- struct{}, release <-chan struct{}) func(*image.Image, gadget.ScanConfig) *gadget.Catalog {
	var once bool
	return func(img *image.Image, cfg gadget.ScanConfig) *gadget.Catalog {
		if !once {
			once = true
			entered <- struct{}{}
			<-release
		}
		return gadget.Scan(img, cfg)
	}
}

// TestFarmCancelQueued: cancelling a context fails that context's
// queued jobs promptly, while an unrelated running job is unaffected.
func TestFarmCancelQueued(t *testing.T) {
	p, err := corpus.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	f := New(Config{Workers: 1, Queue: 8})
	defer f.Close()

	entered := make(chan struct{})
	release := make(chan struct{})
	blocker, err := f.Submit(context.Background(), "blocker", p.Build(), core.Options{
		VerifyFuncs: []string{p.VerifyFunc},
		ScanFunc:    blockingScan(entered, release),
	})
	if err != nil {
		t.Fatal(err)
	}
	<-entered // the only worker is now wedged inside the blocker job

	ctx, cancel := context.WithCancel(context.Background())
	var queued []*Job
	for i := 0; i < 3; i++ {
		j, err := f.Submit(ctx, "queued", p.Build(),
			core.Options{VerifyFuncs: []string{p.VerifyFunc}})
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, j)
	}
	cancel()

	// The queued jobs must fail promptly — the worker is still wedged,
	// so completion can only come from the cancellation path.
	for _, j := range queued {
		res := waitResult(t, j)
		if !errors.Is(res.Err, context.Canceled) {
			t.Errorf("queued job error = %v, want context.Canceled", res.Err)
		}
	}
	if st := f.Stats(); st.JobsCancelled != 3 {
		t.Errorf("cancelled count = %d, want 3", st.JobsCancelled)
	}

	close(release)
	if res := waitResult(t, blocker); res.Err != nil {
		t.Errorf("blocker job failed: %v", res.Err)
	}
}

// TestFarmPanicIsolation: a panic inside a pipeline stage becomes a
// job error carrying *PanicError; the worker and farm survive.
func TestFarmPanicIsolation(t *testing.T) {
	p, err := corpus.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	f := New(Config{Workers: 1})
	defer f.Close()
	ctx := context.Background()

	j, err := f.Submit(ctx, "panicky", p.Build(), core.Options{
		VerifyFuncs: []string{p.VerifyFunc},
		ScanFunc: func(*image.Image, gadget.ScanConfig) *gadget.Catalog {
			panic("injected stage failure")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := waitResult(t, j)
	var pe *PanicError
	if !errors.As(res.Err, &pe) {
		t.Fatalf("job error = %v, want *PanicError", res.Err)
	}
	if pe.Value != "injected stage failure" || len(pe.Stack) == 0 {
		t.Errorf("panic error payload: value=%v stack=%d bytes", pe.Value, len(pe.Stack))
	}

	// Worker survived: the next job on the same (only) worker runs.
	if _, err := f.Protect(ctx, "after-panic", p.Build(),
		core.Options{VerifyFuncs: []string{p.VerifyFunc}}); err != nil {
		t.Fatalf("job after panic: %v", err)
	}
	st := f.Stats()
	if st.Panics != 1 || st.JobsFailed != 1 || st.JobsCompleted != 1 {
		t.Errorf("stats after panic: %v", st)
	}
}

// TestFarmCloseAndBackpressure: Submit after Close fails with
// ErrClosed; a full queue plus a dead context fails Submit instead of
// blocking forever.
func TestFarmCloseAndBackpressure(t *testing.T) {
	p, err := corpus.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{VerifyFuncs: []string{p.VerifyFunc}}

	f := New(Config{Workers: 1, Queue: 1})
	entered := make(chan struct{})
	release := make(chan struct{})
	blocker, err := f.Submit(context.Background(), "blocker", p.Build(), core.Options{
		VerifyFuncs: []string{p.VerifyFunc},
		ScanFunc:    blockingScan(entered, release),
	})
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	// Fill the queue (capacity 1), then overflow with a cancelled ctx.
	queued, err := f.Submit(context.Background(), "queued", p.Build(), opts)
	if err != nil {
		t.Fatal(err)
	}
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.Submit(dead, "overflow", p.Build(), opts); !errors.Is(err, context.Canceled) {
		t.Errorf("overflow submit error = %v, want context.Canceled", err)
	}
	close(release)
	waitResult(t, blocker)
	waitResult(t, queued)
	f.Close()

	if _, err := f.Submit(context.Background(), "late", p.Build(), opts); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close error = %v, want ErrClosed", err)
	}
	// Close is idempotent.
	f.Close()
}
