package farm

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"parallax/internal/core"
	"parallax/internal/corpus"
	"parallax/internal/dyngen"
	"parallax/internal/image"
)

var allModes = []dyngen.Mode{
	dyngen.ModeStatic, dyngen.ModeXor, dyngen.ModeRC4, dyngen.ModeProb,
}

// matrixSpec is one (program, mode) cell of the corpus matrix.
type matrixSpec struct {
	name string
	prog corpus.Program
	opts core.Options
}

func corpusMatrix() []matrixSpec {
	var specs []matrixSpec
	for _, p := range corpus.All() {
		for _, m := range allModes {
			specs = append(specs, matrixSpec{
				name: fmt.Sprintf("%s/%s", p.Name, m),
				prog: p,
				opts: core.Options{
					VerifyFuncs: []string{p.VerifyFunc},
					ChainMode:   m,
				},
			})
		}
	}
	return specs
}

func imageBytes(t *testing.T, img *image.Image) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := img.WriteTo(&buf); err != nil {
		t.Fatalf("serializing image: %v", err)
	}
	return buf.Bytes()
}

// TestFarmDeterminism is the subsystem's acceptance bar: the corpus ×
// chain-mode matrix protected through an 8-worker farm must produce
// images byte-identical to sequential core.Protect — on a cold cache,
// and again on a warm cache where hints and memoized scans kick in.
func TestFarmDeterminism(t *testing.T) {
	specs := corpusMatrix()

	// Sequential reference, no farm involved.
	want := make(map[string][]byte, len(specs))
	for _, s := range specs {
		prot, err := core.Protect(s.prog.Build(), s.opts)
		if err != nil {
			t.Fatalf("sequential %s: %v", s.name, err)
		}
		want[s.name] = imageBytes(t, prot.Image)
	}

	f := New(Config{Workers: 8})
	defer f.Close()
	ctx := context.Background()

	runRound := func(round string) {
		jobs := make([]*Job, len(specs))
		for i, s := range specs {
			j, err := f.Submit(ctx, s.name, s.prog.Build(), s.opts)
			if err != nil {
				t.Fatalf("%s submit %s: %v", round, s.name, err)
			}
			jobs[i] = j
		}
		for i, j := range jobs {
			res, err := j.Wait(ctx)
			if err != nil {
				t.Fatalf("%s wait %s: %v", round, specs[i].name, err)
			}
			if res.Err != nil {
				t.Fatalf("%s job %s: %v", round, specs[i].name, res.Err)
			}
			got := imageBytes(t, res.Protected.Image)
			if !bytes.Equal(got, want[specs[i].name]) {
				t.Errorf("%s job %s: image differs from sequential core.Protect", round, specs[i].name)
			}
		}
	}

	runRound("cold")
	cold := f.Stats()
	if cold.JobsCompleted != uint64(len(specs)) || cold.JobsFailed != 0 {
		t.Fatalf("cold stats: %v", cold)
	}

	runRound("warm")
	warm := f.Stats().Delta(cold)
	if warm.JobsCompleted != uint64(len(specs)) {
		t.Fatalf("warm stats: %v", warm)
	}
	// Warm round: every job is seeded with converged layout hints, runs
	// a single fixpoint pass, and that pass's scan is a cache hit — the
	// scan runs zero times, hit rate 100% (≥ the 75% acceptance bar).
	if warm.HintHits != uint64(len(specs)) {
		t.Errorf("warm round: hint hits = %d, want %d", warm.HintHits, len(specs))
	}
	if warm.ScanMisses != 0 {
		t.Errorf("warm round: %d scans ran, want 0 (all cached)", warm.ScanMisses)
	}
	if hr := warm.ScanHitRate(); hr < 0.75 {
		t.Errorf("warm round: scan hit rate %.2f, want >= 0.75", hr)
	}
}

// TestFarmSharedCache hands one farm's warm cache to a second farm
// with a different worker count: results stay byte-identical and the
// scans are served from the shared cache.
func TestFarmSharedCache(t *testing.T) {
	p, err := corpus.ByName("nginx")
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{VerifyFuncs: []string{p.VerifyFunc}, ChainMode: dyngen.ModeXor}
	ctx := context.Background()

	f1 := New(Config{Workers: 2})
	prot1, err := f1.Protect(ctx, "warmup", p.Build(), opts)
	if err != nil {
		t.Fatal(err)
	}
	cache := f1.Cache()
	f1.Close()

	f2 := New(Config{Workers: 4, Cache: cache})
	defer f2.Close()
	j, err := f2.Submit(ctx, "reuse", p.Build(), opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := j.Wait(ctx)
	if err != nil || res.Err != nil {
		t.Fatalf("wait: %v, job: %v", err, res.Err)
	}
	if !bytes.Equal(imageBytes(t, prot1.Image), imageBytes(t, res.Protected.Image)) {
		t.Error("image differs across farms sharing a cache")
	}
	if !res.HintUsed {
		t.Error("second farm did not use cached layout hints")
	}
	if res.ScanMisses != 0 || res.ScanHits == 0 {
		t.Errorf("second farm scans: %d hits / %d misses, want all hits",
			res.ScanHits, res.ScanMisses)
	}
	if st := f2.Stats(); st.HintHits != 1 {
		t.Errorf("second farm stats: %v", st)
	}
}

// TestFarmDifferentOptionsDifferentKeys guards against cache
// confusion: the same program under two seeds must not share hints or
// produce equal images.
func TestFarmDifferentOptionsDifferentKeys(t *testing.T) {
	p, err := corpus.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	f := New(Config{Workers: 2})
	defer f.Close()

	mk := func(seed uint32) core.Options {
		return core.Options{
			VerifyFuncs: []string{p.VerifyFunc},
			ChainMode:   dyngen.ModeXor,
			Seed:        seed,
		}
	}
	a, err := f.Protect(ctx, "seed-a", p.Build(), mk(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Protect(ctx, "seed-b", p.Build(), mk(2))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(imageBytes(t, a.Image), imageBytes(t, b.Image)) {
		t.Error("different seeds produced identical images — cache key too coarse?")
	}
	// And each must still match its own sequential run.
	for seed, got := range map[uint32]*core.Protected{1: a, 2: b} {
		seq, err := core.Protect(p.Build(), mk(seed))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(imageBytes(t, seq.Image), imageBytes(t, got.Image)) {
			t.Errorf("seed %d: farm image differs from sequential", seed)
		}
	}
}
