package chain

import (
	"testing"

	"parallax/internal/image"
)

// TestPoolSizeMatchesLinkedBytes pins the pool-offset arithmetic:
// PoolSize must equal the byte length of the linked pool function for
// every replication factor, because dyngen sizes chain-data
// reservations from PoolSize before the pool is ever linked. A
// one-byte drift would shift every fallback gadget address.
func TestPoolSizeMatchesLinkedBytes(t *testing.T) {
	for _, copies := range []int{-1, 0, 1, 2, 3, 8} {
		obj := &image.Object{}
		if err := AddPool(obj, copies); err != nil {
			t.Fatalf("copies=%d: %v", copies, err)
		}
		img, err := image.Link(obj, image.Layout{})
		if err != nil {
			t.Fatalf("copies=%d: link: %v", copies, err)
		}
		sym, err := img.Lookup(PoolFuncName)
		if err != nil {
			t.Fatalf("copies=%d: %v", copies, err)
		}
		if int(sym.Size) != PoolSize(copies) {
			t.Errorf("copies=%d: linked pool is %d bytes, PoolSize says %d",
				copies, sym.Size, PoolSize(copies))
		}
	}
	// Values below 1 clamp to a single copy.
	if PoolSize(0) != PoolSize(1) || PoolSize(-3) != PoolSize(1) {
		t.Error("PoolSize does not clamp sub-1 replication to 1")
	}
}

// TestPoolBytesBoundaries walks the linked pool byte-by-byte: it must
// open with the fall-through guard ret, every replicated gadget must
// sit at the exact offset the size arithmetic predicts, and each must
// end with a near ret — the invariant that makes every pool entry a
// scannable gadget.
func TestPoolBytesBoundaries(t *testing.T) {
	const copies = 2
	obj := &image.Object{}
	if err := AddPool(obj, copies); err != nil {
		t.Fatal(err)
	}
	img, err := image.Link(obj, image.Layout{})
	if err != nil {
		t.Fatal(err)
	}
	sym, err := img.Lookup(PoolFuncName)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := img.ReadAt(sym.Addr, sym.Size)
	if err != nil {
		t.Fatal(err)
	}
	if raw[0] != 0xC3 {
		t.Fatalf("pool does not open with a guard ret: % x", raw[:4])
	}
	off := 1
	for c := 0; c < copies; c++ {
		for i, g := range poolGadgets {
			end := off + len(g)
			if end > len(raw) {
				t.Fatalf("copy %d gadget %d overruns pool: offset %d + %d > %d",
					c, i, off, len(g), len(raw))
			}
			for j, b := range g {
				if raw[off+j] != b {
					t.Fatalf("copy %d gadget %d: byte %d = %#x, want %#x",
						c, i, j, raw[off+j], b)
				}
			}
			if raw[end-1] != 0xC3 {
				t.Fatalf("copy %d gadget %d does not end in ret", c, i)
			}
			off = end
		}
	}
	if off != len(raw) {
		t.Errorf("pool has %d trailing bytes after last gadget", len(raw)-off)
	}
}

// TestLoaderFrameBoundary pins the loader's frame validation at its
// boundary: a frame of exactly NumParams+1 words (args + return slot)
// is the minimum accepted, one fewer is rejected.
func TestLoaderFrameBoundary(t *testing.T) {
	cases := []struct {
		name       string
		params     int
		frameWords int
		ok         bool
	}{
		{"no params, return slot only", 0, 1, true},
		{"no params, empty frame", 0, 0, false},
		{"two params, minimum frame", 2, 3, true},
		{"two params, one word short", 2, 2, false},
		{"negative frame", 0, -1, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Loader(LoaderConfig{
				FuncName:   "verif",
				NumParams:  tc.params,
				FrameWords: tc.frameWords,
			})
			if (err == nil) != tc.ok {
				t.Errorf("Loader(params=%d, frame=%d) err=%v, want ok=%t",
					tc.params, tc.frameWords, err, tc.ok)
			}
		})
	}
}

// TestLoaderExitPtrIndexZero checks the degenerate exit-pointer slot:
// index 0 must patch the chain's first word (displacement 0), not
// fall over on the boundary.
func TestLoaderExitPtrIndexZero(t *testing.T) {
	fn, err := Loader(LoaderConfig{
		FuncName:     "verif",
		FrameWords:   1,
		ExitPtrIndex: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, it := range fn.Items {
		if it.Ref.Sym == ChainSym("verif") && it.Ref.Slot == image.RefDisp {
			found = true
			if it.Ref.Add != 0 {
				t.Errorf("exit-ptr displacement = %d, want 0", it.Ref.Add)
			}
		}
	}
	if !found {
		t.Error("loader has no exit-ptr store into the chain symbol")
	}
}

// TestReserveDataSizes covers reservation edge cases: a zero-byte
// chain (valid placeholder before compilation), resizing an existing
// reservation, and the frame always holding FrameWords dwords.
func TestReserveDataSizes(t *testing.T) {
	obj := &image.Object{}
	if err := ReserveData(obj, "f", 0, 1); err != nil {
		t.Fatalf("zero-byte chain reservation: %v", err)
	}
	if err := ReserveData(obj, "f", 4096, 17); err != nil {
		t.Fatalf("resize: %v", err)
	}
	var chainLen, frameLen int = -1, -1
	for _, d := range obj.Data {
		switch d.Name {
		case ChainSym("f"):
			chainLen = len(d.Bytes)
		case FrameSym("f"):
			frameLen = len(d.Bytes)
		}
	}
	if chainLen != 4096 {
		t.Errorf("chain reservation = %d bytes, want 4096", chainLen)
	}
	if frameLen != 4*17 {
		t.Errorf("frame reservation = %d bytes, want %d", frameLen, 4*17)
	}
}
