package chain

import (
	"fmt"

	"parallax/internal/image"
	"parallax/internal/x86"
)

// Symbol naming for per-function chain artifacts.

// ChainSym returns the data symbol holding fn's compiled chain words.
func ChainSym(fn string) string { return "..parallax.chain." + fn }

// FrameSym returns the data symbol holding fn's chain scratch frame.
func FrameSym(fn string) string { return "..parallax.frame." + fn }

// LoaderConfig describes the loader stub for one verification
// function.
type LoaderConfig struct {
	// FuncName is the protected function; the loader replaces its
	// body, so every existing call site transparently runs the chain.
	FuncName string
	// NumParams is the function's cdecl argument count.
	NumParams int
	// FrameWords is the scratch frame length in dwords (virtual
	// registers + return slot); the return slot is the last word.
	FrameWords int
	// ExitPtrIndex is the chain word the loader must point back into
	// the caller's stack before each run (§V-A epilogue).
	ExitPtrIndex int
	// Decoder optionally names a decode routine invoked before the
	// pivot. Dynamic chain generation (xor/RC4/probabilistic, §V-B)
	// installs its regeneration stub here; empty means a static chain.
	Decoder string
	// Checker optionally names a routine called before every pivot to
	// checksum the chain words (§VI-C: verification code lives in data
	// memory, so traditional checksumming protects it without Wurster
	// exposure).
	Checker string
}

// Loader builds the x86 stub that bootstraps a chain, per §V-A:
//
//	pushad                          ; save registers
//	[call decoder]                  ; optional dynamic regeneration
//	mov eax, [esp+36+4i]            ; marshal cdecl args
//	mov [frame+4i], eax
//	push offset resume              ; resume address on the stack
//	mov [chain+4*exit], esp         ; patch epilogue pointer (S)
//	mov esp, chain                  ; pivot
//	ret                             ; enter first gadget
//	resume:
//	popad                           ; restore registers
//	mov eax, [frame+ret_slot]       ; chain return value
//	ret
func Loader(cfg LoaderConfig) (*image.Func, error) {
	if cfg.FuncName == "" {
		return nil, fmt.Errorf("chain: loader needs a function name")
	}
	if cfg.FrameWords < cfg.NumParams+1 {
		return nil, fmt.Errorf("chain: frame of %d words cannot hold %d params",
			cfg.FrameWords, cfg.NumParams)
	}
	chainSym := ChainSym(cfg.FuncName)
	frameSym := FrameSym(cfg.FuncName)

	f := &image.Func{Name: cfg.FuncName}
	emit := func(it image.Item) { f.Items = append(f.Items, it) }

	emit(image.InstItem(x86.Inst{Op: x86.PUSHAD, W: 32}))
	if cfg.Decoder != "" {
		emit(image.Item{
			Inst: x86.Inst{Op: x86.CALL, W: 32},
			Ref:  image.Ref{Slot: image.RefTarget, Sym: cfg.Decoder},
		})
	}
	if cfg.Checker != "" {
		emit(image.Item{
			Inst: x86.Inst{Op: x86.CALL, W: 32},
			Ref:  image.Ref{Slot: image.RefTarget, Sym: cfg.Checker},
		})
	}
	// Copy arguments: after pushad (32 bytes) plus the return address,
	// argument i sits at [esp + 36 + 4i].
	for i := 0; i < cfg.NumParams; i++ {
		emit(image.InstItem(x86.Inst{
			Op: x86.MOV, W: 32,
			Dst: x86.RegOp(x86.EAX),
			Src: x86.MemOp(x86.ESP, int32(36+4*i)),
		}))
		emit(image.Item{
			Inst: x86.Inst{Op: x86.MOV, W: 32, Dst: x86.MemAbs(0), Src: x86.RegOp(x86.EAX)},
			Ref:  image.Ref{Slot: image.RefDisp, Sym: frameSym, Add: int32(4 * i)},
		})
	}
	// Stash the resume address and let the chain's final pop-esp find
	// it: the chain's exit word receives the address of the stack slot
	// holding &resume.
	emit(image.Item{
		Inst: x86.Inst{Op: x86.PUSH, W: 32, Dst: x86.ImmOp(0)},
		Ref:  image.Ref{Slot: image.RefImm, Sym: ".resume"},
	})
	emit(image.Item{
		Inst: x86.Inst{Op: x86.MOV, W: 32, Dst: x86.MemAbs(0), Src: x86.RegOp(x86.ESP)},
		Ref:  image.Ref{Slot: image.RefDisp, Sym: chainSym, Add: int32(4 * cfg.ExitPtrIndex)},
	})
	emit(image.Item{
		Inst: x86.Inst{Op: x86.MOV, W: 32, Dst: x86.RegOp(x86.ESP), Src: x86.ImmOp(0)},
		Ref:  image.Ref{Slot: image.RefImm, Sym: chainSym},
	})
	emit(image.InstItem(x86.Inst{Op: x86.RET, W: 32}))

	// Resume point: restore state and surface the return value.
	emit(image.Item{
		Label: ".resume",
		Inst:  x86.Inst{Op: x86.POPAD, W: 32},
	})
	emit(image.Item{
		Inst: x86.Inst{Op: x86.MOV, W: 32, Dst: x86.RegOp(x86.EAX), Src: x86.MemAbs(0)},
		Ref:  image.Ref{Slot: image.RefDisp, Sym: frameSym, Add: int32(4 * (cfg.FrameWords - 1))},
	})
	emit(image.InstItem(x86.Inst{Op: x86.RET, W: 32}))
	return f, nil
}

// ReserveData adds (or resizes) the chain and frame data symbols for a
// function. Chain words are installed post-link with Install.
func ReserveData(obj *image.Object, fn string, chainBytes, frameWords int) error {
	cs := ChainSym(fn)
	fs := FrameSym(fn)
	for _, name := range []string{cs, fs} {
		for i, d := range obj.Data {
			if d.Name == name {
				obj.Data = append(obj.Data[:i], obj.Data[i+1:]...)
				break
			}
		}
	}
	if err := obj.AddData(&image.DataSym{
		Name:  cs,
		Bytes: make([]byte, chainBytes),
		Align: 4,
	}); err != nil {
		return err
	}
	return obj.AddData(&image.DataSym{
		Name:  fs,
		Bytes: make([]byte, 4*frameWords),
		Align: 4,
	})
}
