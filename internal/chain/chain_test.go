package chain

import (
	"strings"
	"testing"

	"parallax/internal/gadget"
	"parallax/internal/image"
	"parallax/internal/x86"
)

func poolCatalog(t *testing.T, copies int) *gadget.Catalog {
	t.Helper()
	obj := &image.Object{}
	if err := AddPool(obj, copies); err != nil {
		t.Fatal(err)
	}
	img, err := image.Link(obj, image.Layout{})
	if err != nil {
		t.Fatal(err)
	}
	return gadget.Scan(img, gadget.ScanConfig{})
}

// TestPoolProvidesCanonicalBasis verifies the fallback pool contains a
// usable gadget for every spec the ROP compiler can request.
func TestPoolProvidesCanonicalBasis(t *testing.T) {
	cat := poolCatalog(t, 1)
	any := x86.Reg(x86.NumRegs)
	required := []struct {
		kind     gadget.Kind
		dst, src x86.Reg
	}{
		{gadget.KindPopReg, x86.EAX, any},
		{gadget.KindPopReg, x86.EBX, any},
		{gadget.KindPopReg, x86.ECX, any},
		{gadget.KindMovReg, x86.ECX, x86.EAX},
		{gadget.KindMovReg, x86.EBX, x86.ECX},
		{gadget.KindMovReg, x86.EBX, x86.EAX},
		{gadget.KindMovReg, x86.EAX, x86.ECX},
		{gadget.KindMovReg, x86.EAX, x86.EDX},
		{gadget.KindLoad, x86.EAX, x86.EBX},
		{gadget.KindStore, x86.EBX, x86.EAX},
		{gadget.KindAddReg, x86.EAX, x86.EBX},
		{gadget.KindSubReg, x86.EAX, x86.EBX},
		{gadget.KindAndReg, x86.EAX, x86.EBX},
		{gadget.KindOrReg, x86.EAX, x86.EBX},
		{gadget.KindXorReg, x86.EAX, x86.EBX},
		{gadget.KindNegReg, x86.EAX, any},
		{gadget.KindNotReg, x86.EAX, any},
		{gadget.KindMulReg, x86.EAX, x86.EBX},
		{gadget.KindShlCL, x86.EAX, any},
		{gadget.KindShrCL, x86.EAX, any},
		{gadget.KindSarCL, x86.EAX, any},
		{gadget.KindUDivMod, any, x86.EBX},
		{gadget.KindSDivMod, any, x86.EBX},
		{gadget.KindAddEsp, any, x86.EAX},
		{gadget.KindPopEsp, any, any},
	}
	for _, req := range required {
		found := cat.Find(req.kind, req.dst, req.src)
		if len(found) == 0 {
			t.Errorf("pool lacks %v(%v,%v)", req.kind, req.dst, req.src)
		}
	}
}

// TestPoolReplicationWidensClasses checks a doubled pool doubles the
// interchangeable-gadget classes probabilistic generation draws from.
func TestPoolReplicationWidensClasses(t *testing.T) {
	one := poolCatalog(t, 1)
	two := poolCatalog(t, 2)
	popsOne := len(one.Find(gadget.KindPopReg, x86.EAX, x86.NumRegs))
	popsTwo := len(two.Find(gadget.KindPopReg, x86.EAX, x86.NumRegs))
	if popsTwo < 2*popsOne {
		t.Errorf("replication did not widen: %d -> %d", popsOne, popsTwo)
	}
	if PoolSize(2) <= PoolSize(1) {
		t.Error("PoolSize not monotonic")
	}
}

func TestAddPoolRejectsDuplicate(t *testing.T) {
	obj := &image.Object{}
	if err := AddPool(obj, 1); err != nil {
		t.Fatal(err)
	}
	if err := AddPool(obj, 1); err == nil {
		t.Error("second AddPool succeeded")
	}
}

// TestLoaderStructure decodes the generated loader stub and checks the
// §V-A sequence: pushad, arg copies, push resume, exit-ptr patch,
// pivot, ret, then popad and the return-value load at the resume
// point.
func TestLoaderStructure(t *testing.T) {
	fn, err := Loader(LoaderConfig{
		FuncName:     "verif",
		NumParams:    2,
		FrameWords:   10,
		ExitPtrIndex: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	obj := &image.Object{Entry: "verif"}
	if err := obj.AddFunc(fn); err != nil {
		t.Fatal(err)
	}
	if err := ReserveData(obj, "verif", 4*50, 10); err != nil {
		t.Fatal(err)
	}
	img, err := image.Link(obj, image.Layout{})
	if err != nil {
		t.Fatal(err)
	}

	sym := img.MustSymbol("verif")
	text := img.Text()
	code := text.Data[sym.Addr-text.Addr : sym.Addr+sym.Size-text.Addr]
	insts := x86.Disassemble(code, sym.Addr)

	if insts[0].Op != x86.PUSHAD {
		t.Errorf("loader starts with %v, want pushad", insts[0])
	}
	var sawPivot, sawPopad, sawPushResume, sawExitPatch bool
	chainSym := img.MustSymbol(ChainSym("verif"))
	frameSym := img.MustSymbol(FrameSym("verif"))
	for _, in := range insts {
		if in.Op == x86.MOV && in.Dst.IsReg(x86.ESP) && in.Src.Kind == x86.KImm &&
			uint32(in.Src.Imm) == chainSym.Addr {
			sawPivot = true
		}
		if in.Op == x86.POPAD {
			sawPopad = true
		}
		if in.Op == x86.PUSH && in.Dst.Kind == x86.KImm &&
			uint32(in.Dst.Imm) > sym.Addr && uint32(in.Dst.Imm) < sym.Addr+sym.Size {
			sawPushResume = true
		}
		if in.Op == x86.MOV && in.Dst.Kind == x86.KMem &&
			uint32(in.Dst.Disp) == chainSym.Addr+4*42 && in.Src.IsReg(x86.ESP) {
			sawExitPatch = true
		}
	}
	if !sawPivot || !sawPopad || !sawPushResume || !sawExitPatch {
		t.Errorf("loader missing pieces: pivot=%t popad=%t resume=%t exitpatch=%t",
			sawPivot, sawPopad, sawPushResume, sawExitPatch)
	}
	// Frame and chain buffers sized as requested.
	if frameSym.Size != 40 {
		t.Errorf("frame size %d, want 40", frameSym.Size)
	}
	if chainSym.Size != 200 {
		t.Errorf("chain size %d, want 200", chainSym.Size)
	}
}

func TestLoaderWithDecoder(t *testing.T) {
	fn, err := Loader(LoaderConfig{
		FuncName:   "verif",
		FrameWords: 4,
		Decoder:    "dec",
	})
	if err != nil {
		t.Fatal(err)
	}
	// The first reference must be a call to the decoder, before the
	// pivot.
	foundCall := false
	for _, it := range fn.Items {
		if it.Ref.Slot == image.RefTarget && it.Ref.Sym == "dec" {
			foundCall = true
			break
		}
		if it.Inst.Op == x86.RET {
			break
		}
	}
	if !foundCall {
		t.Error("decoder call missing or after the pivot")
	}
}

func TestLoaderErrors(t *testing.T) {
	if _, err := Loader(LoaderConfig{FrameWords: 4}); err == nil {
		t.Error("Loader accepted empty function name")
	}
	if _, err := Loader(LoaderConfig{FuncName: "f", NumParams: 5, FrameWords: 3}); err == nil {
		t.Error("Loader accepted frame smaller than params")
	}
}

func TestReserveDataReplaces(t *testing.T) {
	obj := &image.Object{}
	obj.Funcs = append(obj.Funcs, &image.Func{Name: "f",
		Items: []image.Item{image.InstItem(x86.Inst{Op: x86.RET, W: 32})}})
	if err := ReserveData(obj, "f", 8, 4); err != nil {
		t.Fatal(err)
	}
	if err := ReserveData(obj, "f", 16, 4); err != nil {
		t.Fatal(err)
	}
	d := obj.DataSym(ChainSym("f"))
	if d == nil || len(d.Bytes) != 16 {
		t.Fatalf("chain buffer not resized: %+v", d)
	}
}

func TestSymbolNames(t *testing.T) {
	if !strings.HasPrefix(ChainSym("x"), "..parallax.") ||
		!strings.HasPrefix(FrameSym("x"), "..parallax.") {
		t.Error("parallax-internal symbols must carry the .. prefix")
	}
}
