// Package chain provides the runtime scaffolding around compiled ROP
// chains: the fallback gadget pool, the loader stub that bootstraps a
// chain (§V-A), and chain installation into a linked image.
package chain

import (
	"fmt"

	"parallax/internal/image"
)

// PoolFuncName names the fallback gadget pool function inserted into
// protected binaries.
const PoolFuncName = "..parallax.pool"

// poolGadgets is the canonical gadget basis the ROP compiler relies
// on. Each entry is an independent byte sequence ending in ret; the
// pool is never reached by the program's own control flow.
//
// Several specs appear in multiple encodings so that probabilistic
// chain generation (§V-B) has distinct interchangeable gadgets to
// choose between.
var poolGadgets = [][]byte{
	// Constant loaders: pop r; ret.
	{0x58, 0xC3},       // pop eax
	{0x59, 0xC3},       // pop ecx
	{0x5A, 0xC3},       // pop edx
	{0x5B, 0xC3},       // pop ebx
	{0x5E, 0xC3},       // pop esi
	{0x5F, 0xC3},       // pop edi
	{0x58, 0x90, 0xC3}, // pop eax; nop — equivalent variant
	{0x5B, 0x90, 0xC3}, // pop ebx; nop
	{0x90, 0x58, 0xC3}, // nop; pop eax
	{0x90, 0x5B, 0xC3}, // nop; pop ebx

	// Register moves.
	{0x89, 0xC1, 0xC3},       // mov ecx, eax
	{0x89, 0xCB, 0xC3},       // mov ebx, ecx
	{0x89, 0xC3, 0xC3},       // mov ebx, eax
	{0x89, 0xC8, 0xC3},       // mov eax, ecx
	{0x89, 0xD0, 0xC3},       // mov eax, edx
	{0x89, 0xD8, 0xC3},       // mov eax, ebx
	{0x8D, 0x01, 0xC3},       // lea eax, [ecx] — mov eax, ecx variant
	{0x8D, 0x0B, 0xC3},       // lea ecx, [ebx] — mov ecx, ebx variant
	{0x89, 0xC1, 0x90, 0xC3}, // mov ecx, eax; nop — variant
	{0x89, 0xCB, 0x90, 0xC3}, // mov ebx, ecx; nop — variant
	{0x89, 0xC3, 0x90, 0xC3}, // mov ebx, eax; nop — variant

	// Memory access.
	{0x8B, 0x03, 0xC3}, // mov eax, [ebx]   (load)
	{0x89, 0x03, 0xC3}, // mov [ebx], eax   (store)

	// ALU.
	{0x01, 0xD8, 0xC3},             // add eax, ebx
	{0x29, 0xD8, 0xC3},             // sub eax, ebx
	{0x21, 0xD8, 0xC3},             // and eax, ebx
	{0x09, 0xD8, 0xC3},             // or  eax, ebx
	{0x31, 0xD8, 0xC3},             // xor eax, ebx
	{0x01, 0xD8, 0x90, 0xC3},       // add eax, ebx; nop — variant
	{0x31, 0xD8, 0x90, 0xC3},       // xor eax, ebx; nop — variant
	{0xF7, 0xD8, 0xC3},             // neg eax
	{0xF7, 0xD0, 0xC3},             // not eax
	{0x0F, 0xAF, 0xC3, 0xC3},       // imul eax, ebx
	{0xD3, 0xE0, 0xC3},             // shl eax, cl
	{0xD3, 0xE8, 0xC3},             // shr eax, cl
	{0xD3, 0xF8, 0xC3},             // sar eax, cl
	{0x31, 0xD2, 0xF7, 0xF3, 0xC3}, // xor edx,edx; div ebx
	{0x99, 0xF7, 0xFB, 0xC3},       // cdq; idiv ebx

	// Chain control.
	{0x01, 0xC4, 0xC3}, // add esp, eax (branch pivot)
	{0x5C, 0xC3},       // pop esp      (epilogue)
}

// Pool returns the fallback gadget pool as a linkable function. The
// copies parameter replicates the whole basis (at distinct addresses),
// widening each equivalence class for probabilistic generation; values
// below 1 mean 1.
func Pool(copies int) *image.Func {
	if copies < 1 {
		copies = 1
	}
	f := &image.Func{Name: PoolFuncName, Align: 4}
	// A leading ret guards against stray fall-through into the pool.
	f.Items = append(f.Items, image.RawItem(0xC3))
	for c := 0; c < copies; c++ {
		for _, g := range poolGadgets {
			f.Items = append(f.Items, image.RawItem(g...))
		}
	}
	return f
}

// PoolSize returns the pool's byte length for the given replication
// factor.
func PoolSize(copies int) int {
	if copies < 1 {
		copies = 1
	}
	n := 1
	for _, g := range poolGadgets {
		n += len(g)
	}
	return 1 + (n-1)*copies
}

// AddPool appends the fallback pool to an object, failing on duplicate
// insertion.
func AddPool(obj *image.Object, copies int) error {
	if obj.Func(PoolFuncName) != nil {
		return fmt.Errorf("chain: object already has a gadget pool")
	}
	return obj.AddFunc(Pool(copies))
}
