package x86

import (
	"errors"
	"testing"
	"testing/quick"
)

// TestDecodeGolden checks decoding of hand-verified byte sequences
// against their expected disassembly text.
func TestDecodeGolden(t *testing.T) {
	tests := []struct {
		name string
		b    []byte
		addr uint32
		want string
	}{
		{"push ebp", []byte{0x55}, 0, "push ebp"},
		{"mov ebp,esp", []byte{0x89, 0xE5}, 0, "mov ebp,esp"},
		{"sub esp,24", []byte{0x83, 0xEC, 0x18}, 0, "sub esp,0x18"},
		{"mov eax,0", []byte{0xB8, 0x00, 0x00, 0x00, 0x00}, 0, "mov eax,0x0"},
		{"mov [esp],eax", []byte{0x89, 0x04, 0x24}, 0, "mov dword [esp],eax"},
		{"ret", []byte{0xC3}, 0, "ret"},
		{"retf", []byte{0xCB}, 0, "retf"},
		{"ret imm", []byte{0xC2, 0x08, 0x00}, 0, "ret 0x8"},
		{"leave", []byte{0xC9}, 0, "leave"},
		{"nop", []byte{0x90}, 0, "nop"},
		{"int3", []byte{0xCC}, 0, "int3"},
		{"int 0x80", []byte{0xCD, 0x80}, 0, "int 0x80"},
		{"call rel", []byte{0xE8, 0x05, 0x00, 0x00, 0x00}, 0x1000, "call 0x100a"},
		{"call neg rel", []byte{0xE8, 0xF6, 0xFF, 0xFF, 0xFF}, 0x1000, "call 0xffb"},
		{"jmp rel8", []byte{0xEB, 0x10}, 0x2000, "jmp 0x2012"},
		{"jmp rel32", []byte{0xE9, 0x00, 0x01, 0x00, 0x00}, 0x2000, "jmp 0x2105"},
		{"jne rel8", []byte{0x75, 0x06}, 0x100, "jne 0x108"},
		{"js rel8", []byte{0x78, 0xFE}, 0x100, "js 0x100"},
		{"je rel32", []byte{0x0F, 0x84, 0x10, 0x00, 0x00, 0x00}, 0, "je 0x16"},
		{"lea eax,[esp+4]", []byte{0x8D, 0x44, 0x24, 0x04}, 0, "lea eax,[esp+0x4]"},
		{"lea sib full", []byte{0x8D, 0x84, 0x8A, 0x10, 0x00, 0x00, 0x00}, 0,
			"lea eax,[edx+ecx*4+0x10]"},
		{"movzx", []byte{0x0F, 0xB6, 0x45, 0xFF}, 0, "movzx eax,byte(ignored)"},
		{"div ecx", []byte{0xF7, 0xF1}, 0, "div ecx"},
		{"idiv mem", []byte{0xF7, 0x3D, 0x00, 0x10, 0x00, 0x00}, 0, "idiv dword [0x1000]"},
		{"shl eax,4", []byte{0xC1, 0xE0, 0x04}, 0, "shl eax,0x4"},
		{"sar eax,1", []byte{0xD1, 0xF8}, 0, "sar eax,0x1"},
		{"shr ebx,cl", []byte{0xD3, 0xEB}, 0, "shr ebx,cl"},
		{"add [ecx],eax", []byte{0x01, 0x01}, 0, "add dword [ecx],eax"},
		{"add al,0", []byte{0x04, 0x00}, 0, "add al,0x0"},
		{"add [eax],al", []byte{0x00, 0x00}, 0, "add byte [eax],al"},
		{"add al,ch", []byte{0x00, 0xE8}, 0, "add al,ch"},
		{"add bl,ch", []byte{0x00, 0xEB}, 0, "add bl,ch"},
		{"xor eax,eax", []byte{0x31, 0xC0}, 0, "xor eax,eax"},
		{"cmp eax,imm", []byte{0x3D, 0x39, 0x05, 0x00, 0x00}, 0, "cmp eax,0x539"},
		{"test eax,eax", []byte{0x85, 0xC0}, 0, "test eax,eax"},
		{"inc eax", []byte{0x40}, 0, "inc eax"},
		{"dec edi", []byte{0x4F}, 0, "dec edi"},
		{"push imm8", []byte{0x6A, 0x01}, 0, "push 0x1"},
		{"push imm32", []byte{0x68, 0x00, 0x02, 0x00, 0x00}, 0, "push 0x200"},
		{"push imm8 signext", []byte{0x6A, 0xFF}, 0, "push 0xffffffff"},
		{"pop ebx", []byte{0x5B}, 0, "pop ebx"},
		{"pushad", []byte{0x60}, 0, "pushad"},
		{"popad", []byte{0x61}, 0, "popad"},
		{"pushfd", []byte{0x9C}, 0, "pushfd"},
		{"popfd", []byte{0x9D}, 0, "popfd"},
		{"lahf", []byte{0x9F}, 0, "lahf"},
		{"sahf", []byte{0x9E}, 0, "sahf"},
		{"cdq", []byte{0x99}, 0, "cdq"},
		{"cwde", []byte{0x98}, 0, "cwde"},
		{"cwd", []byte{0x66, 0x99}, 0, "cwd"},
		{"cbw", []byte{0x66, 0x98}, 0, "cbw"},
		{"sete al", []byte{0x0F, 0x94, 0xC0}, 0, "sete al"},
		{"setl dl", []byte{0x0F, 0x9C, 0xC2}, 0, "setl dl"},
		{"imul ebx,ecx", []byte{0x0F, 0xAF, 0xD9}, 0, "imul ebx,ecx"},
		{"imul 3op imm8", []byte{0x6B, 0xC3, 0x07}, 0, "imul eax,ebx,0x7"},
		{"imul 3op imm32", []byte{0x69, 0xC3, 0x00, 0x01, 0x00, 0x00}, 0,
			"imul eax,ebx,0x100"},
		{"neg eax", []byte{0xF7, 0xD8}, 0, "neg eax"},
		{"not ecx", []byte{0xF7, 0xD1}, 0, "not ecx"},
		{"xchg eax,ebx short", []byte{0x93}, 0, "xchg eax,ebx"},
		{"mov al,imm", []byte{0xB0, 0x41}, 0, "mov al,0x41"},
		{"mov ch,imm", []byte{0xB5, 0x42}, 0, "mov ch,0x42"},
		{"mov moffs load", []byte{0xA1, 0x00, 0x20, 0x00, 0x00}, 0, "mov eax,dword(ignored)"},
		{"mov mem imm", []byte{0xC7, 0x45, 0xF8, 0x0A, 0x00, 0x00, 0x00}, 0,
			"mov dword [ebp-0x8],0xa"},
		{"call indirect reg", []byte{0xFF, 0xD0}, 0, "call eax"},
		{"jmp indirect mem", []byte{0xFF, 0x25, 0x00, 0x10, 0x00, 0x00}, 0,
			"jmp dword [0x1000]"},
		{"push mem", []byte{0xFF, 0x35, 0x44, 0x33, 0x22, 0x11}, 0, "push dword [0x11223344]"},
		{"pop mem", []byte{0x8F, 0x00}, 0, "pop dword [eax]"},
		{"rep movsd", []byte{0xF3, 0xA5}, 0, "rep movsd"},
		{"rep stosb", []byte{0xF3, 0xAA}, 0, "rep stosb"},
		{"hlt", []byte{0xF4}, 0, "hlt"},
		{"clc", []byte{0xF8}, 0, "clc"},
		{"std", []byte{0xFD}, 0, "std"},
		{"sar mem8", []byte{0xC0, 0x79, 0x07, 0x8B}, 0, "sar byte [ecx+0x7],0x8b"},
		{"16-bit add", []byte{0x66, 0x01, 0xC3}, 0, "add bx,ax"},
		{"seg prefix ignored", []byte{0x65, 0x8B, 0x00}, 0, "mov eax,dword [eax]"},
		{"multibyte nop", []byte{0x0F, 0x1F, 0x44, 0x00, 0x00}, 0, "nop"},
		{"ebp base no disp", []byte{0x8B, 0x45, 0x00}, 0, "mov eax,dword [ebp]"},
		{"abs without base", []byte{0x8B, 0x1D, 0x78, 0x56, 0x34, 0x12}, 0,
			"mov ebx,dword [0x12345678]"},
		{"index no base", []byte{0x8B, 0x04, 0x8D, 0x00, 0x10, 0x00, 0x00}, 0,
			"mov eax,[ecx*4+0x1000](ignored)"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			inst, err := Decode(tt.b, tt.addr)
			if err != nil {
				t.Fatalf("Decode(% x) error: %v", tt.b, err)
			}
			if inst.Len != len(tt.b) {
				t.Errorf("Len = %d, want %d", inst.Len, len(tt.b))
			}
			// A few entries only pin down structure, not exact text.
			switch tt.name {
			case "movzx":
				if inst.Op != MOVZX || inst.W != 8 || !inst.Dst.IsReg(EAX) {
					t.Errorf("got %+v", inst)
				}
			case "mov moffs load":
				if inst.Op != MOV || !inst.Dst.IsReg(EAX) || inst.Src.Kind != KMem ||
					inst.Src.Disp != 0x2000 || inst.Src.HasBase {
					t.Errorf("got %+v", inst)
				}
			case "index no base":
				if inst.Src.HasBase || !inst.Src.HasIndex || inst.Src.Scale != 4 ||
					inst.Src.Disp != 0x1000 {
					t.Errorf("got %+v", inst)
				}
			default:
				if got := inst.String(); got != tt.want {
					t.Errorf("String() = %q, want %q", got, tt.want)
				}
			}
		})
	}
}

func TestDecodeErrors(t *testing.T) {
	tests := []struct {
		name string
		b    []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"truncated modrm", []byte{0x8B}, ErrTruncated},
		{"truncated imm", []byte{0xB8, 0x01, 0x02}, ErrTruncated},
		{"truncated sib", []byte{0x8B, 0x04}, ErrTruncated},
		{"truncated disp", []byte{0x8B, 0x80, 0x01}, ErrTruncated},
		{"truncated two-byte", []byte{0x0F}, ErrTruncated},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Decode(tt.b, 0)
			if !errors.Is(err, tt.want) {
				t.Errorf("Decode error = %v, want %v", err, tt.want)
			}
		})
	}

	t.Run("unsupported", func(t *testing.T) {
		for _, b := range [][]byte{
			{0x27},       // daa
			{0x0F, 0x05}, // syscall
			{0xD8, 0xC0}, // x87
			{0x67, 0x8B, 0x00},
		} {
			if _, err := Decode(b, 0); err == nil {
				t.Errorf("Decode(% x) succeeded, want error", b)
			}
		}
	})

	t.Run("too long", func(t *testing.T) {
		b := make([]byte, 20)
		for i := range b {
			b[i] = 0x66 // endless prefixes
		}
		if _, err := Decode(b, 0); !errors.Is(err, ErrTooLong) {
			t.Errorf("Decode error = %v, want ErrTooLong", err)
		}
	})
}

// TestDecodeNeverPanics drives the decoder with random byte soup; any
// outcome other than a panic is acceptable. This mirrors what the gadget
// scanner does at every byte offset of a text section.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(b []byte, addr uint32) bool {
		inst, err := Decode(b, addr)
		if err == nil && (inst.Len <= 0 || inst.Len > maxInstLen || inst.Len > len(b)) {
			t.Logf("bad length %d for % x", inst.Len, b)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestDisassembleProgress(t *testing.T) {
	// Junk interleaved with valid instructions must still advance.
	code := []byte{0x55, 0x27, 0x89, 0xE5, 0xD8, 0xC3, 0xC3}
	insts := Disassemble(code, 0x1000)
	total := 0
	for _, in := range insts {
		if in.Len <= 0 {
			t.Fatalf("non-positive length in %v", in)
		}
		total += in.Len
	}
	if total != len(code) {
		t.Errorf("disassembly covered %d bytes, want %d", total, len(code))
	}
	if insts[0].Op != PUSH || insts[1].Op != BAD {
		t.Errorf("unexpected leading instructions: %v %v", insts[0], insts[1])
	}
}

func TestCondNegate(t *testing.T) {
	pairs := [][2]Cond{{CondE, CondNE}, {CondB, CondAE}, {CondL, CondGE}, {CondS, CondNS}}
	for _, p := range pairs {
		if p[0].Negate() != p[1] || p[1].Negate() != p[0] {
			t.Errorf("Negate broken for %v/%v", p[0], p[1])
		}
	}
}
