package x86_test

import (
	"bytes"
	"testing"

	"parallax/internal/codegen"
	"parallax/internal/corpus"
	"parallax/internal/image"
	"parallax/internal/x86"
)

// TestReencodeRealBinaries re-encodes every instruction of every
// corpus binary in place and requires byte-identical output: the
// encoder is the exact inverse of the decoder on real compiler output,
// which is what makes lifting and relinking loss-free.
func TestReencodeRealBinaries(t *testing.T) {
	for _, p := range corpus.All() {
		t.Run(p.Name, func(t *testing.T) {
			img, err := codegen.Build(p.Build(), image.Layout{})
			if err != nil {
				t.Fatal(err)
			}
			text := img.Text()
			addr := text.Addr
			checked := 0
			for int(addr-text.Addr) < len(text.Data) {
				off := addr - text.Addr
				inst, err := x86.Decode(text.Data[off:], addr)
				if err != nil {
					addr++ // padding or data byte
					continue
				}
				enc, err := x86.Encode(inst, addr)
				if err != nil {
					t.Fatalf("%#x: cannot re-encode %v: %v", addr, inst, err)
				}
				if !bytes.Equal(enc, text.Data[off:off+uint32(inst.Len)]) {
					t.Fatalf("%#x: %v re-encodes to % x, want % x",
						addr, inst, enc, text.Data[off:off+uint32(inst.Len)])
				}
				checked++
				addr += uint32(inst.Len)
			}
			if checked < 100 {
				t.Fatalf("only %d instructions checked", checked)
			}
		})
	}
}
