package x86

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeGolden(t *testing.T) {
	tests := []struct {
		name string
		inst Inst
		addr uint32
		want []byte
	}{
		{"push ebp", Inst{Op: PUSH, W: 32, Dst: RegOp(EBP)}, 0, []byte{0x55}},
		{"mov ebp,esp", Inst{Op: MOV, W: 32, Dst: RegOp(EBP), Src: RegOp(ESP)}, 0,
			[]byte{0x89, 0xE5}},
		{"sub esp,0x18", Inst{Op: SUB, W: 32, Dst: RegOp(ESP), Src: ImmOp(0x18)}, 0,
			[]byte{0x83, 0xEC, 0x18}},
		{"add esp,0x1000", Inst{Op: ADD, W: 32, Dst: RegOp(ESP), Src: ImmOp(0x1000)}, 0,
			[]byte{0x81, 0xC4, 0x00, 0x10, 0x00, 0x00}},
		{"ret", Inst{Op: RET, W: 32}, 0, []byte{0xC3}},
		{"retf", Inst{Op: RETF, W: 32}, 0, []byte{0xCB}},
		{"xor eax,eax", Inst{Op: XOR, W: 32, Dst: RegOp(EAX), Src: RegOp(EAX)}, 0,
			[]byte{0x31, 0xC0}},
		{"mov eax,imm", Inst{Op: MOV, W: 32, Dst: RegOp(EAX), Src: ImmOp(0x1234)}, 0,
			[]byte{0xB8, 0x34, 0x12, 0x00, 0x00}},
		{"call forward", Inst{Op: CALL, W: 32, Rel: true, Target: 0x100A}, 0x1000,
			[]byte{0xE8, 0x05, 0x00, 0x00, 0x00}},
		{"call backward", Inst{Op: CALL, W: 32, Rel: true, Target: 0xFFB}, 0x1000,
			[]byte{0xE8, 0xF6, 0xFF, 0xFF, 0xFF}},
		{"jne", Inst{Op: JCC, W: 32, Cond: CondNE, Rel: true, Target: 0x10}, 0,
			[]byte{0x0F, 0x85, 0x0A, 0x00, 0x00, 0x00}},
		{"mov [esp],eax", Inst{Op: MOV, W: 32, Dst: MemOp(ESP, 0), Src: RegOp(EAX)}, 0,
			[]byte{0x89, 0x04, 0x24}},
		{"mov [ebp-8],eax", Inst{Op: MOV, W: 32, Dst: MemOp(EBP, -8), Src: RegOp(EAX)}, 0,
			[]byte{0x89, 0x45, 0xF8}},
		{"mov [ebp],eax", Inst{Op: MOV, W: 32, Dst: MemOp(EBP, 0), Src: RegOp(EAX)}, 0,
			[]byte{0x89, 0x45, 0x00}},
		{"mov eax,[abs]", Inst{Op: MOV, W: 32, Dst: RegOp(EAX), Src: MemAbs(0x2000)}, 0,
			[]byte{0x8B, 0x05, 0x00, 0x20, 0x00, 0x00}},
		{"lea full sib", Inst{Op: LEA, W: 32, Dst: RegOp(EAX),
			Src: MemSIB(EDX, true, ECX, true, 4, 0x10)}, 0,
			[]byte{0x8D, 0x44, 0x8A, 0x10}},
		{"pop esp", Inst{Op: POP, W: 32, Dst: RegOp(ESP)}, 0, []byte{0x5C}},
		{"sete al", Inst{Op: SETCC, W: 8, Cond: CondE, Dst: RegOp(EAX)}, 0,
			[]byte{0x0F, 0x94, 0xC0}},
		{"shl eax,4", Inst{Op: SHL, W: 32, Dst: RegOp(EAX), Src: ImmOp(4)}, 0,
			[]byte{0xC1, 0xE0, 0x04}},
		{"shr ebx,cl", Inst{Op: SHR, W: 32, Dst: RegOp(EBX), Src: RegOp(ECX)}, 0,
			[]byte{0xD3, 0xEB}},
		{"neg eax", Inst{Op: NEG, W: 32, Dst: RegOp(EAX)}, 0, []byte{0xF7, 0xD8}},
		{"rep movsd", Inst{Op: MOVS, W: 32, Rep: true}, 0, []byte{0xF3, 0xA5}},
		{"pushad", Inst{Op: PUSHAD, W: 32}, 0, []byte{0x60}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Encode(tt.inst, tt.addr)
			if err != nil {
				t.Fatalf("Encode(%v) error: %v", tt.inst, err)
			}
			if !bytes.Equal(got, tt.want) {
				t.Errorf("Encode(%v) = % x, want % x", tt.inst, got, tt.want)
			}
		})
	}
}

func TestEncodeErrors(t *testing.T) {
	tests := []struct {
		name string
		inst Inst
	}{
		{"mem to mem mov", Inst{Op: MOV, W: 32, Dst: MemOp(EAX, 0), Src: MemOp(EBX, 0)}},
		{"esp index", Inst{Op: MOV, W: 32, Dst: RegOp(EAX),
			Src: MemSIB(EAX, true, ESP, true, 1, 0)}},
		{"bad scale", Inst{Op: MOV, W: 32, Dst: RegOp(EAX),
			Src: MemSIB(EAX, true, EBX, true, 3, 0)}},
		{"shift by ebx", Inst{Op: SHL, W: 32, Dst: RegOp(EAX), Src: RegOp(EBX)}},
		{"lea from reg", Inst{Op: LEA, W: 32, Dst: RegOp(EAX), Src: RegOp(EBX)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Encode(tt.inst, 0); err == nil {
				t.Errorf("Encode(%v) succeeded, want error", tt.inst)
			}
		})
	}
}

// randInst generates a random but encodable instruction in canonical
// operand form (destination r/m, source reg — matching what Decode
// produces), so that encode→decode is an exact round trip.
func randInst(r *rand.Rand) Inst {
	reg := func() Operand { return RegOp(Reg(r.Intn(8))) }
	mem := func() Operand {
		switch r.Intn(4) {
		case 0:
			return MemAbs(r.Uint32())
		case 1:
			return MemOp(Reg(r.Intn(8)), int32(int8(r.Uint32())))
		case 2:
			return MemOp(Reg(r.Intn(8)), int32(r.Uint32())|0x100000) // force disp32
		default:
			idx := Reg(r.Intn(8))
			for idx == ESP {
				idx = Reg(r.Intn(8))
			}
			return MemSIB(Reg(r.Intn(8)), true, idx, true,
				uint8(1<<r.Intn(4)), int32(int8(r.Uint32())))
		}
	}
	rm := func() Operand {
		if r.Intn(2) == 0 {
			return reg()
		}
		return mem()
	}
	immFor := func(w uint8) int32 {
		switch w {
		case 8:
			return int32(int8(r.Uint32()))
		case 16:
			return int32(int16(r.Uint32()))
		default:
			return int32(r.Uint32())
		}
	}

	widths := []uint8{8, 16, 32}
	w := widths[r.Intn(3)]
	switch r.Intn(12) {
	case 0: // ALU r/m, r
		return Inst{Op: aluOps[r.Intn(8)], W: w, Dst: rm(), Src: reg()}
	case 1: // ALU reg, mem
		return Inst{Op: aluOps[r.Intn(8)], W: w, Dst: reg(), Src: mem()}
	case 2: // ALU r/m, imm
		return Inst{Op: aluOps[r.Intn(8)], W: w, Dst: rm(), Src: ImmOp(immFor(w))}
	case 3: // MOV forms
		switch r.Intn(4) {
		case 0:
			return Inst{Op: MOV, W: w, Dst: rm(), Src: reg()}
		case 1:
			return Inst{Op: MOV, W: w, Dst: reg(), Src: mem()}
		case 2:
			return Inst{Op: MOV, W: w, Dst: reg(), Src: ImmOp(immFor(w))}
		default:
			return Inst{Op: MOV, W: w, Dst: mem(), Src: ImmOp(immFor(w))}
		}
	case 4: // TEST
		if r.Intn(2) == 0 {
			return Inst{Op: TEST, W: w, Dst: rm(), Src: reg()}
		}
		return Inst{Op: TEST, W: w, Dst: rm(), Src: ImmOp(immFor(w))}
	case 5: // PUSH/POP (32-bit only)
		if r.Intn(2) == 0 {
			return Inst{Op: PUSH, W: 32, Dst: rm()}
		}
		return Inst{Op: POP, W: 32, Dst: rm()}
	case 6: // INC/DEC
		op := INC
		if r.Intn(2) == 0 {
			op = DEC
		}
		return Inst{Op: op, W: w, Dst: rm()}
	case 7: // group 3
		ops := []Op{NOT, NEG, MUL, DIV, IDIV}
		return Inst{Op: ops[r.Intn(len(ops))], W: w, Dst: rm()}
	case 8: // shifts
		ops := []Op{ROL, ROR, RCL, RCR, SHL, SHR, SAR}
		src := ImmOp(int32(r.Intn(31) + 1))
		if r.Intn(2) == 0 {
			src = RegOp(ECX)
		}
		return Inst{Op: ops[r.Intn(len(ops))], W: w, Dst: rm(), Src: src}
	case 9: // movzx/movsx
		op := MOVZX
		if r.Intn(2) == 0 {
			op = MOVSX
		}
		sw := uint8(8)
		if r.Intn(2) == 0 {
			sw = 16
		}
		return Inst{Op: op, W: sw, Dst: reg(), Src: rm()}
	case 10: // lea
		return Inst{Op: LEA, W: 32, Dst: reg(), Src: mem()}
	default: // setcc
		return Inst{Op: SETCC, W: 8, Cond: Cond(r.Intn(16)), Dst: rm()}
	}
}

// TestEncodeDecodeRoundTrip encodes random canonical instructions and
// checks that decoding reproduces them exactly.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	const n = 50000
	for i := 0; i < n; i++ {
		want := randInst(r)
		addr := r.Uint32()
		enc, err := Encode(want, addr)
		if err != nil {
			t.Fatalf("Encode(%v) error: %v", want, err)
		}
		got, err := Decode(enc, addr)
		if err != nil {
			t.Fatalf("Decode(% x) (from %v) error: %v", enc, want, err)
		}
		if got.Len != len(enc) {
			t.Fatalf("Len = %d, want %d for %v", got.Len, len(enc), want)
		}
		got.Len = 0
		if got != want {
			t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v\nbytes: % x", want, got, enc)
		}
	}
}

// TestBranchRoundTrip round-trips relative control transfers across
// random addresses.
func TestBranchRoundTrip(t *testing.T) {
	f := func(addr, target uint32, condRaw uint8, kind uint8) bool {
		var want Inst
		switch kind % 3 {
		case 0:
			want = Inst{Op: CALL, W: 32, Rel: true, Target: target}
		case 1:
			want = Inst{Op: JMP, W: 32, Rel: true, Target: target}
		default:
			want = Inst{Op: JCC, W: 32, Cond: Cond(condRaw % 16), Rel: true, Target: target}
		}
		enc, err := Encode(want, addr)
		if err != nil {
			return false
		}
		got, err := Decode(enc, addr)
		if err != nil {
			return false
		}
		got.Len = 0
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderLabels(t *testing.T) {
	b := NewBuilder(0x1000)
	b.Label("start")
	b.JmpL("end") // forward reference
	b.Label("mid")
	b.I(Inst{Op: NOP, W: 32})
	b.JccL(CondE, "mid") // backward reference
	b.Label("end")
	b.I(Inst{Op: RET, W: 32})
	code, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}

	// jmp at 0x1000 must land on "end".
	inst, err := Decode(code, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	endAddr, _ := b.LabelAddr("end")
	if inst.Target != endAddr {
		t.Errorf("jmp target = %#x, want %#x", inst.Target, endAddr)
	}

	// je must land on "mid".
	midAddr, _ := b.LabelAddr("mid")
	je, err := Decode(code[6:], 0x1006)
	if err != nil {
		t.Fatal(err)
	}
	if je.Op != JCC || je.Target != midAddr {
		t.Errorf("jcc = %v, want target %#x", je, midAddr)
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Run("undefined label", func(t *testing.T) {
		b := NewBuilder(0)
		b.JmpL("nowhere")
		if _, err := b.Finish(); err == nil {
			t.Error("Finish succeeded with undefined label")
		}
	})
	t.Run("duplicate label", func(t *testing.T) {
		b := NewBuilder(0)
		b.Label("x")
		b.Label("x")
		if _, err := b.Finish(); err == nil {
			t.Error("Finish succeeded with duplicate label")
		}
	})
	t.Run("sticky encode error", func(t *testing.T) {
		b := NewBuilder(0)
		b.I(Inst{Op: MOV, W: 32, Dst: MemOp(EAX, 0), Src: MemOp(EBX, 0)})
		b.I(Inst{Op: RET, W: 32})
		if _, err := b.Finish(); err == nil {
			t.Error("Finish succeeded after bad instruction")
		}
	})
	t.Run("bad alignment", func(t *testing.T) {
		b := NewBuilder(0)
		b.Align(3, 0x90)
		if _, err := b.Finish(); err == nil {
			t.Error("Finish succeeded with non-power-of-two alignment")
		}
	})
}

func TestBuilderAlignAndAbs(t *testing.T) {
	b := NewBuilder(0x400000)
	b.I(Inst{Op: NOP, W: 32})
	b.Align(16, 0xCC)
	b.Label("data")
	b.MovRegLabel(EAX, "data", 8)
	code, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(code) < 21 {
		t.Fatalf("unexpected code size %d", len(code))
	}
	dataAddr, _ := b.LabelAddr("data")
	if dataAddr%16 != 0 {
		t.Errorf("label not aligned: %#x", dataAddr)
	}
	inst, err := Decode(code[16:], dataAddr)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Op != MOV || uint32(inst.Src.Imm) != dataAddr+8 {
		t.Errorf("mov = %v, want imm %#x", inst, dataAddr+8)
	}
}
