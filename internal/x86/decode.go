package x86

import (
	"errors"
	"fmt"
)

// Decoding errors. Gadget scanning decodes at arbitrary offsets, so these
// are expected outcomes, not exceptional conditions.
var (
	// ErrTruncated means the byte buffer ended mid-instruction.
	ErrTruncated = errors.New("x86: truncated instruction")
	// ErrTooLong means prefixes pushed the instruction past the 15-byte
	// architectural limit.
	ErrTooLong = errors.New("x86: instruction exceeds 15 bytes")
)

// UnsupportedError reports a byte sequence that is not in the supported
// instruction subset (or not a valid instruction at all).
type UnsupportedError struct {
	Opcode   byte
	TwoByte  bool
	Position uint32
}

func (e *UnsupportedError) Error() string {
	prefix := ""
	if e.TwoByte {
		prefix = "0f "
	}
	return fmt.Sprintf("x86: unsupported opcode %s%02x at 0x%x", prefix, e.Opcode, e.Position)
}

// maxInstLen is the architectural x86 instruction length limit.
const maxInstLen = 15

type decoder struct {
	b    []byte
	pos  int
	addr uint32

	opsize16 bool
	rep      bool
	repne    bool
}

// Decode decodes a single instruction from the start of b. addr is the
// virtual address of the first byte and is used to resolve relative
// branch targets. The decoded instruction's Len gives the byte length.
func Decode(b []byte, addr uint32) (Inst, error) {
	d := decoder{b: b, addr: addr}
	inst, err := d.decode()
	if err != nil {
		return Inst{}, err
	}
	inst.Len = d.pos
	return inst, nil
}

func (d *decoder) u8() (byte, error) {
	if d.pos >= len(d.b) {
		return 0, ErrTruncated
	}
	if d.pos >= maxInstLen {
		return 0, ErrTooLong
	}
	v := d.b[d.pos]
	d.pos++
	return v, nil
}

func (d *decoder) u16() (uint16, error) {
	lo, err := d.u8()
	if err != nil {
		return 0, err
	}
	hi, err := d.u8()
	if err != nil {
		return 0, err
	}
	return uint16(lo) | uint16(hi)<<8, nil
}

func (d *decoder) u32() (uint32, error) {
	lo, err := d.u16()
	if err != nil {
		return 0, err
	}
	hi, err := d.u16()
	if err != nil {
		return 0, err
	}
	return uint32(lo) | uint32(hi)<<16, nil
}

// imm reads an immediate of the given width in bits, sign-extending to
// int32.
func (d *decoder) imm(width int) (int32, error) {
	switch width {
	case 8:
		v, err := d.u8()
		return int32(int8(v)), err
	case 16:
		v, err := d.u16()
		return int32(int16(v)), err
	default:
		v, err := d.u32()
		return int32(v), err
	}
}

// width returns the current non-byte operand width (16 with an operand
// size prefix, else 32).
func (d *decoder) width() uint8 {
	if d.opsize16 {
		return 16
	}
	return 32
}

func (d *decoder) unsupported(op byte, twoByte bool) error {
	return &UnsupportedError{Opcode: op, TwoByte: twoByte, Position: d.addr}
}

// modrm reads a ModRM byte and returns its fields.
func (d *decoder) modrm() (mod, reg, rm byte, err error) {
	v, err := d.u8()
	if err != nil {
		return 0, 0, 0, err
	}
	return v >> 6, (v >> 3) & 7, v & 7, nil
}

// rmOperand materializes the r/m operand for the given mod and rm fields,
// consuming SIB and displacement bytes as needed.
func (d *decoder) rmOperand(mod, rm byte) (Operand, error) {
	if mod == 3 {
		return RegOp(Reg(rm)), nil
	}
	var op Operand
	op.Kind = KMem
	op.Scale = 1
	if rm == 4 {
		sib, err := d.u8()
		if err != nil {
			return Operand{}, err
		}
		scale := sib >> 6
		index := (sib >> 3) & 7
		base := sib & 7
		if index != 4 { // ESP cannot be an index
			op.HasIndex = true
			op.Index = Reg(index)
			op.Scale = 1 << scale
		}
		if base == 5 && mod == 0 {
			// [index*scale + disp32], no base.
			disp, err := d.u32()
			if err != nil {
				return Operand{}, err
			}
			op.Disp = int32(disp)
			return op, nil
		}
		op.HasBase = true
		op.Base = Reg(base)
	} else if rm == 5 && mod == 0 {
		disp, err := d.u32()
		if err != nil {
			return Operand{}, err
		}
		op.Disp = int32(disp)
		return op, nil
	} else {
		op.HasBase = true
		op.Base = Reg(rm)
	}
	switch mod {
	case 1:
		disp, err := d.imm(8)
		if err != nil {
			return Operand{}, err
		}
		op.Disp = disp
	case 2:
		disp, err := d.imm(32)
		if err != nil {
			return Operand{}, err
		}
		op.Disp = disp
	}
	return op, nil
}

// aluOps maps the /reg group field (and the 0x00-0x3F opcode block index)
// to ALU mnemonics.
var aluOps = [8]Op{ADD, OR, ADC, SBB, AND, SUB, XOR, CMP}

// shiftOps maps the shift-group /reg field to mnemonics.
var shiftOps = [8]Op{ROL, ROR, RCL, RCR, SHL, SHR, SHL, SAR}

func (d *decoder) decode() (Inst, error) {
	// Consume prefixes. Segment overrides are accepted and ignored (we
	// model a flat address space).
	for {
		if d.pos >= len(d.b) {
			return Inst{}, ErrTruncated
		}
		switch d.b[d.pos] {
		case 0x66:
			d.opsize16 = true
		case 0xF3:
			d.rep = true
		case 0xF2:
			d.repne = true
		case 0x26, 0x2E, 0x36, 0x3E, 0x64, 0x65:
			// segment override, ignored
		case 0x67:
			// 16-bit addressing is outside the supported subset
			return Inst{}, d.unsupported(0x67, false)
		default:
			goto prefixesDone
		}
		d.pos++
		if d.pos > maxInstLen {
			return Inst{}, ErrTooLong
		}
	}
prefixesDone:

	b0, err := d.u8()
	if err != nil {
		return Inst{}, err
	}

	if b0 == 0x0F {
		return d.decodeTwoByte()
	}

	// The 0x00-0x3F ALU block: op = b0>>3, form = b0&7 (0..5).
	// Forms 6 and 7 in this range are prefixes or BCD instructions and
	// were handled above or fall through to the main switch.
	if b0 < 0x40 && b0&7 < 6 {
		op := aluOps[b0>>3]
		return d.decodeALUForm(op, b0&7)
	}

	switch {
	case b0 >= 0x40 && b0 <= 0x47:
		return Inst{Op: INC, W: d.width(), Dst: RegOp(Reg(b0 - 0x40))}, nil
	case b0 >= 0x48 && b0 <= 0x4F:
		return Inst{Op: DEC, W: d.width(), Dst: RegOp(Reg(b0 - 0x48))}, nil
	case b0 >= 0x50 && b0 <= 0x57:
		return Inst{Op: PUSH, W: 32, Dst: RegOp(Reg(b0 - 0x50))}, nil
	case b0 >= 0x58 && b0 <= 0x5F:
		return Inst{Op: POP, W: 32, Dst: RegOp(Reg(b0 - 0x58))}, nil
	case b0 >= 0x70 && b0 <= 0x7F:
		rel, err := d.imm(8)
		if err != nil {
			return Inst{}, err
		}
		return d.branch(JCC, Cond(b0-0x70), rel), nil
	case b0 >= 0x91 && b0 <= 0x97:
		return Inst{Op: XCHG, W: d.width(), Dst: RegOp(EAX), Src: RegOp(Reg(b0 - 0x90))}, nil
	case b0 >= 0xB0 && b0 <= 0xB7:
		imm, err := d.imm(8)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: MOV, W: 8, Dst: RegOp(Reg(b0 - 0xB0)), Src: ImmOp(imm)}, nil
	case b0 >= 0xB8 && b0 <= 0xBF:
		w := d.width()
		imm, err := d.imm(int(w))
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: MOV, W: w, Dst: RegOp(Reg(b0 - 0xB8)), Src: ImmOp(imm)}, nil
	}

	switch b0 {
	case 0x60:
		return Inst{Op: PUSHAD, W: 32}, nil
	case 0x61:
		return Inst{Op: POPAD, W: 32}, nil
	case 0x68:
		imm, err := d.imm(32)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: PUSH, W: 32, Dst: ImmOp(imm)}, nil
	case 0x6A:
		imm, err := d.imm(8)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: PUSH, W: 32, Dst: ImmOp(imm)}, nil
	case 0x69, 0x6B:
		mod, reg, rm, err := d.modrm()
		if err != nil {
			return Inst{}, err
		}
		src, err := d.rmOperand(mod, rm)
		if err != nil {
			return Inst{}, err
		}
		immW := 8
		if b0 == 0x69 {
			immW = int(d.width())
		}
		imm, err := d.imm(immW)
		if err != nil {
			return Inst{}, err
		}
		return Inst{
			Op: IMUL, W: d.width(),
			Dst: RegOp(Reg(reg)), Src: src, Imm: imm, HasImm: true,
		}, nil
	case 0x80, 0x82:
		return d.decodeALUGroup(8, 8)
	case 0x81:
		w := int(d.width())
		return d.decodeALUGroup(w, w)
	case 0x83:
		return d.decodeALUGroup(int(d.width()), 8)
	case 0x84, 0x85:
		return d.decodeMR(TEST, b0 == 0x85)
	case 0x86, 0x87:
		return d.decodeMR(XCHG, b0 == 0x87)
	case 0x88, 0x89:
		return d.decodeMR(MOV, b0 == 0x89)
	case 0x8A, 0x8B:
		inst, err := d.decodeMR(MOV, b0 == 0x8B)
		if err != nil {
			return Inst{}, err
		}
		inst.Dst, inst.Src = inst.Src, inst.Dst
		return inst, nil
	case 0x8D:
		mod, reg, rm, err := d.modrm()
		if err != nil {
			return Inst{}, err
		}
		if mod == 3 {
			return Inst{}, d.unsupported(b0, false)
		}
		src, err := d.rmOperand(mod, rm)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: LEA, W: 32, Dst: RegOp(Reg(reg)), Src: src}, nil
	case 0x8F:
		mod, reg, rm, err := d.modrm()
		if err != nil {
			return Inst{}, err
		}
		if reg != 0 {
			return Inst{}, d.unsupported(b0, false)
		}
		dst, err := d.rmOperand(mod, rm)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: POP, W: 32, Dst: dst}, nil
	case 0x90:
		if d.rep {
			// F3 90 is PAUSE; decode as NOP.
			return Inst{Op: NOP, W: 32, Rep: false}, nil
		}
		return Inst{Op: NOP, W: 32}, nil
	case 0x98:
		// With an operand-size prefix this is CBW (AX <- sext AL);
		// the width field distinguishes the two forms.
		return Inst{Op: CWDE, W: d.width()}, nil
	case 0x99:
		// With an operand-size prefix this is CWD (DX:AX <- sext AX).
		return Inst{Op: CDQ, W: d.width()}, nil
	case 0x9C:
		return Inst{Op: PUSHFD, W: 32}, nil
	case 0x9D:
		return Inst{Op: POPFD, W: 32}, nil
	case 0x9E:
		return Inst{Op: SAHF, W: 8}, nil
	case 0x9F:
		return Inst{Op: LAHF, W: 8}, nil
	case 0xA0, 0xA1, 0xA2, 0xA3:
		addr, err := d.u32()
		if err != nil {
			return Inst{}, err
		}
		w := d.width()
		if b0 == 0xA0 || b0 == 0xA2 {
			w = 8
		}
		mem := MemAbs(addr)
		if b0 <= 0xA1 {
			return Inst{Op: MOV, W: w, Dst: RegOp(EAX), Src: mem}, nil
		}
		return Inst{Op: MOV, W: w, Dst: mem, Src: RegOp(EAX)}, nil
	case 0xA4, 0xA5:
		return d.stringOp(MOVS, b0 == 0xA5), nil
	case 0xA6, 0xA7:
		return d.stringOp(CMPS, b0 == 0xA7), nil
	case 0xA8, 0xA9:
		w := 8
		if b0 == 0xA9 {
			w = int(d.width())
		}
		imm, err := d.imm(w)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: TEST, W: uint8(w), Dst: RegOp(EAX), Src: ImmOp(imm)}, nil
	case 0xAA, 0xAB:
		return d.stringOp(STOS, b0 == 0xAB), nil
	case 0xAC, 0xAD:
		return d.stringOp(LODS, b0 == 0xAD), nil
	case 0xAE, 0xAF:
		return d.stringOp(SCAS, b0 == 0xAF), nil
	case 0xC0, 0xC1:
		w := 8
		if b0 == 0xC1 {
			w = int(d.width())
		}
		return d.decodeShiftGroup(w, shiftSrcImm8)
	case 0xC2:
		imm, err := d.u16()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: RET, W: 32, Imm: int32(imm)}, nil
	case 0xC3:
		return Inst{Op: RET, W: 32}, nil
	case 0xC6, 0xC7:
		w := 8
		if b0 == 0xC7 {
			w = int(d.width())
		}
		mod, reg, rm, err := d.modrm()
		if err != nil {
			return Inst{}, err
		}
		if reg != 0 {
			return Inst{}, d.unsupported(b0, false)
		}
		dst, err := d.rmOperand(mod, rm)
		if err != nil {
			return Inst{}, err
		}
		imm, err := d.imm(w)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: MOV, W: uint8(w), Dst: dst, Src: ImmOp(imm)}, nil
	case 0xC9:
		return Inst{Op: LEAVE, W: 32}, nil
	case 0xCA:
		imm, err := d.u16()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: RETF, W: 32, Imm: int32(imm)}, nil
	case 0xCB:
		return Inst{Op: RETF, W: 32}, nil
	case 0xCC:
		return Inst{Op: INT3, W: 32}, nil
	case 0xCD:
		v, err := d.u8()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: INT, W: 32, Imm: int32(v)}, nil
	case 0xD0, 0xD1:
		w := 8
		if b0 == 0xD1 {
			w = int(d.width())
		}
		return d.decodeShiftGroup(w, shiftSrcOne)
	case 0xD2, 0xD3:
		w := 8
		if b0 == 0xD3 {
			w = int(d.width())
		}
		return d.decodeShiftGroup(w, shiftSrcCL)
	case 0xE8:
		rel, err := d.imm(32)
		if err != nil {
			return Inst{}, err
		}
		return d.branch(CALL, 0, rel), nil
	case 0xE9:
		rel, err := d.imm(32)
		if err != nil {
			return Inst{}, err
		}
		return d.branch(JMP, 0, rel), nil
	case 0xEB:
		rel, err := d.imm(8)
		if err != nil {
			return Inst{}, err
		}
		return d.branch(JMP, 0, rel), nil
	case 0xF4:
		return Inst{Op: HLT, W: 32}, nil
	case 0xF5:
		return Inst{Op: CMC, W: 32}, nil
	case 0xF6, 0xF7:
		w := 8
		if b0 == 0xF7 {
			w = int(d.width())
		}
		return d.decodeGroup3(w)
	case 0xF8:
		return Inst{Op: CLC, W: 32}, nil
	case 0xF9:
		return Inst{Op: STC, W: 32}, nil
	case 0xFC:
		return Inst{Op: CLD, W: 32}, nil
	case 0xFD:
		return Inst{Op: STD, W: 32}, nil
	case 0xFE:
		mod, reg, rm, err := d.modrm()
		if err != nil {
			return Inst{}, err
		}
		dst, err := d.rmOperand(mod, rm)
		if err != nil {
			return Inst{}, err
		}
		switch reg {
		case 0:
			return Inst{Op: INC, W: 8, Dst: dst}, nil
		case 1:
			return Inst{Op: DEC, W: 8, Dst: dst}, nil
		}
		return Inst{}, d.unsupported(b0, false)
	case 0xFF:
		mod, reg, rm, err := d.modrm()
		if err != nil {
			return Inst{}, err
		}
		dst, err := d.rmOperand(mod, rm)
		if err != nil {
			return Inst{}, err
		}
		switch reg {
		case 0:
			return Inst{Op: INC, W: d.width(), Dst: dst}, nil
		case 1:
			return Inst{Op: DEC, W: d.width(), Dst: dst}, nil
		case 2:
			return Inst{Op: CALL, W: 32, Dst: dst}, nil
		case 4:
			return Inst{Op: JMP, W: 32, Dst: dst}, nil
		case 6:
			return Inst{Op: PUSH, W: 32, Dst: dst}, nil
		}
		return Inst{}, d.unsupported(b0, false)
	}
	return Inst{}, d.unsupported(b0, false)
}

func (d *decoder) decodeTwoByte() (Inst, error) {
	b1, err := d.u8()
	if err != nil {
		return Inst{}, err
	}
	switch {
	case b1 >= 0x80 && b1 <= 0x8F:
		rel, err := d.imm(32)
		if err != nil {
			return Inst{}, err
		}
		return d.branch(JCC, Cond(b1-0x80), rel), nil
	case b1 >= 0x90 && b1 <= 0x9F:
		mod, _, rm, err := d.modrm()
		if err != nil {
			return Inst{}, err
		}
		dst, err := d.rmOperand(mod, rm)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: SETCC, W: 8, Cond: Cond(b1 - 0x90), Dst: dst}, nil
	}
	switch b1 {
	case 0x1F:
		// Multi-byte NOP: 0F 1F /0 with any r/m form.
		mod, _, rm, err := d.modrm()
		if err != nil {
			return Inst{}, err
		}
		if _, err := d.rmOperand(mod, rm); err != nil {
			return Inst{}, err
		}
		return Inst{Op: NOP, W: 32}, nil
	case 0xAF:
		mod, reg, rm, err := d.modrm()
		if err != nil {
			return Inst{}, err
		}
		src, err := d.rmOperand(mod, rm)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: IMUL, W: d.width(), Dst: RegOp(Reg(reg)), Src: src}, nil
	case 0xB6, 0xB7, 0xBE, 0xBF:
		mod, reg, rm, err := d.modrm()
		if err != nil {
			return Inst{}, err
		}
		src, err := d.rmOperand(mod, rm)
		if err != nil {
			return Inst{}, err
		}
		op := MOVZX
		if b1 >= 0xBE {
			op = MOVSX
		}
		w := uint8(8)
		if b1 == 0xB7 || b1 == 0xBF {
			w = 16
		}
		return Inst{Op: op, W: w, Dst: RegOp(Reg(reg)), Src: src}, nil
	}
	return Inst{}, d.unsupported(b1, true)
}

// decodeALUForm decodes one of the six regular ALU opcode forms.
func (d *decoder) decodeALUForm(op Op, form byte) (Inst, error) {
	switch form {
	case 0, 1: // r/m, r
		return d.decodeMR(op, form == 1)
	case 2, 3: // r, r/m
		inst, err := d.decodeMR(op, form == 3)
		if err != nil {
			return Inst{}, err
		}
		inst.Dst, inst.Src = inst.Src, inst.Dst
		return inst, nil
	case 4: // al, imm8
		imm, err := d.imm(8)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: op, W: 8, Dst: RegOp(EAX), Src: ImmOp(imm)}, nil
	default: // 5: eax, imm32
		w := int(d.width())
		imm, err := d.imm(w)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: op, W: uint8(w), Dst: RegOp(EAX), Src: ImmOp(imm)}, nil
	}
}

// decodeMR decodes a ModRM-based two-operand form with the r/m as
// destination and the /reg register as source.
func (d *decoder) decodeMR(op Op, wide bool) (Inst, error) {
	w := uint8(8)
	if wide {
		w = d.width()
	}
	mod, reg, rm, err := d.modrm()
	if err != nil {
		return Inst{}, err
	}
	dst, err := d.rmOperand(mod, rm)
	if err != nil {
		return Inst{}, err
	}
	return Inst{Op: op, W: w, Dst: dst, Src: RegOp(Reg(reg))}, nil
}

// decodeALUGroup decodes the 0x80/0x81/0x83 immediate-operand group.
// opW is the operand width, immW the encoded immediate width.
func (d *decoder) decodeALUGroup(opW, immW int) (Inst, error) {
	mod, reg, rm, err := d.modrm()
	if err != nil {
		return Inst{}, err
	}
	dst, err := d.rmOperand(mod, rm)
	if err != nil {
		return Inst{}, err
	}
	imm, err := d.imm(immW)
	if err != nil {
		return Inst{}, err
	}
	return Inst{Op: aluOps[reg], W: uint8(opW), Dst: dst, Src: ImmOp(imm)}, nil
}

type shiftSrc int

const (
	shiftSrcImm8 shiftSrc = iota
	shiftSrcOne
	shiftSrcCL
)

func (d *decoder) decodeShiftGroup(w int, src shiftSrc) (Inst, error) {
	mod, reg, rm, err := d.modrm()
	if err != nil {
		return Inst{}, err
	}
	dst, err := d.rmOperand(mod, rm)
	if err != nil {
		return Inst{}, err
	}
	inst := Inst{Op: shiftOps[reg], W: uint8(w), Dst: dst}
	switch src {
	case shiftSrcImm8:
		imm, err := d.imm(8)
		if err != nil {
			return Inst{}, err
		}
		inst.Src = ImmOp(imm)
	case shiftSrcOne:
		inst.Src = ImmOp(1)
	case shiftSrcCL:
		inst.Src = RegOp(ECX)
	}
	return inst, nil
}

// decodeGroup3 decodes the 0xF6/0xF7 unary group.
func (d *decoder) decodeGroup3(w int) (Inst, error) {
	mod, reg, rm, err := d.modrm()
	if err != nil {
		return Inst{}, err
	}
	dst, err := d.rmOperand(mod, rm)
	if err != nil {
		return Inst{}, err
	}
	switch reg {
	case 0, 1: // TEST r/m, imm
		imm, err := d.imm(w)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: TEST, W: uint8(w), Dst: dst, Src: ImmOp(imm)}, nil
	case 2:
		return Inst{Op: NOT, W: uint8(w), Dst: dst}, nil
	case 3:
		return Inst{Op: NEG, W: uint8(w), Dst: dst}, nil
	case 4:
		return Inst{Op: MUL, W: uint8(w), Dst: dst}, nil
	case 5:
		return Inst{Op: IMUL, W: uint8(w), Dst: dst}, nil
	case 6:
		return Inst{Op: DIV, W: uint8(w), Dst: dst}, nil
	default:
		return Inst{Op: IDIV, W: uint8(w), Dst: dst}, nil
	}
}

func (d *decoder) stringOp(op Op, wide bool) Inst {
	w := uint8(8)
	if wide {
		w = d.width()
	}
	return Inst{Op: op, W: w, Rep: d.rep, RepNE: d.repne}
}

// branch builds a relative control transfer. The target is resolved
// against the end of the instruction, which is the current decode
// position.
func (d *decoder) branch(op Op, cond Cond, rel int32) Inst {
	return Inst{
		Op: op, W: 32, Cond: cond, Rel: true,
		Target: d.addr + uint32(d.pos) + uint32(rel),
	}
}
