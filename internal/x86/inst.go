package x86

import (
	"fmt"
	"strings"
)

// Op is an instruction mnemonic.
type Op uint8

// Instruction mnemonics. Conditional jumps and sets are folded into JCC
// and SETCC with the condition stored in Inst.Cond.
const (
	BAD Op = iota

	// ALU, group-80 order (the constant order matters: the ModRM /reg
	// field of the 0x80..0x83 immediate groups indexes this sequence).
	ADD
	OR
	ADC
	SBB
	AND
	SUB
	XOR
	CMP

	MOV
	TEST
	XCHG
	LEA
	PUSH
	POP
	INC
	DEC
	NOT
	NEG
	MUL
	IMUL
	DIV
	IDIV

	// Shift/rotate, group-C0 order (ModRM /reg field indexes this
	// sequence starting at ROL).
	ROL
	ROR
	RCL
	RCR
	SHL
	SHR
	SAL // encoded identically to SHL; decoder produces SHL
	SAR

	MOVZX
	MOVSX

	CALL
	JMP
	JCC
	RET  // near return, optional imm16 stack adjustment
	RETF // far return
	LEAVE

	NOP
	HLT
	INT  // int imm8
	INT3 // 0xCC breakpoint

	PUSHAD
	POPAD
	PUSHFD
	POPFD
	LAHF
	SAHF
	SETCC
	CDQ
	CWDE

	CLC
	STC
	CMC
	CLD
	STD

	// String operations; Inst.Rep records an optional REP prefix.
	MOVS
	STOS
	LODS
	SCAS
	CMPS
)

var opNames = map[Op]string{
	BAD: "(bad)", ADD: "add", OR: "or", ADC: "adc", SBB: "sbb", AND: "and",
	SUB: "sub", XOR: "xor", CMP: "cmp", MOV: "mov", TEST: "test",
	XCHG: "xchg", LEA: "lea", PUSH: "push", POP: "pop", INC: "inc",
	DEC: "dec", NOT: "not", NEG: "neg", MUL: "mul", IMUL: "imul",
	DIV: "div", IDIV: "idiv", ROL: "rol", ROR: "ror", RCL: "rcl",
	RCR: "rcr", SHL: "shl", SHR: "shr", SAL: "sal", SAR: "sar",
	MOVZX: "movzx", MOVSX: "movsx", CALL: "call", JMP: "jmp", JCC: "j",
	RET: "ret", RETF: "retf", LEAVE: "leave", NOP: "nop", HLT: "hlt",
	INT: "int", INT3: "int3", PUSHAD: "pushad", POPAD: "popad",
	PUSHFD: "pushfd", POPFD: "popfd", LAHF: "lahf", SAHF: "sahf",
	SETCC: "set", CDQ: "cdq", CWDE: "cwde", CLC: "clc", STC: "stc",
	CMC: "cmc", CLD: "cld", STD: "std", MOVS: "movs", STOS: "stos",
	LODS: "lods", SCAS: "scas", CMPS: "cmps",
}

// String returns the mnemonic text for op.
func (op Op) String() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// OperandKind discriminates the Operand union.
type OperandKind uint8

// Operand kinds.
const (
	KNone OperandKind = iota
	KReg              // register at Inst width
	KImm              // immediate
	KMem              // memory reference via base/index/scale/disp
)

// Operand is one instruction operand. Width is a property of the parent
// instruction, not the operand.
type Operand struct {
	Kind  OperandKind
	Reg   Reg   // KReg: the register
	Imm   int32 // KImm: immediate value (sign-extended)
	Base  Reg   // KMem: base register, valid if HasBase
	Index Reg   // KMem: index register, valid if HasIndex
	Scale uint8 // KMem: index scale 1,2,4,8
	Disp  int32 // KMem: displacement

	HasBase  bool
	HasIndex bool
}

// RegOp returns a register operand.
func RegOp(r Reg) Operand { return Operand{Kind: KReg, Reg: r} }

// ImmOp returns an immediate operand.
func ImmOp(v int32) Operand { return Operand{Kind: KImm, Imm: v} }

// MemOp returns a [base+disp] memory operand.
func MemOp(base Reg, disp int32) Operand {
	return Operand{Kind: KMem, Base: base, HasBase: true, Scale: 1, Disp: disp}
}

// MemAbs returns an absolute [disp] memory operand.
func MemAbs(addr uint32) Operand {
	return Operand{Kind: KMem, Scale: 1, Disp: int32(addr)}
}

// MemSIB returns a full [base + index*scale + disp] memory operand.
// Pass hasBase/hasIndex false to omit the respective component.
func MemSIB(base Reg, hasBase bool, index Reg, hasIndex bool, scale uint8, disp int32) Operand {
	if !hasIndex {
		scale = 1
	}
	return Operand{
		Kind: KMem, Base: base, HasBase: hasBase,
		Index: index, HasIndex: hasIndex, Scale: scale, Disp: disp,
	}
}

// IsReg reports whether o is the given register operand.
func (o Operand) IsReg(r Reg) bool { return o.Kind == KReg && o.Reg == r }

func (o Operand) format(width int) string {
	switch o.Kind {
	case KReg:
		return o.Reg.Name(width)
	case KImm:
		return fmt.Sprintf("0x%x", uint32(o.Imm))
	case KMem:
		var b strings.Builder
		b.WriteByte('[')
		wrote := false
		if o.HasBase {
			b.WriteString(o.Base.String())
			wrote = true
		}
		if o.HasIndex {
			if wrote {
				b.WriteByte('+')
			}
			fmt.Fprintf(&b, "%s*%d", o.Index, o.Scale)
			wrote = true
		}
		if o.Disp != 0 || !wrote {
			if wrote {
				if o.Disp < 0 {
					fmt.Fprintf(&b, "-0x%x", uint32(-o.Disp))
				} else {
					fmt.Fprintf(&b, "+0x%x", uint32(o.Disp))
				}
			} else {
				fmt.Fprintf(&b, "0x%x", uint32(o.Disp))
			}
		}
		b.WriteByte(']')
		return b.String()
	default:
		return ""
	}
}

// Inst is one decoded (or to-be-encoded) instruction.
type Inst struct {
	Op     Op
	W      uint8 // operand width in bits: 8, 16 or 32
	Cond   Cond  // JCC / SETCC condition
	Dst    Operand
	Src    Operand
	Imm    int32 // third operand: imul r,r/m,imm; ret imm16; int imm8
	HasImm bool  // true when Imm is a real third operand (imul r,r/m,imm)

	// Target is the absolute destination of a relative CALL/JMP/JCC,
	// computed from the instruction address passed to Decode.
	Target uint32
	// Rel is true for relative-displacement CALL/JMP/JCC forms.
	Rel bool
	// Rep is true when an F3 REP/REPE prefix applies; RepNE for F2.
	Rep   bool
	RepNE bool

	// Len is the encoded length in bytes (set by Decode and Encode).
	Len int
}

// MemOperand returns the memory operand of the instruction and true, or
// a zero Operand and false if neither operand is a memory reference.
func (i *Inst) MemOperand() (Operand, bool) {
	if i.Dst.Kind == KMem {
		return i.Dst, true
	}
	if i.Src.Kind == KMem {
		return i.Src, true
	}
	return Operand{}, false
}

// IsRet reports whether the instruction is a near or far return.
func (i *Inst) IsRet() bool { return i.Op == RET || i.Op == RETF }

// String renders the instruction in Intel-ish syntax.
func (i Inst) String() string {
	var b strings.Builder
	if i.Rep {
		b.WriteString("rep ")
	}
	if i.RepNE {
		b.WriteString("repne ")
	}
	switch i.Op {
	case JCC:
		fmt.Fprintf(&b, "j%s 0x%x", i.Cond, i.Target)
		return b.String()
	case SETCC:
		fmt.Fprintf(&b, "set%s %s", i.Cond, i.Dst.format(8))
		return b.String()
	case CALL, JMP:
		if i.Rel {
			fmt.Fprintf(&b, "%s 0x%x", i.Op, i.Target)
			return b.String()
		}
	case RET, RETF:
		b.WriteString(i.Op.String())
		if i.Imm != 0 {
			fmt.Fprintf(&b, " 0x%x", uint16(i.Imm))
		}
		return b.String()
	case INT:
		fmt.Fprintf(&b, "int 0x%x", uint8(i.Imm))
		return b.String()
	case MOVS, STOS, LODS, SCAS, CMPS:
		suffix := "d"
		if i.W == 8 {
			suffix = "b"
		} else if i.W == 16 {
			suffix = "w"
		}
		b.WriteString(i.Op.String())
		b.WriteString(suffix)
		return b.String()
	case CWDE:
		if i.W == 16 {
			return b.String() + "cbw"
		}
	case CDQ:
		if i.W == 16 {
			return b.String() + "cwd"
		}
	}
	b.WriteString(i.Op.String())
	w := int(i.W)
	srcW := w
	if i.Op == MOVZX || i.Op == MOVSX {
		// Destination is 32-bit; source width is i.W (8 or 16).
		if i.Dst.Kind != KNone {
			b.WriteByte(' ')
			b.WriteString(i.Dst.format(32))
		}
		if i.Src.Kind != KNone {
			b.WriteByte(',')
			b.WriteString(i.Src.format(srcW))
		}
		return b.String()
	}
	if i.Dst.Kind != KNone {
		b.WriteByte(' ')
		if i.Dst.Kind == KMem && i.Op != LEA {
			b.WriteString(memSizePrefix(w))
		}
		b.WriteString(i.Dst.format(w))
	}
	if i.Src.Kind != KNone {
		b.WriteByte(',')
		switch {
		case i.Src.Kind == KMem && i.Op != LEA:
			b.WriteString(memSizePrefix(w))
			b.WriteString(i.Src.format(w))
		case i.Src.Kind == KImm:
			// Mask the displayed immediate to the operand width.
			v := uint32(i.Src.Imm)
			if w == 8 {
				v &= 0xFF
			} else if w == 16 {
				v &= 0xFFFF
			}
			fmt.Fprintf(&b, "0x%x", v)
		case i.Src.Kind == KReg && isShift(i.Op):
			// The shift count register is always CL.
			b.WriteString(i.Src.Reg.Name(8))
		default:
			b.WriteString(i.Src.format(w))
		}
	}
	if i.Op == IMUL && i.Src.Kind != KNone && i.hasThirdImm() {
		fmt.Fprintf(&b, ",0x%x", uint32(i.Imm))
	}
	return b.String()
}

func (i Inst) hasThirdImm() bool { return i.HasImm }

func isShift(op Op) bool { return op >= ROL && op <= SAR }

func memSizePrefix(w int) string {
	switch w {
	case 8:
		return "byte "
	case 16:
		return "word "
	default:
		return "dword "
	}
}
