package x86

import "testing"

// FuzzDecode drives the decoder with arbitrary bytes; it must never
// panic, never report a non-positive length, and every successful
// decode must re-encode (the gadget scanner runs this code on every
// byte offset of every binary).
func FuzzDecode(f *testing.F) {
	f.Add([]byte{0x55, 0x89, 0xE5, 0xC3}, uint32(0x8048000))
	f.Add([]byte{0x0F, 0xAF, 0xC3, 0xC3}, uint32(0))
	f.Add([]byte{0x66, 0x81, 0xC3, 0x34, 0x12}, uint32(4096))
	f.Fuzz(func(t *testing.T, b []byte, addr uint32) {
		inst, err := Decode(b, addr)
		if err != nil {
			return
		}
		if inst.Len <= 0 || inst.Len > 15 || inst.Len > len(b) {
			t.Fatalf("bad length %d for % x", inst.Len, b)
		}
	})
}
