package x86

import (
	"bytes"
	"testing"
)

// FuzzDecode drives the decoder with arbitrary bytes; it must never
// panic, never report a non-positive length, and every successful
// decode must re-encode (the gadget scanner runs this code on every
// byte offset of every binary).
//
// For instructions inside the emitted subset — those Encode accepts —
// the property is canonical idempotence: re-decoding the encoder's
// bytes must succeed and re-encode to the identical byte string. The
// original fuzz input is allowed to be a non-canonical spelling (x86
// has redundant encodings), but the encoder's own output must be a
// fixpoint of decode∘encode, or byte-exact tooling (the rewriter, the
// chain installer) would corrupt code it round-trips.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{0x55, 0x89, 0xE5, 0xC3}, uint32(0x8048000))
	f.Add([]byte{0x0F, 0xAF, 0xC3, 0xC3}, uint32(0))
	f.Add([]byte{0x66, 0x81, 0xC3, 0x34, 0x12}, uint32(4096))
	f.Fuzz(func(t *testing.T, b []byte, addr uint32) {
		inst, err := Decode(b, addr)
		if err != nil {
			return
		}
		if inst.Len <= 0 || inst.Len > 15 || inst.Len > len(b) {
			t.Fatalf("bad length %d for % x", inst.Len, b)
		}
		enc, err := Encode(inst, addr)
		if err != nil {
			// Outside the emitted subset (decode-only form); no
			// round-trip obligation.
			return
		}
		if len(enc) > 15 {
			t.Fatalf("encoded length %d > 15 for %v (from % x)", len(enc), inst, b)
		}
		inst2, err := Decode(enc, addr)
		if err != nil {
			t.Fatalf("decode(encode(%v)) failed on % x: %v", inst, enc, err)
		}
		if inst2.Len != len(enc) {
			t.Fatalf("decode(encode(%v)) consumed %d of %d bytes % x",
				inst, inst2.Len, len(enc), enc)
		}
		enc2, err := Encode(inst2, addr)
		if err != nil {
			t.Fatalf("re-encode of %v (canonical form of %v) failed: %v", inst2, inst, err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encoder not a fixpoint: % x -> %v -> % x -> %v -> % x",
				b, inst, enc, inst2, enc2)
		}
	})
}
