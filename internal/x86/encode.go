package x86

import (
	"errors"
	"fmt"
)

// Encoding errors.
var (
	// ErrNoEncoding means the Inst has an operand combination with no
	// machine encoding (e.g. memory-to-memory mov).
	ErrNoEncoding = errors.New("x86: no encoding for operand combination")
	// ErrBadOperand means an operand is malformed (e.g. ESP used as an
	// index register, or a scale that is not 1/2/4/8).
	ErrBadOperand = errors.New("x86: malformed operand")
)

type encoder struct {
	out  []byte
	addr uint32
}

// Encode encodes inst at virtual address addr (needed to resolve
// relative branch displacements from inst.Target). The returned slice is
// freshly allocated.
func Encode(inst Inst, addr uint32) ([]byte, error) {
	e := encoder{out: make([]byte, 0, 8), addr: addr}
	if err := e.encode(inst); err != nil {
		return nil, err
	}
	return e.out, nil
}

// MustEncode is Encode for statically known-valid instructions; it
// panics on error and is intended for compiler-internal emission.
func MustEncode(inst Inst, addr uint32) []byte {
	b, err := Encode(inst, addr)
	if err != nil {
		panic(fmt.Sprintf("x86: MustEncode %v: %v", inst, err))
	}
	return b
}

func (e *encoder) b(v ...byte) { e.out = append(e.out, v...) }

func (e *encoder) imm(v int32, width int) {
	switch width {
	case 8:
		e.b(byte(v))
	case 16:
		e.b(byte(v), byte(v>>8))
	default:
		e.b(byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
}

// prefix66 emits the operand-size prefix when the instruction operates
// on 16-bit operands.
func (e *encoder) prefix66(w uint8) {
	if w == 16 {
		e.b(0x66)
	}
}

func fitsInt8(v int32) bool { return v >= -128 && v <= 127 }

// modrm emits a ModRM byte (plus SIB/displacement) addressing rm with
// the given /reg field value.
func (e *encoder) modrm(reg byte, rm Operand) error {
	switch rm.Kind {
	case KReg:
		e.b(0xC0 | reg<<3 | byte(rm.Reg))
		return nil
	case KMem:
		return e.modrmMem(reg, rm)
	default:
		return ErrNoEncoding
	}
}

func (e *encoder) modrmMem(reg byte, m Operand) error {
	if m.HasIndex {
		if m.Index == ESP {
			return fmt.Errorf("%w: esp cannot be an index register", ErrBadOperand)
		}
		switch m.Scale {
		case 1, 2, 4, 8:
		default:
			return fmt.Errorf("%w: scale %d", ErrBadOperand, m.Scale)
		}
	}

	scaleBits := func() byte {
		switch m.Scale {
		case 2:
			return 1
		case 4:
			return 2
		case 8:
			return 3
		default:
			return 0
		}
	}

	// Absolute or index-only: ModRM mod=00 with rm=101 (disp32) or a
	// SIB with base=101.
	if !m.HasBase {
		if !m.HasIndex {
			e.b(reg<<3 | 5)
			e.imm(m.Disp, 32)
			return nil
		}
		e.b(reg<<3|4, scaleBits()<<6|byte(m.Index)<<3|5)
		e.imm(m.Disp, 32)
		return nil
	}

	needSIB := m.HasIndex || m.Base == ESP
	var mod byte
	switch {
	case m.Disp == 0 && m.Base != EBP:
		mod = 0
	case fitsInt8(m.Disp):
		mod = 1
	default:
		mod = 2
	}
	if needSIB {
		e.b(mod<<6|reg<<3|4, encodeSIB(m, scaleBits()))
	} else {
		e.b(mod<<6 | reg<<3 | byte(m.Base))
	}
	switch mod {
	case 1:
		e.imm(m.Disp, 8)
	case 2:
		e.imm(m.Disp, 32)
	}
	return nil
}

func encodeSIB(m Operand, scaleBits byte) byte {
	index := byte(4) // none
	if m.HasIndex {
		index = byte(m.Index)
	}
	return scaleBits<<6 | index<<3 | byte(m.Base)
}

func (e *encoder) encode(inst Inst) error {
	switch inst.Op {
	case ADD, OR, ADC, SBB, AND, SUB, XOR, CMP:
		return e.encodeALU(inst)
	case MOV:
		return e.encodeMov(inst)
	case TEST:
		return e.encodeTest(inst)
	case XCHG:
		return e.encodeXchg(inst)
	case LEA:
		if inst.Dst.Kind != KReg || inst.Src.Kind != KMem {
			return ErrNoEncoding
		}
		e.b(0x8D)
		return e.modrm(byte(inst.Dst.Reg), inst.Src)
	case PUSH:
		return e.encodePush(inst)
	case POP:
		return e.encodePop(inst)
	case INC, DEC:
		return e.encodeIncDec(inst)
	case NOT, NEG, MUL, DIV, IDIV:
		return e.encodeGroup3(inst)
	case IMUL:
		return e.encodeImul(inst)
	case ROL, ROR, RCL, RCR, SHL, SAL, SHR, SAR:
		return e.encodeShift(inst)
	case MOVZX, MOVSX:
		return e.encodeMovx(inst)
	case CALL, JMP:
		return e.encodeCallJmp(inst)
	case JCC:
		if !inst.Rel {
			return ErrNoEncoding
		}
		e.b(0x0F, 0x80+byte(inst.Cond))
		e.imm(e.rel(inst.Target, 4), 32)
		return nil
	case SETCC:
		e.b(0x0F, 0x90+byte(inst.Cond))
		return e.modrm(0, inst.Dst)
	case RET:
		if inst.Imm != 0 {
			e.b(0xC2)
			e.imm(inst.Imm, 16)
		} else {
			e.b(0xC3)
		}
		return nil
	case RETF:
		if inst.Imm != 0 {
			e.b(0xCA)
			e.imm(inst.Imm, 16)
		} else {
			e.b(0xCB)
		}
		return nil
	case LEAVE:
		e.b(0xC9)
		return nil
	case NOP:
		e.b(0x90)
		return nil
	case HLT:
		e.b(0xF4)
		return nil
	case INT:
		e.b(0xCD, byte(inst.Imm))
		return nil
	case INT3:
		e.b(0xCC)
		return nil
	case PUSHAD:
		e.b(0x60)
		return nil
	case POPAD:
		e.b(0x61)
		return nil
	case PUSHFD:
		e.b(0x9C)
		return nil
	case POPFD:
		e.b(0x9D)
		return nil
	case LAHF:
		e.b(0x9F)
		return nil
	case SAHF:
		e.b(0x9E)
		return nil
	case CDQ:
		e.prefix66(inst.W)
		e.b(0x99)
		return nil
	case CWDE:
		e.prefix66(inst.W)
		e.b(0x98)
		return nil
	case CLC:
		e.b(0xF8)
		return nil
	case STC:
		e.b(0xF9)
		return nil
	case CMC:
		e.b(0xF5)
		return nil
	case CLD:
		e.b(0xFC)
		return nil
	case STD:
		e.b(0xFD)
		return nil
	case MOVS, STOS, LODS, SCAS, CMPS:
		return e.encodeString(inst)
	default:
		return fmt.Errorf("%w: %v", ErrNoEncoding, inst.Op)
	}
}

// rel computes a relative displacement to target from the end of the
// instruction, given the number of displacement+trailing bytes still to
// be emitted.
func (e *encoder) rel(target uint32, trailing int) int32 {
	end := e.addr + uint32(len(e.out)) + uint32(trailing)
	return int32(target - end)
}

// aluIndex returns the 0..7 group index of an ALU op.
func aluIndex(op Op) byte { return byte(op - ADD) }

func (e *encoder) encodeALU(inst Inst) error {
	idx := aluIndex(inst.Op)
	w := inst.W
	e.prefix66(w)
	switch {
	case inst.Src.Kind == KImm:
		switch {
		case w == 8:
			e.b(0x80)
		case fitsInt8(inst.Src.Imm):
			e.b(0x83)
		default:
			e.b(0x81)
		}
		if err := e.modrm(idx, inst.Dst); err != nil {
			return err
		}
		immW := int(w)
		if w != 8 && fitsInt8(inst.Src.Imm) {
			immW = 8
		}
		e.imm(inst.Src.Imm, immW)
		return nil
	case inst.Src.Kind == KReg && inst.Dst.Kind != KImm:
		op := idx*8 + 1
		if w == 8 {
			op = idx * 8
		}
		e.b(op)
		return e.modrm(byte(inst.Src.Reg), inst.Dst)
	case inst.Dst.Kind == KReg && inst.Src.Kind == KMem:
		op := idx*8 + 3
		if w == 8 {
			op = idx*8 + 2
		}
		e.b(op)
		return e.modrm(byte(inst.Dst.Reg), inst.Src)
	default:
		return ErrNoEncoding
	}
}

func (e *encoder) encodeMov(inst Inst) error {
	w := inst.W
	e.prefix66(w)
	switch {
	case inst.Src.Kind == KImm && inst.Dst.Kind == KReg:
		if w == 8 {
			e.b(0xB0 + byte(inst.Dst.Reg))
			e.imm(inst.Src.Imm, 8)
		} else {
			e.b(0xB8 + byte(inst.Dst.Reg))
			e.imm(inst.Src.Imm, int(w))
		}
		return nil
	case inst.Src.Kind == KImm && inst.Dst.Kind == KMem:
		if w == 8 {
			e.b(0xC6)
		} else {
			e.b(0xC7)
		}
		if err := e.modrm(0, inst.Dst); err != nil {
			return err
		}
		e.imm(inst.Src.Imm, int(w))
		return nil
	case inst.Src.Kind == KReg:
		if w == 8 {
			e.b(0x88)
		} else {
			e.b(0x89)
		}
		return e.modrm(byte(inst.Src.Reg), inst.Dst)
	case inst.Dst.Kind == KReg && inst.Src.Kind == KMem:
		if w == 8 {
			e.b(0x8A)
		} else {
			e.b(0x8B)
		}
		return e.modrm(byte(inst.Dst.Reg), inst.Src)
	default:
		return ErrNoEncoding
	}
}

func (e *encoder) encodeTest(inst Inst) error {
	w := inst.W
	e.prefix66(w)
	switch {
	case inst.Src.Kind == KImm:
		if w == 8 {
			e.b(0xF6)
		} else {
			e.b(0xF7)
		}
		if err := e.modrm(0, inst.Dst); err != nil {
			return err
		}
		e.imm(inst.Src.Imm, int(w))
		return nil
	case inst.Src.Kind == KReg:
		if w == 8 {
			e.b(0x84)
		} else {
			e.b(0x85)
		}
		return e.modrm(byte(inst.Src.Reg), inst.Dst)
	default:
		return ErrNoEncoding
	}
}

func (e *encoder) encodeXchg(inst Inst) error {
	w := inst.W
	e.prefix66(w)
	if inst.Src.Kind != KReg && inst.Dst.Kind != KReg {
		return ErrNoEncoding
	}
	// Normalize so the plain register is the /reg field.
	regOp, rmOp := inst.Src, inst.Dst
	if regOp.Kind != KReg {
		regOp, rmOp = rmOp, regOp
	}
	if w == 8 {
		e.b(0x86)
	} else {
		e.b(0x87)
	}
	return e.modrm(byte(regOp.Reg), rmOp)
}

func (e *encoder) encodePush(inst Inst) error {
	switch inst.Dst.Kind {
	case KReg:
		e.b(0x50 + byte(inst.Dst.Reg))
		return nil
	case KImm:
		if fitsInt8(inst.Dst.Imm) {
			e.b(0x6A)
			e.imm(inst.Dst.Imm, 8)
		} else {
			e.b(0x68)
			e.imm(inst.Dst.Imm, 32)
		}
		return nil
	case KMem:
		e.b(0xFF)
		return e.modrm(6, inst.Dst)
	default:
		return ErrNoEncoding
	}
}

func (e *encoder) encodePop(inst Inst) error {
	switch inst.Dst.Kind {
	case KReg:
		e.b(0x58 + byte(inst.Dst.Reg))
		return nil
	case KMem:
		e.b(0x8F)
		return e.modrm(0, inst.Dst)
	default:
		return ErrNoEncoding
	}
}

func (e *encoder) encodeIncDec(inst Inst) error {
	reg := byte(0)
	if inst.Op == DEC {
		reg = 1
	}
	if inst.W == 8 {
		e.b(0xFE)
	} else {
		e.prefix66(inst.W)
		e.b(0xFF)
	}
	return e.modrm(reg, inst.Dst)
}

func (e *encoder) encodeGroup3(inst Inst) error {
	var reg byte
	switch inst.Op {
	case NOT:
		reg = 2
	case NEG:
		reg = 3
	case MUL:
		reg = 4
	case DIV:
		reg = 6
	case IDIV:
		reg = 7
	}
	e.prefix66(inst.W)
	if inst.W == 8 {
		e.b(0xF6)
	} else {
		e.b(0xF7)
	}
	return e.modrm(reg, inst.Dst)
}

func (e *encoder) encodeImul(inst Inst) error {
	e.prefix66(inst.W)
	switch {
	case inst.HasImm:
		if inst.Dst.Kind != KReg {
			return ErrNoEncoding
		}
		if fitsInt8(inst.Imm) {
			e.b(0x6B)
		} else {
			e.b(0x69)
		}
		if err := e.modrm(byte(inst.Dst.Reg), inst.Src); err != nil {
			return err
		}
		if fitsInt8(inst.Imm) {
			e.imm(inst.Imm, 8)
		} else {
			e.imm(inst.Imm, int(inst.W))
		}
		return nil
	case inst.Src.Kind != KNone:
		if inst.Dst.Kind != KReg {
			return ErrNoEncoding
		}
		e.b(0x0F, 0xAF)
		return e.modrm(byte(inst.Dst.Reg), inst.Src)
	default:
		// One-operand form via group 3.
		if inst.W == 8 {
			e.b(0xF6)
		} else {
			e.b(0xF7)
		}
		return e.modrm(5, inst.Dst)
	}
}

func (e *encoder) encodeShift(inst Inst) error {
	var reg byte
	switch inst.Op {
	case ROL:
		reg = 0
	case ROR:
		reg = 1
	case RCL:
		reg = 2
	case RCR:
		reg = 3
	case SHL, SAL:
		reg = 4
	case SHR:
		reg = 5
	case SAR:
		reg = 7
	}
	e.prefix66(inst.W)
	switch {
	case inst.Src.Kind == KImm:
		if inst.W == 8 {
			e.b(0xC0)
		} else {
			e.b(0xC1)
		}
		if err := e.modrm(reg, inst.Dst); err != nil {
			return err
		}
		e.imm(inst.Src.Imm, 8)
		return nil
	case inst.Src.IsReg(ECX):
		if inst.W == 8 {
			e.b(0xD2)
		} else {
			e.b(0xD3)
		}
		return e.modrm(reg, inst.Dst)
	default:
		return ErrNoEncoding
	}
}

func (e *encoder) encodeMovx(inst Inst) error {
	if inst.Dst.Kind != KReg {
		return ErrNoEncoding
	}
	var op byte
	switch {
	case inst.Op == MOVZX && inst.W == 8:
		op = 0xB6
	case inst.Op == MOVZX && inst.W == 16:
		op = 0xB7
	case inst.Op == MOVSX && inst.W == 8:
		op = 0xBE
	case inst.Op == MOVSX && inst.W == 16:
		op = 0xBF
	default:
		return ErrNoEncoding
	}
	e.b(0x0F, op)
	return e.modrm(byte(inst.Dst.Reg), inst.Src)
}

func (e *encoder) encodeCallJmp(inst Inst) error {
	if inst.Rel {
		if inst.Op == CALL {
			e.b(0xE8)
		} else {
			e.b(0xE9)
		}
		e.imm(e.rel(inst.Target, 4), 32)
		return nil
	}
	e.b(0xFF)
	if inst.Op == CALL {
		return e.modrm(2, inst.Dst)
	}
	return e.modrm(4, inst.Dst)
}

func (e *encoder) encodeString(inst Inst) error {
	if inst.Rep {
		e.b(0xF3)
	}
	if inst.RepNE {
		e.b(0xF2)
	}
	e.prefix66(inst.W)
	wide := byte(0)
	if inst.W != 8 {
		wide = 1
	}
	switch inst.Op {
	case MOVS:
		e.b(0xA4 + wide)
	case CMPS:
		e.b(0xA6 + wide)
	case STOS:
		e.b(0xAA + wide)
	case LODS:
		e.b(0xAC + wide)
	case SCAS:
		e.b(0xAE + wide)
	}
	return nil
}
