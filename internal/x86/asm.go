package x86

import (
	"fmt"
	"sort"
)

// Builder assembles a sequence of instructions at a fixed base address,
// with forward-referencing labels. The zero value is not usable; create
// one with NewBuilder.
//
// Errors are sticky: the first failure is remembered and reported by
// Finish, so call sites can chain emission without per-call checks.
type Builder struct {
	base   uint32
	out    []byte
	labels map[string]uint32
	fixups []fixup
	err    error
}

type fixupKind uint8

const (
	fixRel32 fixupKind = iota // patch rel32 at pos, relative to pos+4
	fixAbs32                  // patch absolute address at pos
)

type fixup struct {
	pos   int // offset into out of the 4-byte patch site
	label string
	kind  fixupKind
	add   int32 // addend applied to the label address
}

// NewBuilder returns a Builder assembling at the given base virtual
// address.
func NewBuilder(base uint32) *Builder {
	return &Builder{base: base, labels: make(map[string]uint32)}
}

// Here returns the virtual address of the next emitted byte.
func (b *Builder) Here() uint32 { return b.base + uint32(len(b.out)) }

// Len returns the number of bytes emitted so far.
func (b *Builder) Len() int { return len(b.out) }

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Label defines a label at the current position. Redefinition is an
// error.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.fail(fmt.Errorf("x86: label %q redefined", name))
		return
	}
	b.labels[name] = b.Here()
}

// LabelAddr returns the address of a defined label.
func (b *Builder) LabelAddr(name string) (uint32, bool) {
	a, ok := b.labels[name]
	return a, ok
}

// Raw emits literal bytes.
func (b *Builder) Raw(bytes ...byte) {
	b.out = append(b.out, bytes...)
}

// I encodes and emits one instruction. Relative branches must carry an
// absolute Target; for label targets use JmpL/JccL/CallL instead.
func (b *Builder) I(inst Inst) {
	enc, err := Encode(inst, b.Here())
	if err != nil {
		b.fail(fmt.Errorf("x86: encoding %v: %w", inst, err))
		return
	}
	b.out = append(b.out, enc...)
}

// JmpL emits a jmp rel32 to a label.
func (b *Builder) JmpL(label string) {
	b.Raw(0xE9)
	b.emitFixup32(label, fixRel32, 0)
}

// JccL emits a conditional jump (rel32 form) to a label.
func (b *Builder) JccL(cond Cond, label string) {
	b.Raw(0x0F, 0x80+byte(cond))
	b.emitFixup32(label, fixRel32, 0)
}

// CallL emits a call rel32 to a label.
func (b *Builder) CallL(label string) {
	b.Raw(0xE8)
	b.emitFixup32(label, fixRel32, 0)
}

// PushLabel emits push imm32 where the immediate is the address of the
// label (plus addend).
func (b *Builder) PushLabel(label string, add int32) {
	b.Raw(0x68)
	b.emitFixup32(label, fixAbs32, add)
}

// MovRegLabel emits mov r32, imm32 with the label address (plus addend)
// as the immediate.
func (b *Builder) MovRegLabel(r Reg, label string, add int32) {
	b.Raw(0xB8 + byte(r))
	b.emitFixup32(label, fixAbs32, add)
}

func (b *Builder) emitFixup32(label string, kind fixupKind, add int32) {
	b.fixups = append(b.fixups, fixup{pos: len(b.out), label: label, kind: kind, add: add})
	b.Raw(0, 0, 0, 0)
}

// Align pads with the fill byte until the current address is a multiple
// of n (which must be a power of two).
func (b *Builder) Align(n uint32, fill byte) {
	if n == 0 || n&(n-1) != 0 {
		b.fail(fmt.Errorf("x86: alignment %d is not a power of two", n))
		return
	}
	for b.Here()%n != 0 {
		b.Raw(fill)
	}
}

// Finish resolves all fixups and returns the assembled bytes.
func (b *Builder) Finish() ([]byte, error) {
	if b.err != nil {
		return nil, b.err
	}
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("x86: undefined label %q", f.label)
		}
		var v uint32
		switch f.kind {
		case fixRel32:
			siteEnd := b.base + uint32(f.pos) + 4
			v = target + uint32(f.add) - siteEnd
		case fixAbs32:
			v = target + uint32(f.add)
		}
		putU32(b.out[f.pos:], v)
	}
	return b.out, nil
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

// Labels returns all defined labels sorted by address.
func (b *Builder) Labels() []struct {
	Name string
	Addr uint32
} {
	type la = struct {
		Name string
		Addr uint32
	}
	out := make([]la, 0, len(b.labels))
	for n, a := range b.labels {
		out = append(out, la{n, a})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr != out[j].Addr {
			return out[i].Addr < out[j].Addr
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Disassemble performs a linear-sweep disassembly of code at the given
// base address. Undecodable bytes are represented as one-byte BAD
// instructions so the sweep always makes progress.
func Disassemble(code []byte, base uint32) []Inst {
	insts := make([]Inst, 0, len(code)/3)
	off := 0
	for off < len(code) {
		inst, err := Decode(code[off:], base+uint32(off))
		if err != nil {
			inst = Inst{Op: BAD, Len: 1}
		}
		insts = append(insts, inst)
		off += inst.Len
	}
	return insts
}
