package emu

import (
	"errors"
	"fmt"

	"parallax/internal/chaos"
	"parallax/internal/image"
	"parallax/internal/obs"
	"parallax/internal/x86"
)

// Run-control errors.
var (
	// ErrInstLimit means the configured instruction budget was
	// exhausted; the program is likely stuck in a loop.
	ErrInstLimit = errors.New("emu: instruction limit exceeded")
	// ErrHalted means a HLT instruction was executed.
	ErrHalted = errors.New("emu: hlt executed")
	// ErrBreakpoint means an INT3 was executed.
	ErrBreakpoint = errors.New("emu: int3 executed")
)

// DecodeFault wraps an instruction decode failure at a given EIP. A
// tampered or mis-targeted chain frequently dies here.
type DecodeFault struct {
	EIP uint32
	Err error
}

func (e *DecodeFault) Error() string {
	return fmt.Sprintf("emu: decode fault at eip=%#x: %v", e.EIP, e.Err)
}

func (e *DecodeFault) Unwrap() error { return e.Err }

// DivideError is an integer divide fault (#DE).
type DivideError struct{ EIP uint32 }

func (e *DivideError) Error() string {
	return fmt.Sprintf("emu: divide error at eip=%#x", e.EIP)
}

// ExitSentinel is the magic return address pushed below the entry
// frame; returning to it ends the run cleanly with EAX as the status.
const ExitSentinel uint32 = 0xFFFF0F00

// Stack placement.
const (
	DefaultStackTop  uint32 = 0x0BFFF000
	DefaultStackSize uint32 = 1 << 20
)

// CPU is one x86-32 hardware thread plus its address space.
type CPU struct {
	Reg [x86.NumRegs]uint32
	EIP uint32

	// Individual EFLAGS bits.
	CF, PF, AF, ZF, SF, OF, DF bool

	Mem *Memory
	// OS handles int 0x80. Nil means any syscall faults.
	OS Kernel

	// RetHook, when non-nil, observes every executed near/far return
	// (from = the return instruction's address, to = the target).
	// System-level ROP monitors (§VIII-B) attach here.
	RetHook func(from, to uint32)

	// Trace, when non-nil, receives execution events: every near/far
	// return (obs.EventRet — the gadget boundary of a running ROP
	// chain) and instruction events sampled per TraceEvery. The
	// disabled cost is one nil check per instruction.
	Trace obs.TraceSink
	// TraceEvery is the instruction-event sampling stride: 0 emits no
	// obs.EventInst (ret events still flow), 1 traces every
	// instruction, N every Nth.
	TraceEvery uint64

	// MaxInst bounds Run; 0 means DefaultMaxInst.
	MaxInst uint64

	// CheckStride is the instruction interval between context checks
	// in RunContext; 0 means DefaultCheckStride.
	CheckStride uint64

	// Chaos, when non-nil, arms the emulator's fault-injection points
	// (forced budget exhaustion at poll boundaries). Nil — the
	// production default — costs one nil check per poll.
	Chaos *chaos.Injector

	// stackBase is the lowest mapped stack address (set by LoadImage);
	// pushes faulting just below it classify as stack overflow.
	stackBase uint32

	// Icount and Cycles are the deterministic performance counters:
	// executed instructions and modeled cost (see cost.go).
	Icount uint64
	Cycles uint64

	// Exited is set when the program exits via syscall or by returning
	// to ExitSentinel; Status holds the exit status.
	Exited bool
	Status int32

	// Fetch overlay: the Wurster et al. split-cache view. When armed,
	// instruction fetches in the overlaid range see these bytes while
	// data reads see the underlying memory.
	overlay     map[uint32]byte
	decodeCache map[uint32]x86.Inst
	codeVersion uint64
	cacheVer    uint64

	// Optional per-address execution profile (instruction hit counts).
	profile map[uint32]uint64
}

// DefaultMaxInst bounds runaway programs.
const DefaultMaxInst = 500_000_000

// New returns a CPU over an empty address space.
func New() *CPU {
	c := &CPU{Mem: NewMemory(), decodeCache: make(map[uint32]x86.Inst)}
	// The decode cache is an ordinary code-invalidation consumer: any
	// mutation of executable bytes (store, Poke, Patch, Restore page
	// copy-back) evicts exactly the decodes whose windows can overlap
	// the modified range. Overlay state is CPU-local and handled by
	// codeVersion instead.
	c.Mem.OnCodeInvalidate(c.onCodeInvalidate)
	return c
}

// onCodeInvalidate is the CPU's hook on the memory bus: executable
// bytes in [lo, hi) changed, so cached decodes overlapping them die.
func (c *CPU) onCodeInvalidate(lo, hi uint32) {
	c.evictDecodes(lo, hi-lo)
}

// LoadImage maps every section of img and a stack, and prepares the CPU
// to run from the image entry point: ESP points below ExitSentinel so
// that a final return ends the program. Use LoadImageWith to set
// explicit stack and memory budgets.
func LoadImage(img *image.Image) (*CPU, error) {
	return LoadImageWith(img, LoadConfig{})
}

// EnableProfile turns on per-address instruction hit counting.
func (c *CPU) EnableProfile() { c.profile = make(map[uint32]uint64) }

// Profile returns the per-address hit counts (nil unless EnableProfile
// was called).
func (c *CPU) Profile() map[uint32]uint64 { return c.profile }

// SetOverlay arms the fetch overlay with the given bytes at addr,
// leaving data reads untouched. This is the Wurster et al. attack
// primitive.
func (c *CPU) SetOverlay(addr uint32, b []byte) {
	if c.overlay == nil {
		c.overlay = make(map[uint32]byte)
	}
	for i, v := range b {
		c.overlay[addr+uint32(i)] = v
	}
	c.codeVersion++
}

// ClearOverlay disarms the fetch overlay.
func (c *CPU) ClearOverlay() {
	c.overlay = nil
	c.codeVersion++
}

// InvalidateCode must be called after out-of-band modification of
// executable bytes that bypasses the Memory write paths (which bump
// the code epoch themselves) so stale decodes are discarded.
func (c *CPU) InvalidateCode() { c.codeVersion++ }

// maxInstLen is the architectural x86 instruction length limit, and
// therefore the fetch window size.
const maxInstLen = 15

// fetchWindowAt returns up to 15 instruction bytes at addr as seen by
// the fetch unit (overlay first, then memory). Bytes are stitched
// across contiguous executable segments, so an instruction straddling
// a segment boundary decodes from its full encoding. missing is the
// first address past the stitched bytes — the fault address when the
// window proves too short to hold the instruction. eip attributes any
// fault.
func (c *CPU) fetchWindowAt(addr, eip uint32) (window []byte, missing uint32, err error) {
	// Permission check on the first byte classifies the common faults
	// (unmapped EIP, jump into non-executable data).
	if _, err := c.Mem.check(addr, 1, AccessFetch, eip); err != nil {
		return nil, addr, err
	}
	window = make([]byte, 0, maxInstLen)
	a := addr
	for len(window) < maxInstLen {
		seg := c.Mem.Segment(a)
		if seg == nil || seg.Perm&image.PermX == 0 {
			break
		}
		off := a - seg.Addr
		n := uint32(maxInstLen - len(window))
		if off+n > uint32(len(seg.Data)) {
			n = uint32(len(seg.Data)) - off
		}
		window = append(window, seg.Data[off:off+n]...)
		a += n
	}
	if c.overlay != nil {
		for i := range window {
			if v, ok := c.overlay[addr+uint32(i)]; ok {
				window[i] = v
			}
		}
	}
	return window, a, nil
}

// decode returns the instruction at EIP, consulting the decode cache.
// Memory-path coherence is event-driven: every mutation of executable
// bytes notifies the CPU's code-invalidation hook, which evicts the
// overlapping decodes. The version check below covers only CPU-local
// fetch state — overlay arm/disarm and explicit InvalidateCode — which
// shadows arbitrary addresses and therefore flushes wholesale.
func (c *CPU) decode() (x86.Inst, error) {
	if c.cacheVer != c.codeVersion {
		c.decodeCache = make(map[uint32]x86.Inst)
		c.cacheVer = c.codeVersion
	}
	if inst, ok := c.decodeCache[c.EIP]; ok {
		return inst, nil
	}
	inst, err := c.decodeAt(c.EIP)
	if err != nil {
		return x86.Inst{}, err
	}
	c.decodeCache[c.EIP] = inst
	return inst, nil
}

// decodeAt decodes the instruction at addr without consulting or
// filling the decode cache. Fault errors attribute to addr as the
// fetching EIP.
func (c *CPU) decodeAt(addr uint32) (x86.Inst, error) {
	window, missing, err := c.fetchWindowAt(addr, addr)
	if err != nil {
		return x86.Inst{}, err
	}
	inst, err := x86.Decode(window, addr)
	if err != nil {
		if errors.Is(err, x86.ErrTruncated) && len(window) < maxInstLen {
			// The instruction ran off the end of mapped executable
			// memory: that is a fetch fault at the first absent byte,
			// not a decode error in the bytes we do have.
			_, ferr := c.Mem.check(missing, 1, AccessFetch, addr)
			if ferr != nil {
				return x86.Inst{}, ferr
			}
		}
		return x86.Inst{}, &DecodeFault{EIP: addr, Err: err}
	}
	return inst, nil
}

// Patch pokes bytes into memory (permissions ignored, like Mem.Poke).
// The code-invalidation bus carries the modified range to every
// consumer — this CPU's decode cache evicts only the entries whose
// windows can overlap the patched bytes, so a warm campaign worker
// patching one mutation site per run keeps every other decode (and any
// attached translation engine keeps its unaffected blocks).
func (c *CPU) Patch(addr uint32, b []byte) error {
	return c.Mem.Poke(addr, b)
}

// evictDecodeAll is the range size beyond which per-byte eviction
// costs more than rebuilding the cache; evictDecodes flushes wholesale
// instead.
const evictDecodeAll = 1 << 15

// evictDecodes drops cached decodes that may include any byte of
// [addr, addr+n): an x86 instruction is at most maxInstLen bytes, so
// entries starting up to maxInstLen-1 bytes before the range can
// straddle into it.
func (c *CPU) evictDecodes(addr, n uint32) {
	if n >= evictDecodeAll {
		clear(c.decodeCache)
		return
	}
	lo := uint32(0)
	if addr >= maxInstLen-1 {
		lo = addr - (maxInstLen - 1)
	}
	for a := lo; a < addr+n; a++ {
		delete(c.decodeCache, a)
	}
}

// Step executes one instruction.
func (c *CPU) Step() error {
	if c.Exited {
		return nil
	}
	inst, err := c.decode()
	if err != nil {
		return err
	}
	if c.profile != nil {
		c.profile[c.EIP]++
	}
	c.Icount++
	if c.Trace != nil && c.TraceEvery != 0 && c.Icount%c.TraceEvery == 0 {
		c.Trace.Emit(obs.Event{Kind: obs.EventInst, Icount: c.Icount, PC: c.EIP})
	}
	return c.exec(inst)
}

// Run executes until the program exits, faults, or hits the instruction
// budget. Use RunContext to add a cancellation/deadline watchdog.
func (c *CPU) Run() error {
	limit := c.MaxInst
	if limit == 0 {
		limit = DefaultMaxInst
	}
	for !c.Exited {
		if c.Icount >= limit {
			return fmt.Errorf("%w (%d instructions, eip=%#x)", ErrInstLimit, c.Icount, c.EIP)
		}
		if err := c.Step(); err != nil {
			return err
		}
	}
	return nil
}

// RunImage is a convenience wrapper: load, run, and return the CPU for
// inspection. The error (if any) accompanies the partially-run CPU.
func RunImage(img *image.Image, os Kernel) (*CPU, error) {
	c, err := LoadImage(img)
	if err != nil {
		return nil, err
	}
	c.OS = os
	err = c.Run()
	return c, err
}

// stackGuardSpan bounds how far below the stack base a faulting push
// still classifies as stack overflow (covers pushes after a large
// SUB ESP frame) rather than a wild-pointer fault.
const stackGuardSpan = 1 << 16

func (c *CPU) push32(v uint32) error {
	c.Reg[x86.ESP] -= 4
	err := c.Mem.Store32(c.Reg[x86.ESP], v, c.EIP)
	if err != nil && c.stackBase != 0 {
		esp := c.Reg[x86.ESP]
		if esp < c.stackBase && c.stackBase-esp <= stackGuardSpan {
			return &StackOverflowError{ESP: esp, EIP: c.EIP, Err: err}
		}
	}
	return err
}

func (c *CPU) pop32() (uint32, error) {
	v, err := c.Mem.Load32(c.Reg[x86.ESP], c.EIP)
	if err != nil {
		return 0, err
	}
	c.Reg[x86.ESP] += 4
	return v, nil
}

// Flags packs the modeled EFLAGS bits into the architectural layout
// (bit 1 always set).
func (c *CPU) Flags() uint32 {
	f := uint32(1 << 1)
	set := func(cond bool, bit uint32) {
		if cond {
			f |= bit
		}
	}
	set(c.CF, 1<<0)
	set(c.PF, 1<<2)
	set(c.AF, 1<<4)
	set(c.ZF, 1<<6)
	set(c.SF, 1<<7)
	set(c.DF, 1<<10)
	set(c.OF, 1<<11)
	return f
}

// SetFlags unpacks an architectural EFLAGS dword.
func (c *CPU) SetFlags(f uint32) {
	c.CF = f&(1<<0) != 0
	c.PF = f&(1<<2) != 0
	c.AF = f&(1<<4) != 0
	c.ZF = f&(1<<6) != 0
	c.SF = f&(1<<7) != 0
	c.DF = f&(1<<10) != 0
	c.OF = f&(1<<11) != 0
}

// Cond evaluates an x86 condition code against the current flags.
func (c *CPU) Cond(cc x86.Cond) bool {
	var v bool
	switch cc &^ 1 {
	case x86.CondO:
		v = c.OF
	case x86.CondB:
		v = c.CF
	case x86.CondE:
		v = c.ZF
	case x86.CondBE:
		v = c.CF || c.ZF
	case x86.CondS:
		v = c.SF
	case x86.CondP:
		v = c.PF
	case x86.CondL:
		v = c.SF != c.OF
	case x86.CondLE:
		v = c.ZF || (c.SF != c.OF)
	}
	if cc&1 != 0 {
		v = !v
	}
	return v
}

// String renders the register state for debugging.
func (c *CPU) String() string {
	return fmt.Sprintf(
		"eax=%08x ebx=%08x ecx=%08x edx=%08x esi=%08x edi=%08x ebp=%08x esp=%08x eip=%08x "+
			"[cf=%t zf=%t sf=%t of=%t]",
		c.Reg[x86.EAX], c.Reg[x86.EBX], c.Reg[x86.ECX], c.Reg[x86.EDX],
		c.Reg[x86.ESI], c.Reg[x86.EDI], c.Reg[x86.EBP], c.Reg[x86.ESP], c.EIP,
		c.CF, c.ZF, c.SF, c.OF)
}
