package emu

// Regression tests for the flag-semantics sweep: shift/rotate edge
// table, 16-bit multiply/divide forms, 8-bit divide #DE boundaries,
// CBW/CWD, and REP string flag/ECX interaction under DF=1. The shift
// table compares execShift against an independent bit-at-a-time model
// written straight from the SDM pseudocode, so a transcription error
// in the fast path cannot also hide in the expectation.

import (
	"errors"
	"testing"

	"parallax/internal/x86"
)

// shiftModel executes one shift/rotate bit by bit per the SDM loops.
// Architecturally-undefined flag cases follow the repository's defined
// conventions (see internal/difftest doc.go): OF is set from the
// count-1 rule for every nonzero count, shifts leave AF unchanged,
// rotates leave SF/ZF/PF untouched, and a masked count of zero changes
// nothing at all.
type shiftModel struct {
	r          uint32
	cf, of     bool
	touchesSZP bool
	wrote      bool
}

func runShiftModel(op x86.Op, w uint8, a, count uint32, cfIn bool) shiftModel {
	bits := uint32(w)
	mask := widthMask(w)
	sign := signBit(w)
	a &= mask
	count &= 31
	m := shiftModel{r: a, cf: cfIn}
	if count == 0 {
		return m
	}
	m.wrote = true
	switch op {
	case x86.SHL, x86.SAL:
		for i := uint32(0); i < count; i++ {
			m.cf = m.r&sign != 0
			m.r = (m.r << 1) & mask
		}
		m.of = (m.r&sign != 0) != m.cf
		m.touchesSZP = true
	case x86.SHR:
		for i := uint32(0); i < count; i++ {
			m.cf = m.r&1 != 0
			m.r >>= 1
		}
		m.of = a&sign != 0
		m.touchesSZP = true
	case x86.SAR:
		s := a & sign
		for i := uint32(0); i < count; i++ {
			m.cf = m.r&1 != 0
			m.r = m.r>>1 | s
		}
		m.of = false
		m.touchesSZP = true
	case x86.ROL:
		for i := uint32(0); i < count%bits; i++ {
			hi := m.r&sign != 0
			m.r = (m.r << 1) & mask
			if hi {
				m.r |= 1
			}
		}
		m.cf = m.r&1 != 0
		m.of = (m.r&sign != 0) != m.cf
	case x86.ROR:
		for i := uint32(0); i < count%bits; i++ {
			lo := m.r&1 != 0
			m.r >>= 1
			if lo {
				m.r |= sign
			}
		}
		m.cf = m.r&sign != 0
		m.of = (m.r&sign != 0) != (m.r&(sign>>1) != 0)
	case x86.RCL:
		for i := uint32(0); i < count%(bits+1); i++ {
			hi := m.r&sign != 0
			m.r = (m.r << 1) & mask
			if m.cf {
				m.r |= 1
			}
			m.cf = hi
		}
		m.of = (m.r&sign != 0) != m.cf
	case x86.RCR:
		for i := uint32(0); i < count%(bits+1); i++ {
			lo := m.r&1 != 0
			m.r >>= 1
			if m.cf {
				m.r |= sign
			}
			m.cf = lo
		}
		m.of = (m.r&sign != 0) != (m.r&(sign>>1) != 0)
	}
	return m
}

func TestShiftRotateEdgeTable(t *testing.T) {
	ops := []x86.Op{x86.SHL, x86.SAL, x86.SHR, x86.SAR,
		x86.ROL, x86.ROR, x86.RCL, x86.RCR}
	for _, w := range []uint8{8, 16, 32} {
		bits := uint32(w)
		mask := widthMask(w)
		counts := []uint32{0, 1, bits - 1, bits, bits + 1, 31, 32, 33}
		values := []uint32{0, 1, signBit(w), signBit(w) >> 1,
			mask, 0xA5A5A5A5 & mask, 0x5A5A5A5A & mask}
		reg := x86.RegOp(x86.EAX)
		if w == 8 {
			reg = x86.RegOp(x86.AL)
		}
		for _, op := range ops {
			for _, count := range counts {
				for _, a := range values {
					for _, cfIn := range []bool{false, true} {
						want := runShiftModel(op, w, a, count, cfIn)

						c := New()
						const garbage = 0xDEAD0000
						c.Reg[x86.EAX] = garbage&^mask | a
						c.CF = cfIn
						c.AF = true // shifts must leave AF alone
						c.SF, c.ZF, c.PF = true, true, false
						inst := x86.Inst{Op: op, W: w,
							Dst: reg, Src: x86.ImmOp(int32(count))}
						if err := c.execShift(inst); err != nil {
							t.Fatalf("%v w=%d count=%d: %v", op, w, count, err)
						}

						name := func() string {
							return inst.String()
						}
						got := c.Reg[x86.EAX] & mask
						wantReg := a
						if want.wrote {
							wantReg = want.r
						}
						if got != wantReg {
							t.Errorf("%s a=%#x cf=%t: result %#x, want %#x",
								name(), a, cfIn, got, wantReg)
						}
						if c.Reg[x86.EAX]&^mask != garbage&^mask {
							t.Errorf("%s a=%#x: clobbered high bits: %#x",
								name(), a, c.Reg[x86.EAX])
						}
						wantCF, wantOF := want.cf, want.of
						if !want.wrote {
							wantCF, wantOF = cfIn, false
						}
						if c.CF != wantCF {
							t.Errorf("%s a=%#x cf=%t: CF=%t, want %t",
								name(), a, cfIn, c.CF, wantCF)
						}
						if want.wrote && c.OF != wantOF {
							t.Errorf("%s a=%#x cf=%t: OF=%t, want %t",
								name(), a, cfIn, c.OF, wantOF)
						}
						if !c.AF {
							t.Errorf("%s a=%#x: AF was clobbered", name(), a)
						}
						if want.touchesSZP {
							r := want.r
							if c.ZF != (r == 0) || c.SF != (r&signBit(w) != 0) ||
								c.PF != parity8(r) {
								t.Errorf("%s a=%#x: SZP=%t/%t/%t for r=%#x",
									name(), a, c.SF, c.ZF, c.PF, r)
							}
						} else if !c.SF || !c.ZF || c.PF {
							t.Errorf("%s a=%#x: rotate touched SZP", name(), a)
						}
					}
				}
			}
		}
	}
}

// TestRCROverflowFlag pins the fixed OF rule directly: the seed
// expression `x != (x != y)` reduces to y alone, dropping the MSB term
// of the SDM's "XOR of the two most-significant bits of the result".
func TestRCROverflowFlag(t *testing.T) {
	cases := []struct {
		a    uint32
		cf   bool
		want bool // OF after rcr eax,1
	}{
		// result = CF:a >> 1, so MSB(result)=cfIn, MSB-1(result)=bit31(a).
		{0x80000000, true, false}, // result 0xC0000000: bits 31,30 both set
		{0x80000000, false, true}, // result 0x40000000: only bit 30
		{0x00000000, true, true},  // result 0x80000000: only bit 31
		{0x00000000, false, false},
	}
	for _, tc := range cases {
		c := New()
		c.Reg[x86.EAX] = tc.a
		c.CF = tc.cf
		inst := x86.Inst{Op: x86.RCR, W: 32,
			Dst: x86.RegOp(x86.EAX), Src: x86.ImmOp(1)}
		if err := c.execShift(inst); err != nil {
			t.Fatal(err)
		}
		if c.OF != tc.want {
			t.Errorf("rcr eax,1 a=%#x cf=%t: OF=%t, want %t",
				tc.a, tc.cf, c.OF, tc.want)
		}
	}
}

func TestMulDiv16(t *testing.T) {
	op1 := func(op x86.Op, r x86.Reg) x86.Inst {
		return x86.Inst{Op: op, W: 16, Dst: x86.RegOp(r)}
	}
	t.Run("mul", func(t *testing.T) {
		c := New()
		c.Reg[x86.EAX] = 0xAAAA1234
		c.Reg[x86.EDX] = 0xBBBB0000
		c.Reg[x86.EBX] = 0xCCCC5678
		if err := c.execMul(op1(x86.MUL, x86.EBX)); err != nil {
			t.Fatal(err)
		}
		// 0x1234 * 0x5678 = 0x06260060
		if c.Reg[x86.EAX] != 0xAAAA0060 || c.Reg[x86.EDX] != 0xBBBB0626 {
			t.Errorf("mul bx: EAX=%#x EDX=%#x", c.Reg[x86.EAX], c.Reg[x86.EDX])
		}
		if !c.CF || !c.OF {
			t.Errorf("mul bx: CF=%t OF=%t, want true (DX nonzero)", c.CF, c.OF)
		}
	})
	t.Run("mul fits", func(t *testing.T) {
		c := New()
		c.Reg[x86.EAX] = 0x0100
		c.Reg[x86.EBX] = 0x00FF
		if err := c.execMul(op1(x86.MUL, x86.EBX)); err != nil {
			t.Fatal(err)
		}
		if c.Reg[x86.EAX] != 0xFF00 || c.Reg[x86.EDX]&0xFFFF != 0 {
			t.Errorf("mul bx: EAX=%#x EDX=%#x", c.Reg[x86.EAX], c.Reg[x86.EDX])
		}
		if c.CF || c.OF {
			t.Errorf("mul bx: CF=%t OF=%t, want false (DX zero)", c.CF, c.OF)
		}
	})
	t.Run("imul", func(t *testing.T) {
		c := New()
		c.Reg[x86.EAX] = 0xFFFF // AX = -1
		c.Reg[x86.EBX] = 0x0002
		if err := c.execMul(op1(x86.IMUL, x86.EBX)); err != nil {
			t.Fatal(err)
		}
		// -1 * 2 = -2 → DX:AX = FFFF:FFFE, fits in AX → CF=OF=false.
		if c.Reg[x86.EAX]&0xFFFF != 0xFFFE || c.Reg[x86.EDX]&0xFFFF != 0xFFFF {
			t.Errorf("imul bx: EAX=%#x EDX=%#x", c.Reg[x86.EAX], c.Reg[x86.EDX])
		}
		if c.CF || c.OF {
			t.Errorf("imul bx: CF=%t OF=%t, want false", c.CF, c.OF)
		}
	})
	t.Run("imul overflow", func(t *testing.T) {
		c := New()
		c.Reg[x86.EAX] = 0x4000
		c.Reg[x86.EBX] = 0x0002
		if err := c.execMul(op1(x86.IMUL, x86.EBX)); err != nil {
			t.Fatal(err)
		}
		// 16384*2 = 32768 does not fit in a signed word.
		if c.Reg[x86.EAX]&0xFFFF != 0x8000 || c.Reg[x86.EDX]&0xFFFF != 0 {
			t.Errorf("imul bx: EAX=%#x EDX=%#x", c.Reg[x86.EAX], c.Reg[x86.EDX])
		}
		if !c.CF || !c.OF {
			t.Errorf("imul bx: CF=%t OF=%t, want true", c.CF, c.OF)
		}
	})
	t.Run("div", func(t *testing.T) {
		c := New()
		c.Reg[x86.EDX] = 0xAAAA0001 // DX:AX = 0x0001_0002
		c.Reg[x86.EAX] = 0xBBBB0002
		c.Reg[x86.EBX] = 0xCCCC0003
		if err := c.execDiv(op1(x86.DIV, x86.EBX)); err != nil {
			t.Fatal(err)
		}
		// 0x10002 / 3 = 0x5556 rem 0.
		if c.Reg[x86.EAX] != 0xBBBB5556 || c.Reg[x86.EDX] != 0xAAAA0000 {
			t.Errorf("div bx: EAX=%#x EDX=%#x", c.Reg[x86.EAX], c.Reg[x86.EDX])
		}
	})
	t.Run("div #DE", func(t *testing.T) {
		c := New()
		c.Reg[x86.EDX] = 0x0002 // DX:AX = 0x0002_0000
		c.Reg[x86.EAX] = 0x0000
		c.Reg[x86.EBX] = 0x0002 // quotient 0x10000 > 0xFFFF
		err := c.execDiv(op1(x86.DIV, x86.EBX))
		var de *DivideError
		if !errors.As(err, &de) {
			t.Errorf("div bx: err=%v, want DivideError", err)
		}
	})
	t.Run("div quotient boundary", func(t *testing.T) {
		c := New()
		c.Reg[x86.EDX] = 0x0001 // DX:AX = 0x0001_FFFE = 0xFFFF*2
		c.Reg[x86.EAX] = 0xFFFE
		c.Reg[x86.EBX] = 0x0002
		if err := c.execDiv(op1(x86.DIV, x86.EBX)); err != nil {
			t.Fatal(err)
		}
		if c.Reg[x86.EAX]&0xFFFF != 0xFFFF || c.Reg[x86.EDX]&0xFFFF != 0 {
			t.Errorf("div bx: EAX=%#x EDX=%#x", c.Reg[x86.EAX], c.Reg[x86.EDX])
		}
	})
	t.Run("idiv boundaries", func(t *testing.T) {
		cases := []struct {
			dx, ax, bx uint32
			q, rem     uint32
			de         bool
		}{
			{0xFFFF, 0x0000, 0x0002, 0x8000, 0, false},      // -65536/2 = -32768
			{0x0000, 0xFFFE, 0x0002, 0x7FFF, 0, false},      // 65534/2 = 32767
			{0x0000, 0xFFFF, 0x0002, 0x7FFF, 1, false},      // 65535/2 = 32767 rem 1
			{0x0001, 0x0000, 0x0002, 0, 0, true},            // 65536/2 = 32768 → #DE
			{0xFFFE, 0xFFFE, 0x0002, 0, 0, true},            // -65538/2 = -32769 → #DE
			{0xFFFF, 0xFFFD, 0x0002, 0xFFFF, 0xFFFF, false}, // -3/2 = -1 rem -1
		}
		for _, tc := range cases {
			c := New()
			c.Reg[x86.EDX] = tc.dx
			c.Reg[x86.EAX] = tc.ax
			c.Reg[x86.EBX] = tc.bx
			err := c.execDiv(op1(x86.IDIV, x86.EBX))
			if tc.de {
				var de *DivideError
				if !errors.As(err, &de) {
					t.Errorf("idiv dx:ax=%04x:%04x/%d: err=%v, want #DE",
						tc.dx, tc.ax, tc.bx, err)
				}
				continue
			}
			if err != nil {
				t.Errorf("idiv dx:ax=%04x:%04x/%d: %v", tc.dx, tc.ax, tc.bx, err)
				continue
			}
			if c.Reg[x86.EAX]&0xFFFF != tc.q || c.Reg[x86.EDX]&0xFFFF != tc.rem {
				t.Errorf("idiv dx:ax=%04x:%04x/%d: AX=%#x DX=%#x, want q=%#x rem=%#x",
					tc.dx, tc.ax, tc.bx,
					c.Reg[x86.EAX]&0xFFFF, c.Reg[x86.EDX]&0xFFFF, tc.q, tc.rem)
			}
		}
	})
}

func TestDiv8Boundaries(t *testing.T) {
	op1 := func(op x86.Op) x86.Inst {
		return x86.Inst{Op: op, W: 8, Dst: x86.RegOp(x86.BL)}
	}
	cases := []struct {
		op     x86.Op
		ax, bl uint32
		al, ah uint32 // quotient, remainder
		de     bool
	}{
		{x86.DIV, 0x01FE, 2, 0xFF, 0, false}, // q=0xFF: largest legal
		{x86.DIV, 0x0200, 2, 0, 0, true},     // q=0x100 → #DE
		{x86.DIV, 0x0000, 0, 0, 0, true},     // divide by zero
		// IDIV: AX=-256/2=-128 (just legal), 256/2=128 (#DE),
		// 254/2=127 (legal), -258/2=-129 (#DE).
		{x86.IDIV, 0xFF00, 2, 0x80, 0, false},
		{x86.IDIV, 0x0100, 2, 0, 0, true},
		{x86.IDIV, 0x00FE, 2, 0x7F, 0, false},
		{x86.IDIV, 0xFEFE, 2, 0, 0, true},
		{x86.IDIV, 0xFFFD, 2, 0xFF, 0xFF, false}, // -3/2 = -1 rem -1
	}
	for _, tc := range cases {
		c := New()
		c.Reg[x86.EAX] = 0xDEAD0000 | tc.ax
		c.Reg[x86.EBX] = tc.bl
		err := c.execDiv(op1(tc.op))
		if tc.de {
			var de *DivideError
			if !errors.As(err, &de) {
				t.Errorf("%v ax=%#x/%d: err=%v, want #DE", tc.op, tc.ax, tc.bl, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("%v ax=%#x/%d: %v", tc.op, tc.ax, tc.bl, err)
			continue
		}
		al := c.Reg[x86.EAX] & 0xFF
		ah := c.Reg[x86.EAX] >> 8 & 0xFF
		if al != tc.al || ah != tc.ah {
			t.Errorf("%v ax=%#x/%d: AL=%#x AH=%#x, want %#x/%#x",
				tc.op, tc.ax, tc.bl, al, ah, tc.al, tc.ah)
		}
		if c.Reg[x86.EAX]>>16 != 0xDEAD {
			t.Errorf("%v: clobbered upper EAX: %#x", tc.op, c.Reg[x86.EAX])
		}
	}
}

// TestCbwCwd runs the 0x66-prefixed conversions end to end through
// decode so the new 16-bit forms of 0x98/0x99 are pinned.
func TestCbwCwd(t *testing.T) {
	code := asm(t, func(b *x86.Builder) {
		b.I(ri(x86.MOV, x86.EAX, 0x11110080)) // AL = 0x80
		b.I(ri(x86.MOV, x86.EDX, 0x22220000))
		b.I(x86.Inst{Op: x86.CWDE, W: 16}) // cbw: AX = 0xFF80
		b.I(x86.Inst{Op: x86.CDQ, W: 16})  // cwd: DX = 0xFFFF (AX negative)
		b.I(x86.Inst{Op: x86.RET, W: 32})
	})
	c := testCPU(t, code)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Reg[x86.EAX] != 0x1111FF80 {
		t.Errorf("cbw: EAX=%#x, want 0x1111ff80", c.Reg[x86.EAX])
	}
	if c.Reg[x86.EDX] != 0x2222FFFF {
		t.Errorf("cwd: EDX=%#x, want 0x2222ffff", c.Reg[x86.EDX])
	}

	code = asm(t, func(b *x86.Builder) {
		b.I(ri(x86.MOV, x86.EAX, 0x3333007F)) // AL positive
		b.I(ri(x86.MOV, x86.EDX, -1))
		b.I(x86.Inst{Op: x86.CWDE, W: 16}) // cbw: AX = 0x007F
		b.I(x86.Inst{Op: x86.CDQ, W: 16})  // cwd: DX = 0 (upper EDX kept)
		b.I(x86.Inst{Op: x86.RET, W: 32})
	})
	c = testCPU(t, code)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Reg[x86.EAX] != 0x3333007F {
		t.Errorf("cbw: EAX=%#x, want 0x3333007f", c.Reg[x86.EAX])
	}
	if c.Reg[x86.EDX] != 0xFFFF0000 {
		t.Errorf("cwd: EDX=%#x, want 0xffff0000", c.Reg[x86.EDX])
	}
}

// TestImul16SignExtension pins the two-operand IMUL width fix: without
// 16-bit sign extension, 0x4000*2 = 0x8000 looks like it fits and
// CF/OF stay clear.
func TestImul16SignExtension(t *testing.T) {
	c := New()
	c.Reg[x86.EAX] = 0x4000
	c.Reg[x86.EBX] = 0x0002
	inst := x86.Inst{Op: x86.IMUL, W: 16,
		Dst: x86.RegOp(x86.EAX), Src: x86.RegOp(x86.EBX)}
	if err := c.execMul(inst); err != nil {
		t.Fatal(err)
	}
	if c.Reg[x86.EAX]&0xFFFF != 0x8000 {
		t.Errorf("imul ax,bx: AX=%#x, want 0x8000", c.Reg[x86.EAX]&0xFFFF)
	}
	if !c.CF || !c.OF {
		t.Errorf("imul ax,bx: CF=%t OF=%t, want true (0x8000 is -32768)", c.CF, c.OF)
	}

	// -1 * -1 = 1 fits: flags clear.
	c = New()
	c.Reg[x86.EAX] = 0xFFFF
	inst = x86.Inst{Op: x86.IMUL, W: 16,
		Dst: x86.RegOp(x86.EAX), Src: x86.RegOp(x86.EAX), HasImm: true, Imm: -1}
	if err := c.execMul(inst); err != nil {
		t.Fatal(err)
	}
	if c.Reg[x86.EAX]&0xFFFF != 1 || c.CF || c.OF {
		t.Errorf("imul ax,ax,-1: AX=%#x CF=%t OF=%t, want 1/false/false",
			c.Reg[x86.EAX]&0xFFFF, c.CF, c.OF)
	}
}

// TestRepStringDF1 exercises REPNE SCASB and REPE CMPSB scanning
// backwards: final ECX, pointer positions, and ZF must match a real
// CPU's early-exit semantics.
func TestRepStringDF1(t *testing.T) {
	t.Run("repne scasb", func(t *testing.T) {
		code := asm(t, func(b *x86.Builder) {
			b.I(x86.Inst{Op: x86.STD, W: 32})
			b.I(ri(x86.MOV, x86.EDI, testDataBase+9))
			b.I(ri(x86.MOV, x86.ECX, 10))
			b.I(ri(x86.MOV, x86.EAX, 0x42))
			b.I(x86.Inst{Op: x86.SCAS, W: 8, RepNE: true})
			b.I(x86.Inst{Op: x86.CLD, W: 32})
			b.I(x86.Inst{Op: x86.RET, W: 32})
		})
		c := testCPU(t, code)
		// data[0..9] = 0..9, except data[4] = 0x42: scanning back from
		// index 9 visits 9,8,7,6,5,4 (6 elements) and stops on the hit.
		for i := 0; i < 10; i++ {
			if err := c.Mem.Store8(testDataBase+uint32(i), uint8(i), 0); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Mem.Store8(testDataBase+4, 0x42, 0); err != nil {
			t.Fatal(err)
		}
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		if c.Reg[x86.ECX] != 4 {
			t.Errorf("ECX=%d, want 4", c.Reg[x86.ECX])
		}
		if !c.ZF {
			t.Error("ZF=false, want true (match found)")
		}
		// EDI steps past the matching element.
		if c.Reg[x86.EDI] != testDataBase+3 {
			t.Errorf("EDI=%#x, want %#x", c.Reg[x86.EDI], uint32(testDataBase+3))
		}
	})
	t.Run("repe cmpsb", func(t *testing.T) {
		code := asm(t, func(b *x86.Builder) {
			b.I(x86.Inst{Op: x86.STD, W: 32})
			b.I(ri(x86.MOV, x86.ESI, testDataBase+7))
			b.I(ri(x86.MOV, x86.EDI, testDataBase+0x107))
			b.I(ri(x86.MOV, x86.ECX, 8))
			b.I(x86.Inst{Op: x86.CMPS, W: 8, Rep: true})
			b.I(x86.Inst{Op: x86.CLD, W: 32})
			b.I(x86.Inst{Op: x86.RET, W: 32})
		})
		c := testCPU(t, code)
		// Two equal 8-byte blocks except at index 2: comparing backwards
		// from index 7 runs 7,6,5,4,3,2 then stops unequal.
		for i := 0; i < 8; i++ {
			if err := c.Mem.Store8(testDataBase+uint32(i), uint8(i), 0); err != nil {
				t.Fatal(err)
			}
			v := uint8(i)
			if i == 2 {
				v = 0x99
			}
			if err := c.Mem.Store8(testDataBase+0x100+uint32(i), v, 0); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		if c.Reg[x86.ECX] != 2 {
			t.Errorf("ECX=%d, want 2", c.Reg[x86.ECX])
		}
		if c.ZF {
			t.Error("ZF=true, want false (mismatch ended the scan)")
		}
		// CMP 0x02 - 0x99 borrows.
		if !c.CF {
			t.Error("CF=false, want true (2 < 0x99)")
		}
		if c.Reg[x86.ESI] != testDataBase+1 {
			t.Errorf("ESI=%#x, want %#x", c.Reg[x86.ESI], uint32(testDataBase+1))
		}
	})
}
