// Package emu implements a 32-bit x86 interpreter: registers, EFLAGS,
// a segmented flat memory bus, Linux-style int 0x80 system calls, and
// deterministic instruction/cycle accounting.
//
// The emulator is the testbed substituting for the paper's real
// hardware: ROP chains, stack pivots and tampered gadgets execute here
// exactly as encoded byte streams, so integrity violations manifest as
// genuine malfunctions (wrong results, decode faults, memory faults)
// rather than simulated flags.
//
// The bus distinguishes instruction fetches from data reads and supports
// a fetch overlay, reproducing the split instruction-/data-cache view
// exploited by the Wurster et al. attack on checksumming schemes.
package emu

import (
	"bytes"
	"fmt"

	"parallax/internal/image"
)

// Access is a memory access flavor.
type Access uint8

// Access flavors.
const (
	AccessRead Access = iota
	AccessWrite
	AccessFetch
)

func (a Access) String() string {
	switch a {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	default:
		return "fetch"
	}
}

// FaultError is a memory access violation.
type FaultError struct {
	Addr   uint32
	EIP    uint32
	Access Access
	Reason string
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("emu: %s fault at %#x (eip=%#x): %s", e.Access, e.Addr, e.EIP, e.Reason)
}

// PageSize is the dirty-tracking granularity of Snapshot/Restore:
// writes are recorded per 4 KiB page, and Restore copies back only the
// pages a run touched.
const PageSize = 4096

// Segment is one mapped address range.
type Segment struct {
	Name string
	Addr uint32
	Data []byte
	Perm image.Perm

	// dirty is the per-page write bitmap (one bit per PageSize page),
	// armed by CPU.Snapshot and consumed by CPU.Restore. Nil when no
	// snapshot is active, so untracked stores cost one nil check.
	dirty []uint64
}

// End returns the first address past the segment.
func (s *Segment) End() uint32 { return s.Addr + uint32(len(s.Data)) }

// markDirty records a write to [off, off+n) in the page bitmap.
func (s *Segment) markDirty(off, n uint32) {
	if s.dirty == nil || n == 0 {
		return
	}
	for p := off / PageSize; p <= (off+n-1)/PageSize; p++ {
		s.dirty[p>>6] |= 1 << (p & 63)
	}
}

// MemBudgetError reports a Map that would take the address space past
// its configured byte budget.
type MemBudgetError struct {
	Segment   string
	Requested uint64 // bytes the rejected segment asked for
	Mapped    uint64 // bytes already mapped
	Budget    uint64
}

func (e *MemBudgetError) Error() string {
	return fmt.Sprintf("emu: mapping %q (%d bytes) exceeds memory budget (%d of %d bytes mapped)",
		e.Segment, e.Requested, e.Mapped, e.Budget)
}

// Memory is a flat 32-bit address space composed of non-overlapping
// segments.
type Memory struct {
	segs []*Segment
	last *Segment // single-entry lookup cache

	// Budget caps the total mapped bytes; 0 means unlimited. Exceeding
	// it makes Map fail with a *MemBudgetError.
	Budget uint64
	mapped uint64

	// codeEpoch counts modifications of executable bytes: any store or
	// Poke that lands in a PermX segment bumps it. It is kept as a cheap
	// coherence probe (CodeEpoch), but consumers that cache decoded or
	// translated code register an OnCodeInvalidate hook instead and
	// receive the exact modified range.
	codeEpoch uint64

	// onInval is the code-invalidation bus: every mutation of executable
	// bytes — stores, Poke, CPU.Patch, Restore copying baseline pages
	// back — notifies each registered hook with the affected range.
	onInval  []codeInvalHook
	invalSeq uint64
}

// codeInvalHook is one registered code-invalidation callback.
type codeInvalHook struct {
	id uint64
	fn func(lo, hi uint32)
}

// OnCodeInvalidate registers fn to be called whenever executable bytes
// in some range [lo, hi) are modified, through any path: ordinary
// stores into a PermX segment, Poke, CPU.Patch, or CPU.Restore copying
// snapshot baselines back over a dirtied executable page. Consumers
// that cache anything derived from code bytes (decoded instructions,
// translated blocks) register here and evict precisely instead of
// hardcoding calls into each mutation site.
//
// The range is half-open on both sides of the bus, by convention:
// every producer passes [first modified byte, one past the last) —
// stores report [addr, addr+n), Poke the union of its executable
// writes, Restore [page start, page end) per copied-back page — and
// every subscriber must treat hi as exclusive (a cached range [a, b)
// overlaps iff a < hi && lo < b). The boundary-byte regression tests
// in internal/emu/tb hold both directions of that contract.
//
// The returned cancel function unregisters fn; after cancel returns,
// the hook is never invoked again (including by later Snapshot/Restore
// cycles). Hooks run synchronously on the mutating goroutine and must
// not mutate memory themselves.
func (m *Memory) OnCodeInvalidate(fn func(lo, hi uint32)) (cancel func()) {
	m.invalSeq++
	id := m.invalSeq
	m.onInval = append(m.onInval, codeInvalHook{id: id, fn: fn})
	return func() {
		for i := range m.onInval {
			if m.onInval[i].id == id {
				m.onInval = append(m.onInval[:i], m.onInval[i+1:]...)
				return
			}
		}
	}
}

// notifyCodeInvalidate advances the code epoch and fans the modified
// range out to every registered hook.
func (m *Memory) notifyCodeInvalidate(lo, hi uint32) {
	m.codeEpoch++
	for i := range m.onInval {
		m.onInval[i].fn(lo, hi)
	}
}

// CodeEpoch returns the executable-byte modification counter. Decode
// caches built against one epoch must be discarded when it advances.
func (m *Memory) CodeEpoch() uint64 { return m.codeEpoch }

// NewMemory returns an empty address space.
func NewMemory() *Memory { return &Memory{} }

// Map adds a segment. Overlapping an existing segment is an error.
func (m *Memory) Map(name string, addr uint32, size uint32, perm image.Perm) (*Segment, error) {
	if size == 0 {
		return nil, fmt.Errorf("emu: segment %q has zero size", name)
	}
	if addr+size < addr {
		return nil, fmt.Errorf("emu: segment %q wraps the address space", name)
	}
	for _, s := range m.segs {
		if addr < s.End() && s.Addr < addr+size {
			return nil, fmt.Errorf("emu: segment %q [%#x,%#x) overlaps %q [%#x,%#x)",
				name, addr, addr+size, s.Name, s.Addr, s.End())
		}
	}
	if m.Budget != 0 && m.mapped+uint64(size) > m.Budget {
		return nil, &MemBudgetError{Segment: name, Requested: uint64(size),
			Mapped: m.mapped, Budget: m.Budget}
	}
	m.mapped += uint64(size)
	seg := &Segment{Name: name, Addr: addr, Data: make([]byte, size), Perm: perm}
	m.segs = append(m.segs, seg)
	return seg, nil
}

// Segment returns the segment containing addr, or nil.
func (m *Memory) Segment(addr uint32) *Segment {
	if s := m.last; s != nil && addr >= s.Addr && addr < s.End() {
		return s
	}
	for _, s := range m.segs {
		if addr >= s.Addr && addr < s.End() {
			m.last = s
			return s
		}
	}
	return nil
}

// SegmentByName returns the named segment, or nil.
func (m *Memory) SegmentByName(name string) *Segment {
	for _, s := range m.segs {
		if s.Name == name {
			return s
		}
	}
	return nil
}

func permFor(a Access) image.Perm {
	switch a {
	case AccessRead:
		return image.PermR
	case AccessWrite:
		return image.PermW
	default:
		return image.PermX
	}
}

// check resolves addr..addr+n-1 for the given access, returning the
// segment-relative slice.
func (m *Memory) check(addr uint32, n uint32, access Access, eip uint32) ([]byte, error) {
	s := m.Segment(addr)
	if s == nil {
		return nil, &FaultError{Addr: addr, EIP: eip, Access: access, Reason: "unmapped"}
	}
	if addr+n > s.End() || addr+n < addr {
		return nil, &FaultError{Addr: addr, EIP: eip, Access: access,
			Reason: "crosses segment boundary"}
	}
	if s.Perm&permFor(access) == 0 {
		return nil, &FaultError{Addr: addr, EIP: eip, Access: access,
			Reason: fmt.Sprintf("segment %s is %s", s.Name, s.Perm)}
	}
	off := addr - s.Addr
	if access == AccessWrite {
		// The caller is about to mutate the returned slice: record the
		// touched pages for Restore and, when the segment is executable
		// (a self-modifying program writing its own code), tell every
		// invalidation hook which code bytes are about to change.
		s.markDirty(off, n)
		if s.Perm&image.PermX != 0 {
			m.notifyCodeInvalidate(addr, addr+n)
		}
	}
	return s.Data[off : off+n], nil
}

// Read copies n bytes at addr as a data read.
func (m *Memory) Read(addr, n uint32, eip uint32) ([]byte, error) {
	b, err := m.check(addr, n, AccessRead, eip)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), b...), nil
}

// Load32 reads a little-endian dword.
func (m *Memory) Load32(addr uint32, eip uint32) (uint32, error) {
	b, err := m.check(addr, 4, AccessRead, eip)
	if err != nil {
		return 0, err
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
}

// Load16 reads a little-endian word.
func (m *Memory) Load16(addr uint32, eip uint32) (uint16, error) {
	b, err := m.check(addr, 2, AccessRead, eip)
	if err != nil {
		return 0, err
	}
	return uint16(b[0]) | uint16(b[1])<<8, nil
}

// Load8 reads a byte.
func (m *Memory) Load8(addr uint32, eip uint32) (uint8, error) {
	b, err := m.check(addr, 1, AccessRead, eip)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

// Store32 writes a little-endian dword.
func (m *Memory) Store32(addr uint32, v uint32, eip uint32) error {
	b, err := m.check(addr, 4, AccessWrite, eip)
	if err != nil {
		return err
	}
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	return nil
}

// Store16 writes a little-endian word.
func (m *Memory) Store16(addr uint32, v uint16, eip uint32) error {
	b, err := m.check(addr, 2, AccessWrite, eip)
	if err != nil {
		return err
	}
	b[0], b[1] = byte(v), byte(v>>8)
	return nil
}

// Store8 writes a byte.
func (m *Memory) Store8(addr uint32, v uint8, eip uint32) error {
	b, err := m.check(addr, 1, AccessWrite, eip)
	if err != nil {
		return err
	}
	b[0] = v
	return nil
}

// Poke writes bytes ignoring permissions. It models out-of-band
// modification: a debugger poking text, or an attacker patching the
// binary on disk. Returns an error only for unmapped addresses.
func (m *Memory) Poke(addr uint32, b []byte) error {
	touchedCode := false
	var codeLo, codeHi uint32
	// The invalidation must fire even when a later byte faults: the
	// bytes already written stay written.
	defer func() {
		if touchedCode {
			m.notifyCodeInvalidate(codeLo, codeHi)
		}
	}()
	for i, v := range b {
		a := addr + uint32(i)
		s := m.Segment(a)
		if s == nil {
			return &FaultError{Addr: a, Access: AccessWrite, Reason: "unmapped (poke)"}
		}
		off := a - s.Addr
		s.Data[off] = v
		s.markDirty(off, 1)
		if s.Perm&image.PermX != 0 {
			if !touchedCode {
				codeLo = a
			}
			touchedCode = true
			codeHi = a + 1
		}
	}
	return nil
}

// EqualAt reports whether the n bytes at addr equal b, ignoring
// permissions (the read-side counterpart of Poke). Unmapped bytes in
// the range make it false. It allocates nothing: the shared
// translation catalog uses it to verify a candidate translation's code
// bytes against live memory on every adoption.
func (m *Memory) EqualAt(addr uint32, b []byte) bool {
	for len(b) > 0 {
		s := m.Segment(addr)
		if s == nil {
			return false
		}
		off := addr - s.Addr
		n := uint32(len(s.Data)) - off
		if uint32(len(b)) < n {
			n = uint32(len(b))
		}
		if !bytes.Equal(b[:n], s.Data[off:off+n]) {
			return false
		}
		addr += n
		b = b[n:]
	}
	return true
}

// Peek reads bytes ignoring permissions.
func (m *Memory) Peek(addr uint32, n uint32) ([]byte, error) {
	out := make([]byte, n)
	for i := range out {
		a := addr + uint32(i)
		s := m.Segment(a)
		if s == nil {
			return nil, &FaultError{Addr: a, Access: AccessRead, Reason: "unmapped (peek)"}
		}
		out[i] = s.Data[a-s.Addr]
	}
	return out, nil
}
