package emu

import (
	"fmt"

	"parallax/internal/obs"
	"parallax/internal/x86"
)

func widthMask(w uint8) uint32 {
	switch w {
	case 8:
		return 0xFF
	case 16:
		return 0xFFFF
	default:
		return 0xFFFFFFFF
	}
}

func signBit(w uint8) uint32 { return 1 << (w - 1) }

// reg8 returns the value of an 8-bit register by ModRM index
// (AL,CL,DL,BL,AH,CH,DH,BH).
func (c *CPU) reg8(r x86.Reg) uint32 {
	if r < 4 {
		return c.Reg[r] & 0xFF
	}
	return (c.Reg[r-4] >> 8) & 0xFF
}

func (c *CPU) setReg8(r x86.Reg, v uint32) {
	v &= 0xFF
	if r < 4 {
		c.Reg[r] = c.Reg[r]&^uint32(0xFF) | v
	} else {
		c.Reg[r-4] = c.Reg[r-4]&^uint32(0xFF00) | v<<8
	}
}

func (c *CPU) regRead(r x86.Reg, w uint8) uint32 {
	switch w {
	case 8:
		return c.reg8(r)
	case 16:
		return c.Reg[r] & 0xFFFF
	default:
		return c.Reg[r]
	}
}

func (c *CPU) regWrite(r x86.Reg, w uint8, v uint32) {
	switch w {
	case 8:
		c.setReg8(r, v)
	case 16:
		c.Reg[r] = c.Reg[r]&^uint32(0xFFFF) | v&0xFFFF
	default:
		c.Reg[r] = v
	}
}

// effAddr computes the effective address of a memory operand.
func (c *CPU) effAddr(o x86.Operand) uint32 {
	a := uint32(o.Disp)
	if o.HasBase {
		a += c.Reg[o.Base]
	}
	if o.HasIndex {
		a += c.Reg[o.Index] * uint32(o.Scale)
	}
	return a
}

// readOp reads an operand value at the given width.
func (c *CPU) readOp(o x86.Operand, w uint8) (uint32, error) {
	switch o.Kind {
	case x86.KReg:
		return c.regRead(o.Reg, w), nil
	case x86.KImm:
		return uint32(o.Imm) & widthMask(w), nil
	case x86.KMem:
		addr := c.effAddr(o)
		switch w {
		case 8:
			v, err := c.Mem.Load8(addr, c.EIP)
			return uint32(v), err
		case 16:
			v, err := c.Mem.Load16(addr, c.EIP)
			return uint32(v), err
		default:
			return c.Mem.Load32(addr, c.EIP)
		}
	default:
		return 0, fmt.Errorf("emu: read of empty operand at eip=%#x", c.EIP)
	}
}

// writeOp writes an operand at the given width.
func (c *CPU) writeOp(o x86.Operand, w uint8, v uint32) error {
	switch o.Kind {
	case x86.KReg:
		c.regWrite(o.Reg, w, v)
		return nil
	case x86.KMem:
		addr := c.effAddr(o)
		switch w {
		case 8:
			return c.Mem.Store8(addr, uint8(v), c.EIP)
		case 16:
			return c.Mem.Store16(addr, uint16(v), c.EIP)
		default:
			return c.Mem.Store32(addr, v, c.EIP)
		}
	default:
		return fmt.Errorf("emu: write to non-writable operand at eip=%#x", c.EIP)
	}
}

func parity8(v uint32) bool {
	v &= 0xFF
	v ^= v >> 4
	v ^= v >> 2
	v ^= v >> 1
	return v&1 == 0
}

// setSZP sets the sign/zero/parity flags from a result.
func (c *CPU) setSZP(v uint32, w uint8) {
	v &= widthMask(w)
	c.ZF = v == 0
	c.SF = v&signBit(w) != 0
	c.PF = parity8(v)
}

// addFlags computes a+b(+carry) and sets CF/OF/AF/SZP.
func (c *CPU) addFlags(a, b uint32, carry bool, w uint8) uint32 {
	mask := widthMask(w)
	a &= mask
	b &= mask
	cin := uint32(0)
	if carry {
		cin = 1
	}
	r64 := uint64(a) + uint64(b) + uint64(cin)
	r := uint32(r64) & mask
	c.CF = r64 > uint64(mask)
	c.OF = (^(a ^ b) & (a ^ r) & signBit(w)) != 0
	c.AF = ((a ^ b ^ r) & 0x10) != 0
	c.setSZP(r, w)
	return r
}

// subFlags computes a-b(-borrow) and sets CF/OF/AF/SZP.
func (c *CPU) subFlags(a, b uint32, borrow bool, w uint8) uint32 {
	mask := widthMask(w)
	a &= mask
	b &= mask
	bin := uint32(0)
	if borrow {
		bin = 1
	}
	r := (a - b - bin) & mask
	c.CF = uint64(a) < uint64(b)+uint64(bin)
	c.OF = ((a ^ b) & (a ^ r) & signBit(w)) != 0
	c.AF = ((a ^ b ^ r) & 0x10) != 0
	c.setSZP(r, w)
	return r
}

// logicFlags sets flags for AND/OR/XOR/TEST results.
func (c *CPU) logicFlags(r uint32, w uint8) {
	c.CF = false
	c.OF = false
	c.AF = false
	c.setSZP(r, w)
}

// exec dispatches one decoded instruction. On return EIP points at the
// next instruction (or the control transfer target).
func (c *CPU) exec(inst x86.Inst) error {
	next := c.EIP + uint32(inst.Len)
	c.Cycles += cost(&inst)

	switch inst.Op {
	case x86.ADD, x86.ADC, x86.SUB, x86.SBB, x86.CMP:
		a, err := c.readOp(inst.Dst, inst.W)
		if err != nil {
			return err
		}
		b, err := c.readOp(inst.Src, inst.W)
		if err != nil {
			return err
		}
		var r uint32
		switch inst.Op {
		case x86.ADD:
			r = c.addFlags(a, b, false, inst.W)
		case x86.ADC:
			r = c.addFlags(a, b, c.CF, inst.W)
		case x86.SUB, x86.CMP:
			r = c.subFlags(a, b, false, inst.W)
		case x86.SBB:
			r = c.subFlags(a, b, c.CF, inst.W)
		}
		if inst.Op != x86.CMP {
			if err := c.writeOp(inst.Dst, inst.W, r); err != nil {
				return err
			}
		}

	case x86.AND, x86.OR, x86.XOR, x86.TEST:
		a, err := c.readOp(inst.Dst, inst.W)
		if err != nil {
			return err
		}
		b, err := c.readOp(inst.Src, inst.W)
		if err != nil {
			return err
		}
		var r uint32
		switch inst.Op {
		case x86.AND, x86.TEST:
			r = a & b
		case x86.OR:
			r = a | b
		case x86.XOR:
			r = a ^ b
		}
		r &= widthMask(inst.W)
		c.logicFlags(r, inst.W)
		if inst.Op != x86.TEST {
			if err := c.writeOp(inst.Dst, inst.W, r); err != nil {
				return err
			}
		}

	case x86.MOV:
		v, err := c.readOp(inst.Src, inst.W)
		if err != nil {
			return err
		}
		if err := c.writeOp(inst.Dst, inst.W, v); err != nil {
			return err
		}

	case x86.XCHG:
		a, err := c.readOp(inst.Dst, inst.W)
		if err != nil {
			return err
		}
		b, err := c.readOp(inst.Src, inst.W)
		if err != nil {
			return err
		}
		if err := c.writeOp(inst.Dst, inst.W, b); err != nil {
			return err
		}
		if err := c.writeOp(inst.Src, inst.W, a); err != nil {
			return err
		}

	case x86.LEA:
		c.regWrite(inst.Dst.Reg, 32, c.effAddr(inst.Src))

	case x86.PUSH:
		v, err := c.readOp(inst.Dst, 32)
		if err != nil {
			return err
		}
		if err := c.push32(v); err != nil {
			return err
		}

	case x86.POP:
		v, err := c.pop32()
		if err != nil {
			return err
		}
		// A memory destination uses ESP *after* the increment.
		if err := c.writeOp(inst.Dst, 32, v); err != nil {
			return err
		}

	case x86.INC, x86.DEC:
		a, err := c.readOp(inst.Dst, inst.W)
		if err != nil {
			return err
		}
		savedCF := c.CF
		var r uint32
		if inst.Op == x86.INC {
			r = c.addFlags(a, 1, false, inst.W)
		} else {
			r = c.subFlags(a, 1, false, inst.W)
		}
		c.CF = savedCF // INC/DEC preserve CF
		if err := c.writeOp(inst.Dst, inst.W, r); err != nil {
			return err
		}

	case x86.NOT:
		a, err := c.readOp(inst.Dst, inst.W)
		if err != nil {
			return err
		}
		if err := c.writeOp(inst.Dst, inst.W, ^a&widthMask(inst.W)); err != nil {
			return err
		}

	case x86.NEG:
		a, err := c.readOp(inst.Dst, inst.W)
		if err != nil {
			return err
		}
		r := c.subFlags(0, a, false, inst.W)
		c.CF = a&widthMask(inst.W) != 0
		if err := c.writeOp(inst.Dst, inst.W, r); err != nil {
			return err
		}

	case x86.MUL, x86.IMUL:
		if err := c.execMul(inst); err != nil {
			return err
		}

	case x86.DIV, x86.IDIV:
		if err := c.execDiv(inst); err != nil {
			return err
		}

	case x86.ROL, x86.ROR, x86.RCL, x86.RCR, x86.SHL, x86.SAL, x86.SHR, x86.SAR:
		if err := c.execShift(inst); err != nil {
			return err
		}

	case x86.MOVZX, x86.MOVSX:
		v, err := c.readOp(inst.Src, inst.W)
		if err != nil {
			return err
		}
		if inst.Op == x86.MOVSX && v&signBit(inst.W) != 0 {
			v |= ^widthMask(inst.W)
		}
		c.regWrite(inst.Dst.Reg, 32, v)

	case x86.CALL:
		target, err := c.branchTarget(inst)
		if err != nil {
			return err
		}
		if err := c.push32(next); err != nil {
			return err
		}
		c.EIP = target
		return c.checkSentinel()

	case x86.JMP:
		target, err := c.branchTarget(inst)
		if err != nil {
			return err
		}
		c.EIP = target
		return c.checkSentinel()

	case x86.JCC:
		if c.Cond(inst.Cond) {
			c.EIP = inst.Target
			return nil
		}

	case x86.SETCC:
		v := uint32(0)
		if c.Cond(inst.Cond) {
			v = 1
		}
		if err := c.writeOp(inst.Dst, 8, v); err != nil {
			return err
		}

	case x86.RET:
		ret, err := c.pop32()
		if err != nil {
			return err
		}
		c.Reg[x86.ESP] += uint32(uint16(inst.Imm))
		if c.RetHook != nil {
			c.RetHook(c.EIP, ret)
		}
		if c.Trace != nil {
			c.Trace.Emit(obs.Event{Kind: obs.EventRet, Icount: c.Icount, PC: c.EIP, To: ret})
		}
		c.EIP = ret
		return c.checkSentinel()

	case x86.RETF:
		ret, err := c.pop32()
		if err != nil {
			return err
		}
		if _, err := c.pop32(); err != nil { // discard CS
			return err
		}
		c.Reg[x86.ESP] += uint32(uint16(inst.Imm))
		if c.RetHook != nil {
			c.RetHook(c.EIP, ret)
		}
		if c.Trace != nil {
			c.Trace.Emit(obs.Event{Kind: obs.EventRet, Icount: c.Icount, PC: c.EIP, To: ret})
		}
		c.EIP = ret
		return c.checkSentinel()

	case x86.LEAVE:
		c.Reg[x86.ESP] = c.Reg[x86.EBP]
		v, err := c.pop32()
		if err != nil {
			return err
		}
		c.Reg[x86.EBP] = v

	case x86.NOP:

	case x86.HLT:
		return ErrHalted

	case x86.INT3:
		return ErrBreakpoint

	case x86.INT:
		if uint8(inst.Imm) != 0x80 || c.OS == nil {
			return fmt.Errorf("emu: unhandled int %#x at eip=%#x", uint8(inst.Imm), c.EIP)
		}
		c.EIP = next // syscalls observe the post-instruction EIP
		return c.OS.Syscall(c)

	case x86.PUSHAD:
		sp := c.Reg[x86.ESP]
		order := []x86.Reg{x86.EAX, x86.ECX, x86.EDX, x86.EBX, x86.ESP, x86.EBP, x86.ESI, x86.EDI}
		for _, r := range order {
			v := c.Reg[r]
			if r == x86.ESP {
				v = sp
			}
			if err := c.push32(v); err != nil {
				return err
			}
		}

	case x86.POPAD:
		order := []x86.Reg{x86.EDI, x86.ESI, x86.EBP, x86.ESP, x86.EBX, x86.EDX, x86.ECX, x86.EAX}
		for _, r := range order {
			v, err := c.pop32()
			if err != nil {
				return err
			}
			if r != x86.ESP { // ESP value is discarded
				c.Reg[r] = v
			}
		}

	case x86.PUSHFD:
		if err := c.push32(c.Flags()); err != nil {
			return err
		}

	case x86.POPFD:
		v, err := c.pop32()
		if err != nil {
			return err
		}
		c.SetFlags(v)

	case x86.LAHF:
		var ah uint32 = 1 << 1
		if c.CF {
			ah |= 1 << 0
		}
		if c.PF {
			ah |= 1 << 2
		}
		if c.AF {
			ah |= 1 << 4
		}
		if c.ZF {
			ah |= 1 << 6
		}
		if c.SF {
			ah |= 1 << 7
		}
		c.setReg8(x86.AH, ah)

	case x86.SAHF:
		ah := c.reg8(x86.AH)
		c.CF = ah&(1<<0) != 0
		c.PF = ah&(1<<2) != 0
		c.AF = ah&(1<<4) != 0
		c.ZF = ah&(1<<6) != 0
		c.SF = ah&(1<<7) != 0

	case x86.CDQ:
		if inst.W == 16 { // CWD: DX <- sign of AX
			if c.Reg[x86.EAX]&(1<<15) != 0 {
				c.Reg[x86.EDX] = c.Reg[x86.EDX]&^uint32(0xFFFF) | 0xFFFF
			} else {
				c.Reg[x86.EDX] &^= 0xFFFF
			}
		} else if c.Reg[x86.EAX]&(1<<31) != 0 {
			c.Reg[x86.EDX] = 0xFFFFFFFF
		} else {
			c.Reg[x86.EDX] = 0
		}

	case x86.CWDE:
		if inst.W == 16 { // CBW: AX <- sext AL
			v := uint32(uint16(int16(int8(c.Reg[x86.EAX]))))
			c.Reg[x86.EAX] = c.Reg[x86.EAX]&^uint32(0xFFFF) | v
		} else {
			v := c.Reg[x86.EAX] & 0xFFFF
			if v&(1<<15) != 0 {
				v |= 0xFFFF0000
			}
			c.Reg[x86.EAX] = v
		}

	case x86.CLC:
		c.CF = false
	case x86.STC:
		c.CF = true
	case x86.CMC:
		c.CF = !c.CF
	case x86.CLD:
		c.DF = false
	case x86.STD:
		c.DF = true

	case x86.MOVS, x86.STOS, x86.LODS, x86.SCAS, x86.CMPS:
		if err := c.execString(inst); err != nil {
			return err
		}

	default:
		return fmt.Errorf("emu: unimplemented op %v at eip=%#x", inst.Op, c.EIP)
	}

	c.EIP = next
	return nil
}

// branchTarget resolves the destination of a CALL/JMP.
func (c *CPU) branchTarget(inst x86.Inst) (uint32, error) {
	if inst.Rel {
		return inst.Target, nil
	}
	return c.readOp(inst.Dst, 32)
}

// checkSentinel ends the run when control returns to the exit sentinel.
func (c *CPU) checkSentinel() error {
	if c.EIP == ExitSentinel {
		c.Exited = true
		c.Status = int32(c.Reg[x86.EAX])
	}
	return nil
}

func (c *CPU) execMul(inst x86.Inst) error {
	// One-operand forms multiply into EDX:EAX (or AX for width 8).
	if inst.Src.Kind == x86.KNone && !inst.HasImm {
		v, err := c.readOp(inst.Dst, inst.W)
		if err != nil {
			return err
		}
		switch inst.W {
		case 8:
			var r uint32
			if inst.Op == x86.MUL {
				r = (c.Reg[x86.EAX] & 0xFF) * v
				c.CF = r > 0xFF
			} else {
				r = uint32(int32(int8(c.Reg[x86.EAX])) * int32(int8(v)))
				c.CF = int32(int16(r)) != int32(int8(r))
			}
			c.Reg[x86.EAX] = c.Reg[x86.EAX]&^uint32(0xFFFF) | r&0xFFFF
			c.OF = c.CF
		case 16:
			// Word form multiplies AX by the operand into DX:AX.
			var r uint32
			if inst.Op == x86.MUL {
				r = (c.Reg[x86.EAX] & 0xFFFF) * v
				c.CF = r > 0xFFFF
			} else {
				r = uint32(int32(int16(c.Reg[x86.EAX])) * int32(int16(v)))
				c.CF = int32(r) != int32(int16(r))
			}
			c.Reg[x86.EAX] = c.Reg[x86.EAX]&^uint32(0xFFFF) | r&0xFFFF
			c.Reg[x86.EDX] = c.Reg[x86.EDX]&^uint32(0xFFFF) | r>>16
			c.OF = c.CF
		default:
			a := uint64(c.Reg[x86.EAX])
			if inst.Op == x86.MUL {
				r := a * uint64(v)
				c.Reg[x86.EAX] = uint32(r)
				c.Reg[x86.EDX] = uint32(r >> 32)
				c.CF = c.Reg[x86.EDX] != 0
			} else {
				r := int64(int32(a)) * int64(int32(v))
				c.Reg[x86.EAX] = uint32(r)
				c.Reg[x86.EDX] = uint32(uint64(r) >> 32)
				c.CF = r != int64(int32(r))
			}
			c.OF = c.CF
		}
		// SF/ZF/PF are architecturally undefined after MUL; we define
		// them from the low result for determinism.
		c.setSZP(c.Reg[x86.EAX], 32)
		return nil
	}

	// Two- and three-operand IMUL: truncated signed multiply into a
	// register.
	a, err := c.readOp(inst.Src, inst.W)
	if err != nil {
		return err
	}
	var b uint32
	if inst.HasImm {
		b = uint32(inst.Imm)
	} else {
		b = c.regRead(inst.Dst.Reg, inst.W)
	}
	r := sext64(a, inst.W) * sext64(b, inst.W)
	c.regWrite(inst.Dst.Reg, inst.W, uint32(r))
	c.CF = r != sext64(uint32(r), inst.W)
	c.OF = c.CF
	c.setSZP(uint32(r), inst.W)
	return nil
}

// sext64 sign-extends the low w bits of v to a signed 64-bit value.
func sext64(v uint32, w uint8) int64 {
	switch w {
	case 8:
		return int64(int8(v))
	case 16:
		return int64(int16(v))
	default:
		return int64(int32(v))
	}
}

func (c *CPU) execDiv(inst x86.Inst) error {
	v, err := c.readOp(inst.Dst, inst.W)
	if err != nil {
		return err
	}
	if v&widthMask(inst.W) == 0 {
		return &DivideError{EIP: c.EIP}
	}
	switch inst.W {
	case 8:
		dividend := c.Reg[x86.EAX] & 0xFFFF
		if inst.Op == x86.DIV {
			q := dividend / v
			rem := dividend % v
			if q > 0xFF {
				return &DivideError{EIP: c.EIP}
			}
			c.Reg[x86.EAX] = c.Reg[x86.EAX]&^uint32(0xFFFF) | rem<<8 | q
		} else {
			d := int32(int16(dividend))
			s := int32(int8(v))
			q := d / s
			rem := d % s
			if q > 127 || q < -128 {
				return &DivideError{EIP: c.EIP}
			}
			c.Reg[x86.EAX] = c.Reg[x86.EAX]&^uint32(0xFFFF) |
				uint32(uint8(rem))<<8 | uint32(uint8(q))
		}
	case 16:
		// Word form divides DX:AX, quotient to AX and remainder to DX.
		dividend := (c.Reg[x86.EDX]&0xFFFF)<<16 | c.Reg[x86.EAX]&0xFFFF
		if inst.Op == x86.DIV {
			q := dividend / v
			rem := dividend % v
			if q > 0xFFFF {
				return &DivideError{EIP: c.EIP}
			}
			c.Reg[x86.EAX] = c.Reg[x86.EAX]&^uint32(0xFFFF) | q
			c.Reg[x86.EDX] = c.Reg[x86.EDX]&^uint32(0xFFFF) | rem
		} else {
			d := int32(dividend)
			s := int32(int16(v))
			q := d / s
			rem := d % s
			if q > 0x7FFF || q < -0x8000 {
				return &DivideError{EIP: c.EIP}
			}
			c.Reg[x86.EAX] = c.Reg[x86.EAX]&^uint32(0xFFFF) | uint32(uint16(q))
			c.Reg[x86.EDX] = c.Reg[x86.EDX]&^uint32(0xFFFF) | uint32(uint16(rem))
		}
	default:
		dividend := uint64(c.Reg[x86.EDX])<<32 | uint64(c.Reg[x86.EAX])
		if inst.Op == x86.DIV {
			q := dividend / uint64(v)
			rem := dividend % uint64(v)
			if q > 0xFFFFFFFF {
				return &DivideError{EIP: c.EIP}
			}
			c.Reg[x86.EAX] = uint32(q)
			c.Reg[x86.EDX] = uint32(rem)
		} else {
			d := int64(dividend)
			s := int64(int32(v))
			q := d / s
			rem := d % s
			if q > 0x7FFFFFFF || q < -0x80000000 {
				return &DivideError{EIP: c.EIP}
			}
			c.Reg[x86.EAX] = uint32(q)
			c.Reg[x86.EDX] = uint32(rem)
		}
	}
	return nil
}

func (c *CPU) execShift(inst x86.Inst) error {
	a, err := c.readOp(inst.Dst, inst.W)
	if err != nil {
		return err
	}
	countV, err := c.readOp(inst.Src, 8)
	if err != nil {
		return err
	}
	count := countV & 31
	if count == 0 {
		return nil // flags unchanged
	}
	w := inst.W
	mask := widthMask(w)
	bits := uint32(w)
	a &= mask
	var r uint32
	switch inst.Op {
	case x86.SHL, x86.SAL:
		if count <= bits {
			c.CF = a&(1<<(bits-count)) != 0
		} else {
			c.CF = false
		}
		r = (a << count) & mask
		c.OF = (r&signBit(w) != 0) != c.CF
		c.setSZP(r, w)
	case x86.SHR:
		if count <= bits {
			c.CF = a&(1<<(count-1)) != 0
		} else {
			c.CF = false
		}
		r = a >> count
		c.OF = a&signBit(w) != 0
		c.setSZP(r, w)
	case x86.SAR:
		sa := int32(a << (32 - bits)) // sign-position-normalize
		r = uint32(sa>>(32-bits)>>min32(count, 31)) & mask
		c.CF = count <= bits && (a>>(count-1))&1 != 0
		if count > bits {
			c.CF = a&signBit(w) != 0
		}
		c.OF = false
		c.setSZP(r, w)
	case x86.ROL:
		n := count % bits
		r = (a<<n | a>>(bits-n)) & mask
		if n == 0 {
			r = a
		}
		c.CF = r&1 != 0
		c.OF = (r&signBit(w) != 0) != c.CF
	case x86.ROR:
		n := count % bits
		r = (a>>n | a<<(bits-n)) & mask
		if n == 0 {
			r = a
		}
		c.CF = r&signBit(w) != 0
		c.OF = (r&signBit(w) != 0) != ((r<<1)&signBit(w) != 0)
	case x86.RCL:
		r = a
		for i := uint32(0); i < count%(bits+1); i++ {
			hi := r&signBit(w) != 0
			r = (r << 1) & mask
			if c.CF {
				r |= 1
			}
			c.CF = hi
		}
		c.OF = (r&signBit(w) != 0) != c.CF
	case x86.RCR:
		r = a
		for i := uint32(0); i < count%(bits+1); i++ {
			lo := r&1 != 0
			r >>= 1
			if c.CF {
				r |= signBit(w)
			}
			c.CF = lo
		}
		// OF = XOR of the two most-significant result bits (the SDM
		// specifies MSB(dest) XOR CF before the rotate for count 1,
		// which lands in exactly these two positions afterwards).
		c.OF = (r&signBit(w) != 0) != (r&(signBit(w)>>1) != 0)
	}
	return c.writeOp(inst.Dst, w, r)
}

func min32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

// stringStep is the per-element pointer adjustment for string ops.
func (c *CPU) stringStep(w uint8) uint32 {
	n := uint32(w / 8)
	if c.DF {
		return -n & 0xFFFFFFFF
	}
	return n
}

// maxRepIterations bounds a single REP so a corrupted ECX cannot hang
// the emulator for the full address space.
const maxRepIterations = 1 << 24

func (c *CPU) execString(inst x86.Inst) error {
	w := inst.W
	step := c.stringStep(w)
	one := func() (bool, error) { // returns done-for-scan
		var err error
		switch inst.Op {
		case x86.MOVS:
			var v uint32
			v, err = c.readOp(x86.MemOp(x86.ESI, 0), w)
			if err != nil {
				return false, err
			}
			err = c.writeOp(x86.MemOp(x86.EDI, 0), w, v)
			c.Reg[x86.ESI] += step
			c.Reg[x86.EDI] += step
		case x86.STOS:
			err = c.writeOp(x86.MemOp(x86.EDI, 0), w, c.regRead(x86.EAX, w))
			c.Reg[x86.EDI] += step
		case x86.LODS:
			var v uint32
			v, err = c.readOp(x86.MemOp(x86.ESI, 0), w)
			if err != nil {
				return false, err
			}
			c.regWrite(x86.EAX, w, v)
			c.Reg[x86.ESI] += step
		case x86.SCAS:
			var v uint32
			v, err = c.readOp(x86.MemOp(x86.EDI, 0), w)
			if err != nil {
				return false, err
			}
			c.subFlags(c.regRead(x86.EAX, w), v, false, w)
			c.Reg[x86.EDI] += step
			return true, nil
		case x86.CMPS:
			var a, b uint32
			a, err = c.readOp(x86.MemOp(x86.ESI, 0), w)
			if err != nil {
				return false, err
			}
			b, err = c.readOp(x86.MemOp(x86.EDI, 0), w)
			if err != nil {
				return false, err
			}
			c.subFlags(a, b, false, w)
			c.Reg[x86.ESI] += step
			c.Reg[x86.EDI] += step
			return true, nil
		}
		return false, err
	}

	if !inst.Rep && !inst.RepNE {
		_, err := one()
		return err
	}
	iters := 0
	for c.Reg[x86.ECX] != 0 {
		if iters++; iters > maxRepIterations {
			return fmt.Errorf("emu: rep iteration bound exceeded at eip=%#x", c.EIP)
		}
		compares, err := one()
		if err != nil {
			return err
		}
		c.Reg[x86.ECX]--
		c.Cycles += 2
		if compares {
			if inst.Rep && !c.ZF { // repe: stop when not equal
				break
			}
			if inst.RepNE && c.ZF { // repne: stop when equal
				break
			}
		}
	}
	return nil
}
