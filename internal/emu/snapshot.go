package emu

import "parallax/internal/x86"

// Snapshot is a point-in-time capture of a CPU and its address space,
// taken with CPU.Snapshot and replayed with CPU.Restore. It exists to
// make tamper campaigns cheap: instead of re-cloning and re-loading the
// protected image for every mutant, a worker loads once, snapshots, and
// between mutants copies back only the 4 KiB pages the previous run
// dirtied.
//
// Taking a snapshot arms per-page dirty tracking on every segment of
// the CPU's memory. The tracking assumes the segment set is fixed: a
// Map after Snapshot leaves the new segment untracked and unrestored.
// Taking a new Snapshot supersedes any previous one for the same CPU.
type Snapshot struct {
	cpu *CPU

	reg    [x86.NumRegs]uint32
	eip    uint32
	flags  uint32
	icount uint64
	cycles uint64
	exited bool
	status int32

	overlay map[uint32]byte // copy of the fetch overlay (usually nil)

	segs []segBaseline
}

// segBaseline pairs a live segment with its byte image at snapshot
// time.
type segBaseline struct {
	seg      *Segment
	baseline []byte
}

// RestoreStats reports what one Restore had to undo.
type RestoreStats struct {
	// DirtyPages is the number of 4 KiB pages copied back.
	DirtyPages int
	// CodeDirty is true when any restored page belonged to an
	// executable segment; decodes cached from those pages were evicted.
	CodeDirty bool
}

// Snapshot captures the full CPU state (registers, EIP, EFLAGS,
// counters, exit state, fetch overlay) and a baseline of every mapped
// segment, and arms per-page dirty tracking so a later Restore can copy
// back only what ran since.
func (c *CPU) Snapshot() *Snapshot {
	s := &Snapshot{
		cpu:    c,
		reg:    c.Reg,
		eip:    c.EIP,
		flags:  c.Flags(),
		icount: c.Icount,
		cycles: c.Cycles,
		exited: c.Exited,
		status: c.Status,
	}
	if c.overlay != nil {
		s.overlay = make(map[uint32]byte, len(c.overlay))
		for a, v := range c.overlay {
			s.overlay[a] = v
		}
	}
	s.segs = make([]segBaseline, 0, len(c.Mem.segs))
	for _, seg := range c.Mem.segs {
		pages := (uint32(len(seg.Data)) + PageSize - 1) / PageSize
		words := (pages + 63) / 64
		if seg.dirty == nil || uint32(len(seg.dirty)) != words {
			seg.dirty = make([]uint64, words)
		} else {
			clear(seg.dirty)
		}
		s.segs = append(s.segs, segBaseline{
			seg:      seg,
			baseline: append([]byte(nil), seg.Data...),
		})
	}
	return s
}

// Restore rewinds the CPU to the snapshot point: every dirty page is
// copied back from the baseline, the dirty bitmaps are cleared, and
// register/flag/counter/exit state is reset. Each restored executable
// page is announced on the memory bus's code-invalidation hook, so
// every consumer — this CPU's decode cache, any attached translation
// engine — evicts exactly what the copy-back rewrote (those entries
// describe the mutated bytes, not the restored ones) and keeps the
// rest warm across mutants.
//
// The snapshot must have been taken from this CPU.
func (c *CPU) Restore(s *Snapshot) RestoreStats {
	var st RestoreStats
	for _, sb := range s.segs {
		seg := sb.seg
		size := uint32(len(seg.Data))
		exec := seg.Perm&permFor(AccessFetch) != 0
		for w, bits := range seg.dirty {
			if bits == 0 {
				continue
			}
			for b := uint32(0); b < 64; b++ {
				if bits&(1<<b) == 0 {
					continue
				}
				p := uint32(w)*64 + b
				lo := p * PageSize
				hi := lo + PageSize
				if hi > size {
					hi = size
				}
				copy(seg.Data[lo:hi], sb.baseline[lo:hi])
				st.DirtyPages++
				if exec {
					st.CodeDirty = true
					c.Mem.notifyCodeInvalidate(seg.Addr+lo, seg.Addr+hi)
				}
			}
			seg.dirty[w] = 0
		}
	}
	c.Reg = s.reg
	c.EIP = s.eip
	c.SetFlags(s.flags)
	c.Icount = s.icount
	c.Cycles = s.cycles
	c.Exited = s.exited
	c.Status = s.status
	// The restore announced every rewritten executable page on the
	// invalidation bus above, which retired decodes and translations of
	// the dead bytes. Restoring the overlay still costs a full flush
	// (overlay bytes shadow arbitrary fetches).
	if c.overlay != nil || s.overlay != nil {
		c.overlay = nil
		if s.overlay != nil {
			c.overlay = make(map[uint32]byte, len(s.overlay))
			for a, v := range s.overlay {
				c.overlay[a] = v
			}
		}
		c.codeVersion++
	}
	if c.profile != nil {
		c.profile = make(map[uint32]uint64)
	}
	return st
}
