package emu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"parallax/internal/x86"
)

// TestNarrowALU cross-checks 8- and 16-bit arithmetic against Go
// reference computation, including the high-byte register aliases.
func TestNarrowALU(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 300; trial++ {
		a := rng.Uint32()
		b := rng.Uint32()
		code := asm(t, func(bb *x86.Builder) {
			bb.I(ri(x86.MOV, x86.EAX, int32(a)))
			bb.I(ri(x86.MOV, x86.EBX, int32(b)))
			// ah += bl; then al ^= ah; result layout checked below.
			bb.I(x86.Inst{Op: x86.ADD, W: 8, Dst: x86.RegOp(x86.AH), Src: x86.RegOp(x86.BL)})
			bb.I(x86.Inst{Op: x86.XOR, W: 8, Dst: x86.RegOp(x86.AL), Src: x86.RegOp(x86.AH)})
			// 16-bit: cx = ax + bx.
			bb.I(x86.Inst{Op: x86.MOV, W: 16, Dst: x86.RegOp(x86.ECX), Src: x86.RegOp(x86.EAX)})
			bb.I(x86.Inst{Op: x86.ADD, W: 16, Dst: x86.RegOp(x86.ECX), Src: x86.RegOp(x86.EBX)})
			bb.I(x86.Inst{Op: x86.RET, W: 32})
		})
		c := testCPU(t, code)
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}

		// Reference.
		ah := uint8(a>>8) + uint8(b)
		al := uint8(a) ^ ah
		wantEAX := a&0xFFFF0000 | uint32(ah)<<8 | uint32(al)
		if c.Reg[x86.EAX] != wantEAX {
			t.Fatalf("eax = %#x, want %#x (a=%#x b=%#x)", c.Reg[x86.EAX], wantEAX, a, b)
		}
		ax := uint16(wantEAX)
		wantCX := ax + uint16(b)
		if uint16(c.Reg[x86.ECX]) != wantCX {
			t.Fatalf("cx = %#x, want %#x", uint16(c.Reg[x86.ECX]), wantCX)
		}
	}
}

// TestShiftsAgainstReference checks every shift/rotate against Go
// semantics for in-range counts.
func TestShiftsAgainstReference(t *testing.T) {
	ops := []struct {
		op  x86.Op
		ref func(v uint32, n uint) uint32
	}{
		{x86.SHL, func(v uint32, n uint) uint32 { return v << n }},
		{x86.SHR, func(v uint32, n uint) uint32 { return v >> n }},
		{x86.SAR, func(v uint32, n uint) uint32 { return uint32(int32(v) >> n) }},
		{x86.ROL, func(v uint32, n uint) uint32 { return v<<n | v>>(32-n) }},
		{x86.ROR, func(v uint32, n uint) uint32 { return v>>n | v<<(32-n) }},
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		v := rng.Uint32()
		n := uint(1 + rng.Intn(31))
		o := ops[rng.Intn(len(ops))]
		code := asm(t, func(bb *x86.Builder) {
			bb.I(ri(x86.MOV, x86.EAX, int32(v)))
			bb.I(x86.Inst{Op: o.op, W: 32, Dst: x86.RegOp(x86.EAX), Src: x86.ImmOp(int32(n))})
			bb.I(x86.Inst{Op: x86.RET, W: 32})
		})
		c := testCPU(t, code)
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		if want := o.ref(v, n); c.Reg[x86.EAX] != want {
			t.Fatalf("%v %#x,%d = %#x, want %#x", o.op, v, n, c.Reg[x86.EAX], want)
		}
	}
}

func TestScasRepne(t *testing.T) {
	// Find a byte in a buffer with repne scasb.
	code := asm(t, func(b *x86.Builder) {
		// Fill 32 bytes with 0x11, plant 0x77 at offset 19.
		b.I(ri(x86.MOV, x86.EAX, 0x11))
		b.I(ri(x86.MOV, x86.EDI, int32(testDataBase)))
		b.I(ri(x86.MOV, x86.ECX, 32))
		b.I(x86.Inst{Op: x86.STOS, W: 8, Rep: true})
		b.I(x86.Inst{Op: x86.MOV, W: 8, Dst: x86.MemAbs(testDataBase + 19),
			Src: x86.ImmOp(0x77)})
		// Scan.
		b.I(ri(x86.MOV, x86.EAX, 0x77))
		b.I(ri(x86.MOV, x86.EDI, int32(testDataBase)))
		b.I(ri(x86.MOV, x86.ECX, 32))
		b.I(x86.Inst{Op: x86.SCAS, W: 8, RepNE: true})
		// EDI now points one past the match.
		b.I(x86.Inst{Op: x86.MOV, W: 32, Dst: x86.RegOp(x86.EAX), Src: x86.RegOp(x86.EDI)})
		b.I(ri(x86.SUB, x86.EAX, int32(testDataBase+1)))
		b.I(x86.Inst{Op: x86.RET, W: 32})
	})
	c := testCPU(t, code)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Status != 19 {
		t.Errorf("found at %d, want 19", c.Status)
	}
}

func TestCmpsRepe(t *testing.T) {
	code := asm(t, func(b *x86.Builder) {
		// Two identical 8-byte regions, then a difference at byte 8.
		for i := int32(0); i < 9; i++ {
			v := int32(0x41) + i
			b.I(x86.Inst{Op: x86.MOV, W: 8, Dst: x86.MemAbs(testDataBase + uint32(i)),
				Src: x86.ImmOp(v)})
			w := v
			if i == 8 {
				w = 0x7A
			}
			b.I(x86.Inst{Op: x86.MOV, W: 8, Dst: x86.MemAbs(testDataBase + 0x100 + uint32(i)),
				Src: x86.ImmOp(w)})
		}
		b.I(ri(x86.MOV, x86.ESI, int32(testDataBase)))
		b.I(ri(x86.MOV, x86.EDI, int32(testDataBase+0x100)))
		b.I(ri(x86.MOV, x86.ECX, 16))
		b.I(x86.Inst{Op: x86.CMPS, W: 8, Rep: true}) // repe: stop at mismatch
		b.I(x86.Inst{Op: x86.MOV, W: 32, Dst: x86.RegOp(x86.EAX), Src: x86.RegOp(x86.ECX)})
		b.I(x86.Inst{Op: x86.RET, W: 32})
	})
	c := testCPU(t, code)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	// 9 elements consumed (8 equal + the mismatch), 16-9=7 left.
	if c.Status != 7 {
		t.Errorf("ecx = %d, want 7", c.Status)
	}
}

func TestPushfdPopfdRoundTrip(t *testing.T) {
	code := asm(t, func(b *x86.Builder) {
		b.I(ri(x86.MOV, x86.EAX, -1))
		b.I(ri(x86.ADD, x86.EAX, 1)) // CF=1 ZF=1
		b.I(x86.Inst{Op: x86.PUSHFD, W: 32})
		b.I(ri(x86.MOV, x86.EBX, 5))
		b.I(ri(x86.CMP, x86.EBX, 3)) // clears ZF, CF
		b.I(x86.Inst{Op: x86.POPFD, W: 32})
		// Recover CF and ZF via setcc.
		b.I(x86.Inst{Op: x86.SETCC, W: 8, Cond: x86.CondB, Dst: x86.RegOp(x86.CL)})
		b.I(x86.Inst{Op: x86.SETCC, W: 8, Cond: x86.CondE, Dst: x86.RegOp(x86.DL)})
		b.I(x86.Inst{Op: x86.MOVZX, W: 8, Dst: x86.RegOp(x86.EAX), Src: x86.RegOp(x86.CL)})
		b.I(x86.Inst{Op: x86.MOVZX, W: 8, Dst: x86.RegOp(x86.EDX), Src: x86.RegOp(x86.DL)})
		b.I(x86.Inst{Op: x86.SHL, W: 32, Dst: x86.RegOp(x86.EDX), Src: x86.ImmOp(1)})
		b.I(rr(x86.OR, x86.EAX, x86.EDX))
		b.I(x86.Inst{Op: x86.RET, W: 32})
	})
	c := testCPU(t, code)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Status != 3 { // CF|ZF<<1
		t.Errorf("flags = %d, want 3", c.Status)
	}
}

func TestXchgMemAndLods(t *testing.T) {
	code := asm(t, func(b *x86.Builder) {
		b.I(x86.Inst{Op: x86.MOV, W: 32, Dst: x86.MemAbs(testDataBase), Src: x86.ImmOp(111)})
		b.I(ri(x86.MOV, x86.EAX, 222))
		b.I(x86.Inst{Op: x86.XCHG, W: 32, Dst: x86.MemAbs(testDataBase),
			Src: x86.RegOp(x86.EAX)})
		// eax=111, [base]=222; lodsd from base gives 222.
		b.I(ri(x86.MOV, x86.ESI, int32(testDataBase)))
		b.I(x86.Inst{Op: x86.LODS, W: 32})
		b.I(x86.Inst{Op: x86.RET, W: 32})
	})
	c := testCPU(t, code)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Status != 222 {
		t.Errorf("lods = %d, want 222", c.Status)
	}
}

// TestFlagsQuick exercises CF/OF for adc/sbb chains with random
// operands through 64-bit reference arithmetic.
func TestFlagsQuick(t *testing.T) {
	f := func(aLo, aHi, bLo, bHi uint32) bool {
		code := asm(t, func(b *x86.Builder) {
			b.I(ri(x86.MOV, x86.EAX, int32(aLo)))
			b.I(ri(x86.MOV, x86.EDX, int32(aHi)))
			b.I(ri(x86.ADD, x86.EAX, int32(bLo)))
			b.I(x86.Inst{Op: x86.ADC, W: 32, Dst: x86.RegOp(x86.EDX), Src: x86.ImmOp(int32(bHi))})
			b.I(x86.Inst{Op: x86.RET, W: 32})
		})
		c := testCPU(t, code)
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		want := (uint64(aHi)<<32 | uint64(aLo)) + (uint64(bHi)<<32 | uint64(bLo))
		return c.Reg[x86.EAX] == uint32(want) && c.Reg[x86.EDX] == uint32(want>>32)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
