package emu

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"parallax/internal/x86"
)

// sysFake is a minimal SysCPU for kernel-model unit tests: a register
// file and a sparse byte memory, no emulator.
type sysFake struct {
	regs map[x86.Reg]uint32
	mem  map[uint32]byte
	bad  map[uint32]bool // addresses whose stores fault
}

func newSysFake() *sysFake {
	return &sysFake{regs: make(map[x86.Reg]uint32), mem: make(map[uint32]byte), bad: make(map[uint32]bool)}
}

func (f *sysFake) GetReg(r x86.Reg) uint32    { return f.regs[r] }
func (f *sysFake) SetReg(r x86.Reg, v uint32) { f.regs[r] = v }
func (f *sysFake) MemRead(addr, n uint32) ([]byte, error) {
	out := make([]byte, n)
	for i := uint32(0); i < n; i++ {
		out[i] = f.mem[addr+i]
	}
	return out, nil
}
func (f *sysFake) MemStore8(addr uint32, v uint8) error {
	if f.bad[addr] {
		return errors.New("fault")
	}
	f.mem[addr] = v
	return nil
}
func (f *sysFake) MemStore32(addr, v uint32) error { return nil }
func (f *sysFake) Exit(status int32)               {}

// readCall issues read(0, buf, count) through the kernel model.
func readCall(t *testing.T, os *OS, f *sysFake, buf, count uint32) (uint32, error) {
	t.Helper()
	f.SetReg(x86.EAX, SysRead)
	f.SetReg(x86.EBX, 0)
	f.SetReg(x86.ECX, buf)
	f.SetReg(x86.EDX, count)
	err := os.SyscallOn(f)
	return f.GetReg(x86.EAX), err
}

func TestSysReadShortRead(t *testing.T) {
	os := NewOS([]byte("abc"))
	f := newSysFake()

	// Asking for more than stdin holds transfers what's there.
	n, err := readCall(t, os, f, 0x1000, 16)
	if err != nil || n != 3 {
		t.Fatalf("read(16) = %d, %v; want 3, nil", n, err)
	}
	for i, want := range []byte("abc") {
		if got := f.mem[0x1000+uint32(i)]; got != want {
			t.Errorf("mem[%d] = %q, want %q", i, got, want)
		}
	}

	// At EOF, read returns 0 — not an error, per POSIX.
	n, err = readCall(t, os, f, 0x1000, 16)
	if err != nil || n != 0 {
		t.Fatalf("read at EOF = %d, %v; want 0, nil", n, err)
	}
}

func TestSysReadZeroCountAndBadFD(t *testing.T) {
	os := NewOS([]byte("abc"))
	f := newSysFake()
	n, err := readCall(t, os, f, 0x1000, 0)
	if err != nil || n != 0 {
		t.Fatalf("read(0 bytes) = %d, %v; want 0, nil", n, err)
	}

	f.SetReg(x86.EAX, SysRead)
	f.SetReg(x86.EBX, 7) // not stdin
	f.SetReg(x86.ECX, 0x1000)
	f.SetReg(x86.EDX, 4)
	if err := os.SyscallOn(f); err != nil {
		t.Fatal(err)
	}
	if got := f.GetReg(x86.EAX); got != errno(EBADF) {
		t.Fatalf("read(fd 7) = %#x, want -EBADF", got)
	}
}

// TestSysReadHugeCount pins the chunked transfer: an attacker-
// controlled count register must not make the harness allocate the
// requested size, and a multi-chunk stream transfers completely.
func TestSysReadHugeCount(t *testing.T) {
	big := bytes.Repeat([]byte{0xAB}, 3*4096+17)
	os := NewOS(big)
	f := newSysFake()
	n, err := readCall(t, os, f, 0x1000, 0xFFFFFFF0)
	if err != nil || n != uint32(len(big)) {
		t.Fatalf("read(huge) = %d, %v; want %d, nil", n, err, len(big))
	}
	if f.mem[0x1000+uint32(len(big))-1] != 0xAB {
		t.Error("last byte not transferred")
	}
}

func TestSysReadFaultingStore(t *testing.T) {
	os := NewOS([]byte("abcdef"))
	f := newSysFake()
	f.bad[0x1002] = true
	n, err := readCall(t, os, f, 0x1000, 6)
	if err != nil {
		t.Fatal(err)
	}
	if n != errno(EFAULT) {
		t.Fatalf("read into faulting buffer = %#x, want -EFAULT", n)
	}
}

// errReader yields some bytes, then a non-EOF error — a failing
// workload source (or an injected chaos fault).
type errReader struct {
	data []byte
	err  error
}

func (r *errReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, r.err
	}
	n := copy(p, r.data)
	r.data = r.data[n:]
	return n, nil
}

// TestSysReadErrorAbortsRun pins the infrastructure-error contract:
// any non-EOF reader error aborts the run — with or without partial
// progress — so a dying workload source (or an injected chaos fault)
// can never silently alter program behavior and be misread as a
// detection outcome.
func TestSysReadErrorAbortsRun(t *testing.T) {
	boom := errors.New("stdin died")

	os := NewOS(nil)
	os.Stdin = &errReader{err: boom}
	f := newSysFake()
	_, err := readCall(t, os, f, 0x1000, 8)
	if !errors.Is(err, boom) {
		t.Fatalf("read from dead stdin: err %v, want wrapped %v", err, boom)
	}

	// Partial progress does not launder the error into a short read.
	os = NewOS(nil)
	os.Stdin = &errReader{data: []byte("xy"), err: boom}
	f = newSysFake()
	_, err = readCall(t, os, f, 0x1000, 8)
	if !errors.Is(err, boom) {
		t.Fatalf("partial-then-error read: err %v, want wrapped %v", err, boom)
	}
}

// TestSysReadEOFMidCount covers EOF landing inside a multi-chunk
// request: the transfer stops at the boundary with the partial count.
func TestSysReadEOFMidCount(t *testing.T) {
	os := NewOS(nil)
	os.Stdin = strings.NewReader(strings.Repeat("z", 4096+100))
	f := newSysFake()
	n, err := readCall(t, os, f, 0x2000, 2*4096)
	if err != nil || n != 4096+100 {
		t.Fatalf("read = %d, %v; want %d, nil", n, err, 4096+100)
	}
}

// TestSysReadNilStdinEBADF: a kernel built without stdin refuses the
// read rather than crashing (the zero OS value is a working kernel).
func TestSysReadNilStdin(t *testing.T) {
	var os OS
	f := newSysFake()
	n, err := readCall(t, &os, f, 0x1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if n != errno(EBADF) {
		t.Fatalf("read with nil stdin = %#x, want -EBADF", n)
	}
}

var _ io.Reader = (*errReader)(nil)
