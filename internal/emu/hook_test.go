package emu

import (
	"testing"

	"parallax/internal/image"
)

// hookRecorder collects code-invalidation ranges for assertions.
type hookRecorder struct {
	calls [][2]uint32
}

func (h *hookRecorder) fn(lo, hi uint32) { h.calls = append(h.calls, [2]uint32{lo, hi}) }

func newHookCPU(t *testing.T) *CPU {
	t.Helper()
	c := New()
	if _, err := c.Mem.Map("text", 0x1000, 2*PageSize, image.PermR|image.PermW|image.PermX); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Mem.Map("data", 0x10000, PageSize, image.PermR|image.PermW); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestOnCodeInvalidateStoreRange checks that an ordinary store into an
// executable segment announces exactly the written range, and that
// stores into plain data segments stay silent.
func TestOnCodeInvalidateStoreRange(t *testing.T) {
	c := newHookCPU(t)
	var rec hookRecorder
	cancel := c.Mem.OnCodeInvalidate(rec.fn)
	defer cancel()

	if err := c.Mem.Store32(0x1004, 0xdeadbeef, 0); err != nil {
		t.Fatal(err)
	}
	if len(rec.calls) != 1 || rec.calls[0] != [2]uint32{0x1004, 0x1008} {
		t.Fatalf("store hook calls = %v, want [[0x1004 0x1008]]", rec.calls)
	}
	if err := c.Mem.Store32(0x10000, 1, 0); err != nil {
		t.Fatal(err)
	}
	if len(rec.calls) != 1 {
		t.Fatalf("data store fired code-invalidation hook: %v", rec.calls)
	}
}

// TestOnCodeInvalidatePokeRange checks Poke announces the executable
// sub-range it touched, even when the poke spans into a data segment.
func TestOnCodeInvalidatePokeRange(t *testing.T) {
	c := newHookCPU(t)
	var rec hookRecorder
	cancel := c.Mem.OnCodeInvalidate(rec.fn)
	defer cancel()

	if err := c.Mem.Poke(0x1100, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if len(rec.calls) != 1 || rec.calls[0] != [2]uint32{0x1100, 0x1103} {
		t.Fatalf("poke hook calls = %v, want [[0x1100 0x1103]]", rec.calls)
	}

	// Patch goes through the same bus.
	if err := c.Patch(0x1200, []byte{0x90}); err != nil {
		t.Fatal(err)
	}
	if len(rec.calls) != 2 || rec.calls[1] != [2]uint32{0x1200, 0x1201} {
		t.Fatalf("patch hook calls = %v, want second [0x1200 0x1201]", rec.calls)
	}
}

// TestCanceledHookNotInvoked is the satellite regression: a hook that
// was registered and then canceled must never fire again — not from
// stores, not from Poke, and critically not from a Restore that was
// armed (via Snapshot) while the hook was still live.
func TestCanceledHookNotInvoked(t *testing.T) {
	c := newHookCPU(t)
	var live, stale hookRecorder
	cancelLive := c.Mem.OnCodeInvalidate(live.fn)
	defer cancelLive()
	cancelStale := c.Mem.OnCodeInvalidate(stale.fn)

	snap := c.Snapshot()

	// Dirty an executable page while both hooks are registered.
	if err := c.Mem.Store32(0x1000, 0xfeedface, 0); err != nil {
		t.Fatal(err)
	}
	if len(stale.calls) != 1 {
		t.Fatalf("stale hook should see the pre-cancel store, got %v", stale.calls)
	}

	cancelStale()
	cancelStale() // double-cancel must be harmless

	if err := c.Mem.Store32(0x1008, 1, 0); err != nil {
		t.Fatal(err)
	}
	// Restore copies the dirtied executable page back: this announces
	// on the bus and must reach only the live hook.
	st := c.Restore(snap)
	if !st.CodeDirty || st.DirtyPages == 0 {
		t.Fatalf("restore stats = %+v, want dirty executable pages", st)
	}
	if len(stale.calls) != 1 {
		t.Fatalf("canceled hook was invoked again: %v", stale.calls)
	}
	if len(live.calls) < 3 {
		t.Fatalf("live hook missed events: %v", live.calls)
	}
}
