package emu

import (
	"errors"
	"math/rand"
	"testing"

	"parallax/internal/image"
	"parallax/internal/x86"
)

const (
	testTextBase  = 0x08048000
	testDataBase  = 0x08100000
	testStackBase = 0x0BF00000
	testStackSize = 0x10000
)

// testCPU builds a CPU with text (RX), data (RW) and stack segments,
// loads the given code, and points EIP at its start with the exit
// sentinel on the stack.
func testCPU(t *testing.T, code []byte) *CPU {
	t.Helper()
	c := New()
	text, err := c.Mem.Map(".text", testTextBase, uint32(len(code)+16), image.PermR|image.PermX)
	if err != nil {
		t.Fatal(err)
	}
	copy(text.Data, code)
	if _, err := c.Mem.Map(".data", testDataBase, 0x1000, image.PermR|image.PermW); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Mem.Map("[stack]", testStackBase, testStackSize,
		image.PermR|image.PermW); err != nil {
		t.Fatal(err)
	}
	c.Reg[x86.ESP] = testStackBase + testStackSize - 16
	if err := c.push32(ExitSentinel); err != nil {
		t.Fatal(err)
	}
	c.EIP = testTextBase
	return c
}

func asm(t *testing.T, build func(b *x86.Builder)) []byte {
	t.Helper()
	b := x86.NewBuilder(testTextBase)
	build(b)
	code, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return code
}

func ri(op x86.Op, r x86.Reg, v int32) x86.Inst {
	return x86.Inst{Op: op, W: 32, Dst: x86.RegOp(r), Src: x86.ImmOp(v)}
}

func rr(op x86.Op, d, s x86.Reg) x86.Inst {
	return x86.Inst{Op: op, W: 32, Dst: x86.RegOp(d), Src: x86.RegOp(s)}
}

func TestBasicArithmetic(t *testing.T) {
	code := asm(t, func(b *x86.Builder) {
		b.I(ri(x86.MOV, x86.EAX, 10))
		b.I(ri(x86.MOV, x86.EBX, 32))
		b.I(rr(x86.ADD, x86.EAX, x86.EBX))
		b.I(x86.Inst{Op: x86.RET, W: 32})
	})
	c := testCPU(t, code)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if !c.Exited || c.Status != 42 {
		t.Errorf("status = %d (exited=%t), want 42", c.Status, c.Exited)
	}
	if c.Icount != 4 {
		t.Errorf("icount = %d, want 4", c.Icount)
	}
}

func TestLoopAndBranches(t *testing.T) {
	// Sum 1..10 with a loop.
	code := asm(t, func(b *x86.Builder) {
		b.I(ri(x86.MOV, x86.EAX, 0))
		b.I(ri(x86.MOV, x86.ECX, 10))
		b.Label("loop")
		b.I(rr(x86.ADD, x86.EAX, x86.ECX))
		b.I(x86.Inst{Op: x86.DEC, W: 32, Dst: x86.RegOp(x86.ECX)})
		b.JccL(x86.CondNE, "loop")
		b.I(x86.Inst{Op: x86.RET, W: 32})
	})
	c := testCPU(t, code)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Status != 55 {
		t.Errorf("status = %d, want 55", c.Status)
	}
}

func TestCallRetAndStack(t *testing.T) {
	code := asm(t, func(b *x86.Builder) {
		b.I(ri(x86.MOV, x86.EAX, 5))
		b.I(x86.Inst{Op: x86.PUSH, W: 32, Dst: x86.RegOp(x86.EAX)})
		b.CallL("double")
		b.I(ri(x86.ADD, x86.ESP, 4))
		b.I(x86.Inst{Op: x86.RET, W: 32})
		b.Label("double")
		b.I(x86.Inst{Op: x86.MOV, W: 32, Dst: x86.RegOp(x86.EAX),
			Src: x86.MemOp(x86.ESP, 4)})
		b.I(rr(x86.ADD, x86.EAX, x86.EAX))
		b.I(x86.Inst{Op: x86.RET, W: 32})
	})
	c := testCPU(t, code)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Status != 10 {
		t.Errorf("status = %d, want 10", c.Status)
	}
}

func TestMemoryAndSIB(t *testing.T) {
	// Store a table of squares via SIB addressing, then read back 7².
	code := asm(t, func(b *x86.Builder) {
		b.I(ri(x86.MOV, x86.ECX, 0)) // i
		b.Label("loop")
		b.I(rr(x86.MOV, x86.EAX, x86.ECX))
		b.I(x86.Inst{Op: x86.IMUL, W: 32, Dst: x86.RegOp(x86.EAX), Src: x86.RegOp(x86.ECX)})
		b.I(x86.Inst{Op: x86.MOV, W: 32,
			Dst: x86.MemSIB(0, false, x86.ECX, true, 4, int32(testDataBase)),
			Src: x86.RegOp(x86.EAX)})
		b.I(x86.Inst{Op: x86.INC, W: 32, Dst: x86.RegOp(x86.ECX)})
		b.I(ri(x86.CMP, x86.ECX, 10))
		b.JccL(x86.CondB, "loop")
		b.I(x86.Inst{Op: x86.MOV, W: 32, Dst: x86.RegOp(x86.EAX),
			Src: x86.MemAbs(testDataBase + 7*4)})
		b.I(x86.Inst{Op: x86.RET, W: 32})
	})
	c := testCPU(t, code)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Status != 49 {
		t.Errorf("status = %d, want 49", c.Status)
	}
}

func TestPushadPopadRoundTrip(t *testing.T) {
	code := asm(t, func(b *x86.Builder) {
		b.I(ri(x86.MOV, x86.EAX, 1))
		b.I(ri(x86.MOV, x86.EBX, 2))
		b.I(ri(x86.MOV, x86.ECX, 3))
		b.I(ri(x86.MOV, x86.EDX, 4))
		b.I(ri(x86.MOV, x86.ESI, 5))
		b.I(ri(x86.MOV, x86.EDI, 6))
		b.I(x86.Inst{Op: x86.PUSHAD, W: 32})
		b.I(ri(x86.MOV, x86.EAX, 99))
		b.I(ri(x86.MOV, x86.EBX, 99))
		b.I(ri(x86.MOV, x86.ESI, 99))
		b.I(x86.Inst{Op: x86.POPAD, W: 32})
		b.I(x86.Inst{Op: x86.RET, W: 32})
	})
	c := testCPU(t, code)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	want := map[x86.Reg]uint32{
		x86.EAX: 1, x86.EBX: 2, x86.ECX: 3, x86.EDX: 4, x86.ESI: 5, x86.EDI: 6,
	}
	for r, v := range want {
		if c.Reg[r] != v {
			t.Errorf("%v = %d, want %d", r, c.Reg[r], v)
		}
	}
}

// refFlags computes expected CF/ZF/SF/OF for 32-bit add/sub.
func refFlags(op x86.Op, a, b uint32) (cf, zf, sf, of bool) {
	var r uint32
	switch op {
	case x86.ADD:
		r = a + b
		cf = uint64(a)+uint64(b) > 0xFFFFFFFF
		of = (int32(a) > 0 && int32(b) > 0 && int32(r) < 0) ||
			(int32(a) < 0 && int32(b) < 0 && int32(r) >= 0)
	case x86.SUB, x86.CMP:
		r = a - b
		cf = a < b
		of = (int32(a) >= 0 && int32(b) < 0 && int32(r) < 0) ||
			(int32(a) < 0 && int32(b) >= 0 && int32(r) >= 0)
	}
	zf = r == 0
	sf = int32(r) < 0
	return
}

func TestFlagSemanticsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ops := []x86.Op{x86.ADD, x86.SUB, x86.CMP}
	for i := 0; i < 2000; i++ {
		a := rng.Uint32()
		b := rng.Uint32()
		// Bias toward interesting boundary values.
		switch rng.Intn(4) {
		case 0:
			a = []uint32{0, 1, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFF}[rng.Intn(5)]
		case 1:
			b = []uint32{0, 1, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFF}[rng.Intn(5)]
		}
		op := ops[rng.Intn(len(ops))]
		code := asm(t, func(bb *x86.Builder) {
			bb.I(ri(x86.MOV, x86.EAX, int32(a)))
			bb.I(ri(x86.MOV, x86.EBX, int32(b)))
			bb.I(rr(op, x86.EAX, x86.EBX))
			bb.I(x86.Inst{Op: x86.RET, W: 32})
		})
		c := testCPU(t, code)
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		cf, zf, sf, of := refFlags(op, a, b)
		if c.CF != cf || c.ZF != zf || c.SF != sf || c.OF != of {
			t.Fatalf("%v %#x,%#x: flags cf=%t zf=%t sf=%t of=%t, want %t %t %t %t",
				op, a, b, c.CF, c.ZF, c.SF, c.OF, cf, zf, sf, of)
		}
	}
}

func TestAdcCarryPropagation(t *testing.T) {
	code := asm(t, func(b *x86.Builder) {
		b.I(ri(x86.MOV, x86.EAX, -1)) // 0xFFFFFFFF
		b.I(ri(x86.MOV, x86.EBX, 7))  // high word
		b.I(ri(x86.ADD, x86.EAX, 1))  // sets CF
		b.I(ri(x86.ADC, x86.EBX, 0))  // consumes CF
		b.I(rr(x86.MOV, x86.EAX, x86.EBX))
		b.I(x86.Inst{Op: x86.RET, W: 32})
	})
	c := testCPU(t, code)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Status != 8 {
		t.Errorf("status = %d, want 8", c.Status)
	}
}

func TestMulDiv(t *testing.T) {
	code := asm(t, func(b *x86.Builder) {
		b.I(ri(x86.MOV, x86.EAX, 1000))
		b.I(ri(x86.MOV, x86.ECX, 77))
		b.I(x86.Inst{Op: x86.MUL, W: 32, Dst: x86.RegOp(x86.ECX)}) // edx:eax = 77000
		b.I(ri(x86.MOV, x86.ECX, 7))
		b.I(x86.Inst{Op: x86.DIV, W: 32, Dst: x86.RegOp(x86.ECX)}) // eax = 11000
		b.I(x86.Inst{Op: x86.RET, W: 32})
	})
	c := testCPU(t, code)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Status != 11000 {
		t.Errorf("status = %d, want 11000", c.Status)
	}
}

func TestDivideByZeroFaults(t *testing.T) {
	code := asm(t, func(b *x86.Builder) {
		b.I(ri(x86.MOV, x86.EAX, 1))
		b.I(ri(x86.MOV, x86.EDX, 0))
		b.I(ri(x86.MOV, x86.ECX, 0))
		b.I(x86.Inst{Op: x86.DIV, W: 32, Dst: x86.RegOp(x86.ECX)})
		b.I(x86.Inst{Op: x86.RET, W: 32})
	})
	c := testCPU(t, code)
	err := c.Run()
	var de *DivideError
	if !errors.As(err, &de) {
		t.Errorf("Run error = %v, want DivideError", err)
	}
}

func TestWXEnforcement(t *testing.T) {
	t.Run("write to text faults", func(t *testing.T) {
		code := asm(t, func(b *x86.Builder) {
			b.I(x86.Inst{Op: x86.MOV, W: 32, Dst: x86.MemAbs(testTextBase),
				Src: x86.ImmOp(int32(-0x6F6F6F70))})
			b.I(x86.Inst{Op: x86.RET, W: 32})
		})
		c := testCPU(t, code)
		err := c.Run()
		var f *FaultError
		if !errors.As(err, &f) || f.Access != AccessWrite {
			t.Errorf("Run error = %v, want write FaultError", err)
		}
	})
	t.Run("execute data faults", func(t *testing.T) {
		code := asm(t, func(b *x86.Builder) {
			b.I(ri(x86.MOV, x86.EAX, int32(testDataBase)))
			b.I(x86.Inst{Op: x86.JMP, W: 32, Dst: x86.RegOp(x86.EAX)})
		})
		c := testCPU(t, code)
		err := c.Run()
		var f *FaultError
		if !errors.As(err, &f) || f.Access != AccessFetch {
			t.Errorf("Run error = %v, want fetch FaultError", err)
		}
	})
}

func TestSyscallWriteExit(t *testing.T) {
	msg := "hello, emulated world\n"
	code := asm(t, func(b *x86.Builder) {
		// Store message bytes into data memory, then write(1, buf, len).
		for i, ch := range []byte(msg) {
			b.I(x86.Inst{Op: x86.MOV, W: 8,
				Dst: x86.MemAbs(testDataBase + uint32(i)), Src: x86.ImmOp(int32(ch))})
		}
		b.I(ri(x86.MOV, x86.EAX, SysWrite))
		b.I(ri(x86.MOV, x86.EBX, 1))
		b.I(ri(x86.MOV, x86.ECX, int32(testDataBase)))
		b.I(ri(x86.MOV, x86.EDX, int32(len(msg))))
		b.I(x86.Inst{Op: x86.INT, W: 32, Imm: 0x80})
		b.I(ri(x86.MOV, x86.EAX, SysExit))
		b.I(ri(x86.MOV, x86.EBX, 3))
		b.I(x86.Inst{Op: x86.INT, W: 32, Imm: 0x80})
	})
	c := testCPU(t, code)
	os := NewOS(nil)
	c.OS = os
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if got := os.Stdout.String(); got != msg {
		t.Errorf("stdout = %q, want %q", got, msg)
	}
	if c.Status != 3 {
		t.Errorf("status = %d, want 3", c.Status)
	}
}

func TestPtraceSemantics(t *testing.T) {
	build := func() []byte {
		return asm(t, func(b *x86.Builder) {
			b.I(ri(x86.MOV, x86.EAX, SysPtrace))
			b.I(ri(x86.MOV, x86.EBX, PtraceTraceme))
			b.I(x86.Inst{Op: x86.INT, W: 32, Imm: 0x80})
			b.I(x86.Inst{Op: x86.RET, W: 32})
		})
	}
	t.Run("clean", func(t *testing.T) {
		c := testCPU(t, build())
		c.OS = NewOS(nil)
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		if c.Status != 0 {
			t.Errorf("ptrace = %d, want 0", c.Status)
		}
	})
	t.Run("debugger attached", func(t *testing.T) {
		c := testCPU(t, build())
		c.OS = &OS{DebuggerAttached: true}
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		if c.Status != -EPERM {
			t.Errorf("ptrace = %d, want %d", c.Status, -EPERM)
		}
	})
}

func TestStringOps(t *testing.T) {
	// rep stosd fills, rep movsd copies, then verify one dword.
	code := asm(t, func(b *x86.Builder) {
		b.I(ri(x86.MOV, x86.EAX, 0x11223344))
		b.I(ri(x86.MOV, x86.EDI, int32(testDataBase)))
		b.I(ri(x86.MOV, x86.ECX, 8))
		b.I(x86.Inst{Op: x86.STOS, W: 32, Rep: true})
		b.I(ri(x86.MOV, x86.ESI, int32(testDataBase)))
		b.I(ri(x86.MOV, x86.EDI, int32(testDataBase+0x100)))
		b.I(ri(x86.MOV, x86.ECX, 8))
		b.I(x86.Inst{Op: x86.MOVS, W: 32, Rep: true})
		b.I(x86.Inst{Op: x86.MOV, W: 32, Dst: x86.RegOp(x86.EAX),
			Src: x86.MemAbs(testDataBase + 0x100 + 7*4)})
		b.I(x86.Inst{Op: x86.RET, W: 32})
	})
	c := testCPU(t, code)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if uint32(c.Status) != 0x11223344 {
		t.Errorf("status = %#x, want 0x11223344", uint32(c.Status))
	}
}

func TestInstLimit(t *testing.T) {
	code := asm(t, func(b *x86.Builder) {
		b.Label("spin")
		b.JmpL("spin")
	})
	c := testCPU(t, code)
	c.MaxInst = 1000
	if err := c.Run(); !errors.Is(err, ErrInstLimit) {
		t.Errorf("Run error = %v, want ErrInstLimit", err)
	}
}

// TestManualROPChain is the heart of the whole repository in miniature:
// gadgets in text, a chain of gadget addresses in data memory, a stack
// pivot — and tampering with a gadget byte derails the computation.
func TestManualROPChain(t *testing.T) {
	var g1, g2, done uint32
	code := asm(t, func(b *x86.Builder) {
		// Loader: save a return point, pivot esp into the chain.
		b.I(ri(x86.MOV, x86.ESI, 0))
		b.I(ri(x86.MOV, x86.ESP, int32(testDataBase))) // pivot
		b.I(x86.Inst{Op: x86.RET, W: 32})              // enter chain

		b.Label("g1") // pop eax; ret
		b.I(x86.Inst{Op: x86.POP, W: 32, Dst: x86.RegOp(x86.EAX)})
		b.I(x86.Inst{Op: x86.RET, W: 32})

		b.Label("g2") // add esi, eax; ret
		b.I(rr(x86.ADD, x86.ESI, x86.EAX))
		b.I(x86.Inst{Op: x86.RET, W: 32})

		b.Label("done") // mov eax, esi; ret — return to sentinel
		b.I(rr(x86.MOV, x86.EAX, x86.ESI))
		b.I(ri(x86.MOV, x86.ESP, int32(testDataBase+0x100)))
		b.I(x86.Inst{Op: x86.RET, W: 32})

		a, _ := b.LabelAddr("g1")
		g1 = a
		a, _ = b.LabelAddr("g2")
		g2 = a
		a, _ = b.LabelAddr("done")
		done = a
	})

	run := func(tamper bool) (*CPU, error) {
		c := testCPU(t, code)
		// Chain: g1, 40, g2, g1, 2, g2, done  => esi = 42.
		words := []uint32{g1, 40, g2, g1, 2, g2, done}
		for i, w := range words {
			if err := c.Mem.Store32(testDataBase+uint32(i*4), w, 0); err != nil {
				t.Fatal(err)
			}
		}
		// Exit continuation at testDataBase+0x100... actually on the
		// stack segment: store sentinel where "done" re-pivots.
		if err := c.Mem.Store32(testDataBase+0x100, ExitSentinel, 0); err != nil {
			t.Fatal(err)
		}
		if tamper {
			// Overwrite g2's add with a nop-like byte pair: destroys
			// the gadget semantics exactly as code patching would.
			if err := c.Mem.Poke(g2, []byte{0x90, 0x90}); err != nil {
				t.Fatal(err)
			}
			c.InvalidateCode()
		}
		err := c.Run()
		return c, err
	}

	clean, err := run(false)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Status != 42 {
		t.Fatalf("clean chain result = %d, want 42", clean.Status)
	}

	tampered, err := run(true)
	if err == nil && tampered.Status == 42 {
		t.Error("tampered chain still produced the correct result")
	}
}

// TestFetchOverlay exercises the Wurster et al. split-cache view: the
// executed bytes differ from the bytes data reads observe.
func TestFetchOverlay(t *testing.T) {
	code := asm(t, func(b *x86.Builder) {
		b.I(ri(x86.MOV, x86.EAX, 1)) // will be overlaid to mov eax, 2
		b.I(x86.Inst{Op: x86.RET, W: 32})
	})
	c := testCPU(t, code)
	// Overlay replaces the immediate of the first mov.
	over, err := x86.Encode(ri(x86.MOV, x86.EAX, 2), testTextBase)
	if err != nil {
		t.Fatal(err)
	}
	c.SetOverlay(testTextBase, over)

	// A data read of the same bytes still sees the original immediate.
	b, err := c.Mem.Read(testTextBase, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b[1] != 1 {
		t.Errorf("data view byte = %d, want original 1", b[1])
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Status != 2 {
		t.Errorf("status = %d, want overlaid 2", c.Status)
	}

	// Clearing the overlay restores original execution.
	c2 := testCPU(t, code)
	c2.SetOverlay(testTextBase, over)
	c2.ClearOverlay()
	if err := c2.Run(); err != nil {
		t.Fatal(err)
	}
	if c2.Status != 1 {
		t.Errorf("status after clear = %d, want 1", c2.Status)
	}
}

func TestLahfSahf(t *testing.T) {
	code := asm(t, func(b *x86.Builder) {
		b.I(ri(x86.MOV, x86.EAX, 0))
		b.I(ri(x86.CMP, x86.EAX, 0)) // ZF=1
		b.I(x86.Inst{Op: x86.LAHF, W: 8})
		b.I(x86.Inst{Op: x86.SHR, W: 32, Dst: x86.RegOp(x86.EAX), Src: x86.ImmOp(8)})
		b.I(ri(x86.AND, x86.EAX, 0x40)) // isolate ZF bit
		b.I(x86.Inst{Op: x86.RET, W: 32})
	})
	c := testCPU(t, code)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Status != 0x40 {
		t.Errorf("status = %#x, want 0x40", uint32(c.Status))
	}
}

func TestSetccMovzx(t *testing.T) {
	code := asm(t, func(b *x86.Builder) {
		b.I(ri(x86.MOV, x86.EAX, 3))
		b.I(ri(x86.CMP, x86.EAX, 5))
		b.I(x86.Inst{Op: x86.SETCC, W: 8, Cond: x86.CondL, Dst: x86.RegOp(x86.CL)})
		b.I(x86.Inst{Op: x86.MOVZX, W: 8, Dst: x86.RegOp(x86.EAX), Src: x86.RegOp(x86.CL)})
		b.I(x86.Inst{Op: x86.RET, W: 32})
	})
	c := testCPU(t, code)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Status != 1 {
		t.Errorf("status = %d, want 1", c.Status)
	}
}

func TestRetf(t *testing.T) {
	// Far return pops EIP and then a discarded CS word, so the CS
	// dummy is pushed first.
	code := asm(t, func(b *x86.Builder) {
		b.I(x86.Inst{Op: x86.PUSH, W: 32, Dst: x86.ImmOp(0x23)}) // CS (popped second)
		b.PushLabel("after", 0)                                  // EIP (popped first)
		b.I(x86.Inst{Op: x86.RETF, W: 32})
		b.Label("dead")
		b.I(ri(x86.MOV, x86.EAX, 1))
		b.I(x86.Inst{Op: x86.RET, W: 32})
		b.Label("after")
		b.I(ri(x86.MOV, x86.EAX, 7))
		b.I(x86.Inst{Op: x86.RET, W: 32})
	})
	c := testCPU(t, code)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Status != 7 {
		t.Errorf("status = %d, want 7", c.Status)
	}
}

func TestProfileCounts(t *testing.T) {
	code := asm(t, func(b *x86.Builder) {
		b.I(ri(x86.MOV, x86.ECX, 5))
		b.Label("loop")
		b.I(x86.Inst{Op: x86.DEC, W: 32, Dst: x86.RegOp(x86.ECX)})
		b.JccL(x86.CondNE, "loop")
		b.I(ri(x86.MOV, x86.EAX, 0))
		b.I(x86.Inst{Op: x86.RET, W: 32})
	})
	c := testCPU(t, code)
	c.EnableProfile()
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	decAddr := uint32(testTextBase + 5) // after the 5-byte mov
	if got := c.Profile()[decAddr]; got != 5 {
		t.Errorf("dec executed %d times, want 5", got)
	}
}

func TestSegmentOverlapRejected(t *testing.T) {
	m := NewMemory()
	if _, err := m.Map("a", 0x1000, 0x1000, image.PermR); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Map("b", 0x1800, 0x1000, image.PermR); err == nil {
		t.Error("overlapping Map succeeded")
	}
	if _, err := m.Map("c", 0, 0, image.PermR); err == nil {
		t.Error("zero-size Map succeeded")
	}
}
