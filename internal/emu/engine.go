package emu

import "parallax/internal/x86"

// This file is the execution-engine support surface: the minimal set
// of hooks an alternative engine (internal/emu/tb's translation-block
// backend) needs to drive a CPU with interpreter-identical semantics.
// Everything here delegates to the interpreter's own internals, so an
// engine that falls back through ExecInst can never drift from the
// interpreter on the instructions it does not specialize.

// DecodeAt decodes the instruction at addr without touching EIP or the
// decode cache. It sees exactly what the fetch unit sees (overlay
// bytes first, segment stitching) and returns the same fault and
// decode errors the interpreter's own fetch would, attributed to addr.
// Translators use it to walk a basic block ahead of execution.
func (c *CPU) DecodeAt(addr uint32) (x86.Inst, error) {
	return c.decodeAt(addr)
}

// ExecInst executes one already-decoded instruction through the
// interpreter core: operand access, flag updates, EIP advance, cycle
// accounting — everything CPU.Step does except decode, the Icount
// increment, and trace/profile sampling, which are the driving
// engine's responsibility.
func (c *CPU) ExecInst(inst x86.Inst) error {
	return c.exec(inst)
}

// Push32 pushes a dword with the interpreter's exact stack semantics:
// ESP moves before the store, and a faulting push just below the stack
// base classifies as *StackOverflowError.
func (c *CPU) Push32(v uint32) error { return c.push32(v) }

// Pop32 pops a dword; ESP moves only after a successful load.
func (c *CPU) Pop32() (uint32, error) { return c.pop32() }

// CodeVersion returns the CPU-local fetch-state version, advanced by
// overlay arm/disarm and InvalidateCode. Memory-path code mutations
// flow through Memory.OnCodeInvalidate instead; an engine caching
// translations must flush them wholesale when this version moves.
func (c *CPU) CodeVersion() uint64 { return c.codeVersion }

// OverlayActive reports whether the fetch overlay is armed: fetched
// bytes may then differ from the bytes stored in memory, so anything
// content-addressed by memory bytes (the shared translation catalog)
// must not be trusted to describe what this CPU executes.
func (c *CPU) OverlayActive() bool { return c.overlay != nil }

// ProfileEnabled reports whether per-address hit counting is armed;
// engines replicate Step's profiling when it is.
func (c *CPU) ProfileEnabled() bool { return c.profile != nil }

// ProfileHit records one execution of the instruction at addr (no-op
// unless EnableProfile was called).
func (c *CPU) ProfileHit(addr uint32) {
	if c.profile != nil {
		c.profile[addr]++
	}
}

// Tracked reports whether Snapshot's dirty-page bitmap is armed on
// this segment. An engine writing segment bytes directly (after its
// own bounds and permission checks) must consult it on every store —
// a Snapshot can arm tracking at any point between stores — and call
// MarkDirty when it reports true. Stores into executable segments
// must go through Memory.Store32 instead so code-invalidation hooks
// fire.
func (s *Segment) Tracked() bool { return s.dirty != nil }

// MarkDirty records a direct engine write to [off, off+n) in the
// dirty-page bitmap, exactly as a store through the bus would.
func (s *Segment) MarkDirty(off, n uint32) { s.markDirty(off, n) }

// ExitTo implements the exit-sentinel convention for engines: if
// target is ExitSentinel the run ends cleanly with EAX as the status
// (mirroring the interpreter's checkSentinel) and ExitTo reports true.
func (c *CPU) ExitTo(target uint32) bool {
	if target == ExitSentinel {
		c.Exited = true
		c.Status = int32(c.Reg[x86.EAX])
		return true
	}
	return false
}
