package tb

import (
	"parallax/internal/emu"
	"parallax/internal/x86"
)

// opKind selects the micro-op executor. The specialized kinds cover
// the 32-bit operations that dominate generated workloads and tamper
// campaigns (data movement, group-80 ALU, stack traffic, immediate
// shifts, and all control flow); everything else becomes opFallback
// and runs through the interpreter core.
type opKind uint8

const (
	// opFallback re-executes the original decoded instruction through
	// CPU.ExecInst after materializing flags. opFallbackTerm is the
	// same for instructions that end the block (INT, HLT, RETF, ...):
	// control continues wherever the interpreter left EIP.
	opFallback opKind = iota
	opFallbackTerm

	opNop // 32-bit shift with a statically-zero count: no write, no flags

	opMovRR // r1 = r2
	opMovRI // r1 = imm
	opMovRM // r1 = [ea]
	opMovMR // [ea] = r2
	opMovMI // [ea] = imm

	opAluRR // r1 op= r2 (alu selects ADD/OR/AND/SUB/XOR/CMP/TEST)
	opAluRI // r1 op= imm
	opAluRM // r1 op= [ea]
	opAluMR // [ea] op= r2
	opAluMI // [ea] op= imm

	opIncR
	opDecR
	opNotR
	opNegR

	opPushR
	opPushI
	opPushM // push dword [ea]
	opPopR
	opLea
	opExt     // movzx/movsx r32, r8/r16 (alu = extSigned for movsx; w = source width)
	opExtM    // movzx/movsx r32, [m8/m16] (alu/w as opExt)
	opShiftRI // shl/shr/sar r32, imm (alu selects; imm = masked count 1..31)
	opShiftRC // shl/shr/sar r32, cl (alu selects; count read at run time)
	opXchgRR
	opSetccR // setcc r8 (alu = x86.Cond)
	opMovMR8 // mov [ea], r8 (byte store; r2 in ModRM 8-bit numbering)
	opImulRR // imul r32, r2 [, imm] (alu = imulImm when imm multiplies)
	opImulRM // imul r32, [ea] [, imm]
	opLeave  // mov esp, ebp; pop ebp

	// Terminal control flow.
	opJmp      // direct: chains via succ[0]
	opJcc      // alu = x86.Cond; taken chains succ[1], fallthrough succ[0]
	opCallD    // direct call: push imm (return address), chain succ[0]
	opJmpIndR  // jmp r
	opJmpIndM  // jmp [ea]
	opCallIndR // call r
	opCallIndM // call [ea]
	opRet      // ret / ret imm16 (imm = stack adjustment)
)

// Shift subop selectors for opShiftRI.
const (
	shiftShl uint8 = iota
	shiftShr
	shiftSar
)

// extSigned in uop.alu marks opExt/opExtM as MOVSX.
const extSigned uint8 = 1

// imulImm in uop.alu marks opImulRR/opImulRM as the three-operand
// form: the second multiplicand is uop.imm instead of the destination
// register's prior value.
const imulImm uint8 = 1

// Memory-operand presence bits in uop.memFlags. memStack marks
// ESP/EBP-based addressing: the executor's fast path then consults the
// stack-segment cache instead of the data-segment cache, so frame and
// spill traffic does not thrash the latter.
const (
	memHasBase uint8 = 1 << iota
	memHasIndex
	memStack
)

// uop is one translated micro-op: the original instruction flattened
// into a flat struct the executor switches on, with no per-op decode,
// operand-kind dispatch, or interface calls.
type uop struct {
	kind     opKind
	alu      uint8 // subop: x86.Op for ALU, x86.Cond for jcc/setcc, shift/ext selector
	w        uint8 // opExt: source width (8 or 16)
	memFlags uint8
	r1       x86.Reg // primary register (dst)
	r2       x86.Reg // secondary register (src)
	base     x86.Reg
	idx      x86.Reg
	scale    uint8
	cost     uint16 // deterministic cycle cost (emu.InstCost)
	pc       uint32 // address of the instruction
	imm      uint32 // immediate / return address (calls) / ESP adjust (ret)
	disp     uint32
	target   uint32    // direct branch target
	inst     *x86.Inst // opFallback*: the decoded instruction to replay
}

// setMem flattens a KMem operand into the uop.
func (u *uop) setMem(o *x86.Operand) {
	u.base, u.idx, u.scale, u.disp = o.Base, o.Index, o.Scale, uint32(o.Disp)
	if o.HasBase {
		u.memFlags |= memHasBase
		if o.Base == x86.ESP || o.Base == x86.EBP {
			u.memFlags |= memStack
		}
	}
	if o.HasIndex {
		u.memFlags |= memHasIndex
	}
}

// terminal reports whether op ends a basic block.
func terminal(op x86.Op) bool {
	switch op {
	case x86.CALL, x86.JMP, x86.JCC, x86.RET, x86.RETF, x86.HLT, x86.INT, x86.INT3:
		return true
	}
	return false
}

// maxBlockOps caps translation lookahead so a long straight-line run
// still yields bounded blocks (and bounded invalidation ranges).
const maxBlockOps = 128

// translate decodes the basic block starting at entry and installs its
// translation. A decode fault on the first instruction is the caller's
// fault to report; a fault further in just ends the block early — the
// fault surfaces, uncounted, when execution actually reaches it.
//
// With a shared catalog attached, translate first tries to adopt
// another engine's translation of the same bytes (verified against
// this CPU's memory byte for byte), and publishes its own result on a
// miss. Both directions are skipped while the fetch overlay is armed:
// memory bytes then do not describe fetched bytes, so the catalog
// cannot be consulted or fed without risking an incoherent adoption.
func (e *Engine) translate(entry uint32) (*block, error) {
	c := e.cpu
	shared := e.cat != nil && !c.OverlayActive()
	if shared {
		if ops, end := e.cat.adopt(c.Mem, entry); ops != nil {
			e.mCatHits.Inc()
			b := &block{entry: entry, end: end, lo: entry, hi: end, ops: ops}
			e.blocks[entry] = b
			return b, nil
		}
		e.mCatMisses.Inc()
	}
	b := &block{entry: entry}
	pc := entry
	for len(b.ops) < maxBlockOps {
		inst, err := c.DecodeAt(pc)
		if err != nil {
			if len(b.ops) == 0 {
				return nil, err
			}
			break
		}
		b.ops = append(b.ops, compile(pc, &inst))
		pc += uint32(inst.Len)
		if terminal(inst.Op) {
			break
		}
	}
	b.end = pc
	b.lo, b.hi = entry, pc
	e.blocks[entry] = b
	e.mTranslations.Inc()
	e.mBlockLen.Record(uint64(len(b.ops)))
	if shared {
		// Peek can fail only if the decoded range became unmapped
		// mid-walk, which cannot happen (segments are never unmapped);
		// a failure just skips publication.
		if code, err := c.Mem.Peek(entry, pc-entry); err == nil && e.cat.install(entry, code, b.ops) {
			e.mCatInstalls.Inc()
		}
	}
	return b, nil
}

// compile lowers one decoded instruction to a micro-op. Only 32-bit
// operand forms are specialized; anything else (8/16-bit ALU, ADC/SBB,
// rotates, string ops, mul/div, flag twiddles, ...) falls back to the
// interpreter core, which is correct by construction.
func compile(pc uint32, inst *x86.Inst) uop {
	u := uop{pc: pc, cost: uint16(emu.InstCost(inst))}

	switch inst.Op {
	case x86.MOV:
		if inst.W == 8 && inst.Dst.Kind == x86.KMem && inst.Src.Kind == x86.KReg {
			// Byte store (string/flag writes in generated code). The
			// executor routes it through Memory.Store8 outside the cached
			// segments, so stores into code still fire invalidation.
			u.kind, u.r2 = opMovMR8, inst.Src.Reg
			u.setMem(&inst.Dst)
			return u
		}
		if inst.W != 32 {
			break
		}
		switch {
		case inst.Dst.Kind == x86.KReg && inst.Src.Kind == x86.KReg:
			u.kind, u.r1, u.r2 = opMovRR, inst.Dst.Reg, inst.Src.Reg
			return u
		case inst.Dst.Kind == x86.KReg && inst.Src.Kind == x86.KImm:
			u.kind, u.r1, u.imm = opMovRI, inst.Dst.Reg, uint32(inst.Src.Imm)
			return u
		case inst.Dst.Kind == x86.KReg && inst.Src.Kind == x86.KMem:
			u.kind, u.r1 = opMovRM, inst.Dst.Reg
			u.setMem(&inst.Src)
			return u
		case inst.Dst.Kind == x86.KMem && inst.Src.Kind == x86.KReg:
			u.kind, u.r2 = opMovMR, inst.Src.Reg
			u.setMem(&inst.Dst)
			return u
		case inst.Dst.Kind == x86.KMem && inst.Src.Kind == x86.KImm:
			u.kind, u.imm = opMovMI, uint32(inst.Src.Imm)
			u.setMem(&inst.Dst)
			return u
		}

	case x86.ADD, x86.OR, x86.AND, x86.SUB, x86.XOR, x86.CMP, x86.TEST:
		if inst.W != 32 {
			break
		}
		u.alu = uint8(inst.Op)
		switch {
		case inst.Dst.Kind == x86.KReg && inst.Src.Kind == x86.KReg:
			u.kind, u.r1, u.r2 = opAluRR, inst.Dst.Reg, inst.Src.Reg
			return u
		case inst.Dst.Kind == x86.KReg && inst.Src.Kind == x86.KImm:
			u.kind, u.r1, u.imm = opAluRI, inst.Dst.Reg, uint32(inst.Src.Imm)
			return u
		case inst.Dst.Kind == x86.KReg && inst.Src.Kind == x86.KMem:
			u.kind, u.r1 = opAluRM, inst.Dst.Reg
			u.setMem(&inst.Src)
			return u
		case inst.Dst.Kind == x86.KMem && inst.Src.Kind == x86.KReg:
			u.kind, u.r2 = opAluMR, inst.Src.Reg
			u.setMem(&inst.Dst)
			return u
		case inst.Dst.Kind == x86.KMem && inst.Src.Kind == x86.KImm:
			u.kind, u.imm = opAluMI, uint32(inst.Src.Imm)
			u.setMem(&inst.Dst)
			return u
		}

	case x86.INC:
		if inst.W == 32 && inst.Dst.Kind == x86.KReg {
			u.kind, u.r1 = opIncR, inst.Dst.Reg
			return u
		}
	case x86.DEC:
		if inst.W == 32 && inst.Dst.Kind == x86.KReg {
			u.kind, u.r1 = opDecR, inst.Dst.Reg
			return u
		}
	case x86.NOT:
		if inst.W == 32 && inst.Dst.Kind == x86.KReg {
			u.kind, u.r1 = opNotR, inst.Dst.Reg
			return u
		}
	case x86.NEG:
		if inst.W == 32 && inst.Dst.Kind == x86.KReg {
			u.kind, u.r1 = opNegR, inst.Dst.Reg
			return u
		}

	case x86.PUSH:
		switch inst.Dst.Kind {
		case x86.KReg:
			u.kind, u.r1 = opPushR, inst.Dst.Reg
			return u
		case x86.KImm:
			u.kind, u.imm = opPushI, uint32(inst.Dst.Imm)
			return u
		case x86.KMem:
			u.kind = opPushM
			u.setMem(&inst.Dst)
			return u
		}
	case x86.POP:
		if inst.Dst.Kind == x86.KReg {
			u.kind, u.r1 = opPopR, inst.Dst.Reg
			return u
		}

	case x86.LEA:
		if inst.Dst.Kind == x86.KReg && inst.Src.Kind == x86.KMem {
			u.kind, u.r1 = opLea, inst.Dst.Reg
			u.setMem(&inst.Src)
			return u
		}

	case x86.MOVZX, x86.MOVSX:
		if inst.Dst.Kind == x86.KReg && inst.Src.Kind == x86.KReg {
			u.kind, u.r1, u.r2, u.w = opExt, inst.Dst.Reg, inst.Src.Reg, inst.W
			if inst.Op == x86.MOVSX {
				u.alu = extSigned
			}
			return u
		}
		if inst.Dst.Kind == x86.KReg && inst.Src.Kind == x86.KMem {
			u.kind, u.r1, u.w = opExtM, inst.Dst.Reg, inst.W
			if inst.Op == x86.MOVSX {
				u.alu = extSigned
			}
			u.setMem(&inst.Src)
			return u
		}

	case x86.IMUL:
		// Two- and three-operand forms only: truncated signed multiply
		// into a register, CF=OF=overflow, SZP from the low result, AF
		// untouched. The one-operand EDX:EAX forms stay on the fallback.
		if inst.W == 32 && inst.Dst.Kind == x86.KReg {
			if inst.HasImm {
				u.alu, u.imm = imulImm, uint32(inst.Imm)
			}
			switch inst.Src.Kind {
			case x86.KReg:
				u.kind, u.r1, u.r2 = opImulRR, inst.Dst.Reg, inst.Src.Reg
				return u
			case x86.KMem:
				u.kind, u.r1 = opImulRM, inst.Dst.Reg
				u.setMem(&inst.Src)
				return u
			}
			u.alu, u.imm = 0, 0
		}

	case x86.SHL, x86.SAL, x86.SHR, x86.SAR:
		if inst.W != 32 || inst.Dst.Kind != x86.KReg {
			break
		}
		var sel uint8
		switch inst.Op {
		case x86.SHR:
			sel = shiftShr
		case x86.SAR:
			sel = shiftSar
		default:
			sel = shiftShl
		}
		switch {
		case inst.Src.Kind == x86.KImm:
			count := uint32(inst.Src.Imm) & 31
			if count == 0 {
				// Zero count: the interpreter skips the write and leaves
				// every flag (including AF) untouched.
				u.kind = opNop
				return u
			}
			u.kind, u.alu, u.r1, u.imm = opShiftRI, sel, inst.Dst.Reg, count
			return u
		case inst.Src.Kind == x86.KReg && inst.Src.Reg == x86.ECX:
			// Shift by CL: the count is dynamic, so the zero-count
			// flags-untouched case is handled by the executor.
			u.kind, u.alu, u.r1 = opShiftRC, sel, inst.Dst.Reg
			return u
		}

	case x86.XCHG:
		if inst.W == 32 && inst.Dst.Kind == x86.KReg && inst.Src.Kind == x86.KReg {
			u.kind, u.r1, u.r2 = opXchgRR, inst.Dst.Reg, inst.Src.Reg
			return u
		}

	case x86.SETCC:
		if inst.Dst.Kind == x86.KReg {
			u.kind, u.r1, u.alu = opSetccR, inst.Dst.Reg, uint8(inst.Cond)
			return u
		}

	case x86.LEAVE:
		u.kind = opLeave
		return u

	case x86.JMP:
		switch {
		case inst.Rel:
			u.kind, u.target = opJmp, inst.Target
			return u
		case inst.Dst.Kind == x86.KReg:
			u.kind, u.r1 = opJmpIndR, inst.Dst.Reg
			return u
		case inst.Dst.Kind == x86.KMem:
			u.kind = opJmpIndM
			u.setMem(&inst.Dst)
			return u
		}

	case x86.CALL:
		u.imm = pc + uint32(inst.Len) // return address
		switch {
		case inst.Rel:
			u.kind, u.target = opCallD, inst.Target
			return u
		case inst.Dst.Kind == x86.KReg:
			u.kind, u.r1 = opCallIndR, inst.Dst.Reg
			return u
		case inst.Dst.Kind == x86.KMem:
			u.kind = opCallIndM
			u.setMem(&inst.Dst)
			return u
		}
		u.imm = 0

	case x86.JCC:
		u.kind, u.alu, u.target = opJcc, uint8(inst.Cond), inst.Target
		return u

	case x86.RET:
		u.kind, u.imm = opRet, uint32(uint16(inst.Imm))
		return u
	}

	// Fallback: replay the decoded instruction through the interpreter.
	// Cost drops to zero — the interpreter core accounts its own cycles,
	// and the executor adds op.cost unconditionally.
	ic := *inst
	u.inst = &ic
	u.cost = 0
	if terminal(inst.Op) {
		u.kind = opFallbackTerm
	} else {
		u.kind = opFallback
	}
	return u
}
