package tb

import "parallax/internal/x86"

// Test-only exports: the external test package (tb_test) measures
// fallback rates and inspects translation internals through these.

// CompiledKind reports how the translator lowers inst at pc: "uop" for
// a specialized micro-op, "fallback" for interpreter replay.
func CompiledKind(pc uint32, inst *x86.Inst) string {
	u := compile(pc, inst)
	if u.kind == opFallback || u.kind == opFallbackTerm {
		return "fallback"
	}
	return "uop"
}
