package tb_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"parallax/internal/chaos"
	"parallax/internal/emu"
	"parallax/internal/emu/tb"
)

// TestTightDeadlineOnChainedHotLoop is the cancellation-starvation
// regression: a fully chained hot loop must observe a context deadline
// promptly even when the instruction-count poll stride is configured
// far beyond the deadline's reach (e.g. a caller tuning CheckStride
// for trace sampling). Before the per-N-blocks poll, the engine only
// checked the context every CheckStride instructions, so this
// configuration spun until MaxInst.
func TestTightDeadlineOnChainedHotLoop(t *testing.T) {
	// loop: inc eax; jmp loop — a one-block chained hot loop.
	c := loadWX(t, []byte{0x40, 0xEB, 0xFD})
	c.MaxInst = 1 << 62     // effectively unbounded
	c.CheckStride = 1 << 60 // instruction-count polling never trips
	e := tb.New(c, nil)
	defer e.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- e.RunContext(ctx) }()
	select {
	case err := <-done:
		var de *emu.DeadlineError
		if !errors.As(err, &de) {
			t.Fatalf("want DeadlineError, got %v", err)
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("DeadlineError does not wrap DeadlineExceeded: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("chained hot loop starved the 30ms deadline for 5s")
	}
}

// TestChaosBudgetInjection forces a watchdog exhaustion at a poll
// boundary: the run must stop with a DeadlineError whose chain carries
// the typed chaos error, distinguishable from a real deadline trip.
func TestChaosBudgetInjection(t *testing.T) {
	c := loadWX(t, []byte{0x40, 0xEB, 0xFD})
	c.MaxInst = 1 << 62
	c.Chaos = chaos.New(chaos.Plan{Seed: 5, Faults: []chaos.Fault{
		{Point: chaos.PointEmuBudget, Prob: 1, Count: 1}}}, nil)
	e := tb.New(c, nil)
	defer e.Close()

	err := e.RunContext(context.Background())
	var de *emu.DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("want DeadlineError shape, got %v", err)
	}
	if !chaos.IsInjected(err) {
		t.Fatalf("forced budget trip not marked injected: %v", err)
	}

	// Interpreter parity: same plan, same shape.
	ci := loadWX(t, []byte{0x40, 0xEB, 0xFD})
	ci.MaxInst = 1 << 62
	ci.Chaos = chaos.New(chaos.Plan{Seed: 5, Faults: []chaos.Fault{
		{Point: chaos.PointEmuBudget, Prob: 1, Count: 1}}}, nil)
	erri := ci.RunContext(context.Background())
	if !errors.As(erri, &de) || !chaos.IsInjected(erri) {
		t.Fatalf("interpreter forced budget trip: %v", erri)
	}
}
