package tb

// Lazy condition codes. Instead of computing all six arithmetic flags
// after every ALU op (the interpreter's addFlags/subFlags/logicFlags),
// the engine records what the last flag-producing op *was* — its kind,
// operands and result — and derives individual flags only when a
// consumer asks. Most flags die unread: the common consumers (JCC
// after CMP/TEST, loop counters) read one or two bits, and AF/PF
// almost never. materialize() folds the pending state into the CPU's
// boolean flags whenever full EFLAGS must be architectural: before a
// fallback instruction, on every public entry/exit of the engine, and
// before any error returns.
//
// The formulas mirror internal/emu/exec.go's addFlags/subFlags/
// logicFlags/execShift for w=32 exactly — the only width the engine
// specializes.

// ccKind identifies the producing operation.
type ccKind uint8

const (
	ccNone  ccKind = iota // no pending state; CPU flags are current
	ccAdd                 // res = dst + src
	ccSub                 // res = dst - src (also CMP, NEG with dst=0)
	ccLogic               // AND/OR/XOR/TEST: CF=OF=AF=0
	ccInc                 // res = dst + 1, CF preserved in saved
	ccDec                 // res = dst - 1, CF preserved in saved
	ccShl                 // res = dst << src (src in 1..31), AF preserved
	ccShr                 // res = dst >> src (logical), AF preserved
	ccSar                 // res = dst >> src (arithmetic), AF preserved
)

// ccState is the deferred flag computation: the last producer's
// operands and result. saved carries the one flag the producer
// preserves rather than defines (CF for INC/DEC, AF for shifts),
// captured lazily from the previous state at production time.
type ccState struct {
	kind  ccKind
	dst   uint32 // left operand (shift: value before shifting)
	src   uint32 // right operand (shift: masked count, 1..31)
	res   uint32 // 32-bit result
	saved bool
}

func parity8(v uint32) bool {
	v ^= v >> 4
	v ^= v >> 2
	v ^= v >> 1
	return v&1 == 0
}

// materialize folds any pending flag state into the CPU's boolean
// flags and clears it. After it returns, CPU.Flags() is architectural.
func (e *Engine) materialize() {
	cc := &e.cc
	if cc.kind == ccNone {
		return
	}
	c := e.cpu
	dst, src, res := cc.dst, cc.src, cc.res
	switch cc.kind {
	case ccAdd:
		c.CF = res < dst
		c.OF = (^(dst^src)&(dst^res))>>31 != 0
		c.AF = (dst^src^res)&0x10 != 0
	case ccSub:
		c.CF = dst < src
		c.OF = ((dst^src)&(dst^res))>>31 != 0
		c.AF = (dst^src^res)&0x10 != 0
	case ccLogic:
		c.CF, c.OF, c.AF = false, false, false
	case ccInc:
		c.CF = cc.saved
		c.OF = (^(dst^1)&(dst^res))>>31 != 0
		c.AF = (dst^1^res)&0x10 != 0
	case ccDec:
		c.CF = cc.saved
		c.OF = ((dst^1)&(dst^res))>>31 != 0
		c.AF = (dst^1^res)&0x10 != 0
	case ccShl:
		c.CF = dst&(1<<(32-src)) != 0
		c.OF = (res>>31 != 0) != c.CF
		c.AF = cc.saved
	case ccShr:
		c.CF = dst&(1<<(src-1)) != 0
		c.OF = dst>>31 != 0
		c.AF = cc.saved
	case ccSar:
		c.CF = (dst>>(src-1))&1 != 0
		c.OF = false
		c.AF = cc.saved
	}
	c.ZF = res == 0
	c.SF = res>>31 != 0
	c.PF = parity8(res)
	cc.kind = ccNone
}

// lazyCF reads the carry flag without materializing: INC/DEC preserve
// the incoming CF, so their producers call this to capture it.
func (e *Engine) lazyCF() bool {
	cc := &e.cc
	switch cc.kind {
	case ccNone:
		return e.cpu.CF
	case ccAdd:
		return cc.res < cc.dst
	case ccSub:
		return cc.dst < cc.src
	case ccLogic:
		return false
	case ccInc, ccDec:
		return cc.saved
	case ccShl:
		return cc.dst&(1<<(32-cc.src)) != 0
	case ccShr:
		return cc.dst&(1<<(cc.src-1)) != 0
	default: // ccSar
		return (cc.dst>>(cc.src-1))&1 != 0
	}
}

// lazyAF reads the adjust flag without materializing: shifts preserve
// the incoming AF, so their producers call this to capture it.
func (e *Engine) lazyAF() bool {
	cc := &e.cc
	switch cc.kind {
	case ccNone:
		return e.cpu.AF
	case ccAdd, ccSub:
		return (cc.dst^cc.src^cc.res)&0x10 != 0
	case ccLogic:
		return false
	case ccInc, ccDec:
		return (cc.dst^1^cc.res)&0x10 != 0
	default: // ccShl, ccShr, ccSar preserve AF
		return cc.saved
	}
}
