package tb_test

import (
	"testing"

	"parallax/internal/emu/tb"
	"parallax/internal/obs"
)

// TestCatalogSharedAcrossEngines runs the same image on two CPUs whose
// engines share one catalog: the second run must adopt every block the
// first translated and decode nothing itself.
func TestCatalogSharedAcrossEngines(t *testing.T) {
	cat := tb.NewCatalog()

	reg1 := obs.NewRegistry()
	c1 := loadWX(t, chainedPatchProgram)
	e1 := tb.NewWithCatalog(c1, reg1, cat)
	if err := e1.Run(); err != nil {
		t.Fatalf("run 1: %v", err)
	}
	e1.Close()
	t1 := reg1.Counter("emu.tb.translations").Value()
	if t1 == 0 {
		t.Fatal("first engine translated nothing")
	}
	if got := reg1.Counter("emu.tb.catalog_installs").Value(); got == 0 {
		t.Fatal("first engine published nothing to the catalog")
	}
	if cat.Blocks() == 0 {
		t.Fatal("catalog empty after a publishing run")
	}

	// The first run patches its own code mid-run, so its end state holds
	// both clean and patched variants — the fresh CPU below must adopt
	// only byte-matching ones and still compute the exact same result.
	reg2 := obs.NewRegistry()
	c2 := loadWX(t, chainedPatchProgram)
	e2 := tb.NewWithCatalog(c2, reg2, cat)
	if err := e2.Run(); err != nil {
		t.Fatalf("run 2: %v", err)
	}
	e2.Close()
	if got := reg2.Counter("emu.tb.translations").Value(); got != 0 {
		t.Fatalf("second engine translated %d blocks; want 0 (full adoption)", got)
	}
	if got := reg2.Counter("emu.tb.catalog_hits").Value(); got == 0 {
		t.Fatal("second engine recorded no catalog hits")
	}
	if c1.Reg != c2.Reg || c1.Icount != c2.Icount || c1.Status != c2.Status ||
		c1.Flags() != c2.Flags() {
		t.Fatalf("adopted run diverged:\n run1: %s icount=%d\n run2: %s icount=%d",
			c1, c1.Icount, c2, c2.Icount)
	}
	if got := c2.Reg[6]; got != 0x55555555 { // ESI
		t.Fatalf("esi = %#x, want 0x55555555 (stale adoption?)", got)
	}
}

// TestCatalogMutantDivergence patches one byte of the second CPU's
// image: the untouched block is adopted from the catalog, the patched
// block fails byte verification and translates privately, and each run
// executes its own bytes.
func TestCatalogMutantDivergence(t *testing.T) {
	// Two blocks: entry jumps over a gap to body; body sets EAX and rets.
	code := []byte{
		0xEB, 0x02, // 00: jmp body
		0x90, 0x90, // 02: (gap)
		0xB8, 0x2A, 0x00, 0x00, 0x00, // 04: body: mov eax, 42
		0xC3, // 09: ret
	}
	cat := tb.NewCatalog()

	reg1 := obs.NewRegistry()
	c1 := loadWX(t, code)
	e1 := tb.NewWithCatalog(c1, reg1, cat)
	if err := e1.Run(); err != nil {
		t.Fatalf("clean run: %v", err)
	}
	e1.Close()
	if got := c1.Reg[0]; got != 42 {
		t.Fatalf("clean eax = %d, want 42", got)
	}

	mutant := append([]byte(nil), code...)
	mutant[5] = 0x07 // mov eax, 42 -> mov eax, 7
	reg2 := obs.NewRegistry()
	c2 := loadWX(t, mutant)
	e2 := tb.NewWithCatalog(c2, reg2, cat)
	if err := e2.Run(); err != nil {
		t.Fatalf("mutant run: %v", err)
	}
	e2.Close()
	if got := c2.Reg[0]; got != 7 {
		t.Fatalf("mutant eax = %d, want 7 (adopted a stale clean-image block?)", got)
	}
	// Exactly the patched block re-translated; the jump block was adopted.
	if got := reg2.Counter("emu.tb.translations").Value(); got != 1 {
		t.Fatalf("mutant translated %d blocks, want exactly 1 (the patched one)", got)
	}

	// A third CPU on the clean bytes adopts the clean variants even
	// though the mutant's variants now sit alongside them.
	reg3 := obs.NewRegistry()
	c3 := loadWX(t, code)
	e3 := tb.NewWithCatalog(c3, reg3, cat)
	if err := e3.Run(); err != nil {
		t.Fatalf("re-clean run: %v", err)
	}
	e3.Close()
	if got := c3.Reg[0]; got != 42 {
		t.Fatalf("re-clean eax = %d, want 42 (adopted the mutant's block?)", got)
	}
	if got := reg3.Counter("emu.tb.translations").Value(); got != 0 {
		t.Fatalf("re-clean run translated %d blocks, want 0", got)
	}
}

// TestCatalogOverlaySkipsBothDirections arms the Wurster fetch overlay:
// memory bytes no longer describe fetched bytes, so the engine must
// neither adopt from nor publish to the catalog while it is armed.
func TestCatalogOverlaySkipsBothDirections(t *testing.T) {
	code := []byte{
		0xB8, 0x2A, 0x00, 0x00, 0x00, // mov eax, 42
		0xC3, // ret
	}
	cat := tb.NewCatalog()

	c := loadWX(t, code)
	// Overlay the mov's immediate: fetch sees 7, data reads still see 42.
	c.SetOverlay(testBase, []byte{0xB8, 0x07, 0x00, 0x00, 0x00})
	reg := obs.NewRegistry()
	e := tb.NewWithCatalog(c, reg, cat)
	if err := e.Run(); err != nil {
		t.Fatalf("overlay run: %v", err)
	}
	e.Close()
	if got := c.Reg[0]; got != 7 {
		t.Fatalf("overlay eax = %d, want 7 (overlay not honored)", got)
	}
	for _, name := range []string{"emu.tb.catalog_hits", "emu.tb.catalog_misses", "emu.tb.catalog_installs"} {
		if got := reg.Counter(name).Value(); got != 0 {
			t.Fatalf("%s = %d with overlay armed, want 0 (catalog must be skipped)", name, got)
		}
	}
	if cat.Blocks() != 0 {
		t.Fatalf("catalog holds %d entries published under an overlay", cat.Blocks())
	}

	// A clean CPU must not be able to adopt overlay-tainted variants —
	// there are none — and must run the memory bytes.
	c2 := loadWX(t, code)
	e2 := tb.NewWithCatalog(c2, nil, cat)
	if err := e2.Run(); err != nil {
		t.Fatalf("clean run: %v", err)
	}
	e2.Close()
	if got := c2.Reg[0]; got != 42 {
		t.Fatalf("clean eax = %d, want 42", got)
	}
}

// TestMetricsReconcile is the invalidations/flushes split regression:
// every block an engine ever held dies exactly once, through either the
// per-block coherence counter or the wholesale-flush counter, so after
// Close the identity
//
//	translations + catalog_hits == invalidations + flushes
//
// holds on the engine's registry — including the teardown flush, which
// previously went uncounted.
func TestMetricsReconcile(t *testing.T) {
	t.Run("teardown-only", func(t *testing.T) {
		reg := obs.NewRegistry()
		c := loadWX(t, []byte{0x90, 0xC3}) // nop; ret — one block, no SMC
		e := tb.New(c, reg)
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		if got := reg.Counter("emu.tb.flushes").Value(); got != 0 {
			t.Fatalf("flushes = %d before Close, want 0", got)
		}
		e.Close()
		if got := reg.Counter("emu.tb.flushes").Value(); got != 1 {
			t.Fatalf("flushes = %d after Close, want 1 (the teardown flush)", got)
		}
		if got := reg.Counter("emu.tb.invalidations").Value(); got != 0 {
			t.Fatalf("invalidations = %d, want 0 (no code was modified)", got)
		}
	})

	t.Run("smc-and-catalog", func(t *testing.T) {
		cat := tb.NewCatalog()
		for i := 0; i < 2; i++ {
			reg := obs.NewRegistry()
			c := loadWX(t, chainedPatchProgram)
			e := tb.NewWithCatalog(c, reg, cat)
			if err := e.Run(); err != nil {
				t.Fatal(err)
			}
			e.Close()
			born := reg.Counter("emu.tb.translations").Value() +
				reg.Counter("emu.tb.catalog_hits").Value()
			died := reg.Counter("emu.tb.invalidations").Value() +
				reg.Counter("emu.tb.flushes").Value()
			if born == 0 || born != died {
				t.Fatalf("pass %d: translations+hits = %d, invalidations+flushes = %d; want equal and non-zero",
					i, born, died)
			}
		}
	})
}

// TestInvalidateBoundaryBytes pins the half-open [lo, hi) convention on
// the invalidation bus end to end: a write to a block's last byte kills
// it, a write to the first byte past its end does not.
func TestInvalidateBoundaryBytes(t *testing.T) {
	// Block spans [base, base+2): inc eax; ret. base+2 is one past it.
	code := []byte{0x40, 0xC3, 0x90, 0x90}
	reg := obs.NewRegistry()
	c := loadWX(t, code)
	e := tb.New(c, reg)
	defer e.Close()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	inv := reg.Counter("emu.tb.invalidations")

	// First byte past the block's end: must NOT invalidate.
	if err := c.Patch(testBase+2, []byte{0x91}); err != nil {
		t.Fatal(err)
	}
	if got := inv.Value(); got != 0 {
		t.Fatalf("write one past block end invalidated %d blocks, want 0", got)
	}

	// Last byte inside the block: must invalidate.
	if err := c.Patch(testBase+1, []byte{0xC3}); err != nil {
		t.Fatal(err)
	}
	if got := inv.Value(); got != 1 {
		t.Fatalf("write to block's last byte invalidated %d blocks, want 1", got)
	}
}
