package tb_test

import (
	"errors"
	"testing"

	"parallax/internal/emu"
	"parallax/internal/emu/tb"
	"parallax/internal/image"
	"parallax/internal/obs"
)

const testBase = 0x08048000

// loadWX maps code as a writable+executable image (self-modifying test
// programs) and returns a loaded CPU.
func loadWX(t *testing.T, code []byte) *emu.CPU {
	t.Helper()
	padded := make([]byte, 0x1000)
	copy(padded, code)
	img := &image.Image{
		Entry: testBase,
		Sections: []*image.Section{
			{Name: ".text", Addr: testBase, Data: padded,
				Size: uint32(len(padded)), Perm: image.PermR | image.PermW | image.PermX},
		},
	}
	c, err := emu.LoadImageWith(img, emu.LoadConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// chainedPatchProgram loops three times through a direct jump whose
// target block it patches mid-run:
//
//	        mov ecx, 3
//	loop:   jmp body            ; chains loop -> body on iteration 1
//	body:   mov eax, 0x11111111 ; imm at base+0x08 is the patch target
//	        add esi, eax
//	        dec ecx
//	        jz done
//	        mov dword [base+0x08], 0x22222222
//	        jmp loop
//	done:   ret
//
// Iteration 1 adds 0x11111111 and patches; iterations 2 and 3 must
// execute the patched immediate, so ESI ends at 0x55555555. A stale
// translation reached through the already-established chain would give
// 0x33333333 instead.
var chainedPatchProgram = []byte{
	0xB9, 0x03, 0x00, 0x00, 0x00, // 00: mov ecx,3
	0xEB, 0x00, // 05: jmp body
	0xB8, 0x11, 0x11, 0x11, 0x11, // 07: body: mov eax,0x11111111
	0x01, 0xC6, // 0c: add esi,eax
	0x49,       // 0e: dec ecx
	0x74, 0x0C, // 0f: jz done
	0xC7, 0x05, 0x08, 0x80, 0x04, 0x08, 0x22, 0x22, 0x22, 0x22, // 11: mov [base+8],0x22222222
	0xEB, 0xE8, // 1b: jmp loop
	0xC3, // 1d: done: ret
}

func TestChainedJumpPatchExecutesNewBytes(t *testing.T) {
	for _, mode := range []string{"run", "step"} {
		t.Run(mode, func(t *testing.T) {
			reg := obs.NewRegistry()
			c := loadWX(t, chainedPatchProgram)
			e := tb.New(c, reg)
			defer e.Close()

			var err error
			if mode == "run" {
				err = e.Run()
			} else {
				for !c.Exited && err == nil {
					err = e.Step()
				}
			}
			if err != nil {
				t.Fatalf("tb %s: %v (eip=%#x)", mode, err, c.EIP)
			}
			if got := c.Reg[6]; got != 0x55555555 { // ESI
				t.Fatalf("esi = %#x, want 0x55555555 (stale translation gives 0x33333333)", got)
			}
			if reg.Counter("emu.tb.invalidations").Value() == 0 {
				t.Fatal("patching chained code recorded no invalidations")
			}

			// The interpreter must agree on every observable counter.
			ic := loadWX(t, chainedPatchProgram)
			if err := ic.Run(); err != nil {
				t.Fatalf("interp: %v", err)
			}
			if ic.Reg != c.Reg || ic.Icount != c.Icount || ic.Cycles != c.Cycles ||
				ic.Status != c.Status || ic.Flags() != c.Flags() {
				t.Fatalf("tb/interp mismatch:\n tb:     %s icount=%d cycles=%d\n interp: %s icount=%d cycles=%d",
					c, c.Icount, c.Cycles, ic, ic.Icount, ic.Cycles)
			}
		})
	}
}

// TestMidBlockSelfPatch stores over an instruction later in the same
// basic block: the store's invalidation must abort the current
// translation so the freshly written bytes (dec eax x4 over inc eax
// x4) execute.
func TestMidBlockSelfPatch(t *testing.T) {
	code := []byte{
		0xC7, 0x05, 0x10, 0x80, 0x04, 0x08, 0x48, 0x48, 0x48, 0x48, // 00: mov [base+0x10],0x48484848
		0xB8, 0x05, 0x00, 0x00, 0x00, // 0a: mov eax,5
		0x90,                   // 0f: nop
		0x40, 0x40, 0x40, 0x40, // 10: inc eax x4 (patched to dec eax x4)
		0xC3, // 14: ret
	}
	c := loadWX(t, code)
	e := tb.New(c, nil)
	defer e.Close()
	if err := e.Run(); err != nil {
		t.Fatalf("tb run: %v (eip=%#x)", err, c.EIP)
	}
	if !c.Exited || c.Status != 1 {
		t.Fatalf("exited=%t status=%d, want clean exit 1 (stale block gives 9)", c.Exited, c.Status)
	}
}

// TestInstLimitParity checks the engine reports the budget stop with
// the interpreter's exact error shape, count and EIP — mid-block.
func TestInstLimitParity(t *testing.T) {
	// loop: inc eax; jmp loop
	code := []byte{0x40, 0xEB, 0xFD}
	tc := loadWX(t, code)
	tc.MaxInst = 777
	e := tb.New(tc, nil)
	defer e.Close()
	errT := e.Run()

	ic := loadWX(t, code)
	ic.MaxInst = 777
	errI := ic.Run()

	if !errors.Is(errT, emu.ErrInstLimit) || !errors.Is(errI, emu.ErrInstLimit) {
		t.Fatalf("want inst-limit from both: tb=%v interp=%v", errT, errI)
	}
	if errT.Error() != errI.Error() {
		t.Fatalf("error text differs:\n tb:     %v\n interp: %v", errT, errI)
	}
	if tc.Icount != ic.Icount || tc.EIP != ic.EIP || tc.Reg != ic.Reg {
		t.Fatalf("limit state differs: tb icount=%d eip=%#x vs interp icount=%d eip=%#x",
			tc.Icount, tc.EIP, ic.Icount, ic.EIP)
	}
}

// TestCloseUnregisters checks a closed engine no longer receives
// invalidations from the bus (the cancel path of OnCodeInvalidate).
func TestCloseUnregisters(t *testing.T) {
	reg := obs.NewRegistry()
	c := loadWX(t, []byte{0xC3})
	e := tb.New(c, reg)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e.Close()
	after := reg.Counter("emu.tb.invalidations").Value()
	if err := c.Patch(testBase, []byte{0x90, 0xC3}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("emu.tb.invalidations").Value(); got != after {
		t.Fatalf("closed engine still invalidating: %d -> %d", after, got)
	}
}
