package tb

// The shared translation catalog: a content-addressed store of
// translated blocks, keyed by (entry address, exact code bytes), that
// snapshot/restore mutants of one image and workers across a campaign
// or batch share instead of each re-translating the ~99% of blocks a
// one-byte mutant leaves untouched.
//
// Correctness rests on translation being a pure function of the entry
// address and the code bytes the decoder consumed, which all lie in
// [entry, end). An engine adopting a catalog variant therefore
// re-verifies it against its own memory — a full byte comparison via
// Memory.EqualAt — on every adoption, so a
// variant can never be stale with respect to the adopting CPU: a
// mutant whose patch landed inside the block simply fails the
// comparison and translates privately (installing its own variant).
// Because of that, the catalog deliberately does not subscribe to any
// single CPU's OnCodeInvalidate bus: an invalidation on one worker's
// memory says nothing about the identical bytes another worker still
// executes. Per-engine coherence — Patch, Restore page copy-back,
// self-modifying stores — stays with each Engine's private block map,
// exactly as without a catalog.
//
// The one case where memory bytes do not describe fetched bytes is an
// armed fetch overlay (the Wurster split-cache view); engines skip the
// catalog entirely, both directions, while CPU.OverlayActive reports
// true. Any such coherence doubt degrades to private translation,
// never to a wrong adoption.
//
// A Catalog is safe for concurrent use by many engines; variant slices
// are immutable once published, so readers never see a torn entry.

import (
	"sync"

	"parallax/internal/emu"
)

// maxCatalogVariants caps how many byte-distinct translations the
// catalog keeps per entry address. Campaign mutants that patch a hot
// block each install their own variant; beyond the cap the newest
// mutant variant replaces the previous newest, so the early (clean
// image) variants every other mutant re-adopts are never churned out.
const maxCatalogVariants = 8

// catVariant is one content-addressed translation: the exact code
// bytes it was decoded from and the compiled micro-ops. Both are
// immutable after install; the ops slice is shared read-only by every
// block adopted from it.
type catVariant struct {
	hash uint64
	code []byte
	ops  []uop
}

// Catalog is a shared translation store. The zero value is not usable;
// construct with NewCatalog. A nil *Catalog is valid and inert, so
// callers thread it unconditionally.
//
// The catalog itself keeps no metrics: adoptions and installs are
// counted by each Engine on its own registry (emu.tb.catalog_hits,
// emu.tb.catalog_misses, emu.tb.catalog_installs), so the per-engine
// reconciliation identity documented on Engine.flushAll holds and a
// campaign's shared registry aggregates every worker's counts.
type Catalog struct {
	mu      sync.RWMutex
	entries map[uint32][]catVariant
}

// NewCatalog returns an empty shared catalog.
func NewCatalog() *Catalog {
	return &Catalog{entries: make(map[uint32][]catVariant)}
}

// fnv1a64 hashes code bytes for the adoption fast filter.
func fnv1a64(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range b {
		h ^= uint64(v)
		h *= 1099511628211
	}
	return h
}

// adopt looks for a variant at entry whose code bytes match mem right
// now, returning its ops and block end on a hit. The byte comparison
// runs against live memory on every call — the variant describes what
// this CPU executes only while the bytes agree, and agreement is
// re-established here, never assumed.
func (t *Catalog) adopt(mem *emu.Memory, entry uint32) (ops []uop, end uint32) {
	if t == nil {
		return nil, 0
	}
	t.mu.RLock()
	vs := t.entries[entry]
	t.mu.RUnlock()
	for i := range vs {
		v := &vs[i]
		if mem.EqualAt(entry, v.code) {
			return v.ops, entry + uint32(len(v.code))
		}
	}
	return nil, 0
}

// install publishes a freshly translated block under its code bytes,
// reporting whether a new variant was actually added. code must be the
// engine's own copy (the catalog keeps it). Identical bytes already
// present are left alone; at the variant cap the newest slot is
// replaced so early variants survive mutant churn.
func (t *Catalog) install(entry uint32, code []byte, ops []uop) bool {
	if t == nil || len(code) == 0 {
		return false
	}
	h := fnv1a64(code)
	t.mu.Lock()
	defer t.mu.Unlock()
	vs := t.entries[entry]
	for i := range vs {
		if vs[i].hash == h && string(vs[i].code) == string(code) {
			return false
		}
	}
	// Publish a fresh slice: readers hold the old header lock-free, so
	// existing variants are never mutated in place.
	nv := catVariant{hash: h, code: code, ops: ops}
	var out []catVariant
	if len(vs) >= maxCatalogVariants {
		out = append(out, vs[:maxCatalogVariants-1]...)
		out = append(out, nv)
	} else {
		out = append(append(out, vs...), nv)
	}
	t.entries[entry] = out
	return true
}

// Blocks returns how many entry addresses the catalog holds — a
// coarse size probe for tests and reports.
func (t *Catalog) Blocks() int {
	if t == nil {
		return 0
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.entries)
}
