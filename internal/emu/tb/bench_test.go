package tb_test

import (
	"errors"
	"testing"

	"parallax/internal/codegen"
	"parallax/internal/corpus"
	"parallax/internal/emu"
	"parallax/internal/emu/tb"
	"parallax/internal/image"
)

// BenchmarkEngines compares the interpreter and the translation-block
// engine over real corpus programs. Run with
//
//	go test -bench BenchmarkEngines -benchtime 1x ./internal/emu/tb
//
// and compare the insts/s metric between /interp and /tb variants; the
// experiment driver (parallax-bench -experiment difftest) records the
// same ratio machine-readably in BENCH_tb.json.
func BenchmarkEngines(b *testing.B) {
	const maxInst = 20_000_000
	for _, name := range []string{"wget", "bzip2", "lame"} {
		p, err := corpus.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		img, err := codegen.Build(p.Build(), image.Layout{})
		if err != nil {
			b.Fatal(err)
		}
		run := func(b *testing.B, useTB bool) {
			var insts uint64
			for b.Loop() {
				c, err := emu.LoadImage(img)
				if err != nil {
					b.Fatal(err)
				}
				c.OS = emu.NewOS(p.Stdin)
				c.MaxInst = maxInst
				if useTB {
					e := tb.New(c, nil)
					err = e.Run()
					e.Close()
				} else {
					err = c.Run()
				}
				if err != nil && !errors.Is(err, emu.ErrInstLimit) {
					b.Fatal(err)
				}
				insts += c.Icount
			}
			b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "insts/s")
		}
		b.Run(name+"/interp", func(b *testing.B) { run(b, false) })
		b.Run(name+"/tb", func(b *testing.B) { run(b, true) })
	}
}
