package tb_test

import (
	"context"
	"encoding/binary"
	"errors"
	"testing"

	"parallax/internal/codegen"
	"parallax/internal/corpus"
	"parallax/internal/emu"
	"parallax/internal/emu/tb"
	"parallax/internal/image"
	"parallax/internal/x86"
)

// The deep per-instruction equivalence gate lives in internal/difftest
// (three-way lockstep, ci.sh hard gate). These tests hold the engine to
// the same end state as the interpreter from inside the package, over
// real corpus programs, exercising the translator and executor fast
// paths directly: whole-run parity, step-by-step parity, and mixed
// Step/Run cursor handoff.

const parityBudget = 1_500_000

// runInterp executes img to exit or budget on the interpreter.
func runInterp(t *testing.T, img *image.Image, stdin []byte) *emu.CPU {
	t.Helper()
	c, err := emu.LoadImage(img)
	if err != nil {
		t.Fatal(err)
	}
	c.OS = emu.NewOS(stdin)
	c.MaxInst = parityBudget
	if err := c.Run(); err != nil && !errors.Is(err, emu.ErrInstLimit) {
		t.Fatal(err)
	}
	return c
}

// compareState requires identical architectural end state between the
// interpreter and the tb-driven CPU.
func compareState(t *testing.T, name string, ci, ct *emu.CPU) {
	t.Helper()
	if ci.Icount != ct.Icount {
		t.Errorf("%s: icount %d (interp) vs %d (tb)", name, ci.Icount, ct.Icount)
	}
	if ci.EIP != ct.EIP {
		t.Errorf("%s: eip %#x vs %#x", name, ci.EIP, ct.EIP)
	}
	if ci.Exited != ct.Exited || ci.Status != ct.Status {
		t.Errorf("%s: exit %v/%d vs %v/%d", name, ci.Exited, ci.Status, ct.Exited, ct.Status)
	}
	if ci.Reg != ct.Reg {
		t.Errorf("%s: regs %v vs %v", name, ci.Reg, ct.Reg)
	}
	if ci.Flags() != ct.Flags() {
		t.Errorf("%s: eflags %#x vs %#x", name, ci.Flags(), ct.Flags())
	}
	if ci.Cycles != ct.Cycles {
		t.Errorf("%s: cycles %d vs %d", name, ci.Cycles, ct.Cycles)
	}
}

// TestCorpusRunParity runs every corpus program to exit (or budget) on
// both engines and compares the full architectural end state.
func TestCorpusRunParity(t *testing.T) {
	for _, p := range corpus.All() {
		img, err := codegen.Build(p.Build(), image.Layout{})
		if err != nil {
			t.Fatal(err)
		}
		ci := runInterp(t, img, p.Stdin)

		ct, err := emu.LoadImage(img)
		if err != nil {
			t.Fatal(err)
		}
		ct.OS = emu.NewOS(p.Stdin)
		ct.MaxInst = parityBudget
		e := tb.New(ct, nil)
		if e.CPU() != ct {
			t.Fatalf("%s: CPU() does not return the driven CPU", p.Name)
		}
		runErr := e.Run()
		e.Close()
		if runErr != nil && !errors.Is(runErr, emu.ErrInstLimit) {
			t.Fatalf("%s: tb run: %v", p.Name, runErr)
		}
		compareState(t, p.Name, ci, ct)
	}
}

// TestCorpusStepParity single-steps the tb engine against the
// interpreter's Step, comparing the hot architectural state after every
// retired instruction — the engine's Step contract (exact Icount/EIP,
// flags materialized between steps) over real code.
func TestCorpusStepParity(t *testing.T) {
	const steps = 120_000
	for _, name := range []string{"wget", "gcc"} {
		p, err := corpus.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		img, err := codegen.Build(p.Build(), image.Layout{})
		if err != nil {
			t.Fatal(err)
		}
		ci, err := emu.LoadImage(img)
		if err != nil {
			t.Fatal(err)
		}
		ci.OS = emu.NewOS(p.Stdin)
		ct, err := emu.LoadImage(img)
		if err != nil {
			t.Fatal(err)
		}
		ct.OS = emu.NewOS(p.Stdin)
		e := tb.New(ct, nil)

		for i := 0; i < steps && !ci.Exited; i++ {
			if err := ci.Step(); err != nil {
				t.Fatalf("%s: interp step %d: %v", name, i, err)
			}
			if err := e.Step(); err != nil {
				t.Fatalf("%s: tb step %d: %v", name, i, err)
			}
			if ci.Icount != ct.Icount || ci.EIP != ct.EIP ||
				ci.Reg != ct.Reg || ci.Flags() != ct.Flags() {
				t.Fatalf("%s: diverged at step %d: eip %#x/%#x icount %d/%d flags %#x/%#x",
					name, i, ci.EIP, ct.EIP, ci.Icount, ct.Icount, ci.Flags(), ct.Flags())
			}
		}
		e.Close()
	}
}

// TestStepThenRunHandoff steps partway into a block, then finishes the
// program with Run on the same engine: the step cursor must not leak
// stale position into the run path.
func TestStepThenRunHandoff(t *testing.T) {
	p, err := corpus.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	img, err := codegen.Build(p.Build(), image.Layout{})
	if err != nil {
		t.Fatal(err)
	}
	ci := runInterp(t, img, p.Stdin)

	ct, err := emu.LoadImage(img)
	if err != nil {
		t.Fatal(err)
	}
	ct.OS = emu.NewOS(p.Stdin)
	ct.MaxInst = parityBudget
	e := tb.New(ct, nil)
	defer e.Close()
	for i := 0; i < 777; i++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(); err != nil && !errors.Is(err, emu.ErrInstLimit) {
		t.Fatal(err)
	}
	compareState(t, p.Name, ci, ct)
}

// TestRunContextDeadline mirrors the interpreter's watchdog contract:
// a canceled context surfaces as *emu.DeadlineError from block
// boundaries, and an already-canceled context fails before executing.
func TestRunContextDeadline(t *testing.T) {
	p, err := corpus.ByName("lame")
	if err != nil {
		t.Fatal(err)
	}
	img, err := codegen.Build(p.Build(), image.Layout{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := emu.LoadImage(img)
	if err != nil {
		t.Fatal(err)
	}
	c.OS = emu.NewOS(p.Stdin)
	c.CheckStride = 1024
	e := tb.New(c, nil)
	defer e.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var dl *emu.DeadlineError
	if err := e.RunContext(ctx); !errors.As(err, &dl) {
		t.Fatalf("canceled context: got %v, want *emu.DeadlineError", err)
	}
	if c.Icount != 0 {
		t.Fatalf("pre-canceled run retired %d insts", c.Icount)
	}
}

// TestProfileParity checks the engine replicates Step's per-address hit
// counting: profiles must be identical between backends (the property
// core's AutoSelect -engine=tb relies on).
func TestProfileParity(t *testing.T) {
	p, err := corpus.ByName("bzip2")
	if err != nil {
		t.Fatal(err)
	}
	img, err := codegen.Build(p.Build(), image.Layout{})
	if err != nil {
		t.Fatal(err)
	}
	run := func(useTB bool) map[uint32]uint64 {
		c, err := emu.LoadImage(img)
		if err != nil {
			t.Fatal(err)
		}
		c.OS = emu.NewOS(p.Stdin)
		c.MaxInst = 200_000
		c.EnableProfile()
		if useTB {
			e := tb.New(c, nil)
			defer e.Close()
			if err := e.Run(); err != nil && !errors.Is(err, emu.ErrInstLimit) {
				t.Fatal(err)
			}
		} else if err := c.Run(); err != nil && !errors.Is(err, emu.ErrInstLimit) {
			t.Fatal(err)
		}
		return c.Profile()
	}
	pi, pt := run(false), run(true)
	if len(pi) != len(pt) {
		t.Fatalf("profile sizes differ: %d vs %d", len(pi), len(pt))
	}
	for addr, n := range pi {
		if pt[addr] != n {
			t.Fatalf("profile differs at %#x: %d vs %d", addr, n, pt[addr])
		}
	}
}

// TestFaultParity: a program that loads from unmapped memory must fail
// with the same fault class and attribution on both engines.
func TestFaultParity(t *testing.T) {
	// mov eax, [0x00000040] — unmapped low page.
	prog := []byte{0xA1, 0x40, 0x00, 0x00, 0x00, 0xC3}
	run := func(useTB bool) error {
		c := loadWX(t, prog)
		if useTB {
			e := tb.New(c, nil)
			defer e.Close()
			return e.Run()
		}
		return c.Run()
	}
	errI, errT := run(false), run(true)
	var fi, ft *emu.FaultError
	if !errors.As(errI, &fi) || !errors.As(errT, &ft) {
		t.Fatalf("want *emu.FaultError from both, got %v / %v", errI, errT)
	}
	if *fi != *ft {
		t.Fatalf("fault mismatch: %+v vs %+v", *fi, *ft)
	}
	if ft.EIP != testBase {
		t.Fatalf("fault attributed to %#x, want %#x", ft.EIP, uint32(testBase))
	}
}

// TestStackFaultParity: pushing below the stack guard classifies as
// *emu.StackOverflowError with interpreter-identical attribution, on
// both the push and call paths.
func TestStackFaultParity(t *testing.T) {
	base := emu.DefaultStackTop - emu.DefaultStackSize
	movEsp := []byte{0xBC, 0, 0, 0, 0}
	binary.LittleEndian.PutUint32(movEsp[1:], base+4)
	progs := map[string][]byte{
		// mov esp, base+4; push eax; push eax — the second push dips
		// below the stack base, inside the guard span.
		"push": append(append([]byte{}, movEsp...), 0x50, 0x50, 0xC3),
		// mov esp, base+4; push eax; call +0 — the call's return-address
		// push is the faulting store.
		"call": append(append([]byte{}, movEsp...), 0x50, 0xE8, 0x00, 0x00, 0x00, 0x00, 0xC3),
	}
	for name, prog := range progs {
		run := func(useTB bool) error {
			c := loadWX(t, prog)
			if useTB {
				e := tb.New(c, nil)
				defer e.Close()
				return e.Run()
			}
			return c.Run()
		}
		errI, errT := run(false), run(true)
		var si, st *emu.StackOverflowError
		if !errors.As(errI, &si) || !errors.As(errT, &st) {
			t.Fatalf("%s: want *emu.StackOverflowError from both, got %v / %v", name, errI, errT)
		}
		if si.ESP != st.ESP || si.EIP != st.EIP {
			t.Fatalf("%s: attribution mismatch: esp %#x/%#x eip %#x/%#x",
				name, si.ESP, st.ESP, si.EIP, st.EIP)
		}
	}
}

// TestExitSentinelReturn: returning to the exit sentinel from a
// translated RET ends the run with EAX as the status, exactly like the
// interpreter's sentinel check.
func TestExitSentinelReturn(t *testing.T) {
	// mov eax, 42; ret  (the loader's initial stack frame returns to
	// the sentinel)
	prog := []byte{0xB8, 0x2A, 0x00, 0x00, 0x00, 0xC3}
	c := loadWX(t, prog)
	e := tb.New(c, nil)
	defer e.Close()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !c.Exited || c.Status != 42 {
		t.Fatalf("exited=%v status=%d, want true/42", c.Exited, c.Status)
	}
	if c.Reg[x86.EAX] != 42 {
		t.Fatalf("eax=%d", c.Reg[x86.EAX])
	}
}
