package tb_test

// Fallback-rate regression: the fraction of executed instructions that
// compile to the interpreter fallback, weighted by execution count,
// over the hand-written corpus and generated families. The specialized
// micro-op set holds this at ~0.01% corpus-wide (see EXPERIMENTS.md);
// the budget fails the test if a decoder or compiler change quietly
// demotes a hot instruction back to the fallback path.

import (
	"fmt"
	"sort"
	"testing"

	"parallax/internal/codegen"
	"parallax/internal/corpus"
	"parallax/internal/corpus/gen"
	"parallax/internal/emu"
	"parallax/internal/emu/tb"
	"parallax/internal/image"
)

// fallbackBudget is the corpus-wide executed-instruction fallback-rate
// ceiling, in percent. Measured: 0.01% after micro-op specialization
// (was 3.77% before); 1% leaves headroom for corpus drift without
// letting a hot opcode regress unnoticed.
const fallbackBudget = 1.0

func measureImage(t *testing.T, name string, img *image.Image, stdin []byte, agg map[string]uint64, aggAll *[2]uint64) {
	c, err := emu.LoadImage(img)
	if err != nil {
		t.Fatal(err)
	}
	c.OS = emu.NewOS(stdin)
	c.MaxInst = 3_000_000
	c.EnableProfile()
	e := tb.New(c, nil)
	_ = e.Run()
	e.Close()
	total, fb := uint64(0), uint64(0)
	for addr, n := range c.Profile() {
		total += n
		inst, err := c.DecodeAt(addr)
		if err != nil {
			continue
		}
		if tb.CompiledKind(addr, &inst) == "fallback" {
			fb += n
			key := fmt.Sprintf("%v w=%d dst=%v src=%v", inst.Op, inst.W, inst.Dst.Kind, inst.Src.Kind)
			agg[key] += n
		}
	}
	aggAll[0] += total
	aggAll[1] += fb
	t.Logf("%-24s insts=%10d fallback=%10d (%.2f%%)", name, total, fb, 100*float64(fb)/float64(total))
}

func TestFallbackRateBudget(t *testing.T) {
	agg := map[string]uint64{}
	var all [2]uint64
	for _, p := range corpus.All() {
		img, err := codegen.Build(p.Build(), image.Layout{})
		if err != nil {
			t.Fatal(err)
		}
		measureImage(t, p.Name, img, p.Stdin, agg, &all)
	}
	for _, fam := range gen.Families() {
		prog, err := gen.FamilyProgram(fam, 7)
		if err != nil {
			t.Fatal(err)
		}
		img, err := codegen.Build(prog.Build(), image.Layout{})
		if err != nil {
			t.Fatal(err)
		}
		measureImage(t, "gen/"+fam.Name, img, prog.Stdin, agg, &all)
	}
	rate := 100 * float64(all[1]) / float64(all[0])
	t.Logf("TOTAL insts=%d fallback=%d (%.2f%%)", all[0], all[1], rate)
	if rate <= fallbackBudget {
		return
	}
	// Over budget: name the offenders before failing.
	type kv struct {
		k string
		v uint64
	}
	var list []kv
	for k, v := range agg {
		list = append(list, kv{k, v})
	}
	sort.Slice(list, func(i, j int) bool { return list[i].v > list[j].v })
	for i, e := range list {
		if i >= 15 {
			break
		}
		t.Logf("%12d  %s", e.v, e.k)
	}
	t.Fatalf("corpus-wide fallback rate %.3f%% exceeds the %.2f%% budget", rate, fallbackBudget)
}
