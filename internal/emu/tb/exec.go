package tb

import (
	"encoding/binary"

	"parallax/internal/emu"
	"parallax/internal/image"
	"parallax/internal/obs"
	"parallax/internal/x86"
)

// ea computes a flattened memory operand's effective address.
func (e *Engine) ea(op *uop) uint32 {
	a := op.disp
	if op.memFlags&memHasBase != 0 {
		a += e.cpu.Reg[op.base]
	}
	if op.memFlags&memHasIndex != 0 {
		a += e.cpu.Reg[op.idx] * uint32(op.scale)
	}
	return a
}

// Fast memory path
//
// The engine keeps three single-entry segment caches — data loads
// (rd), data stores (wr), stack traffic (stk) — so the hot dword
// accessors can touch segment bytes after one bounds check instead of
// walking the full bus (segment lookup, permission check, slice
// carve). Translation marks ESP/EBP-based operands (memStack), which
// the executor routes at the stk cache so frame traffic does not
// thrash the data caches. Only segments whose permissions make the
// access legal and side-effect-free are ever cached: loads need
// PermR; stores need PermW and no PermX, because stores into
// executable segments must reach Memory.Store32 so code-invalidation
// hooks fire. writeDword checks Snapshot's dirty-page arm at store
// time, so a Snapshot taken after the segment was cached still sees
// every write. Segments are never unmapped and Restore copies bytes
// back in place, so a cached pointer cannot go stale.
//
// Cached segments are always at least four bytes long, so the hot
// bounds check is the single unsigned compare
// addr-s.Addr <= len(s.Data)-4 (an address below the segment wraps
// to a huge offset and fails it).

// loadDword reads a little-endian dword from a cached segment; the
// caller has bounds-checked off.
func loadDword(s *emu.Segment, off uint32) uint32 {
	return binary.LittleEndian.Uint32(s.Data[off:])
}

// writeDword stores a little-endian dword into a cached segment,
// keeping Restore's dirty-page tracking; the caller has bounds- and
// permission-checked the access.
func writeDword(s *emu.Segment, off, v uint32) {
	if s.Tracked() {
		s.MarkDirty(off, 4)
	}
	binary.LittleEndian.PutUint32(s.Data[off:], v)
}

// load32 is the out-of-line load path: both caches, then the bus.
func (e *Engine) load32(addr, pc uint32) (uint32, error) {
	if s := e.rd; s != nil && addr-s.Addr <= uint32(len(s.Data))-4 {
		return loadDword(s, addr-s.Addr), nil
	}
	if s := e.stk; s != nil && addr-s.Addr <= uint32(len(s.Data))-4 {
		return loadDword(s, addr-s.Addr), nil
	}
	v, err := e.cpu.Mem.Load32(addr, pc)
	if err == nil {
		if s := e.cpu.Mem.Segment(addr); s != nil && s.Perm&image.PermR != 0 &&
			len(s.Data) >= 4 {
			e.rd = s
		}
	}
	return v, err
}

// load8 and load16 are the narrow load paths for the byte/word
// micro-ops (movzx/movsx from memory): cached segments first — both
// caches hold PermR segments, so a narrower read is always legal where
// a dword read was — then the bus.
func (e *Engine) load8(addr, pc uint32) (uint32, error) {
	if s := e.rd; s != nil && addr-s.Addr < uint32(len(s.Data)) {
		return uint32(s.Data[addr-s.Addr]), nil
	}
	if s := e.stk; s != nil && addr-s.Addr < uint32(len(s.Data)) {
		return uint32(s.Data[addr-s.Addr]), nil
	}
	v, err := e.cpu.Mem.Load8(addr, pc)
	return uint32(v), err
}

func (e *Engine) load16(addr, pc uint32) (uint32, error) {
	if s := e.rd; s != nil && addr-s.Addr <= uint32(len(s.Data))-2 {
		return uint32(binary.LittleEndian.Uint16(s.Data[addr-s.Addr:])), nil
	}
	if s := e.stk; s != nil && addr-s.Addr <= uint32(len(s.Data))-2 {
		return uint32(binary.LittleEndian.Uint16(s.Data[addr-s.Addr:])), nil
	}
	v, err := e.cpu.Mem.Load16(addr, pc)
	return uint32(v), err
}

// store32 is the out-of-line store path: both caches, then the bus.
func (e *Engine) store32(addr, v, pc uint32) error {
	if s := e.wr; s != nil && addr-s.Addr <= uint32(len(s.Data))-4 {
		writeDword(s, addr-s.Addr, v)
		return nil
	}
	if s := e.stk; s != nil && addr-s.Addr <= uint32(len(s.Data))-4 {
		writeDword(s, addr-s.Addr, v)
		return nil
	}
	err := e.cpu.Mem.Store32(addr, v, pc)
	if err == nil {
		if s := e.cpu.Mem.Segment(addr); s != nil &&
			s.Perm&image.PermW != 0 && s.Perm&image.PermX == 0 &&
			len(s.Data) >= 4 {
			e.wr = s
		}
	}
	return err
}

// push32 pushes a dword with the interpreter's stack semantics: ESP
// moves before the store and stays moved on a fault. The slow path
// delegates wholesale to CPU.Push32 so fault classification
// (StackOverflowError) is byte-identical; it pins EIP first because
// the interpreter attributes stack faults to the current EIP.
func (e *Engine) push32(v, pc uint32) error {
	c := e.cpu
	sp := c.Reg[x86.ESP] - 4
	if s := e.stk; s != nil && sp-s.Addr <= uint32(len(s.Data))-4 {
		c.Reg[x86.ESP] = sp
		writeDword(s, sp-s.Addr, v)
		return nil
	}
	c.EIP = pc
	err := c.Push32(v)
	if err == nil {
		e.cacheStack(sp)
	}
	return err
}

// pop32 pops a dword; ESP moves only after a successful load.
func (e *Engine) pop32(pc uint32) (uint32, error) {
	c := e.cpu
	sp := c.Reg[x86.ESP]
	if s := e.stk; s != nil && sp-s.Addr <= uint32(len(s.Data))-4 {
		c.Reg[x86.ESP] = sp + 4
		return loadDword(s, sp-s.Addr), nil
	}
	c.EIP = pc
	v, err := c.Pop32()
	if err == nil {
		e.cacheStack(sp)
	}
	return v, err
}

// cacheStack remembers the segment holding sp when both stack
// directions are safe to shortcut: readable and writable, and not
// executable (so a shortcut push can never dodge code invalidation).
func (e *Engine) cacheStack(sp uint32) {
	s := e.cpu.Mem.Segment(sp)
	if s != nil && s.Perm&image.PermR != 0 && s.Perm&image.PermW != 0 &&
		s.Perm&image.PermX == 0 && len(s.Data) >= 4 {
		e.stk = s
	}
}

// alu32 performs one group-80 ALU operation at width 32, recording the
// lazy flag producer. write is false for the compare forms (CMP/TEST),
// which compute flags but discard the result.
func (e *Engine) alu32(sub uint8, a, b uint32) (r uint32, write bool) {
	switch x86.Op(sub) {
	case x86.ADD:
		r = a + b
		e.cc = ccState{kind: ccAdd, dst: a, src: b, res: r}
		return r, true
	case x86.SUB:
		r = a - b
		e.cc = ccState{kind: ccSub, dst: a, src: b, res: r}
		return r, true
	case x86.CMP:
		r = a - b
		e.cc = ccState{kind: ccSub, dst: a, src: b, res: r}
		return r, false
	case x86.AND:
		r = a & b
		e.cc = ccState{kind: ccLogic, res: r}
		return r, true
	case x86.TEST:
		r = a & b
		e.cc = ccState{kind: ccLogic, res: r}
		return r, false
	case x86.OR:
		r = a | b
		e.cc = ccState{kind: ccLogic, res: r}
		return r, true
	default: // x86.XOR
		r = a ^ b
		e.cc = ccState{kind: ccLogic, res: r}
		return r, true
	}
}

// cond evaluates a condition code against the pending flag state,
// taking lazy fast paths for the conditions CMP/SUB/TEST leave behind
// and materializing only for the rare ones (overflow, parity, or
// signed compares after a non-subtract producer).
func (e *Engine) cond(cond x86.Cond) bool {
	cc := &e.cc
	if cc.kind == ccNone {
		return e.cpu.Cond(cond)
	}
	var v bool
	switch cond &^ 1 {
	case x86.CondE:
		v = cc.res == 0
	case x86.CondS:
		v = cc.res>>31 != 0
	case x86.CondB:
		v = e.lazyCF()
	case x86.CondBE:
		v = e.lazyCF() || cc.res == 0
	case x86.CondL:
		if cc.kind != ccSub {
			e.materialize()
			return e.cpu.Cond(cond)
		}
		v = int32(cc.dst) < int32(cc.src)
	case x86.CondLE:
		if cc.kind != ccSub {
			e.materialize()
			return e.cpu.Cond(cond)
		}
		v = int32(cc.dst) <= int32(cc.src)
	default: // CondO, CondP
		e.materialize()
		return e.cpu.Cond(cond)
	}
	if cond&1 != 0 {
		v = !v
	}
	return v
}

// reg8 reads an 8-bit register in ModRM numbering (AL..BL, AH..BH).
func reg8(c *emu.CPU, r x86.Reg) uint32 {
	if r < 4 {
		return c.Reg[r] & 0xFF
	}
	return (c.Reg[r-4] >> 8) & 0xFF
}

// setReg8 writes an 8-bit register in ModRM numbering.
func setReg8(c *emu.CPU, r x86.Reg, v uint32) {
	v &= 0xFF
	if r < 4 {
		c.Reg[r] = c.Reg[r]&^uint32(0xFF) | v
	} else {
		c.Reg[r-4] = c.Reg[r-4]&^uint32(0xFF00) | v<<8
	}
}

// chain follows (or establishes) the successor edge slot of b toward
// target. Returns nil when the target has no live translation yet —
// the dispatcher will look it up or translate next time around.
func (e *Engine) chain(b *block, slot int, target uint32) *block {
	if nb := b.succ[slot]; nb != nil && !nb.dead {
		e.mChainHits.Inc()
		return nb
	}
	if nb := e.blocks[target]; nb != nil {
		b.succ[slot] = nb
		return nb
	}
	return nil
}

// execBlock executes b starting at op index start with no internal
// chaining — the Step path, which needs control back after every
// block (and, with limit = Icount+1, after every op). It publishes
// the retirement counters execOps batches in locals.
func (e *Engine) execBlock(b *block, start int, limit uint64) (*block, error) {
	nb, icount, cycles, err := e.execOps(b, start, limit, 0)
	e.cpu.Icount, e.cpu.Cycles = icount, cycles
	return nb, err
}

// execChain executes b and keeps following chained successors until
// stop instructions have retired (the Run path's poll boundary), the
// chain breaks, or the run ends.
func (e *Engine) execChain(b *block, limit, stop uint64) (*block, error) {
	nb, icount, cycles, err := e.execOps(b, 0, limit, stop)
	e.cpu.Icount, e.cpu.Cycles = icount, cycles
	return nb, err
}

// execOps is the block executor proper. Observable bookkeeping
// replicates CPU.Step exactly, but the hot loop batches it: Icount and
// Cycles accumulate in locals (returned to the wrappers, which publish
// them — and flushed to the CPU before any callout that could read
// them: fallback execution, RetHook, trace sinks), and EIP is written
// only where it is observable — error returns, budget stops, control
// transfers, callouts that read it for fault attribution, and block
// end. Fallback ops add no op.cost; the interpreter core they call
// accounts cycles itself.
//
// Direct control transfers whose successor block is already chained
// continue inside the loop while fewer than stop instructions have
// retired, so straight-run traces cross block boundaries without
// returning to the dispatcher. Returns the pending successor block
// (nil when the dispatcher must look up EIP), or errBudget when limit
// instructions have retired and more ops remain.
func (e *Engine) execOps(b *block, start int, limit, stop uint64) (*block, uint64, uint64, error) {
	c := e.cpu
	icount := c.Icount
	cycles := c.Cycles
	// slow gates profile hits and trace sampling behind one predictable
	// branch per op.
	slow := c.ProfileEnabled() || (c.Trace != nil && c.TraceEvery != 0)
	var ops []uop
	var precise bool
	var nb *block
	// chained counts internal block-to-block transitions; capped at
	// maxChainBlocks so RunContext regains control (and can poll its
	// context) even inside an endlessly chained hot loop.
	chained := 0

nextBlock:
	ops = b.ops
	// precise arms the per-op budget check only when this block could
	// cross the limit; the common case runs the loop without it.
	precise = limit-icount <= uint64(len(ops)-start)
	for i := start; i < len(ops); i++ {
		op := &ops[i]
		if precise && icount >= limit {
			c.EIP = op.pc
			return nil, icount, cycles, errBudget
		}
		icount++
		cycles += uint64(op.cost)
		if slow {
			if c.ProfileEnabled() {
				c.ProfileHit(op.pc)
			}
			if c.Trace != nil && c.TraceEvery != 0 && icount%c.TraceEvery == 0 {
				c.Trace.Emit(obs.Event{Kind: obs.EventInst, Icount: icount, PC: op.pc})
			}
		}

		switch op.kind {
		case opMovRR:
			c.Reg[op.r1] = c.Reg[op.r2]
		case opMovRI:
			c.Reg[op.r1] = op.imm
		case opMovRM:
			a := e.ea(op)
			s := e.rd
			if op.memFlags&memStack != 0 {
				s = e.stk
			}
			if s != nil && a-s.Addr <= uint32(len(s.Data))-4 {
				c.Reg[op.r1] = loadDword(s, a-s.Addr)
				break
			}
			v, err := e.load32(a, op.pc)
			if err != nil {
				c.EIP = op.pc
				return nil, icount, cycles, err
			}
			c.Reg[op.r1] = v
		case opMovMR:
			a := e.ea(op)
			s := e.wr
			if op.memFlags&memStack != 0 {
				s = e.stk
			}
			if s != nil && a-s.Addr <= uint32(len(s.Data))-4 {
				writeDword(s, a-s.Addr, c.Reg[op.r2])
				break
			}
			if err := e.store32(a, c.Reg[op.r2], op.pc); err != nil {
				c.EIP = op.pc
				return nil, icount, cycles, err
			}
		case opMovMI:
			a := e.ea(op)
			s := e.wr
			if op.memFlags&memStack != 0 {
				s = e.stk
			}
			if s != nil && a-s.Addr <= uint32(len(s.Data))-4 {
				writeDword(s, a-s.Addr, op.imm)
				break
			}
			if err := e.store32(a, op.imm, op.pc); err != nil {
				c.EIP = op.pc
				return nil, icount, cycles, err
			}
		case opMovMR8:
			a := e.ea(op)
			v := byte(reg8(c, op.r2))
			s := e.wr
			if op.memFlags&memStack != 0 {
				s = e.stk
			}
			if s != nil && a-s.Addr < uint32(len(s.Data)) {
				// Cached segments are writable and never executable, so a
				// direct byte write only needs the dirty-page bookkeeping.
				if s.Tracked() {
					s.MarkDirty(a-s.Addr, 1)
				}
				s.Data[a-s.Addr] = v
				break
			}
			if err := c.Mem.Store8(a, v, op.pc); err != nil {
				c.EIP = op.pc
				return nil, icount, cycles, err
			}

		case opAluRR:
			if r, w := e.alu32(op.alu, c.Reg[op.r1], c.Reg[op.r2]); w {
				c.Reg[op.r1] = r
			}
		case opAluRI:
			if r, w := e.alu32(op.alu, c.Reg[op.r1], op.imm); w {
				c.Reg[op.r1] = r
			}
		case opAluRM:
			a := e.ea(op)
			s := e.rd
			if op.memFlags&memStack != 0 {
				s = e.stk
			}
			var v uint32
			if s != nil && a-s.Addr <= uint32(len(s.Data))-4 {
				v = loadDword(s, a-s.Addr)
			} else {
				var err error
				if v, err = e.load32(a, op.pc); err != nil {
					c.EIP = op.pc
					return nil, icount, cycles, err
				}
			}
			if r, w := e.alu32(op.alu, c.Reg[op.r1], v); w {
				c.Reg[op.r1] = r
			}
		case opAluMR, opAluMI:
			a := e.ea(op)
			v, err := e.load32(a, op.pc)
			if err != nil {
				c.EIP = op.pc
				return nil, icount, cycles, err
			}
			src := op.imm
			if op.kind == opAluMR {
				src = c.Reg[op.r2]
			}
			if r, w := e.alu32(op.alu, v, src); w {
				if err := e.store32(a, r, op.pc); err != nil {
					c.EIP = op.pc
					return nil, icount, cycles, err
				}
			}

		case opIncR:
			cf := e.lazyCF() // INC preserves CF
			a := c.Reg[op.r1]
			r := a + 1
			e.cc = ccState{kind: ccInc, dst: a, res: r, saved: cf}
			c.Reg[op.r1] = r
		case opDecR:
			cf := e.lazyCF()
			a := c.Reg[op.r1]
			r := a - 1
			e.cc = ccState{kind: ccDec, dst: a, res: r, saved: cf}
			c.Reg[op.r1] = r
		case opNotR:
			c.Reg[op.r1] = ^c.Reg[op.r1] // NOT sets no flags
		case opNegR:
			a := c.Reg[op.r1]
			r := -a
			// NEG is SUB 0-a: subFlags(0, a) gives CF = a != 0 exactly.
			e.cc = ccState{kind: ccSub, dst: 0, src: a, res: r}
			c.Reg[op.r1] = r

		case opPushR:
			// Value first: PUSH ESP pushes the pre-decrement ESP, so the
			// source register must be read before the stack pointer moves.
			v := c.Reg[op.r1]
			sp := c.Reg[x86.ESP] - 4
			if s := e.stk; s != nil && sp-s.Addr <= uint32(len(s.Data))-4 {
				c.Reg[x86.ESP] = sp
				writeDword(s, sp-s.Addr, v)
				break
			}
			if err := e.push32(v, op.pc); err != nil {
				return nil, icount, cycles, err
			}
		case opPushI:
			sp := c.Reg[x86.ESP] - 4
			if s := e.stk; s != nil && sp-s.Addr <= uint32(len(s.Data))-4 {
				c.Reg[x86.ESP] = sp
				writeDword(s, sp-s.Addr, op.imm)
				break
			}
			if err := e.push32(op.imm, op.pc); err != nil {
				return nil, icount, cycles, err
			}
		case opPushM:
			// Operand read first, then the push — a faulting load leaves
			// ESP unmoved, exactly as the interpreter's readOp ordering.
			v, err := e.load32(e.ea(op), op.pc)
			if err != nil {
				c.EIP = op.pc
				return nil, icount, cycles, err
			}
			if err := e.push32(v, op.pc); err != nil {
				return nil, icount, cycles, err
			}
		case opPopR:
			sp := c.Reg[x86.ESP]
			if s := e.stk; s != nil && sp-s.Addr <= uint32(len(s.Data))-4 {
				c.Reg[x86.ESP] = sp + 4
				c.Reg[op.r1] = loadDword(s, sp-s.Addr)
				break
			}
			v, err := e.pop32(op.pc)
			if err != nil {
				return nil, icount, cycles, err
			}
			c.Reg[op.r1] = v
		case opLea:
			c.Reg[op.r1] = e.ea(op)
		case opExt:
			var v uint32
			if op.w == 8 {
				v = reg8(c, op.r2)
				if op.alu == extSigned && v&0x80 != 0 {
					v |= 0xFFFFFF00
				}
			} else {
				v = c.Reg[op.r2] & 0xFFFF
				if op.alu == extSigned && v&0x8000 != 0 {
					v |= 0xFFFF0000
				}
			}
			c.Reg[op.r1] = v
		case opExtM:
			a := e.ea(op)
			var v uint32
			var err error
			if op.w == 8 {
				v, err = e.load8(a, op.pc)
			} else {
				v, err = e.load16(a, op.pc)
			}
			if err != nil {
				c.EIP = op.pc
				return nil, icount, cycles, err
			}
			if op.alu == extSigned {
				if op.w == 8 && v&0x80 != 0 {
					v |= 0xFFFFFF00
				} else if op.w == 16 && v&0x8000 != 0 {
					v |= 0xFFFF0000
				}
			}
			c.Reg[op.r1] = v
		case opShiftRI:
			af := e.lazyAF() // shifts leave AF untouched
			a := c.Reg[op.r1]
			count := op.imm
			var r uint32
			var kind ccKind
			switch op.alu {
			case shiftShr:
				r = a >> count
				kind = ccShr
			case shiftSar:
				r = uint32(int32(a) >> count)
				kind = ccSar
			default:
				r = a << count
				kind = ccShl
			}
			e.cc = ccState{kind: kind, dst: a, src: count, res: r, saved: af}
			c.Reg[op.r1] = r
		case opShiftRC:
			count := c.Reg[x86.ECX] & 31
			if count == 0 {
				// The interpreter returns before writing anything: no
				// result write, every flag (and the pending cc state, which
				// still describes the last producer) untouched.
				break
			}
			af := e.lazyAF()
			a := c.Reg[op.r1]
			var r uint32
			var kind ccKind
			switch op.alu {
			case shiftShr:
				r = a >> count
				kind = ccShr
			case shiftSar:
				r = uint32(int32(a) >> count)
				kind = ccSar
			default:
				r = a << count
				kind = ccShl
			}
			e.cc = ccState{kind: kind, dst: a, src: count, res: r, saved: af}
			c.Reg[op.r1] = r
		case opXchgRR:
			c.Reg[op.r1], c.Reg[op.r2] = c.Reg[op.r2], c.Reg[op.r1]
		case opSetccR:
			v := uint32(0)
			if e.cond(x86.Cond(op.alu)) {
				v = 1
			}
			setReg8(c, op.r1, v)
		case opImulRR, opImulRM:
			var a uint32
			if op.kind == opImulRR {
				a = c.Reg[op.r2]
			} else {
				var err error
				if a, err = e.load32(e.ea(op), op.pc); err != nil {
					c.EIP = op.pc
					return nil, icount, cycles, err
				}
			}
			m := c.Reg[op.r1]
			if op.alu == imulImm {
				m = op.imm
			}
			r := int64(int32(a)) * int64(int32(m))
			// Flags are eager here: CF/OF need the full 64-bit product,
			// which the cc triple cannot carry. AF is the one flag IMUL
			// leaves alone, so it is resolved from the pending state
			// before that state is cleared.
			c.AF = e.lazyAF()
			e.cc.kind = ccNone
			lo := uint32(r)
			c.Reg[op.r1] = lo
			c.CF = r != int64(int32(lo))
			c.OF = c.CF
			c.ZF = lo == 0
			c.SF = lo>>31 != 0
			c.PF = parity8(lo)
		case opLeave:
			c.Reg[x86.ESP] = c.Reg[x86.EBP]
			sp := c.Reg[x86.ESP]
			if s := e.stk; s != nil && sp-s.Addr <= uint32(len(s.Data))-4 {
				c.Reg[x86.ESP] = sp + 4
				c.Reg[x86.EBP] = loadDword(s, sp-s.Addr)
				break
			}
			v, err := e.pop32(op.pc)
			if err != nil {
				// ESP already moved to EBP — the interpreter faults with
				// the frame torn down the same way.
				return nil, icount, cycles, err
			}
			c.Reg[x86.EBP] = v
		case opNop:

		case opFallback:
			e.materialize()
			c.EIP = op.pc
			c.Icount, c.Cycles = icount, cycles
			if err := c.ExecInst(*op.inst); err != nil {
				return nil, c.Icount, c.Cycles, err
			}
			cycles = c.Cycles
		case opFallbackTerm:
			e.materialize()
			c.EIP = op.pc
			c.Icount, c.Cycles = icount, cycles
			if err := c.ExecInst(*op.inst); err != nil {
				return nil, c.Icount, c.Cycles, err
			}
			// Control continues wherever the interpreter left EIP
			// (syscall return, HLT error already taken above, ...).
			return nil, c.Icount, c.Cycles, nil

		case opJmp:
			c.EIP = op.target
			if c.ExitTo(op.target) {
				return nil, icount, cycles, nil
			}
			nb = e.chain(b, 0, op.target)
			if nb != nil && icount < stop && chained < maxChainBlocks {
				chained++
				b, start = nb, 0
				goto nextBlock
			}
			return nb, icount, cycles, nil
		case opJcc:
			// JCC does not check the exit sentinel (mirroring the
			// interpreter), so both edges chain unconditionally.
			if e.cond(x86.Cond(op.alu)) {
				c.EIP = op.target
				nb = e.chain(b, 1, op.target)
			} else {
				c.EIP = b.end
				nb = e.chain(b, 0, b.end)
			}
			if nb != nil && icount < stop && chained < maxChainBlocks {
				chained++
				b, start = nb, 0
				goto nextBlock
			}
			return nb, icount, cycles, nil
		case opCallD:
			sp := c.Reg[x86.ESP] - 4
			if s := e.stk; s != nil && sp-s.Addr <= uint32(len(s.Data))-4 {
				c.Reg[x86.ESP] = sp
				writeDword(s, sp-s.Addr, op.imm)
			} else if err := e.push32(op.imm, op.pc); err != nil {
				return nil, icount, cycles, err
			}
			c.EIP = op.target
			if c.ExitTo(op.target) {
				return nil, icount, cycles, nil
			}
			nb = e.chain(b, 0, op.target)
			if nb != nil && icount < stop && chained < maxChainBlocks {
				chained++
				b, start = nb, 0
				goto nextBlock
			}
			return nb, icount, cycles, nil
		case opJmpIndR, opJmpIndM, opCallIndR, opCallIndM:
			var target uint32
			switch op.kind {
			case opJmpIndR, opCallIndR:
				target = c.Reg[op.r1]
			default:
				v, err := e.load32(e.ea(op), op.pc)
				if err != nil {
					c.EIP = op.pc
					return nil, icount, cycles, err
				}
				target = v
			}
			if op.kind == opCallIndR || op.kind == opCallIndM {
				if err := e.push32(op.imm, op.pc); err != nil {
					return nil, icount, cycles, err
				}
			}
			c.EIP = target
			c.ExitTo(target)
			return nil, icount, cycles, nil
		case opRet:
			sp := c.Reg[x86.ESP]
			var ret uint32
			if s := e.stk; s != nil && sp-s.Addr <= uint32(len(s.Data))-4 {
				c.Reg[x86.ESP] = sp + 4
				ret = loadDword(s, sp-s.Addr)
			} else {
				var err error
				if ret, err = e.pop32(op.pc); err != nil {
					return nil, icount, cycles, err
				}
			}
			c.Reg[x86.ESP] += op.imm
			if c.RetHook != nil || c.Trace != nil {
				c.Icount, c.Cycles = icount, cycles
				if c.RetHook != nil {
					c.RetHook(op.pc, ret)
				}
				if c.Trace != nil {
					c.Trace.Emit(obs.Event{Kind: obs.EventRet, Icount: icount, PC: op.pc, To: ret})
				}
			}
			c.EIP = ret
			c.ExitTo(ret)
			return nil, icount, cycles, nil
		}

		// A store this op made may have hit this very block (mid-block
		// self-modification). The invalidation hook marked it dead; stop
		// so the dispatcher retranslates the fresh bytes.
		if b.dead {
			if i+1 < len(ops) {
				c.EIP = ops[i+1].pc
			} else {
				c.EIP = b.end
			}
			return nil, icount, cycles, nil
		}
	}
	c.EIP = b.end
	return nil, icount, cycles, nil
}
