// Package tb is the translation-block execution engine: a
// QEMU-TCG-style backend over the emu CPU that decodes each basic
// block once, compiles it into a threaded slice of micro-ops, and
// executes whole blocks at a time with lazy flag materialization —
// the (ccOp, ccSrc, ccDst) triple of the last flag-producing
// instruction is carried forward and EFLAGS (including AF/PF) are
// computed only when a consumer instruction, a block exit to the
// caller, or an error path actually reads them.
//
// Direct jumps, conditional branches and direct calls chain block to
// block without a dispatch-table lookup. Coherence rides the memory
// bus's code-invalidation hooks (Memory.OnCodeInvalidate): stores into
// executable segments, Poke, CPU.Patch and Restore page copy-back all
// announce the modified range, and every overlapping translation dies
// before the next op executes — self-modifying code runs its new
// bytes, mid-block, exactly as it does under the interpreter.
//
// Instructions without a specialized micro-op fall back, one by one,
// through CPU.ExecInst into the interpreter core after materializing
// flags, so the engine cannot drift from interpreter semantics on
// anything it does not model natively. The lockstep oracle in
// internal/difftest drives Step() to hold it to that claim.
//
// An Engine is not safe for concurrent use; like the CPU it drives,
// it belongs to one goroutine.
package tb

import (
	"context"
	"errors"
	"fmt"

	"parallax/internal/chaos"
	"parallax/internal/emu"
	"parallax/internal/obs"
)

// block is one translated basic block: the micro-ops for a straight
// run of instructions starting at entry, ending at the first control
// transfer (or the op cap, or the first undecodable byte).
type block struct {
	entry  uint32
	end    uint32 // address after the last instruction (jcc fallthrough)
	lo, hi uint32 // code byte range covered; invalidation keys on it
	ops    []uop

	// succ chains direct control transfers: [0] is the fallthrough /
	// unconditional target, [1] the taken branch target. Filled lazily
	// on first transfer once the successor exists.
	succ [2]*block

	// dead marks the block invalidated (its source bytes changed). The
	// executor checks it after every op so a store into upcoming code
	// aborts the block and retranslates — and chained pointers to it
	// are abandoned on sight.
	dead bool
}

// Engine executes a CPU through translated blocks.
type Engine struct {
	cpu    *emu.CPU
	blocks map[uint32]*block
	cc     ccState
	cpuVer uint64 // CPU.CodeVersion at last wholesale flush
	cancel func() // unregisters the code-invalidation hook

	// Step cursor: position inside the block being single-stepped.
	curB *block
	curI int

	// Single-entry segment caches for the dword fast paths (data
	// loads, data stores, stack traffic). Only segments whose
	// permissions make the access legal and side-effect-free are ever
	// cached — see the fast-path comment in exec.go.
	rd, wr, stk *emu.Segment

	// cat, when non-nil, is the shared translation catalog: translate
	// consults it before decoding and publishes its own translations
	// into it (see catalog.go for the coherence story). Nil keeps the
	// engine fully private.
	cat *Catalog

	mTranslations  *obs.Counter
	mChainHits     *obs.Counter
	mInvalidations *obs.Counter
	mFlushes       *obs.Counter
	mCatHits       *obs.Counter
	mCatMisses     *obs.Counter
	mCatInstalls   *obs.Counter
	mBlockLen      *obs.Histogram
}

// New attaches a translation engine to cpu, registering it on the
// memory bus's code-invalidation hook. reg (which may be nil) receives
// the engine's metrics: emu.tb.translations, emu.tb.chain_hits,
// emu.tb.invalidations, emu.tb.flushes and the emu.tb.block_len
// histogram. Call Close when done so the hook does not outlive the
// engine.
func New(cpu *emu.CPU, reg *obs.Registry) *Engine {
	return NewWithCatalog(cpu, reg, nil)
}

// NewWithCatalog is New with a shared translation catalog attached
// (nil keeps the engine private). Every engine sharing one catalog
// adopts the others' translations after byte-verifying them against
// its own memory; catalog adoptions count in this engine's
// emu.tb.catalog_hits (alongside emu.tb.catalog_misses and
// emu.tb.catalog_installs), not in emu.tb.translations, so the
// translation counter still measures decode+compile work actually
// performed.
func NewWithCatalog(cpu *emu.CPU, reg *obs.Registry, cat *Catalog) *Engine {
	e := &Engine{
		cpu:            cpu,
		blocks:         make(map[uint32]*block),
		cpuVer:         cpu.CodeVersion(),
		cat:            cat,
		mTranslations:  reg.Counter("emu.tb.translations"),
		mChainHits:     reg.Counter("emu.tb.chain_hits"),
		mInvalidations: reg.Counter("emu.tb.invalidations"),
		mFlushes:       reg.Counter("emu.tb.flushes"),
		mCatHits:       reg.Counter("emu.tb.catalog_hits"),
		mCatMisses:     reg.Counter("emu.tb.catalog_misses"),
		mCatInstalls:   reg.Counter("emu.tb.catalog_installs"),
		mBlockLen:      reg.Histogram("emu.tb.block_len"),
	}
	e.cancel = cpu.Mem.OnCodeInvalidate(e.invalidate)
	return e
}

// Close unregisters the engine from the invalidation bus and drops its
// translations. The CPU remains usable (including by the interpreter).
func (e *Engine) Close() {
	if e.cancel != nil {
		e.cancel()
		e.cancel = nil
	}
	e.flushAll()
}

// CPU returns the CPU the engine drives.
func (e *Engine) CPU() *emu.CPU { return e.cpu }

// invalidate is the Memory.OnCodeInvalidate hook: executable bytes in
// [lo, hi) changed, so every translation overlapping the range dies.
func (e *Engine) invalidate(lo, hi uint32) {
	for pc, b := range e.blocks {
		if b.lo < hi && lo < b.hi {
			b.dead = true
			delete(e.blocks, pc)
			e.mInvalidations.Inc()
		}
	}
}

// flushAll retires every translation wholesale — overlay state
// changed, or the engine is closing. Both paths count into
// emu.tb.flushes, keeping it disjoint from emu.tb.invalidations (the
// per-block coherence kills): every block the engine ever held dies
// exactly once through one of the two counters, so after Close,
// translations + catalog adoptions == invalidations + flushes and a
// metrics report reconciles against hook-bus events.
func (e *Engine) flushAll() {
	n := uint64(len(e.blocks))
	for _, b := range e.blocks {
		b.dead = true
	}
	e.blocks = make(map[uint32]*block)
	e.curB = nil
	e.mFlushes.Add(n)
}

// lookup returns a live block starting at pc, translating one if
// needed. The error is the same fetch/decode fault the interpreter's
// own Step would report at pc.
func (e *Engine) lookup(pc uint32) (*block, error) {
	if cv := e.cpu.CodeVersion(); cv != e.cpuVer {
		// Overlay arm/disarm or InvalidateCode: fetches may now see
		// different bytes anywhere, so nothing translated survives.
		e.flushAll()
		e.cpuVer = cv
	}
	if b, ok := e.blocks[pc]; ok {
		return b, nil
	}
	return e.translate(pc)
}

// errBudget is execBlock's internal stop marker: the instruction
// budget was reached before the next op. Run formats it into the
// interpreter's ErrInstLimit error; Step treats it as a completed
// single step.
var errBudget = errors.New("tb: instruction budget reached")

func instLimitErr(c *emu.CPU) error {
	return fmt.Errorf("%w (%d instructions, eip=%#x)", emu.ErrInstLimit, c.Icount, c.EIP)
}

// Run executes until the program exits, faults, or hits the
// instruction budget — the engine's equivalent of CPU.Run.
func (e *Engine) Run() error { return e.RunContext(context.Background()) }

// maxChainBlocks bounds how many block-to-block transitions one
// execChain call may consume internally before handing control back
// to RunContext, and pollChains how many execChain calls RunContext
// makes between forced context polls. Together they guarantee a
// cancellation check at least every maxChainBlocks×pollChains block
// transitions even when the instruction-count stride never trips —
// a caller-supplied CheckStride sized for trace sampling, or blocks
// whose per-instruction wall cost dwarfs their retirement count
// (fallback string ops), would otherwise starve a tight deadline for
// the whole chained hot loop.
const (
	maxChainBlocks = 64
	pollChains     = 8
)

// RunContext is Run with a cancellation/deadline watchdog, polled
// every CheckStride instructions at block granularity — and at least
// every maxChainBlocks×pollChains block transitions regardless of
// stride — the engine's equivalent of CPU.RunContext, returning the
// same error types.
func (e *Engine) RunContext(ctx context.Context) error {
	c := e.cpu
	defer e.materialize()
	if ctx == nil {
		ctx = context.Background()
	}
	limit := c.MaxInst
	if limit == 0 {
		limit = emu.DefaultMaxInst
	}
	stride := c.CheckStride
	if stride == 0 {
		stride = emu.DefaultCheckStride
	}
	if err := ctx.Err(); err != nil {
		return &emu.DeadlineError{EIP: c.EIP, Icount: c.Icount, Err: err}
	}
	next := c.Icount + stride
	chains := 0
	for !c.Exited {
		if c.Icount >= limit {
			return instLimitErr(c)
		}
		if c.Icount >= next || chains >= pollChains {
			if err := ctx.Err(); err != nil {
				return &emu.DeadlineError{EIP: c.EIP, Icount: c.Icount, Err: err}
			}
			if err := c.Chaos.FireNext(chaos.PointEmuBudget); err != nil {
				// Forced watchdog exhaustion (injected): same shape as a
				// real deadline trip, marked by the wrapped chaos error.
				return &emu.DeadlineError{EIP: c.EIP, Icount: c.Icount, Err: err}
			}
			next = c.Icount + stride
			chains = 0
		}
		b, err := e.lookup(c.EIP)
		if err != nil {
			return err
		}
		// Inner chain loop: follow block-to-block successors without
		// touching the dispatch map until the next poll boundary.
		// execChain consumes chained edges internally (at most
		// maxChainBlocks per call); this loop turns over when a chain
		// edge is still unlinked or the per-call chain budget ran out.
		for b != nil && c.Icount < next && chains < pollChains {
			nb, err := e.execChain(b, limit, next)
			chains++
			if err == errBudget {
				return instLimitErr(c)
			}
			if err != nil {
				return err
			}
			if c.Exited {
				return nil
			}
			b = nb
		}
	}
	return nil
}

// Step retires exactly one instruction, with the interpreter's exact
// observable semantics (Icount, EIP, flags, trace events) — the
// lockstep oracle's entry point. Flags are materialized before Step
// returns, so CPU.Flags() is always valid between steps.
func (e *Engine) Step() error {
	c := e.cpu
	if c.Exited {
		return nil
	}
	defer e.materialize()
	b, i := e.curB, e.curI
	if b == nil || b.dead || i >= len(b.ops) || b.ops[i].pc != c.EIP ||
		e.cpuVer != c.CodeVersion() {
		var err error
		b, err = e.lookup(c.EIP)
		if err != nil {
			return err
		}
		i = 0
	}
	nb, err := e.execBlock(b, i, c.Icount+1)
	switch {
	case err == errBudget:
		// One op retired, stopped before the next: cursor advances.
		e.curB, e.curI = b, i+1
		return nil
	case err != nil:
		e.curB = nil
		return err
	case nb != nil:
		e.curB, e.curI = nb, 0
		return nil
	default:
		e.curB = nil
		return nil
	}
}
