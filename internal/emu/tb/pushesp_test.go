package tb_test

import (
	"testing"

	"parallax/internal/emu/tb"
	"parallax/internal/x86"
)

// TestPushESPParity pins the PUSH ESP corner on the stack-window fast
// path: the pushed value is the pre-decrement stack pointer. The first
// push warms the stack segment cache through the slow path, so the
// second one executes the cached-dword shortcut — the path that once
// read ESP after moving it. Found by a campaign cross-engine check on
// a bitflip mutant that turned a prologue's push ebp into push esp.
func TestPushESPParity(t *testing.T) {
	code := []byte{
		0xB8, 0x07, 0x00, 0x00, 0x00, // mov eax, 7
		0x50, // push eax  (slow path; warms the stk cache)
		0x54, // push esp  (fast path; must push the old ESP)
		0x5B, // pop ebx   (ebx = value push esp stored)
		0x59, // pop ecx   (restore balance; ecx = 7)
		0xC3, // ret
	}
	tc := loadWX(t, code)
	e := tb.New(tc, nil)
	defer e.Close()
	entrySP := tc.Reg[x86.ESP]
	if err := e.Run(); err != nil {
		t.Fatalf("tb run: %v (eip=%#x)", err, tc.EIP)
	}
	// SDM semantics, asserted directly: push esp ran with ESP at
	// entry-4 (one push deep), so that is the value it must store.
	if want := entrySP - 4; tc.Reg[x86.EBX] != want {
		t.Errorf("push esp stored %#x, want pre-decrement esp %#x", tc.Reg[x86.EBX], want)
	}

	ic := loadWX(t, code)
	errI := ic.Run()
	if errI != nil {
		t.Fatalf("interp run: %v", errI)
	}
	if ic.Reg != tc.Reg || ic.Icount != tc.Icount || ic.Cycles != tc.Cycles ||
		ic.Status != tc.Status || ic.Flags() != tc.Flags() || ic.EIP != tc.EIP {
		t.Errorf("tb/interp mismatch:\n tb:     %v icount=%d\n interp: %v icount=%d",
			tc.Reg, tc.Icount, ic.Reg, ic.Icount)
	}
}
