package emu

import (
	"bytes"
	"fmt"
	"io"

	"parallax/internal/x86"
)

// Kernel handles int 0x80 system calls. Arguments follow the Linux
// i386 convention: EAX holds the syscall number, EBX/ECX/EDX/ESI/EDI
// the arguments, and the result is returned in EAX (negative errno on
// failure).
type Kernel interface {
	Syscall(c *CPU) error
}

// SysCPU is the machine surface a kernel model needs: register file,
// data memory, and an exit latch. The kernel is part of the test
// harness rather than the ISA, so alternative execution engines (the
// difftest reference interpreter) implement this to share one kernel
// model with the CPU — any drift between engines' syscall behaviour
// would show up as false lockstep divergences.
type SysCPU interface {
	GetReg(r x86.Reg) uint32
	SetReg(r x86.Reg, v uint32)
	// MemRead reads n bytes at addr as a data read.
	MemRead(addr, n uint32) ([]byte, error)
	MemStore8(addr uint32, v uint8) error
	MemStore32(addr, v uint32) error
	// Exit latches the exited state with the given status.
	Exit(status int32)
}

// sysCPUAdapter presents a *CPU as a SysCPU.
type sysCPUAdapter struct{ c *CPU }

func (a sysCPUAdapter) GetReg(r x86.Reg) uint32    { return a.c.Reg[r] }
func (a sysCPUAdapter) SetReg(r x86.Reg, v uint32) { a.c.Reg[r] = v }
func (a sysCPUAdapter) MemRead(addr, n uint32) ([]byte, error) {
	return a.c.Mem.Read(addr, n, a.c.EIP)
}
func (a sysCPUAdapter) MemStore8(addr uint32, v uint8) error {
	return a.c.Mem.Store8(addr, v, a.c.EIP)
}
func (a sysCPUAdapter) MemStore32(addr, v uint32) error {
	return a.c.Mem.Store32(addr, v, a.c.EIP)
}
func (a sysCPUAdapter) Exit(status int32) {
	a.c.Exited = true
	a.c.Status = status
}

// Linux i386 syscall numbers used by this repository's programs.
const (
	SysExit    = 1
	SysRead    = 3
	SysWrite   = 4
	SysTime    = 13
	SysGetpid  = 20
	SysPtrace  = 26
	SysGetrand = 355 // getrandom
)

// Ptrace request used by the anti-debugging example (PTRACE_TRACEME).
const PtraceTraceme = 0

// Errno values returned by the kernel model.
const (
	ENOSYS = 38
	EPERM  = 1
	EFAULT = 14
	EBADF  = 9
)

// OS is a small deterministic kernel model. The zero value is a working
// kernel with empty stdin and no debugger attached.
//
// Non-deterministic inputs (time, random bytes, debugger state) are the
// heart of the paper's argument against oblivious hashing: programs
// whose behaviour depends on them cannot be protected by OH but can by
// Parallax.
type OS struct {
	Stdout bytes.Buffer
	Stderr bytes.Buffer
	// Stdin backs read(2) on fd 0. NewOS installs a bytes.Reader;
	// campaign workloads are small in-memory specs, but the interface
	// lets the attack layer interpose a fault-injecting reader
	// (chaos.Reader) without a second kernel path. Read errors other
	// than io.EOF abort the run — they are infrastructure failures,
	// not program behavior.
	Stdin io.Reader

	// DebuggerAttached makes ptrace(PTRACE_TRACEME) fail, as it does
	// when a real debugger already traces the process.
	DebuggerAttached bool
	traced           bool

	// Now is returned by time(2). A fixed default keeps runs
	// deterministic.
	Now int32

	// RandState seeds the getrandom(2) stream (xorshift32). Zero means
	// a fixed default seed.
	RandState uint32

	// Pid is returned by getpid(2). Zero means 4242.
	Pid int32

	// Trace, when non-nil, receives one line per syscall.
	Trace func(string)
}

var _ Kernel = (*OS)(nil)

// errno encodes a kernel error as a negative return value in EAX.
func errno(e int32) uint32 { return uint32(-e) }

// NewOS returns an OS with the given stdin contents.
func NewOS(stdin []byte) *OS {
	return &OS{Stdin: bytes.NewReader(stdin)}
}

func (os *OS) trace(format string, args ...any) {
	if os.Trace != nil {
		os.Trace(fmt.Sprintf(format, args...))
	}
}

// Syscall implements Kernel.
func (os *OS) Syscall(c *CPU) error { return os.SyscallOn(sysCPUAdapter{c}) }

// SyscallOn services one int 0x80 on any machine exposing SysCPU.
// All engines running the same program against the same *OS instance
// must observe identical kernel behaviour, so the logic lives here
// once rather than per engine.
func (os *OS) SyscallOn(sc SysCPU) error {
	num := sc.GetReg(x86.EAX)
	a1 := sc.GetReg(x86.EBX)
	a2 := sc.GetReg(x86.ECX)
	a3 := sc.GetReg(x86.EDX)
	switch num {
	case SysExit:
		sc.Exit(int32(a1))
		os.trace("exit(%d)", int32(a1))

	case SysWrite:
		buf, err := sc.MemRead(a2, a3)
		if err != nil {
			sc.SetReg(x86.EAX, errno(EFAULT))
			return nil
		}
		switch a1 {
		case 1:
			os.Stdout.Write(buf)
		case 2:
			os.Stderr.Write(buf)
		default:
			sc.SetReg(x86.EAX, errno(EBADF))
			return nil
		}
		sc.SetReg(x86.EAX, a3)
		os.trace("write(%d, %q) = %d", a1, buf, a3)

	case SysRead:
		if a1 != 0 || os.Stdin == nil {
			sc.SetReg(x86.EAX, errno(EBADF))
			return nil
		}
		// Chunked transfer: the count register is attacker-controlled
		// on mutant runs, so never allocate a3 bytes up front — a
		// corrupted read(0, buf, 0xFFFFFFFF) must cost the harness at
		// most one chunk of memory. POSIX short-read semantics: stop at
		// the first short chunk (EOF included) and return the byte
		// count transferred so far; 0 at immediate EOF. Any non-EOF
		// reader error aborts the run, even after partial progress:
		// a dying workload source (or an injected chaos fault) is
		// infrastructure and must never silently alter program
		// behavior — a partial count here would let a campaign
		// misclassify the garbled run as a detection.
		var chunk [4096]byte
		total := uint32(0)
		var readErr error
		for total < a3 {
			want := a3 - total
			if want > uint32(len(chunk)) {
				want = uint32(len(chunk))
			}
			n, err := os.Stdin.Read(chunk[:want])
			for i := 0; i < n; i++ {
				if serr := sc.MemStore8(a2+total+uint32(i), chunk[i]); serr != nil {
					sc.SetReg(x86.EAX, errno(EFAULT))
					return nil
				}
			}
			total += uint32(n)
			if err != nil || n == 0 {
				if err != io.EOF {
					readErr = err
				}
				break
			}
		}
		if readErr != nil {
			return fmt.Errorf("emu: read(0): %w", readErr)
		}
		sc.SetReg(x86.EAX, total)
		os.trace("read(0, %d) = %d", a3, total)

	case SysTime:
		now := os.Now
		if now == 0 {
			now = 1_420_070_400 // 2015-01-01, the paper's year
		}
		if a1 != 0 {
			if err := sc.MemStore32(a1, uint32(now)); err != nil {
				sc.SetReg(x86.EAX, errno(EFAULT))
				return nil
			}
		}
		sc.SetReg(x86.EAX, uint32(now))
		os.trace("time() = %d", now)

	case SysGetpid:
		pid := os.Pid
		if pid == 0 {
			pid = 4242
		}
		sc.SetReg(x86.EAX, uint32(pid))
		os.trace("getpid() = %d", pid)

	case SysPtrace:
		// PTRACE_TRACEME fails when a tracer is already attached —
		// the classic anti-debugging check from the paper's §IV-A.
		if a1 == PtraceTraceme {
			if os.DebuggerAttached || os.traced {
				sc.SetReg(x86.EAX, errno(EPERM))
				os.trace("ptrace(TRACEME) = -EPERM")
			} else {
				os.traced = true
				sc.SetReg(x86.EAX, 0)
				os.trace("ptrace(TRACEME) = 0")
			}
		} else {
			sc.SetReg(x86.EAX, errno(ENOSYS))
		}

	case SysGetrand:
		s := os.RandState
		if s == 0 {
			s = 0x9E3779B9
		}
		for i := uint32(0); i < a2; i++ {
			s ^= s << 13
			s ^= s >> 17
			s ^= s << 5
			if err := sc.MemStore8(a1+i, uint8(s)); err != nil {
				sc.SetReg(x86.EAX, errno(EFAULT))
				return nil
			}
		}
		os.RandState = s
		sc.SetReg(x86.EAX, a2)
		os.trace("getrandom(%d) = %d", a2, a2)

	default:
		os.trace("unknown syscall %d", num)
		sc.SetReg(x86.EAX, errno(ENOSYS))
	}
	return nil
}
