package emu

import (
	"bytes"
	"fmt"

	"parallax/internal/x86"
)

// Kernel handles int 0x80 system calls. Arguments follow the Linux
// i386 convention: EAX holds the syscall number, EBX/ECX/EDX/ESI/EDI
// the arguments, and the result is returned in EAX (negative errno on
// failure).
type Kernel interface {
	Syscall(c *CPU) error
}

// Linux i386 syscall numbers used by this repository's programs.
const (
	SysExit    = 1
	SysRead    = 3
	SysWrite   = 4
	SysTime    = 13
	SysGetpid  = 20
	SysPtrace  = 26
	SysGetrand = 355 // getrandom
)

// Ptrace request used by the anti-debugging example (PTRACE_TRACEME).
const PtraceTraceme = 0

// Errno values returned by the kernel model.
const (
	ENOSYS = 38
	EPERM  = 1
	EFAULT = 14
	EBADF  = 9
)

// OS is a small deterministic kernel model. The zero value is a working
// kernel with empty stdin and no debugger attached.
//
// Non-deterministic inputs (time, random bytes, debugger state) are the
// heart of the paper's argument against oblivious hashing: programs
// whose behaviour depends on them cannot be protected by OH but can by
// Parallax.
type OS struct {
	Stdout bytes.Buffer
	Stderr bytes.Buffer
	Stdin  *bytes.Reader

	// DebuggerAttached makes ptrace(PTRACE_TRACEME) fail, as it does
	// when a real debugger already traces the process.
	DebuggerAttached bool
	traced           bool

	// Now is returned by time(2). A fixed default keeps runs
	// deterministic.
	Now int32

	// RandState seeds the getrandom(2) stream (xorshift32). Zero means
	// a fixed default seed.
	RandState uint32

	// Pid is returned by getpid(2). Zero means 4242.
	Pid int32

	// Trace, when non-nil, receives one line per syscall.
	Trace func(string)
}

var _ Kernel = (*OS)(nil)

// errno encodes a kernel error as a negative return value in EAX.
func errno(e int32) uint32 { return uint32(-e) }

// NewOS returns an OS with the given stdin contents.
func NewOS(stdin []byte) *OS {
	return &OS{Stdin: bytes.NewReader(stdin)}
}

func (os *OS) trace(format string, args ...any) {
	if os.Trace != nil {
		os.Trace(fmt.Sprintf(format, args...))
	}
}

// Syscall implements Kernel.
func (os *OS) Syscall(c *CPU) error {
	num := c.Reg[x86.EAX]
	a1 := c.Reg[x86.EBX]
	a2 := c.Reg[x86.ECX]
	a3 := c.Reg[x86.EDX]
	switch num {
	case SysExit:
		c.Exited = true
		c.Status = int32(a1)
		os.trace("exit(%d)", int32(a1))

	case SysWrite:
		buf, err := c.Mem.Read(a2, a3, c.EIP)
		if err != nil {
			c.Reg[x86.EAX] = errno(EFAULT)
			return nil
		}
		switch a1 {
		case 1:
			os.Stdout.Write(buf)
		case 2:
			os.Stderr.Write(buf)
		default:
			c.Reg[x86.EAX] = errno(EBADF)
			return nil
		}
		c.Reg[x86.EAX] = a3
		os.trace("write(%d, %q) = %d", a1, buf, a3)

	case SysRead:
		if a1 != 0 || os.Stdin == nil {
			c.Reg[x86.EAX] = errno(EBADF)
			return nil
		}
		buf := make([]byte, a3)
		n, _ := os.Stdin.Read(buf)
		for i := 0; i < n; i++ {
			if err := c.Mem.Store8(a2+uint32(i), buf[i], c.EIP); err != nil {
				c.Reg[x86.EAX] = errno(EFAULT)
				return nil
			}
		}
		c.Reg[x86.EAX] = uint32(n)
		os.trace("read(0, %d) = %d", a3, n)

	case SysTime:
		now := os.Now
		if now == 0 {
			now = 1_420_070_400 // 2015-01-01, the paper's year
		}
		if a1 != 0 {
			if err := c.Mem.Store32(a1, uint32(now), c.EIP); err != nil {
				c.Reg[x86.EAX] = errno(EFAULT)
				return nil
			}
		}
		c.Reg[x86.EAX] = uint32(now)
		os.trace("time() = %d", now)

	case SysGetpid:
		pid := os.Pid
		if pid == 0 {
			pid = 4242
		}
		c.Reg[x86.EAX] = uint32(pid)
		os.trace("getpid() = %d", pid)

	case SysPtrace:
		// PTRACE_TRACEME fails when a tracer is already attached —
		// the classic anti-debugging check from the paper's §IV-A.
		if a1 == PtraceTraceme {
			if os.DebuggerAttached || os.traced {
				c.Reg[x86.EAX] = errno(EPERM)
				os.trace("ptrace(TRACEME) = -EPERM")
			} else {
				os.traced = true
				c.Reg[x86.EAX] = 0
				os.trace("ptrace(TRACEME) = 0")
			}
		} else {
			c.Reg[x86.EAX] = errno(ENOSYS)
		}

	case SysGetrand:
		s := os.RandState
		if s == 0 {
			s = 0x9E3779B9
		}
		for i := uint32(0); i < a2; i++ {
			s ^= s << 13
			s ^= s >> 17
			s ^= s << 5
			if err := c.Mem.Store8(a1+i, uint8(s), c.EIP); err != nil {
				c.Reg[x86.EAX] = errno(EFAULT)
				return nil
			}
		}
		os.RandState = s
		c.Reg[x86.EAX] = a2
		os.trace("getrandom(%d) = %d", a2, a2)

	default:
		os.trace("unknown syscall %d", num)
		c.Reg[x86.EAX] = errno(ENOSYS)
	}
	return nil
}
