package emu

import (
	"context"
	"errors"
	"testing"
	"time"

	"parallax/internal/image"
)

// rawImage wraps code bytes into a minimal executable image.
func rawImage(code []byte) *image.Image {
	return &image.Image{
		Entry: 0x1000,
		Sections: []*image.Section{{
			Name: ".text", Addr: 0x1000, Data: code,
			Size: uint32(len(code)), Perm: image.PermR | image.PermX,
		}},
	}
}

func TestRunContextDeadline(t *testing.T) {
	c, err := LoadImage(rawImage([]byte{0xEB, 0xFE})) // jmp self
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = c.RunContext(ctx)
	elapsed := time.Since(start)

	var de *DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("want DeadlineError, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("DeadlineError must wrap context.DeadlineExceeded: %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("runaway loop not killed within budget: ran %v", elapsed)
	}
	if de.Icount == 0 {
		t.Error("deadline fired before any instruction executed")
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	c, err := LoadImage(rawImage([]byte{0xEB, 0xFE}))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = c.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if c.Icount != 0 {
		t.Errorf("pre-cancelled run executed %d instructions", c.Icount)
	}
}

func TestRunContextStillHitsInstLimit(t *testing.T) {
	c, err := LoadImage(rawImage([]byte{0xEB, 0xFE}))
	if err != nil {
		t.Fatal(err)
	}
	c.MaxInst = 10_000
	if err := c.RunContext(context.Background()); !errors.Is(err, ErrInstLimit) {
		t.Fatalf("want ErrInstLimit, got %v", err)
	}
}

func TestRunContextCleanExit(t *testing.T) {
	// ret -> pops ExitSentinel -> clean exit.
	c, err := LoadImage(rawImage([]byte{0xC3}))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !c.Exited {
		t.Fatal("program did not exit")
	}
}

func TestMemBudget(t *testing.T) {
	img := rawImage([]byte{0xC3})
	// Budget below the stack size: the stack map must fail with a
	// typed error, not OOM or panic.
	_, err := LoadImageWith(img, LoadConfig{MemBudget: 1 << 10})
	var me *MemBudgetError
	if !errors.As(err, &me) {
		t.Fatalf("want MemBudgetError, got %v", err)
	}
	if me.Budget != 1<<10 {
		t.Errorf("budget field = %d", me.Budget)
	}
	// A budget with room for text + stack works.
	if _, err := LoadImageWith(img, LoadConfig{MemBudget: 1 << 22}); err != nil {
		t.Fatalf("sufficient budget rejected: %v", err)
	}
}

func TestStackBudget(t *testing.T) {
	// push eax; jmp back — pushes until the stack segment is exhausted.
	c, err := LoadImageWith(rawImage([]byte{0x50, 0xEB, 0xFD}), LoadConfig{StackSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	err = c.Run()
	var se *StackOverflowError
	if !errors.As(err, &se) {
		t.Fatalf("want StackOverflowError, got %v", err)
	}
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("StackOverflowError must wrap the memory fault: %v", err)
	}
}

func TestLoadConfigRejectsTinyStack(t *testing.T) {
	if _, err := LoadImageWith(rawImage([]byte{0xC3}), LoadConfig{StackSize: 16}); err == nil {
		t.Fatal("stack below MinStackSize accepted")
	}
}
