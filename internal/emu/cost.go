package emu

import "parallax/internal/x86"

// cost returns the modeled cycle cost of one instruction. The model is
// deliberately simple and deterministic — it exists so that slowdown
// ratios (Figures 5a/5b) are reproducible across hosts, not to predict
// absolute wall-clock time:
//
//   - 1 cycle base per instruction,
//   - +2 per memory operand access,
//   - +3 for multiplies, +20 for divides,
//   - +2 for taken control transfers (call/jmp/ret include their stack
//     traffic),
//   - pushad/popad pay for their eight stack slots.
//
// REP string iterations add 2 cycles each at execution time.
func cost(inst *x86.Inst) uint64 {
	c := uint64(1)
	if inst.Dst.Kind == x86.KMem {
		c += 2
	}
	if inst.Src.Kind == x86.KMem {
		c += 2
	}
	switch inst.Op {
	case x86.MUL, x86.IMUL:
		c += 3
	case x86.DIV, x86.IDIV:
		c += 20
	case x86.CALL:
		c += 4 // transfer + return-address push
	case x86.RET, x86.RETF:
		c += 4 // transfer + return-address pop
	case x86.JMP:
		c += 2
	case x86.JCC:
		c += 1 // static approximation; taken/not-taken not modeled
	case x86.PUSH, x86.POP:
		c += 2
	case x86.PUSHAD, x86.POPAD:
		c += 16
	case x86.PUSHFD, x86.POPFD:
		c += 2
	case x86.LEAVE:
		c += 2
	case x86.MOVS, x86.CMPS:
		c += 4
	case x86.STOS, x86.LODS, x86.SCAS:
		c += 2
	case x86.INT:
		c += 30 // kernel transition
	}
	return c
}

// InstCost exposes the cycle model for offline attribution (profiled
// hit counts times static instruction cost).
func InstCost(inst *x86.Inst) uint64 { return cost(inst) }
