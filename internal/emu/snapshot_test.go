package emu

import (
	"errors"
	"testing"

	"parallax/internal/image"
	"parallax/internal/x86"
)

// rwxCPU is testCPU with a writable text segment, for programs that
// patch their own code through the ordinary store path.
func rwxCPU(t *testing.T, code []byte) *CPU {
	t.Helper()
	c := New()
	text, err := c.Mem.Map(".text", testTextBase, uint32(len(code)+16),
		image.PermR|image.PermW|image.PermX)
	if err != nil {
		t.Fatal(err)
	}
	copy(text.Data, code)
	if _, err := c.Mem.Map("[stack]", testStackBase, testStackSize,
		image.PermR|image.PermW); err != nil {
		t.Fatal(err)
	}
	c.Reg[x86.ESP] = testStackBase + testStackSize - 16
	if err := c.push32(ExitSentinel); err != nil {
		t.Fatal(err)
	}
	c.EIP = testTextBase
	return c
}

// TestSelfModifyingWriteExecutesNewBytes is the regression test for the
// decode-cache staleness bug: a program that overwrites an upcoming
// instruction through a plain mov store must execute the new bytes on
// the next pass, not a decode cached from the old ones.
func TestSelfModifyingWriteExecutesNewBytes(t *testing.T) {
	// Two loop passes over "add eax, 500"; the first pass patches the
	// instruction's immediate to 900, so the second pass must add 900.
	// The immediates exceed imm8 range so the encoder emits them as
	// trailing imm32 words. Two-pass assembly: the first build learns
	// the immediate's address, the second bakes it into the patching
	// store.
	build := func(immAddr uint32) ([]byte, uint32) {
		b := x86.NewBuilder(testTextBase)
		b.I(ri(x86.MOV, x86.EAX, 0))
		b.I(ri(x86.MOV, x86.ECX, 2))
		b.Label("loop")
		b.I(ri(x86.ADD, x86.EAX, 500))
		b.Label("after")
		b.I(x86.Inst{Op: x86.MOV, W: 32, Dst: x86.MemAbs(immAddr), Src: x86.ImmOp(900)})
		b.I(x86.Inst{Op: x86.DEC, W: 32, Dst: x86.RegOp(x86.ECX)})
		b.JccL(x86.CondNE, "loop")
		b.I(x86.Inst{Op: x86.RET, W: 32})
		code, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		after, ok := b.LabelAddr("after")
		if !ok {
			t.Fatal("label after not recorded")
		}
		return code, after - 4 // imm32 is the add's trailing 4 bytes
	}
	_, immAddr := build(0)
	code, _ := build(immAddr)

	c := rwxCPU(t, code)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	// Stale decode would run the original add twice: 500+500=1000.
	if c.Status != 1400 {
		t.Errorf("status = %d, want 1400 (500 on pass one, patched 900 on pass two)", c.Status)
	}
}

// TestFetchWindowStraddlesSegments: an instruction whose bytes span two
// contiguously mapped executable segments must decode from the stitched
// window.
func TestFetchWindowStraddlesSegments(t *testing.T) {
	code := asm(t, func(b *x86.Builder) {
		b.I(ri(x86.MOV, x86.EAX, 42))
		b.I(x86.Inst{Op: x86.RET, W: 32})
	})
	const split = 3 // mid-immediate of the 5-byte mov
	c := New()
	lo, err := c.Mem.Map(".text", testTextBase, split, image.PermR|image.PermX)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := c.Mem.Map(".text2", testTextBase+split, uint32(len(code)-split),
		image.PermR|image.PermX)
	if err != nil {
		t.Fatal(err)
	}
	copy(lo.Data, code[:split])
	copy(hi.Data, code[split:])
	if _, err := c.Mem.Map("[stack]", testStackBase, testStackSize,
		image.PermR|image.PermW); err != nil {
		t.Fatal(err)
	}
	c.Reg[x86.ESP] = testStackBase + testStackSize - 16
	if err := c.push32(ExitSentinel); err != nil {
		t.Fatal(err)
	}
	c.EIP = testTextBase
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Status != 42 {
		t.Errorf("status = %d, want 42", c.Status)
	}
}

// TestFetchWindowFaultsAtMissingBytes: when an instruction is truncated
// by the end of mapped executable memory, the error must be a fetch
// fault at the first missing address, not a generic decode fault.
func TestFetchWindowFaultsAtMissingBytes(t *testing.T) {
	cases := []struct {
		name string
		next func(t *testing.T, m *Memory) // maps what follows .text, if anything
	}{
		{"unmapped", func(t *testing.T, m *Memory) {}},
		{"non-executable", func(t *testing.T, m *Memory) {
			if _, err := m.Map(".data", testTextBase+1, 0x1000, image.PermR|image.PermW); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := New()
			text, err := c.Mem.Map(".text", testTextBase, 1, image.PermR|image.PermX)
			if err != nil {
				t.Fatal(err)
			}
			text.Data[0] = 0x05 // add eax, imm32 — needs 4 more bytes
			tc.next(t, c.Mem)
			c.EIP = testTextBase
			err = c.Step()
			var fault *FaultError
			if !errors.As(err, &fault) {
				t.Fatalf("err = %v (%T), want *FaultError", err, err)
			}
			if fault.Access != AccessFetch {
				t.Errorf("fault access = %v, want fetch", fault.Access)
			}
			if fault.Addr != testTextBase+1 {
				t.Errorf("fault addr = %#x, want %#x", fault.Addr, testTextBase+1)
			}
		})
	}
}

// TestSnapshotRestoreDataOnly: a run that only writes data pages
// restores cleanly, replays identically, and keeps its decode cache.
func TestSnapshotRestoreDataOnly(t *testing.T) {
	code := asm(t, func(b *x86.Builder) {
		b.I(ri(x86.MOV, x86.EAX, 7))
		b.I(x86.Inst{Op: x86.MOV, W: 32, Dst: x86.MemAbs(testDataBase), Src: x86.RegOp(x86.EAX)})
		b.I(x86.Inst{Op: x86.RET, W: 32})
	})
	c := testCPU(t, code)
	snap := c.Snapshot()

	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.Mem.Load32(testDataBase, 0); v != 7 {
		t.Fatalf("data word = %d, want 7", v)
	}
	firstIcount := c.Icount

	st := c.Restore(snap)
	if st.DirtyPages == 0 {
		t.Error("restore saw no dirty pages despite a data store")
	}
	if st.CodeDirty {
		t.Error("restore reported code dirty for a data-only run")
	}
	if c.Exited || c.EIP != testTextBase || c.Icount != 0 {
		t.Errorf("post-restore state: exited=%t eip=%#x icount=%d", c.Exited, c.EIP, c.Icount)
	}
	if v, _ := c.Mem.Load32(testDataBase, 0); v != 0 {
		t.Errorf("data word = %d after restore, want 0", v)
	}
	if len(c.decodeCache) == 0 {
		t.Error("decode cache was flushed by a data-only restore")
	}

	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Status != 7 || c.Icount != firstIcount {
		t.Errorf("replay: status=%d icount=%d, want status=7 icount=%d",
			c.Status, c.Icount, firstIcount)
	}
	// The replay must not have rebuilt the cache: same version keys.
	if c.cacheVer != c.codeVersion {
		t.Errorf("cacheVer = %d, want %d", c.cacheVer, c.codeVersion)
	}
}

// TestSnapshotRestoreAfterPoke models one campaign mutant cycle:
// snapshot, Poke a text byte, run the mutant, restore, and verify the
// original program is back — original bytes, original behavior.
func TestSnapshotRestoreAfterPoke(t *testing.T) {
	code := asm(t, func(b *x86.Builder) {
		b.I(ri(x86.MOV, x86.EAX, 42))
		b.I(x86.Inst{Op: x86.RET, W: 32})
	})
	c := testCPU(t, code)
	snap := c.Snapshot()

	// Mutate the mov's immediate: 42 -> 13.
	if err := c.Mem.Poke(testTextBase+1, []byte{13}); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Status != 13 {
		t.Fatalf("mutant status = %d, want 13", c.Status)
	}

	st := c.Restore(snap)
	if !st.CodeDirty {
		t.Error("restore of a poked text page did not report code dirty")
	}
	if st.DirtyPages == 0 {
		t.Error("restore saw no dirty pages despite a text poke")
	}
	if b, _ := c.Mem.Peek(testTextBase+1, 1); b[0] != 42 {
		t.Errorf("text byte = %d after restore, want 42", b[0])
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Status != 42 {
		t.Errorf("restored run status = %d, want 42", c.Status)
	}
}

// TestPatchKeepsWarmDecodes: CPU.Patch must evict only the decodes
// that can overlap the patched bytes, so a warm campaign worker
// cycling restore → patch → run keeps the rest of its decode cache
// across mutants instead of re-decoding the whole text every time.
func TestPatchKeepsWarmDecodes(t *testing.T) {
	b := x86.NewBuilder(testTextBase)
	for i := 0; i < 8; i++ {
		b.I(ri(x86.MOV, x86.ECX, 1)) // padding: decodes far from the patch site
	}
	b.I(ri(x86.MOV, x86.EAX, 0))
	b.I(ri(x86.ADD, x86.EAX, 500)) // imm32 form; the patch target
	b.Label("after")
	b.I(x86.Inst{Op: x86.RET, W: 32})
	code, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	after, ok := b.LabelAddr("after")
	if !ok {
		t.Fatal("label after not recorded")
	}
	immAddr := after - 4 // the add's trailing imm32

	c := testCPU(t, code)
	snap := c.Snapshot()
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Status != 500 {
		t.Fatalf("clean status = %d, want 500", c.Status)
	}
	c.Restore(snap)
	warm := len(c.decodeCache)
	if warm == 0 {
		t.Fatal("no warm decodes survived a clean-run restore")
	}

	// Patch the immediate 500 -> 900. Only entries whose windows can
	// reach the 4 patched bytes may be evicted.
	if err := c.Patch(immAddr, []byte{0x84, 0x03, 0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	if got := len(c.decodeCache); got == 0 || warm-got > 3 {
		t.Errorf("decode cache %d -> %d entries after Patch, want targeted eviction of at most 3", warm, got)
	}
	if c.cacheVer != c.codeVersion {
		t.Error("Patch left a full cache flush pending")
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Status != 900 {
		t.Errorf("patched status = %d, want 900", c.Status)
	}

	// Cycle back: the restore evicts the patched page's decodes and the
	// original bytes execute again.
	st := c.Restore(snap)
	if !st.CodeDirty {
		t.Error("restore after a text Patch did not report code dirty")
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Status != 500 {
		t.Errorf("restored status = %d, want 500", c.Status)
	}
}

// TestSnapshotSupersedes: a second Snapshot rebaselines, so Restore
// rewinds to the newer point, not the older one.
func TestSnapshotSupersedes(t *testing.T) {
	code := asm(t, func(b *x86.Builder) {
		b.I(x86.Inst{Op: x86.RET, W: 32})
	})
	c := testCPU(t, code)
	c.Snapshot()
	if err := c.Mem.Poke(testDataBase, []byte{1}); err != nil {
		t.Fatal(err)
	}
	snap2 := c.Snapshot()
	if err := c.Mem.Poke(testDataBase, []byte{2}); err != nil {
		t.Fatal(err)
	}
	c.Restore(snap2)
	if b, _ := c.Mem.Peek(testDataBase, 1); b[0] != 1 {
		t.Errorf("data byte = %d, want 1 (the second snapshot's baseline)", b[0])
	}
}
